// Quickstart: load a small graph, let the store organize itself, look at
// the emergent SQL schema (the dual relational/triple view of Fig. 1),
// and run the paper's motivating query both ways.
package main

import (
	"fmt"

	"srdf"
)

const data = `
@prefix ex: <http://books.example.org/> .
ex:b1 a ex:Book ; ex:has_author ex:a1 ; ex:in_year 1996 ; ex:isbn_no "0-201-53771-0" .
ex:b2 a ex:Book ; ex:has_author ex:a2 ; ex:in_year 1996 ; ex:isbn_no "0-201-18399-4" .
ex:b3 a ex:Book ; ex:has_author ex:a1 ; ex:in_year 1998 ; ex:isbn_no "1-55860-190-2" .
ex:b4 a ex:Book ; ex:has_author ex:a3 ; ex:in_year 2001 ; ex:isbn_no "0-12-088469-1" .
ex:a1 ex:name "Alice" ; ex:born 1960 .
ex:a2 ex:name "Bob" ; ex:born 1971 .
ex:a3 ex:name "Carol" ; ex:born 1980 .
# an irregular straggler: no table will claim it
ex:misc ex:note "hello" .
`

// the paper's introduction example: author + ISBN of books from 1996
const query = `
PREFIX ex: <http://books.example.org/>
SELECT ?a ?n WHERE {
  ?b ex:has_author ?a .
  ?b ex:in_year 1996 .
  ?b ex:isbn_no ?n .
}`

func main() {
	store := srdf.New(srdf.Defaults())
	store.MustLoadTurtle(data)

	report, err := store.Organize()
	if err != nil {
		panic(err)
	}
	fmt.Println("== self-organization ==")
	fmt.Println(report)

	fmt.Println("\n== emergent SQL view ==")
	fmt.Print(store.SQLSchema())

	fmt.Println("== plans for the intro query ==")
	for _, cfg := range []srdf.QueryOptions{
		{Mode: srdf.Default},
		{Mode: srdf.RDFScan, ZoneMaps: true},
	} {
		exp, err := store.Explain(query, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Print(exp)
	}

	fmt.Println("\n== results ==")
	res, err := store.Query(query)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.String())

	st := store.Stats()
	fmt.Printf("\n%d triples in %d tables, %d left irregular (%.0f%% coverage)\n",
		st.Triples, st.Tables, st.Irregular, 100*st.Coverage)
}
