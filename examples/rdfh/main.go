// RDF-H end to end: generate the benchmark at a small scale factor, let
// the store discover the TPC-H schema from raw triples, print the plans
// of Q6 in both families (Fig. 4's contrast), and run the Table I matrix
// — the paper's §II-D experiment in miniature.
package main

import (
	"fmt"

	"srdf/internal/core"
	"srdf/internal/plan"
	"srdf/internal/rdfh"
)

func main() {
	const sf = 0.005
	fmt.Printf("generating RDF-H at SF=%g...\n", sf)
	h, err := rdfh.NewHarness(sf, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n\n", h.Data.Counts())

	fmt.Println("== discovered schema (from raw triples!) ==")
	fmt.Print(h.Clustered.SQLSchema())

	fmt.Println("== Q6 plans (Fig. 4a: self-joins vs RDFscan) ==")
	for _, cfg := range []core.QueryOptions{
		{Mode: plan.ModeDefault},
		{Mode: plan.ModeRDFScan, ZoneMaps: true},
	} {
		exp, err := h.Clustered.Explain(rdfh.Q6(), cfg)
		if err != nil {
			panic(err)
		}
		fmt.Print(exp)
	}

	fmt.Println("\n== Q3 plan (Fig. 4b: RDFjoin) ==")
	exp, err := h.Clustered.Explain(rdfh.Q3(), core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
	if err != nil {
		panic(err)
	}
	fmt.Print(exp)

	fmt.Println("\n== Table I ==")
	ms, err := h.RunTableI("Q3", "Q6")
	if err != nil {
		panic(err)
	}
	fmt.Print(rdfh.FormatTableI(ms, sf))

	// verify against the reference evaluator
	res, err := h.Clustered.Query(rdfh.Q6(), core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nQ6 revenue = %s (reference: %.2f)\n",
		res.Rows[0][0].Lexical(), rdfh.RefQ6(h.Data))
}
