// Webcrawl: schema discovery on dirty data — "even in web-crawled data
// which is considered the dirtiest data encountered in practice" the
// great majority of triples conform to regular patterns. This example
// synthesizes a messy crawl (spelling-variant properties, missing
// values, mixed types, noise) and shows how generalization and
// fine-tuning shrink the raw CS count while keeping coverage high,
// comparing against the original ungeneralized CS algorithm.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"srdf"
)

// synthCrawl fabricates a crawl of ~n pages over a few microformats,
// with per-page missing properties, occasional junk predicates, and a
// long tail of one-off subjects.
func synthCrawl(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("@prefix v: <http://vocab.example.org/> .\n")
	b.WriteString("@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n")
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // person profiles
			fmt.Fprintf(&b, "v:person%d v:name \"P%d\"", i, i)
			if rng.Intn(10) > 1 {
				fmt.Fprintf(&b, " ; v:mbox \"p%d@mail\"", i)
			}
			if rng.Intn(10) > 4 {
				fmt.Fprintf(&b, " ; v:homepage \"http://p%d.example\"", i)
			}
			if rng.Intn(20) == 0 { // junk property (spelling error)
				fmt.Fprintf(&b, " ; v:naem \"typo\"")
			}
			b.WriteString(" .\n")
		case 4, 5, 6: // events; date sometimes a string, sometimes typed
			fmt.Fprintf(&b, "v:event%d v:label \"E%d\"", i, i)
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, " ; v:date \"20%02d-%02d-%02d\"^^xsd:date", rng.Intn(20), 1+rng.Intn(12), 1+rng.Intn(28))
			} else {
				fmt.Fprintf(&b, " ; v:date \"sometime in 20%02d\"", rng.Intn(20))
			}
			fmt.Fprintf(&b, " ; v:venue v:place%d .\n", rng.Intn(8))
		case 7, 8: // products
			fmt.Fprintf(&b, "v:item%d v:title \"I%d\" ; v:price %d.%02d", i, i, 1+rng.Intn(99), rng.Intn(100))
			if rng.Intn(3) > 0 {
				fmt.Fprintf(&b, " ; v:currency \"EUR\"")
			}
			b.WriteString(" .\n")
		default: // noise: one-off subjects with random predicates
			fmt.Fprintf(&b, "v:junk%d v:p%d \"x\" .\n", i, rng.Intn(40))
		}
	}
	for p := 0; p < 8; p++ {
		fmt.Fprintf(&b, "v:place%d v:label \"place %d\" ; v:city \"C%d\" .\n", p, p, p%4)
	}
	return b.String()
}

func main() {
	data := synthCrawl(800, 7)

	fmt.Println("== with generalization + fine-tuning (the paper's pipeline) ==")
	store := srdf.New(srdf.Defaults())
	store.MustLoadTurtle(data)
	rep, err := store.Organize()
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)
	fmt.Println()
	fmt.Print(store.SQLSchema())

	fmt.Println("== events with typed dates vs string dates split into CS variants ==")
	fmt.Print(store.SchemaSummary([]string{"date"}, 0))

	fmt.Println("\n== star query over the dirty person profiles ==")
	res, err := store.Query(`
PREFIX v: <http://vocab.example.org/>
SELECT (COUNT(*) AS ?profiles) WHERE {
  ?p v:name ?n .
  ?p v:mbox ?m .
}`)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.String())

	st := store.Stats()
	fmt.Printf("\ncoverage %.1f%% — %d of %d triples answered by tables, %d irregular\n",
		100*st.Coverage, st.Triples-st.Irregular, st.Triples, st.Irregular)
}
