package srdf_test

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"srdf"
)

// timeRe matches the per-operator and total time annotations, which are
// the one non-deterministic part of EXPLAIN ANALYZE output.
var timeRe = regexp.MustCompile(`time=\S+`)

func normalizeAnalyze(s string) string { return timeRe.ReplaceAllString(s, "time=?") }

// TestGoldenExplainAnalyzeChain pins the analyzed plan for the 3-way
// star chain across the live-update lifecycle, mirroring
// TestGoldenExplainCostedChain: the same trees, but every operator line
// additionally carries the actual row count of a real execution, and
// the footer reports the executed totals and the worst est/act
// mis-estimation. In the delta and compacted stages the planner
// under-estimates the author scan by the trickled-in author (est 5,
// act 6), which the misestimate line surfaces as 1.2x.
func TestGoldenExplainAnalyzeChain(t *testing.T) {
	o := srdf.Defaults()
	o.CompactThreshold = -1 // explicit Compact only: the test drives it
	s := srdf.New(o)
	s.MustLoadTurtle(chainSrc)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?b ?n WHERE {
  ?b <http://l/author> ?a . ?b <http://l/year> ?y .
  ?a <http://l/name> ?nm . ?a <http://l/country> ?c .
  ?c <http://l/cname> ?n . ?c <http://l/pop> ?p }`
	qo := srdf.QueryOptions{Mode: srdf.RDFScan, ZoneMaps: true}

	check := func(stage, want string) {
		t.Helper()
		ex, err := s.ExplainAnalyze(context.Background(), q, qo)
		if err != nil {
			t.Fatal(err)
		}
		if got := normalizeAnalyze(ex); got != want {
			t.Errorf("%s explain analyze:\n got:\n%s\nwant:\n%s", stage, got, want)
		}
	}

	const sealedWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=2 (analyzed)
Project ?b ?n act_rows=6 time=?
  MergeJoin ?c -> cname_pop [2 props, subject-ordered scan] est_rows=6 cost=51 act_rows=6 time=?
    MergeJoin ?a -> country_name [2 props, subject-ordered scan] est_rows=6 cost=34 act_rows=6 time=?
      RDFscan ?b over author_year [2 props, 0 self-joins] +zonemaps est_rows=6 cost=12 act_rows=6 time=?
        col p=R15 ?a enc=for×1
        col p=R16 ?y enc=for×1
actual: rows=6 time=?
misestimate: worst est/act 1.0x at MergeJoin ?c
`
	check("sealed", sealedWant)

	// A new author arrives: the author table grows a delta tail, the
	// plan re-anchors on the author star (see the costed-chain golden),
	// and the author scan now actually produces 6 rows against an
	// estimate of 5.
	s.Add(srdf.Triple{S: srdf.IRI("http://l/a9"), P: srdf.IRI("http://l/name"), O: srdf.StringLit("Zoe")})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/a9"), P: srdf.IRI("http://l/country"), O: srdf.IRI("http://l/c3")})

	const deltaWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=2 (analyzed)
Project ?b ?n act_rows=6 time=?
  HashJoin on [?a] est_rows=6 cost=89 act_rows=6 time=?
    MergeJoin ?c -> cname_pop [2 props, subject-ordered scan] est_rows=5 cost=33 act_rows=6 time=?
      RDFscan ?a over country_name [2 props, 0 self-joins] +zonemaps delta=1 est_rows=5 cost=18 act_rows=6 time=?
        col p=R17 ?nm enc=for×1
        col p=R18 ?c enc=for×1
    RDFscan ?b over author_year [2 props, 0 self-joins] +zonemaps est_rows=6 cost=12 act_rows=6 time=?
      col p=R15 ?a enc=for×1
      col p=R16 ?y enc=for×1
actual: rows=6 time=?
misestimate: worst est/act 1.2x at MergeJoin ?c
`
	check("delta", deltaWant)

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	const compactedWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=2 (analyzed)
Project ?b ?n act_rows=6 time=?
  HashJoin on [?a] est_rows=6 cost=81 act_rows=6 time=?
    MergeJoin ?c -> cname_pop [2 props, subject-ordered scan] est_rows=5 cost=25 act_rows=6 time=?
      RDFscan ?a over country_name [2 props, 0 self-joins] +zonemaps est_rows=5 cost=10 act_rows=6 time=?
        col p=R17 ?nm enc=for×1
        col p=R18 ?c enc=for×1
    RDFscan ?b over author_year [2 props, 0 self-joins] +zonemaps est_rows=6 cost=12 act_rows=6 time=?
      col p=R15 ?a enc=for×1
      col p=R16 ?y enc=for×1
actual: rows=6 time=?
misestimate: worst est/act 1.2x at MergeJoin ?c
`
	check("compacted", compactedWant)
}

// actualRowsOf extracts N from the "actual: rows=N" footer.
func actualRowsOf(t *testing.T, ex string) int {
	t.Helper()
	m := regexp.MustCompile(`actual: rows=(\d+)`).FindStringSubmatch(ex)
	if m == nil {
		t.Fatalf("no actual-rows footer in:\n%s", ex)
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// TestExplainAnalyzeRowsMatchQuery checks act_rows is the truth: for a
// spread of query shapes the analyzed row count equals the row count
// Query returns, exactly.
func TestExplainAnalyzeRowsMatchQuery(t *testing.T) {
	s := srdf.New(srdf.Defaults())
	s.MustLoadTurtle(chainSrc)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	qo := srdf.QueryOptions{Mode: srdf.RDFScan, ZoneMaps: true}
	queries := []string{
		`SELECT ?b ?n WHERE {
  ?b <http://l/author> ?a . ?b <http://l/year> ?y .
  ?a <http://l/name> ?nm . ?a <http://l/country> ?c .
  ?c <http://l/cname> ?n . ?c <http://l/pop> ?p }`,
		`SELECT ?b ?y WHERE { ?b <http://l/author> ?a . ?b <http://l/year> ?y . FILTER(?y > 1993) }`,
		`SELECT DISTINCT ?c WHERE { ?a <http://l/name> ?n . ?a <http://l/country> ?c }`,
		`SELECT ?c (COUNT(?a) AS ?k) WHERE { ?a <http://l/name> ?n . ?a <http://l/country> ?c } GROUP BY ?c`,
		`SELECT ?b ?y WHERE { ?b <http://l/author> ?a . ?b <http://l/year> ?y } ORDER BY ?y LIMIT 3`,
	}
	for _, q := range queries {
		res, err := s.QueryWith(q, qo)
		if err != nil {
			t.Fatalf("query %s: %v", q, err)
		}
		ex, err := s.ExplainAnalyze(context.Background(), q, qo)
		if err != nil {
			t.Fatalf("analyze %s: %v", q, err)
		}
		if got := actualRowsOf(t, ex); got != res.Len() {
			t.Errorf("act rows=%d, Query rows=%d for %s\n%s", got, res.Len(), q, ex)
		}
		// The head operator's act_rows agrees with the footer.
		head := strings.SplitN(ex, "\n", 3)[1]
		if !strings.Contains(head, "act_rows="+strconv.Itoa(res.Len())) {
			t.Errorf("head line act_rows disagrees with result: %q (want %d rows)", head, res.Len())
		}
	}
}
