package srdf_test

import (
	"testing"

	"srdf"
)

const deltaLibSrc = `@prefix l: <http://l/> .
l:b1 l:author l:a1 ; l:year 1991 ; l:isbn "1" .
l:b2 l:author l:a1 ; l:year 1992 ; l:isbn "2" .
l:b3 l:author l:a2 ; l:year 1993 ; l:isbn "3" .
l:b4 l:author l:a2 ; l:year 1994 ; l:isbn "4" .
l:a1 l:name "Alice" .
l:a2 l:name "Bob" .
`

func deltaStore(t *testing.T) *srdf.Store {
	t.Helper()
	o := srdf.Defaults()
	o.CompactThreshold = -1 // explicit Compact only: the test drives it
	s := srdf.New(o)
	s.MustLoadTurtle(deltaLibSrc)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGoldenExplainDeltaLifecycle pins the textual plan output across
// the live-update lifecycle: a sealed store shows per-column segment
// encodings and zone selectivity; a store with pending deltas shows the
// delta row count and tombstones on its RDFscan line (and loses range
// pushdown, since the trickled literals broke literal ordering); a
// compacted store shows freshly chosen segment encodings with the delta
// annotations gone. Any regression in how delta-tail scans surface in
// EXPLAIN fails these exact-match comparisons.
func TestGoldenExplainDeltaLifecycle(t *testing.T) {
	s := deltaStore(t)
	const q = `SELECT ?b ?y WHERE { ?b <http://l/author> ?a . ?b <http://l/year> ?y . FILTER (?y >= 1992) }`
	qo := srdf.QueryOptions{Mode: srdf.RDFScan, ZoneMaps: true}

	const sealedWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=0
Project ?b ?y
  Filter (?y >= "1992"^^<http://www.w3.org/2001/XMLSchema#integer>)
    RDFscan ?b over author_isbn [2 props, 0 self-joins] +zonemaps est_rows=1 cost=8
      col p=R7 ?a enc=rle×1
      col p=R8 ?y in[L6,L10] enc=for×1 zsel=1.00
`
	ex, err := s.Explain(q, qo)
	if err != nil {
		t.Fatal(err)
	}
	if ex != sealedWant {
		t.Errorf("sealed explain:\n got:\n%s\nwant:\n%s", ex, sealedWant)
	}

	// Two new books and one deletion: b8/b9 become delta rows, b1
	// migrates to a delta row (its sealed row is tombstoned).
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b8"), P: srdf.IRI("http://l/author"), O: srdf.IRI("http://l/a2")})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b8"), P: srdf.IRI("http://l/year"), O: srdf.IntLit(1998)})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b9"), P: srdf.IRI("http://l/author"), O: srdf.IRI("http://l/a1")})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b9"), P: srdf.IRI("http://l/year"), O: srdf.IntLit(1999)})
	s.Delete(srdf.Triple{S: srdf.IRI("http://l/b1"), P: srdf.IRI("http://l/isbn"), O: srdf.StringLit("1")})

	const deltaWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=0
Project ?b ?y
  Filter (?y >= "1992"^^<http://www.w3.org/2001/XMLSchema#integer>)
    RDFscan ?b over author_isbn [2 props, 0 self-joins] +zonemaps delta=3 dead=1 est_rows=4 cost=32
      col p=R7 ?a enc=rle×1
      col p=R8 ?y enc=for×1
`
	ex, err = s.Explain(q, qo)
	if err != nil {
		t.Fatal(err)
	}
	if ex != deltaWant {
		t.Errorf("delta explain:\n got:\n%s\nwant:\n%s", ex, deltaWant)
	}

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	const compactedWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=0
Project ?b ?y
  Filter (?y >= "1992"^^<http://www.w3.org/2001/XMLSchema#integer>)
    RDFscan ?b over author_isbn [2 props, 0 self-joins] +zonemaps est_rows=4 cost=8
      col p=R7 ?a enc=dict×1
      col p=R8 ?y enc=plain×1
`
	ex, err = s.Explain(q, qo)
	if err != nil {
		t.Fatal(err)
	}
	if ex != compactedWant {
		t.Errorf("compacted explain:\n got:\n%s\nwant:\n%s", ex, compactedWant)
	}
}

// TestDeltaLifecycleResults exercises the public API through the same
// lifecycle: live adds and deletes answered without a rebuild, snapshot
// isolation of an open stream, no-op writes, and Compact.
func TestDeltaLifecycleResults(t *testing.T) {
	s := deltaStore(t)
	const q = `SELECT ?b ?y WHERE { ?b <http://l/author> ?a . ?b <http://l/year> ?y }`

	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("sealed: %d rows, want 4", res.Len())
	}

	// Open a stream, then mutate: the snapshot must be unaffected.
	rows, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b9"), P: srdf.IRI("http://l/author"), O: srdf.IRI("http://l/a1")})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b9"), P: srdf.IRI("http://l/year"), O: srdf.IntLit(1999)})
	s.Delete(srdf.Triple{S: srdf.IRI("http://l/b2"), P: srdf.IRI("http://l/year"), O: srdf.IntLit(1992)})
	n := 0
	for rows.Next() {
		n++
	}
	if n != 4 {
		t.Fatalf("open snapshot saw %d rows, want the pre-mutation 4", n)
	}

	// A fresh query sees the new state: b9 added, b2 lost its year.
	res, err = s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("after mutations: %d rows, want 4 (3 survivors + b9)", res.Len())
	}

	// Deleting an absent triple and re-adding an existing one are no-ops.
	before := s.NumTriples()
	s.Delete(srdf.Triple{S: srdf.IRI("http://l/nope"), P: srdf.IRI("http://l/year"), O: srdf.IntLit(1)})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/b3"), P: srdf.IRI("http://l/year"), O: srdf.IntLit(1993)})
	if got := s.NumTriples(); got != before {
		t.Fatalf("no-op writes changed NumTriples: %d -> %d", before, got)
	}

	rep, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables == 0 || rep.MergedRows == 0 {
		t.Fatalf("compact did nothing: %+v", rep)
	}
	res, err = s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("after compact: %d rows, want 4", res.Len())
	}
	st := s.Stats()
	if st.DeltaRows != 0 || st.Tombstones != 0 {
		t.Fatalf("compact left delta state: %+v", st)
	}
}
