// Benchmarks regenerating the paper's evaluation:
//
//   - BenchmarkTableI_* — the full Table I matrix (RDF-H Q3/Q6 under
//     plan scheme × physical order × zone maps, cold and hot). Total
//     time is wall + simulated I/O; per-op page misses and simulated I/O
//     are reported as custom metrics.
//   - BenchmarkFig3_* — subject clustering locality: pages touched by a
//     selective star before and after clustering.
//   - BenchmarkFig4a_* — star width sweep: k-property stars under the
//     Default (k-1 self-joins) and RDFscan (0 joins) families.
//   - BenchmarkFig4b_* — the star + FK-hop shape evaluated with hash
//     joins vs RDFjoin.
//   - BenchmarkAblation_* — design-choice ablations: zone maps alone,
//     sub-ordering alone, generalization on/off.
//   - BenchmarkCSDetection / BenchmarkLoad — pipeline throughput.
//
// Scale factors are deliberately small so `go test -bench=.` finishes in
// minutes; run cmd/rdfhbench with a larger -sf for the headline numbers.
package srdf_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/rdfh"
	"srdf/internal/triples"
)

const benchSF = 0.01

var (
	harnessOnce sync.Once
	harness     *rdfh.Harness
	harnessErr  error
)

func getHarness(b testing.TB) *rdfh.Harness {
	harnessOnce.Do(func() {
		harness, harnessErr = rdfh.NewHarness(benchSF, 42)
	})
	if harnessErr != nil {
		b.Fatal(harnessErr)
	}
	return harness
}

// benchCell runs one Table I cell as a Go benchmark, reporting simulated
// I/O and page misses alongside wall time.
func benchCell(b *testing.B, cfgIdx int, query string, cold bool) {
	h := getHarness(b)
	cfg := rdfh.TableIConfigs()[cfgIdx]
	st := h.Clustered
	if !cfg.Clustered {
		st = h.Parse
	}
	qo := core.QueryOptions{Mode: cfg.Mode, ZoneMaps: cfg.ZoneMaps}
	qtext := rdfh.Queries()[query]
	// warm once for hot runs
	if !cold {
		if _, err := st.Query(qtext, qo); err != nil {
			b.Fatal(err)
		}
	}
	st.Pool().ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cold {
			st.Pool().ResetCold()
		}
		if _, err := st.Query(qtext, qo); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ps := st.Pool().Stats()
	b.ReportMetric(float64(ps.SimIO.Microseconds())/float64(b.N), "simIO-us/op")
	b.ReportMetric(float64(ps.Misses)/float64(b.N), "pages/op")
}

// --- Table I: 6 configurations x {Q3,Q6} x {cold,hot} ---

func BenchmarkTableI_Default_ParseOrder_Q3_Cold(b *testing.B)  { benchCell(b, 0, "Q3", true) }
func BenchmarkTableI_Default_ParseOrder_Q3_Hot(b *testing.B)   { benchCell(b, 0, "Q3", false) }
func BenchmarkTableI_Default_ParseOrder_Q6_Cold(b *testing.B)  { benchCell(b, 0, "Q6", true) }
func BenchmarkTableI_Default_ParseOrder_Q6_Hot(b *testing.B)   { benchCell(b, 0, "Q6", false) }
func BenchmarkTableI_Default_Clustered_Q3_Cold(b *testing.B)   { benchCell(b, 1, "Q3", true) }
func BenchmarkTableI_Default_Clustered_Q3_Hot(b *testing.B)    { benchCell(b, 1, "Q3", false) }
func BenchmarkTableI_Default_Clustered_Q6_Cold(b *testing.B)   { benchCell(b, 1, "Q6", true) }
func BenchmarkTableI_Default_Clustered_Q6_Hot(b *testing.B)    { benchCell(b, 1, "Q6", false) }
func BenchmarkTableI_Default_ClusteredZM_Q3_Cold(b *testing.B) { benchCell(b, 2, "Q3", true) }
func BenchmarkTableI_Default_ClusteredZM_Q3_Hot(b *testing.B)  { benchCell(b, 2, "Q3", false) }
func BenchmarkTableI_Default_ClusteredZM_Q6_Cold(b *testing.B) { benchCell(b, 2, "Q6", true) }
func BenchmarkTableI_Default_ClusteredZM_Q6_Hot(b *testing.B)  { benchCell(b, 2, "Q6", false) }
func BenchmarkTableI_RDFscan_ParseOrder_Q3_Cold(b *testing.B)  { benchCell(b, 3, "Q3", true) }
func BenchmarkTableI_RDFscan_ParseOrder_Q3_Hot(b *testing.B)   { benchCell(b, 3, "Q3", false) }
func BenchmarkTableI_RDFscan_ParseOrder_Q6_Cold(b *testing.B)  { benchCell(b, 3, "Q6", true) }
func BenchmarkTableI_RDFscan_ParseOrder_Q6_Hot(b *testing.B)   { benchCell(b, 3, "Q6", false) }
func BenchmarkTableI_RDFscan_Clustered_Q3_Cold(b *testing.B)   { benchCell(b, 4, "Q3", true) }
func BenchmarkTableI_RDFscan_Clustered_Q3_Hot(b *testing.B)    { benchCell(b, 4, "Q3", false) }
func BenchmarkTableI_RDFscan_Clustered_Q6_Cold(b *testing.B)   { benchCell(b, 4, "Q6", true) }
func BenchmarkTableI_RDFscan_Clustered_Q6_Hot(b *testing.B)    { benchCell(b, 4, "Q6", false) }
func BenchmarkTableI_RDFscan_ClusteredZM_Q3_Cold(b *testing.B) { benchCell(b, 5, "Q3", true) }
func BenchmarkTableI_RDFscan_ClusteredZM_Q3_Hot(b *testing.B)  { benchCell(b, 5, "Q3", false) }
func BenchmarkTableI_RDFscan_ClusteredZM_Q6_Cold(b *testing.B) { benchCell(b, 5, "Q6", true) }
func BenchmarkTableI_RDFscan_ClusteredZM_Q6_Hot(b *testing.B)  { benchCell(b, 5, "Q6", false) }

// extra queries beyond the paper's pair
func BenchmarkTableI_RDFscan_ClusteredZM_Q1_Hot(b *testing.B) { benchCell(b, 5, "Q1", false) }
func BenchmarkTableI_Default_ParseOrder_Q1_Hot(b *testing.B)  { benchCell(b, 0, "Q1", false) }
func BenchmarkTableI_RDFscan_ClusteredZM_Q5_Hot(b *testing.B) { benchCell(b, 5, "Q5", false) }
func BenchmarkTableI_Default_ParseOrder_Q5_Hot(b *testing.B)  { benchCell(b, 0, "Q5", false) }

// --- Fig 3: clustering locality ---

// BenchmarkFig3_ClusterLocality measures the pages a selective
// one-month Q6-style probe touches on the parse-order vs clustered
// store; the reduction is subject clustering's locality payoff.
func BenchmarkFig3_ClusterLocality(b *testing.B) {
	h := getHarness(b)
	q := `
PREFIX rdfh: <http://example.com/rdfh/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT (SUM(?ep) AS ?s)
WHERE {
  ?li rdfh:lineitem_shipdate ?sd .
  ?li rdfh:lineitem_extendedprice ?ep .
  FILTER (?sd >= "1994-01-01"^^xsd:date && ?sd < "1994-02-01"^^xsd:date)
}`
	for _, sub := range []struct {
		name string
		st   *core.Store
		qo   core.QueryOptions
	}{
		{"ParseOrder", h.Parse, core.QueryOptions{Mode: plan.ModeRDFScan}},
		{"Clustered", h.Clustered, core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			sub.st.Pool().ResetStats()
			for i := 0; i < b.N; i++ {
				sub.st.Pool().ResetCold()
				if _, err := sub.st.Query(q, sub.qo); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sub.st.Pool().Stats().Misses)/float64(b.N), "pages/op")
		})
	}
}

// --- Fig 4a: star width sweep ---

func starWidthStore(b *testing.B, k int) *core.Store {
	var src strings.Builder
	src.WriteString("@prefix e: <http://w/> .\n")
	for s := 0; s < 4000; s++ {
		fmt.Fprintf(&src, "e:s%d e:p0 %d", s, s%97)
		for p := 1; p < k; p++ {
			fmt.Fprintf(&src, " ; e:p%d %d", p, (s*p)%89)
		}
		src.WriteString(" .\n")
	}
	opts := core.DefaultOptions()
	st := core.NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(src.String())); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Organize(); err != nil {
		b.Fatal(err)
	}
	return st
}

func starQuery(k int) string {
	var q strings.Builder
	q.WriteString("PREFIX e: <http://w/>\nSELECT (COUNT(*) AS ?n) WHERE {\n")
	for p := 0; p < k; p++ {
		fmt.Fprintf(&q, "  ?s e:p%d ?o%d .\n", p, p)
	}
	q.WriteString("  FILTER (?o0 = 13)\n}")
	return q.String()
}

func BenchmarkFig4a_StarWidth(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		st := starWidthStore(b, k)
		q := starQuery(k)
		for _, mode := range []struct {
			name string
			m    plan.Mode
		}{{"Default", plan.ModeDefault}, {"RDFscan", plan.ModeRDFScan}} {
			b.Run(fmt.Sprintf("k=%d/%s", k, mode.name), func(b *testing.B) {
				qo := core.QueryOptions{Mode: mode.m, ZoneMaps: true}
				for i := 0; i < b.N; i++ {
					if _, err := st.Query(q, qo); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig 4b: star + FK hop (RDFjoin vs hash join of two stars) ---

func BenchmarkFig4b_RDFjoin(b *testing.B) {
	h := getHarness(b)
	// lineitem star joined to its order star through the FK
	q := `
PREFIX rdfh: <http://example.com/rdfh/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT (COUNT(*) AS ?n)
WHERE {
  ?li rdfh:lineitem_quantity ?q .
  ?li rdfh:lineitem_order ?o .
  ?o rdfh:order_orderdate ?od .
  ?o rdfh:order_totalprice ?tp .
  FILTER (?q >= 45)
}`
	for _, mode := range []struct {
		name string
		m    plan.Mode
	}{{"Default", plan.ModeDefault}, {"RDFjoin", plan.ModeRDFScan}} {
		b.Run(mode.name, func(b *testing.B) {
			qo := core.QueryOptions{Mode: mode.m, ZoneMaps: true}
			for i := 0; i < b.N; i++ {
				if _, err := h.Clustered.Query(q, qo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations ---

// BenchmarkAblation_ZoneMapOnly isolates zone maps: same store, same
// plan family, zone maps off vs on (Q6 cold).
func BenchmarkAblation_ZoneMapOnly(b *testing.B) {
	h := getHarness(b)
	for _, zm := range []bool{false, true} {
		b.Run(fmt.Sprintf("zonemaps=%v", zm), func(b *testing.B) {
			qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: zm}
			h.Clustered.Pool().ResetStats()
			for i := 0; i < b.N; i++ {
				h.Clustered.Pool().ResetCold()
				if _, err := h.Clustered.Query(rdfh.Q6(), qo); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.Clustered.Pool().Stats().Misses)/float64(b.N), "pages/op")
		})
	}
}

// BenchmarkAblation_SubOrdering isolates the date sub-ordering: the
// parse-order store has CS tables but no sort key, so Q6's range must
// scan every block even with zone maps requested.
func BenchmarkAblation_SubOrdering(b *testing.B) {
	h := getHarness(b)
	for _, sub := range []struct {
		name string
		st   *core.Store
	}{{"unordered", h.Parse}, {"suborderd", h.Clustered}} {
		b.Run(sub.name, func(b *testing.B) {
			qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
			sub.st.Pool().ResetStats()
			for i := 0; i < b.N; i++ {
				sub.st.Pool().ResetCold()
				if _, err := sub.st.Query(rdfh.Q6(), qo); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sub.st.Pool().Stats().Misses)/float64(b.N), "pages/op")
		})
	}
}

// BenchmarkAblation_Generalization compares schema discovery with and
// without the generalization/merging rules on dirty data, reporting the
// CS count and coverage each achieves.
func BenchmarkAblation_Generalization(b *testing.B) {
	src := dirtyGraph(3000)
	ts := loadTriples(b, src)
	for _, sub := range []struct {
		name string
		mod  func(*cs.Options)
	}{
		{"raw-CS-algorithm", func(o *cs.Options) {
			o.MinPropFrac = 1.1 // no nullable merging
			o.SimilarityMerge = 1.1
			o.TypeSplit = false
			o.RescueReferenced = false
		}},
		{"generalized", func(o *cs.Options) {}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			opts := cs.DefaultOptions()
			opts.MinSupport = 5
			sub.mod(&opts)
			var schema *cs.Schema
			for i := 0; i < b.N; i++ {
				schema = cs.Discover(ts.tb, ts.d, opts)
			}
			b.ReportMetric(float64(len(schema.Retained())), "tables")
			b.ReportMetric(100*schema.Coverage, "coverage-%")
		})
	}
}

type loaded struct {
	tb *triples.Table
	d  *dict.Dictionary
}

func loadTriples(b *testing.B, src string) loaded {
	b.Helper()
	ts, err := nt.ParseTurtle(strings.NewReader(src))
	if err != nil {
		b.Fatal(err)
	}
	d := dict.New()
	tb := triples.NewTable(len(ts))
	for _, tr := range ts {
		tb.Append(d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O))
	}
	return loaded{tb: tb, d: d}
}

func dirtyGraph(n int) string {
	var b strings.Builder
	b.WriteString("@prefix v: <http://d/> .\n")
	for i := 0; i < n; i++ {
		switch i % 7 {
		case 0, 1, 2:
			fmt.Fprintf(&b, "v:p%d v:a %d ; v:b \"x%d\"", i, i%50, i%20)
			if i%3 == 0 {
				fmt.Fprintf(&b, " ; v:c %d", i%9)
			}
			b.WriteString(" .\n")
		case 3, 4:
			fmt.Fprintf(&b, "v:q%d v:a %d ; v:d \"y\" .\n", i, i%50)
		case 5:
			fmt.Fprintf(&b, "v:r%d v:a %d ; v:b \"z\" ; v:e%d 1 .\n", i, i%50, i%25)
		default:
			fmt.Fprintf(&b, "v:s%d v:f%d \"w\" .\n", i, i%30)
		}
	}
	return b.String()
}

// --- streaming executor ---

// BenchmarkStream_MaterializedVsStreaming contrasts the two query APIs
// over the same vectorized pipeline: Query materializes the full result,
// QueryStream hands rows out batch by batch; with a LIMIT the stream
// stops the scans early.
func BenchmarkStream_MaterializedVsStreaming(b *testing.B) {
	h := getHarness(b)
	q := rdfh.Queries()["Q3"]
	qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
	b.Run("Query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.Clustered.Query(q, qo); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QueryStream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := h.Clustered.QueryStream(q, qo)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			rows.Close()
		}
	})
}

// BenchmarkStream_LimitEarlyTermination measures a LIMIT probe over a
// multi-block table: the streaming head stops pulling once satisfied, so
// pages/op stays flat no matter how large the table is.
func BenchmarkStream_LimitEarlyTermination(b *testing.B) {
	st := parallelStore(b, 20000, 0)
	for _, q := range []struct{ name, text string }{
		{"full", `PREFIX e: <http://par/> SELECT ?s ?x WHERE { ?s e:a ?x . ?s e:b ?y . }`},
		{"limit10", `PREFIX e: <http://par/> SELECT ?s ?x WHERE { ?s e:a ?x . ?s e:b ?y . } LIMIT 10`},
	} {
		b.Run(q.name, func(b *testing.B) {
			qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
			st.Pool().ResetStats()
			for i := 0; i < b.N; i++ {
				st.Pool().ResetCold()
				if _, err := st.Query(q.text, qo); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Pool().Stats().Misses)/float64(b.N), "pages/op")
		})
	}
}

// parallelStore builds a core store whose main CS spans many zone-map
// blocks, with the given morsel-scan worker count.
func parallelStore(b *testing.B, n, workers int) *core.Store {
	var src strings.Builder
	src.WriteString("@prefix e: <http://par/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src, "e:s%06d e:a %d ; e:b %d ; e:c %d .\n", i, i%9973, i%89, i%7)
	}
	opts := core.DefaultOptions()
	opts.Parallelism = workers
	st := core.NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(src.String())); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Organize(); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStream_ParallelismSweep sweeps the morsel-scan worker count
// over a wide-table star scan, the knob the Parallelism option exposes.
func BenchmarkStream_ParallelismSweep(b *testing.B) {
	q := `PREFIX e: <http://par/>
SELECT (COUNT(*) AS ?n) WHERE { ?s e:a ?x . ?s e:b ?y . ?s e:c ?z . FILTER (?x >= 2) }`
	for _, workers := range []int{1, 2, 4} {
		st := parallelStore(b, 40000, workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
			for i := 0; i < b.N; i++ {
				if _, err := st.Query(q, qo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- query optimizer: join algorithm, join order, bloom filters ---

// fkJoinStore builds a clustered two-class store in the TPC-H
// lineitem/orders shape: nParent parent subjects with a date and a
// payload, and 2*nParent child subjects whose FK is correlated with
// their own date key (children of a date window reference a matching
// window of parents, as date-clustered fact tables do).
func fkJoinStore(b *testing.B, nParent int) *core.Store {
	var src strings.Builder
	src.WriteString("@prefix e: <http://fk/> .\n")
	for i := 0; i < nParent; i++ {
		fmt.Fprintf(&src, "e:o%06d e:odate %d ; e:ototal %d .\n", i, i, (i*7)%1000)
	}
	for i := 0; i < 2*nParent; i++ {
		fmt.Fprintf(&src, "e:li%06d e:ldate %d ; e:fk e:o%06d .\n", i, i, i/2)
	}
	opts := core.DefaultOptions()
	st := core.NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(src.String())); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Organize(); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStream_MergeJoin contrasts join algorithms on a clustered,
// date-selective FK join. Hash drains the full parent star into a hash
// table (or scans it as probe input) no matter how few keys flow in;
// merge sorts the incoming FK keys once and binary-searches the
// subject-ordered parent table, scanning only the FK-spanned row
// window. Blooms are off in both arms so the comparison is the bare
// algorithms.
func BenchmarkStream_MergeJoin(b *testing.B) {
	st := fkJoinStore(b, 40000)
	q := `PREFIX e: <http://fk/>
SELECT (SUM(?t) AS ?s)
WHERE {
  ?li e:ldate ?d .
  ?li e:fk ?o .
  ?o e:ototal ?t .
  FILTER (?d >= 30000 && ?d < 32000)
}`
	for _, algo := range []string{"hash", "merge"} {
		b.Run(algo, func(b *testing.B) {
			qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true, ForceAlgo: algo, NoBloom: true}
			for i := 0; i < b.N; i++ {
				if _, err := st.Query(q, qo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStream_CostedStar pits the cost-based join order for Q3
// (selective lineitem scan first, then two merge joins up the FK
// chain) against the naive pattern-order left-deep hash plan the old
// greedy planner could produce.
func BenchmarkStream_CostedStar(b *testing.B) {
	h := getHarness(b)
	q := rdfh.Queries()["Q3"]
	for _, sub := range []struct {
		name string
		qo   core.QueryOptions
	}{
		{"costed", core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}},
		{"naive", core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true,
			ForceOrder: []string{"c", "o", "li"}, ForceAlgo: "hash", NoBloom: true}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.Clustered.Query(q, sub.qo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStream_BloomProbe isolates the runtime bloom filters on
// Q5's hash joins: the region/nation build sides are tiny, so pushing
// their blooms into the customer/order/lineitem scans prunes most
// probe rows before they reach the join.
func BenchmarkStream_BloomProbe(b *testing.B) {
	h := getHarness(b)
	q := rdfh.Queries()["Q5"]
	for _, sub := range []struct {
		name    string
		noBloom bool
	}{{"bloom", false}, {"nobloom", true}} {
		b.Run(sub.name, func(b *testing.B) {
			qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true, ForceAlgo: "hash", NoBloom: sub.noBloom}
			for i := 0; i < b.N; i++ {
				if _, err := h.Clustered.Query(q, qo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- throughput ---

func BenchmarkCSDetection(b *testing.B) {
	ts := loadTriples(b, dirtyGraph(5000))
	opts := cs.DefaultOptions()
	opts.MinSupport = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Discover(ts.tb, ts.d, opts)
	}
	b.ReportMetric(float64(ts.tb.Len()), "triples")
}

func BenchmarkLoadNTriples(b *testing.B) {
	d := rdfh.Generate(0.002, 1)
	var buf strings.Builder
	if _, err := d.WriteNT(&buf); err != nil {
		b.Fatal(err)
	}
	src := buf.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := srdf.New(srdf.Defaults())
		if _, _, err := st.LoadNTriples(strings.NewReader(src), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrganize(b *testing.B) {
	d := rdfh.Generate(0.002, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := core.DefaultOptions()
		opts.CS.MinSupport = 5
		st := core.NewStore(opts)
		d.Emit(func(t nt.Triple) { st.Add(t) })
		b.StartTimer()
		if _, err := st.Organize(); err != nil {
			b.Fatal(err)
		}
	}
}
