package srdf_test

import (
	"fmt"
	"strings"
	"testing"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/exec"
	"srdf/internal/plan"
	"srdf/internal/rdfh"
)

// resultLines renders a materialized result as one line per row.
func resultLines(res *exec.Result) []string {
	out := make([]string, 0, res.Len())
	for _, row := range res.Rows {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.Lexical())
			b.WriteByte('\t')
		}
		out = append(out, b.String())
	}
	return out
}

// streamLines drains a Rows iterator into one line per row.
func streamLines(rows *core.Rows) []string {
	defer rows.Close()
	var out []string
	for rows.Next() {
		var b strings.Builder
		for _, v := range rows.Row() {
			b.WriteString(v.Lexical())
			b.WriteByte('\t')
		}
		out = append(out, b.String())
	}
	return out
}

func linesEqual(t *testing.T, got, want []string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d:\n got %q\nwant %q", label, i, got[i], want[i])
		}
	}
}

var parityConfigs = []core.QueryOptions{
	{Mode: plan.ModeDefault},
	{Mode: plan.ModeRDFScan},
	{Mode: plan.ModeRDFScan, ZoneMaps: true},
}

// TestQueryStreamParityQuickstart asserts QueryStream and Query return
// identical rows on the quickstart-style dataset in every plan mode.
func TestQueryStreamParityQuickstart(t *testing.T) {
	s := organized(t)
	queries := []string{
		`PREFIX ex: <http://demo/> SELECT ?n WHERE { ?b ex:author ?a . ?b ex:year 1996 . ?a ex:name ?n . }`,
		`PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . ?b ex:year ?y . }`,
		`PREFIX ex: <http://demo/> SELECT DISTINCT ?y WHERE { ?b ex:year ?y . } ORDER BY ?y`,
		`PREFIX ex: <http://demo/> SELECT (COUNT(*) AS ?n) WHERE { ?b ex:isbn ?i . }`,
		`PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . } LIMIT 2`,
		`PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . ?b ex:year ?y . FILTER (?y > 1996) }`,
	}
	for qi, q := range queries {
		for ci, qo := range parityConfigs {
			o := srdf.QueryOptions{Mode: qo.Mode, ZoneMaps: qo.ZoneMaps}
			res, err := s.QueryWith(q, o)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := s.QueryStreamWith(q, o)
			if err != nil {
				t.Fatal(err)
			}
			linesEqual(t, streamLines(rows), resultLines(res), fmt.Sprintf("q%d cfg%d", qi, ci))
		}
	}
}

// TestQueryStreamParityRDFH runs every RDF-H benchmark query through
// both APIs in both plan families and demands row-identical output.
func TestQueryStreamParityRDFH(t *testing.T) {
	h, err := rdfh.NewHarness(0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range rdfh.Queries() {
		for ci, qo := range parityConfigs {
			res, err := h.Clustered.Query(q, qo)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := h.Clustered.QueryStream(q, qo)
			if err != nil {
				t.Fatal(err)
			}
			linesEqual(t, streamLines(rows), resultLines(res), fmt.Sprintf("%s cfg%d", name, ci))
		}
	}
}

// rdfhModifierQueries exercises every head operator — DISTINCT, ORDER
// BY, top-K, grouped and DISTINCT aggregates — over RDF-H data, beyond
// the four benchmark queries.
var rdfhModifierQueries = []string{
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT DISTINCT ?seg WHERE { ?c rdfh:customer_mktsegment ?seg . }`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT DISTINCT ?seg WHERE { ?c rdfh:customer_mktsegment ?seg . } ORDER BY ?seg`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT ?o ?od WHERE { ?o rdfh:order_orderdate ?od . } ORDER BY DESC(?od) ?o LIMIT 10`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT ?o ?od WHERE { ?o rdfh:order_orderdate ?od . } ORDER BY ?od LIMIT 7 OFFSET 4`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT (COUNT(DISTINCT ?seg) AS ?n) WHERE { ?c rdfh:customer_mktsegment ?seg . }`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT ?seg (COUNT(*) AS ?n) (MIN(?bal) AS ?lo) (MAX(?bal) AS ?hi) WHERE { ?c rdfh:customer_mktsegment ?seg . ?c rdfh:customer_acctbal ?bal . } GROUP BY ?seg ORDER BY ?seg`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT ?seg (COUNT(*) AS ?n) WHERE { ?c rdfh:customer_mktsegment ?seg . } GROUP BY ?seg ORDER BY DESC(?n) ?seg LIMIT 3`,
	`PREFIX rdfh: <http://example.com/rdfh/> SELECT DISTINCT ?sp WHERE { ?o rdfh:order_shippriority ?sp . } LIMIT 2`,
}

// TestQueryStreamParityRDFHModifiers runs every aggregate / ORDER BY /
// DISTINCT query shape through both APIs in every plan family and
// demands row-identical output.
func TestQueryStreamParityRDFHModifiers(t *testing.T) {
	h, err := rdfh.NewHarness(0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range rdfhModifierQueries {
		for ci, qo := range parityConfigs {
			res, err := h.Clustered.Query(q, qo)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := h.Clustered.QueryStream(q, qo)
			if err != nil {
				t.Fatal(err)
			}
			linesEqual(t, streamLines(rows), resultLines(res), fmt.Sprintf("mod-q%d cfg%d", qi, ci))
		}
	}
}

// multiBlockStore builds a store whose main CS table spans several
// zone-map blocks (n > colstore.BlockRows rows).
func multiBlockStore(t testing.TB, n, parallelism int) *srdf.Store {
	t.Helper()
	var b strings.Builder
	b.WriteString("@prefix e: <http://big/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e:s%06d e:a %d ; e:b %d .\n", i, i%997, i%89)
	}
	opts := srdf.Defaults()
	opts.Parallelism = parallelism
	s := srdf.New(opts)
	s.MustLoadTurtle(b.String())
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLimitEarlyTermination proves the streaming pipeline stops pulling
// scan blocks once LIMIT is satisfied: the limited query must touch
// fewer buffer-pool pages than the full scan.
func TestLimitEarlyTermination(t *testing.T) {
	s := multiBlockStore(t, 6000, 0)
	full := `PREFIX e: <http://big/> SELECT ?s ?x WHERE { ?s e:a ?x . ?s e:b ?y . }`
	limited := full + " LIMIT 3"

	s.ResetCold()
	s.ResetPoolStats()
	res, err := s.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6000 {
		t.Fatalf("full rows = %d, want 6000", res.Len())
	}
	fullPages := s.PoolStats().Misses

	s.ResetCold()
	s.ResetPoolStats()
	res, err = s.Query(limited)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("limited rows = %d, want 3", res.Len())
	}
	limPages := s.PoolStats().Misses
	if limPages >= fullPages {
		t.Fatalf("LIMIT scan touched %d pages, full scan %d — no early termination", limPages, fullPages)
	}

	// the streaming API terminates early too
	s.ResetCold()
	s.ResetPoolStats()
	rows, err := s.QueryStream(limited)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(streamLines(rows)); got != 3 {
		t.Fatalf("streamed rows = %d, want 3", got)
	}
	if p := s.PoolStats().Misses; p >= fullPages {
		t.Fatalf("streamed LIMIT touched %d pages, full scan %d", p, fullPages)
	}
}

// TestParallelScanParity asserts the morsel-parallel scan returns
// row-identical results (including order) to the sequential scan.
func TestParallelScanParity(t *testing.T) {
	seq := multiBlockStore(t, 9000, 0)
	par := multiBlockStore(t, 9000, 4)
	queries := []string{
		`PREFIX e: <http://big/> SELECT ?s ?x ?y WHERE { ?s e:a ?x . ?s e:b ?y . }`,
		`PREFIX e: <http://big/> SELECT ?s WHERE { ?s e:a ?x . FILTER (?x = 13) }`,
		`PREFIX e: <http://big/> SELECT (COUNT(*) AS ?n) WHERE { ?s e:a ?x . ?s e:b ?y . }`,
		`PREFIX e: <http://big/> SELECT ?s ?x WHERE { ?s e:a ?x . ?s e:b ?y . } LIMIT 10`,
	}
	for qi, q := range queries {
		a, err := seq.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		linesEqual(t, resultLines(b), resultLines(a), fmt.Sprintf("q%d", qi))
	}
}

// TestParallelAggregateParity asserts parallel partial aggregation
// (worker partials merged at the head) returns rows identical to the
// sequential fold — values and group order — through the public API.
func TestParallelAggregateParity(t *testing.T) {
	seq := multiBlockStore(t, 12000, 0)
	par := multiBlockStore(t, 12000, 4)
	queries := []string{
		`PREFIX e: <http://big/> SELECT ?y (COUNT(*) AS ?n) (SUM(?x) AS ?s) (MIN(?x) AS ?lo) (MAX(?x) AS ?hi) (AVG(?x) AS ?avg) WHERE { ?s e:a ?x . ?s e:b ?y . } GROUP BY ?y`,
		`PREFIX e: <http://big/> SELECT ?y (COUNT(DISTINCT ?x) AS ?nd) WHERE { ?s e:a ?x . ?s e:b ?y . } GROUP BY ?y ORDER BY DESC(?nd) ?y`,
		`PREFIX e: <http://big/> SELECT (SUM(?x) AS ?s) (COUNT(*) AS ?n) WHERE { ?s e:a ?x . ?s e:b ?y . }`,
		`PREFIX e: <http://big/> SELECT ?y (SUM(?x) AS ?s) WHERE { ?s e:a ?x . ?s e:b ?y . } GROUP BY ?y ORDER BY DESC(?s) LIMIT 5`,
		`PREFIX e: <http://big/> SELECT DISTINCT ?y WHERE { ?s e:a ?x . ?s e:b ?y . } ORDER BY ?y LIMIT 10`,
	}
	for qi, q := range queries {
		want, err := seq.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		linesEqual(t, resultLines(got), resultLines(want), fmt.Sprintf("agg-q%d", qi))

		// and the streaming API agrees with itself under parallelism
		rows, err := par.QueryStream(q)
		if err != nil {
			t.Fatal(err)
		}
		linesEqual(t, streamLines(rows), resultLines(want), fmt.Sprintf("agg-q%d stream", qi))
	}
}
