// Command rdfhgen emits the RDF-H benchmark dataset (a 1-1 TPC-H → RDF
// mapping) as N-Triples, replacing the bibm generator the paper used.
//
// Usage:
//
//	rdfhgen -sf 0.01 -seed 42 -o rdfh.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"srdf/internal/rdfh"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (1 = 6M lineitems)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfhgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	d := rdfh.Generate(*sf, *seed)
	n, err := d.WriteNT(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfhgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rdfhgen: SF=%g seed=%d: %s -> %d triples\n", *sf, *seed, d.Counts(), n)
}
