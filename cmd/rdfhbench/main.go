// Command rdfhbench regenerates the paper's Table I: RDF-H query times
// under {Default, RDFscan/RDFjoin} × {ParseOrder, Clustered} ×
// {ZoneMaps no/yes}, cold and hot. Total time is wall time plus
// simulated I/O (100µs per page miss of the tracked buffer pool), so the
// cold/hot and locality contrasts are deterministic and machine
// independent; see EXPERIMENTS.md for the comparison with the paper's
// absolute numbers.
//
// Usage:
//
//	rdfhbench -sf 0.02 -queries Q3,Q6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"srdf/internal/rdfh"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 10)")
	seed := flag.Int64("seed", 42, "generator seed")
	queries := flag.String("queries", "Q3,Q6", "comma-separated: Q1,Q3,Q5,Q6")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "rdfhbench: generating RDF-H SF=%g and organizing both stores...\n", *sf)
	h, err := rdfh.NewHarness(*sf, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfhbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rdfhbench: %s (%d triples)\n",
		h.Data.Counts(), h.Clustered.NumTriples())

	qs := strings.Split(*queries, ",")
	ms, err := h.RunTableI(qs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfhbench:", err)
		os.Exit(1)
	}
	fmt.Print(rdfh.FormatTableI(ms, *sf))
	fmt.Println("\nPaper's Table I (SF=10, seconds, Q3 cold/hot | Q6 cold/hot):")
	fmt.Println(`  Default    ParseOrder  No  | 37.50 19.66 | 28.25 6.52
  Default    Clustered   No  | 18.01 15.32 |  9.27 3.27
  Default    Clustered   Yes |  2.13  2.02 |  n.a.
  RDFscan    ParseOrder  No  |  3.34  2.93 |  8.64 2.16
  RDFscan    Clustered   No  |  2.13  2.01 |  1.47 0.44
  RDFscan    Clustered   Yes |  0.89  0.78 |  n.a.`)
}
