// Command srdf is the CLI for the self-organizing RDF store: it loads an
// N-Triples (or Turtle) file — or a binary snapshot built with `srdf
// build` — discovers the emergent relational schema, and answers SPARQL
// queries with either plan family.
//
// Usage:
//
//	srdf build   [-minsupport N] [-o data.srdf] data.nt
//	srdf schema  [-minsupport N] [-summary kw1,kw2] data.nt|data.srdf
//	srdf query   [-mode default|rdfscan] [-zonemaps] [-explain] -q 'SELECT ...' data.nt|data.srdf
//	srdf stats   data.nt|data.srdf
//	srdf dump    [-table name] [-limit N] data.nt|data.srdf
//
// A `.nt`/`.ttl` input is parsed and organized on every invocation; a
// `.srdf` snapshot opens directly — the expensive characteristic-set
// pipeline already ran at build time and sealed segments load lazily, so
// startup is near-instant regardless of store size.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"srdf"
	"srdf/internal/plan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "schema":
		err = cmdSchema(args)
	case "query":
		err = cmdQuery(args)
	case "explain":
		err = cmdExplain(args)
	case "stats":
		err = cmdStats(args)
	case "dump":
		err = cmdDump(args)
	case "serve":
		err = cmdServe(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "srdf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: srdf <build|schema|query|explain|stats|dump|serve> [flags] data.nt|data.srdf
  build    organize a triple file into a binary snapshot (-o out.srdf)
  schema   discover and print the emergent SQL schema
  query    run a SPARQL query (-q '...' or -f query.rq)
  explain  print a query's plan; -analyze executes it and annotates
           each operator with actual rows and time
  stats    print store statistics after organization
  dump     print a discovered table as CSV
  serve    serve the SPARQL Protocol over HTTP (see srdf serve -h)

A .srdf snapshot (written by build) is accepted wherever a .nt/.ttl file
is: it opens directly, skipping parse and re-organization.`)
}

// loadStore loads a triple file or opens a snapshot. The organized flag
// reports whether organization already happened (snapshot fast path).
func loadStore(path string, minSupport int) (*srdf.Store, bool, error) {
	return loadStoreOpts(path, minSupport, nil)
}

// loadStoreOpts is loadStore with an option hook applied before the
// store is created or opened.
func loadStoreOpts(path string, minSupport int, tweak func(*srdf.Options)) (*srdf.Store, bool, error) {
	opts := srdf.Defaults()
	if minSupport > 0 {
		opts.MinSupport = minSupport
	}
	if tweak != nil {
		tweak(&opts)
	}
	if strings.HasSuffix(path, ".srdf") {
		st, err := srdf.Open(path, opts)
		if err != nil {
			return nil, false, err
		}
		// a snapshot can also hold an un-organized store (dictionary +
		// triples only); those still need the Organize pass
		return st, st.Organized(), nil
	}
	st := srdf.New(opts)
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".ttl") {
		if _, err := st.LoadTurtle(f); err != nil {
			return nil, false, err
		}
	} else {
		n, errs, err := st.LoadNTriples(f, true)
		if err != nil {
			return nil, false, err
		}
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "srdf: skipped %d malformed lines\n", len(errs))
		}
		_ = n
	}
	return st, false, nil
}

// organize runs Organize unless the store came from a snapshot, where
// the pipeline already ran at build time.
func organize(st *srdf.Store, organized bool) error {
	if organized {
		return nil
	}
	rep, err := st.Organize()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, rep)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output snapshot path (default: input with .srdf extension)")
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("build: need one data file")
	}
	in := fs.Arg(0)
	if strings.HasSuffix(in, ".srdf") {
		return fmt.Errorf("build: %s is already a snapshot", in)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(strings.TrimSuffix(in, ".nt"), ".ttl") + ".srdf"
	}
	st, _, err := loadStore(in, *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st, false); err != nil {
		return err
	}
	if err := st.Save(path); err != nil {
		return err
	}
	if info, err := os.Stat(path); err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, info.Size())
	}
	return nil
}

func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	summary := fs.String("summary", "", "comma-separated keywords for schema summarization")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("schema: need one data file")
	}
	st, organized, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st, organized); err != nil {
		return err
	}
	if *summary != "" {
		fmt.Print(st.SchemaSummary(strings.Split(*summary, ","), 0))
		return nil
	}
	fmt.Print(st.SQLSchema())
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	mode := fs.String("mode", "rdfscan", "plan family: default or rdfscan")
	zones := fs.Bool("zonemaps", true, "use zone maps")
	explain := fs.Bool("explain", false, "print the plan instead of executing")
	qtext := fs.String("q", "", "SPARQL query text")
	qfile := fs.String("f", "", "file containing the SPARQL query")
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	noOrganize := fs.Bool("no-organize", false, "query the raw triple store")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query: need one data file")
	}
	if *qtext == "" && *qfile == "" {
		return fmt.Errorf("query: need -q or -f")
	}
	if *qfile != "" {
		b, err := os.ReadFile(*qfile)
		if err != nil {
			return err
		}
		*qtext = string(b)
	}
	st, organized, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if !*noOrganize {
		if err := organize(st, organized); err != nil {
			return err
		}
	}
	var m srdf.Mode = plan.ModeRDFScan
	if *mode == "default" {
		m = plan.ModeDefault
	}
	qo := srdf.QueryOptions{Mode: m, ZoneMaps: *zones}
	if *explain {
		exp, err := st.Explain(*qtext, qo)
		if err != nil {
			return err
		}
		fmt.Print(exp)
		return nil
	}
	res, err := st.QueryWith(*qtext, qo)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	ps := st.PoolStats()
	fmt.Fprintf(os.Stderr, "%d rows; %d page misses, simulated I/O %v\n", res.Len(), ps.Misses, ps.SimIO)
	return nil
}

// cmdExplain prints a query's plan. With -analyze the query actually
// executes and every operator line carries act_rows= and time= beside
// the estimates, followed by the worst est/act mis-estimation.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	mode := fs.String("mode", "rdfscan", "plan family: default or rdfscan")
	zones := fs.Bool("zonemaps", true, "use zone maps")
	analyze := fs.Bool("analyze", false, "execute the query and annotate the plan with actual rows and per-operator time")
	qtext := fs.String("q", "", "SPARQL query text")
	qfile := fs.String("f", "", "file containing the SPARQL query")
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: need one data file")
	}
	if *qtext == "" && *qfile == "" {
		return fmt.Errorf("explain: need -q or -f")
	}
	if *qfile != "" {
		b, err := os.ReadFile(*qfile)
		if err != nil {
			return err
		}
		*qtext = string(b)
	}
	st, organized, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st, organized); err != nil {
		return err
	}
	var m srdf.Mode = plan.ModeRDFScan
	if *mode == "default" {
		m = plan.ModeDefault
	}
	qo := srdf.QueryOptions{Mode: m, ZoneMaps: *zones}
	var exp string
	if *analyze {
		exp, err = st.ExplainAnalyze(context.Background(), *qtext, qo)
	} else {
		exp, err = st.Explain(*qtext, qo)
	}
	if err != nil {
		return err
	}
	fmt.Print(exp)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: need one data file")
	}
	st, organized, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st, organized); err != nil {
		return err
	}
	s := st.Stats()
	fmt.Printf("triples    %d\nresources  %d\nliterals   %d\ntables     %d\nirregular  %d\ncoverage   %.1f%%\n",
		s.Triples, s.Resources, s.Literals, s.Tables, s.Irregular, 100*s.Coverage)
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	table := fs.String("table", "", "table name (default: all)")
	limit := fs.Int("limit", 20, "max rows per table")
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dump: need one data file")
	}
	st, organized, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st, organized); err != nil {
		return err
	}
	cat := st.Internal().Catalog()
	d := st.Internal().Dict()
	for _, t := range cat.SortedTables() {
		if *table != "" && t.Name != *table {
			continue
		}
		fmt.Printf("-- %s (%d rows)\n%s\n", t.Name, t.Count, cat.DumpCSV(t, d, *limit))
	}
	return nil
}
