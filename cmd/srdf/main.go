// Command srdf is the CLI for the self-organizing RDF store: it loads an
// N-Triples (or Turtle) file, discovers the emergent relational schema,
// and answers SPARQL queries with either plan family.
//
// Usage:
//
//	srdf schema  [-minsupport N] [-summary kw1,kw2] data.nt
//	srdf query   [-mode default|rdfscan] [-zonemaps] [-explain] -q 'SELECT ...' data.nt
//	srdf stats   data.nt
//	srdf dump    [-table name] [-limit N] data.nt
//
// The store is in-memory; each invocation loads, organizes, and answers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"srdf"
	"srdf/internal/plan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "schema":
		err = cmdSchema(args)
	case "query":
		err = cmdQuery(args)
	case "stats":
		err = cmdStats(args)
	case "dump":
		err = cmdDump(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "srdf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: srdf <schema|query|stats|dump> [flags] data.nt
  schema   discover and print the emergent SQL schema
  query    run a SPARQL query (-q '...' or -f query.rq)
  stats    print store statistics after organization
  dump     print a discovered table as CSV`)
}

func loadStore(path string, minSupport int) (*srdf.Store, error) {
	opts := srdf.Defaults()
	if minSupport > 0 {
		opts.MinSupport = minSupport
	}
	st := srdf.New(opts)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".ttl") {
		if _, err := st.LoadTurtle(f); err != nil {
			return nil, err
		}
	} else {
		n, errs, err := st.LoadNTriples(f, true)
		if err != nil {
			return nil, err
		}
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "srdf: skipped %d malformed lines\n", len(errs))
		}
		_ = n
	}
	return st, nil
}

func organize(st *srdf.Store) error {
	rep, err := st.Organize()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, rep)
	return nil
}

func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	summary := fs.String("summary", "", "comma-separated keywords for schema summarization")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("schema: need one data file")
	}
	st, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st); err != nil {
		return err
	}
	if *summary != "" {
		fmt.Print(st.SchemaSummary(strings.Split(*summary, ","), 0))
		return nil
	}
	fmt.Print(st.SQLSchema())
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	mode := fs.String("mode", "rdfscan", "plan family: default or rdfscan")
	zones := fs.Bool("zonemaps", true, "use zone maps")
	explain := fs.Bool("explain", false, "print the plan instead of executing")
	qtext := fs.String("q", "", "SPARQL query text")
	qfile := fs.String("f", "", "file containing the SPARQL query")
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	noOrganize := fs.Bool("no-organize", false, "query the raw triple store")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query: need one data file")
	}
	if *qtext == "" && *qfile == "" {
		return fmt.Errorf("query: need -q or -f")
	}
	if *qfile != "" {
		b, err := os.ReadFile(*qfile)
		if err != nil {
			return err
		}
		*qtext = string(b)
	}
	st, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if !*noOrganize {
		if err := organize(st); err != nil {
			return err
		}
	}
	var m srdf.Mode = plan.ModeRDFScan
	if *mode == "default" {
		m = plan.ModeDefault
	}
	qo := srdf.QueryOptions{Mode: m, ZoneMaps: *zones}
	if *explain {
		exp, err := st.Explain(*qtext, qo)
		if err != nil {
			return err
		}
		fmt.Print(exp)
		return nil
	}
	res, err := st.QueryWith(*qtext, qo)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	ps := st.PoolStats()
	fmt.Fprintf(os.Stderr, "%d rows; %d page misses, simulated I/O %v\n", res.Len(), ps.Misses, ps.SimIO)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: need one data file")
	}
	st, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st); err != nil {
		return err
	}
	s := st.Stats()
	fmt.Printf("triples    %d\nresources  %d\nliterals   %d\ntables     %d\nirregular  %d\ncoverage   %.1f%%\n",
		s.Triples, s.Resources, s.Literals, s.Tables, s.Irregular, 100*s.Coverage)
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	table := fs.String("table", "", "table name (default: all)")
	limit := fs.Int("limit", 20, "max rows per table")
	minSupport := fs.Int("minsupport", 0, "minimum CS support")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dump: need one data file")
	}
	st, err := loadStore(fs.Arg(0), *minSupport)
	if err != nil {
		return err
	}
	if err := organize(st); err != nil {
		return err
	}
	cat := st.Internal().Catalog()
	d := st.Internal().Dict()
	for _, t := range cat.SortedTables() {
		if *table != "" && t.Name != *table {
			continue
		}
		fmt.Printf("-- %s (%d rows)\n%s\n", t.Name, t.Count, cat.DumpCSV(t, d, *limit))
	}
	return nil
}
