package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srdf"
	"srdf/internal/plan"
	"srdf/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7878", "listen address")
	mode := fs.String("mode", "rdfscan", "plan family: default or rdfscan")
	zones := fs.Bool("zonemaps", true, "use zone maps")
	maxConcurrent := fs.Int("max-concurrent", 0, "max queries executing at once (0: GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queries waiting for a slot before 503 (0: 2x max-concurrent, -1: none)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query wall-clock limit, queue wait included (0: none)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain limit for open result streams")
	parallelism := fs.Int("parallelism", 0, "morsel-scan worker count per query (<=1: sequential)")
	minSupport := fs.Int("minsupport", 0, "minimum CS support (non-snapshot inputs)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: srdf serve [flags] data.nt|data.srdf

Serves the SPARQL 1.1 Protocol over HTTP:
  GET  /sparql?query=...           query via URL parameter
  POST /sparql                     query=... form body, or the bare query
                                   with Content-Type: application/sparql-query
  GET  /metrics                    Prometheus text-format metrics
  GET  /healthz                    liveness probe

Results content-negotiate between application/sparql-results+json
(default), text/csv, and text/tab-separated-values. Malformed queries
get 400, per-query timeouts 408, admission overflow 503 with
Retry-After. SIGINT/SIGTERM stop accepting and drain open streams.

Flags:`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("serve: need one data file")
	}

	st, organized, err := loadStoreOpts(fs.Arg(0), *minSupport, func(o *srdf.Options) {
		o.Parallelism = *parallelism
	})
	if err != nil {
		return err
	}
	if err := organize(st, organized); err != nil {
		return err
	}

	var m srdf.Mode = plan.ModeRDFScan
	if *mode == "default" {
		m = plan.ModeDefault
	}
	srv := server.New(st, server.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queue,
		QueryTimeout:  *timeout,
		Query:         srdf.QueryOptions{Mode: m, ZoneMaps: *zones},
	})

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "srdf serve: listening on %s (%d triples)\n", *addr, st.NumTriples())

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "srdf serve: %v, draining open streams (limit %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		fmt.Fprintln(os.Stderr, "srdf serve: drained")
		return nil
	}
}
