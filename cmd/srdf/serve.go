package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"srdf"
	"srdf/internal/plan"
	"srdf/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7878", "listen address")
	debugAddr := fs.String("debug-addr", "", "separate listener for pprof/expvar/query-log introspection (empty: disabled)")
	mode := fs.String("mode", "rdfscan", "plan family: default or rdfscan")
	zones := fs.Bool("zonemaps", true, "use zone maps")
	maxConcurrent := fs.Int("max-concurrent", 0, "max queries executing at once (0: GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queries waiting for a slot before 503 (0: 2x max-concurrent, -1: none)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query wall-clock limit, queue wait included (0: none)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain limit for open result streams")
	parallelism := fs.Int("parallelism", 0, "morsel-scan worker count per query (<=1: sequential)")
	minSupport := fs.Int("minsupport", 0, "minimum CS support (non-snapshot inputs)")
	maxQueryMem := fs.String("max-query-mem", "", "per-query memory budget for materializing operators, e.g. 64M or 1G (empty: unlimited)")
	poolBytes := fs.String("pool-bytes", "", "buffer pool budget for decoded sealed segments, e.g. 256M (empty: unlimited); past it cold segments evict back to the snapshot")
	maxResultRows := fs.Int64("max-result-rows", 0, "max rows per response; past it the stream is aborted (0: unlimited)")
	slowQuery := fs.Duration("slow-query", 0, "log completed queries slower than this with their text (0: disabled)")
	logFormat := fs.String("log-format", "text", "access-log format: text or json")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: srdf serve [flags] data.nt|data.srdf

Serves the SPARQL 1.1 Protocol over HTTP:
  GET  /sparql?query=...           query via URL parameter
  POST /sparql                     query=... form body, or the bare query
                                   with Content-Type: application/sparql-query
  GET  /sparql?...&explain=analyze run the query, return the plan annotated
                                   with actual rows and per-operator time
  GET  /metrics                    Prometheus text-format metrics
  GET  /healthz                    liveness probe (status, epoch, uptime)
  GET  /debug/queries              structured query log + workload profile

With -debug-addr a second private listener additionally serves
/debug/pprof/* and /debug/vars.

Results content-negotiate between application/sparql-results+json
(default), text/csv, and text/tab-separated-values. Malformed queries
get 400, per-query timeouts 408, admission overflow 503 with
Retry-After. SIGINT/SIGTERM stop accepting and drain open streams.

Flags:`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("serve: need one data file")
	}
	memLimit, err := parseSize(*maxQueryMem)
	if err != nil {
		return fmt.Errorf("serve: -max-query-mem: %w", err)
	}
	poolBudget, err := parseSize(*poolBytes)
	if err != nil {
		return fmt.Errorf("serve: -pool-bytes: %w", err)
	}
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		return fmt.Errorf("serve: -log-format must be text or json, got %q", *logFormat)
	}

	st, organized, err := loadStoreOpts(fs.Arg(0), *minSupport, func(o *srdf.Options) {
		o.Parallelism = *parallelism
		o.PoolBytes = poolBudget
	})
	if err != nil {
		return err
	}
	if err := organize(st, organized); err != nil {
		return err
	}

	var m srdf.Mode = plan.ModeRDFScan
	if *mode == "default" {
		m = plan.ModeDefault
	}
	cfg := server.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queue,
		QueryTimeout:  *timeout,
		MaxQueryMem:   memLimit,
		MaxResultRows: *maxResultRows,
		SlowQuery:     *slowQuery,
		Log:           logger,
		Query:         srdf.QueryOptions{Mode: m, ZoneMaps: *zones},
	}
	srv := server.New(st, cfg)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	if *debugAddr != "" {
		go func() {
			dbg := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
			if derr := dbg.ListenAndServe(); derr != nil && derr != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", derr)
			}
		}()
		logger.Info("debug listener", "addr", *debugAddr)
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	logger.Info("listening",
		"addr", *addr, "triples", st.NumTriples(), "epoch", st.Epoch(),
		"config", cfg.String(), "log_format", *logFormat)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("draining open streams", "signal", sig.String(), "limit", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		logger.Info("drained")
		return nil
	}
}

// parseSize parses a human byte size — plain bytes or a K/M/G suffix
// (binary multiples, case-insensitive, optional trailing B). Empty means
// 0 (unlimited).
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.TrimSuffix(strings.ToUpper(s), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, strings.TrimSuffix(u, "K")
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, strings.TrimSuffix(u, "M")
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, strings.TrimSuffix(u, "G")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
