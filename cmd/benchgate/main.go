// Command benchgate compares two `go test -bench` output files and
// fails (exit 1) when any benchmark matching the gate pattern regressed
// by more than the allowed factor — the CI guard that keeps the
// streaming executor's hot paths from silently slowing down.
//
// Usage:
//
//	benchgate [-match regexp] [-threshold 1.20] old.txt new.txt
//
// Benchmarks present in only one file are reported but never fail the
// gate (they are new or removed, not regressed). Single-shot (`-benchtime
// 1x`) runs are noisy, so the default threshold is deliberately loose.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	match := flag.String("match", `^Benchmark(Stream|Scan|Compact)_`, "regexp of benchmark names the gate applies to")
	threshold := flag.Float64("threshold", 1.20, "allowed new/old ns-per-op factor before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-match re] [-threshold f] old.txt new.txt")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	// A new run with zero gated benchmarks means the bench sweep broke or
	// the pattern is stale — a gate with no coverage must not pass green.
	if n := countNames(cur, re); n == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks matching %q in %s — empty gate\n", *match, flag.Arg(1))
		os.Exit(1)
	}
	regressed := Compare(old, cur, re, *threshold)
	for _, r := range regressed {
		fmt.Printf("REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.2fx > %.2fx allowed)\n",
			r.Name, r.Old, r.New, r.Factor, *threshold)
	}
	if len(regressed) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gated benchmarks within %.2fx\n", countMatches(cur, re, old), *threshold)
}

// Regression is one benchmark that slowed past the threshold.
type Regression struct {
	Name     string
	Old, New float64
	Factor   float64
}

// Compare returns the benchmarks matching re that are present in both
// runs and regressed beyond threshold.
func Compare(old, cur map[string]float64, re *regexp.Regexp, threshold float64) []Regression {
	var out []Regression
	for name, n := range cur {
		if !re.MatchString(name) {
			continue
		}
		o, ok := old[name]
		if !ok || o <= 0 {
			continue
		}
		if f := n / o; f > threshold {
			out = append(out, Regression{Name: name, Old: o, New: n, Factor: f})
		}
	}
	return out
}

func countNames(m map[string]float64, re *regexp.Regexp) int {
	n := 0
	for name := range m {
		if re.MatchString(name) {
			n++
		}
	}
	return n
}

func countMatches(cur map[string]float64, re *regexp.Regexp, old map[string]float64) int {
	n := 0
	for name := range cur {
		if _, ok := old[name]; ok && re.MatchString(name) {
			n++
		}
	}
	return n
}

// parseFile collects benchmarks as name -> best (minimum) ns/op. Taking
// the minimum over repeated samples of the same benchmark is the
// standard noise-robust statistic for single-shot runs: the CI job
// appends extra samples of the gated benchmarks precisely so the gate
// compares best-of-N, not one noisy shot.
func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ns, ok := ParseLine(sc.Text()); ok {
			if prev, seen := out[name]; !seen || ns < prev {
				out[name] = ns
			}
		}
	}
	return out, sc.Err()
}

// ParseLine extracts (name, ns/op) from one `go test -bench` result
// line, stripping the -N GOMAXPROCS suffix so runs from different
// machines compare.
func ParseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	var ns float64
	found := false
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			ns, found = v, true
			break
		}
	}
	if !found {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, ns, true
}
