package main

import (
	"os"
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkStream_AggregateHead/Streaming-8  \t 1 \t 11540450 ns/op", "BenchmarkStream_AggregateHead/Streaming", 11540450, true},
		{"BenchmarkStream_LimitEarlyTermination/full-16 1 123 ns/op 12 pages/op", "BenchmarkStream_LimitEarlyTermination/full", 123, true},
		{"BenchmarkLoadNTriples 5 200.5 ns/op 3 MB/s", "BenchmarkLoadNTriples", 200.5, true},
		{"goos: linux", "", 0, false},
		{"PASS", "", 0, false},
		{"BenchmarkNoResult", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := ParseLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("ParseLine(%q) = (%q, %v, %v), want (%q, %v, %v)", c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestCompare(t *testing.T) {
	re := regexp.MustCompile(`^BenchmarkStream_`)
	old := map[string]float64{
		"BenchmarkStream_A": 100,
		"BenchmarkStream_B": 100,
		"BenchmarkOther":    100,
		"BenchmarkStream_G": 100,
	}
	cur := map[string]float64{
		"BenchmarkStream_A": 115, // within 1.20x
		"BenchmarkStream_B": 150, // regression
		"BenchmarkOther":    900, // unmatched: ignored
		"BenchmarkStream_N": 999, // new: ignored
		"BenchmarkStream_G": 80,  // improvement
	}
	got := Compare(old, cur, re, 1.20)
	if len(got) != 1 || got[0].Name != "BenchmarkStream_B" {
		t.Fatalf("Compare = %+v, want single BenchmarkStream_B regression", got)
	}
	if got[0].Factor < 1.49 || got[0].Factor > 1.51 {
		t.Errorf("factor = %v, want 1.5", got[0].Factor)
	}
}

func TestParseFileMinOfSamples(t *testing.T) {
	// repeated samples of one benchmark gate on the minimum
	dir := t.TempDir()
	path := dir + "/bench.txt"
	data := "BenchmarkStream_X-8 1 300 ns/op\nBenchmarkStream_X-8 1 100 ns/op\nBenchmarkStream_X-8 1 200 ns/op\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkStream_X"] != 100 {
		t.Fatalf("min of samples = %v, want 100", got["BenchmarkStream_X"])
	}
}
