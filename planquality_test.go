package srdf_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"srdf/internal/core"
	"srdf/internal/plan"
	"srdf/internal/rdfh"
)

// permutations returns every ordering of xs.
func permutations(xs []string) [][]string {
	if len(xs) <= 1 {
		return [][]string{append([]string(nil), xs...)}
	}
	var out [][]string
	for i := range xs {
		rest := make([]string, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{xs[i]}, p...))
		}
	}
	return out
}

// bestOf times fn reps times and returns the fastest run.
func bestOf(reps int, fn func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

// connected reports whether every prefix of the join order shares a
// variable with the next star, i.e. no step forces a cross product.
func connected(perm []string, adj map[string][]string) bool {
	in := map[string]bool{perm[0]: true}
	for _, s := range perm[1:] {
		ok := false
		for _, n := range adj[s] {
			if in[n] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		in[s] = true
	}
	return true
}

// TestPlanQuality exhaustively executes every connected join order x
// join algorithm for the join-bearing RDF-H queries and asserts the
// cost-based optimizer's default choice lands within 2x of the best
// forced configuration. Orders that force a cross product at some step
// are skipped: they are strictly dominated and blow the sweep up from
// seconds to minutes. Timing-based, so it is gated behind
// PLAN_QUALITY=1 and runs as a dedicated non-race CI step.
func TestPlanQuality(t *testing.T) {
	if os.Getenv("PLAN_QUALITY") == "" {
		t.Skip("set PLAN_QUALITY=1 (timing-sensitive; run without -race)")
	}
	h := getHarness(t)
	st := h.Clustered
	cases := []struct {
		id    string
		stars []string
		adj   map[string][]string
	}{
		{"Q3", []string{"c", "o", "li"}, map[string][]string{
			"c": {"o"}, "o": {"c", "li"}, "li": {"o"},
		}},
		{"Q5", []string{"c", "o", "li", "s", "n", "r"}, map[string][]string{
			"c": {"o", "n"}, "o": {"c", "li"}, "li": {"o", "s"},
			"s": {"li", "n"}, "n": {"c", "s", "r"}, "r": {"n"},
		}},
	}
	algos := []string{"hash", "merge"}
	const reps = 3

	for _, tc := range cases {
		q := rdfh.Queries()[tc.id]
		def := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
		res, err := st.Query(q, def) // warm the buffer pool
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		wantRows := res.Len()

		run := func(qo core.QueryOptions) (time.Duration, error) {
			return bestOf(reps, func() error {
				r, err := st.Query(q, qo)
				if err != nil {
					return err
				}
				if r.Len() != wantRows {
					return fmt.Errorf("returned %d rows, optimizer plan returned %d", r.Len(), wantRows)
				}
				return nil
			})
		}

		chosen, err := run(def)
		if err != nil {
			t.Fatalf("%s default: %v", tc.id, err)
		}

		best := time.Duration(1<<63 - 1)
		var bestCfg string
		swept := 0
		for _, perm := range permutations(tc.stars) {
			if !connected(perm, tc.adj) {
				continue
			}
			swept++
			for _, algo := range algos {
				qo := def
				qo.ForceOrder = perm
				qo.ForceAlgo = algo
				d, err := run(qo)
				if err != nil {
					t.Fatalf("%s order=%v algo=%s: %v", tc.id, perm, algo, err)
				}
				if d < best {
					best = d
					bestCfg = fmt.Sprintf("order=%v algo=%s", perm, algo)
				}
			}
		}
		// Re-measure the default after the sweep (everything is as warm
		// as it will get) and keep the faster measurement.
		if again, err := run(def); err == nil && again < chosen {
			chosen = again
		}
		t.Logf("%s: optimizer %v, best of %d connected orders x %d algos %v (%s)",
			tc.id, chosen, swept, len(algos), best, bestCfg)
		if chosen > 2*best {
			t.Errorf("%s: optimizer choice %v is more than 2x the best forced plan %v (%s)",
				tc.id, chosen, best, bestCfg)
		}
	}
}
