package srdf_test

import (
	"fmt"
	"strings"
	"testing"

	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// deltaBenchStore builds an organized store of n clustered subjects and
// trickles extra delta rows of the same shape on top (auto-compaction
// disabled so the delta tail stays unsealed).
func deltaBenchStore(b *testing.B, n, delta int) *core.Store {
	b.Helper()
	var src strings.Builder
	src.WriteString("@prefix d: <http://del/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src, "d:s%06d d:a %d ; d:b %d .\n", i, i%9973, i%89)
	}
	opts := core.DefaultOptions()
	opts.CompactThreshold = -1
	st := core.NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(src.String())); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Organize(); err != nil {
		b.Fatal(err)
	}
	addDelta(st, n, delta)
	return st
}

// addDelta trickles count fresh subjects shaped like the clustered ones.
func addDelta(st *core.Store, base, count int) {
	for i := 0; i < count; i++ {
		s := dict.IRI(fmt.Sprintf("http://del/s%06d", base+i))
		st.Add(nt.Triple{S: s, P: dict.IRI("http://del/a"), O: dict.IntLit(int64(i % 9973))})
		st.Add(nt.Triple{S: s, P: dict.IRI("http://del/b"), O: dict.IntLit(int64(i % 89))})
	}
}

const deltaBenchQuery = `PREFIX d: <http://del/>
SELECT ?s ?x WHERE { ?s d:a ?x . ?s d:b ?y . }`

// BenchmarkStream_DeltaScan measures the RDF-H-style update workload
// read path: a multi-block sealed table scanned through selection
// vectors followed by the unsealed delta tail. The sealed variant is
// the no-updates baseline; delta4096 carries a 4096-row unsealed tail
// plus tombstones from 512 deletions.
func BenchmarkStream_DeltaScan(b *testing.B) {
	qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
	run := func(b *testing.B, st *core.Store) {
		// fold pending writes in once, outside the timer
		st.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := st.QueryStream(deltaBenchQuery, qo)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			rows.Close()
		}
	}
	b.Run("sealed", func(b *testing.B) {
		run(b, deltaBenchStore(b, 20000, 0))
	})
	b.Run("delta4096", func(b *testing.B) {
		st := deltaBenchStore(b, 20000, 4096)
		for i := 0; i < 512; i++ {
			s := dict.IRI(fmt.Sprintf("http://del/s%06d", i*7))
			st.Delete(nt.Triple{S: s, P: dict.IRI("http://del/a"), O: dict.IntLit(int64((i * 7) % 9973))})
		}
		run(b, st)
	})
}

// BenchmarkCompact_Merge measures Store.Compact folding a 4096-row
// delta into freshly sealed segments — the cost the auto-compaction
// threshold amortizes, and the cheap alternative to the full Organize
// measured by benchOrganize-style runs.
func BenchmarkCompact_Merge(b *testing.B) {
	st := deltaBenchStore(b, 20000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		addDelta(st, 100000+i*4096, 4096)
		st.Stats() // apply the delta outside the timer
		b.StartTimer()
		if _, err := st.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
