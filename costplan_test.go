package srdf_test

import (
	"testing"

	"srdf"
)

// Three emergent classes chained by FKs: books -> authors -> countries.
const chainSrc = `@prefix l: <http://l/> .
l:b1 l:author l:a1 ; l:year 1991 .
l:b2 l:author l:a1 ; l:year 1992 .
l:b3 l:author l:a2 ; l:year 1993 .
l:b4 l:author l:a3 ; l:year 1994 .
l:b5 l:author l:a4 ; l:year 1995 .
l:b6 l:author l:a5 ; l:year 1996 .
l:a1 l:name "Alice" ; l:country l:c1 .
l:a2 l:name "Bob" ; l:country l:c2 .
l:a3 l:name "Cleo" ; l:country l:c3 .
l:a4 l:name "Dave" ; l:country l:c1 .
l:a5 l:name "Eve" ; l:country l:c2 .
l:c1 l:cname "NL" ; l:pop 17 .
l:c2 l:cname "DE" ; l:pop 83 .
l:c3 l:cname "FR" ; l:pop 68 .
`

// TestGoldenExplainCostedChain pins the costed plan for a 3-way star
// chain across the live-update lifecycle. Sealed, the optimizer runs
// the FK chain as MergeJoins over the subject-ordered author and
// country tables. Trickling a new author in puts delta rows on the
// author table, which disqualifies it from merge joins (the delta tail
// is unsorted), so that step falls back to a hash join; Compact seals
// the delta and the merge plan comes back.
func TestGoldenExplainCostedChain(t *testing.T) {
	o := srdf.Defaults()
	o.CompactThreshold = -1 // explicit Compact only: the test drives it
	s := srdf.New(o)
	s.MustLoadTurtle(chainSrc)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?b ?n WHERE {
  ?b <http://l/author> ?a . ?b <http://l/year> ?y .
  ?a <http://l/name> ?nm . ?a <http://l/country> ?c .
  ?c <http://l/cname> ?n . ?c <http://l/pop> ?p }`
	qo := srdf.QueryOptions{Mode: srdf.RDFScan, ZoneMaps: true}

	check := func(stage, want string) {
		t.Helper()
		ex, err := s.Explain(q, qo)
		if err != nil {
			t.Fatal(err)
		}
		if ex != want {
			t.Errorf("%s explain:\n got:\n%s\nwant:\n%s", stage, ex, want)
		}
		res, err := s.QueryWith(q, qo)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 6 {
			t.Errorf("%s: %d rows, want 6", stage, res.Len())
		}
	}

	const sealedWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=2
Project ?b ?n
  MergeJoin ?c -> cname_pop [2 props, subject-ordered scan] est_rows=6 cost=51
    MergeJoin ?a -> country_name [2 props, subject-ordered scan] est_rows=6 cost=34
      RDFscan ?b over author_year [2 props, 0 self-joins] +zonemaps est_rows=6 cost=12
        col p=R15 ?a enc=for×1
        col p=R16 ?y enc=for×1
`
	check("sealed", sealedWant)

	// A new author arrives: the author table grows a delta tail.
	s.Add(srdf.Triple{S: srdf.IRI("http://l/a9"), P: srdf.IRI("http://l/name"), O: srdf.StringLit("Zoe")})
	s.Add(srdf.Triple{S: srdf.IRI("http://l/a9"), P: srdf.IRI("http://l/country"), O: srdf.IRI("http://l/c3")})

	// The author table no longer qualifies for a merge join (unsorted
	// delta tail), so the DP re-anchors the plan on the author star and
	// hash-joins the books on top.
	const deltaWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=2
Project ?b ?n
  HashJoin on [?a] est_rows=6 cost=89
    MergeJoin ?c -> cname_pop [2 props, subject-ordered scan] est_rows=5 cost=33
      RDFscan ?a over country_name [2 props, 0 self-joins] +zonemaps delta=1 est_rows=5 cost=18
        col p=R17 ?nm enc=for×1
        col p=R18 ?c enc=for×1
    RDFscan ?b over author_year [2 props, 0 self-joins] +zonemaps est_rows=6 cost=12
      col p=R15 ?a enc=for×1
      col p=R16 ?y enc=for×1
`
	check("delta", deltaWant)

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compact seals the delta, but the merged-in author a9 sits outside
	// the table's dense subject range, so books->authors stays a hash
	// join; the countries merge join needs only the inner table dense.
	const compactedWant = `Plan [RDFscan/RDFjoin +zonemaps] joins=2
Project ?b ?n
  HashJoin on [?a] est_rows=6 cost=81
    MergeJoin ?c -> cname_pop [2 props, subject-ordered scan] est_rows=5 cost=25
      RDFscan ?a over country_name [2 props, 0 self-joins] +zonemaps est_rows=5 cost=10
        col p=R17 ?nm enc=for×1
        col p=R18 ?c enc=for×1
    RDFscan ?b over author_year [2 props, 0 self-joins] +zonemaps est_rows=6 cost=12
      col p=R15 ?a enc=for×1
      col p=R16 ?y enc=for×1
`
	check("compacted", compactedWant)
}
