module srdf

go 1.23.0
