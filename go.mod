module srdf

go 1.24
