package srdf_test

import (
	"path/filepath"
	"testing"

	"srdf"
)

// TestPublicPersistence drives the public API end to end: New → load →
// Organize → Save → Open with a WAL → trickle writes → crash →
// Open-recover, all through srdf.* only.
func TestPublicPersistence(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "pub.srdf")
	wal := filepath.Join(dir, "pub.wal")

	st := srdf.New(srdf.Defaults())
	st.MustLoadTurtle(`@prefix e: <http://e/> .
e:s1 e:name "ann" ; e:age 31 .
e:s2 e:name "ben" ; e:age 22 .
e:s3 e:name "cyd" ; e:age 45 .
`)
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}

	opts := srdf.Defaults()
	opts.WALPath = wal
	live, err := srdf.Open(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ps := live.PoolStats(); ps.SegmentsDecoded != 0 {
		t.Fatalf("open decoded %d segments; must be lazy", ps.SegmentsDecoded)
	}
	live.Add(srdf.Triple{S: srdf.IRI("http://e/s4"), P: srdf.IRI("http://e/name"), O: srdf.StringLit("dot")})
	live.Add(srdf.Triple{S: srdf.IRI("http://e/s4"), P: srdf.IRI("http://e/age"), O: srdf.IntLit(28)})
	live.Delete(srdf.Triple{S: srdf.IRI("http://e/s2"), P: srdf.IRI("http://e/age"), O: srdf.IntLit(22)})
	// Stats refreshes: the pending batch becomes durable (fsync-on-batch)
	// and visible. A crash from here on loses nothing.
	if st := live.Stats(); st.Triples != 7 { // 6 + 2 - 1
		t.Fatalf("Triples = %d, want 7", st.Triples)
	}
	// crash: no Save, no Close

	rec, err := srdf.Open(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	res, err := rec.Query(`SELECT ?s ?n ?a WHERE { ?s <http://e/name> ?n . ?s <http://e/age> ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // s1, s3, recovered s4; s2 lost its age
		t.Fatalf("recovered query returned %d rows:\n%s", res.Len(), res)
	}
	if n := rec.NumTriples(); n != 7 {
		t.Fatalf("recovered NumTriples = %d, want 7", n)
	}
}
