package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"srdf"
)

// TestMetricsExpositionLint scrapes a live server that has seen traffic
// and lints the whole exposition: every series belongs to a family with
// exactly one HELP and one TYPE line, family names are unique, and
// histogram buckets are cumulative and end at +Inf.
func TestMetricsExpositionLint(t *testing.T) {
	srv := testServer(t, 20, Config{MaxResultRows: 5})
	h := srv.Handler()
	// Traffic across outcomes so labeled series and histograms move.
	get(t, h, "/sparql?query="+url.QueryEscape(nameQuery+" LIMIT 3"), "")
	get(t, h, "/sparql?query="+url.QueryEscape(nameQuery+" LIMIT 3"), "")
	get(t, h, "/sparql?query=", "") // bad query

	body := get(t, h, "/metrics", "").Body.String()
	type fam struct{ help, typ int }
	fams := map[string]*fam{}
	var order []string
	famOf := func(series string) string {
		// strip histogram suffixes so buckets attach to their family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(series, suf)
			if base != series && fams[base] != nil {
				return base
			}
		}
		return series
	}
	seen := map[string]bool{}
	var lastBucket float64 = -1
	var bucketFam string
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if fams[name] == nil {
				fams[name] = &fam{}
				order = append(order, name)
			}
			fams[name].help++
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			if fams[name] == nil {
				t.Errorf("TYPE before HELP for %s", name)
				fams[name] = &fam{}
			}
			fams[name].typ++
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			f := famOf(name)
			if fams[f] == nil {
				t.Errorf("series %q has no HELP/TYPE family", line)
				continue
			}
			if name == f && seen[line] {
				t.Errorf("duplicate series %q", line)
			}
			seen[line] = true
			// cumulative-bucket check per histogram family
			if strings.Contains(line, "_bucket{le=") {
				if f != bucketFam {
					bucketFam, lastBucket = f, -1
				}
				v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
				if err != nil {
					t.Errorf("unparsable bucket line %q", line)
					continue
				}
				if v < lastBucket {
					t.Errorf("non-cumulative bucket in %s: %q after %g", f, line, lastBucket)
				}
				lastBucket = v
				if strings.Contains(line, `le="+Inf"`) {
					bucketFam, lastBucket = "", -1
				}
			}
		}
	}
	for _, name := range order {
		if f := fams[name]; f.help != 1 || f.typ != 1 {
			t.Errorf("family %s has %d HELP / %d TYPE lines, want 1/1", name, f.help, f.typ)
		}
	}

	// The new executor and query-log series exist and moved with traffic.
	for _, want := range []string{"srdf_exec_scan_rows_total", "srdf_exec_operator_seconds_total",
		"srdf_query_log_queries_total 2", "srdf_store_epoch"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, "srdf_exec_scan_rows_total 0\n") {
		t.Error("srdf_exec_scan_rows_total did not move under traffic")
	}
}

// TestDebugQueriesEndpoint checks /debug/queries returns the recent
// queries (newest first, fields populated) plus the workload profile.
func TestDebugQueriesEndpoint(t *testing.T) {
	srv := testServer(t, 10, Config{})
	h := srv.Handler()
	get(t, h, "/sparql?query="+url.QueryEscape(nameQuery), "")
	get(t, h, "/sparql?query="+url.QueryEscape(nameQuery), "")

	w := get(t, h, "/debug/queries", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/queries: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got struct {
		Queries []srdf.QueryRecord   `json:"queries"`
		Profile srdf.WorkloadProfile `json:"profile"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, w.Body.String())
	}
	if len(got.Queries) != 2 {
		t.Fatalf("%d records, want 2", len(got.Queries))
	}
	rec := got.Queries[0]
	if rec.Outcome != "ok" || rec.Rows != 10 || rec.TextHash == "" || !rec.CacheHit {
		t.Errorf("newest record not populated: %+v", rec)
	}
	if len(rec.Predicates) != 1 || rec.Predicates[0] != "http://ex/name" {
		t.Errorf("predicates = %v", rec.Predicates)
	}
	if got.Profile.Queries != 2 || got.Profile.PredicateTouches["http://ex/name"] != 2 {
		t.Errorf("profile = %+v", got.Profile)
	}
}

// TestExplainAnalyzeEndpoint checks explain=analyze runs the query and
// returns the annotated plan as text.
func TestExplainAnalyzeEndpoint(t *testing.T) {
	srv := testServer(t, 10, Config{})
	h := srv.Handler()

	w := get(t, h, "/sparql?explain=analyze&query="+url.QueryEscape(nameQuery), "")
	if w.Code != http.StatusOK {
		t.Fatalf("explain=analyze: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{"(analyzed)", "act_rows=10", "actual: rows=10", "est_rows="} {
		if !strings.Contains(body, want) {
			t.Errorf("analyze output missing %q:\n%s", want, body)
		}
	}
	if w.Header().Get("X-SRDF-Request") == "" {
		t.Error("response missing X-SRDF-Request id")
	}

	if w := get(t, h, "/sparql?explain=verbose&query="+url.QueryEscape(nameQuery), ""); w.Code != http.StatusBadRequest {
		t.Errorf("unknown explain mode: %d, want 400", w.Code)
	}
	if w := get(t, h, "/sparql?explain=analyze&query=garbage", ""); w.Code != http.StatusBadRequest {
		t.Errorf("analyze of bad query: %d, want 400", w.Code)
	}
}

// TestHealthzStates regression-tests the enriched /healthz body in all
// three states: ok, degraded (see robust_test.go for the fault-driven
// path), and draining.
func TestHealthzStates(t *testing.T) {
	srv := testServer(t, 5, Config{})
	h := srv.Handler()

	w := get(t, h, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("ok healthz: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"status: ok\n", "epoch: ", "uptime_seconds: "} {
		if !strings.Contains(body, want) {
			t.Errorf("ok body missing %q: %q", want, body)
		}
	}

	srv.draining.Store(true)
	w = get(t, h, "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", w.Code)
	}
	body = w.Body.String()
	for _, want := range []string{"status: draining\n", "epoch: ", "uptime_seconds: "} {
		if !strings.Contains(body, want) {
			t.Errorf("draining body missing %q: %q", want, body)
		}
	}
}

// TestAccessAndSlowQueryLog checks the structured log: one access line
// per query carrying the request id, and a warning with the query text
// past the slow-query threshold.
func TestAccessAndSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	st := testStore(t, 10, srdf.Defaults())
	srv := New(st, Config{SlowQuery: time.Nanosecond, Log: logger})
	h := srv.Handler()

	w := get(t, h, "/sparql?query="+url.QueryEscape(nameQuery), "")
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}
	reqID := w.Header().Get("X-SRDF-Request")
	if reqID == "" {
		t.Fatal("no X-SRDF-Request header")
	}

	dec := json.NewDecoder(&buf)
	var access, slow map[string]any
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("log line: %v", err)
		}
		switch m["msg"] {
		case "query":
			access = m
		case "slow query":
			slow = m
		}
	}
	if access == nil {
		t.Fatal("no access log line")
	}
	if access["id"] != reqID || access["outcome"] != "ok" || access["rows"] != float64(10) {
		t.Errorf("access line = %v", access)
	}
	if slow == nil {
		t.Fatal("no slow-query line despite 1ns threshold")
	}
	if slow["id"] != reqID || !strings.Contains(fmt.Sprint(slow["query"]), "SELECT") {
		t.Errorf("slow line = %v", slow)
	}
}

// TestDebugHandlerPprof checks the debug mux serves pprof, expvar, and
// the query log without touching the public mux.
func TestDebugHandlerPprof(t *testing.T) {
	srv := testServer(t, 5, Config{})
	dbg := srv.DebugHandler()

	if w := get(t, dbg, "/debug/pprof/cmdline", ""); w.Code != http.StatusOK {
		t.Errorf("pprof cmdline: %d", w.Code)
	}
	if w := get(t, dbg, "/debug/vars", ""); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "memstats") {
		t.Errorf("expvar: %d", w.Code)
	}
	if w := get(t, dbg, "/debug/queries", ""); w.Code != http.StatusOK {
		t.Errorf("debug queries: %d", w.Code)
	}
	// The public mux must NOT serve pprof.
	if w := get(t, srv.Handler(), "/debug/pprof/cmdline", ""); w.Code == http.StatusOK {
		t.Error("public mux serves pprof")
	}
}
