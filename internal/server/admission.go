package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when both the execution slots and the wait
// queue are full; the HTTP layer maps it to 503 with Retry-After.
var ErrOverloaded = errors.New("server: admission queue full")

// admission is the semaphore-based admission controller: at most
// maxConcurrent queries execute at once, at most queueDepth more wait
// for a slot, and everything beyond that is rejected immediately — the
// server sheds load instead of stacking unbounded goroutines behind a
// saturated executor. A waiter whose context fires (client gone, query
// deadline already spent in the queue) leaves without a slot.
type admission struct {
	slots   chan struct{}
	queueN  int64
	waiting atomic.Int64
}

func newAdmission(maxConcurrent, queueDepth int) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:  make(chan struct{}, maxConcurrent),
		queueN: int64(queueDepth),
	}
}

// acquire obtains an execution slot, queueing up to the depth bound.
// The caller must release() exactly once on nil return.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueN {
		a.waiting.Add(-1)
		return ErrOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// inFlight reports the number of held execution slots.
func (a *admission) inFlight() int { return len(a.slots) }

// queued reports the number of requests waiting for a slot.
func (a *admission) queued() int { return int(a.waiting.Load()) }
