package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"srdf"
)

// testStore builds an organized in-memory store with n people
// (name, age) — enough rows to stream over several batches when n is
// large.
func testStore(t testing.TB, n int, opts srdf.Options) *srdf.Store {
	t.Helper()
	st := srdf.New(opts)
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://ex/p%d> <http://ex/name> \"person %d\" .\n", i, i)
		fmt.Fprintf(&b, "<http://ex/p%d> <http://ex/age> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n", i, 20+i%60)
	}
	st.MustLoadTurtle(b.String())
	if _, err := st.Organize(); err != nil {
		t.Fatalf("organize: %v", err)
	}
	return st
}

func testServer(t testing.TB, n int, cfg Config) *Server {
	t.Helper()
	return New(testStore(t, n, srdf.Defaults()), cfg)
}

const nameQuery = `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`

func get(t *testing.T, h http.Handler, target, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestProtocolForms exercises the three SPARQL Protocol request forms
// against one live store and checks they return identical results.
func TestProtocolForms(t *testing.T) {
	srv := testServer(t, 10, Config{})
	h := srv.Handler()

	viaGET := get(t, h, "/sparql?query="+url.QueryEscape(nameQuery), "")
	if viaGET.Code != http.StatusOK {
		t.Fatalf("GET: %d %s", viaGET.Code, viaGET.Body.String())
	}
	if ct := viaGET.Header().Get("Content-Type"); !strings.HasPrefix(ct, MimeJSON) {
		t.Fatalf("GET content type %q", ct)
	}

	form := url.Values{"query": {nameQuery}}
	req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	viaForm := httptest.NewRecorder()
	h.ServeHTTP(viaForm, req)
	if viaForm.Code != http.StatusOK {
		t.Fatalf("POST form: %d %s", viaForm.Code, viaForm.Body.String())
	}

	req = httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(nameQuery))
	req.Header.Set("Content-Type", "application/sparql-query")
	viaRaw := httptest.NewRecorder()
	h.ServeHTTP(viaRaw, req)
	if viaRaw.Code != http.StatusOK {
		t.Fatalf("POST raw: %d %s", viaRaw.Code, viaRaw.Body.String())
	}

	if viaGET.Body.String() != viaForm.Body.String() || viaGET.Body.String() != viaRaw.Body.String() {
		t.Fatalf("the three protocol forms disagree:\nGET  %s\nform %s\nraw  %s",
			viaGET.Body.String(), viaForm.Body.String(), viaRaw.Body.String())
	}
	if n := strings.Count(viaGET.Body.String(), `"type":"uri"`); n != 10 {
		t.Fatalf("expected 10 uri bindings, got %d in %s", n, viaGET.Body.String())
	}
}

func TestContentNegotiationMatrix(t *testing.T) {
	srv := testServer(t, 5, Config{})
	h := srv.Handler()
	target := "/sparql?query=" + url.QueryEscape(nameQuery)
	cases := []struct {
		accept   string
		wantCT   string
		wantCode int
	}{
		{"", MimeJSON, http.StatusOK},
		{MimeJSON, MimeJSON, http.StatusOK},
		{"application/json", MimeJSON, http.StatusOK},
		{MimeCSV, MimeCSV, http.StatusOK},
		{MimeTSV, MimeTSV, http.StatusOK},
		{"text/*", MimeCSV, http.StatusOK},
		{"*/*", MimeJSON, http.StatusOK},
		{"application/rdf+xml", "", http.StatusNotAcceptable},
	}
	for _, c := range cases {
		w := get(t, h, target, c.accept)
		if w.Code != c.wantCode {
			t.Errorf("Accept %q: code %d, want %d", c.accept, w.Code, c.wantCode)
			continue
		}
		if c.wantCT != "" && !strings.HasPrefix(w.Header().Get("Content-Type"), c.wantCT) {
			t.Errorf("Accept %q: content type %q, want %s", c.accept, w.Header().Get("Content-Type"), c.wantCT)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	srv := testServer(t, 5, Config{})
	h := srv.Handler()

	if w := get(t, h, "/sparql", ""); w.Code != http.StatusBadRequest {
		t.Errorf("missing query: %d, want 400", w.Code)
	}
	if w := get(t, h, "/sparql?query="+url.QueryEscape("SELECT WHERE garbage {{{"), ""); w.Code != http.StatusBadRequest {
		t.Errorf("malformed query: %d, want 400", w.Code)
	}

	req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(nameQuery))
	req.Header.Set("Content-Type", "text/plain")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusUnsupportedMediaType {
		t.Errorf("bad POST content type: %d, want 415", w.Code)
	}

	req = httptest.NewRequest(http.MethodDelete, "/sparql", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: %d, want 405", w.Code)
	}
}

func TestQueryTimeout408(t *testing.T) {
	srv := testServer(t, 200, Config{QueryTimeout: time.Nanosecond})
	w := get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(nameQuery), "")
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("timeout: %d %s, want 408", w.Code, w.Body.String())
	}
}

func TestAdmissionOverflow503(t *testing.T) {
	srv := testServer(t, 5, Config{MaxConcurrent: 1, QueueDepth: -1})
	// Hold the only execution slot, as a running query would.
	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	w := get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(nameQuery), "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	srv.adm.release()
	if w := get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(nameQuery), ""); w.Code != http.StatusOK {
		t.Fatalf("after release: %d, want 200", w.Code)
	}
}

func TestAdmissionQueueWaits(t *testing.T) {
	srv := testServer(t, 5, Config{MaxConcurrent: 1, QueueDepth: 1})
	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(nameQuery), "")
	}()
	// The queued request must wait, not fail.
	select {
	case w := <-done:
		t.Fatalf("queued request finished with %d while the slot was held", w.Code)
	case <-time.After(50 * time.Millisecond):
	}
	srv.adm.release()
	select {
	case w := <-done:
		if w.Code != http.StatusOK {
			t.Fatalf("dequeued request: %d, want 200", w.Code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never ran after release")
	}
}

// TestCancellationFreesSlotAndGoroutines cancels queries mid-stream and
// checks the executor's morsel workers exit (goroutine probe — no
// goleak dependency) and the admission slot comes back.
func TestCancellationFreesSlotAndGoroutines(t *testing.T) {
	opts := srdf.Defaults()
	opts.Parallelism = 4
	st := testStore(t, 3000, opts)
	srv := New(st, Config{MaxConcurrent: 1})

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req := httptest.NewRequest(http.MethodGet,
			"/sparql?query="+url.QueryEscape(nameQuery), nil).WithContext(ctx)
		w := httptest.NewRecorder()
		donec := make(chan struct{})
		go func() {
			defer close(donec)
			defer func() {
				// the handler aborts truncated streams with
				// http.ErrAbortHandler; the real server swallows it
				if r := recover(); r != nil && r != http.ErrAbortHandler {
					panic(r)
				}
			}()
			srv.Handler().ServeHTTP(w, req)
		}()
		cancel()
		<-donec
	}

	// The slot must be free: a fresh query succeeds immediately.
	if w := get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(nameQuery), ""); w.Code != http.StatusOK {
		t.Fatalf("after cancellations: %d, want 200", w.Code)
	}
	if n := srv.adm.inFlight(); n != 0 {
		t.Fatalf("admission slots leaked: %d in flight", n)
	}

	// Morsel workers poll the context and exit; give them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Fatalf("goroutines leaked: %d before, %d after", before, n)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGracefulShutdownDrains opens a streaming response over a real
// listener, starts Shutdown, and checks the open stream is allowed to
// finish before Shutdown returns.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := testServer(t, 3000, Config{})
	// Slow the stream down so it is provably still open when Shutdown
	// starts (socket buffers would otherwise swallow the whole result).
	srv.rowHook = func() { time.Sleep(100 * time.Microsecond) }
	go srv.ListenAndServe("127.0.0.1:0")
	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		addr = srv.Addr()
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server never bound")
	}

	resp, err := http.Get("http://" + addr + "/sparql?query=" + url.QueryEscape(nameQuery))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	// Read a little, then shut down with the stream still open.
	if _, err := io.ReadFull(resp.Body, make([]byte, 64)); err != nil {
		t.Fatalf("first bytes: %v", err)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a stream was open", err)
	case <-time.After(100 * time.Millisecond):
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("drain read: %v", err)
	}
	if !strings.HasSuffix(strings.TrimSpace(string(body)), "]}}") {
		t.Fatalf("stream was truncated by shutdown: ...%q", tail(string(body), 40))
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t, 5, Config{})
	h := srv.Handler()
	get(t, h, "/sparql?query="+url.QueryEscape(nameQuery), "")
	get(t, h, "/sparql?query="+url.QueryEscape(nameQuery), "") // plan-cache hit
	get(t, h, "/sparql?query=", "")                            // bad query

	w := get(t, h, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	wants := []string{
		`srdf_queries_total{status="ok"} 2`,
		"srdf_plan_cache_hits_total 1",
		// two misses: the first real query, and the malformed one (its
		// lookup precedes the parse failure)
		"srdf_plan_cache_misses_total 2",
		"srdf_query_duration_seconds_count 2",
		"srdf_inflight_queries 0",
		"srdf_pool_hits_total",
		"srdf_triples 10",
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t, 5, Config{})
	if w := get(t, srv.Handler(), "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
}
