package server

import (
	"sync/atomic"
	"time"

	"srdf/internal/core"
	"srdf/internal/exec"
	"srdf/internal/obs"
)

// latencyBuckets are the query-duration histogram bounds in seconds,
// roughly exponential from 100µs to 10s.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// serverMetrics holds the request-side counters the handlers touch on
// every query, pre-resolved from the registry so the hot path never
// takes the label-lookup lock.
type serverMetrics struct {
	queriesOK       *obs.Counter
	queriesBad      *obs.Counter // malformed/unplannable (400)
	queriesTimeout  *obs.Counter // deadline exceeded (408 or truncated)
	queriesCanceled *obs.Counter // client disconnected mid-query
	queriesRejected *obs.Counter // admission overflow (503)
	queriesErr      *obs.Counter // internal failures (500)
	queriesMem      *obs.Counter // memory budget exceeded (413)
	queriesCapped   *obs.Counter // row cap hit, stream aborted
	rowsSent        *obs.Counter
	// handlerPanics counts panics recovered at the HTTP layer; it is
	// not its own family — srdf_panics_total folds it in with the
	// executor's pipeline panics.
	handlerPanics atomic.Uint64

	latency *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	q := reg.LabeledCounter("srdf_queries_total", "Queries by outcome.", "status")
	return &serverMetrics{
		queriesOK:       q.With("ok"),
		queriesBad:      q.With("bad_query"),
		queriesTimeout:  q.With("timeout"),
		queriesCanceled: q.With("canceled"),
		queriesRejected: q.With("rejected"),
		queriesErr:      q.With("error"),
		queriesMem:      q.With("mem_budget"),
		queriesCapped:   q.With("row_capped"),
		rowsSent:        reg.Counter("srdf_result_rows_total", "Result rows serialized to clients."),
		latency: reg.Histogram("srdf_query_duration_seconds",
			"Query wall time, admission to last byte.", latencyBuckets),
	}
}

// registerDerivedMetrics wires every series whose value is owned
// elsewhere — admission, plan cache, buffer pool, store, executor,
// query log — as scrape-time closures, so /metrics is one registry
// walk instead of two files of fmt.Fprintf.
func (s *Server) registerDerivedMetrics() {
	reg, st := s.reg, s.store
	reg.GaugeFunc("srdf_inflight_queries", "Queries holding an execution slot.",
		func() float64 { return float64(s.adm.inFlight()) })
	reg.GaugeFunc("srdf_admission_queued", "Requests waiting for an execution slot.",
		func() float64 { return float64(s.adm.queued()) })
	reg.GaugeFunc("srdf_max_concurrent", "Execution slot capacity.",
		func() float64 { return float64(s.cfg.MaxConcurrent) })
	reg.GaugeFunc("srdf_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.start).Seconds() })

	reg.CounterFunc("srdf_plan_cache_hits_total", "Prepared-plan cache hits.",
		func() float64 { return float64(st.PlanCacheStats().Hits) })
	reg.CounterFunc("srdf_plan_cache_misses_total", "Prepared-plan cache misses.",
		func() float64 { return float64(st.PlanCacheStats().Misses) })
	reg.CounterFunc("srdf_plan_cache_evictions_total", "Prepared-plan cache LRU evictions.",
		func() float64 { return float64(st.PlanCacheStats().Evictions) })
	reg.GaugeFunc("srdf_plan_cache_entries", "Prepared plans cached for the current epoch.",
		func() float64 { return float64(st.PlanCacheStats().Size) })
	reg.GaugeFunc("srdf_store_epoch", "Published snapshot epoch.",
		func() float64 { return float64(st.Epoch()) })

	reg.CounterFunc("srdf_pool_hits_total", "Buffer pool page hits.",
		func() float64 { return float64(st.PoolStats().Hits) })
	reg.CounterFunc("srdf_pool_misses_total", "Buffer pool page misses.",
		func() float64 { return float64(st.PoolStats().Misses) })
	reg.CounterFunc("srdf_pool_evictions_total", "Buffer pool evictions.",
		func() float64 { return float64(st.PoolStats().Evictions) })
	reg.GaugeFunc("srdf_pool_resident_pages", "Resident buffer pool pages.",
		func() float64 { return float64(st.PoolStats().Resident) })
	reg.GaugeFunc("srdf_pool_segment_bytes", "Resident sealed segment bytes.",
		func() float64 { return float64(st.PoolStats().SegmentBytes) })
	reg.GaugeFunc("srdf_pool_compression_ratio", "Logical/segment byte ratio of sealed columns.",
		func() float64 { return st.PoolStats().CompressionRatio })
	reg.GaugeFunc("srdf_pool_segments_lazy", "Sealed blocks not yet decoded from the snapshot.",
		func() float64 { return float64(st.PoolStats().SegmentsLazy) })
	reg.GaugeFunc("srdf_pool_segments_decoded", "Sealed blocks decoded on demand.",
		func() float64 { return float64(st.PoolStats().SegmentsDecoded) })
	reg.CounterFunc("srdf_pool_faults_total", "Sealed segments decoded from the snapshot, including re-decodes after eviction.",
		func() float64 { return float64(st.PoolStats().Faults) })
	reg.GaugeFunc("srdf_pool_resident_bytes", "Decoded sealed segment bytes held by the pool.",
		func() float64 { return float64(st.PoolStats().ResidentBytes) })
	reg.GaugeFunc("srdf_pool_budget_bytes", "Configured pool byte budget (0: unlimited).",
		func() float64 { return float64(st.PoolStats().BudgetBytes) })

	reg.GaugeFunc("srdf_triples", "Stored triples.",
		func() float64 { return float64(st.NumTriples()) })
	reg.GaugeFunc("srdf_store_readonly", "1 while the store is latched read-only after a durability failure.",
		func() float64 {
			if st.Health().State != core.StateHealthy {
				return 1
			}
			return 0
		})
	reg.CounterFunc("srdf_panics_total", "Panics recovered in query pipelines and HTTP handlers (process survived).",
		func() float64 { return float64(exec.PanicsTotal() + s.met.handlerPanics.Load()) })

	reg.CounterFunc("srdf_exec_scan_rows_total", "Rows produced by table and triple scans across all queries.",
		func() float64 { return float64(exec.ScanRowsTotal()) })
	reg.CounterFunc("srdf_exec_operator_seconds_total", "Cumulative query pipeline wall time, open to close.",
		exec.PipelineSecondsTotal)
	reg.CounterFunc("srdf_query_log_queries_total", "Completed queries recorded in the structured query log.",
		func() float64 { q, _ := st.QueryLogCounts(); return float64(q) })
	reg.CounterFunc("srdf_query_log_rows_total", "Result rows recorded in the structured query log.",
		func() float64 { _, r := st.QueryLogCounts(); return float64(r) })
}
