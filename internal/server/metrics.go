package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the server's hand-rolled Prometheus-style instrumentation:
// counters and histograms cheap enough to touch on every request, plus
// a text-format renderer for /metrics. Store-derived series (pool
// stats, plan cache) are sampled at scrape time by the server, not
// accumulated here.
type metrics struct {
	queriesOK       atomic.Uint64
	queriesBad      atomic.Uint64 // malformed/unplannable (400)
	queriesTimeout  atomic.Uint64 // deadline exceeded (408 or truncated)
	queriesCanceled atomic.Uint64 // client disconnected mid-query
	queriesRejected atomic.Uint64 // admission overflow (503)
	queriesErr      atomic.Uint64 // internal failures (500)
	queriesMem      atomic.Uint64 // memory budget exceeded (413)
	queriesCapped   atomic.Uint64 // row cap hit, stream aborted
	rowsSent        atomic.Uint64
	handlerPanics   atomic.Uint64 // panics recovered at the HTTP layer

	latency histogram
}

// latencyBuckets are the query-duration histogram bounds in seconds,
// roughly exponential from 100µs to 10s.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with Prometheus
// cumulative-bucket semantics.
type histogram struct {
	mu     sync.Mutex
	counts [17]uint64 // len(latencyBuckets)+1; last = +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.mu.Lock()
	h.counts[i]++
	h.sum += s
	h.total++
	h.mu.Unlock()
}

func (h *histogram) write(w io.Writer, name string) {
	h.mu.Lock()
	counts := h.counts
	sum, total := h.sum, h.total
	h.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(le), cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

func writeCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func writeLabeledCounter(w io.Writer, name, label, value string, v uint64) {
	fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, value, v)
}

// write renders the request-side series (the server adds the
// store-derived ones).
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP srdf_queries_total Queries by outcome.\n# TYPE srdf_queries_total counter\n")
	writeLabeledCounter(w, "srdf_queries_total", "status", "ok", m.queriesOK.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "bad_query", m.queriesBad.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "timeout", m.queriesTimeout.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "canceled", m.queriesCanceled.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "rejected", m.queriesRejected.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "error", m.queriesErr.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "mem_budget", m.queriesMem.Load())
	writeLabeledCounter(w, "srdf_queries_total", "status", "row_capped", m.queriesCapped.Load())
	writeCounter(w, "srdf_result_rows_total", "Result rows serialized to clients.", m.rowsSent.Load())
	fmt.Fprintf(w, "# HELP srdf_query_duration_seconds Query wall time, admission to last byte.\n")
	m.latency.write(w, "srdf_query_duration_seconds")
}
