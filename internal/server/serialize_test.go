package server

import (
	"strings"
	"testing"

	"srdf/internal/dict"
)

// fakeRows drives serializers from fixed rows; Term resolves through a
// fixture OID→term map exactly like core.Rows resolves through the
// dictionary.
type fakeRows struct {
	vars  []string
	rows  [][]dict.Value
	terms map[dict.OID]dict.Term
	i     int
	err   error
}

func (f *fakeRows) Vars() []string { return f.vars }
func (f *fakeRows) Next() bool {
	if f.i >= len(f.rows) {
		return false
	}
	f.i++
	return true
}
func (f *fakeRows) Row() []dict.Value { return f.rows[f.i-1] }
func (f *fakeRows) Err() error        { return f.err }
func (f *fakeRows) Term(v dict.Value) (dict.Term, bool) {
	t, ok := f.terms[v.OID]
	return t, ok
}

// fixtureRows covers every term shape the serializers distinguish: IRI,
// language-tagged literal, typed literal, blank node, unbound cell,
// plain literal, and a computed value with no source OID.
func fixtureRows() *fakeRows {
	return &fakeRows{
		vars: []string{"x", "y"},
		terms: map[dict.OID]dict.Term{
			1: dict.IRI("http://ex/a"),
			2: dict.LangLit("chat", "fr"),
			3: dict.IntLit(42),
			4: dict.Blank("b0"),
			5: dict.StringLit("say \"hi\",\nok"),
		},
		rows: [][]dict.Value{
			{
				{Kind: dict.VString, Str: "http://ex/a", OID: 1},
				{Kind: dict.VString, Str: "chat", OID: 2},
			},
			{
				{Kind: dict.VInt, Int: 42, OID: 3},
				{Kind: dict.VString, Str: "_:b0", OID: 4},
			},
			{
				{}, // unbound
				{Kind: dict.VString, Str: "say \"hi\",\nok", OID: 5},
			},
			{
				{Kind: dict.VFloat, Float: 2.5}, // computed: no OID
				{},
			},
		},
	}
}

func serialize(t *testing.T, mime string, src RowSource) string {
	t.Helper()
	ser, ok := SerializerFor(mime)
	if !ok {
		t.Fatalf("no serializer for %s", mime)
	}
	var b strings.Builder
	if _, err := ser.Write(&b, src); err != nil {
		t.Fatalf("%s: %v", mime, err)
	}
	return b.String()
}

func TestJSONSerializerGolden(t *testing.T) {
	got := serialize(t, MimeJSON, fixtureRows())
	want := `{"head":{"vars":["x","y"]},"results":{"bindings":[` +
		`{"x":{"type":"uri","value":"http://ex/a"},"y":{"type":"literal","value":"chat","xml:lang":"fr"}},` +
		`{"x":{"type":"literal","value":"42","datatype":"http://www.w3.org/2001/XMLSchema#integer"},"y":{"type":"bnode","value":"b0"}},` +
		`{"y":{"type":"literal","value":"say \"hi\",\nok"}},` +
		`{"x":{"type":"literal","value":"2.5","datatype":"http://www.w3.org/2001/XMLSchema#double"}}` +
		`]}}` + "\n"
	if got != want {
		t.Fatalf("json:\n got %q\nwant %q", got, want)
	}
}

func TestCSVSerializerGolden(t *testing.T) {
	got := serialize(t, MimeCSV, fixtureRows())
	// encoding/csv in CRLF mode also normalizes the embedded newline
	want := "x,y\r\n" +
		"http://ex/a,chat\r\n" +
		"42,_:b0\r\n" +
		",\"say \"\"hi\"\",\r\nok\"\r\n" +
		"2.5,\r\n"
	if got != want {
		t.Fatalf("csv:\n got %q\nwant %q", got, want)
	}
}

func TestTSVSerializerGolden(t *testing.T) {
	got := serialize(t, MimeTSV, fixtureRows())
	want := "?x\t?y\n" +
		"<http://ex/a>\t\"chat\"@fr\n" +
		"\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>\t_:b0\n" +
		"\t\"say \\\"hi\\\",\\nok\"\n" +
		"\"2.5\"^^<http://www.w3.org/2001/XMLSchema#double>\t\n"
	if got != want {
		t.Fatalf("tsv:\n got %q\nwant %q", got, want)
	}
}

func TestSerializersEmptyResult(t *testing.T) {
	empty := func() *fakeRows { return &fakeRows{vars: []string{"a", "b"}} }
	if got, want := serialize(t, MimeJSON, empty()),
		`{"head":{"vars":["a","b"]},"results":{"bindings":[]}}`+"\n"; got != want {
		t.Fatalf("json empty:\n got %q\nwant %q", got, want)
	}
	if got, want := serialize(t, MimeCSV, empty()), "a,b\r\n"; got != want {
		t.Fatalf("csv empty:\n got %q\nwant %q", got, want)
	}
	if got, want := serialize(t, MimeTSV, empty()), "?a\t?b\n"; got != want {
		t.Fatalf("tsv empty:\n got %q\nwant %q", got, want)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   string
		ok     bool
	}{
		{"", MimeJSON, true},
		{"application/sparql-results+json", MimeJSON, true},
		{"application/json", MimeJSON, true},
		{"text/csv", MimeCSV, true},
		{"text/tab-separated-values", MimeTSV, true},
		{"*/*", MimeJSON, true},
		{"application/*", MimeJSON, true},
		{"text/*", MimeCSV, true},
		{"text/html, */*;q=0.1", MimeJSON, true},
		{"text/csv;q=0.5, application/sparql-results+json;q=0.9", MimeJSON, true},
		{"application/sparql-results+json;q=0.1, text/tab-separated-values", MimeTSV, true},
		{"TEXT/CSV", MimeCSV, true},
		{"text/csv ; q=0.8", MimeCSV, true},
		{"application/rdf+xml", "", false},
		{"text/html;q=0.9", "", false},
	}
	for _, c := range cases {
		got, ok := Negotiate(c.accept)
		if ok != c.ok || got != c.want {
			t.Errorf("Negotiate(%q) = %q,%v; want %q,%v", c.accept, got, ok, c.want, c.ok)
		}
	}
}

func TestHistogramBucketsMatch(t *testing.T) {
	srv := testServer(t, 2, Config{})
	srv.met.latency.Observe(0.003)
	w := get(t, srv.Handler(), "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		`srdf_query_duration_seconds_bucket{le="0.0001"} 0`,
		`srdf_query_duration_seconds_bucket{le="0.005"} 1`,
		`srdf_query_duration_seconds_bucket{le="+Inf"} 1`,
		"srdf_query_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q\n%s", want, body)
		}
	}
}
