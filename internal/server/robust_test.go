package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/fault"
	"srdf/internal/nt"
)

// faultStore builds a WAL-backed store routed through the failpoint
// filesystem, so tests can break durability under a live server.
func faultStore(t *testing.T, n int) *srdf.Store {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
	opts := core.DefaultOptions()
	opts.FS = fault.WrapFS(fault.OS())
	opts.WALPath = filepath.Join(t.TempDir(), "test.wal")
	opts.ProbeInterval = 2 * time.Millisecond
	st := core.NewStore(opts)
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://ex/p%d> <http://ex/name> \"person %d\" .\n", i, i)
	}
	if _, err := st.LoadTurtle(strings.NewReader(b.String())); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := st.Organize(); err != nil {
		t.Fatalf("organize: %v", err)
	}
	return srdf.NewFromCore(st)
}

func TestHealthzReportsDegradedAndRecovers(t *testing.T) {
	st := faultStore(t, 5)
	srv := New(st, Config{})
	h := srv.Handler()

	if w := get(t, h, "/healthz", ""); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "status: ok") {
		t.Fatalf("healthy healthz: %d %q", w.Code, w.Body.String())
	}

	// Break WAL fsync: the next write's sync fails past the retry
	// budget and latches the store read-only.
	fault.Enable("fs.sync:wal", fault.Spec{Err: fault.ErrInjected})
	err := st.Internal().Add(testTriple(t, `<http://ex/new> <http://ex/name> "x" .`))
	if err != nil {
		t.Fatalf("add (sync is deferred to refresh): %v", err)
	}
	if _, qerr := st.Query(nameQuery); qerr != nil {
		t.Fatalf("degraded read should serve the last epoch: %v", qerr)
	}
	if st.Health().State != core.StateReadOnly {
		t.Fatal("store did not latch read-only")
	}

	w := get(t, h, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200 (still serving reads): %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "status: degraded") {
		t.Fatalf("degraded healthz body: %q", w.Body.String())
	}
	for _, want := range []string{"since: ", "epoch: ", "uptime_seconds: "} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("degraded healthz missing %q: %q", want, w.Body.String())
		}
	}

	// /metrics flips srdf_store_readonly to 1.
	if m := get(t, h, "/metrics", ""); !strings.Contains(m.Body.String(), "srdf_store_readonly 1") {
		t.Fatal("metrics missing srdf_store_readonly 1")
	}

	// Heal the disk; the background probe un-latches.
	fault.Disable("fs.sync:wal")
	deadline := time.Now().Add(5 * time.Second)
	for st.Health().State != core.StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("store never recovered: %+v", st.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w := get(t, h, "/healthz", ""); !strings.Contains(w.Body.String(), "status: ok") {
		t.Fatalf("recovered healthz body: %q", w.Body.String())
	}
}

func TestHealthzDraining(t *testing.T) {
	srv := testServer(t, 2, Config{})
	srv.draining.Store(true)
	if w := get(t, srv.Handler(), "/healthz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", w.Code)
	}
}

func TestMemBudgetExceededIs413(t *testing.T) {
	srv := testServer(t, 2000, Config{MaxQueryMem: 512})
	q := `SELECT DISTINCT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n`
	w := get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(q), "")
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget query: %d %s", w.Code, w.Body.String())
	}
	// and the store still serves a cheap query normally
	w = get(t, srv.Handler(), "/sparql?query="+url.QueryEscape(nameQuery+" LIMIT 1"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("concurrent cheap query: %d %s", w.Code, w.Body.String())
	}
	if m := get(t, srv.Handler(), "/metrics", ""); !strings.Contains(m.Body.String(), `srdf_queries_total{status="mem_budget"} 1`) {
		t.Fatal("metrics missing mem_budget count")
	}
}

func TestRowCapAbortsStream(t *testing.T) {
	srv := testServer(t, 50, Config{MaxResultRows: 5})
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(nameQuery), nil)
	w := httptest.NewRecorder()
	aborted := func() (aborted bool) {
		defer func() {
			if r := recover(); r != nil {
				if r != http.ErrAbortHandler {
					panic(r)
				}
				aborted = true
			}
		}()
		srv.Handler().ServeHTTP(w, req)
		return false
	}()
	if !aborted {
		t.Fatal("row-capped response was not aborted")
	}
	if n := strings.Count(w.Body.String(), `"type":"uri"`); n != 5 {
		t.Fatalf("rows before abort = %d, want 5", n)
	}
	if got := srv.met.queriesCapped.Value(); got != 1 {
		t.Fatalf("queriesCapped = %d", got)
	}
}

func TestHandlerPanicBecomes500(t *testing.T) {
	srv := testServer(t, 2, Config{})
	h := srv.recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom: injected handler bug")
	})
	req := httptest.NewRequest(http.MethodGet, "/sparql", nil)
	w := httptest.NewRecorder()
	h(w, req) // must not propagate the panic
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panic before response: %d", w.Code)
	}
	if srv.met.handlerPanics.Load() != 1 {
		t.Fatal("handler panic not counted")
	}
	if m := get(t, srv.Handler(), "/metrics", ""); !strings.Contains(m.Body.String(), "srdf_panics_total") {
		t.Fatal("metrics missing srdf_panics_total")
	}
}

// testTriple parses one N-Triples line into a triple.
func testTriple(t *testing.T, line string) nt.Triple {
	t.Helper()
	ts, err := nt.NewReader(strings.NewReader(line + "\n")).ReadAll()
	if err != nil || len(ts) != 1 {
		t.Fatalf("bad test triple: %v", err)
	}
	return ts[0]
}
