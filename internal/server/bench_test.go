package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"srdf"
)

// BenchmarkServe_ConcurrentLoad drives the full HTTP path — admission,
// plan cache, snapshot query, JSON/CSV streaming — with RunParallel
// clients over a mixed query set, the shape a live endpoint sees.
func BenchmarkServe_ConcurrentLoad(b *testing.B) {
	st := testStore(b, 5000, srdf.Defaults())
	srv := New(st, Config{MaxConcurrent: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type req struct{ target, accept string }
	reqs := []req{
		{"/sparql?query=" + url.QueryEscape(nameQuery), MimeJSON},
		{"/sparql?query=" + url.QueryEscape(nameQuery), MimeCSV},
		{"/sparql?query=" + url.QueryEscape(
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a . FILTER(?a > 40) }`), MimeJSON},
		{"/sparql?query=" + url.QueryEscape(
			`SELECT ?s WHERE { ?s <http://ex/name> "p17" }`), MimeTSV},
	}

	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rq := reqs[i%len(reqs)]
			i++
			hr, err := http.NewRequest(http.MethodGet, ts.URL+rq.target, nil)
			if err != nil {
				b.Fatal(err)
			}
			hr.Header.Set("Accept", rq.accept)
			resp, err := client.Do(hr)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				b.Fatal(fmt.Errorf("%s: %d: %s", rq.target, resp.StatusCode, body))
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("empty response body")
			}
		}
	})
	b.StopTimer()
	ps := st.PlanCacheStats()
	if total := ps.Hits + ps.Misses; total > 0 {
		b.ReportMetric(float64(ps.Hits)/float64(total), "cache-hit-ratio")
	}
}
