// Package server is the SPARQL Protocol front end over the srdf store:
// an HTTP endpoint serving SELECT queries from the lock-free epoch
// snapshots, with per-query timeouts and client-disconnect cancellation
// threaded through the executor, semaphore admission control, a
// prepared-plan cache underneath (in core), content-negotiated
// JSON/CSV/TSV result streaming, graceful shutdown that drains open
// result streams, and observability: a unified telemetry registry
// behind /metrics, EXPLAIN ANALYZE via the explain=analyze parameter,
// the structured query log behind /debug/queries, structured access
// and slow-query logging with per-request ids, and a pprof/expvar
// debug handler meant for a separate private listener.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/obs"
)

// Config tunes the endpoint.
type Config struct {
	// MaxConcurrent caps simultaneously executing queries; 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// MaxConcurrent; past it requests are rejected with 503. Negative
	// means no queue (reject as soon as all slots are busy); 0 means
	// 2×MaxConcurrent.
	QueueDepth int
	// QueryTimeout bounds one query, queue wait included; <=0 disables.
	QueryTimeout time.Duration
	// MaxQueryBytes caps the request query text; 0 means 1 MiB.
	MaxQueryBytes int64
	// MaxQueryMem bounds the bytes one query's materializing operators
	// (hash-join builds, aggregation state, sort rows, DISTINCT keys)
	// may retain; 0 means unlimited. A query over budget fails with 413
	// while concurrent queries keep running.
	MaxQueryMem int64
	// MaxResultRows caps rows serialized per response; 0 means
	// unlimited. A response hitting the cap is aborted mid-stream —
	// like a timeout, the truncated transfer is the honest signal that
	// the result is incomplete.
	MaxResultRows int64
	// SlowQuery is the completed-query duration at which the access log
	// escalates to a warning that includes the query text; <=0 disables
	// slow-query logging.
	SlowQuery time.Duration
	// Log receives the structured access and slow-query log; nil
	// discards it (tests, silent embedding).
	Log *slog.Logger
	// Query selects the plan configuration every request runs under.
	Query srdf.QueryOptions
}

// Server is the SPARQL-over-HTTP front end. Create with New, serve with
// ListenAndServe (or mount Handler in an existing mux), stop with
// Shutdown — which stops accepting, then waits for open result streams
// to drain.
type Server struct {
	store  *srdf.Store
	cfg    Config
	adm    *admission
	reg    *obs.Registry
	met    *serverMetrics
	log    *slog.Logger
	mux    *http.ServeMux
	hs     *http.Server
	ln     atomic.Pointer[net.Listener]
	start  time.Time
	reqSeq atomic.Uint64
	// draining flips when Shutdown begins: /healthz turns 503 so load
	// balancers stop routing here while open streams finish.
	draining atomic.Bool

	// rowHook, when set (tests only), runs before each result row is
	// handed to the serializer — it makes "a stream is open" a
	// controllable condition for shutdown-drain tests.
	rowHook func()
}

// New builds a server over an opened store.
func New(store *srdf.Store, cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = 1 << 20
	}
	if cfg.MaxQueryMem > 0 {
		cfg.Query.MemLimit = cfg.MaxQueryMem
	}
	reg := obs.NewRegistry()
	s := &Server{
		store: store,
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxConcurrent, cfg.QueueDepth),
		reg:   reg,
		met:   newServerMetrics(reg),
		log:   cfg.Log,
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.registerDerivedMetrics()
	s.mux.HandleFunc("/sparql", s.recovered(s.handleSPARQL))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	// built here, not in ListenAndServe, so Shutdown is race-free even
	// when serving starts on another goroutine
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the routing handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// DebugHandler returns the runtime-introspection mux — pprof, expvar,
// the structured query log, and a second /metrics — intended for a
// separate non-public listener (srdf serve -debug-addr), never the
// query port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// ListenAndServe binds addr and serves until Shutdown (returning nil)
// or a listener error. With port 0, Addr reports the bound address once
// this has been called.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln.Store(&ln)
	err = s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr reports the bound listen address ("" before ListenAndServe).
func (s *Server) Addr() string {
	ln := s.ln.Load()
	if ln == nil {
		return ""
	}
	return (*ln).Addr().String()
}

// Shutdown stops accepting connections and waits — up to ctx — for
// in-flight requests, open result streams included, to finish. From the
// first call on, /healthz answers 503 so load balancers drain traffic.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	s.draining.Store(true)
	return s.hs.Shutdown(ctx)
}

// nextReqID mints a per-request id: a process prefix (low bits of the
// start time, so ids from distinct restarts differ) and a sequence.
func (s *Server) nextReqID() string {
	return fmt.Sprintf("%08x-%06d", uint32(s.start.UnixNano()), s.reqSeq.Add(1))
}

// handleHealthz reports liveness and degradation. A read-only store
// still serves queries, so it stays 200 (in rotation) with a body that
// says what is wrong; only a draining shutdown answers 503. Every state
// carries the published snapshot epoch and the server uptime.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	tail := fmt.Sprintf("epoch: %d\nuptime_seconds: %d\n",
		s.store.Epoch(), int64(time.Since(s.start).Seconds()))
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "status: draining\n"+tail)
		return
	}
	h := s.store.Health()
	if h.State != core.StateHealthy {
		fmt.Fprintf(w, "status: degraded\nmode: %s\ncause: %s\n", h.State, h.Err)
		if !h.Since.IsZero() {
			fmt.Fprintf(w, "since: %s\n", h.Since.UTC().Format(time.RFC3339))
		}
		if h.RetryIn > 0 {
			fmt.Fprintf(w, "retry-in: %s\n", h.RetryIn.Round(time.Millisecond))
		}
		io.WriteString(w, tail)
		return
	}
	io.WriteString(w, "status: ok\n"+tail)
}

// recovered wraps a handler with panic recovery: anything escaping the
// handler — including executor panics surfacing on the serialization
// goroutine — fails the one request, never the process. A panic before
// the response started gets a 500; after, the connection is aborted
// (the truncated transfer is the remaining honest signal).
// http.ErrAbortHandler passes through: it is the deliberate abort idiom
// and net/http handles it quietly.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil || rec == http.ErrAbortHandler {
				if rec != nil {
					panic(rec)
				}
				return
			}
			err := exec.NewPanicError("http handler", rec)
			s.met.handlerPanics.Add(1)
			s.met.queriesErr.Inc()
			s.log.Error("handler panic", "err", err.Error())
			if !tw.wrote {
				http.Error(tw, "internal error: "+err.Error(), http.StatusInternalServerError)
				return
			}
			panic(http.ErrAbortHandler)
		}()
		h(tw, r)
	}
}

// trackingWriter records whether the response has started, which decides
// whether a recovered panic can still produce a status code.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (Flusher etc.) through the wrapper.
func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// queryText extracts the query per the SPARQL 1.1 Protocol: GET with a
// query parameter, POST with URL-encoded parameters, or POST with the
// bare query as the application/sparql-query body.
func (s *Server) queryText(w http.ResponseWriter, r *http.Request) (string, bool) {
	switch r.Method {
	case http.MethodGet:
		if !r.URL.Query().Has("query") {
			http.Error(w, "missing query parameter", http.StatusBadRequest)
			return "", false
		}
		return r.URL.Query().Get("query"), true
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxQueryBytes)
		ct := r.Header.Get("Content-Type")
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil && ct != "" {
			http.Error(w, "malformed Content-Type", http.StatusBadRequest)
			return "", false
		}
		switch mt {
		case "application/x-www-form-urlencoded", "":
			if err := r.ParseForm(); err != nil {
				http.Error(w, "malformed form body", http.StatusBadRequest)
				return "", false
			}
			if _, ok := r.PostForm["query"]; !ok {
				http.Error(w, "missing query parameter", http.StatusBadRequest)
				return "", false
			}
			return r.PostForm.Get("query"), true
		case "application/sparql-query":
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, "unreadable body", http.StatusBadRequest)
				return "", false
			}
			return string(body), true
		default:
			http.Error(w, "use application/x-www-form-urlencoded or application/sparql-query",
				http.StatusUnsupportedMediaType)
			return "", false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return "", false
	}
}

// explainParam reads the optional explain= request parameter (URL query
// or, for form posts, the parsed form).
func explainParam(r *http.Request) string {
	if v := r.URL.Query().Get("explain"); v != "" {
		return v
	}
	if r.Form != nil {
		return r.Form.Get("explain")
	}
	return ""
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	query, ok := s.queryText(w, r)
	if !ok {
		return
	}
	explain := explainParam(r)
	if explain != "" && explain != "analyze" {
		http.Error(w, "unsupported explain mode (use explain=analyze)", http.StatusBadRequest)
		return
	}
	var ser Serializer
	if explain == "" {
		format, ok := Negotiate(r.Header.Get("Accept"))
		if !ok {
			http.Error(w, "acceptable formats: "+MimeJSON+", "+MimeCSV+", "+MimeTSV,
				http.StatusNotAcceptable)
			return
		}
		ser, _ = SerializerFor(format)
	}

	reqID := s.nextReqID()
	w.Header().Set("X-SRDF-Request", reqID)
	started := time.Now()
	outcome := "error"
	var rowsOut int64
	defer func() {
		d := time.Since(started)
		s.log.Info("query",
			"id", reqID, "remote", r.RemoteAddr, "outcome", outcome,
			"rows", rowsOut, "dur", d.Round(time.Microsecond).String(),
			"analyze", explain != "")
		if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
			s.log.Warn("slow query",
				"id", reqID, "dur", d.Round(time.Microsecond).String(), "query", query)
		}
	}()

	ctx := core.WithRequestID(r.Context(), reqID)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// Admission: a slot, a bounded wait, or an immediate 503.
	if err := s.adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			outcome = "rejected"
			s.met.queriesRejected.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		case errors.Is(err, context.DeadlineExceeded):
			outcome = "timeout"
			s.met.queriesTimeout.Inc()
			http.Error(w, "query timed out waiting for an execution slot", http.StatusRequestTimeout)
		default: // client went away while queued
			outcome = "canceled"
			s.met.queriesCanceled.Inc()
		}
		return
	}
	defer s.adm.release()

	if explain == "analyze" {
		outcome = s.serveExplainAnalyze(ctx, w, query, started)
		return
	}

	rows, err := s.store.QueryStreamCtx(ctx, query, s.cfg.Query)
	if err != nil {
		var bad *core.BadQueryError
		switch {
		case errors.As(err, &bad):
			outcome = "bad_query"
			s.met.queriesBad.Inc()
			http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		case errors.Is(err, context.DeadlineExceeded):
			outcome = "timeout"
			s.met.queriesTimeout.Inc()
			http.Error(w, "query timed out", http.StatusRequestTimeout)
		case errors.Is(err, context.Canceled):
			outcome = "canceled"
			s.met.queriesCanceled.Inc()
		default:
			s.met.queriesErr.Inc()
			http.Error(w, "query failed: "+err.Error(), http.StatusInternalServerError)
		}
		return
	}
	defer rows.Close()

	// Probe the first row before committing a status code, so a query
	// that times out (or whose client vanishes) before producing
	// anything still gets an honest status instead of an empty 200.
	src := &peekSource{rows: rows, hook: s.rowHook}
	src.prime()
	if err := rows.Err(); err != nil && !src.has {
		switch {
		case errors.Is(err, exec.ErrMemBudget):
			outcome = "mem_budget"
			s.met.queriesMem.Inc()
			http.Error(w, "query memory budget exceeded: "+err.Error(),
				http.StatusRequestEntityTooLarge)
		case errors.Is(err, context.DeadlineExceeded):
			outcome = "timeout"
			s.met.queriesTimeout.Inc()
			http.Error(w, "query timed out", http.StatusRequestTimeout)
		case errors.Is(err, context.Canceled):
			outcome = "canceled"
			s.met.queriesCanceled.Inc()
		default:
			// includes recovered pipeline panics (exec.PanicError): the
			// query failed, the process is fine
			s.met.queriesErr.Inc()
			http.Error(w, "query failed: "+err.Error(), http.StatusInternalServerError)
		}
		return
	}

	capped := &rowCapSource{RowSource: src, limit: s.cfg.MaxResultRows}
	w.Header().Set("Content-Type", ser.ContentType())
	n, werr := ser.Write(w, capped)
	rowsOut = int64(n)
	s.met.rowsSent.Add(uint64(n))
	s.met.latency.Observe(time.Since(started).Seconds())
	if werr != nil {
		// The response is already streaming: a 200 status is out, so
		// count the outcome and abort the connection — a truncated
		// transfer is the one signal left that the result is incomplete.
		switch {
		case errors.Is(werr, exec.ErrMemBudget):
			outcome = "mem_budget"
			s.met.queriesMem.Inc()
		case errors.Is(werr, context.DeadlineExceeded):
			outcome = "timeout"
			s.met.queriesTimeout.Inc()
		case errors.Is(werr, context.Canceled):
			outcome = "canceled"
			s.met.queriesCanceled.Inc()
		default:
			s.met.queriesErr.Inc()
		}
		panic(http.ErrAbortHandler)
	}
	if capped.capped {
		// Row cap hit mid-stream: abort rather than pretend the result
		// is complete — same honesty contract as a timeout.
		outcome = "row_capped"
		s.met.queriesCapped.Inc()
		panic(http.ErrAbortHandler)
	}
	outcome = "ok"
	s.met.queriesOK.Inc()
}

// serveExplainAnalyze executes the query under EXPLAIN ANALYZE and
// writes the annotated plan as text/plain, mapping failures to the same
// status codes the streaming path uses. It returns the outcome label
// for the access log.
func (s *Server) serveExplainAnalyze(ctx context.Context, w http.ResponseWriter, query string, started time.Time) string {
	text, err := s.store.ExplainAnalyze(ctx, query, s.cfg.Query)
	if err != nil {
		var bad *core.BadQueryError
		switch {
		case errors.As(err, &bad):
			s.met.queriesBad.Inc()
			http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
			return "bad_query"
		case errors.Is(err, exec.ErrMemBudget):
			s.met.queriesMem.Inc()
			http.Error(w, "query memory budget exceeded: "+err.Error(),
				http.StatusRequestEntityTooLarge)
			return "mem_budget"
		case errors.Is(err, context.DeadlineExceeded):
			s.met.queriesTimeout.Inc()
			http.Error(w, "query timed out", http.StatusRequestTimeout)
			return "timeout"
		case errors.Is(err, context.Canceled):
			s.met.queriesCanceled.Inc()
			return "canceled"
		default:
			s.met.queriesErr.Inc()
			http.Error(w, "query failed: "+err.Error(), http.StatusInternalServerError)
			return "error"
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, text)
	s.met.latency.Observe(time.Since(started).Seconds())
	s.met.queriesOK.Inc()
	return "ok"
}

// rowCapSource stops a result stream after limit rows (0: unlimited),
// flagging the truncation so the handler can abort the transfer.
type rowCapSource struct {
	RowSource
	limit  int64
	n      int64
	capped bool
}

func (c *rowCapSource) Next() bool {
	if c.limit > 0 && c.n >= c.limit {
		c.capped = true
		return false
	}
	if !c.RowSource.Next() {
		return false
	}
	c.n++
	return true
}

// peekSource adapts core.Rows to RowSource with one row of lookahead
// (see handleSPARQL). The peeked row is copied: Rows reuses its row
// slice on Next, and the serializer reads the peek after a real Next.
type peekSource struct {
	rows   *core.Rows
	has    bool
	used   bool
	peeked []dict.Value
	hook   func()
}

func (p *peekSource) prime() {
	if p.rows.Next() {
		p.has = true
		p.peeked = append(p.peeked[:0], p.rows.Row()...)
	}
}

func (p *peekSource) Vars() []string { return p.rows.Vars() }

func (p *peekSource) Next() bool {
	if p.hook != nil {
		p.hook()
	}
	if p.has {
		if !p.used {
			p.used = true
			return true
		}
		p.has = false // moving past the peeked row
	}
	return p.rows.Next()
}

func (p *peekSource) Row() []dict.Value {
	if p.has && p.used {
		return p.peeked
	}
	return p.rows.Row()
}

func (p *peekSource) Term(v dict.Value) (dict.Term, bool) { return p.rows.Term(v) }
func (p *peekSource) Err() error                          { return p.rows.Err() }

// handleMetrics renders every registered family — request counters,
// admission, plan cache, pool, store, executor, query log — in one
// registry walk.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// handleDebugQueries serves the structured query log (newest first)
// plus the aggregated workload profile as JSON.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Queries []srdf.QueryRecord   `json:"queries"`
		Profile srdf.WorkloadProfile `json:"profile"`
	}{s.store.QueryLog(), s.store.WorkloadProfile()})
}

// String renders the effective configuration (CLI startup log).
func (c Config) String() string {
	return fmt.Sprintf("max-concurrent=%d queue=%d timeout=%s max-query-mem=%d max-result-rows=%d slow-query=%s",
		c.MaxConcurrent, c.QueueDepth, c.QueryTimeout, c.MaxQueryMem, c.MaxResultRows, c.SlowQuery)
}
