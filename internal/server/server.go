// Package server is the SPARQL Protocol front end over the srdf store:
// an HTTP endpoint serving SELECT queries from the lock-free epoch
// snapshots, with per-query timeouts and client-disconnect cancellation
// threaded through the executor, semaphore admission control, a
// prepared-plan cache underneath (in core), content-negotiated
// JSON/CSV/TSV result streaming, graceful shutdown that drains open
// result streams, and Prometheus-style metrics.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/exec"
)

// Config tunes the endpoint.
type Config struct {
	// MaxConcurrent caps simultaneously executing queries; 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// MaxConcurrent; past it requests are rejected with 503. Negative
	// means no queue (reject as soon as all slots are busy); 0 means
	// 2×MaxConcurrent.
	QueueDepth int
	// QueryTimeout bounds one query, queue wait included; <=0 disables.
	QueryTimeout time.Duration
	// MaxQueryBytes caps the request query text; 0 means 1 MiB.
	MaxQueryBytes int64
	// MaxQueryMem bounds the bytes one query's materializing operators
	// (hash-join builds, aggregation state, sort rows, DISTINCT keys)
	// may retain; 0 means unlimited. A query over budget fails with 413
	// while concurrent queries keep running.
	MaxQueryMem int64
	// MaxResultRows caps rows serialized per response; 0 means
	// unlimited. A response hitting the cap is aborted mid-stream —
	// like a timeout, the truncated transfer is the honest signal that
	// the result is incomplete.
	MaxResultRows int64
	// Query selects the plan configuration every request runs under.
	Query srdf.QueryOptions
}

// Server is the SPARQL-over-HTTP front end. Create with New, serve with
// ListenAndServe (or mount Handler in an existing mux), stop with
// Shutdown — which stops accepting, then waits for open result streams
// to drain.
type Server struct {
	store *srdf.Store
	cfg   Config
	adm   *admission
	met   *metrics
	mux   *http.ServeMux
	hs    *http.Server
	ln    atomic.Pointer[net.Listener]
	start time.Time
	// draining flips when Shutdown begins: /healthz turns 503 so load
	// balancers stop routing here while open streams finish.
	draining atomic.Bool

	// rowHook, when set (tests only), runs before each result row is
	// handed to the serializer — it makes "a stream is open" a
	// controllable condition for shutdown-drain tests.
	rowHook func()
}

// New builds a server over an opened store.
func New(store *srdf.Store, cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = 1 << 20
	}
	if cfg.MaxQueryMem > 0 {
		cfg.Query.MemLimit = cfg.MaxQueryMem
	}
	s := &Server{
		store: store,
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxConcurrent, cfg.QueueDepth),
		met:   &metrics{},
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("/sparql", s.recovered(s.handleSPARQL))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// built here, not in ListenAndServe, so Shutdown is race-free even
	// when serving starts on another goroutine
	s.hs = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the routing handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until Shutdown (returning nil)
// or a listener error. With port 0, Addr reports the bound address once
// this has been called.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln.Store(&ln)
	err = s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr reports the bound listen address ("" before ListenAndServe).
func (s *Server) Addr() string {
	ln := s.ln.Load()
	if ln == nil {
		return ""
	}
	return (*ln).Addr().String()
}

// Shutdown stops accepting connections and waits — up to ctx — for
// in-flight requests, open result streams included, to finish. From the
// first call on, /healthz answers 503 so load balancers drain traffic.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	s.draining.Store(true)
	return s.hs.Shutdown(ctx)
}

// handleHealthz reports liveness and degradation. A read-only store
// still serves queries, so it stays 200 (in rotation) with a body that
// says what is wrong; only a draining shutdown answers 503.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "status: draining\n")
		return
	}
	h := s.store.Health()
	if h.State != core.StateHealthy {
		fmt.Fprintf(w, "status: degraded\nmode: %s\ncause: %s\n", h.State, h.Err)
		if h.RetryIn > 0 {
			fmt.Fprintf(w, "retry-in: %s\n", h.RetryIn.Round(time.Millisecond))
		}
		return
	}
	io.WriteString(w, "status: ok\n")
}

// recovered wraps a handler with panic recovery: anything escaping the
// handler — including executor panics surfacing on the serialization
// goroutine — fails the one request, never the process. A panic before
// the response started gets a 500; after, the connection is aborted
// (the truncated transfer is the remaining honest signal).
// http.ErrAbortHandler passes through: it is the deliberate abort idiom
// and net/http handles it quietly.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil || rec == http.ErrAbortHandler {
				if rec != nil {
					panic(rec)
				}
				return
			}
			err := exec.NewPanicError("http handler", rec)
			s.met.handlerPanics.Add(1)
			s.met.queriesErr.Add(1)
			if !tw.wrote {
				http.Error(tw, "internal error: "+err.Error(), http.StatusInternalServerError)
				return
			}
			panic(http.ErrAbortHandler)
		}()
		h(tw, r)
	}
}

// trackingWriter records whether the response has started, which decides
// whether a recovered panic can still produce a status code.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (Flusher etc.) through the wrapper.
func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// queryText extracts the query per the SPARQL 1.1 Protocol: GET with a
// query parameter, POST with URL-encoded parameters, or POST with the
// bare query as the application/sparql-query body.
func (s *Server) queryText(w http.ResponseWriter, r *http.Request) (string, bool) {
	switch r.Method {
	case http.MethodGet:
		if !r.URL.Query().Has("query") {
			http.Error(w, "missing query parameter", http.StatusBadRequest)
			return "", false
		}
		return r.URL.Query().Get("query"), true
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxQueryBytes)
		ct := r.Header.Get("Content-Type")
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil && ct != "" {
			http.Error(w, "malformed Content-Type", http.StatusBadRequest)
			return "", false
		}
		switch mt {
		case "application/x-www-form-urlencoded", "":
			if err := r.ParseForm(); err != nil {
				http.Error(w, "malformed form body", http.StatusBadRequest)
				return "", false
			}
			if _, ok := r.PostForm["query"]; !ok {
				http.Error(w, "missing query parameter", http.StatusBadRequest)
				return "", false
			}
			return r.PostForm.Get("query"), true
		case "application/sparql-query":
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, "unreadable body", http.StatusBadRequest)
				return "", false
			}
			return string(body), true
		default:
			http.Error(w, "use application/x-www-form-urlencoded or application/sparql-query",
				http.StatusUnsupportedMediaType)
			return "", false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return "", false
	}
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	query, ok := s.queryText(w, r)
	if !ok {
		return
	}
	format, ok := Negotiate(r.Header.Get("Accept"))
	if !ok {
		http.Error(w, "acceptable formats: "+MimeJSON+", "+MimeCSV+", "+MimeTSV,
			http.StatusNotAcceptable)
		return
	}
	ser, _ := SerializerFor(format)

	started := time.Now()
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// Admission: a slot, a bounded wait, or an immediate 503.
	if err := s.adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			s.met.queriesRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.queriesTimeout.Add(1)
			http.Error(w, "query timed out waiting for an execution slot", http.StatusRequestTimeout)
		default: // client went away while queued
			s.met.queriesCanceled.Add(1)
		}
		return
	}
	defer s.adm.release()

	rows, err := s.store.QueryStreamCtx(ctx, query, s.cfg.Query)
	if err != nil {
		var bad *core.BadQueryError
		switch {
		case errors.As(err, &bad):
			s.met.queriesBad.Add(1)
			http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.queriesTimeout.Add(1)
			http.Error(w, "query timed out", http.StatusRequestTimeout)
		case errors.Is(err, context.Canceled):
			s.met.queriesCanceled.Add(1)
		default:
			s.met.queriesErr.Add(1)
			http.Error(w, "query failed: "+err.Error(), http.StatusInternalServerError)
		}
		return
	}
	defer rows.Close()

	// Probe the first row before committing a status code, so a query
	// that times out (or whose client vanishes) before producing
	// anything still gets an honest status instead of an empty 200.
	src := &peekSource{rows: rows, hook: s.rowHook}
	src.prime()
	if err := rows.Err(); err != nil && !src.has {
		switch {
		case errors.Is(err, exec.ErrMemBudget):
			s.met.queriesMem.Add(1)
			http.Error(w, "query memory budget exceeded: "+err.Error(),
				http.StatusRequestEntityTooLarge)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.queriesTimeout.Add(1)
			http.Error(w, "query timed out", http.StatusRequestTimeout)
		case errors.Is(err, context.Canceled):
			s.met.queriesCanceled.Add(1)
		default:
			// includes recovered pipeline panics (exec.PanicError): the
			// query failed, the process is fine
			s.met.queriesErr.Add(1)
			http.Error(w, "query failed: "+err.Error(), http.StatusInternalServerError)
		}
		return
	}

	capped := &rowCapSource{RowSource: src, limit: s.cfg.MaxResultRows}
	w.Header().Set("Content-Type", ser.ContentType())
	n, werr := ser.Write(w, capped)
	s.met.rowsSent.Add(uint64(n))
	s.met.latency.observe(time.Since(started))
	if werr != nil {
		// The response is already streaming: a 200 status is out, so
		// count the outcome and abort the connection — a truncated
		// transfer is the one signal left that the result is incomplete.
		switch {
		case errors.Is(werr, exec.ErrMemBudget):
			s.met.queriesMem.Add(1)
		case errors.Is(werr, context.DeadlineExceeded):
			s.met.queriesTimeout.Add(1)
		case errors.Is(werr, context.Canceled):
			s.met.queriesCanceled.Add(1)
		default:
			s.met.queriesErr.Add(1)
		}
		panic(http.ErrAbortHandler)
	}
	if capped.capped {
		// Row cap hit mid-stream: abort rather than pretend the result
		// is complete — same honesty contract as a timeout.
		s.met.queriesCapped.Add(1)
		panic(http.ErrAbortHandler)
	}
	s.met.queriesOK.Add(1)
}

// rowCapSource stops a result stream after limit rows (0: unlimited),
// flagging the truncation so the handler can abort the transfer.
type rowCapSource struct {
	RowSource
	limit  int64
	n      int64
	capped bool
}

func (c *rowCapSource) Next() bool {
	if c.limit > 0 && c.n >= c.limit {
		c.capped = true
		return false
	}
	if !c.RowSource.Next() {
		return false
	}
	c.n++
	return true
}

// peekSource adapts core.Rows to RowSource with one row of lookahead
// (see handleSPARQL). The peeked row is copied: Rows reuses its row
// slice on Next, and the serializer reads the peek after a real Next.
type peekSource struct {
	rows   *core.Rows
	has    bool
	used   bool
	peeked []dict.Value
	hook   func()
}

func (p *peekSource) prime() {
	if p.rows.Next() {
		p.has = true
		p.peeked = append(p.peeked[:0], p.rows.Row()...)
	}
}

func (p *peekSource) Vars() []string { return p.rows.Vars() }

func (p *peekSource) Next() bool {
	if p.hook != nil {
		p.hook()
	}
	if p.has {
		if !p.used {
			p.used = true
			return true
		}
		p.has = false // moving past the peeked row
	}
	return p.rows.Next()
}

func (p *peekSource) Row() []dict.Value {
	if p.has && p.used {
		return p.peeked
	}
	return p.rows.Row()
}

func (p *peekSource) Term(v dict.Value) (dict.Term, bool) { return p.rows.Term(v) }
func (p *peekSource) Err() error                          { return p.rows.Err() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	s.met.write(&b)

	writeGauge(&b, "srdf_inflight_queries", "Queries holding an execution slot.", float64(s.adm.inFlight()))
	writeGauge(&b, "srdf_admission_queued", "Requests waiting for an execution slot.", float64(s.adm.queued()))
	writeGauge(&b, "srdf_max_concurrent", "Execution slot capacity.", float64(s.cfg.MaxConcurrent))
	writeGauge(&b, "srdf_uptime_seconds", "Seconds since server start.", time.Since(s.start).Seconds())

	pc := s.store.PlanCacheStats()
	writeCounter(&b, "srdf_plan_cache_hits_total", "Prepared-plan cache hits.", pc.Hits)
	writeCounter(&b, "srdf_plan_cache_misses_total", "Prepared-plan cache misses.", pc.Misses)
	writeCounter(&b, "srdf_plan_cache_evictions_total", "Prepared-plan cache LRU evictions.", pc.Evictions)
	writeGauge(&b, "srdf_plan_cache_entries", "Prepared plans cached for the current epoch.", float64(pc.Size))
	writeGauge(&b, "srdf_store_epoch", "Published snapshot epoch.", float64(pc.Epoch))

	ps := s.store.PoolStats()
	writeCounter(&b, "srdf_pool_hits_total", "Buffer pool page hits.", ps.Hits)
	writeCounter(&b, "srdf_pool_misses_total", "Buffer pool page misses.", ps.Misses)
	writeCounter(&b, "srdf_pool_evictions_total", "Buffer pool evictions.", ps.Evictions)
	writeGauge(&b, "srdf_pool_resident_pages", "Resident buffer pool pages.", float64(ps.Resident))
	writeGauge(&b, "srdf_pool_segment_bytes", "Resident sealed segment bytes.", float64(ps.SegmentBytes))
	writeGauge(&b, "srdf_pool_compression_ratio", "Logical/segment byte ratio of sealed columns.", ps.CompressionRatio)
	writeGauge(&b, "srdf_pool_segments_lazy", "Sealed blocks not yet decoded from the snapshot.", float64(ps.SegmentsLazy))
	writeGauge(&b, "srdf_pool_segments_decoded", "Sealed blocks decoded on demand.", float64(ps.SegmentsDecoded))
	writeCounter(&b, "srdf_pool_faults_total", "Sealed segments decoded from the snapshot, including re-decodes after eviction.", ps.Faults)
	writeGauge(&b, "srdf_pool_resident_bytes", "Decoded sealed segment bytes held by the pool.", float64(ps.ResidentBytes))
	writeGauge(&b, "srdf_pool_budget_bytes", "Configured pool byte budget (0: unlimited).", float64(ps.BudgetBytes))

	writeGauge(&b, "srdf_triples", "Stored triples.", float64(s.store.NumTriples()))

	ro := 0.0
	if s.store.Health().State != core.StateHealthy {
		ro = 1
	}
	writeGauge(&b, "srdf_store_readonly", "1 while the store is latched read-only after a durability failure.", ro)
	writeCounter(&b, "srdf_panics_total", "Panics recovered in query pipelines and HTTP handlers (process survived).",
		exec.PanicsTotal()+s.met.handlerPanics.Load())

	io.WriteString(w, b.String())
}

// String renders the effective configuration (CLI startup log).
func (c Config) String() string {
	return fmt.Sprintf("max-concurrent=%d queue=%d timeout=%s max-query-mem=%d max-result-rows=%d",
		c.MaxConcurrent, c.QueueDepth, c.QueryTimeout, c.MaxQueryMem, c.MaxResultRows)
}
