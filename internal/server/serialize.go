package server

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"srdf/internal/dict"
)

// RowSource is the streaming result a serializer consumes: core.Rows
// satisfies it, and tests drive serializers with fixtures.
type RowSource interface {
	Vars() []string
	Next() bool
	Row() []dict.Value
	// Term recovers the exact RDF term of a value (false for computed
	// values, which carry no source OID).
	Term(v dict.Value) (dict.Term, bool)
	Err() error
}

// Result formats of the SPARQL 1.1 Query Results family the endpoint
// can negotiate.
const (
	MimeJSON = "application/sparql-results+json"
	MimeCSV  = "text/csv"
	MimeTSV  = "text/tab-separated-values"
)

// Serializer streams a result set in one output format. Write returns
// the row count and the first error — serialization or source — it hit;
// a source error mid-stream leaves a truncated document behind, which
// the HTTP layer converts into an aborted response so clients cannot
// mistake it for a complete result.
type Serializer interface {
	ContentType() string
	Write(w io.Writer, src RowSource) (rows int, err error)
}

// SerializerFor maps a negotiated media type to its serializer.
func SerializerFor(mime string) (Serializer, bool) {
	switch mime {
	case MimeJSON:
		return jsonSerializer{}, true
	case MimeCSV:
		return csvSerializer{}, true
	case MimeTSV:
		return tsvSerializer{}, true
	}
	return nil, false
}

// termOf resolves a result cell to an RDF term: exact via the source
// dictionary when the value carries an OID, synthesized from the typed
// value otherwise (computed expressions and aggregates). The second
// return is false for unbound cells.
func termOf(src RowSource, v dict.Value) (dict.Term, bool) {
	if v.Kind == dict.VInvalid {
		return dict.Term{}, false
	}
	if t, ok := src.Term(v); ok {
		return t, true
	}
	switch v.Kind {
	case dict.VBool:
		return dict.TypedLit(v.Lexical(), dict.XSDBool), true
	case dict.VInt:
		return dict.TypedLit(v.Lexical(), dict.XSDInt), true
	case dict.VFloat:
		return dict.TypedLit(v.Lexical(), dict.XSDDouble), true
	case dict.VDate:
		return dict.TypedLit(v.Lexical(), dict.XSDDate), true
	case dict.VDateTime:
		return dict.TypedLit(v.Lexical(), dict.XSDDateTm), true
	default:
		return dict.StringLit(v.Str), true
	}
}

// jsonSerializer emits the SPARQL 1.1 Query Results JSON Format:
// {"head":{"vars":[...]},"results":{"bindings":[...]}} with each
// binding an object of {"type","value","xml:lang"/"datatype"} terms.
// Bindings stream as rows arrive; nothing is buffered.
type jsonSerializer struct{}

func (jsonSerializer) ContentType() string { return MimeJSON + "; charset=utf-8" }

func (jsonSerializer) Write(w io.Writer, src RowSource) (int, error) {
	vars := src.Vars()
	var head strings.Builder
	head.WriteString(`{"head":{"vars":[`)
	for i, v := range vars {
		if i > 0 {
			head.WriteByte(',')
		}
		head.Write(jsonString(v))
	}
	head.WriteString(`]},"results":{"bindings":[`)
	if _, err := io.WriteString(w, head.String()); err != nil {
		return 0, err
	}
	rows := 0
	for src.Next() {
		var b []byte
		if rows > 0 {
			b = append(b, ',')
		}
		b = append(b, '{')
		row := src.Row()
		wrote := false
		for i, v := range row {
			t, bound := termOf(src, v)
			if !bound {
				continue // unbound: the variable is absent from the binding
			}
			if wrote {
				b = append(b, ',')
			}
			wrote = true
			b = append(b, jsonString(vars[i])...)
			b = append(b, ':')
			b = appendJSONTerm(b, t)
		}
		b = append(b, '}')
		if _, err := w.Write(b); err != nil {
			return rows, err
		}
		rows++
	}
	if err := src.Err(); err != nil {
		return rows, err
	}
	_, err := io.WriteString(w, "]}}\n")
	return rows, err
}

func appendJSONTerm(b []byte, t dict.Term) []byte {
	b = append(b, `{"type":`...)
	switch t.Kind {
	case dict.KindIRI:
		b = append(b, `"uri"`...)
	case dict.KindBlank:
		b = append(b, `"bnode"`...)
	default:
		b = append(b, `"literal"`...)
	}
	b = append(b, `,"value":`...)
	b = append(b, jsonString(t.Value)...)
	if t.Kind == dict.KindLiteral {
		if t.Lang != "" {
			b = append(b, `,"xml:lang":`...)
			b = append(b, jsonString(t.Lang)...)
		} else if t.Datatype != "" && t.Datatype != dict.XSDString {
			b = append(b, `,"datatype":`...)
			b = append(b, jsonString(t.Datatype)...)
		}
	}
	return append(b, '}')
}

// jsonString renders one JSON string literal. Inputs are term values and
// variable names, which json.Marshal cannot fail on.
func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return []byte(`""`)
	}
	return b
}

// csvSerializer emits SPARQL 1.1 Query Results CSV: header row of bare
// variable names, then one RFC 4180 record per solution — IRIs and
// lexical forms plain (no quoting syntax, types and languages dropped),
// blank nodes as _:label, unbound cells empty.
type csvSerializer struct{}

func (csvSerializer) ContentType() string { return MimeCSV + "; charset=utf-8" }

func (csvSerializer) Write(w io.Writer, src RowSource) (int, error) {
	cw := csv.NewWriter(w)
	cw.UseCRLF = true // RFC 4180 line endings, per the CSV results spec
	if err := cw.Write(src.Vars()); err != nil {
		return 0, err
	}
	rows := 0
	record := make([]string, len(src.Vars()))
	for src.Next() {
		for i, v := range src.Row() {
			t, bound := termOf(src, v)
			switch {
			case !bound:
				record[i] = ""
			case t.Kind == dict.KindBlank:
				record[i] = "_:" + t.Value
			default:
				record[i] = t.Value
			}
		}
		if err := cw.Write(record); err != nil {
			return rows, err
		}
		rows++
	}
	if err := src.Err(); err != nil {
		return rows, err
	}
	cw.Flush()
	return rows, cw.Error()
}

// tsvSerializer emits SPARQL 1.1 Query Results TSV: header of
// ?-prefixed variables, then terms in their Turtle/N-Triples syntax —
// <iri>, _:label, "literal"@lang, "literal"^^<datatype> — with unbound
// cells empty.
type tsvSerializer struct{}

func (tsvSerializer) ContentType() string { return MimeTSV + "; charset=utf-8" }

func (tsvSerializer) Write(w io.Writer, src RowSource) (int, error) {
	vars := src.Vars()
	var b []byte
	for i, v := range vars {
		if i > 0 {
			b = append(b, '\t')
		}
		b = append(b, '?')
		b = append(b, v...)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return 0, err
	}
	rows := 0
	for src.Next() {
		b = b[:0]
		for i, v := range src.Row() {
			if i > 0 {
				b = append(b, '\t')
			}
			t, bound := termOf(src, v)
			if !bound {
				continue
			}
			b = append(b, t.String()...)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return rows, err
		}
		rows++
	}
	if err := src.Err(); err != nil {
		return rows, err
	}
	return rows, nil
}

// Negotiate picks a result format from an Accept header value, ""
// meaning "anything" (JSON). It honors q-weights across the three
// supported types plus the wildcard families; false means nothing
// acceptable (406).
func Negotiate(accept string) (string, bool) {
	if strings.TrimSpace(accept) == "" {
		return MimeJSON, true
	}
	best, bestQ := "", -1.0
	for _, part := range strings.Split(accept, ",") {
		mime, q := parseAcceptPart(part)
		var offer string
		switch mime {
		case MimeJSON, "application/json":
			offer = MimeJSON
		case MimeCSV:
			offer = MimeCSV
		case MimeTSV:
			offer = MimeTSV
		case "*/*", "application/*":
			offer = MimeJSON
		case "text/*":
			offer = MimeCSV
		default:
			continue
		}
		// strictly greater: an earlier entry wins ties, and JSON is
		// listed first by clients that want it
		if q > bestQ {
			best, bestQ = offer, q
		}
	}
	if best == "" {
		return "", false
	}
	return best, true
}

func parseAcceptPart(part string) (string, float64) {
	fields := strings.Split(part, ";")
	mime := strings.ToLower(strings.TrimSpace(fields[0]))
	q := 1.0
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		if v, ok := strings.CutPrefix(f, "q="); ok {
			if parsed, err := strconv.ParseFloat(v, 64); err == nil {
				q = parsed
			}
		}
	}
	return mime, q
}
