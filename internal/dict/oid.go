// Package dict implements dictionary encoding of RDF terms.
//
// Every RDF term (IRI, blank node, or literal) is interned into a single
// 64-bit OID space, mirroring the MonetDB design the paper builds on.
// Bit 63 of an OID distinguishes literals from resources, so the two
// populations can be renumbered independently during reorganization:
// after subject clustering, resource OIDs are assigned CS-major /
// sort-key-minor, and literal OIDs are assigned in (type, value) order so
// that comparing two literal OIDs of a homogeneous column implements a
// value comparison (paper §II-B, "Subject clustering").
package dict

import "fmt"

// OID is a dictionary-encoded object identifier for an RDF term.
// OID 0 is reserved as the invalid/NULL sentinel and never denotes a term.
type OID uint64

// literalBit marks an OID as referring to a literal term.
const literalBit OID = 1 << 63

// Nil is the invalid/NULL OID sentinel.
const Nil OID = 0

// IsLiteral reports whether o identifies a literal term.
func (o OID) IsLiteral() bool { return o&literalBit != 0 }

// IsResource reports whether o identifies an IRI or blank node.
func (o OID) IsResource() bool { return o != Nil && o&literalBit == 0 }

// Valid reports whether o identifies any term at all.
func (o OID) Valid() bool { return o != Nil }

// Payload returns the index of o within its population (resources or
// literals). Payloads start at 1; payload 0 is never assigned.
func (o OID) Payload() uint64 { return uint64(o &^ literalBit) }

// ResourceOID builds a resource OID from a payload index.
func ResourceOID(payload uint64) OID { return OID(payload) }

// LiteralOID builds a literal OID from a payload index.
func LiteralOID(payload uint64) OID { return OID(payload) | literalBit }

func (o OID) String() string {
	if o == Nil {
		return "nil"
	}
	if o.IsLiteral() {
		return fmt.Sprintf("L%d", o.Payload())
	}
	return fmt.Sprintf("R%d", o.Payload())
}
