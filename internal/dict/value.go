package dict

import (
	"strconv"
	"strings"
	"time"
)

// ValueKind is the atomic type of a literal after lexical analysis.
// The paper's "Typed Properties" step (§II-A) types literal objects by
// their atomic type; ValueKind is that type lattice. The declared order
// of the constants is the cross-type collation order used when literal
// OIDs are reassigned in value order.
type ValueKind uint8

const (
	// VInvalid marks an absent value.
	VInvalid ValueKind = iota
	// VBool is a boolean.
	VBool
	// VInt is a 64-bit signed integer.
	VInt
	// VFloat is a 64-bit float (xsd:double, xsd:float, xsd:decimal).
	VFloat
	// VDate is a calendar date, stored as days since 1970-01-01.
	VDate
	// VDateTime is a timestamp, stored as Unix seconds.
	VDateTime
	// VString is any other literal (plain or unrecognized datatype).
	VString
)

func (k ValueKind) String() string {
	switch k {
	case VBool:
		return "bool"
	case VInt:
		return "int"
	case VFloat:
		return "float"
	case VDate:
		return "date"
	case VDateTime:
		return "datetime"
	case VString:
		return "string"
	default:
		return "invalid"
	}
}

// SQLType returns the SQL column type the emergent relational schema
// advertises for this value kind.
func (k ValueKind) SQLType() string {
	switch k {
	case VBool:
		return "BOOLEAN"
	case VInt:
		return "BIGINT"
	case VFloat:
		return "DOUBLE"
	case VDate:
		return "DATE"
	case VDateTime:
		return "TIMESTAMP"
	default:
		return "VARCHAR"
	}
}

// Value is the typed interpretation of a literal.
type Value struct {
	Kind  ValueKind
	Int   int64   // VBool (0/1), VInt, VDate (epoch days), VDateTime (unix sec)
	Float float64 // VFloat
	Str   string  // VString; also the lexical form fallback
	// OID, when non-Nil, is the dictionary OID the value was decoded
	// from, so result consumers that need exact RDF terms (IRI vs
	// literal, datatype, language tag — e.g. SPARQL result serializers)
	// can recover them via Dictionary.Term. Computed values (arithmetic,
	// aggregates) carry Nil and serialize from their Kind alone. OID does
	// not participate in Compare or equality semantics.
	OID OID
}

// Numeric reports whether the value participates in arithmetic.
func (v Value) Numeric() bool { return v.Kind == VInt || v.Kind == VFloat }

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == VInt {
		return float64(v.Int)
	}
	return v.Float
}

// Compare orders two values. Different kinds order by kind; numeric kinds
// (int/float) compare by numeric value. Returns -1, 0, or +1.
func Compare(a, b Value) int {
	ka, kb := collapseNumeric(a.Kind), collapseNumeric(b.Kind)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case VFloat: // both numeric
		fa, fb := a.AsFloat(), b.AsFloat()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return cmpInt(int64(a.Kind), int64(b.Kind))
	case VBool, VDate, VDateTime:
		return cmpInt(a.Int, b.Int)
	default:
		return strings.Compare(a.Str, b.Str)
	}
}

func collapseNumeric(k ValueKind) ValueKind {
	if k == VInt {
		return VFloat
	}
	return k
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// dateEpoch is the zero point for VDate day counts.
var dateEpoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate parses an ISO date (yyyy-mm-dd) into epoch days.
func ParseDate(s string) (int64, bool) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return 0, false
	}
	return int64(t.Sub(dateEpoch) / (24 * time.Hour)), true
}

// FormatDate renders epoch days as an ISO date.
func FormatDate(days int64) string {
	return dateEpoch.Add(time.Duration(days) * 24 * time.Hour).Format("2006-01-02")
}

// ParseLiteral derives the typed Value of a literal term. Unrecognized or
// malformed lexical forms fall back to VString over the lexical form, so
// parsing never fails — dirty data stays queryable as text (§II-A:
// irregularities "may be caused by ... data dirtiness").
func ParseLiteral(lex, datatype, lang string) Value {
	if lang != "" {
		return Value{Kind: VString, Str: lex}
	}
	switch datatype {
	case XSDInt, XSDLong, "http://www.w3.org/2001/XMLSchema#int",
		"http://www.w3.org/2001/XMLSchema#short",
		"http://www.w3.org/2001/XMLSchema#byte",
		"http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
		"http://www.w3.org/2001/XMLSchema#positiveInteger":
		if n, err := strconv.ParseInt(lex, 10, 64); err == nil {
			return Value{Kind: VInt, Int: n}
		}
	case XSDDec, XSDDouble, XSDFloat:
		if f, err := strconv.ParseFloat(lex, 64); err == nil {
			return Value{Kind: VFloat, Float: f}
		}
	case XSDBool:
		switch lex {
		case "true", "1":
			return Value{Kind: VBool, Int: 1}
		case "false", "0":
			return Value{Kind: VBool, Int: 0}
		}
	case XSDDate:
		if d, ok := ParseDate(lex); ok {
			return Value{Kind: VDate, Int: d}
		}
	case XSDDateTm:
		if t, err := time.Parse(time.RFC3339, lex); err == nil {
			return Value{Kind: VDateTime, Int: t.Unix()}
		}
		if t, err := time.ParseInLocation("2006-01-02T15:04:05", lex, time.UTC); err == nil {
			return Value{Kind: VDateTime, Int: t.Unix()}
		}
	case "", XSDString:
		// Untyped: sniff numbers and dates so schema discovery can type
		// columns of plain literals (common in web-crawled data).
		if n, err := strconv.ParseInt(lex, 10, 64); err == nil {
			return Value{Kind: VInt, Int: n}
		}
		if looksFloat(lex) {
			if f, err := strconv.ParseFloat(lex, 64); err == nil {
				return Value{Kind: VFloat, Float: f}
			}
		}
		if len(lex) == 10 && lex[4] == '-' && lex[7] == '-' {
			if d, ok := ParseDate(lex); ok {
				return Value{Kind: VDate, Int: d}
			}
		}
	}
	return Value{Kind: VString, Str: lex}
}

func looksFloat(s string) bool {
	dot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !dot:
			dot = true
		case (c == '-' || c == '+') && i == 0:
		case (c == 'e' || c == 'E') && i > 0 && i < len(s)-1:
		default:
			return false
		}
	}
	return dot && len(s) > 1
}

// Lexical renders a typed value back to a lexical form.
func (v Value) Lexical() string {
	switch v.Kind {
	case VBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case VInt:
		return strconv.FormatInt(v.Int, 10)
	case VFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case VDate:
		return FormatDate(v.Int)
	case VDateTime:
		return time.Unix(v.Int, 0).UTC().Format("2006-01-02T15:04:05Z")
	default:
		return v.Str
	}
}
