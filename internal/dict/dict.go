package dict

import (
	"fmt"
	"sync"
)

// Dictionary interns RDF terms and assigns OIDs. Resources (IRIs and
// blank nodes) and literals live in separate payload spaces distinguished
// by the OID tag bit, so each population can be renumbered independently
// by Remap during reorganization.
//
// A Dictionary is safe for concurrent interning and lookup.
type Dictionary struct {
	mu sync.RWMutex

	// Resources. resKeys[i-1] is the key of payload i.
	resIDs  map[string]uint64
	resKeys []string // "<iri" without closing, or "_:label"; see resKey

	// Literals. Parallel slices indexed by payload-1.
	litIDs  map[litKey]uint64
	litLex  []litKey
	litVals []Value
}

type litKey struct {
	lex, datatype, lang string
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{
		resIDs: make(map[string]uint64),
		litIDs: make(map[litKey]uint64),
	}
}

func resKey(t Term) string {
	if t.Kind == KindBlank {
		return "_:" + t.Value
	}
	return t.Value
}

// Intern returns the OID for t, assigning a fresh one on first sight.
func (d *Dictionary) Intern(t Term) OID {
	if t.Kind == KindLiteral {
		return d.InternLiteral(t.Value, t.Datatype, t.Lang)
	}
	return d.internResource(resKey(t))
}

// InternIRI interns an IRI term.
func (d *Dictionary) InternIRI(iri string) OID { return d.internResource(iri) }

// InternBlank interns a blank node by label.
func (d *Dictionary) InternBlank(label string) OID { return d.internResource("_:" + label) }

func (d *Dictionary) internResource(key string) OID {
	d.mu.RLock()
	id, ok := d.resIDs[key]
	d.mu.RUnlock()
	if ok {
		return ResourceOID(id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.resIDs[key]; ok {
		return ResourceOID(id)
	}
	d.resKeys = append(d.resKeys, key)
	id = uint64(len(d.resKeys))
	d.resIDs[key] = id
	return ResourceOID(id)
}

// InternLiteral interns a literal by lexical form, datatype and language.
func (d *Dictionary) InternLiteral(lex, datatype, lang string) OID {
	k := litKey{lex, datatype, lang}
	d.mu.RLock()
	id, ok := d.litIDs[k]
	d.mu.RUnlock()
	if ok {
		return LiteralOID(id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.litIDs[k]; ok {
		return LiteralOID(id)
	}
	d.litLex = append(d.litLex, k)
	d.litVals = append(d.litVals, ParseLiteral(lex, datatype, lang))
	id = uint64(len(d.litLex))
	d.litIDs[k] = id
	return LiteralOID(id)
}

// Lookup returns the OID of t if it has been interned.
func (d *Dictionary) Lookup(t Term) (OID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if t.Kind == KindLiteral {
		id, ok := d.litIDs[litKey{t.Value, t.Datatype, t.Lang}]
		if !ok {
			return Nil, false
		}
		return LiteralOID(id), true
	}
	id, ok := d.resIDs[resKey(t)]
	if !ok {
		return Nil, false
	}
	return ResourceOID(id), true
}

// Term decodes o back into a Term.
func (d *Dictionary) Term(o OID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.termLocked(o)
}

func (d *Dictionary) termLocked(o OID) (Term, bool) {
	p := o.Payload()
	if p == 0 {
		return Term{}, false
	}
	if o.IsLiteral() {
		if p > uint64(len(d.litLex)) {
			return Term{}, false
		}
		k := d.litLex[p-1]
		return Term{Kind: KindLiteral, Value: k.lex, Datatype: k.datatype, Lang: k.lang}, true
	}
	if p > uint64(len(d.resKeys)) {
		return Term{}, false
	}
	key := d.resKeys[p-1]
	if len(key) >= 2 && key[0] == '_' && key[1] == ':' {
		return Term{Kind: KindBlank, Value: key[2:]}, true
	}
	return Term{Kind: KindIRI, Value: key}, true
}

// Value returns the typed value of a literal OID. Non-literal or unknown
// OIDs yield a VInvalid value.
func (d *Dictionary) Value(o OID) Value {
	if !o.IsLiteral() {
		return Value{}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := o.Payload()
	if p == 0 || p > uint64(len(d.litVals)) {
		return Value{}
	}
	return d.litVals[p-1]
}

// String renders o for display ("?" if unknown).
func (d *Dictionary) String(o OID) string {
	t, ok := d.Term(o)
	if !ok {
		return fmt.Sprintf("?oid:%s", o)
	}
	return t.String()
}

// NumResources returns the count of interned resources.
func (d *Dictionary) NumResources() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.resKeys)
}

// NumLiterals returns the count of interned literals.
func (d *Dictionary) NumLiterals() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.litLex)
}

// Remap renumbers the dictionary in place. resMap and litMap give, for
// each old payload p (1-based; index p-1), the new payload. Either map
// may be nil to leave that population untouched. Both maps must be
// bijections onto 1..n; Remap panics otherwise, since a non-bijective
// remap would silently corrupt the store.
func (d *Dictionary) Remap(resMap, litMap []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if resMap != nil {
		if len(resMap) != len(d.resKeys) {
			panic(fmt.Sprintf("dict: resource remap size %d != population %d", len(resMap), len(d.resKeys)))
		}
		newKeys := make([]string, len(d.resKeys))
		for old, nw := range resMap {
			if nw == 0 || nw > uint64(len(newKeys)) || newKeys[nw-1] != "" {
				panic("dict: resource remap is not a bijection")
			}
			newKeys[nw-1] = d.resKeys[old]
		}
		d.resKeys = newKeys
		for i, k := range newKeys {
			d.resIDs[k] = uint64(i + 1)
		}
	}
	if litMap != nil {
		if len(litMap) != len(d.litLex) {
			panic(fmt.Sprintf("dict: literal remap size %d != population %d", len(litMap), len(d.litLex)))
		}
		newLex := make([]litKey, len(d.litLex))
		newVals := make([]Value, len(d.litVals))
		seen := make([]bool, len(d.litLex))
		for old, nw := range litMap {
			if nw == 0 || nw > uint64(len(newLex)) || seen[nw-1] {
				panic("dict: literal remap is not a bijection")
			}
			seen[nw-1] = true
			newLex[nw-1] = d.litLex[old]
			newVals[nw-1] = d.litVals[old]
		}
		d.litLex, d.litVals = newLex, newVals
		for i, k := range newLex {
			d.litIDs[k] = uint64(i + 1)
		}
	}
}

// LiteralCeil returns the smallest literal OID whose value is >= v
// (or > v when strict). Valid only after reorganization has put literal
// payloads in value order. ok is false when no literal qualifies.
func (d *Dictionary) LiteralCeil(v Value, strict bool) (OID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.litVals)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		c := Compare(d.litVals[mid], v)
		if c < 0 || (strict && c == 0) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= n {
		return Nil, false
	}
	return LiteralOID(uint64(lo + 1)), true
}

// LiteralFloor returns the largest literal OID whose value is <= v
// (or < v when strict). Valid only after reorganization. ok is false
// when no literal qualifies.
func (d *Dictionary) LiteralFloor(v Value, strict bool) (OID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.litVals)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		c := Compare(d.litVals[mid], v)
		if c < 0 || (!strict && c == 0) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Nil, false
	}
	return LiteralOID(uint64(lo)), true
}

// LiteralValues exposes the typed-value table indexed by payload-1.
// The executor uses it for vectorized decoding; callers must not mutate
// the returned slice.
func (d *Dictionary) LiteralValues() []Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.litVals
}
