package dict

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestOIDTagging(t *testing.T) {
	r := ResourceOID(42)
	l := LiteralOID(42)
	if !r.IsResource() || r.IsLiteral() {
		t.Errorf("ResourceOID(42) tagging wrong: %v", r)
	}
	if !l.IsLiteral() || l.IsResource() {
		t.Errorf("LiteralOID(42) tagging wrong: %v", l)
	}
	if r.Payload() != 42 || l.Payload() != 42 {
		t.Errorf("payloads: %d %d, want 42 42", r.Payload(), l.Payload())
	}
	if Nil.Valid() {
		t.Error("Nil must be invalid")
	}
	if Nil.IsResource() || Nil.IsLiteral() {
		t.Error("Nil must be neither resource nor literal")
	}
}

func TestOIDTagInvariantQuick(t *testing.T) {
	f := func(p uint32) bool {
		payload := uint64(p) + 1
		r, l := ResourceOID(payload), LiteralOID(payload)
		return r.IsResource() && l.IsLiteral() &&
			r.Payload() == payload && l.Payload() == payload && r != l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInternIdempotent(t *testing.T) {
	d := New()
	a := d.InternIRI("http://example.org/a")
	b := d.InternIRI("http://example.org/b")
	a2 := d.InternIRI("http://example.org/a")
	if a != a2 {
		t.Errorf("re-intern changed OID: %v vs %v", a, a2)
	}
	if a == b {
		t.Error("distinct IRIs share an OID")
	}
	if d.NumResources() != 2 {
		t.Errorf("NumResources = %d, want 2", d.NumResources())
	}
}

func TestInternLiteralVsResourceNamespaces(t *testing.T) {
	d := New()
	r := d.InternIRI("x")
	l := d.InternLiteral("x", "", "")
	if r == l {
		t.Error("IRI and literal with same lexical form must differ")
	}
	if !l.IsLiteral() || !r.IsResource() {
		t.Error("tag bits wrong after intern")
	}
}

func TestBlankVsIRI(t *testing.T) {
	d := New()
	b := d.InternBlank("x")
	i := d.InternIRI("x")
	if b == i {
		t.Error("blank _:x and IRI <x> must not collide")
	}
	tb, _ := d.Term(b)
	if tb.Kind != KindBlank || tb.Value != "x" {
		t.Errorf("blank round-trip: %+v", tb)
	}
}

func TestLiteralDistinguishedByDatatypeAndLang(t *testing.T) {
	d := New()
	plain := d.InternLiteral("1996", "", "")
	typed := d.InternLiteral("1996", XSDInt, "")
	lang := d.InternLiteral("1996", "", "en")
	if plain == typed || plain == lang || typed == lang {
		t.Error("literals differing only in datatype/lang must get distinct OIDs")
	}
}

func TestTermRoundTripQuick(t *testing.T) {
	d := New()
	f := func(iri string, lex string, pickLit bool) bool {
		var in Term
		if pickLit {
			in = StringLit(lex)
		} else {
			if iri == "" {
				iri = "e"
			}
			in = IRI(iri)
		}
		o := d.Intern(in)
		out, ok := d.Term(o)
		return ok && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLookup(t *testing.T) {
	d := New()
	term := TypedLit("3.14", XSDDouble)
	o := d.Intern(term)
	got, ok := d.Lookup(term)
	if !ok || got != o {
		t.Errorf("Lookup = %v,%v want %v,true", got, ok, o)
	}
	if _, ok := d.Lookup(IRI("missing")); ok {
		t.Error("Lookup of missing term succeeded")
	}
}

func TestValueTyping(t *testing.T) {
	cases := []struct {
		lex, dt string
		kind    ValueKind
	}{
		{"42", XSDInt, VInt},
		{"-7", "", VInt}, // sniffed
		{"3.5", XSDDouble, VFloat},
		{"2.25", XSDDec, VFloat},
		{"1996-12-01", XSDDate, VDate},
		{"1996-12-01", "", VDate}, // sniffed
		{"true", XSDBool, VBool},
		{"hello", "", VString},
		{"12a", "", VString},
		{"not-a-number", XSDInt, VString}, // malformed falls back
	}
	d := New()
	for _, c := range cases {
		o := d.InternLiteral(c.lex, c.dt, "")
		if v := d.Value(o); v.Kind != c.kind {
			t.Errorf("Value(%q,%q).Kind = %v, want %v", c.lex, c.dt, v.Kind, c.kind)
		}
	}
}

func TestValueOfResourceIsInvalid(t *testing.T) {
	d := New()
	o := d.InternIRI("r")
	if v := d.Value(o); v.Kind != VInvalid {
		t.Errorf("Value of resource = %v, want VInvalid", v.Kind)
	}
}

func TestCompareOrdering(t *testing.T) {
	iv := func(n int64) Value { return Value{Kind: VInt, Int: n} }
	fv := func(f float64) Value { return Value{Kind: VFloat, Float: f} }
	sv := func(s string) Value { return Value{Kind: VString, Str: s} }
	dv := func(n int64) Value { return Value{Kind: VDate, Int: n} }

	if Compare(iv(1), iv(2)) != -1 || Compare(iv(2), iv(1)) != 1 || Compare(iv(2), iv(2)) != 0 {
		t.Error("int ordering broken")
	}
	if Compare(iv(2), fv(2.5)) != -1 {
		t.Error("cross numeric int<float ordering broken")
	}
	if Compare(fv(2.0), iv(3)) != -1 {
		t.Error("cross numeric float<int ordering broken")
	}
	if Compare(sv("a"), sv("b")) != -1 {
		t.Error("string ordering broken")
	}
	if Compare(dv(100), dv(200)) != -1 {
		t.Error("date ordering broken")
	}
	// cross-kind: numeric < date < string per collation constants
	if Compare(iv(9999), dv(0)) != -1 {
		t.Error("numeric must collate before date")
	}
	if Compare(dv(9999), sv("")) != -1 {
		t.Error("date must collate before string")
	}
}

func TestCompareAntisymmetryQuick(t *testing.T) {
	gen := func(seed int64) Value {
		r := rand.New(rand.NewSource(seed))
		switch r.Intn(4) {
		case 0:
			return Value{Kind: VInt, Int: r.Int63n(1000) - 500}
		case 1:
			return Value{Kind: VFloat, Float: r.Float64()*100 - 50}
		case 2:
			return Value{Kind: VDate, Int: r.Int63n(20000)}
		default:
			return Value{Kind: VString, Str: fmt.Sprintf("s%d", r.Intn(100))}
		}
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := make([]Value, 60)
	for i := range vals {
		switch r.Intn(5) {
		case 0:
			vals[i] = Value{Kind: VInt, Int: r.Int63n(50)}
		case 1:
			vals[i] = Value{Kind: VFloat, Float: float64(r.Intn(50))}
		case 2:
			vals[i] = Value{Kind: VDate, Int: r.Int63n(50)}
		case 3:
			vals[i] = Value{Kind: VBool, Int: r.Int63n(2)}
		default:
			vals[i] = Value{Kind: VString, Str: string(rune('a' + r.Intn(26)))}
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1970-01-01", "1992-01-01", "1998-08-02", "2024-02-29"} {
		d, ok := ParseDate(s)
		if !ok {
			t.Fatalf("ParseDate(%q) failed", s)
		}
		if got := FormatDate(d); got != s {
			t.Errorf("FormatDate(ParseDate(%q)) = %q", s, got)
		}
	}
	if _, ok := ParseDate("1996-13-40"); ok {
		t.Error("invalid date parsed")
	}
}

func TestLexicalRoundTrip(t *testing.T) {
	cases := []Value{
		{Kind: VInt, Int: -42},
		{Kind: VFloat, Float: 2.5},
		{Kind: VBool, Int: 1},
		{Kind: VDate, Int: 9497},
		{Kind: VString, Str: "plain"},
	}
	for _, v := range cases {
		lex := v.Lexical()
		var dt string
		switch v.Kind {
		case VInt:
			dt = XSDInt
		case VFloat:
			dt = XSDDouble
		case VBool:
			dt = XSDBool
		case VDate:
			dt = XSDDate
		}
		got := ParseLiteral(lex, dt, "")
		if Compare(got, v) != 0 {
			t.Errorf("lexical round-trip of %+v via %q gave %+v", v, lex, got)
		}
	}
}

func TestRemapBijection(t *testing.T) {
	d := New()
	var oids []OID
	for i := 0; i < 10; i++ {
		oids = append(oids, d.InternIRI(fmt.Sprintf("r%d", i)))
	}
	var lits []OID
	for i := 0; i < 10; i++ {
		lits = append(lits, d.InternLiteral(fmt.Sprintf("%d", i), XSDInt, ""))
	}
	terms := make(map[OID]Term)
	for _, o := range append(append([]OID{}, oids...), lits...) {
		tm, _ := d.Term(o)
		terms[o] = tm
	}
	// reverse both populations
	resMap := make([]uint64, 10)
	litMap := make([]uint64, 10)
	for i := 0; i < 10; i++ {
		resMap[i] = uint64(10 - i)
		litMap[i] = uint64(10 - i)
	}
	d.Remap(resMap, litMap)
	for old, tm := range terms {
		var nw OID
		if old.IsLiteral() {
			nw = LiteralOID(litMap[old.Payload()-1])
		} else {
			nw = ResourceOID(resMap[old.Payload()-1])
		}
		got, ok := d.Term(nw)
		if !ok || got != tm {
			t.Errorf("after remap, term at %v = %+v, want %+v", nw, got, tm)
		}
		// and lookup agrees
		lo, ok := d.Lookup(tm)
		if !ok || lo != nw {
			t.Errorf("Lookup(%v) = %v, want %v", tm, lo, nw)
		}
	}
}

func TestRemapRejectsNonBijection(t *testing.T) {
	d := New()
	d.InternIRI("a")
	d.InternIRI("b")
	defer func() {
		if recover() == nil {
			t.Error("non-bijective remap must panic")
		}
	}()
	d.Remap([]uint64{1, 1}, nil)
}

func TestRemapQuickRandomPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New()
		n := 5 + r.Intn(50)
		for i := 0; i < n; i++ {
			d.InternLiteral(fmt.Sprintf("v%d", i), "", "")
		}
		perm := r.Perm(n)
		m := make([]uint64, n)
		for i, p := range perm {
			m[i] = uint64(p + 1)
		}
		d.Remap(nil, m)
		for i := 0; i < n; i++ {
			tm, ok := d.Term(LiteralOID(m[i]))
			if !ok || tm.Value != fmt.Sprintf("v%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentIntern(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	const g, n = 8, 500
	results := make([][]OID, g)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]OID, n)
			for i := 0; i < n; i++ {
				out[i] = d.InternIRI(fmt.Sprintf("r%d", i))
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < g; w++ {
		for i := 0; i < n; i++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("goroutine %d got different OID for r%d", w, i)
			}
		}
	}
	if d.NumResources() != n {
		t.Errorf("NumResources = %d, want %d", d.NumResources(), n)
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://example.org/schema#title": "title",
		"http://example.org/author":       "author",
		"urn:isbn:12345":                  "12345",
		"noseparator":                     "noseparator",
	}
	for in, want := range cases {
		if got := LocalName(in); got != want {
			t.Errorf("LocalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := map[string]Term{
		"<http://e.org/a>":       IRI("http://e.org/a"),
		"_:b0":                   Blank("b0"),
		`"hi"`:                   StringLit("hi"),
		`"42"^^<` + XSDInt + `>`: IntLit(42),
		`"hi"@en`:                LangLit("hi", "en"),
		`"a\"b\\c"`:              StringLit(`a"b\c`),
		`"l1\nl2"`:               StringLit("l1\nl2"),
	}
	for want, tm := range cases {
		if got := tm.String(); got != want {
			t.Errorf("Term.String = %s, want %s", got, want)
		}
	}
}
