package dict

// Persistence support: a dictionary serializes as its two payload-ordered
// populations. Re-interning the exported records in order reproduces the
// exact OID assignment, so snapshots never store OIDs and strings twice.

// LiteralRec is the persisted form of one interned literal.
type LiteralRec struct {
	Lex, Datatype, Lang string
}

// ExportResources returns the interned resource keys in payload order
// (payload i+1 is element i); blank-node keys carry their "_:" prefix.
// The slice aliases dictionary state: callers must treat it as read-only
// and must not intern concurrently while holding it.
func (d *Dictionary) ExportResources() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.resKeys
}

// ExportLiterals returns the interned literals in payload order.
func (d *Dictionary) ExportLiterals() []LiteralRec {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]LiteralRec, len(d.litLex))
	for i, k := range d.litLex {
		out[i] = LiteralRec{Lex: k.lex, Datatype: k.datatype, Lang: k.lang}
	}
	return out
}

// RestoreDictionary rebuilds a dictionary from exported state. Typed
// literal values are re-derived from the lexical forms, exactly as
// interning would have produced them.
func RestoreDictionary(res []string, lits []LiteralRec) *Dictionary {
	d := New()
	d.resKeys = append(d.resKeys, res...)
	for i, k := range res {
		d.resIDs[k] = uint64(i + 1)
	}
	d.litLex = make([]litKey, len(lits))
	d.litVals = make([]Value, len(lits))
	for i, l := range lits {
		k := litKey{lex: l.Lex, datatype: l.Datatype, lang: l.Lang}
		d.litLex[i] = k
		d.litVals[i] = ParseLiteral(l.Lex, l.Datatype, l.Lang)
		d.litIDs[k] = uint64(i + 1)
	}
	return d
}
