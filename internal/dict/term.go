package dict

import (
	"fmt"
	"strings"
)

// TermKind classifies an RDF term.
type TermKind uint8

const (
	// KindIRI is an IRI reference such as <http://example.org/x>.
	KindIRI TermKind = iota
	// KindBlank is a blank node such as _:b0.
	KindBlank
	// KindLiteral is a literal, optionally typed or language-tagged.
	KindLiteral
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Well-known vocabulary IRIs.
const (
	RDFType   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	XSDString = "http://www.w3.org/2001/XMLSchema#string"
	XSDInt    = "http://www.w3.org/2001/XMLSchema#integer"
	XSDLong   = "http://www.w3.org/2001/XMLSchema#long"
	XSDDec    = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble = "http://www.w3.org/2001/XMLSchema#double"
	XSDFloat  = "http://www.w3.org/2001/XMLSchema#float"
	XSDBool   = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate   = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTm = "http://www.w3.org/2001/XMLSchema#dateTime"
)

// Term is a decoded RDF term.
//
// For KindIRI, Value holds the IRI. For KindBlank, Value holds the label
// without the "_:" prefix. For KindLiteral, Value holds the lexical form,
// Datatype the datatype IRI ("" means xsd:string), and Lang the language
// tag ("" if none).
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// IRI returns an IRI term.
func IRI(v string) Term { return Term{Kind: KindIRI, Value: v} }

// Blank returns a blank-node term with the given label.
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// StringLit returns a plain string literal.
func StringLit(v string) Term { return Term{Kind: KindLiteral, Value: v} }

// TypedLit returns a literal with an explicit datatype IRI.
func TypedLit(v, datatype string) Term {
	return Term{Kind: KindLiteral, Value: v, Datatype: datatype}
}

// IntLit returns an xsd:integer literal.
func IntLit(v int64) Term {
	return Term{Kind: KindLiteral, Value: fmt.Sprintf("%d", v), Datatype: XSDInt}
}

// FloatLit returns an xsd:double literal.
func FloatLit(v float64) Term {
	return Term{Kind: KindLiteral, Value: trimFloat(v), Datatype: XSDDouble}
}

// DateLit returns an xsd:date literal from an ISO yyyy-mm-dd string.
func DateLit(iso string) Term {
	return Term{Kind: KindLiteral, Value: iso, Datatype: XSDDate}
}

// LangLit returns a language-tagged string literal.
func LangLit(v, lang string) Term {
	return Term{Kind: KindLiteral, Value: v, Lang: lang}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsResource reports whether the term is an IRI or blank node.
func (t Term) IsResource() bool { return t.Kind != KindLiteral }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// LocalName extracts the human-readable suffix of an IRI: the part after
// the last '#', '/', or ':'. Used for emergent schema naming (§II-A,
// research question ii — "shapes and names that can be easily understood").
func LocalName(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	if i := strings.LastIndex(iri, ":"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}
