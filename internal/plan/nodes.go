// Package plan builds and executes query plans over the self-organizing
// store. It detects star patterns in the basic graph pattern and chooses
// between the two operator families of the paper (Fig. 4): the Default
// family (per-property index scans stitched with self-joins) and the
// RDFscan/RDFjoin family over clustered CS tables, optionally with
// zone-map pushdown of range predicates — including across correlated
// foreign keys, the Netezza-style trick of §II-D.
package plan

import (
	"fmt"
	"strings"

	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// Node is one plan operator.
type Node interface {
	Exec(ctx *exec.Ctx) *exec.Rel
	// Explain writes one line per operator, indented.
	Explain(b *strings.Builder, indent int)
	// Vars lists the output variables.
	Vars() []string
	// EstRows is the planner's cardinality estimate.
	EstRows() float64
	// Joins counts the join operators in the subtree — the quantity
	// Fig. 4 is about.
	Joins() int
}

func pad(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

// EmptyNode is a provably empty result (e.g. a constant term that is not
// in the dictionary).
type EmptyNode struct {
	vars   []string
	Reason string
}

func (n *EmptyNode) Exec(*exec.Ctx) *exec.Rel { return exec.NewRel(n.vars...) }
func (n *EmptyNode) Vars() []string           { return n.vars }
func (n *EmptyNode) EstRows() float64         { return 0 }
func (n *EmptyNode) Joins() int               { return 0 }
func (n *EmptyNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "Empty (%s)\n", n.Reason)
}

// DefaultStarNode evaluates a star with index scans + self-joins.
type DefaultStarNode struct {
	Star exec.Star
	Idx  *triples.IndexSet
	est  float64
}

func (n *DefaultStarNode) Exec(ctx *exec.Ctx) *exec.Rel {
	return exec.DefaultStar(ctx, n.Star, n.Idx)
}
func (n *DefaultStarNode) Vars() []string   { return n.Star.Vars() }
func (n *DefaultStarNode) EstRows() float64 { return n.est }
func (n *DefaultStarNode) Joins() int {
	if len(n.Star.Props) > 1 {
		return len(n.Star.Props) - 1
	}
	return 0
}
func (n *DefaultStarNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "StarSelfJoin ?%s [%d props, %d self-joins] est=%.0f\n",
		n.Star.SubjVar, len(n.Star.Props), n.Joins(), n.est)
	for i := range n.Star.Props {
		pad(b, indent+1)
		fmt.Fprintf(b, "IdxScan %s\n", propDesc(&n.Star.Props[i]))
	}
}

func propDesc(p *exec.StarProp) string {
	s := fmt.Sprintf("p=%v", p.Pred)
	if p.ObjVar != "" {
		s += " ?" + p.ObjVar
	}
	if p.ObjConst != dict.Nil {
		s += fmt.Sprintf(" =%v", p.ObjConst)
	}
	if p.HasRange {
		s += fmt.Sprintf(" in[%v,%v]", p.Lo, p.Hi)
	}
	return s
}

// RDFScanNode evaluates a star over its covering CS tables with the
// RDFscan operator plus the irregular residual, unioned.
type RDFScanNode struct {
	Star     exec.Star
	Tables   []*relational.Table
	UseZones bool
	est      float64
}

func (n *RDFScanNode) Exec(ctx *exec.Ctx) *exec.Rel {
	rels := make([]*exec.Rel, 0, len(n.Tables)+1)
	for _, t := range n.Tables {
		rels = append(rels, exec.RDFScan(ctx, t, n.Star, n.UseZones, 0, -1))
	}
	rels = append(rels, exec.ResidualStar(ctx, n.Star, n.Tables))
	return exec.Union(rels...)
}
func (n *RDFScanNode) Vars() []string   { return n.Star.Vars() }
func (n *RDFScanNode) EstRows() float64 { return n.est }
func (n *RDFScanNode) Joins() int       { return 0 }
func (n *RDFScanNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	names := make([]string, len(n.Tables))
	for i, t := range n.Tables {
		names[i] = t.Name
	}
	zones := ""
	if n.UseZones {
		zones = " +zonemaps"
	}
	fmt.Fprintf(b, "RDFscan ?%s over %s [%d props, 0 self-joins]%s est=%.0f\n",
		n.Star.SubjVar, strings.Join(names, ","), len(n.Star.Props), zones, n.est)
	for i := range n.Star.Props {
		pad(b, indent+1)
		fmt.Fprintf(b, "col %s\n", propDesc(&n.Star.Props[i]))
	}
}

// RDFJoinNode extends candidate subjects flowing from Input with a star
// fetched positionally from a CS table.
type RDFJoinNode struct {
	Input  Node
	KeyVar string
	Table  *relational.Table
	Star   exec.Star
	Idx    *triples.IndexSet
	est    float64
}

func (n *RDFJoinNode) Exec(ctx *exec.Ctx) *exec.Rel {
	in := n.Input.Exec(ctx)
	return exec.RDFJoin(ctx, in, n.KeyVar, n.Table, n.Star, n.Idx)
}
func (n *RDFJoinNode) Vars() []string {
	out := append([]string{}, n.Input.Vars()...)
	for i := range n.Star.Props {
		if v := n.Star.Props[i].ObjVar; v != "" {
			out = append(out, v)
		}
	}
	return out
}
func (n *RDFJoinNode) EstRows() float64 { return n.est }
func (n *RDFJoinNode) Joins() int       { return n.Input.Joins() + 1 }
func (n *RDFJoinNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "RDFjoin ?%s -> %s [%d props fetched positionally] est=%.0f\n",
		n.KeyVar, n.Table.Name, len(n.Star.Props), n.est)
	n.Input.Explain(b, indent+1)
}

// HashJoinNode is a natural hash join on shared variables.
type HashJoinNode struct {
	L, R Node
	est  float64
}

func (n *HashJoinNode) Exec(ctx *exec.Ctx) *exec.Rel {
	return exec.HashJoin(ctx, n.L.Exec(ctx), n.R.Exec(ctx))
}
func (n *HashJoinNode) Vars() []string {
	out := append([]string{}, n.L.Vars()...)
	seen := map[string]bool{}
	for _, v := range out {
		seen[v] = true
	}
	for _, v := range n.R.Vars() {
		if !seen[v] {
			out = append(out, v)
		}
	}
	return out
}
func (n *HashJoinNode) EstRows() float64 { return n.est }
func (n *HashJoinNode) Joins() int       { return n.L.Joins() + n.R.Joins() + 1 }
func (n *HashJoinNode) Explain(b *strings.Builder, indent int) {
	shared := sharedVarNames(n.L.Vars(), n.R.Vars())
	pad(b, indent)
	fmt.Fprintf(b, "HashJoin on %v est=%.0f\n", shared, n.est)
	n.L.Explain(b, indent+1)
	n.R.Explain(b, indent+1)
}

func sharedVarNames(l, r []string) []string {
	set := map[string]bool{}
	for _, v := range l {
		set[v] = true
	}
	var out []string
	for _, v := range r {
		if set[v] {
			out = append(out, "?"+v)
		}
	}
	return out
}

// FilterNode applies an expression filter.
type FilterNode struct {
	Input Node
	Expr  sparql.Expr
}

func (n *FilterNode) Exec(ctx *exec.Ctx) *exec.Rel {
	return exec.Filter(ctx, n.Input.Exec(ctx), n.Expr)
}
func (n *FilterNode) Vars() []string   { return n.Input.Vars() }
func (n *FilterNode) EstRows() float64 { return n.Input.EstRows() / 3 }
func (n *FilterNode) Joins() int       { return n.Input.Joins() }
func (n *FilterNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "Filter %s\n", sparql.ExprString(n.Expr))
	n.Input.Explain(b, indent+1)
}

// EqSelectNode keeps rows where two columns are equal (used when one
// variable occurs twice in a pattern or star).
type EqSelectNode struct {
	Input Node
	A, B  string
}

func (n *EqSelectNode) Exec(ctx *exec.Ctx) *exec.Rel {
	rel := n.Input.Exec(ctx)
	ai, bi := rel.ColIdx(n.A), rel.ColIdx(n.B)
	if ai < 0 || bi < 0 {
		return rel
	}
	var keep []int32
	for i := 0; i < rel.Len(); i++ {
		if rel.Cols[ai][i] == rel.Cols[bi][i] {
			keep = append(keep, int32(i))
		}
	}
	out := rel.Select(keep)
	// drop the temp column B
	res := exec.NewRel(removeVar(out.Vars, n.B)...)
	for i := 0; i < out.Len(); i++ {
		row := make([]dict.OID, 0, len(res.Vars))
		for ci, v := range out.Vars {
			if v != n.B {
				row = append(row, out.Cols[ci][i])
			}
		}
		res.AppendRow(row...)
	}
	return res
}
func removeVar(vars []string, v string) []string {
	var out []string
	for _, x := range vars {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
func (n *EqSelectNode) Vars() []string   { return removeVar(n.Input.Vars(), n.B) }
func (n *EqSelectNode) EstRows() float64 { return n.Input.EstRows() / 10 }
func (n *EqSelectNode) Joins() int       { return n.Input.Joins() }
func (n *EqSelectNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "EqSelect ?%s = ?%s\n", n.A, n.B)
	n.Input.Explain(b, indent+1)
}

// GenericScanNode answers one arbitrary triple pattern (variable
// predicate and/or constant subject) off the best-matching projection.
type GenericScanNode struct {
	P   sparql.TriplePattern
	S   dict.OID // bound values (Nil = variable)
	Pr  dict.OID
	O   dict.OID
	Idx *triples.IndexSet
	est float64
}

func (n *GenericScanNode) Vars() []string {
	var out []string
	for _, nd := range []sparql.Node{n.P.S, n.P.P, n.P.O} {
		if nd.IsVar() && !contains(out, nd.Var) {
			out = append(out, nd.Var)
		}
	}
	return out
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (n *GenericScanNode) Exec(ctx *exec.Ctx) *exec.Rel {
	rel := exec.NewRel(n.Vars()...)
	// choose projection by bound prefix
	var pr *triples.Projection
	var lo, hi int
	switch {
	case n.S != dict.Nil && n.Pr != dict.Nil:
		pr = n.Idx.Get(triples.SPO)
		lo, hi = pr.Range2(n.S, n.Pr)
	case n.S != dict.Nil && n.O != dict.Nil:
		pr = n.Idx.Get(triples.SOP)
		lo, hi = pr.Range2(n.S, n.O)
	case n.S != dict.Nil:
		pr = n.Idx.Get(triples.SPO)
		lo, hi = pr.Range1(n.S)
	case n.Pr != dict.Nil && n.O != dict.Nil:
		pr = n.Idx.Get(triples.POS)
		lo, hi = pr.Range2(n.Pr, n.O)
	case n.Pr != dict.Nil:
		pr = n.Idx.Get(triples.PSO)
		lo, hi = pr.Range1(n.Pr)
	case n.O != dict.Nil:
		pr = n.Idx.Get(triples.OSP)
		lo, hi = pr.Range1(n.O)
	default:
		pr = n.Idx.Get(triples.SPO)
		lo, hi = 0, pr.Len()
	}
	row := make([]dict.OID, 0, 3)
	nodes := [3]sparql.Node{n.P.S, n.P.P, n.P.O}
	var b0, b1 string // up to two distinct vars already bound in this row
	var v0, v1 dict.OID
	for i := lo; i < hi; i++ {
		tr := pr.Triple(i)
		comps := [3]dict.OID{tr.S, tr.P, tr.O}
		row = row[:0]
		b0, b1 = "", ""
		ok := true
		for k := 0; k < 3; k++ {
			nd := nodes[k]
			if !nd.IsVar() {
				continue // constants are enforced by the range prefix
			}
			switch nd.Var {
			case b0:
				if v0 != comps[k] {
					ok = false
				}
			case b1:
				if v1 != comps[k] {
					ok = false
				}
			default:
				if b0 == "" {
					b0, v0 = nd.Var, comps[k]
				} else {
					b1, v1 = nd.Var, comps[k]
				}
				row = append(row, comps[k])
			}
			if !ok {
				break
			}
		}
		if ok {
			rel.AppendRow(row...)
		}
	}
	return rel
}
func (n *GenericScanNode) EstRows() float64 { return n.est }
func (n *GenericScanNode) Joins() int       { return 0 }
func (n *GenericScanNode) Explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "TripleScan %s est=%.0f\n", n.P.String(), n.est)
}
