// Package plan builds and executes query plans over the self-organizing
// store. It detects star patterns in the basic graph pattern and chooses
// between the two operator families of the paper (Fig. 4): the Default
// family (per-property index scans stitched with self-joins) and the
// RDFscan/RDFjoin family over clustered CS tables, optionally with
// zone-map pushdown of range predicates — including across correlated
// foreign keys, the Netezza-style trick of §II-D.
package plan

import (
	"fmt"
	"strings"

	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// Node is one plan operator. Nodes build pull-based vectorized operator
// trees (Op); Exec is the thin materializing adapter over the same
// pipeline, kept so operator-at-a-time callers and tests keep working.
type Node interface {
	// Op builds the streaming operator subtree for this node, wrapped
	// in its runtime-stats accounting.
	Op() exec.Operator
	// Explain writes one line per operator, indented. A non-nil an
	// appends the runtime annotations of a finished execution.
	Explain(b *strings.Builder, indent int, an *Analyze)
	// Vars lists the output variables.
	Vars() []string
	// EstRows is the planner's cardinality estimate.
	EstRows() float64
	// Cost is the cost model's estimate for the subtree, in the
	// abstract row-work units of plan/cost.
	Cost() float64
	// Joins counts the join operators in the subtree — the quantity
	// Fig. 4 is about.
	Joins() int
}

// Exec runs a node's operator tree to a materialized relation — the
// operator-at-a-time adapter over the vectorized pipeline.
func Exec(n Node, ctx *exec.Ctx) *exec.Rel {
	return exec.Drain(ctx, n.Op())
}

func pad(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

// EmptyNode is a provably empty result (e.g. a constant term that is not
// in the dictionary).
type EmptyNode struct {
	vars   []string
	Reason string
	sid    int
}

func (n *EmptyNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, false, exec.NewRelSource(exec.NewRel(n.vars...)))
}
func (n *EmptyNode) Vars() []string   { return n.vars }
func (n *EmptyNode) EstRows() float64 { return 0 }
func (n *EmptyNode) Cost() float64    { return 0 }
func (n *EmptyNode) Joins() int       { return 0 }
func (n *EmptyNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "Empty (%s)", n.Reason)
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
}

// DefaultStarNode evaluates a star with index scans + self-joins.
type DefaultStarNode struct {
	Star exec.Star
	Idx  *triples.IndexSet
	est  float64
	cost float64
	sid  int
}

func (n *DefaultStarNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, true, exec.NewDefaultStarOp(n.Star, n.Idx))
}
func (n *DefaultStarNode) Vars() []string   { return n.Star.Vars() }
func (n *DefaultStarNode) EstRows() float64 { return n.est }
func (n *DefaultStarNode) Cost() float64    { return n.cost }
func (n *DefaultStarNode) Joins() int {
	if len(n.Star.Props) > 1 {
		return len(n.Star.Props) - 1
	}
	return 0
}
func (n *DefaultStarNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "StarSelfJoin ?%s [%d props, %d self-joins] est_rows=%.0f cost=%.0f",
		n.Star.SubjVar, len(n.Star.Props), n.Joins(), n.est, n.cost)
	an.annotate(b, n.sid, n.est, true, "StarSelfJoin ?"+n.Star.SubjVar)
	b.WriteByte('\n')
	for i := range n.Star.Props {
		pad(b, indent+1)
		fmt.Fprintf(b, "IdxScan %s\n", propDesc(&n.Star.Props[i]))
	}
}

func propDesc(p *exec.StarProp) string {
	s := fmt.Sprintf("p=%v", p.Pred)
	if p.ObjVar != "" {
		s += " ?" + p.ObjVar
	}
	if p.ObjConst != dict.Nil {
		s += fmt.Sprintf(" =%v", p.ObjConst)
	}
	if p.HasRange {
		s += fmt.Sprintf(" in[%v,%v]", p.Lo, p.Hi)
	}
	return s
}

// RDFScanNode evaluates a star over its covering CS tables with the
// RDFscan operator plus the irregular residual, unioned.
type RDFScanNode struct {
	Star     exec.Star
	Tables   []*relational.Table
	UseZones bool
	est      float64
	cost     float64
	// blooms are the runtime join filters pushed into this scan; the
	// filters themselves materialize when the owning hash join drains
	// its build side.
	blooms []*exec.BloomHandle
	sid    int
}

func (n *RDFScanNode) Op() exec.Operator {
	sb := n.scanBlooms()
	ops := make([]exec.Operator, 0, len(n.Tables)+1)
	for _, t := range n.Tables {
		sc := exec.NewScanOp(t, n.Star, n.UseZones, 0, -1)
		sc.Blooms = sb
		ops = append(ops, sc)
	}
	// The irregular residual is whole-input by nature; evaluate it
	// lazily so an upstream LIMIT satisfied by the table scans never
	// pays for it.
	star, tables := n.Star, n.Tables
	ops = append(ops, exec.NewLazyOp(star.Vars(), func(ctx *exec.Ctx) *exec.Rel {
		return exec.ResidualStar(ctx, star, tables)
	}))
	// The stats wrapper sits above the union, so morsel workers'
	// output — merged in order by the scan's consumer — lands in this
	// node's counters.
	return exec.NewStatsOp(n.sid, true, exec.NewUnionOp(n.Star.Vars(), ops...))
}

// scanBlooms maps the attached bloom handles onto scan columns: the
// subject (Prop -1) or the star property emitting the handle's variable.
// The irregular-residual arm skips them (blooms only ever prune, so an
// unfiltered arm stays correct).
func (n *RDFScanNode) scanBlooms() []exec.ScanBloom {
	var out []exec.ScanBloom
	for _, h := range n.blooms {
		if h.Var == n.Star.SubjVar {
			out = append(out, exec.ScanBloom{H: h, Prop: -1})
			continue
		}
		for i := range n.Star.Props {
			if n.Star.Props[i].ObjVar == h.Var {
				out = append(out, exec.ScanBloom{H: h, Prop: i})
				break
			}
		}
	}
	return out
}

func (n *RDFScanNode) Vars() []string   { return n.Star.Vars() }
func (n *RDFScanNode) EstRows() float64 { return n.est }
func (n *RDFScanNode) Cost() float64    { return n.cost }
func (n *RDFScanNode) Joins() int       { return 0 }
func (n *RDFScanNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	names := make([]string, len(n.Tables))
	for i, t := range n.Tables {
		names[i] = t.Name
	}
	zones := ""
	if n.UseZones {
		zones = " +zonemaps"
	}
	live := ""
	delta, dead := 0, 0
	for _, t := range n.Tables {
		delta += t.DeltaLen()
		dead += t.Del.Count()
	}
	if delta > 0 {
		live += fmt.Sprintf(" delta=%d", delta)
	}
	if dead > 0 {
		live += fmt.Sprintf(" dead=%d", dead)
	}
	for _, h := range n.blooms {
		live += fmt.Sprintf(" bloom=?%s", h.Var)
	}
	fmt.Fprintf(b, "RDFscan ?%s over %s [%d props, 0 self-joins]%s%s est_rows=%.0f cost=%.0f",
		n.Star.SubjVar, strings.Join(names, ","), len(n.Star.Props), zones, live, n.est, n.cost)
	an.annotate(b, n.sid, n.est, true, "RDFscan ?"+n.Star.SubjVar)
	b.WriteByte('\n')
	for i := range n.Star.Props {
		pad(b, indent+1)
		fmt.Fprintf(b, "col %s%s\n", propDesc(&n.Star.Props[i]), n.colPhysDesc(&n.Star.Props[i]))
	}
}

// colPhysDesc renders the physical side of one scanned column: its
// per-block segment encodings and, for sargable predicates routed into
// the scan kernels, the zone-map block selectivity (the fraction of
// blocks the scan cannot prune).
func (n *RDFScanNode) colPhysDesc(p *exec.StarProp) string {
	if len(n.Tables) == 0 {
		return ""
	}
	col := n.Tables[0].Col(p.Pred)
	if col == nil {
		return ""
	}
	s := " enc=" + col.Data.Encodings().String()
	lo, hi := p.Lo, p.Hi
	if p.ObjConst != dict.Nil {
		lo, hi = p.ObjConst, p.ObjConst
	} else if !p.HasRange {
		return s
	}
	if n.UseZones {
		s += fmt.Sprintf(" zsel=%.2f", col.Data.Zones().Selectivity(lo, hi))
	}
	return s
}

// RDFJoinNode extends candidate subjects flowing from Input with a star
// fetched positionally from a CS table.
type RDFJoinNode struct {
	Input  Node
	KeyVar string
	Table  *relational.Table
	Star   exec.Star
	Idx    *triples.IndexSet
	est    float64
	cost   float64
	sid    int
}

func (n *RDFJoinNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, false,
		exec.NewRDFJoinOp(n.Input.Op(), n.KeyVar, n.Table, n.Star, n.Idx))
}
func (n *RDFJoinNode) Vars() []string {
	out := append([]string{}, n.Input.Vars()...)
	for i := range n.Star.Props {
		if v := n.Star.Props[i].ObjVar; v != "" {
			out = append(out, v)
		}
	}
	return out
}
func (n *RDFJoinNode) EstRows() float64 { return n.est }
func (n *RDFJoinNode) Cost() float64    { return n.cost }
func (n *RDFJoinNode) Joins() int       { return n.Input.Joins() + 1 }
func (n *RDFJoinNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "RDFjoin ?%s -> %s [%d props fetched positionally] est_rows=%.0f cost=%.0f",
		n.KeyVar, n.Table.Name, len(n.Star.Props), n.est, n.cost)
	an.annotate(b, n.sid, n.est, true, "RDFjoin ?"+n.KeyVar)
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

// HashJoinNode is a natural hash join on shared variables.
type HashJoinNode struct {
	L, R Node
	est  float64
	cost float64
	// blooms are the runtime join filters this join fills from its build
	// side; their consumers are probe-side scans.
	blooms []*exec.BloomHandle
	sid    int
}

func (n *HashJoinNode) Op() exec.Operator {
	// Materialize (build) the side the planner estimates smaller and
	// stream the other through the probe.
	op := exec.NewHashJoinOp(n.L.Op(), n.R.Op(), n.L.EstRows() <= n.R.EstRows())
	op.Blooms = n.blooms
	return exec.NewStatsOp(n.sid, false, op)
}
func (n *HashJoinNode) Vars() []string {
	out := append([]string{}, n.L.Vars()...)
	seen := map[string]bool{}
	for _, v := range out {
		seen[v] = true
	}
	for _, v := range n.R.Vars() {
		if !seen[v] {
			out = append(out, v)
		}
	}
	return out
}
func (n *HashJoinNode) EstRows() float64 { return n.est }
func (n *HashJoinNode) Cost() float64    { return n.cost }
func (n *HashJoinNode) Joins() int       { return n.L.Joins() + n.R.Joins() + 1 }
func (n *HashJoinNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	shared := sharedVarNames(n.L.Vars(), n.R.Vars())
	pad(b, indent)
	bloom := ""
	for _, h := range n.blooms {
		bloom += fmt.Sprintf(" bloom=?%s", h.Var)
	}
	fmt.Fprintf(b, "HashJoin on %v%s est_rows=%.0f cost=%.0f", shared, bloom, n.est, n.cost)
	an.annotate(b, n.sid, n.est, true, fmt.Sprintf("HashJoin on %v", shared))
	b.WriteByte('\n')
	n.L.Explain(b, indent+1, an)
	n.R.Explain(b, indent+1, an)
}

// MergeJoinNode streams one covering CS table subject-ascending against
// the key-sorted left side — the no-hash-build join clustered subject
// OIDs make possible.
type MergeJoinNode struct {
	Left     Node
	KeyVar   string
	Table    *relational.Table
	Star     exec.Star
	UseZones bool
	est      float64
	cost     float64
	sid      int
}

func (n *MergeJoinNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, false,
		exec.NewMergeJoinOp(n.Left.Op(), n.KeyVar, n.Table, n.Star, n.UseZones))
}
func (n *MergeJoinNode) Vars() []string {
	out := append([]string{}, n.Left.Vars()...)
	for i := range n.Star.Props {
		if v := n.Star.Props[i].ObjVar; v != "" {
			out = append(out, v)
		}
	}
	return out
}
func (n *MergeJoinNode) EstRows() float64 { return n.est }
func (n *MergeJoinNode) Cost() float64    { return n.cost }
func (n *MergeJoinNode) Joins() int       { return n.Left.Joins() + 1 }
func (n *MergeJoinNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "MergeJoin ?%s -> %s [%d props, subject-ordered scan] est_rows=%.0f cost=%.0f",
		n.KeyVar, n.Table.Name, len(n.Star.Props), n.est, n.cost)
	an.annotate(b, n.sid, n.est, true, "MergeJoin ?"+n.KeyVar)
	b.WriteByte('\n')
	n.Left.Explain(b, indent+1, an)
}

func sharedVarNames(l, r []string) []string {
	set := map[string]bool{}
	for _, v := range l {
		set[v] = true
	}
	var out []string
	for _, v := range r {
		if set[v] {
			out = append(out, "?"+v)
		}
	}
	return out
}

// FilterNode applies an expression filter.
type FilterNode struct {
	Input Node
	Expr  sparql.Expr
	sid   int
}

func (n *FilterNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, false, exec.NewFilterOp(n.Input.Op(), n.Expr))
}
func (n *FilterNode) Vars() []string   { return n.Input.Vars() }
func (n *FilterNode) EstRows() float64 { return n.Input.EstRows() / 3 }
func (n *FilterNode) Cost() float64    { return n.Input.Cost() }
func (n *FilterNode) Joins() int       { return n.Input.Joins() }
func (n *FilterNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "Filter %s", sparql.ExprString(n.Expr))
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

// EqSelectNode keeps rows where two columns are equal (used when one
// variable occurs twice in a pattern or star).
type EqSelectNode struct {
	Input Node
	A, B  string
	sid   int
}

func (n *EqSelectNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, false, exec.NewMapOp(n.Input.Op(), n.Vars(), n.apply))
}

// apply keeps the rows of one chunk where A = B and projects B away.
func (n *EqSelectNode) apply(ctx *exec.Ctx, rel *exec.Rel) *exec.Rel {
	ai, bi := rel.ColIdx(n.A), rel.ColIdx(n.B)
	out := rel
	if ai >= 0 && bi >= 0 {
		var keep []int32
		for i := 0; i < rel.Len(); i++ {
			if rel.Cols[ai][i] == rel.Cols[bi][i] {
				keep = append(keep, int32(i))
			}
		}
		out = rel.Select(keep)
	}
	// drop the temp column B
	res := exec.NewRel(removeVar(out.Vars, n.B)...)
	for i := 0; i < out.Len(); i++ {
		row := make([]dict.OID, 0, len(res.Vars))
		for ci, v := range out.Vars {
			if v != n.B {
				row = append(row, out.Cols[ci][i])
			}
		}
		res.AppendRow(row...)
	}
	return res
}
func removeVar(vars []string, v string) []string {
	var out []string
	for _, x := range vars {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
func (n *EqSelectNode) Vars() []string   { return removeVar(n.Input.Vars(), n.B) }
func (n *EqSelectNode) EstRows() float64 { return n.Input.EstRows() / 10 }
func (n *EqSelectNode) Cost() float64    { return n.Input.Cost() }
func (n *EqSelectNode) Joins() int       { return n.Input.Joins() }
func (n *EqSelectNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "EqSelect ?%s = ?%s", n.A, n.B)
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

// GenericScanNode answers one arbitrary triple pattern (variable
// predicate and/or constant subject) off the best-matching projection.
type GenericScanNode struct {
	P    sparql.TriplePattern
	S    dict.OID // bound values (Nil = variable)
	Pr   dict.OID
	O    dict.OID
	Idx  *triples.IndexSet
	est  float64
	cost float64
	sid  int
}

func (n *GenericScanNode) Vars() []string {
	var out []string
	for _, nd := range []sparql.Node{n.P.S, n.P.P, n.P.O} {
		if nd.IsVar() && !contains(out, nd.Var) {
			out = append(out, nd.Var)
		}
	}
	return out
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (n *GenericScanNode) Op() exec.Operator {
	return exec.NewStatsOp(n.sid, true, &genericScanOp{n: n, vars: n.Vars()})
}

// genericScanOp streams a GenericScanNode's projection range in
// batch-sized slices.
type genericScanOp struct {
	n    *GenericScanNode
	vars []string

	pr      *triples.Projection
	cur, hi int
	row     []dict.OID
}

func (g *genericScanOp) Vars() []string { return g.vars }

func (g *genericScanOp) Open(ctx *exec.Ctx) error {
	n := g.n
	// choose projection by bound prefix
	switch {
	case n.S != dict.Nil && n.Pr != dict.Nil:
		g.pr = n.Idx.Get(triples.SPO)
		g.cur, g.hi = g.pr.Range2(n.S, n.Pr)
	case n.S != dict.Nil && n.O != dict.Nil:
		g.pr = n.Idx.Get(triples.SOP)
		g.cur, g.hi = g.pr.Range2(n.S, n.O)
	case n.S != dict.Nil:
		g.pr = n.Idx.Get(triples.SPO)
		g.cur, g.hi = g.pr.Range1(n.S)
	case n.Pr != dict.Nil && n.O != dict.Nil:
		g.pr = n.Idx.Get(triples.POS)
		g.cur, g.hi = g.pr.Range2(n.Pr, n.O)
	case n.Pr != dict.Nil:
		g.pr = n.Idx.Get(triples.PSO)
		g.cur, g.hi = g.pr.Range1(n.Pr)
	case n.O != dict.Nil:
		g.pr = n.Idx.Get(triples.OSP)
		g.cur, g.hi = g.pr.Range1(n.O)
	default:
		g.pr = n.Idx.Get(triples.SPO)
		g.cur, g.hi = 0, g.pr.Len()
	}
	g.row = make([]dict.OID, 0, 3)
	return nil
}

func (g *genericScanOp) Next(b *exec.Batch) bool {
	nodes := [3]sparql.Node{g.n.P.S, g.n.P.P, g.n.P.O}
	var b0, b1 string // up to two distinct vars already bound in this row
	var v0, v1 dict.OID
	for g.cur < g.hi {
		end := g.cur + exec.BatchRows
		if end > g.hi {
			end = g.hi
		}
		for i := g.cur; i < end; i++ {
			tr := g.pr.Triple(i)
			comps := [3]dict.OID{tr.S, tr.P, tr.O}
			g.row = g.row[:0]
			b0, b1 = "", ""
			ok := true
			for k := 0; k < 3; k++ {
				nd := nodes[k]
				if !nd.IsVar() {
					continue // constants are enforced by the range prefix
				}
				switch nd.Var {
				case b0:
					if v0 != comps[k] {
						ok = false
					}
				case b1:
					if v1 != comps[k] {
						ok = false
					}
				default:
					if b0 == "" {
						b0, v0 = nd.Var, comps[k]
					} else {
						b1, v1 = nd.Var, comps[k]
					}
					g.row = append(g.row, comps[k])
				}
				if !ok {
					break
				}
			}
			if ok {
				b.AppendRow(g.row...)
			}
		}
		g.cur = end
		if b.Len() > 0 {
			return true
		}
	}
	return false
}

func (g *genericScanOp) Close()             {}
func (n *GenericScanNode) EstRows() float64 { return n.est }
func (n *GenericScanNode) Cost() float64    { return n.cost }
func (n *GenericScanNode) Joins() int       { return 0 }
func (n *GenericScanNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "TripleScan %s est_rows=%.0f cost=%.0f", n.P.String(), n.est, n.cost)
	an.annotate(b, n.sid, n.est, true, "TripleScan "+n.P.String())
	b.WriteByte('\n')
}
