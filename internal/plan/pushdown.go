package plan

import (
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// valRange accumulates a value interval for one variable.
type valRange struct {
	lo, hi             dict.Value
	hasLo, hasHi       bool
	loStrict, hiStrict bool
}

func (r *valRange) addLo(v dict.Value, strict bool) {
	if !r.hasLo || dict.Compare(v, r.lo) > 0 || (dict.Compare(v, r.lo) == 0 && strict) {
		r.lo, r.loStrict, r.hasLo = v, strict, true
	}
}

func (r *valRange) addHi(v dict.Value, strict bool) {
	if !r.hasHi || dict.Compare(v, r.hi) < 0 || (dict.Compare(v, r.hi) == 0 && strict) {
		r.hi, r.hiStrict, r.hasHi = v, strict, true
	}
}

// pushFilters derives per-variable value ranges from the query's FILTER
// conjuncts and attaches them as OID ranges to the owning star
// properties. Filters stay in the query and are re-checked after the
// joins, so pushdown is purely an access-path optimization and can never
// change results.
func (b *builder) pushFilters(stars []*star) {
	if !b.sv.LiteralsOrdered {
		return // literal OIDs are not value-ordered
	}
	ranges := map[string]*valRange{}
	for _, f := range b.q.Filters {
		for _, conj := range conjuncts(f) {
			v, val, op, ok := varCmpLit(conj)
			if !ok {
				continue
			}
			r := ranges[v]
			if r == nil {
				r = &valRange{}
				ranges[v] = r
			}
			switch op {
			case sparql.OpEq:
				r.addLo(val, false)
				r.addHi(val, false)
			case sparql.OpGe:
				r.addLo(val, false)
			case sparql.OpGt:
				r.addLo(val, true)
			case sparql.OpLe:
				r.addHi(val, false)
			case sparql.OpLt:
				r.addHi(val, true)
			}
		}
	}
	if len(ranges) == 0 {
		return
	}
	for _, st := range stars {
		for i := range st.props {
			p := &st.props[i]
			if p.ObjVar == "" {
				continue
			}
			r, ok := ranges[p.ObjVar]
			if !ok {
				continue
			}
			lo := dict.LiteralOID(1)
			hi := dict.LiteralOID(uint64(b.sv.Dict.NumLiterals()))
			if b.sv.Dict.NumLiterals() == 0 {
				continue
			}
			if r.hasLo {
				c, ok := b.sv.Dict.LiteralCeil(r.lo, r.loStrict)
				if !ok {
					// nothing qualifies: impossible range
					p.HasRange, p.Lo, p.Hi = true, 1, 0
					continue
				}
				lo = c
			}
			if r.hasHi {
				f, ok := b.sv.Dict.LiteralFloor(r.hi, r.hiStrict)
				if !ok {
					p.HasRange, p.Lo, p.Hi = true, 1, 0
					continue
				}
				hi = f
			}
			p.HasRange, p.Lo, p.Hi = true, lo, hi
		}
	}
}

// WorkloadRangePreds inspects a query and returns the predicate IRIs
// whose object variables carry range or equality FILTERs — the signal a
// self-organizing store needs to pick subject-clustering sort keys from
// the workload (the paper: "a self-organizing RDF system would need
// workload analysis in order to derive the usefulness of such
// subject-clustering on dates").
func WorkloadRangePreds(q *sparql.Query) []string {
	filtered := map[string]bool{}
	for _, f := range q.Filters {
		for _, conj := range conjuncts(f) {
			if v, _, _, ok := varCmpLit(conj); ok {
				filtered[v] = true
			}
		}
	}
	if len(filtered) == 0 {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		if tp.P.IsVar() || !tp.O.IsVar() || !filtered[tp.O.Var] {
			continue
		}
		iri := tp.P.Term.Value
		if !seen[iri] {
			seen[iri] = true
			out = append(out, iri)
		}
	}
	return out
}

// conjuncts flattens the top-level && chain of an expression.
func conjuncts(e sparql.Expr) []sparql.Expr {
	if b, ok := e.(*sparql.ExBin); ok && b.Op == sparql.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sparql.Expr{e}
}

// varCmpLit recognizes `?v OP literal` / `literal OP ?v` conjuncts.
func varCmpLit(e sparql.Expr) (string, dict.Value, sparql.Op, bool) {
	b, ok := e.(*sparql.ExBin)
	if !ok {
		return "", dict.Value{}, 0, false
	}
	switch b.Op {
	case sparql.OpEq, sparql.OpGe, sparql.OpGt, sparql.OpLe, sparql.OpLt:
	default:
		return "", dict.Value{}, 0, false
	}
	if v, ok := b.L.(*sparql.ExVar); ok {
		if lit, ok := b.R.(*sparql.ExLit); ok && lit.Term.Kind == dict.KindLiteral {
			return v.Name, lit.Val, b.Op, true
		}
	}
	if v, ok := b.R.(*sparql.ExVar); ok {
		if lit, ok := b.L.(*sparql.ExLit); ok && lit.Term.Kind == dict.KindLiteral {
			return v.Name, lit.Val, flipOp(b.Op), true
		}
	}
	return "", dict.Value{}, 0, false
}

func flipOp(op sparql.Op) sparql.Op {
	switch op {
	case sparql.OpLt:
		return sparql.OpGt
	case sparql.OpLe:
		return sparql.OpGe
	case sparql.OpGt:
		return sparql.OpLt
	case sparql.OpGe:
		return sparql.OpLe
	default:
		return op
	}
}

// crossTablePushdown implements the paper's zone-map foreign-key trick:
// a range restriction on the sort key of table B translates into a
// contiguous subject-OID window of B; any star A joining to B through an
// FK column can then restrict that column to the window, letting A's
// RDFscan skip blocks via the FK column's zone map ("a restriction on
// shipdate can be pushed to ORDERS, and vice versa a restriction on
// orderdate restricts LINEITEM").
//
// The window is only a complete description of B's matches when star B
// is covered by exactly one table and none of its predicates occur in
// the irregular residue — checked here, so the rewrite is always exact.
func (b *builder) crossTablePushdown(stars []*star) {
	if !b.opts.ZoneMaps || !b.sv.Organized || !b.sv.LiteralsOrdered || b.sv.Cat == nil {
		return
	}
	bysubj := map[string]*star{}
	for _, st := range stars {
		bysubj[st.subjVar] = st
	}
	for _, stA := range stars {
		for i := range stA.props {
			pA := &stA.props[i]
			if pA.ObjVar == "" {
				continue
			}
			stB, ok := bysubj[pA.ObjVar]
			if !ok || len(stB.tables) != 1 {
				continue
			}
			tb := stB.tables[0]
			if !b.residualFree(stB) {
				continue
			}
			lo, hi, restricted := b.subjectWindow(stB, tb)
			if !restricted {
				continue
			}
			// intersect with any existing range on the FK column
			if pA.HasRange {
				if lo < pA.Lo {
					lo = pA.Lo
				}
				if hi > pA.Hi {
					hi = pA.Hi
				}
			}
			pA.HasRange, pA.Lo, pA.Hi = true, lo, hi
		}
	}
}

// residualFree reports that none of the star's predicates occur in the
// irregular store or in a link table, so table rows are the complete
// answer set.
func (b *builder) residualFree(st *star) bool {
	for i := range st.props {
		for _, lt := range b.sv.Cat.Links {
			if lt.Pred == st.props[i].Pred && len(lt.Subj) > 0 {
				return false
			}
		}
	}
	if b.sv.Cat.Irregular.Len() == 0 {
		return true
	}
	pso := b.sv.Cat.IrregularIdx.Get(triples.PSO)
	for i := range st.props {
		if lo, hi := pso.Range1(st.props[i].Pred); hi > lo {
			return false
		}
	}
	return true
}

// subjectWindow computes the subject-OID window of table rows that can
// satisfy the star's range constraint on the table's sort key. Returns
// restricted=false when the star has no such constraint.
func (b *builder) subjectWindow(st *star, t *relational.Table) (dict.OID, dict.OID, bool) {
	if t.SortPred == dict.Nil {
		return 0, 0, false
	}
	// Live updates break the window's completeness: unsealed delta rows
	// carry subject OIDs outside the dense range, and a compacted table
	// (extra rows appended, holes punched) no longer keeps its sort-key
	// column ascending. Tombstones alone are fine — stale sealed entries
	// only widen the window.
	if t.SortDisturbed || t.DeltaLen() > 0 {
		return 0, 0, false
	}
	var rangeProp *exec.StarProp
	for i := range st.props {
		p := &st.props[i]
		if p.Pred == t.SortPred && (p.HasRange || p.ObjConst != dict.Nil) {
			rangeProp = p
			break
		}
	}
	if rangeProp == nil {
		return 0, 0, false
	}
	lo, hi := rangeProp.Lo, rangeProp.Hi
	if rangeProp.ObjConst != dict.Nil {
		lo, hi = rangeProp.ObjConst, rangeProp.ObjConst
	}
	col := t.Col(t.SortPred)
	if col == nil {
		return 0, 0, false
	}
	// The column is ascending with NULLs at the tail (sub-ordering put
	// keyed subjects first); binary search the compressed segments.
	rowLo, rowHi := col.Data.AscendingWindow(lo, hi)
	if rowLo >= rowHi {
		return 1, 0, true // provably empty window
	}
	return dict.ResourceOID(t.Base + uint64(rowLo)), dict.ResourceOID(t.Base + uint64(rowHi-1)), true
}
