package plan

import (
	"fmt"
	"sort"
	"strings"

	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// Mode selects the plan family.
type Mode uint8

const (
	// ModeDefault uses per-property index scans and self-joins only —
	// the paper's "Default" query plan scheme.
	ModeDefault Mode = iota
	// ModeRDFScan uses RDFscan/RDFjoin over the emergent tables where
	// star patterns allow, falling back to Default elsewhere.
	ModeRDFScan
)

func (m Mode) String() string {
	if m == ModeRDFScan {
		return "RDFscan/RDFjoin"
	}
	return "Default"
}

// Options tunes planning, mirroring the configuration axes of Table I.
type Options struct {
	Mode Mode
	// ZoneMaps enables zone-map block skipping and cross-table FK
	// pushdown. Only effective on an organized store.
	ZoneMaps bool
}

// StoreView is what the planner needs to know about the store.
type StoreView struct {
	Dict *dict.Dictionary
	Idx  *triples.IndexSet
	// Schema and Cat are nil before Organize.
	Schema *cs.Schema
	Cat    *relational.Catalog
	// Organized reports that subject clustering ran and the catalog is
	// populated.
	Organized bool
	// LiteralsOrdered reports that literal OIDs are currently in value
	// order (false again once trickle inserts mint new literals); range
	// pushdown to OID comparisons requires it.
	LiteralsOrdered bool
}

// Plan is an executable query plan: the OID-level BGP tree (Root,
// including residual filters) topped by the value-level head chain
// (Head: aggregation/projection, DISTINCT, ORDER BY).
type Plan struct {
	Root  Node
	Head  HeadNode
	Query *sparql.Query
	Opts  Options
}

// Explain renders the operator tree, head chain included.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan [%s", p.Opts.Mode)
	if p.Opts.ZoneMaps {
		b.WriteString(" +zonemaps")
	}
	fmt.Fprintf(&b, "] joins=%d\n", p.Root.Joins())
	p.Head.Explain(&b, 0)
	return b.String()
}

// Execute runs the plan to a decoded result. The plan is driven as a
// batch-streaming pipeline: scans produce as the head pulls, and a
// satisfied LIMIT stops the pull early.
func (p *Plan) Execute(ctx *exec.Ctx) (*exec.Result, error) {
	it, err := p.Stream(ctx)
	if err != nil {
		return nil, err
	}
	return it.Collect(), nil
}

// Stream runs the plan to a pull-based row iterator; the caller must
// Close it (exhaustion closes it automatically). Aggregation, DISTINCT
// and ORDER BY run as batch operators inside the pipeline, so streaming
// works for every query shape — no silent materialization fallback.
func (p *Plan) Stream(ctx *exec.Ctx) (*exec.RowIter, error) {
	return exec.StreamVal(ctx, p.Head.ValOp(), p.Query.Limit, p.Query.Offset), nil
}

// Build plans a parsed query against a store view.
func Build(q *sparql.Query, sv *StoreView, opts Options) (*Plan, error) {
	b := &builder{q: q, sv: sv, opts: opts}
	root, err := b.build()
	if err != nil {
		return nil, err
	}
	// Residual filters become explicit plan nodes (pushdown only narrows
	// access paths; the full predicates are re-checked here).
	for _, f := range q.Filters {
		root = &FilterNode{Input: root, Expr: f}
	}
	head, err := buildHead(root, q)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Head: head, Query: q, Opts: opts}, nil
}

type builder struct {
	q    *sparql.Query
	sv   *StoreView
	opts Options
	// renames maps temp vars introduced for duplicate variables to
	// their originals; EqSelect nodes resolve them.
	tmpSeq int
}

// star groups the patterns sharing one subject variable.
type star struct {
	subjVar string
	props   []exec.StarProp
	eqPairs [][2]string // (orig, temp) equality constraints
	est     float64
	// tables covering the star (RDFScan mode, organized store).
	tables []*relational.Table
}

func (b *builder) build() (Node, error) {
	var stars []*star
	starBySubj := map[string]*star{}
	var generic []sparql.TriplePattern

	for _, tp := range b.q.Patterns {
		if tp.S.IsVar() && !tp.P.IsVar() {
			st := starBySubj[tp.S.Var]
			if st == nil {
				st = &star{subjVar: tp.S.Var}
				starBySubj[tp.S.Var] = st
				stars = append(stars, st)
			}
			prop, eq, err := b.makeProp(st, tp)
			if err != nil {
				return &EmptyNode{vars: b.q.PatternVars(), Reason: err.Error()}, nil
			}
			st.props = append(st.props, prop)
			if eq != nil {
				st.eqPairs = append(st.eqPairs, *eq)
			}
			continue
		}
		generic = append(generic, tp)
	}

	// Push single-variable range filters into stars.
	b.pushFilters(stars)
	// Resolve covering tables + zone pushdown.
	for _, st := range stars {
		b.resolveStar(st)
	}
	b.crossTablePushdown(stars)
	for _, st := range stars {
		st.est = b.estimate(st)
	}

	// Build the join tree greedily: cheapest star first, then always the
	// connected star with the smallest estimate (RDFjoin when the link
	// is subject-shaped).
	var root Node
	remaining := append([]*star{}, stars...)
	sort.SliceStable(remaining, func(i, j int) bool { return remaining[i].est < remaining[j].est })
	boundVars := map[string]bool{}
	for len(remaining) > 0 {
		next := -1
		if root == nil {
			next = 0
		} else {
			for i, st := range remaining {
				if starConnected(st, boundVars) {
					next = i
					break
				}
			}
			if next < 0 {
				next = 0 // disconnected component: cross product
			}
		}
		st := remaining[next]
		remaining = append(remaining[:next], remaining[next+1:]...)
		node := b.starNode(st)
		if root == nil {
			root = node
		} else if b.opts.Mode == ModeRDFScan && boundVars[st.subjVar] && len(st.tables) >= 1 {
			// candidates for this star's subject flow from the tree:
			// RDFjoin (positional fetch) instead of scan + hash join.
			root = &RDFJoinNode{
				Input:  root,
				KeyVar: st.subjVar,
				Table:  biggestTable(st.tables),
				Star:   execStar(st),
				Idx:    b.sv.Idx,
				est:    root.EstRows(),
			}
			root = b.eqSelects(root, st)
		} else {
			root = &HashJoinNode{L: root, R: node, est: minf(root.EstRows(), node.EstRows())}
		}
		for _, v := range node.Vars() {
			boundVars[v] = true
		}
	}

	// Generic patterns join in afterwards.
	for _, tp := range generic {
		node, err := b.genericNode(tp)
		if err != nil {
			return &EmptyNode{vars: b.q.PatternVars(), Reason: err.Error()}, nil
		}
		if root == nil {
			root = node
		} else {
			root = &HashJoinNode{L: root, R: node, est: minf(root.EstRows(), node.EstRows())}
		}
	}
	if root == nil {
		return &EmptyNode{vars: nil, Reason: "no patterns"}, nil
	}
	return root, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func starConnected(st *star, bound map[string]bool) bool {
	if bound[st.subjVar] {
		return true
	}
	for i := range st.props {
		if v := st.props[i].ObjVar; v != "" && bound[v] {
			return true
		}
	}
	return false
}

func biggestTable(ts []*relational.Table) *relational.Table {
	best := ts[0]
	for _, t := range ts[1:] {
		if t.Count > best.Count {
			best = t
		}
	}
	return best
}

// makeProp converts one pattern into a StarProp, introducing a temp
// variable when the object variable repeats within the star or equals
// the subject.
func (b *builder) makeProp(st *star, tp sparql.TriplePattern) (exec.StarProp, *[2]string, error) {
	pred, ok := b.sv.Dict.Lookup(tp.P.Term)
	if !ok {
		return exec.StarProp{}, nil, fmt.Errorf("predicate %s not in store", tp.P.Term)
	}
	prop := exec.StarProp{Pred: pred}
	if tp.O.IsVar() {
		name := tp.O.Var
		dup := name == st.subjVar
		for i := range st.props {
			if st.props[i].ObjVar == name {
				dup = true
			}
		}
		if dup {
			b.tmpSeq++
			tmp := fmt.Sprintf("%s#%d", name, b.tmpSeq)
			prop.ObjVar = tmp
			return prop, &[2]string{name, tmp}, nil
		}
		prop.ObjVar = name
		return prop, nil, nil
	}
	obj, ok := b.sv.Dict.Lookup(tp.O.Term)
	if !ok {
		return exec.StarProp{}, nil, fmt.Errorf("object %s not in store", tp.O.Term)
	}
	prop.ObjConst = obj
	return prop, nil, nil
}

func (b *builder) genericNode(tp sparql.TriplePattern) (Node, error) {
	n := &GenericScanNode{P: tp, Idx: b.sv.Idx, est: float64(b.sv.Idx.Get(triples.SPO).Len())}
	resolve := func(nd sparql.Node) (dict.OID, error) {
		if nd.IsVar() {
			return dict.Nil, nil
		}
		o, ok := b.sv.Dict.Lookup(nd.Term)
		if !ok {
			return dict.Nil, fmt.Errorf("term %s not in store", nd.Term)
		}
		return o, nil
	}
	var err error
	if n.S, err = resolve(tp.S); err != nil {
		return nil, err
	}
	if n.Pr, err = resolve(tp.P); err != nil {
		return nil, err
	}
	if n.O, err = resolve(tp.O); err != nil {
		return nil, err
	}
	bound := 0
	for _, o := range []dict.OID{n.S, n.Pr, n.O} {
		if o != dict.Nil {
			bound++
		}
	}
	n.est /= float64(uint(1) << (4 * uint(bound)))
	return n, nil
}

// starNode materializes the scan node for a star.
func (b *builder) starNode(st *star) Node {
	var node Node
	if b.opts.Mode == ModeRDFScan && len(st.tables) > 0 {
		node = &RDFScanNode{Star: execStar(st), Tables: st.tables, UseZones: b.opts.ZoneMaps && b.sv.Organized, est: st.est}
	} else {
		node = &DefaultStarNode{Star: execStar(st), Idx: b.sv.Idx, est: st.est}
	}
	return b.eqSelects(node, st)
}

func (b *builder) eqSelects(node Node, st *star) Node {
	for _, pair := range st.eqPairs {
		node = &EqSelectNode{Input: node, A: pair[0], B: pair[1]}
	}
	return node
}

func execStar(st *star) exec.Star {
	return exec.Star{SubjVar: st.subjVar, Props: st.props}
}

// resolveStar finds covering tables and prunes pushdown usability.
func (b *builder) resolveStar(st *star) {
	if b.sv.Schema == nil || b.sv.Cat == nil || !b.sv.Organized {
		return
	}
	preds := make([]dict.OID, len(st.props))
	for i := range st.props {
		preds[i] = st.props[i].Pred
	}
	for _, c := range b.sv.Schema.Covering(preds) {
		if t := b.sv.Cat.ByCS(c.ID); t != nil {
			// a split-off (multi-valued) property has no column; such
			// stars cannot use RDFscan on this table
			all := true
			for _, p := range preds {
				if t.Col(p) == nil {
					all = false
					break
				}
			}
			if all {
				st.tables = append(st.tables, t)
			}
		}
	}
}

// estimate is the CS-informed cardinality model: base cardinality from
// covering CS supports (or the property run length), multiplied by
// constraint selectivities — the structural-correlation awareness the
// paper argues triple stores lack.
func (b *builder) estimate(st *star) float64 {
	var base float64
	if len(st.tables) > 0 {
		for _, t := range st.tables {
			base += float64(t.Count)
		}
	} else {
		// smallest property run bounds the star size
		pso := b.sv.Idx.Get(triples.PSO)
		minRun := -1
		for i := range st.props {
			lo, hi := pso.Range1(st.props[i].Pred)
			if minRun < 0 || hi-lo < minRun {
				minRun = hi - lo
			}
		}
		if minRun < 0 {
			minRun = 0
		}
		base = float64(minRun)
	}
	sel := 1.0
	for i := range st.props {
		p := &st.props[i]
		switch {
		case p.ObjConst != dict.Nil:
			sel *= selConst(b.sv.Idx, p)
		case p.HasRange:
			sel *= 0.3
		}
	}
	return base * sel
}

func selConst(idx *triples.IndexSet, p *exec.StarProp) float64 {
	pos := idx.Get(triples.POS)
	runLo, runHi := pos.Range1(p.Pred)
	if runHi == runLo {
		return 0
	}
	lo, hi := pos.Range2(p.Pred, p.ObjConst)
	return float64(hi-lo+1) / float64(runHi-runLo+1)
}
