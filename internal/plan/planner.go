package plan

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/plan/cost"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// Mode selects the plan family.
type Mode uint8

const (
	// ModeDefault uses per-property index scans and self-joins only —
	// the paper's "Default" query plan scheme.
	ModeDefault Mode = iota
	// ModeRDFScan uses RDFscan/RDFjoin over the emergent tables where
	// star patterns allow, falling back to Default elsewhere.
	ModeRDFScan
)

func (m Mode) String() string {
	if m == ModeRDFScan {
		return "RDFscan/RDFjoin"
	}
	return "Default"
}

// Options tunes planning, mirroring the configuration axes of Table I.
type Options struct {
	Mode Mode
	// ZoneMaps enables zone-map block skipping and cross-table FK
	// pushdown. Only effective on an organized store.
	ZoneMaps bool
	// ForceAlgo pins the physical join algorithm ("hash", "merge",
	// "rdfjoin") wherever the pinned algorithm is applicable; joins it
	// cannot apply fall back to the cost-based choice. Used by the
	// differential harness and the plan-quality tests.
	ForceAlgo string
	// NoBloom disables runtime bloom filters on hash-join probe sides.
	NoBloom bool
	// ForceOrder fixes the left-deep star join order by subject
	// variable; stars it does not name follow cost-based after the named
	// prefix.
	ForceOrder []string
}

// StoreView is what the planner needs to know about the store.
type StoreView struct {
	Dict *dict.Dictionary
	Idx  *triples.IndexSet
	// Schema and Cat are nil before Organize.
	Schema *cs.Schema
	Cat    *relational.Catalog
	// Organized reports that subject clustering ran and the catalog is
	// populated.
	Organized bool
	// LiteralsOrdered reports that literal OIDs are currently in value
	// order (false again once trickle inserts mint new literals); range
	// pushdown to OID comparisons requires it.
	LiteralsOrdered bool
}

// Plan is an executable query plan: the OID-level BGP tree (Root,
// including residual filters) topped by the value-level head chain
// (Head: aggregation/projection, DISTINCT, ORDER BY).
type Plan struct {
	Root  Node
	Head  HeadNode
	Query *sparql.Query
	Opts  Options
	// Prof is the plan-time workload fingerprint the store's query log
	// records.
	Prof Profile
	// nStats counts the plan's stats-instrumented nodes (ids are
	// 1..nStats); see NumStatNodes.
	nStats int
}

// Explain renders the operator tree, head chain included.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan [%s", p.Opts.Mode)
	if p.Opts.ZoneMaps {
		b.WriteString(" +zonemaps")
	}
	fmt.Fprintf(&b, "] joins=%d\n", p.Root.Joins())
	p.Head.Explain(&b, 0, nil)
	return b.String()
}

// Execute runs the plan to a decoded result. The plan is driven as a
// batch-streaming pipeline: scans produce as the head pulls, and a
// satisfied LIMIT stops the pull early.
func (p *Plan) Execute(ctx *exec.Ctx) (*exec.Result, error) {
	it, err := p.Stream(ctx)
	if err != nil {
		return nil, err
	}
	res := it.Collect()
	if err := it.Err(); err != nil {
		// the stream ended on a failure (cancellation, recovered panic,
		// memory budget): report it instead of a silently truncated result
		return nil, err
	}
	return res, nil
}

// Stream runs the plan to a pull-based row iterator; the caller must
// Close it (exhaustion closes it automatically). Aggregation, DISTINCT
// and ORDER BY run as batch operators inside the pipeline, so streaming
// works for every query shape — no silent materialization fallback.
func (p *Plan) Stream(ctx *exec.Ctx) (*exec.RowIter, error) {
	return exec.StreamVal(ctx, p.Head.ValOp(), p.Query.Limit, p.Query.Offset), nil
}

// Build plans a parsed query against a store view.
func Build(q *sparql.Query, sv *StoreView, opts Options) (*Plan, error) {
	b := &builder{q: q, sv: sv, opts: opts}
	root, err := b.build()
	if err != nil {
		return nil, err
	}
	// Residual filters become explicit plan nodes (pushdown only narrows
	// access paths; the full predicates are re-checked here).
	for _, f := range q.Filters {
		root = &FilterNode{Input: root, Expr: f}
	}
	// Runtime join filters attach to the final tree only (candidate
	// trees the enumerator discarded must not leave handles behind).
	if opts.Mode == ModeRDFScan && !opts.NoBloom {
		b.planBlooms(root)
	}
	head, err := buildHead(root, q)
	if err != nil {
		return nil, err
	}
	p := &Plan{Root: root, Head: head, Query: q, Opts: opts}
	// Number the final tree's nodes for runtime stats and fingerprint
	// the workload it touches.
	p.finish(sv.Dict)
	return p, nil
}

type builder struct {
	q    *sparql.Query
	sv   *StoreView
	opts Options
	// renames maps temp vars introduced for duplicate variables to
	// their originals; EqSelect nodes resolve them.
	tmpSeq int
}

// star groups the patterns sharing one subject variable.
type star struct {
	subjVar string
	props   []exec.StarProp
	eqPairs [][2]string // (orig, temp) equality constraints
	est     float64
	// tables covering the star (RDFScan mode, organized store).
	tables []*relational.Table
}

func (b *builder) build() (Node, error) {
	var stars []*star
	starBySubj := map[string]*star{}
	var generic []sparql.TriplePattern

	for _, tp := range b.q.Patterns {
		if tp.S.IsVar() && !tp.P.IsVar() {
			st := starBySubj[tp.S.Var]
			if st == nil {
				st = &star{subjVar: tp.S.Var}
				starBySubj[tp.S.Var] = st
				stars = append(stars, st)
			}
			prop, eq, err := b.makeProp(st, tp)
			if err != nil {
				return &EmptyNode{vars: b.q.PatternVars(), Reason: err.Error()}, nil
			}
			st.props = append(st.props, prop)
			if eq != nil {
				st.eqPairs = append(st.eqPairs, *eq)
			}
			continue
		}
		generic = append(generic, tp)
	}

	// Push single-variable range filters into stars.
	b.pushFilters(stars)
	// Resolve covering tables + zone pushdown.
	for _, st := range stars {
		b.resolveStar(st)
	}
	b.crossTablePushdown(stars)
	for _, st := range stars {
		st.est = b.estimate(st)
	}

	// Enumerate join order and per-join physical algorithm cost-based.
	root := b.joinStars(stars)

	// Generic patterns join in afterwards.
	for _, tp := range generic {
		node, err := b.genericNode(tp)
		if err != nil {
			return &EmptyNode{vars: b.q.PatternVars(), Reason: err.Error()}, nil
		}
		if root == nil {
			root = node
		} else {
			est := minf(root.EstRows(), node.EstRows())
			c := root.Cost() + node.Cost() +
				cost.HashJoin(minf(root.EstRows(), node.EstRows()), maxf(root.EstRows(), node.EstRows()), est)
			root = &HashJoinNode{L: root, R: node, est: est, cost: c}
		}
	}
	if root == nil {
		return &EmptyNode{vars: nil, Reason: "no patterns"}, nil
	}
	return root, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// joinState is one enumerated left-deep join tree over a subset of the
// query's stars, with the statistics the cost model propagates.
type joinState struct {
	node Node
	rows float64
	cost float64
	// distinct estimates the number of distinct values per output
	// variable — the join-cardinality denominators.
	distinct map[string]float64
	vars     map[string]bool
}

func newJoinState(node Node, rows float64, planCost float64, distinct map[string]float64) *joinState {
	vars := map[string]bool{}
	for _, v := range node.Vars() {
		vars[v] = true
	}
	if rows < 0 {
		rows = 0
	}
	return &joinState{node: node, rows: rows, cost: planCost, distinct: distinct, vars: vars}
}

// distinctOf returns the distinct estimate for a variable, defaulting to
// half the state's rows when the model tracked nothing for it.
func (s *joinState) distinctOf(v string) float64 {
	if d, ok := s.distinct[v]; ok {
		return d
	}
	return math.Max(1, s.rows/2)
}

// joinStars enumerates a left-deep join tree over the stars: exhaustive
// subset DP for small queries, greedy cost descent past 8 stars, or the
// exact order the caller forced.
func (b *builder) joinStars(stars []*star) Node {
	n := len(stars)
	if n == 0 {
		return nil
	}
	if len(b.opts.ForceOrder) > 0 {
		return b.forcedJoin(stars).node
	}
	if n == 1 {
		return b.starState(stars[0]).node
	}
	if n <= 8 {
		return b.dpJoin(stars).node
	}
	return b.greedyJoin(stars).node
}

// dpJoin is the classic DP-over-subsets enumerator restricted to
// left-deep trees: best[mask] is the cheapest join tree covering exactly
// the stars in mask, extended one star at a time. Cross products are
// considered only for subsets with no connected extension. Iteration
// order and strict < keep the result deterministic.
func (b *builder) dpJoin(stars []*star) *joinState {
	n := len(stars)
	best := make([]*joinState, 1<<uint(n))
	for i, st := range stars {
		best[1<<uint(i)] = b.starState(st)
	}
	for mask := 3; mask < 1<<uint(n); mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		var bst *joinState
		for pass := 0; pass < 2 && bst == nil; pass++ {
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				left := best[mask&^(1<<uint(i))]
				if left == nil {
					continue
				}
				if pass == 0 && !starConnected(stars[i], left.vars) {
					continue
				}
				for _, c := range b.joinCandidates(left, stars[i]) {
					if bst == nil || c.cost < bst.cost {
						bst = c
					}
				}
			}
		}
		best[mask] = bst
	}
	return best[1<<uint(n)-1]
}

// greedyJoin is the large-query fallback: start from the cheapest star,
// then repeatedly graft the connected star whose best join candidate
// minimizes total cost.
func (b *builder) greedyJoin(stars []*star) *joinState {
	n := len(stars)
	used := make([]bool, n)
	start, cur := 0, b.starState(stars[0])
	for i := 1; i < n; i++ {
		if s := b.starState(stars[i]); s.cost < cur.cost {
			start, cur = i, s
		}
	}
	used[start] = true
	for joined := 1; joined < n; joined++ {
		var bst *joinState
		bi := -1
		for pass := 0; pass < 2 && bst == nil; pass++ {
			for i := 0; i < n; i++ {
				if used[i] || (pass == 0 && !starConnected(stars[i], cur.vars)) {
					continue
				}
				for _, c := range b.joinCandidates(cur, stars[i]) {
					if bst == nil || c.cost < bst.cost {
						bst, bi = c, i
					}
				}
			}
		}
		cur = bst
		used[bi] = true
	}
	return cur
}

// forcedJoin builds the left-deep tree in exactly the order named by
// Options.ForceOrder (by star subject variable); unnamed stars follow in
// pattern order. Algorithms per join stay cost-based unless ForceAlgo
// pins them.
func (b *builder) forcedJoin(stars []*star) *joinState {
	taken := make([]bool, len(stars))
	var seq []*star
	for _, name := range b.opts.ForceOrder {
		for i, st := range stars {
			if !taken[i] && st.subjVar == name {
				taken[i] = true
				seq = append(seq, st)
				break
			}
		}
	}
	for i, st := range stars {
		if !taken[i] {
			seq = append(seq, st)
		}
	}
	cur := b.starState(seq[0])
	for _, st := range seq[1:] {
		var bst *joinState
		for _, c := range b.joinCandidates(cur, st) {
			if bst == nil || c.cost < bst.cost {
				bst = c
			}
		}
		cur = bst
	}
	return cur
}

// starState costs a single star's scan.
func (b *builder) starState(st *star) *joinState {
	node := b.starNode(st)
	return newJoinState(node, node.EstRows(), node.Cost(), b.starDistincts(st, st.est))
}

// starDistincts seeds the per-variable distinct estimates of one star:
// subjects of a star are unique, object distincts come from the
// discovery-time DistinctObj statistic of the covering tables' CS props.
func (b *builder) starDistincts(st *star, rows float64) map[string]float64 {
	d := map[string]float64{st.subjVar: math.Max(rows, 1)}
	for i := range st.props {
		v := st.props[i].ObjVar
		if v == "" {
			continue
		}
		dv := 0.0
		for _, t := range st.tables {
			if t.CS == nil {
				continue
			}
			if p := t.CS.Prop(st.props[i].Pred); p != nil {
				dv += float64(p.DistinctObj)
			}
		}
		if dv == 0 {
			dv = rows / 2 // unknown (pre-organize or irregular): assume half
		}
		d[v] = math.Max(1, math.Min(dv, rows))
	}
	return d
}

// joinCandidates enumerates the physical ways to join `left` with one
// more star and costs each: hash join (always applicable), RDFjoin
// (positional fetch when the star's subject flows from the left), and
// merge join (single clean covering table, subject-ordered scan). A
// pinned ForceAlgo narrows the list when applicable.
func (b *builder) joinCandidates(left *joinState, st *star) []*joinState {
	right := b.starState(st)

	// Output cardinality: product over shared variables of the classic
	// distinct-count denominators (cross product when none shared).
	var shared []string
	for v := range right.vars {
		if left.vars[v] {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	out := left.rows * right.rows
	for _, v := range shared {
		out /= math.Max(math.Max(left.distinctOf(v), right.distinctOf(v)), 1)
	}

	merged := func(outRows float64) map[string]float64 {
		nd := make(map[string]float64, len(left.distinct)+len(right.distinct))
		for v, dv := range left.distinct {
			nd[v] = math.Max(1, math.Min(dv, outRows))
		}
		for v, dv := range right.distinct {
			if e, ok := nd[v]; ok {
				dv = math.Min(e, dv)
			}
			nd[v] = math.Max(1, math.Min(dv, outRows))
		}
		return nd
	}

	var cands []*joinState

	hashCost := left.cost + right.cost +
		cost.HashJoin(minf(left.rows, right.rows), maxf(left.rows, right.rows), out)
	cands = append(cands, newJoinState(
		&HashJoinNode{L: left.node, R: right.node, est: out, cost: hashCost},
		out, hashCost, merged(out)))

	subjFlows := b.opts.Mode == ModeRDFScan && left.vars[st.subjVar] && len(st.tables) >= 1
	if subjFlows {
		// RDFjoin: fetch the star positionally per candidate subject.
		sel := starSel(b.sv.Idx, st)
		outR := left.rows * sel
		rdfCost := left.cost + cost.RDFJoin(left.rows, len(st.props), outR)
		node := b.eqSelects(&RDFJoinNode{
			Input:  left.node,
			KeyVar: st.subjVar,
			Table:  biggestTable(st.tables),
			Star:   execStar(st),
			Idx:    b.sv.Idx,
			est:    outR,
			cost:   rdfCost,
		}, st)
		cands = append(cands, newJoinState(node, node.EstRows(), rdfCost, merged(outR)))

		if t := b.mergeTable(left, st); t != nil {
			// Merge join: stream the covering table subject-ascending
			// against the key-sorted left side.
			outM := left.rows * sel
			innerScan := b.starScanCost(st)
			sorted := leftSortedOn(left.node, st.subjVar)
			mergeCost := left.cost +
				cost.MergeJoin(left.rows, float64(t.Count), innerScan, outM, sorted)
			node := b.eqSelects(&MergeJoinNode{
				Left:     left.node,
				KeyVar:   st.subjVar,
				Table:    t,
				Star:     execStar(st),
				UseZones: b.opts.ZoneMaps && b.sv.Organized,
				est:      outM,
				cost:     mergeCost,
			}, st)
			cands = append(cands, newJoinState(node, node.EstRows(), mergeCost, merged(outM)))
		}
	}

	if forced := b.filterForced(cands); len(forced) > 0 {
		return forced
	}
	return cands
}

// filterForced narrows candidates to the pinned algorithm when present.
func (b *builder) filterForced(cands []*joinState) []*joinState {
	if b.opts.ForceAlgo == "" {
		return nil
	}
	var out []*joinState
	for _, c := range cands {
		n := c.node
		for {
			if eq, ok := n.(*EqSelectNode); ok {
				n = eq.Input
				continue
			}
			break
		}
		switch n.(type) {
		case *HashJoinNode:
			if b.opts.ForceAlgo == "hash" {
				out = append(out, c)
			}
		case *MergeJoinNode:
			if b.opts.ForceAlgo == "merge" {
				out = append(out, c)
			}
		case *RDFJoinNode:
			if b.opts.ForceAlgo == "rdfjoin" {
				out = append(out, c)
			}
		}
	}
	return out
}

// mergeTable returns the single covering table a merge join may stream,
// or nil when the star is not merge-joinable: it needs exactly one
// covering table, no residual triples outside it, no unsealed delta rows
// or post-compaction extra rows (the scan must be the complete subject-
// ascending answer), and object variables that do not repeat variables
// already bound on the left (the operator re-checks no equalities).
func (b *builder) mergeTable(left *joinState, st *star) *relational.Table {
	if len(st.tables) != 1 || !b.residualFree(st) {
		return nil
	}
	t := st.tables[0]
	if t.DeltaLen() > 0 || len(t.Extra) > 0 {
		return nil
	}
	for i := range st.props {
		if v := st.props[i].ObjVar; v != "" && left.vars[v] {
			return nil
		}
	}
	return t
}

// leftSortedOn reports that the node's output is already ascending in
// key — a bare single-table scan whose table is physically sub-ordered
// on the property producing key. Cost-only: the operator re-checks.
func leftSortedOn(n Node, key string) bool {
	sc, ok := n.(*RDFScanNode)
	if !ok || len(sc.Tables) != 1 {
		return false
	}
	t := sc.Tables[0]
	if t.SortPred == dict.Nil || t.SortDisturbed || t.DeltaLen() > 0 {
		return false
	}
	for i := range sc.Star.Props {
		if p := &sc.Star.Props[i]; p.ObjVar == key && p.Pred == t.SortPred {
			return true
		}
	}
	return false
}

// starScanCost estimates the physical cost of scanning one star,
// sampling zone maps of sargable predicates for the fraction of blocks
// the scan will actually decode.
func (b *builder) starScanCost(st *star) float64 {
	if len(st.tables) == 0 {
		return b.defaultStarCost(st)
	}
	useZones := b.opts.ZoneMaps && b.sv.Organized
	total := 0.0
	for _, t := range st.tables {
		sealed := float64(t.Count)
		if useZones {
			sealed *= zoneSel(t, st)
		}
		total += cost.Scan(sealed, float64(t.DeltaLen()), len(st.props))
	}
	return total
}

// zoneSel samples the zone maps: the block-level selectivity of the most
// selective sargable predicate of the star on this table.
func zoneSel(t *relational.Table, st *star) float64 {
	sel := 1.0
	for i := range st.props {
		p := &st.props[i]
		lo, hi := p.Lo, p.Hi
		if p.ObjConst != dict.Nil {
			lo, hi = p.ObjConst, p.ObjConst
		} else if !p.HasRange {
			continue
		}
		if c := t.Col(p.Pred); c != nil {
			if s := c.Data.Zones().Selectivity(lo, hi); s < sel {
				sel = s
			}
		}
	}
	return sel
}

// defaultStarCost costs the Default-family star: one index-run scan per
// property plus self-join output.
func (b *builder) defaultStarCost(st *star) float64 {
	pso := b.sv.Idx.Get(triples.PSO)
	total := 0.0
	for i := range st.props {
		lo, hi := pso.Range1(st.props[i].Pred)
		total += float64(hi-lo) * cost.ScanRow
	}
	return total + st.est*cost.OutRow
}

// planBlooms walks the final tree and attaches a runtime bloom filter to
// each hash join with a single shared variable whose build side is
// estimated meaningfully smaller than its probe side: the filled filter
// is pushed into every probe-side RDFscan that emits the join variable,
// pruning rows the join would drop anyway (no false negatives, so the
// result is row-identical).
func (b *builder) planBlooms(n Node) {
	switch x := n.(type) {
	case *HashJoinNode:
		b.planBlooms(x.L)
		b.planBlooms(x.R)
		shared := sharedRaw(x.L.Vars(), x.R.Vars())
		if len(shared) != 1 {
			return
		}
		v := shared[0]
		build, probe := x.L, x.R
		if x.L.EstRows() > x.R.EstRows() {
			build, probe = x.R, x.L
		}
		if build.EstRows()*4 > probe.EstRows() {
			return
		}
		var scans []*RDFScanNode
		collectBloomScans(probe, v, &scans)
		if len(scans) == 0 {
			return
		}
		h := &exec.BloomHandle{Var: v}
		x.blooms = append(x.blooms, h)
		for _, sc := range scans {
			sc.blooms = append(sc.blooms, h)
		}
	case *MergeJoinNode:
		b.planBlooms(x.Left)
	case *RDFJoinNode:
		b.planBlooms(x.Input)
	case *FilterNode:
		b.planBlooms(x.Input)
	case *EqSelectNode:
		b.planBlooms(x.Input)
	}
}

// collectBloomScans finds the RDFscans under n that emit v unchanged (as
// subject or object column), descending only through children that still
// carry v.
func collectBloomScans(n Node, v string, out *[]*RDFScanNode) {
	carries := func(c Node) bool {
		for _, cv := range c.Vars() {
			if cv == v {
				return true
			}
		}
		return false
	}
	switch x := n.(type) {
	case *RDFScanNode:
		if x.Star.SubjVar == v {
			*out = append(*out, x)
			return
		}
		for i := range x.Star.Props {
			if x.Star.Props[i].ObjVar == v {
				*out = append(*out, x)
				return
			}
		}
	case *HashJoinNode:
		if carries(x.L) {
			collectBloomScans(x.L, v, out)
		}
		if carries(x.R) {
			collectBloomScans(x.R, v, out)
		}
	case *MergeJoinNode:
		if carries(x.Left) {
			collectBloomScans(x.Left, v, out)
		}
	case *RDFJoinNode:
		if carries(x.Input) {
			collectBloomScans(x.Input, v, out)
		}
	case *FilterNode:
		collectBloomScans(x.Input, v, out)
	case *EqSelectNode:
		if carries(x.Input) {
			collectBloomScans(x.Input, v, out)
		}
	}
}

// sharedRaw lists the variables present on both sides, unprefixed.
func sharedRaw(l, r []string) []string {
	set := map[string]bool{}
	for _, v := range l {
		set[v] = true
	}
	var out []string
	for _, v := range r {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

func starConnected(st *star, bound map[string]bool) bool {
	if bound[st.subjVar] {
		return true
	}
	for i := range st.props {
		if v := st.props[i].ObjVar; v != "" && bound[v] {
			return true
		}
	}
	return false
}

func biggestTable(ts []*relational.Table) *relational.Table {
	best := ts[0]
	for _, t := range ts[1:] {
		if t.Count > best.Count {
			best = t
		}
	}
	return best
}

// makeProp converts one pattern into a StarProp, introducing a temp
// variable when the object variable repeats within the star or equals
// the subject.
func (b *builder) makeProp(st *star, tp sparql.TriplePattern) (exec.StarProp, *[2]string, error) {
	pred, ok := b.sv.Dict.Lookup(tp.P.Term)
	if !ok {
		return exec.StarProp{}, nil, fmt.Errorf("predicate %s not in store", tp.P.Term)
	}
	prop := exec.StarProp{Pred: pred}
	if tp.O.IsVar() {
		name := tp.O.Var
		dup := name == st.subjVar
		for i := range st.props {
			if st.props[i].ObjVar == name {
				dup = true
			}
		}
		if dup {
			b.tmpSeq++
			tmp := fmt.Sprintf("%s#%d", name, b.tmpSeq)
			prop.ObjVar = tmp
			return prop, &[2]string{name, tmp}, nil
		}
		prop.ObjVar = name
		return prop, nil, nil
	}
	obj, ok := b.sv.Dict.Lookup(tp.O.Term)
	if !ok {
		return exec.StarProp{}, nil, fmt.Errorf("object %s not in store", tp.O.Term)
	}
	prop.ObjConst = obj
	return prop, nil, nil
}

func (b *builder) genericNode(tp sparql.TriplePattern) (Node, error) {
	n := &GenericScanNode{P: tp, Idx: b.sv.Idx, est: float64(b.sv.Idx.Get(triples.SPO).Len())}
	resolve := func(nd sparql.Node) (dict.OID, error) {
		if nd.IsVar() {
			return dict.Nil, nil
		}
		o, ok := b.sv.Dict.Lookup(nd.Term)
		if !ok {
			return dict.Nil, fmt.Errorf("term %s not in store", nd.Term)
		}
		return o, nil
	}
	var err error
	if n.S, err = resolve(tp.S); err != nil {
		return nil, err
	}
	if n.Pr, err = resolve(tp.P); err != nil {
		return nil, err
	}
	if n.O, err = resolve(tp.O); err != nil {
		return nil, err
	}
	bound := 0
	for _, o := range []dict.OID{n.S, n.Pr, n.O} {
		if o != dict.Nil {
			bound++
		}
	}
	n.est /= float64(uint(1) << (4 * uint(bound)))
	n.cost = n.est * cost.ScanRow
	return n, nil
}

// starNode materializes the scan node for a star.
func (b *builder) starNode(st *star) Node {
	var node Node
	if b.opts.Mode == ModeRDFScan && len(st.tables) > 0 {
		node = &RDFScanNode{
			Star: execStar(st), Tables: st.tables,
			UseZones: b.opts.ZoneMaps && b.sv.Organized,
			est:      st.est, cost: b.starScanCost(st),
		}
	} else {
		node = &DefaultStarNode{Star: execStar(st), Idx: b.sv.Idx, est: st.est, cost: b.defaultStarCost(st)}
	}
	return b.eqSelects(node, st)
}

func (b *builder) eqSelects(node Node, st *star) Node {
	for _, pair := range st.eqPairs {
		node = &EqSelectNode{Input: node, A: pair[0], B: pair[1]}
	}
	return node
}

func execStar(st *star) exec.Star {
	return exec.Star{SubjVar: st.subjVar, Props: st.props}
}

// resolveStar finds covering tables and prunes pushdown usability.
func (b *builder) resolveStar(st *star) {
	if b.sv.Schema == nil || b.sv.Cat == nil || !b.sv.Organized {
		return
	}
	preds := make([]dict.OID, len(st.props))
	for i := range st.props {
		preds[i] = st.props[i].Pred
	}
	for _, c := range b.sv.Schema.Covering(preds) {
		if t := b.sv.Cat.ByCS(c.ID); t != nil {
			// a split-off (multi-valued) property has no column; such
			// stars cannot use RDFscan on this table
			all := true
			for _, p := range preds {
				if t.Col(p) == nil {
					all = false
					break
				}
			}
			if all {
				st.tables = append(st.tables, t)
			}
		}
	}
}

// estimate is the CS-informed cardinality model: base cardinality from
// covering CS supports (or the property run length), multiplied by
// constraint selectivities — the structural-correlation awareness the
// paper argues triple stores lack.
func (b *builder) estimate(st *star) float64 {
	return b.starBase(st) * starSel(b.sv.Idx, st)
}

// starBase is the unconstrained star cardinality: member count of the
// covering tables, or the smallest property run before organization.
func (b *builder) starBase(st *star) float64 {
	if len(st.tables) > 0 {
		var base float64
		for _, t := range st.tables {
			base += float64(t.Count)
		}
		return base
	}
	pso := b.sv.Idx.Get(triples.PSO)
	minRun := -1
	for i := range st.props {
		lo, hi := pso.Range1(st.props[i].Pred)
		if minRun < 0 || hi-lo < minRun {
			minRun = hi - lo
		}
	}
	if minRun < 0 {
		minRun = 0
	}
	return float64(minRun)
}

// starSel is the combined selectivity of the star's constant and range
// constraints.
func starSel(idx *triples.IndexSet, st *star) float64 {
	sel := 1.0
	for i := range st.props {
		p := &st.props[i]
		switch {
		case p.ObjConst != dict.Nil:
			sel *= selConst(idx, p)
		case p.HasRange:
			sel *= 0.3
		}
	}
	return sel
}

func selConst(idx *triples.IndexSet, p *exec.StarProp) float64 {
	pos := idx.Get(triples.POS)
	runLo, runHi := pos.Range1(p.Pred)
	if runHi == runLo {
		return 0
	}
	lo, hi := pos.Range2(p.Pred, p.ObjConst)
	return float64(hi-lo+1) / float64(runHi-runLo+1)
}
