package plan

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/relational"
)

// Profile is the plan-time workload fingerprint of one query: which
// predicates and CS tables it touches, which columns it constrains, and
// how many stars it joins. Computed once per built plan (cache hits
// reuse it), it is the raw material of the store's workload profile —
// the sensor the future self-organization policy reads.
type Profile struct {
	// Predicates are the distinct predicate IRIs the query touches,
	// sorted.
	Predicates []string
	// Tables are the distinct CS table names the plan scans, sorted
	// (empty before Organize).
	Tables []string
	// FilterColumns are the predicate IRIs carrying a range or
	// constant-equality constraint — the columns a sort-key or
	// clustering policy would care about.
	FilterColumns []string
	// Stars counts the star patterns (scan or star-fetch nodes) in the
	// plan.
	Stars int
}

// finish numbers the plan's nodes for runtime stats and computes its
// workload profile. Called once at the end of Build, on the final tree
// only — candidate trees the enumerator discarded keep sid 0, which
// routes their (never-executed) wrappers to throwaway slots.
func (p *Plan) finish(d *dict.Dictionary) {
	f := &finisher{
		d:       d,
		preds:   map[string]bool{},
		tables:  map[string]bool{},
		filters: map[string]bool{},
	}
	f.head(p.Head)
	p.nStats = f.n
	p.Prof = Profile{
		Predicates:    sortedKeys(f.preds),
		Tables:        sortedKeys(f.tables),
		FilterColumns: sortedKeys(f.filters),
		Stars:         f.stars,
	}
}

// NumStatNodes is the node count of the stats tree an analyzed
// execution should allocate (ids are 1..NumStatNodes).
func (p *Plan) NumStatNodes() int { return p.nStats }

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type finisher struct {
	d       *dict.Dictionary
	n       int
	preds   map[string]bool
	tables  map[string]bool
	filters map[string]bool
	stars   int
}

func (f *finisher) next() int {
	f.n++
	return f.n
}

func (f *finisher) head(h HeadNode) {
	switch x := h.(type) {
	case *ProjectNode:
		x.sid = f.next()
		f.node(x.Input)
	case *AggregateNode:
		x.sid = f.next()
		f.node(x.Input)
	case *DistinctNode:
		x.sid = f.next()
		f.head(x.Input)
	case *SortNode:
		x.sid = f.next()
		f.head(x.Input)
	}
}

func (f *finisher) node(n Node) {
	switch x := n.(type) {
	case *EmptyNode:
		x.sid = f.next()
	case *DefaultStarNode:
		x.sid = f.next()
		f.star(&x.Star, nil)
	case *RDFScanNode:
		x.sid = f.next()
		f.star(&x.Star, x.Tables)
	case *RDFJoinNode:
		x.sid = f.next()
		f.star(&x.Star, []*relational.Table{x.Table})
		f.node(x.Input)
	case *MergeJoinNode:
		x.sid = f.next()
		f.star(&x.Star, []*relational.Table{x.Table})
		f.node(x.Left)
	case *HashJoinNode:
		x.sid = f.next()
		f.node(x.L)
		f.node(x.R)
	case *FilterNode:
		x.sid = f.next()
		f.node(x.Input)
	case *EqSelectNode:
		x.sid = f.next()
		f.node(x.Input)
	case *GenericScanNode:
		x.sid = f.next()
		if x.Pr != dict.Nil {
			f.preds[f.iri(x.Pr)] = true
		}
	}
}

func (f *finisher) star(st *exec.Star, tables []*relational.Table) {
	f.stars++
	for i := range st.Props {
		p := &st.Props[i]
		iri := f.iri(p.Pred)
		f.preds[iri] = true
		if p.HasRange || p.ObjConst != dict.Nil {
			f.filters[iri] = true
		}
	}
	for _, t := range tables {
		if t != nil {
			f.tables[t.Name] = true
		}
	}
}

func (f *finisher) iri(o dict.OID) string {
	if t, ok := f.d.Term(o); ok {
		return t.Value
	}
	return fmt.Sprintf("oid:%d", o)
}

// Analyze carries the per-operator runtime stats of one finished
// execution through the Explain walk: a nil *Analyze renders the plain
// estimate-only tree, a non-nil one appends act_rows= and time= to
// every operator line and tracks the worst est/act mis-estimation.
type Analyze struct {
	Stats *exec.QueryStats

	worst     float64
	worstDesc string
}

// annotate appends the runtime annotation for one node. Nodes with a
// cardinality estimate (hasEst) also feed the mis-estimation summary,
// identified by desc.
func (a *Analyze) annotate(b *strings.Builder, sid int, est float64, hasEst bool, desc string) {
	if a == nil {
		return
	}
	var rows int64
	var t time.Duration
	if st := a.Stats.Node(sid); st != nil {
		rows, t = st.RowsOut(), st.Time()
	}
	fmt.Fprintf(b, " act_rows=%d time=%s", rows, fmtDuration(t))
	if hasEst {
		if f := misFactor(est, float64(rows)); f > a.worst {
			a.worst, a.worstDesc = f, desc
		}
	}
}

// misFactor is the symmetric est/act ratio, clamped below at one row so
// empty results do not divide by zero.
func misFactor(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

func fmtDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// ExplainAnalyze renders the plan tree with actual row counts and
// per-node time beside the estimates, the executed totals, and the
// worst est/act mis-estimation — the tool that tells us where the cost
// model lies. stats is the QueryStats the execution ran with; rows and
// dur are the result size and wall time the caller observed.
func (p *Plan) ExplainAnalyze(stats *exec.QueryStats, rows int64, dur time.Duration) string {
	an := &Analyze{Stats: stats}
	var b strings.Builder
	fmt.Fprintf(&b, "Plan [%s", p.Opts.Mode)
	if p.Opts.ZoneMaps {
		b.WriteString(" +zonemaps")
	}
	fmt.Fprintf(&b, "] joins=%d (analyzed)\n", p.Root.Joins())
	p.Head.Explain(&b, 0, an)
	fmt.Fprintf(&b, "actual: rows=%d time=%s\n", rows, fmtDuration(dur))
	if an.worst > 0 {
		fmt.Fprintf(&b, "misestimate: worst est/act %.1fx at %s\n", an.worst, an.worstDesc)
	}
	return b.String()
}
