package plan

import (
	"fmt"
	"strings"

	"srdf/internal/exec"
	"srdf/internal/sparql"
)

// HeadNode is a value-level plan operator: the query head — projection,
// aggregation, DISTINCT, ORDER BY — planned as explicit nodes over the
// OID-level operator tree instead of post-hoc result processing. Head
// nodes build the streaming value pipeline (ValOp) the row iterator
// pulls from.
type HeadNode interface {
	// ValOp builds the streaming value operator subtree for this node,
	// wrapped in its runtime-stats accounting.
	ValOp() exec.ValOperator
	// Vars lists the output column names.
	Vars() []string
	// Explain writes one line per operator, indented. A non-nil an
	// appends the runtime annotations of a finished execution.
	Explain(b *strings.Builder, indent int, an *Analyze)
}

// ProjectNode evaluates the select expressions over the BGP pipeline,
// decoding OID batches into value batches. Bound > 0 caps the rows ever
// decoded (set when a bare projection sits under a LIMIT).
type ProjectNode struct {
	Input Node
	Items []sparql.SelectItem
	Bound int
	sid   int
}

func (n *ProjectNode) ValOp() exec.ValOperator {
	p := exec.NewProjectOp(n.Input.Op(), n.Items)
	if n.Bound > 0 {
		p.SetRowBound(n.Bound)
	}
	return exec.NewStatsValOp(n.sid, p)
}

func (n *ProjectNode) Vars() []string {
	out := make([]string, len(n.Items))
	for i := range n.Items {
		out[i] = n.Items[i].As
	}
	return out
}

func (n *ProjectNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	fmt.Fprintf(b, "Project %s", itemsDesc(n.Items))
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

// AggregateNode is the vectorized hash GROUP BY/aggregate: group states
// fold batch by batch, with parallel partial aggregation merged at the
// head when the store runs morsel-parallel.
type AggregateNode struct {
	Input   Node
	Items   []sparql.SelectItem
	GroupBy []string
	sid     int
}

func (n *AggregateNode) ValOp() exec.ValOperator {
	return exec.NewStatsValOp(n.sid, exec.NewAggregateOp(n.Input.Op(), n.Items, n.GroupBy))
}

func (n *AggregateNode) Vars() []string {
	out := make([]string, len(n.Items))
	for i := range n.Items {
		out[i] = n.Items[i].As
	}
	return out
}

func (n *AggregateNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	groups := make([]string, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groups[i] = "?" + g
	}
	fmt.Fprintf(b, "HashAggregate by [%s] -> %s", strings.Join(groups, " "), itemsDesc(n.Items))
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

// DistinctNode filters duplicate result rows with a streaming hash set.
type DistinctNode struct {
	Input HeadNode
	sid   int
}

func (n *DistinctNode) ValOp() exec.ValOperator {
	return exec.NewStatsValOp(n.sid, exec.NewDistinctOp(n.Input.ValOp()))
}

func (n *DistinctNode) Vars() []string { return n.Input.Vars() }

func (n *DistinctNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	b.WriteString("Distinct")
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

// SortNode orders result rows; with Keep >= 0 (ORDER BY + LIMIT) it runs
// as a bounded top-K holding at most Keep rows of sort state.
type SortNode struct {
	Input HeadNode
	Keys  []sparql.OrderKey
	// Keep is the top-K bound (LIMIT+OFFSET), -1 for a full sort.
	Keep int
	sid  int
}

func (n *SortNode) ValOp() exec.ValOperator {
	return exec.NewStatsValOp(n.sid, exec.NewSortOp(n.Input.ValOp(), n.Keys, n.Keep))
}

func (n *SortNode) Vars() []string { return n.Input.Vars() }

func (n *SortNode) Explain(b *strings.Builder, indent int, an *Analyze) {
	pad(b, indent)
	keys := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		keys[i] = sparql.ExprString(k.Expr)
		if k.Desc {
			keys[i] = "DESC(" + keys[i] + ")"
		}
	}
	if n.Keep >= 0 {
		fmt.Fprintf(b, "TopKSort k=%d by [%s]", n.Keep, strings.Join(keys, " "))
	} else {
		fmt.Fprintf(b, "Sort by [%s]", strings.Join(keys, " "))
	}
	an.annotate(b, n.sid, 0, false, "")
	b.WriteByte('\n')
	n.Input.Explain(b, indent+1, an)
}

func itemsDesc(items []sparql.SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		if v, ok := it.Expr.(*sparql.ExVar); ok && v.Name == it.As {
			parts[i] = "?" + it.As
		} else {
			parts[i] = fmt.Sprintf("(%s AS ?%s)", sparql.ExprString(it.Expr), it.As)
		}
	}
	return strings.Join(parts, " ")
}

// buildHead plans the query head over the (already filter-wrapped) BGP
// root. The composition — which modifiers appear, their order, the
// top-K bound, ORDER BY validation — comes from exec.HeadShapeOf, the
// same single source exec.Stream builds its operators from; the nodes
// here only add Explain.
func buildHead(root Node, q *sparql.Query) (HeadNode, error) {
	hs, err := exec.HeadShapeOf(q, root.Vars())
	if err != nil {
		return nil, err
	}
	var h HeadNode
	if hs.Aggregate {
		h = &AggregateNode{Input: root, Items: hs.Items, GroupBy: hs.GroupBy}
	} else {
		p := &ProjectNode{Input: root, Items: hs.Items}
		if hs.Keep > 0 && !hs.Distinct && len(hs.OrderBy) == 0 {
			p.Bound = hs.Keep
		}
		h = p
	}
	if hs.Distinct {
		h = &DistinctNode{Input: h}
	}
	if len(hs.OrderBy) > 0 {
		h = &SortNode{Input: h, Keys: hs.OrderBy, Keep: hs.Keep}
	}
	return h, nil
}
