package plan

import (
	"strings"
	"testing"

	"srdf/internal/cluster"
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/nt"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

type fixture struct {
	d   *dict.Dictionary
	sv  *StoreView
	ctx *exec.Ctx
}

func newFixture(t *testing.T, src string, minSupport int) *fixture {
	t.Helper()
	ts, err := nt.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := dict.New()
	tb := triples.NewTable(len(ts))
	for _, tr := range ts {
		tb.Append(d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O))
	}
	opts := cs.DefaultOptions()
	opts.MinSupport = minSupport
	schema := cs.Discover(tb, d, opts)
	inf, err := cluster.Reorganize(tb, d, schema, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pool := colstore.NewPool(0)
	cat := relational.BuildCatalog(tb, d, schema, inf, pool)
	idx := triples.BuildAll(tb)
	ctx := &exec.Ctx{Dict: d, Idx: idx, Cat: cat, Pool: pool}
	ctx.TrackProjections(idx, cat.IrregularIdx)
	return &fixture{
		d: d,
		sv: &StoreView{
			Dict: d, Idx: idx, Schema: schema, Cat: cat,
			Organized: true, LiteralsOrdered: true,
		},
		ctx: ctx,
	}
}

const ordersSrc = `
@prefix e: <http://o/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
e:o1 e:odate "1996-01-05"^^xsd:date ; e:ototal 10 .
e:o2 e:odate "1996-02-05"^^xsd:date ; e:ototal 20 .
e:o3 e:odate "1996-03-05"^^xsd:date ; e:ototal 30 .
e:o4 e:odate "1996-04-05"^^xsd:date ; e:ototal 40 .
e:l1 e:ldate "1996-01-10"^^xsd:date ; e:lqty 1 ; e:lord e:o1 .
e:l2 e:ldate "1996-02-10"^^xsd:date ; e:lqty 2 ; e:lord e:o2 .
e:l3 e:ldate "1996-03-10"^^xsd:date ; e:lqty 3 ; e:lord e:o3 .
e:l4 e:ldate "1996-04-10"^^xsd:date ; e:lqty 4 ; e:lord e:o4 .
e:l5 e:ldate "1996-04-12"^^xsd:date ; e:lqty 5 ; e:lord e:o4 .
`

func buildPlan(t *testing.T, f *fixture, src string, opts Options) *Plan {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, f.sv, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const starQ = `PREFIX e: <http://o/>
SELECT ?s ?d ?t WHERE { ?s e:odate ?d . ?s e:ototal ?t . }`

func TestFig4aPlanShapes(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	pDef := buildPlan(t, f, starQ, Options{Mode: ModeDefault})
	if pDef.Root.Joins() != 1 {
		t.Errorf("default 2-prop star joins = %d, want 1\n%s", pDef.Root.Joins(), pDef.Explain())
	}
	if !strings.Contains(pDef.Explain(), "StarSelfJoin") {
		t.Errorf("default explain:\n%s", pDef.Explain())
	}
	pRDF := buildPlan(t, f, starQ, Options{Mode: ModeRDFScan})
	if pRDF.Root.Joins() != 0 {
		t.Errorf("rdfscan star joins = %d, want 0\n%s", pRDF.Root.Joins(), pRDF.Explain())
	}
	if !strings.Contains(pRDF.Explain(), "RDFscan") {
		t.Errorf("rdfscan explain:\n%s", pRDF.Explain())
	}
}

const chainQ = `PREFIX e: <http://o/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?l ?od WHERE {
  ?l e:lqty ?q .
  ?l e:lord ?o .
  ?o e:odate ?od .
  FILTER (?q >= 3)
}`

func TestFig4bRDFJoinPlan(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	p := buildPlan(t, f, chainQ, Options{Mode: ModeRDFScan})
	exp := p.Explain()
	if !strings.Contains(exp, "RDFjoin") {
		t.Errorf("chain plan should use RDFjoin:\n%s", exp)
	}
	res, err := p.Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // l3, l4, l5
		t.Fatalf("rows = %d, want 3:\n%s", res.Len(), res)
	}
}

func TestResultsAgreeAcrossModes(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	for _, q := range []string{starQ, chainQ} {
		var want string
		for i, opt := range []Options{
			{Mode: ModeDefault},
			{Mode: ModeRDFScan},
			{Mode: ModeRDFScan, ZoneMaps: true},
		} {
			res, err := buildPlan(t, f, q, opt).Execute(f.ctx)
			if err != nil {
				t.Fatal(err)
			}
			got := sortedResult(res)
			if i == 0 {
				want = got
			} else if got != want {
				t.Fatalf("config %d disagrees on %s:\n%s\nvs\n%s", i, q, got, want)
			}
		}
	}
}

func sortedResult(res *exec.Result) string {
	lines := strings.Split(strings.TrimSpace(res.String()), "\n")
	if len(lines) <= 1 {
		return ""
	}
	body := lines[1:]
	for i := 0; i < len(body); i++ {
		for j := i + 1; j < len(body); j++ {
			if body[j] < body[i] {
				body[i], body[j] = body[j], body[i]
			}
		}
	}
	return strings.Join(body, "\n")
}

func TestRangePushdownAppearsInPlan(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	q := `PREFIX e: <http://o/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s ?d WHERE { ?s e:odate ?d . ?s e:ototal ?t .
FILTER (?d >= "1996-02-01"^^xsd:date && ?d <= "1996-03-31"^^xsd:date) }`
	p := buildPlan(t, f, q, Options{Mode: ModeRDFScan, ZoneMaps: true})
	if !strings.Contains(p.Explain(), "in[") {
		t.Errorf("plan should show pushed range:\n%s", p.Explain())
	}
	res, err := p.Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // o2, o3
		t.Fatalf("rows = %d, want 2:\n%s", res.Len(), res)
	}
}

func TestCrossTableZonePushdown(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	// restriction on orders' odate (its sort key) must surface as a
	// range on the lineitems' FK column
	q := `PREFIX e: <http://o/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?l ?od WHERE {
  ?l e:lqty ?q . ?l e:lord ?o .
  ?o e:odate ?od . ?o e:ototal ?t .
  FILTER (?od >= "1996-03-01"^^xsd:date)
}`
	p := buildPlan(t, f, q, Options{Mode: ModeRDFScan, ZoneMaps: true})
	exp := p.Explain()
	// the lineitem star's lord column should carry a subject-OID range
	if !strings.Contains(exp, "?o in[") && !strings.Contains(exp, " in[") {
		t.Errorf("no FK range pushed:\n%s", exp)
	}
	res, err := p.Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // l3 -> o3, l4+l5 -> o4
		t.Fatalf("rows = %d, want 3:\n%s", res.Len(), res)
	}
	// and the same result without zone maps
	res2, err := buildPlan(t, f, q, Options{Mode: ModeRDFScan}).Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sortedResult(res) != sortedResult(res2) {
		t.Error("zone pushdown changed results")
	}
}

func TestImpossibleRangeShortCircuits(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	q := `PREFIX e: <http://o/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE { ?s e:odate ?d . FILTER (?d > "2050-01-01"^^xsd:date) }`
	res, err := buildPlan(t, f, q, Options{Mode: ModeRDFScan, ZoneMaps: true}).Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
}

func TestUnknownConstantGivesEmptyPlan(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	q := `PREFIX e: <http://o/> SELECT ?s WHERE { ?s e:odate ?d . ?s e:nosuch ?x . }`
	p := buildPlan(t, f, q, Options{Mode: ModeRDFScan})
	if !strings.Contains(p.Explain(), "Empty") {
		t.Errorf("expected empty plan:\n%s", p.Explain())
	}
	res, err := p.Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("empty plan returned rows")
	}
}

func TestVariablePredicateGoesGeneric(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	q := `PREFIX e: <http://o/> SELECT ?p ?o WHERE { e:o1 ?p ?o . }`
	p := buildPlan(t, f, q, Options{Mode: ModeRDFScan})
	if !strings.Contains(p.Explain(), "TripleScan") {
		t.Errorf("expected TripleScan:\n%s", p.Explain())
	}
	res, err := p.Execute(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // odate, ototal
		t.Fatalf("rows = %d, want 2:\n%s", res.Len(), res)
	}
}

func TestDuplicateVarInStar(t *testing.T) {
	src := ordersSrc + "e:l6 e:ldate \"1996-05-01\"^^xsd:date ; e:lqty 6 ; e:lord e:l6 .\n"
	f := newFixture(t, src, 3)
	// ?s linked to itself: needs the EqSelect machinery
	q := `PREFIX e: <http://o/> SELECT ?s WHERE { ?s e:lord ?s . }`
	for _, opt := range []Options{{Mode: ModeDefault}, {Mode: ModeRDFScan}} {
		res, err := buildPlan(t, f, q, opt).Execute(f.ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("mode %v: self-loop rows = %d, want 1:\n%s", opt.Mode, res.Len(), res)
		}
	}
}

func TestUnorganizedStoreFallsBack(t *testing.T) {
	// A view without schema/catalog must plan everything as Default.
	ts, err := nt.ParseTurtle(strings.NewReader(ordersSrc))
	if err != nil {
		t.Fatal(err)
	}
	d := dict.New()
	tb := triples.NewTable(len(ts))
	for _, tr := range ts {
		tb.Append(d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O))
	}
	idx := triples.BuildAll(tb)
	sv := &StoreView{Dict: d, Idx: idx}
	ctx := &exec.Ctx{Dict: d, Idx: idx, Pool: colstore.NewPool(0)}
	q, _ := sparql.Parse(starQ)
	p, err := Build(q, sv, Options{Mode: ModeRDFScan, ZoneMaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "StarSelfJoin") {
		t.Errorf("unorganized store should use Default operators:\n%s", p.Explain())
	}
	res, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("rows = %d, want 4", res.Len())
	}
}

func TestExecAdapterMatchesExecute(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	for _, opt := range []Options{{Mode: ModeDefault}, {Mode: ModeRDFScan, ZoneMaps: true}} {
		p := buildPlan(t, f, starQ, opt)
		rel := Exec(p.Root, f.ctx) // operator-at-a-time adapter
		res, err := p.Execute(f.ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != res.Len() || rel.Len() != 4 {
			t.Fatalf("mode %v: adapter rows = %d, streamed rows = %d, want 4", opt.Mode, rel.Len(), res.Len())
		}
	}
}

func TestEstimatesOrderJoins(t *testing.T) {
	f := newFixture(t, ordersSrc, 3)
	// the filtered star should be estimated cheaper and anchor the tree
	p := buildPlan(t, f, chainQ, Options{Mode: ModeRDFScan, ZoneMaps: true})
	if p.Root.EstRows() < 0 {
		t.Error("negative estimate")
	}
	_ = p.Explain() // must not panic
}
