// Package cost is the planner's calibrated cost model. All costs are in
// abstract row-work units: one unit is roughly "touch one value in one
// sealed compressed segment". The constants were calibrated against the
// RDF-H benchmark harness so that relative costs — hash build vs merge
// stream, positional fetch vs scan — order plans the same way wall-clock
// time does; absolute values are meaningless.
package cost

import "math"

const (
	// ScanRow is the cost of scanning one value of one column out of a
	// sealed segment (decode amortized across the block, zone pruning
	// already applied by the caller via a selectivity factor).
	ScanRow = 1.0
	// DeltaRow is the cost of scanning one value out of the unsealed
	// delta tail: row-at-a-time, uncompressed, tombstone-checked.
	DeltaRow = 4.0
	// HashBuild is the per-row cost of materializing a build side into
	// the string-keyed hash table.
	HashBuild = 5.0
	// HashProbe is the per-row cost of probing it.
	HashProbe = 3.0
	// SortKey is the per-key, per-log2(n) cost of sorting a drained
	// outer side for a merge join.
	SortKey = 0.15
	// MergeRow is the per-row cost of advancing a merge join cursor.
	MergeRow = 0.8
	// LookupRow is the per-row, per-property cost of a positional
	// RDFjoin fetch (or its full-index fallback, amortized).
	LookupRow = 6.0
	// OutRow is the per-row cost of emitting a join result.
	OutRow = 0.2
)

// JoinCard is the textbook equi-join cardinality estimate: the product
// of the input cardinalities divided by the larger distinct count of the
// join key on either side.
func JoinCard(l, r, ld, rd float64) float64 {
	return l * r / math.Max(math.Max(ld, rd), 1)
}

// Sort is the comparison-sort cost of n keys (zero-safe).
func Sort(n float64) float64 {
	if n < 2 {
		return SortKey * n
	}
	return SortKey * n * math.Log2(n)
}

// Scan is the cost of a star scan: sealedRows surviving zone pruning and
// deltaRows from the unsealed tail, each touching cols columns.
func Scan(sealedRows, deltaRows float64, cols int) float64 {
	c := float64(cols)
	if c < 1 {
		c = 1
	}
	return sealedRows*ScanRow*c + deltaRows*DeltaRow*c
}

// HashJoin is the cost of building on build rows and probing with probe
// rows, emitting out rows. Input costs are the caller's to add.
func HashJoin(build, probe, out float64) float64 {
	return build*HashBuild + probe*HashProbe + out*OutRow
}

// MergeJoin is the cost of sorting outer keys (unless already sorted),
// scanning the inner table window (innerScan, in Scan units) and merging
// both streams. Input costs are the caller's to add.
func MergeJoin(outer, innerRows, innerScan, out float64, sorted bool) float64 {
	c := innerScan + (outer+innerRows)*MergeRow + out*OutRow
	if !sorted {
		c += Sort(outer)
	}
	return c
}

// RDFJoin is the cost of positionally fetching props properties for each
// of outer candidate subjects.
func RDFJoin(outer float64, props int, out float64) float64 {
	p := float64(props)
	if p < 1 {
		p = 1
	}
	return outer*LookupRow*p + out*OutRow
}
