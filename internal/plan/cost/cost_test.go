package cost

import "testing"

func TestJoinCard(t *testing.T) {
	// Classic distinct-value model: FK join of 6000 children against
	// 1500 parents on a key with 1500 distincts keeps child cardinality.
	if got := JoinCard(6000, 1500, 1500, 1500); got != 6000 {
		t.Fatalf("FK join card = %v, want 6000", got)
	}
	// Degenerate zero distincts must not divide by zero.
	if got := JoinCard(10, 10, 0, 0); got != 100 {
		t.Fatalf("cross-ish card = %v, want 100", got)
	}
}

func TestSortMonotonic(t *testing.T) {
	if Sort(0) != 0 {
		t.Fatal("sorting nothing must be free")
	}
	prev := 0.0
	for _, n := range []float64{1, 2, 100, 10000} {
		c := Sort(n)
		if c <= prev {
			t.Fatalf("Sort(%v)=%v not increasing past %v", n, c, prev)
		}
		prev = c
	}
}

func TestMergeVsHashPreference(t *testing.T) {
	// A selective left against a big inner: merge pays the sort plus
	// the inner scan window, hash pays a full build or probe of the
	// inner. With the inner scan costed at its zone-pruned window,
	// merge must win.
	out := 2000.0
	merge := MergeJoin(2000, 40000, 1000, out, false)
	hash := HashJoin(2000, 40000, out)
	if merge >= hash {
		t.Fatalf("merge %v should beat hash %v on a windowed FK join", merge, hash)
	}
	// With the full inner scan charged and a tiny build side, hash wins.
	merge = MergeJoin(2000, 40000, 40000, out, false)
	hash = HashJoin(100, 2000, out)
	if hash >= merge {
		t.Fatalf("hash %v should beat merge %v with a tiny build", hash, merge)
	}
}

func TestScanDeltaPenalty(t *testing.T) {
	if Scan(1000, 0, 2) >= Scan(1000, 500, 2) {
		t.Fatal("delta rows must cost extra")
	}
	if Scan(1000, 0, 1) >= Scan(1000, 0, 3) {
		t.Fatal("wider scans must cost more")
	}
}
