// Delta layer: the mutable side of the catalog. Sealed segments are
// immutable, so live updates land next to them — per-table delta rows
// (an unsealed columnar tail), a row-keyed delete bitmap over the sealed
// region, and the irregular store as the spill target for triples that
// fit no table ("PSO leftover"). Readers take the whole catalog as a
// snapshot: every mutation here happens on a CloneForWrite copy, so a
// query that started on the previous catalog keeps a consistent view
// while writers append.
package relational

import (
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/triples"
)

// Bitmap is a fixed-universe bitset used as the delete (tombstone)
// bitmap over a table's sealed rows. The zero value / nil is an empty
// bitmap.
type Bitmap struct {
	words []uint64
	n     int
}

// Set marks row i.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	if b.words[w]&(1<<(uint(i)&63)) == 0 {
		b.words[w] |= 1 << (uint(i) & 63)
		b.n++
	}
}

// Get reports whether row i is marked; nil-safe.
func (b *Bitmap) Get(i int) bool {
	if b == nil {
		return false
	}
	w := i >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of marked rows; nil-safe.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	return b.n
}

// AnyInRange reports whether any row in [lo,hi) is marked; nil-safe.
func (b *Bitmap) AnyInRange(lo, hi int) bool {
	if b == nil || b.n == 0 || hi <= lo {
		return false
	}
	for i := lo; i < hi; {
		w := i >> 6
		if w >= len(b.words) {
			return false
		}
		if b.words[w] == 0 {
			i = (w + 1) << 6
			continue
		}
		if b.words[w]&(1<<(uint(i)&63)) != 0 {
			return true
		}
		i++
	}
	return false
}

// Clone deep-copies the bitmap; nil-safe.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return nil
	}
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// DeltaRows is a table's unsealed columnar tail: one row per
// delta-resident subject, with Cols aligned to the table's Cols.
// Delta rows never share subjects with live sealed rows — a subject
// moving into the delta tombstones its sealed row first.
type DeltaRows struct {
	Subj  []dict.OID
	Cols  [][]dict.OID
	rowOf map[dict.OID]int
}

// Len returns the number of delta rows; nil-safe.
func (d *DeltaRows) Len() int {
	if d == nil {
		return 0
	}
	return len(d.Subj)
}

// Clone deep-copies the delta; nil-safe.
func (d *DeltaRows) Clone() *DeltaRows {
	if d == nil {
		return nil
	}
	nd := &DeltaRows{
		Subj:  append([]dict.OID(nil), d.Subj...),
		Cols:  make([][]dict.OID, len(d.Cols)),
		rowOf: make(map[dict.OID]int, len(d.rowOf)),
	}
	for i := range d.Cols {
		nd.Cols[i] = append([]dict.OID(nil), d.Cols[i]...)
	}
	for s, r := range d.rowOf {
		nd.rowOf[s] = r
	}
	return nd
}

// SealedRows returns the number of physical rows in the sealed columns:
// the clustered dense region plus compacted-in extra rows.
func (t *Table) SealedRows() int { return t.Count + len(t.Extra) }

// NumRows returns sealed plus delta rows.
func (t *Table) NumRows() int { return t.SealedRows() + t.Delta.Len() }

// DeltaLen returns the number of unsealed delta rows.
func (t *Table) DeltaLen() int { return t.Delta.Len() }

// LiveCount returns the number of rows that are neither tombstoned nor
// permanent holes left by Compact.
func (t *Table) LiveCount() int { return t.NumRows() - t.Del.Count() - t.holes.Count() }

// HoleCount returns the number of permanent all-NULL rows.
func (t *Table) HoleCount() int { return t.holes.Count() }

// union merges two bitmaps into a fresh one; nil-safe.
func union(a, b *Bitmap) *Bitmap {
	if a.Count() == 0 {
		return b.Clone()
	}
	out := a.Clone()
	if b != nil {
		for w, bits := range b.words {
			for w >= len(out.words) {
				out.words = append(out.words, 0)
			}
			added := bits &^ out.words[w]
			out.words[w] |= bits
			for ; added != 0; added &= added - 1 {
				out.n++
			}
		}
	}
	return out
}

// DenseLiveRow returns s's clustered dense row if it is still live —
// neither tombstoned nor a permanent hole — else -1. Unlike RowOf it
// ignores delta and extra residences: it answers "does this table's
// build-time state (cells, link-table entries) still speak for s?",
// which goes false the moment s is vacated into the delta layer.
func (t *Table) DenseLiveRow(s dict.OID) int {
	p := s.Payload()
	if !s.IsResource() || p < t.Base || p >= t.Base+uint64(t.Count) {
		return -1
	}
	r := int(p - t.Base)
	if t.Del.Get(r) || t.holes.Get(r) {
		return -1
	}
	return r
}

// ColIndex returns the index of the column for pred in Cols, or -1.
func (t *Table) ColIndex(pred dict.OID) int {
	for i, c := range t.Cols {
		if c.Prop.Pred == pred {
			return i
		}
	}
	return -1
}

// Value returns the cell of column ci at physical row (sealed rows read
// through the compressed segments and account a page touch; delta rows
// are memory-resident and free).
func (t *Table) Value(ci, row int) dict.OID {
	if sr := t.SealedRows(); row >= sr {
		return t.Delta.Cols[ci][row-sr]
	}
	return t.Cols[ci].Data.Get(row)
}

// appendDeltaRow adds one delta row; vals must be aligned to Cols.
func (t *Table) appendDeltaRow(s dict.OID, vals []dict.OID) int {
	if t.Delta == nil {
		t.Delta = &DeltaRows{Cols: make([][]dict.OID, len(t.Cols)), rowOf: make(map[dict.OID]int)}
	}
	i := len(t.Delta.Subj)
	t.Delta.Subj = append(t.Delta.Subj, s)
	for ci := range t.Cols {
		t.Delta.Cols[ci] = append(t.Delta.Cols[ci], vals[ci])
	}
	t.Delta.rowOf[s] = i
	return i
}

// ensureDel returns the table's tombstone bitmap, allocating on first use.
func (t *Table) ensureDel() *Bitmap {
	if t.Del == nil {
		t.Del = &Bitmap{}
	}
	return t.Del
}

// routableCol returns the column index a delta triple with predicate p
// should fill, or -1 when the value must spill to the irregular store
// (split-off property, noise property, or a property only present as a
// folded copy of an absorbed child's column).
func (t *Table) routableCol(p dict.OID) int {
	ps := t.CS.Prop(p)
	if ps == nil || ps.SplitOff {
		return -1
	}
	// CS-owned columns precede folded copies in Cols, so the first match
	// is the right target even if a copied-up child column shares the
	// predicate.
	return t.ColIndex(p)
}

// HasDeltas reports whether any table carries delta rows or tombstones.
func (cat *Catalog) HasDeltas() bool {
	for _, t := range cat.Tables {
		if t.DeltaLen() > 0 || t.Del.Count() > 0 {
			return true
		}
	}
	return false
}

// DeltaRowCount sums delta rows across tables.
func (cat *Catalog) DeltaRowCount() int {
	n := 0
	for _, t := range cat.Tables {
		n += t.DeltaLen()
	}
	return n
}

// TombstoneCount sums tombstoned sealed rows across tables.
func (cat *Catalog) TombstoneCount() int {
	n := 0
	for _, t := range cat.Tables {
		n += t.Del.Count()
	}
	return n
}

// CloneForWrite returns a catalog copy that shares all immutable state
// (sealed columns, link tables) but owns the mutable delta layer, so
// mutating the clone never disturbs readers holding the original as a
// snapshot. Col structs are shared until Compact replaces them.
func (cat *Catalog) CloneForWrite() *Catalog {
	nc := &Catalog{
		Irregular:    cat.Irregular,
		IrregularIdx: cat.IrregularIdx,
		Tables:       make([]*Table, len(cat.Tables)),
		byName:       make(map[string]*Table, len(cat.byName)),
		byCS:         make(map[int]*Table, len(cat.byCS)),
		deltaOf:      make(map[dict.OID]*Table, len(cat.deltaOf)),
		extraOf:      make(map[dict.OID]*Table, len(cat.extraOf)),
	}
	old2new := make(map[*Table]*Table, len(cat.Tables))
	for i, t := range cat.Tables {
		ct := *t
		ct.Cols = append([]*Col(nil), t.Cols...)
		ct.Del = t.Del.Clone()
		ct.Delta = t.Delta.Clone()
		if t.Extra != nil {
			ct.Extra = append([]dict.OID(nil), t.Extra...)
			ct.extraRow = make(map[dict.OID]int, len(t.extraRow))
			for s, r := range t.extraRow {
				ct.extraRow[s] = r
			}
		}
		nc.Tables[i] = &ct
		nc.byName[ct.Name] = &ct
		nc.byCS[ct.CS.ID] = &ct
		old2new[t] = &ct
	}
	for s, t := range cat.deltaOf {
		nc.deltaOf[s] = old2new[t]
	}
	for s, t := range cat.extraOf {
		nc.extraOf[s] = old2new[t]
	}
	// Link tables share their (immutable) Subj/Val arrays, but the Parent
	// pointer must follow the cloned table: liveness of a link entry is
	// judged through the parent's tombstones, and the stale parent would
	// keep vacated subjects' entries visible.
	nc.Links = make([]*LinkTable, len(cat.Links))
	for i, lt := range cat.Links {
		nl := *lt
		if ct := old2new[lt.Parent]; ct != nil {
			nl.Parent = ct
		}
		nc.Links[i] = &nl
	}
	return nc
}

// ReassignStats summarizes one incremental re-organization pass.
type ReassignStats struct {
	// Matched subjects got a delta row in an existing CS table.
	Matched int
	// Spilled subjects fit no table and went entirely irregular.
	Spilled int
	// Dropped subjects no longer have any triples.
	Dropped int
}

// ReassignSubjects is the incremental self-organization step: every
// touched subject is vacated from its current residence (sealed row
// tombstoned, delta row removed, irregular triples dropped) and its
// current triples — read from the fresh SPO projection — are re-routed:
// matched subjects (cs.Schema.MatchDelta) get a delta row in an existing
// table with overflow and noise values spilling irregular; unmatched
// subjects spill entirely to the irregular store. Call on a
// CloneForWrite catalog only; subjects should be sorted for determinism.
// The schema is read, never written: published snapshots share it, and
// the catalog's own delta maps are the live subject→table truth
// (Schema.SubjectCS stays as of the last Organize).
func (cat *Catalog) ReassignSubjects(subjects []dict.OID, spo *triples.Projection, schema *cs.Schema) ReassignStats {
	var st ReassignStats
	if cat.deltaOf == nil {
		cat.deltaOf = make(map[dict.OID]*Table)
	}
	if cat.extraOf == nil {
		cat.extraOf = make(map[dict.OID]*Table)
	}
	touched := make(map[dict.OID]bool, len(subjects))
	for _, s := range subjects {
		touched[s] = true
	}

	// Vacate old residences.
	removedDelta := make(map[*Table]bool)
	for _, s := range subjects {
		if t := cat.deltaOf[s]; t != nil {
			removedDelta[t] = true
			delete(cat.deltaOf, s)
		}
		if t := cat.extraOf[s]; t != nil {
			t.ensureDel().Set(t.Count + t.extraRow[s])
			delete(t.extraRow, s)
			delete(cat.extraOf, s)
		}
		if t := cat.denseTableOf(s); t != nil {
			row := int(s.Payload() - t.Base)
			// already-vacated rows (tombstoned earlier, or a permanent
			// hole from a past Compact) are not tombstoned again
			if !t.Del.Get(row) && !t.holes.Get(row) {
				t.ensureDel().Set(row)
			}
		}
	}
	for t := range removedDelta {
		t.removeDeltaRows(touched)
	}

	// Drop the touched subjects' irregular triples; re-routing appends
	// their survivors below.
	irr := triples.NewTable(cat.Irregular.Len())
	for i := 0; i < cat.Irregular.Len(); i++ {
		if tr := cat.Irregular.At(i); !touched[tr.S] {
			irr.AppendTriple(tr)
		}
	}

	// Re-route in caller order (sorted subjects → deterministic layout).
	var preds []dict.OID
	var row []dict.OID
	for _, s := range subjects {
		lo, hi := spo.Range1(s)
		if hi == lo {
			st.Dropped++
			continue
		}
		preds = preds[:0]
		spo.Distinct2(lo, hi, func(p dict.OID, l, h int) {
			preds = append(preds, p)
		})
		var t *Table
		if id := schema.MatchDelta(preds); id >= 0 {
			t = cat.byCS[id]
		}
		if t == nil {
			st.Spilled++
			spo.Distinct2(lo, hi, func(p dict.OID, l, h int) {
				appendDistinct(irr, s, p, spo.C[l:h])
			})
			continue
		}
		st.Matched++
		if cap(row) < len(t.Cols) {
			row = make([]dict.OID, len(t.Cols))
		}
		row = row[:len(t.Cols)]
		for i := range row {
			row[i] = dict.Nil
		}
		spo.Distinct2(lo, hi, func(p dict.OID, l, h int) {
			vals := spo.C[l:h]
			if ci := t.routableCol(p); ci >= 0 {
				row[ci] = vals[0] // first value in the column, like BuildCatalog
				appendDistinct(irr, s, p, vals[1:])
				return
			}
			appendDistinct(irr, s, p, vals)
		})
		t.appendDeltaRow(s, row)
		cat.deltaOf[s] = t
	}
	cat.Irregular = irr
	cat.IrregularIdx = triples.BuildAll(irr)
	return st
}

// appendDistinct appends (s,p,v) for each v in vals, collapsing exact
// duplicates (vals are sorted — SPO order): RDF graphs are sets.
func appendDistinct(tb *triples.Table, s, p dict.OID, vals []dict.OID) {
	for i, v := range vals {
		if i > 0 && v == vals[i-1] {
			continue
		}
		tb.Append(s, p, v)
	}
}

// removeDeltaRows rebuilds the delta without the given subjects,
// preserving row order.
func (t *Table) removeDeltaRows(drop map[dict.OID]bool) {
	d := t.Delta
	if d == nil {
		return
	}
	nd := &DeltaRows{Cols: make([][]dict.OID, len(d.Cols)), rowOf: make(map[dict.OID]int)}
	for i, s := range d.Subj {
		if drop[s] {
			continue
		}
		nd.rowOf[s] = len(nd.Subj)
		nd.Subj = append(nd.Subj, s)
		for ci := range d.Cols {
			nd.Cols[ci] = append(nd.Cols[ci], d.Cols[ci][i])
		}
	}
	if len(nd.Subj) == 0 {
		t.Delta = nil
		return
	}
	t.Delta = nd
}

// denseTableOf is the clustered-range lookup only (no delta/extra maps,
// no tombstone check): the table whose dense subject-OID range contains s.
func (cat *Catalog) denseTableOf(s dict.OID) *Table {
	if !s.IsResource() {
		return nil
	}
	p := s.Payload()
	lo, hi := 0, len(cat.Tables)
	for lo < hi {
		mid := (lo + hi) / 2
		t := cat.Tables[mid]
		switch {
		case p < t.Base:
			hi = mid
		case p >= t.Base+uint64(t.Count):
			lo = mid + 1
		default:
			return t
		}
	}
	return nil
}

// CompactStats summarizes one Compact run.
type CompactStats struct {
	// Tables is the number of tables rebuilt.
	Tables int
	// MergedRows is the number of delta rows merged into sealed segments.
	MergedRows int
	// DroppedTombstones is the number of tombstones folded into
	// permanent all-NULL holes.
	DroppedTombstones int
}

// Compact merges every table's delta layer into freshly sealed segments:
// tombstoned sealed rows become permanent all-NULL holes (subject OIDs
// are stable, so rows cannot move), delta rows are appended as sealed
// "extra" rows addressed by an explicit subject map, and the per-table
// CS statistics are refreshed — the incremental, per-table equivalent of
// a full re-Organize. Call on a CloneForWrite catalog only.
func (cat *Catalog) Compact(pool *colstore.BufferPool) CompactStats {
	var st CompactStats
	if cat.deltaOf == nil {
		cat.deltaOf = make(map[dict.OID]*Table)
	}
	if cat.extraOf == nil {
		cat.extraOf = make(map[dict.OID]*Table)
	}
	for _, t := range cat.Tables {
		dl := t.DeltaLen()
		dead := t.Del.Count()
		if dl == 0 && dead == 0 {
			continue
		}
		st.Tables++
		st.MergedRows += dl
		st.DroppedTombstones += dead
		oldSealed := t.SealedRows()
		newSealed := oldSealed + dl
		nonNull := make(map[dict.OID]int, len(t.Cols))
		for ci, c := range t.Cols {
			vals := c.Data.Values()
			ncol := colstore.NewColumn(c.Data.Name, newSealed, pool)
			for r, v := range vals {
				if v != dict.Nil && !t.Del.Get(r) {
					ncol.Set(r, v)
				}
			}
			if dl > 0 {
				dcol := t.Delta.Cols[ci]
				for j, v := range dcol {
					if v != dict.Nil {
						ncol.Set(oldSealed+j, v)
					}
				}
			}
			ncol.Seal()
			c.Data.Release()
			// first-wins: CS-owned columns precede folded copies in Cols,
			// and a copied-up child column sharing the predicate must not
			// clobber the owned column's count in the refreshed stats
			if _, seen := nonNull[c.Prop.Pred]; !seen {
				nonNull[c.Prop.Pred] = newSealed - ncol.NullCount()
			}
			t.Cols[ci] = &Col{Prop: c.Prop, Data: ncol, FKTable: c.FKTable, Folded: c.Folded}
		}
		if dl > 0 {
			if t.extraRow == nil {
				t.extraRow = make(map[dict.OID]int, dl)
			}
			for j, s := range t.Delta.Subj {
				t.extraRow[s] = len(t.Extra) + j
				cat.extraOf[s] = t
				delete(cat.deltaOf, s)
			}
			t.Extra = append(t.Extra, t.Delta.Subj...)
		}
		if dead > 0 {
			// Tombstones become permanent holes: the rows are all-NULL in
			// the new segments, but RowOf must keep refusing to resolve a
			// moved subject to its vacated row (a fresh bitmap, so
			// snapshots sharing the old one are unaffected).
			t.holes = union(t.holes, t.Del)
		}
		t.Del = nil
		t.Delta = nil
		// Appended rows and interior holes break the sort-key column's
		// ascending invariant; range pushdown must skip this table until
		// a full Organize re-clusters it.
		t.SortDisturbed = true
		// Per-table CS refinement on a clone: the schema's copy is shared
		// with published snapshots and read lock-free (SchemaSummary,
		// CSOf), so it stays frozen; the cloned table carries the
		// refreshed statistics.
		ncs := *t.CS
		ncs.Props = append([]cs.PropStat(nil), t.CS.Props...)
		cs.RefreshTableStats(&ncs, nonNull, t.LiveCount())
		t.CS = &ncs
		// re-point CS-owned columns (the fresh Col structs built above are
		// private to this clone) at the refreshed PropStats; copied-up
		// child columns (Folded, no FKTable) keep their private stats
		for _, c := range t.Cols {
			if !c.Folded || c.FKTable != nil {
				if ps := ncs.Prop(c.Prop.Pred); ps != nil {
					c.Prop = ps
				}
			}
		}
	}
	return st
}
