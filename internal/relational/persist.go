// Persistence support: the catalog's unexported derived state — lookup
// maps, the delta layer's subject→row indexes, tombstone bitmap words —
// is exported and rebuilt here so the snapshot layer can round-trip a
// catalog without serializing anything derivable.
package relational

import (
	"fmt"
	"math/bits"

	"srdf/internal/dict"
	"srdf/internal/triples"
)

// Words exposes the bitmap's backing words for serialization; nil-safe.
// Trailing zero words may be present and carry no information.
func (b *Bitmap) Words() []uint64 {
	if b == nil {
		return nil
	}
	return b.words
}

// BitmapFromWords rebuilds a bitmap from serialized words, recounting
// the population. An empty word set restores as nil (the empty bitmap).
func BitmapFromWords(words []uint64) *Bitmap {
	if len(words) == 0 {
		return nil
	}
	b := &Bitmap{words: words}
	for _, w := range words {
		b.n += bits.OnesCount64(w)
	}
	if b.n == 0 {
		return nil
	}
	return b
}

// Holes exposes the permanent-hole bitmap for serialization.
func (t *Table) Holes() *Bitmap { return t.holes }

// SetHoles installs a restored permanent-hole bitmap.
func (t *Table) SetHoles(b *Bitmap) { t.holes = b }

// SetExtra installs the compacted-in extra subjects, rebuilding the
// subject→row map.
func (t *Table) SetExtra(extra []dict.OID) {
	t.Extra = extra
	t.extraRow = nil
	if len(extra) > 0 {
		t.extraRow = make(map[dict.OID]int, len(extra))
		for i, s := range extra {
			t.extraRow[s] = i
		}
	}
}

// RestoreDeltaRows rebuilds an unsealed delta tail from its serialized
// columns, re-deriving the subject→row map. cols must be aligned to the
// table's Cols and each as long as subj.
func RestoreDeltaRows(subj []dict.OID, cols [][]dict.OID) (*DeltaRows, error) {
	if len(subj) == 0 {
		return nil, nil
	}
	d := &DeltaRows{Subj: subj, Cols: cols, rowOf: make(map[dict.OID]int, len(subj))}
	for ci, col := range cols {
		if len(col) != len(subj) {
			return nil, fmt.Errorf("relational: delta column %d has %d rows, want %d", ci, len(col), len(subj))
		}
	}
	for i, s := range subj {
		if _, dup := d.rowOf[s]; dup {
			return nil, fmt.Errorf("relational: duplicate delta subject %v", s)
		}
		d.rowOf[s] = i
	}
	return d, nil
}

// AssembleCatalog wires a deserialized catalog: the name/CS lookup maps,
// the delta- and extra-residence maps, and the irregular index are all
// rebuilt from the restored tables and links. Link Parent pointers must
// already be set.
func AssembleCatalog(tables []*Table, links []*LinkTable, irregular *triples.Table) *Catalog {
	cat := &Catalog{
		Tables:    tables,
		Links:     links,
		Irregular: irregular,
		byName:    make(map[string]*Table, len(tables)),
		byCS:      make(map[int]*Table, len(tables)),
		deltaOf:   make(map[dict.OID]*Table),
		extraOf:   make(map[dict.OID]*Table),
	}
	for _, t := range tables {
		cat.byName[t.Name] = t
		cat.byCS[t.CS.ID] = t
		if t.Delta != nil {
			for _, s := range t.Delta.Subj {
				cat.deltaOf[s] = t
			}
		}
		for _, s := range t.Extra {
			cat.extraOf[s] = t
		}
	}
	cat.IrregularIdx = triples.BuildAll(irregular)
	return cat
}
