package relational

import (
	"fmt"
	"strings"
	"testing"

	"srdf/internal/cluster"
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/triples"
)

// build runs the full pipeline: parse, discover, cluster, materialize.
func build(t *testing.T, src string, minSupport int) (*Catalog, *triples.Table, *dict.Dictionary, *cs.Schema) {
	t.Helper()
	ts, err := nt.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	d := dict.New()
	tb := triples.NewTable(len(ts))
	for _, tr := range ts {
		tb.Append(d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O))
	}
	opts := cs.DefaultOptions()
	opts.MinSupport = minSupport
	schema := cs.Discover(tb, d, opts)
	inf, err := cluster.Reorganize(tb, d, schema, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cat := BuildCatalog(tb, d, schema, inf, colstore.NewPool(0))
	return cat, tb, d, schema
}

const dblpSrc = `
@prefix ex: <http://dblp.example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:inproc1 a ex:inproceeding ; ex:creator ex:author3 , ex:author4 ; ex:title "AAA" ; ex:partOf ex:conf1 .
ex:inproc2 a ex:inproceeding ; ex:creator ex:author2 ; ex:title "BBB" ; ex:partOf ex:conf1 .
ex:inproc3 a ex:inproceeding ; ex:creator ex:author3 ; ex:title "CCC" ; ex:partOf ex:conf2 .
ex:conf1 a ex:Conference ; ex:title "conference1" ; ex:issued "2010"^^xsd:integer .
ex:conf2 a ex:Proceedings ; ex:title "conference2" ; ex:issued "2011"^^xsd:integer .
ex:webpage1 ex:url "index.php" .
ex:conf2 ex:seeAlso ex:webpage1 .
`

func TestCatalogTablesAndCells(t *testing.T) {
	cat, _, d, _ := build(t, dblpSrc, 3)
	tables := cat.Visible()
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	inproc := cat.ByName("inproceeding")
	if inproc == nil {
		t.Fatalf("table inproceeding missing; have %v %v", tables[0].Name, tables[1].Name)
	}
	if inproc.Count != 3 {
		t.Errorf("inproceeding rows = %d, want 3", inproc.Count)
	}
	title := inproc.ColByName("title")
	if title == nil {
		t.Fatal("title column missing")
	}
	got := map[string]bool{}
	titleVals := title.Data.Values()
	for i := 0; i < inproc.Count; i++ {
		v := titleVals[i]
		if v == dict.Nil {
			t.Errorf("title row %d NULL", i)
			continue
		}
		tm, _ := d.Term(v)
		got[tm.Value] = true
	}
	for _, want := range []string{"AAA", "BBB", "CCC"} {
		if !got[want] {
			t.Errorf("title %q missing: %v", want, got)
		}
	}
}

func TestCatalogFKResolution(t *testing.T) {
	cat, _, _, _ := build(t, dblpSrc, 3)
	inproc := cat.ByName("inproceeding")
	partOf := inproc.ColByName("partof")
	if partOf == nil {
		t.Fatal("partof column missing")
	}
	if partOf.FKTable == nil {
		t.Fatal("partof FK not resolved")
	}
	// every partOf value is a subject OID inside the FK table's range
	partOfVals := partOf.Data.Values()
	for i := 0; i < inproc.Count; i++ {
		v := partOfVals[i]
		if partOf.FKTable.RowOf(v) < 0 {
			t.Errorf("row %d FK value %v outside target table", i, v)
		}
	}
}

func TestIrregularResidual(t *testing.T) {
	cat, tb, d, _ := build(t, dblpSrc, 3)
	// webpage1's url triple is irregular
	if cat.Irregular.Len() == 0 {
		t.Fatal("no irregular triples")
	}
	found := false
	for i := 0; i < cat.Irregular.Len(); i++ {
		tm, _ := d.Term(cat.Irregular.P[i])
		if dict.LocalName(tm.Value) == "url" {
			found = true
		}
	}
	if !found {
		t.Error("url triple not in irregular store")
	}
	// conservation: every table cell + link row + irregular row accounts
	// for exactly one input triple
	cells := 0
	for _, tab := range cat.Tables {
		for _, c := range tab.Cols {
			if c.Folded {
				continue // folded copies duplicate hidden-table data
			}
			cells += tab.Count - c.Data.NullCount()
		}
	}
	for _, lt := range cat.Links {
		cells += len(lt.Subj)
	}
	if cells+cat.Irregular.Len() != tb.Len() {
		t.Errorf("cells %d + irregular %d != triples %d", cells, cat.Irregular.Len(), tb.Len())
	}
}

func TestMultiValuedLinkTable(t *testing.T) {
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "e:p%d e:title \"t%d\" ; e:author e:a1 , e:a2 , e:a3 , e:a4 .\n", i, i)
	}
	cat, _, _, _ := build(t, b.String(), 3)
	if len(cat.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(cat.Links))
	}
	lt := cat.Links[0]
	if len(lt.Subj) != 24 || len(lt.Val) != 24 {
		t.Errorf("link rows = %d, want 24", len(lt.Subj))
	}
	// sorted by subject for merge joins
	for i := 1; i < len(lt.Subj); i++ {
		if lt.Subj[i] < lt.Subj[i-1] {
			t.Fatal("link table not subject-ordered")
		}
	}
	if !strings.Contains(lt.Name, "author") {
		t.Errorf("link name %q should mention the property", lt.Name)
	}
}

func TestOneToOneFolding(t *testing.T) {
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "e:p%d e:name \"n%d\" ; e:addr _:a%d .\n", i, i, i)
		fmt.Fprintf(&b, "_:a%d e:street \"s%d\" ; e:city \"c%d\" .\n", i, i, i)
	}
	cat, _, d, _ := build(t, b.String(), 3)
	vis := cat.Visible()
	if len(vis) != 1 {
		t.Fatalf("visible tables = %d, want 1 (addresses folded)", len(vis))
	}
	persons := vis[0]
	street := persons.ColByName("addr_street")
	if street == nil {
		var names []string
		for _, c := range persons.Cols {
			names = append(names, c.Prop.Name)
		}
		t.Fatalf("folded addr_street column missing; have %v", names)
	}
	// row consistency: person n_i's street is s_i
	name := persons.ColByName("name")
	nameVals, streetVals := name.Data.Values(), street.Data.Values()
	for i := 0; i < persons.Count; i++ {
		nm, _ := d.Term(nameVals[i])
		st, _ := d.Term(streetVals[i])
		if strings.TrimPrefix(nm.Value, "n") != strings.TrimPrefix(st.Value, "s") {
			t.Errorf("row %d: name %q street %q misaligned", i, nm.Value, st.Value)
		}
	}
	// DDL hides the blank-node FK and the hidden table
	ddl := cat.DDL(d)
	if strings.Contains(ddl, "REFERENCES street") || strings.Count(ddl, "CREATE TABLE") != 1 {
		t.Errorf("DDL should contain exactly the persons table:\n%s", ddl)
	}
	if !strings.Contains(ddl, "addr_street") {
		t.Errorf("DDL missing folded column:\n%s", ddl)
	}
}

func TestDDLShape(t *testing.T) {
	cat, _, d, _ := build(t, dblpSrc, 3)
	ddl := cat.DDL(d)
	if strings.Count(ddl, "CREATE TABLE") != 2 {
		t.Errorf("DDL table count:\n%s", ddl)
	}
	if !strings.Contains(ddl, "REFERENCES") {
		t.Errorf("DDL missing FK clause:\n%s", ddl)
	}
	if !strings.Contains(ddl, "BIGINT") {
		t.Errorf("DDL missing typed column (issued BIGINT):\n%s", ddl)
	}
	if !strings.Contains(ddl, "PRIMARY KEY") {
		t.Errorf("DDL missing PK:\n%s", ddl)
	}
}

func TestDumpCSV(t *testing.T) {
	cat, _, d, _ := build(t, dblpSrc, 3)
	inproc := cat.ByName("inproceeding")
	csv := cat.DumpCSV(inproc, d, 0)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv lines = %d, want 4:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "id,") {
		t.Errorf("csv header: %q", lines[0])
	}
	csvLim := cat.DumpCSV(inproc, d, 2)
	if got := len(strings.Split(strings.TrimSpace(csvLim), "\n")); got != 3 {
		t.Errorf("limited csv lines = %d, want 3", got)
	}
}

func TestStats(t *testing.T) {
	cat, _, _, _ := build(t, dblpSrc, 3)
	s := cat.Stats()
	if s.Tables != 2 || s.Rows != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.IrregularTriples == 0 {
		t.Error("stats should count irregular triples")
	}
}

func TestZoneMapOnSortedColumn(t *testing.T) {
	// build a table sub-ordered by date; its date column must be
	// physically ascending so zone maps are maximally selective.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "e:o%d e:odate \"1996-%02d-%02d\"^^xsd:date ; e:total %d .\n",
			i, 1+(i*7)%12, 1+(i*13)%28, i)
	}
	cat, _, _, _ := build(t, b.String(), 3)
	tab := cat.Visible()[0]
	var dateCol *Col
	for _, c := range tab.Cols {
		if c.Prop.Name == "odate" {
			dateCol = c
		}
	}
	if dateCol == nil {
		t.Fatal("odate column missing")
	}
	dateVals := dateCol.Data.Values()
	for i := 1; i < tab.Count; i++ {
		if dateVals[i] < dateVals[i-1] {
			t.Fatalf("date column not ascending at %d", i)
		}
	}
	zm := dateCol.Data.Zones()
	if zm.NumBlocks() == 0 {
		t.Fatal("no zones")
	}
	min, max, ok := zm.Bounds()
	if !ok || min > max {
		t.Errorf("bounds %v %v %v", min, max, ok)
	}
}

func TestByNameHidesAbsorbed(t *testing.T) {
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "e:p%d e:name \"n%d\" ; e:addr _:a%d .\n", i, i, i)
		fmt.Fprintf(&b, "_:a%d e:street \"s%d\" ; e:city \"c%d\" .\n", i, i, i)
	}
	cat, _, _, _ := build(t, b.String(), 3)
	for _, tab := range cat.Tables {
		if tab.Hidden && cat.ByName(tab.Name) != nil {
			t.Errorf("ByName returned hidden table %q", tab.Name)
		}
	}
}
