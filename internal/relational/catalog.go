// Package relational materializes the emergent schema as relational
// tables over aligned columns (paper Fig. 1: "Relational Table Storage"
// beside "Triple Table Storage"). Each retained CS becomes a table whose
// row i holds the property values of the CS's i-th clustered subject;
// multi-valued properties become link tables; triples outside the schema
// stay in an irregular residual triple table. The catalog also renders
// the SQL view of the data (research question ii).
package relational

import (
	"fmt"
	"sort"
	"strings"

	"srdf/internal/cluster"
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/triples"
)

// Col is one materialized column of a table.
type Col struct {
	Prop *cs.PropStat
	Data *colstore.Column
	// FKTable is the referenced table when the column is a foreign key.
	FKTable *Table
	// Folded marks columns involved in 1-1 unification: either an FK
	// into an absorbed table (hidden from DDL) or a column copied up
	// from one.
	Folded bool
}

// Table is a materialized CS. Beyond the clustered dense region it can
// carry a live-update delta layer: Extra subjects sealed in by Compact
// past the dense range, a tombstone bitmap over sealed rows, and an
// unsealed columnar delta tail (see delta.go).
type Table struct {
	CS   *cs.CS
	Name string
	// Base/Count delimit the table's clustered subject-OID range:
	// subject payload Base+i is row i.
	Base  uint64
	Count int
	// SortPred is the sub-ordering property (Nil if none); its column is
	// physically ascending, which the planner exploits for range
	// predicates via zone maps.
	SortPred dict.OID
	Cols     []*Col
	// Hidden tables (absorbed 1-1 CSs) are materialized but not exported.
	Hidden bool

	// Extra holds the subject OIDs of sealed rows past the dense range
	// (delta rows merged by Compact): row Count+i belongs to Extra[i].
	Extra    []dict.OID
	extraRow map[dict.OID]int
	// Del tombstones sealed rows ([0,SealedRows)) whose subject was
	// deleted or migrated to a delta row; scans filter it out.
	Del *Bitmap
	// Delta is the unsealed delta tail (nil when empty).
	Delta *DeltaRows
	// holes marks permanent all-NULL rows left by Compact folding
	// tombstones in. Scans need no filter (every cell is NULL), but
	// RowOf must not resolve a moved subject to its old hole.
	holes *Bitmap
	// SortDisturbed is set once extra rows or holes break the sort-key
	// column's ascending invariant; range pushdown skips such tables.
	SortDisturbed bool
}

// Col returns the column for a predicate, or nil.
func (t *Table) Col(pred dict.OID) *Col {
	for _, c := range t.Cols {
		if c.Prop.Pred == pred {
			return c
		}
	}
	return nil
}

// ColByName returns the column with the given SQL name, or nil.
func (t *Table) ColByName(name string) *Col {
	for _, c := range t.Cols {
		if c.Prop.Name == name {
			return c
		}
	}
	return nil
}

// SubjectOID returns the subject OID of physical row i — dense rows by
// OID arithmetic, extra and delta rows from their subject columns.
func (t *Table) SubjectOID(i int) dict.OID {
	if i < t.Count {
		return dict.ResourceOID(t.Base + uint64(i))
	}
	if sr := t.SealedRows(); i >= sr {
		return t.Delta.Subj[i-sr]
	}
	return t.Extra[i-t.Count]
}

// RowOf returns the physical row currently holding subject s's data —
// delta rows first, then compacted-in extra rows, then the dense range —
// or -1. Tombstoned dense rows do not resolve: the subject either moved
// to the delta layer or was deleted.
func (t *Table) RowOf(s dict.OID) int {
	if t.Delta != nil {
		if i, ok := t.Delta.rowOf[s]; ok {
			return t.SealedRows() + i
		}
	}
	if t.extraRow != nil {
		if i, ok := t.extraRow[s]; ok {
			return t.Count + i
		}
	}
	return t.DenseLiveRow(s)
}

// LinkTable stores a multi-valued property split off from its CS
// ("in case the multiplicity is > 2 splitting it off into a separate
// table"). Rows are (subject, value) pairs ordered by subject, so the
// executor can merge them against the parent's clustered subjects.
type LinkTable struct {
	Name   string
	Parent *Table
	Pred   dict.OID
	Subj   []dict.OID
	Val    []dict.OID
}

// Catalog is the complete materialized store.
type Catalog struct {
	Tables []*Table
	Links  []*LinkTable
	// Irregular holds every triple the tables do not answer.
	Irregular *triples.Table
	// IrregularIdx indexes the residual triples for fallback access.
	IrregularIdx *triples.IndexSet

	byName map[string]*Table
	byCS   map[int]*Table
	// deltaOf / extraOf resolve delta-resident and compacted-in subjects
	// whose OIDs lie outside every dense range.
	deltaOf map[dict.OID]*Table
	extraOf map[dict.OID]*Table
}

// TableOf returns the table (hidden ones included) currently holding s,
// or nil: the delta and extra maps first, then a binary search over the
// contiguous clustered ranges. Subjects whose dense row is tombstoned
// resolve to nil — their data moved to a delta row or was deleted.
func (cat *Catalog) TableOf(s dict.OID) *Table {
	if t := cat.deltaOf[s]; t != nil {
		return t
	}
	if t := cat.extraOf[s]; t != nil {
		return t
	}
	t := cat.denseTableOf(s)
	if t != nil {
		if r := int(s.Payload() - t.Base); t.Del.Get(r) || t.holes.Get(r) {
			return nil
		}
	}
	return t
}

// ByName returns a visible table by name.
func (cat *Catalog) ByName(name string) *Table {
	t := cat.byName[name]
	if t == nil || t.Hidden {
		return nil
	}
	return t
}

// ByCS returns the table of a CS id (hidden ones included).
func (cat *Catalog) ByCS(id int) *Table { return cat.byCS[id] }

// Visible returns the exported tables in catalog order.
func (cat *Catalog) Visible() []*Table {
	var out []*Table
	for _, t := range cat.Tables {
		if !t.Hidden {
			out = append(out, t)
		}
	}
	return out
}

// BuildCatalog materializes the schema over the clustered store. tb must
// already be reorganized by cluster.Reorganize, with inf its outcome.
func BuildCatalog(tb *triples.Table, d *dict.Dictionary, schema *cs.Schema, inf *cluster.Info, pool *colstore.BufferPool) *Catalog {
	cat := &Catalog{
		Irregular: triples.NewTable(0),
		byName:    make(map[string]*Table),
		byCS:      make(map[int]*Table),
	}
	// Create table shells.
	for _, c := range schema.CSs {
		if !c.Retained {
			continue
		}
		r, ok := inf.RangeOf(c.ID)
		if !ok {
			continue
		}
		t := &Table{
			CS:       c,
			Name:     c.Name,
			Base:     r.Base,
			Count:    r.Count,
			SortPred: r.SortPred,
			Hidden:   c.AbsorbedInto >= 0,
		}
		for i := range c.Props {
			ps := &c.Props[i]
			if ps.SplitOff {
				continue
			}
			t.Cols = append(t.Cols, &Col{
				Prop: ps,
				Data: colstore.NewColumn(t.Name+"."+ps.Name, t.Count, pool),
			})
		}
		cat.Tables = append(cat.Tables, t)
		cat.byName[t.Name] = t
		cat.byCS[c.ID] = t
	}
	// Link-table shells.
	links := make(map[[2]uint64]*LinkTable) // (cs id, pred) -> link
	for _, t := range cat.Tables {
		for i := range t.CS.Props {
			ps := &t.CS.Props[i]
			if !ps.SplitOff {
				continue
			}
			lt := &LinkTable{
				Name:   t.Name + "_" + ps.Name,
				Parent: t,
				Pred:   ps.Pred,
			}
			cat.Links = append(cat.Links, lt)
			links[[2]uint64{uint64(t.CS.ID), uint64(ps.Pred)}] = lt
		}
	}

	// Fill: one pass over SPO in clustered subject order.
	spo := triples.Build(tb, triples.SPO)
	spo.Distinct1(func(s dict.OID, lo, hi int) {
		csID, ok := schema.SubjectCS[s]
		if !ok {
			for i := lo; i < hi; i++ {
				cat.Irregular.Append(s, spo.B[i], spo.C[i])
			}
			return
		}
		t := cat.byCS[csID]
		row := t.RowOf(s)
		if row < 0 {
			for i := lo; i < hi; i++ {
				cat.Irregular.Append(s, spo.B[i], spo.C[i])
			}
			return
		}
		spo.Distinct2(lo, hi, func(p dict.OID, l, h int) {
			if lt, ok := links[[2]uint64{uint64(csID), uint64(p)}]; ok {
				for i := l; i < h; i++ {
					lt.Subj = append(lt.Subj, s)
					lt.Val = append(lt.Val, spo.C[i])
				}
				return
			}
			col := t.Col(p)
			if col == nil {
				for i := l; i < h; i++ {
					cat.Irregular.Append(s, p, spo.C[i])
				}
				return
			}
			col.Data.Set(row, spo.C[l])
			// overflow values of a 0..1 column stay irregular
			for i := l + 1; i < h; i++ {
				cat.Irregular.Append(s, p, spo.C[i])
			}
		})
	})

	// Resolve FK column targets.
	for _, t := range cat.Tables {
		for _, c := range t.Cols {
			if c.Prop.FKTarget >= 0 {
				c.FKTable = cat.byCS[c.Prop.FKTarget]
			}
		}
	}
	cat.foldAbsorbed(pool)
	// Freeze every materialized column into compressed segments: from
	// here on scans filter on the compressed form via selection-vector
	// kernels, and the pool's stats reflect the real resident size.
	for _, t := range cat.Tables {
		for _, c := range t.Cols {
			c.Data.Seal()
		}
	}
	cat.IrregularIdx = triples.BuildAll(cat.Irregular)
	return cat
}

// foldAbsorbed unifies 1-1 linked CS's: the hidden (absorbed) table's
// columns are materialized into the parent by following the FK per row,
// under prefixed names ("unifying CS's that are 1-1 linked; which is
// often the case for blank nodes"). The hidden table remains queryable
// for star patterns over the blank nodes themselves.
func (cat *Catalog) foldAbsorbed(pool *colstore.BufferPool) {
	for _, child := range cat.Tables {
		if !child.Hidden {
			continue
		}
		parent := cat.byCS[child.CS.AbsorbedInto]
		if parent == nil {
			child.Hidden = false // orphaned; keep visible
			continue
		}
		// Find the parent's FK column into the child.
		var fkCol *Col
		for _, c := range parent.Cols {
			if c.FKTable == child {
				fkCol = c
				break
			}
		}
		if fkCol == nil {
			child.Hidden = false
			continue
		}
		fkCol.Folded = true
		used := map[string]bool{"id": true}
		for _, c := range parent.Cols {
			used[c.Prop.Name] = true
		}
		for _, cc := range child.Cols {
			ps := *cc.Prop // copy, parent-owned
			base := fkCol.Prop.Name + "_" + ps.Name
			name := base
			for i := 2; used[name]; i++ {
				name = fmt.Sprintf("%s%d", base, i)
			}
			used[name] = true
			ps.Name = name
			data := colstore.NewColumn(parent.Name+"."+name, parent.Count, pool)
			for row := 0; row < parent.Count; row++ {
				ref := fkCol.Data.Vals[row]
				if ref == dict.Nil {
					continue
				}
				crow := child.RowOf(ref)
				if crow < 0 {
					continue
				}
				data.Set(row, cc.Data.Vals[crow])
			}
			parent.Cols = append(parent.Cols, &Col{Prop: &ps, Data: data, Folded: true})
		}
	}
}

// DDL renders the emergent schema as SQL CREATE TABLE statements —
// "users will gain an SQL view of the regular part of the RDF data".
func (cat *Catalog) DDL(d *dict.Dictionary) string {
	var b strings.Builder
	for _, t := range cat.Visible() {
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", t.Name)
		lines := []string{fmt.Sprintf("id VARCHAR PRIMARY KEY -- subject (%d rows)", t.LiveCount())}
		for _, c := range t.Cols {
			if c.Folded && c.FKTable != nil && c.FKTable.Hidden {
				continue // FK into an absorbed table: unified away
			}
			null := " NOT NULL"
			if c.Prop.Nullable {
				null = ""
			}
			typ := c.Prop.Kind.SQLType()
			ref := ""
			if c.FKTable != nil && !c.FKTable.Hidden {
				typ = "VARCHAR"
				ref = fmt.Sprintf(" REFERENCES %s(id)", c.FKTable.Name)
			} else if c.Prop.Kind == cs.RefKind {
				typ = "VARCHAR"
			}
			pred := ""
			if tm, ok := d.Term(c.Prop.Pred); ok {
				pred = " -- <" + tm.Value + ">"
			}
			lines = append(lines, fmt.Sprintf("%s %s%s%s%s", c.Prop.Name, typ, null, ref, pred))
		}
		for i, ln := range lines {
			// the comment is after the comma-bearing part
			comma := ","
			if i == len(lines)-1 {
				comma = ""
			}
			if idx := strings.Index(ln, " --"); idx >= 0 {
				fmt.Fprintf(&b, "  %s%s%s\n", ln[:idx], comma, ln[idx:])
			} else {
				fmt.Fprintf(&b, "  %s%s\n", ln, comma)
			}
		}
		b.WriteString(");\n")
	}
	for _, lt := range cat.Links {
		if lt.Parent.Hidden {
			continue
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (\n  id VARCHAR REFERENCES %s(id),\n  %s VARCHAR\n); -- multi-valued property, %d rows\n",
			lt.Name, lt.Parent.Name, linkColName(lt), len(lt.Subj))
	}
	return b.String()
}

func linkColName(lt *LinkTable) string {
	if ps := lt.Parent.CS.Prop(lt.Pred); ps != nil {
		return ps.Name
	}
	return "value"
}

// Stats summarizes the catalog.
type Stats struct {
	Tables           int
	LinkTables       int
	Rows             int
	Columns          int
	IrregularTriples int
	// DeltaRows counts unsealed delta rows awaiting Compact; Tombstones
	// counts sealed rows masked by the delete bitmaps.
	DeltaRows  int
	Tombstones int
}

// Stats returns catalog-level counters.
func (cat *Catalog) Stats() Stats {
	var s Stats
	for _, t := range cat.Visible() {
		s.Tables++
		s.Rows += t.LiveCount()
		s.Columns += len(t.Cols)
	}
	s.LinkTables = len(cat.Links)
	s.IrregularTriples = cat.Irregular.Len()
	s.DeltaRows = cat.DeltaRowCount()
	s.Tombstones = cat.TombstoneCount()
	return s
}

// DumpCSV renders up to limit rows of a table as CSV (decoded terms),
// for the SQL-toolchain-facing view and for debugging.
func (cat *Catalog) DumpCSV(t *Table, d *dict.Dictionary, limit int) string {
	var b strings.Builder
	b.WriteString("id")
	for _, c := range t.Cols {
		b.WriteString(",")
		b.WriteString(c.Prop.Name)
	}
	b.WriteString("\n")
	n := t.Count
	if limit > 0 && limit < n {
		n = limit
	}
	// decode without touching the buffer pool: a debug dump must not
	// perturb the page stats the pool exists to measure
	cols := make([][]dict.OID, len(t.Cols))
	for ci, c := range t.Cols {
		cols[ci] = c.Data.Values()
	}
	for i := 0; i < n; i++ {
		b.WriteString(csvCell(d, t.SubjectOID(i)))
		for _, vals := range cols {
			b.WriteString(",")
			if vals[i] == dict.Nil {
				continue
			}
			b.WriteString(csvCell(d, vals[i]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvCell(d *dict.Dictionary, o dict.OID) string {
	tm, ok := d.Term(o)
	if !ok {
		return ""
	}
	var s string
	switch tm.Kind {
	case dict.KindLiteral:
		s = tm.Value
	case dict.KindBlank:
		s = "_:" + tm.Value
	default:
		s = tm.Value
	}
	if strings.ContainsAny(s, ",\"\n") {
		s = `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SortedTables returns visible tables ordered by descending row count,
// the natural order for schema displays.
func (cat *Catalog) SortedTables() []*Table {
	out := cat.Visible()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}
