package cs

import (
	"hash/fnv"
	"sort"

	"srdf/internal/dict"
	"srdf/internal/triples"
)

// Discover runs the full pipeline — basic extraction, generalization,
// typed-property splitting, retention with incoming-link rescue,
// foreign-key discovery, fine-tuning, and naming — and returns the
// emergent schema.
func Discover(tb *triples.Table, d *dict.Dictionary, opts Options) *Schema {
	b := &builder{tb: tb, d: d, opts: opts}
	b.spo = triples.Build(tb, triples.SPO)
	b.typePred, _ = d.Lookup(dict.IRI(dict.RDFType))

	raw := b.extract()
	clusters := b.generalize(raw)
	if opts.TypeSplit {
		clusters = b.typeSplit(clusters)
	}
	s := &Schema{
		TotalTriples: tb.Len(),
		RawCSCount:   len(raw),
		Opts:         opts,
	}
	b.finalize(s, clusters)
	return s
}

type builder struct {
	tb       *triples.Table
	d        *dict.Dictionary
	opts     Options
	spo      *triples.Projection
	typePred dict.OID
}

// cluster is a CS under construction.
type cluster struct {
	props      map[dict.OID]*PropStat
	subjects   []dict.OID
	mergedFrom int
	// typeHist counts rdf:type objects over members, for naming.
	typeHist map[dict.OID]int
}

func newCluster() *cluster {
	return &cluster{props: make(map[dict.OID]*PropStat), typeHist: make(map[dict.OID]int), mergedFrom: 1}
}

func (c *cluster) support() int { return len(c.subjects) }

func (c *cluster) sortedPreds() []dict.OID {
	out := make([]dict.OID, 0, len(c.props))
	for p := range c.props {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// classOf collapses an object OID into its type class for the "Typed
// Properties" analysis: resources type by CS membership downstream, so
// here they are all RefKind; literals type by atomic ValueKind.
func (b *builder) classOf(o dict.OID) dict.ValueKind {
	if o.IsResource() {
		return RefKind
	}
	return b.d.Value(o).Kind
}

// subjectProps captures one subject's property vector during extraction.
type subjectProps struct {
	preds  []dict.OID
	counts []int
	// classes holds the dominant type class per predicate.
	classes []dict.ValueKind
}

// forEachSubject streams (subject, property vector) pairs off the SPO
// projection in subject order. The vector's preds are sorted (SPO order).
func (b *builder) forEachSubject(fn func(s dict.OID, sp *subjectProps)) {
	var sp subjectProps
	b.spo.Distinct1(func(s dict.OID, lo, hi int) {
		sp.preds = sp.preds[:0]
		sp.counts = sp.counts[:0]
		sp.classes = sp.classes[:0]
		b.spo.Distinct2(lo, hi, func(p dict.OID, l, h int) {
			// Dominant class among this subject's values of p.
			var hist [8]int
			refs := 0
			for i := l; i < h; i++ {
				k := b.classOf(b.spo.C[i])
				if k == RefKind {
					refs++
				} else {
					hist[k]++
				}
			}
			best, bestN := RefKind, refs
			for k, n := range hist {
				if n > bestN {
					best, bestN = dict.ValueKind(k), n
				}
			}
			sp.preds = append(sp.preds, p)
			sp.counts = append(sp.counts, h-l)
			sp.classes = append(sp.classes, best)
		})
		fn(s, &sp)
	})
}

func fingerprint(preds []dict.OID) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range preds {
		v := uint64(p)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// extract is the basic CS algorithm of [1]: one raw CS per distinct
// property combination.
func (b *builder) extract() []*cluster {
	byFP := make(map[uint64]*cluster)
	var order []uint64 // deterministic iteration
	b.forEachSubject(func(s dict.OID, sp *subjectProps) {
		fp := fingerprint(sp.preds)
		c, ok := byFP[fp]
		if !ok {
			c = newCluster()
			byFP[fp] = c
			order = append(order, fp)
		}
		c.subjects = append(c.subjects, s)
		b.accumulate(c, s, sp)
	})
	out := make([]*cluster, 0, len(order))
	for _, fp := range order {
		out = append(out, byFP[fp])
	}
	return out
}

// accumulate folds one subject's property vector into a cluster's stats.
func (b *builder) accumulate(c *cluster, s dict.OID, sp *subjectProps) {
	lo, hi := b.spo.Range1(s)
	_ = hi
	for i, p := range sp.preds {
		ps, ok := c.props[p]
		if !ok {
			ps = &PropStat{Pred: p, TypeHist: make(map[dict.ValueKind]int), FKTarget: -1}
			c.props[p] = ps
		}
		cnt := sp.counts[i]
		ps.NonNull++
		ps.ValueCount += cnt
		if cnt > 1 {
			ps.MultiSubjects++
		}
		ps.TypeHist[sp.classes[i]] += cnt
	}
	// rdf:type histogram for naming
	if b.typePred != dict.Nil {
		l, h := b.spo.Range2(s, b.typePred)
		for i := l; i < h; i++ {
			c.typeHist[b.spo.C[i]]++
		}
	}
	_ = lo
}

// mergeInto folds cluster src into dst, keeping the union of properties;
// properties whose eventual non-null fraction falls below MinPropFrac are
// dropped (their triples stay in the irregular store).
func (b *builder) mergeInto(dst, src *cluster) {
	dst.subjects = append(dst.subjects, src.subjects...)
	dst.mergedFrom += src.mergedFrom
	for p, ps := range src.props {
		dp, ok := dst.props[p]
		if !ok {
			dst.props[p] = clonePropStat(ps)
			continue
		}
		dp.NonNull += ps.NonNull
		dp.ValueCount += ps.ValueCount
		dp.MultiSubjects += ps.MultiSubjects
		for k, n := range ps.TypeHist {
			dp.TypeHist[k] += n
		}
	}
	for o, n := range src.typeHist {
		dst.typeHist[o] += n
	}
	minN := b.opts.MinPropFrac * float64(dst.support())
	for p, ps := range dst.props {
		if float64(ps.NonNull) < minN {
			delete(dst.props, p)
		}
	}
}

func clonePropStat(ps *PropStat) *PropStat {
	c := *ps
	c.TypeHist = make(map[dict.ValueKind]int, len(ps.TypeHist))
	for k, v := range ps.TypeHist {
		c.TypeHist[k] = v
	}
	return &c
}

// generalize implements the paper's Generalization step: instead of one
// CS per unique property combination, small CS's are merged into larger
// ones, producing NULLABLE (0..1) attributes, as long as every attribute
// keeps a significant minority of non-null subjects.
func (b *builder) generalize(raw []*cluster) []*cluster {
	// Largest first: big CS's anchor the schema, small ones fold in.
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].support() != raw[j].support() {
			return raw[i].support() > raw[j].support()
		}
		return fingerprint(raw[i].sortedPreds()) < fingerprint(raw[j].sortedPreds())
	})
	var accepted []*cluster
	byProp := make(map[dict.OID][]int) // pred -> accepted indexes

	for _, r := range raw {
		best := -1
		bestScore := -1.0
		seen := make(map[int]bool)
		// Candidates are scanned in sorted-predicate order with an
		// explicit index tie-break: map-iteration order here would make
		// score ties — and with them the whole emergent clustering and
		// OID assignment — nondeterministic across identical builds,
		// which the differential harness forbids.
		for _, p := range r.sortedPreds() {
			for _, ci := range byProp[p] {
				if seen[ci] {
					continue
				}
				seen[ci] = true
				score, ok := b.mergeScore(accepted[ci], r)
				if ok && (score > bestScore || (score == bestScore && ci < best)) {
					best, bestScore = ci, score
				}
			}
		}
		if best >= 0 {
			b.mergeInto(accepted[best], r)
			// index any new props gained from the merge
			for p := range accepted[best].props {
				if !containsIdx(byProp[p], best) {
					byProp[p] = append(byProp[p], best)
				}
			}
			continue
		}
		idx := len(accepted)
		accepted = append(accepted, r)
		for p := range r.props {
			byProp[p] = append(byProp[p], idx)
		}
	}
	return accepted
}

func containsIdx(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// mergeScore decides whether src may be generalized into dst and how
// attractive the merge is. Returns (score, allowed).
func (b *builder) mergeScore(dst, src *cluster) (float64, bool) {
	inter := 0
	for p := range src.props {
		if _, ok := dst.props[p]; ok {
			inter++
		}
	}
	if inter == 0 {
		return 0, false
	}
	union := len(dst.props) + len(src.props) - inter
	jac := float64(inter) / float64(union)
	srcSubset := inter == len(src.props)
	dstSubset := inter == len(dst.props)
	newSup := dst.support() + src.support()
	minN := b.opts.MinPropFrac * float64(newSup)

	switch {
	case srcSubset && dstSubset: // identical property sets (different stats)
		return 2 + jac, true
	case srcSubset:
		// dst gains nullable rows; every dst-only prop must stay above
		// the minority fraction.
		for p, ps := range dst.props {
			if _, ok := src.props[p]; !ok && float64(ps.NonNull) < minN {
				return 0, false
			}
		}
		return 1 + jac, true
	case dstSubset:
		// src brings extra props as nullables; those below the fraction
		// threshold are dropped by mergeInto (triples stay irregular),
		// which is acceptable only when src is the smaller side.
		if src.support() > dst.support() {
			return 0, false
		}
		return 1 + jac, true
	case jac >= b.opts.SimilarityMerge:
		return jac, true
	default:
		return 0, false
	}
}
