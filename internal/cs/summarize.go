package cs

import (
	"sort"
	"strings"
)

// SummaryOptions controls schema summarization for query sessions
// (paper §II-A, "RDF schema summarization"): the full emergent schema may
// be large, so the user can shrink it by raising the support threshold
// and/or giving keywords; CS's reachable from the selection over foreign
// keys are kept so joins stay explainable.
type SummaryOptions struct {
	// MinSupport keeps only CS's at or above this support (0 = no bound).
	MinSupport int
	// Keywords select CS's whose table or column names contain any of
	// them (case-insensitive). Empty = all.
	Keywords []string
	// FollowFKs additionally includes every CS reachable from a selected
	// one over foreign keys (both directions one hop per step, transitive).
	FollowFKs bool
}

// Summary is a reduced view of a schema: the selected CS ids, in ID
// order, plus the FKs among them. It models the paper's "artificial
// schema holding references only to these tables and their
// relationships" for the SQL toolchain.
type Summary struct {
	CSs []*CS
	FKs []FK
}

// Summarize reduces the schema per opts.
func (s *Schema) Summarize(opts SummaryOptions) Summary {
	selected := make(map[int]bool)
	for _, c := range s.CSs {
		if !c.Retained || c.AbsorbedInto >= 0 {
			continue
		}
		if opts.MinSupport > 0 && c.Support < opts.MinSupport {
			continue
		}
		if len(opts.Keywords) > 0 && !matchesKeywords(c, opts.Keywords) {
			continue
		}
		selected[c.ID] = true
	}
	if opts.FollowFKs {
		// Transitive closure over FK edges (undirected reachability).
		changed := true
		for changed {
			changed = false
			for _, fk := range s.FKs {
				from, to := s.CSs[fk.From], s.CSs[fk.To]
				if !from.Retained || !to.Retained || from.AbsorbedInto >= 0 || to.AbsorbedInto >= 0 {
					continue
				}
				if selected[fk.From] && !selected[fk.To] {
					selected[fk.To] = true
					changed = true
				}
				if selected[fk.To] && !selected[fk.From] {
					selected[fk.From] = true
					changed = true
				}
			}
		}
	}
	var out Summary
	ids := make([]int, 0, len(selected))
	for id := range selected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out.CSs = append(out.CSs, s.CSs[id])
	}
	for _, fk := range s.FKs {
		if selected[fk.From] && selected[fk.To] {
			out.FKs = append(out.FKs, fk)
		}
	}
	return out
}

// NameOf returns the table name of a CS id inside the summary ("?" if
// the id was not selected).
func (s Summary) NameOf(id int) string {
	for _, c := range s.CSs {
		if c.ID == id {
			return c.Name
		}
	}
	return "?"
}

func matchesKeywords(c *CS, kws []string) bool {
	name := strings.ToLower(c.Name)
	for _, kw := range kws {
		k := strings.ToLower(kw)
		if strings.Contains(name, k) {
			return true
		}
		for i := range c.Props {
			if strings.Contains(strings.ToLower(c.Props[i].Name), k) {
				return true
			}
		}
	}
	return false
}
