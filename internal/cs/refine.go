package cs

import (
	"sort"

	"srdf/internal/dict"
)

// typeSplit implements "Typed Properties": within one generalized CS,
// subjects whose property values have different type combinations are
// split into per-type-vector variants, provided each variant keeps
// enough support. The paper: "we will create a separate CS variant for
// each different combination of types; the advantage being in faster
// processing of each CS variant, as the types of the columns are known
// and homogeneous."
func (b *builder) typeSplit(clusters []*cluster) []*cluster {
	// Subject -> cluster index for the SPO passes.
	subj2c := make(map[dict.OID]int)
	eligible := make([]bool, len(clusters))
	for i, c := range clusters {
		if c.support() >= 2*b.opts.MinSupport && len(c.props) > 0 {
			eligible[i] = true
			for _, s := range c.subjects {
				subj2c[s] = i
			}
		}
	}

	// Pass 1: find discriminating properties. A property discriminates
	// its cluster when at least two value classes each have MinSupport
	// subjects. Absence (a NULL in a generalized 0..1 attribute) never
	// discriminates — otherwise type splitting would undo
	// generalization.
	type propKey struct {
		cluster int
		pred    dict.OID
	}
	classCounts := make(map[propKey]map[dict.ValueKind]int)
	b.forEachSubject(func(s dict.OID, sp *subjectProps) {
		ci, ok := subj2c[s]
		if !ok || !eligible[ci] {
			return
		}
		owner := clusters[ci]
		for i, p := range sp.preds {
			if _, kept := owner.props[p]; !kept {
				continue
			}
			k := propKey{ci, p}
			m := classCounts[k]
			if m == nil {
				m = make(map[dict.ValueKind]int)
				classCounts[k] = m
			}
			m[sp.classes[i]]++
		}
	})
	discriminating := make(map[propKey]bool)
	for k, m := range classCounts {
		strong := 0
		for _, n := range m {
			if n >= b.opts.MinSupport {
				strong++
			}
		}
		if strong >= 2 {
			discriminating[k] = true
		}
	}

	// Pass 2: bucket subjects by their class vector over discriminating
	// properties only.
	type bucketKey struct {
		cluster int
		sig     uint64
	}
	buckets := make(map[bucketKey]*cluster)
	order := make([]bucketKey, 0)
	b.forEachSubject(func(s dict.OID, sp *subjectProps) {
		ci, ok := subj2c[s]
		if !ok || !eligible[ci] {
			return
		}
		sig := uint64(1469598103934665603) // FNV offset
		for i, p := range sp.preds {
			if !discriminating[propKey{ci, p}] {
				continue
			}
			sig ^= uint64(p)
			sig *= 1099511628211
			sig ^= uint64(sp.classes[i])
			sig *= 1099511628211
		}
		k := bucketKey{ci, sig}
		bc, ok := buckets[k]
		if !ok {
			bc = newCluster()
			buckets[k] = bc
			order = append(order, k)
		}
		bc.subjects = append(bc.subjects, s)
		b.accumulate(bc, s, sp)
	})

	// Group buckets per cluster and decide.
	perCluster := make(map[int][]bucketKey)
	for _, k := range order {
		perCluster[k.cluster] = append(perCluster[k.cluster], k)
	}
	var out []*cluster
	for i, c := range clusters {
		ks := perCluster[i]
		if !eligible[i] || len(ks) < 2 || len(ks) > b.opts.MaxTypeVariants {
			out = append(out, c)
			continue
		}
		ok := true
		for _, k := range ks {
			if buckets[k].support() < b.opts.MinSupport {
				ok = false
				break
			}
		}
		if !ok {
			out = append(out, c)
			continue
		}
		for _, k := range ks {
			v := buckets[k]
			v.mergedFrom = c.mergedFrom
			// Variants inherit only the parent's retained property set;
			// properties the generalization step dropped as noise must
			// not resurface in a variant.
			for p := range v.props {
				if _, kept := c.props[p]; !kept {
					delete(v.props, p)
				}
			}
			out = append(out, v)
		}
	}
	return out
}

// finalize turns clusters into the public Schema: retention with the
// incoming-link rescue tally, FK discovery, fine-tuning, naming, and
// coverage accounting.
func (b *builder) finalize(s *Schema, clusters []*cluster) {
	// Deterministic order: support desc, fingerprint asc.
	sort.SliceStable(clusters, func(i, j int) bool {
		if clusters[i].support() != clusters[j].support() {
			return clusters[i].support() > clusters[j].support()
		}
		return fingerprint(clusters[i].sortedPreds()) < fingerprint(clusters[j].sortedPreds())
	})
	// Materialize CS structs.
	all2c := make(map[dict.OID]int, len(clusters)) // subject -> candidate CS
	for i, c := range clusters {
		sort.Slice(c.subjects, func(x, y int) bool { return c.subjects[x] < c.subjects[y] })
		cc := &CS{ID: i, Support: c.support(), Subjects: c.subjects, AbsorbedInto: -1, MergedFrom: c.mergedFrom}
		for _, p := range c.sortedPreds() {
			cc.Props = append(cc.Props, *c.props[p])
		}
		cc.TypeObj = dominantType(c)
		s.CSs = append(s.CSs, cc)
		for _, subj := range c.subjects {
			all2c[subj] = i
		}
	}

	// Incoming-link rescue tally: count resource objects that are
	// subjects of some CS.
	if b.opts.RescueReferenced {
		for i := 0; i < b.tb.Len(); i++ {
			o := b.tb.O[i]
			if !o.IsResource() {
				continue
			}
			if ci, ok := all2c[o]; ok {
				s.CSs[ci].InRefs++
			}
		}
	}

	// Retention.
	s.SubjectCS = make(map[dict.OID]int)
	for _, c := range s.CSs {
		if len(c.Props) == 0 {
			continue
		}
		if c.Support+c.InRefs >= b.opts.MinSupport {
			c.Retained = true
			for _, subj := range c.Subjects {
				s.SubjectCS[subj] = c.ID
			}
		}
	}

	b.countDistincts(s)
	b.discoverFKs(s)
	b.fineTune(s)
	b.name(s)
	b.coverage(s)
}

// countDistincts fills each retained property's DistinctObj: the exact
// number of distinct object values the CS's members hold for it. One
// pass over the triples, after retention decided membership.
func (b *builder) countDistincts(s *Schema) {
	type key struct {
		cs   int
		pred dict.OID
	}
	seen := make(map[key]map[dict.OID]struct{})
	for i := 0; i < b.tb.Len(); i++ {
		ci, ok := s.SubjectCS[b.tb.S[i]]
		if !ok {
			continue
		}
		if s.CSs[ci].Prop(b.tb.P[i]) == nil {
			continue
		}
		k := key{ci, b.tb.P[i]}
		m := seen[k]
		if m == nil {
			m = make(map[dict.OID]struct{})
			seen[k] = m
		}
		m[b.tb.O[i]] = struct{}{}
	}
	for k, m := range seen {
		s.CSs[k.cs].Prop(k.pred).DistinctObj = len(m)
	}
}

func dominantType(c *cluster) dict.OID {
	var best dict.OID
	bestN := 0
	total := 0
	for o, n := range c.typeHist {
		total += n
		if n > bestN || (n == bestN && o < best) {
			best, bestN = o, n
		}
	}
	if total == 0 || float64(bestN) < 0.8*float64(total) {
		return dict.Nil
	}
	return best
}

// discoverFKs finds foreign keys between retained CS's: a property is a
// FK when at least RefFrac of its resource objects are subjects of one
// single target CS.
func (b *builder) discoverFKs(s *Schema) {
	type key struct {
		from int
		pred dict.OID
	}
	counts := make(map[key]map[int]int)
	dupTargets := make(map[key]bool)
	seen := make(map[key]map[dict.OID]bool)

	for i := 0; i < b.tb.Len(); i++ {
		subj, pred, obj := b.tb.S[i], b.tb.P[i], b.tb.O[i]
		if !obj.IsResource() {
			continue
		}
		fromID, ok := s.SubjectCS[subj]
		if !ok {
			continue
		}
		if s.CSs[fromID].Prop(pred) == nil {
			continue
		}
		toID, ok := s.SubjectCS[obj]
		if !ok {
			continue
		}
		k := key{fromID, pred}
		m := counts[k]
		if m == nil {
			m = make(map[int]int)
			counts[k] = m
			seen[k] = make(map[dict.OID]bool)
		}
		m[toID]++
		if seen[k][obj] {
			dupTargets[k] = true
		} else {
			seen[k][obj] = true
		}
	}

	for k, m := range counts {
		from := s.CSs[k.from]
		ps := from.Prop(k.pred)
		refObjs := ps.TypeHist[RefKind]
		bestTo, bestN := -1, 0
		for to, n := range m {
			if n > bestN || (n == bestN && to < bestTo) {
				bestTo, bestN = to, n
			}
		}
		if bestTo < 0 || float64(bestN) < b.opts.RefFrac*float64(refObjs) {
			continue
		}
		ps.FKTarget = bestTo
		to := s.CSs[bestTo]
		fk := FK{From: k.from, To: bestTo, Pred: k.pred, Count: bestN}
		if !dupTargets[k] && ps.NonNull == from.Support && bestN == from.Support && to.Support == from.Support {
			fk.OneToOne = true
		}
		s.FKs = append(s.FKs, fk)
	}
	sort.Slice(s.FKs, func(i, j int) bool {
		if s.FKs[i].From != s.FKs[j].From {
			return s.FKs[i].From < s.FKs[j].From
		}
		return s.FKs[i].Pred < s.FKs[j].Pred
	})
}

// fineTune applies the paper's schema fine-tuning: multi-valued
// attributes split off into link tables; 1-1 linked CS's over blank
// nodes are unified into their referrer.
func (b *builder) fineTune(s *Schema) {
	for _, c := range s.CSs {
		if !c.Retained {
			continue
		}
		for i := range c.Props {
			ps := &c.Props[i]
			ps.Nullable = ps.NonNull < c.Support
			ps.Kind = dominantKind(ps)
			if ps.AvgMultiplicity() > b.opts.MultiValuedAvg {
				ps.SplitOff = true
			}
		}
	}
	if !b.opts.Merge11 {
		return
	}
	for i := range s.FKs {
		fk := &s.FKs[i]
		if !fk.OneToOne {
			continue
		}
		to := s.CSs[fk.To]
		if to.AbsorbedInto >= 0 || fk.From == fk.To {
			continue
		}
		// Only absorb when every other reference into `to` is absent and
		// its subjects are blank nodes (structural helpers, not
		// identities worth a table of their own).
		if to.InRefs != fk.Count || !b.allBlank(to) {
			continue
		}
		to.AbsorbedInto = fk.From
	}
}

func (b *builder) allBlank(c *CS) bool {
	for _, subj := range c.Subjects {
		t, ok := b.d.Term(subj)
		if !ok || t.Kind != dict.KindBlank {
			return false
		}
	}
	return true
}

func dominantKind(ps *PropStat) dict.ValueKind {
	var best dict.ValueKind
	bestN := -1
	for k, n := range ps.TypeHist {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	if bestN <= 0 {
		return dict.VString
	}
	return best
}

// coverage computes how many triples the emergent tables answer: each
// non-split-off property stores one value per non-null subject; split-off
// link tables store every value.
func (b *builder) coverage(s *Schema) {
	covered := 0
	for _, c := range s.CSs {
		if !c.Retained {
			continue
		}
		for i := range c.Props {
			ps := &c.Props[i]
			if ps.SplitOff {
				covered += ps.ValueCount
			} else {
				covered += ps.NonNull
			}
		}
	}
	s.IrregularTriples = s.TotalTriples - covered
	if s.TotalTriples > 0 {
		s.Coverage = float64(covered) / float64(s.TotalTriples)
	}
}

// MatchSubject returns the retained CS that covers every predicate in
// preds with the fewest extra properties, or nil. Used to route
// trickle-loaded subjects and to match query stars to tables.
func (s *Schema) MatchSubject(preds []dict.OID) *CS {
	var best *CS
	for _, c := range s.CSs {
		if !c.Retained || c.AbsorbedInto >= 0 || !c.HasProps(preds) {
			continue
		}
		if best == nil || len(c.Props) < len(best.Props) {
			best = c
		}
	}
	return best
}

// Covering returns every retained CS that contains all preds, in ID
// order. A star query over preds must scan each of them.
func (s *Schema) Covering(preds []dict.OID) []*CS {
	var out []*CS
	for _, c := range s.CSs {
		if c.Retained && c.AbsorbedInto < 0 && c.HasProps(preds) {
			out = append(out, c)
		}
	}
	return out
}
