package cs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/triples"
)

// loadTurtle parses Turtle source into a dictionary-encoded triple table.
func loadTurtle(t *testing.T, src string) (*triples.Table, *dict.Dictionary) {
	t.Helper()
	ts, err := nt.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	d := dict.New()
	tb := triples.NewTable(len(ts))
	for _, tr := range ts {
		tb.Append(d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O))
	}
	return tb, d
}

// dblpSrc is the paper's Figure 2 example graph: a DBLP-like dataset
// with inproceedings, conferences, a foreign key between them, and
// irregular triples (webpage noise, a stray property).
const dblpSrc = `
@prefix ex: <http://dblp.example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:inproc1 a ex:inproceeding ; ex:creator ex:author3 , ex:author4 ; ex:title "AAA" ; ex:partOf ex:conf1 .
ex:inproc2 a ex:inproceeding ; ex:creator ex:author2 ; ex:title "BBB" ; ex:partOf ex:conf1 .
ex:inproc3 a ex:inproceeding ; ex:creator ex:author3 ; ex:title "CCC" ; ex:partOf ex:conf2 .

ex:conf1 a ex:Conference ; ex:title "conference1" ; ex:issued "2010"^^xsd:integer .
ex:conf2 a ex:Proceedings ; ex:title "conference2" ; ex:issued "2011"^^xsd:integer .

# irregularity: a webpage with a different structure
ex:webpage1 ex:url "index.php" .
ex:conf2 ex:seeAlso ex:webpage1 .
`

func discover(t *testing.T, src string, mod func(*Options)) (*Schema, *triples.Table, *dict.Dictionary) {
	t.Helper()
	tb, d := loadTurtle(t, src)
	opts := DefaultOptions()
	opts.MinSupport = 2
	if mod != nil {
		mod(&opts)
	}
	return Discover(tb, d, opts), tb, d
}

func TestDBLPFigure2(t *testing.T) {
	// MinSupport 3: the conference CS (direct support 2) is retained via
	// the incoming-link rescue (3 partOf references), while the webpage
	// CS (support 1 + 1 incoming ref) stays irregular.
	s, _, d := discover(t, dblpSrc, func(o *Options) { o.MinSupport = 3 })
	ret := s.Retained()
	if len(ret) != 2 {
		t.Fatalf("retained %d CS, want 2 (inproceedings, conferences): %v", len(ret), s)
	}
	inproc := s.ByName("inproceeding")
	if inproc == nil {
		t.Fatalf("no table named from rdf:type 'inproceeding'; have %v, %v", ret[0].Name, ret[1].Name)
	}
	if inproc.Support != 3 {
		t.Errorf("inproceeding support = %d, want 3", inproc.Support)
	}
	// conference CS: the two conference subjects have identical property
	// sets {type,title,issued} so they form one CS even though their
	// rdf:type objects differ.
	var conf *CS
	for _, c := range ret {
		if c != inproc {
			conf = c
		}
	}
	if conf.Support != 2 {
		t.Errorf("conference support = %d, want 2", conf.Support)
	}
	// FK inproc.partOf -> conf
	fks := s.FKsFrom(inproc.ID)
	found := false
	for _, fk := range fks {
		if fk.To == conf.ID {
			found = true
			tm, _ := d.Term(fk.Pred)
			if dict.LocalName(tm.Value) != "partOf" {
				t.Errorf("FK pred = %v, want partOf", tm.Value)
			}
		}
	}
	if !found {
		t.Error("missing FK inproceeding.partOf -> conference")
	}
	// webpage1 is irregular
	wp, _ := d.Lookup(dict.IRI("http://dblp.example.org/webpage1"))
	if _, ok := s.SubjectCS[wp]; ok {
		t.Error("webpage1 must be irregular (support 1)")
	}
	if s.IrregularTriples == 0 {
		t.Error("expected some irregular triples")
	}
	if s.Coverage < 0.8 {
		t.Errorf("coverage = %v, want > 0.8", s.Coverage)
	}
}

func TestGeneralizationMergesSubset(t *testing.T) {
	// 20 subjects with {a,b,c}, 4 with {a,b}: one CS, c nullable.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "e:s%d e:a 1 ; e:b 2 ; e:c 3 .\n", i)
	}
	for i := 20; i < 24; i++ {
		fmt.Fprintf(&b, "e:s%d e:a 1 ; e:b 2 .\n", i)
	}
	s, _, _ := discover(t, b.String(), nil)
	if s.RawCSCount != 2 {
		t.Fatalf("raw CS count = %d, want 2", s.RawCSCount)
	}
	ret := s.Retained()
	if len(ret) != 1 {
		t.Fatalf("retained = %d, want 1 after generalization", len(ret))
	}
	c := ret[0]
	if c.Support != 24 {
		t.Errorf("support = %d, want 24", c.Support)
	}
	var nullable int
	for i := range c.Props {
		if c.Props[i].Nullable {
			nullable++
			if c.Props[i].NonNull != 20 {
				t.Errorf("nullable prop NonNull = %d, want 20", c.Props[i].NonNull)
			}
		}
	}
	if nullable != 1 {
		t.Errorf("nullable props = %d, want 1 (the c column)", nullable)
	}
}

func TestGeneralizationDropsNoiseProps(t *testing.T) {
	// 40 subjects {a,b}; 2 subjects {a,b,z}: z is below the minority
	// fraction and must be dropped, its triples staying irregular.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "e:s%d e:a 1 ; e:b 2 .\n", i)
	}
	fmt.Fprintf(&b, "e:x1 e:a 1 ; e:b 2 ; e:z 9 .\n")
	fmt.Fprintf(&b, "e:x2 e:a 1 ; e:b 2 ; e:z 9 .\n")
	s, _, _ := discover(t, b.String(), nil)
	ret := s.Retained()
	if len(ret) != 1 {
		t.Fatalf("retained = %d, want 1", len(ret))
	}
	if got := len(ret[0].Props); got != 2 {
		t.Errorf("props = %d, want 2 (z dropped)", got)
	}
	if s.IrregularTriples != 2 {
		t.Errorf("irregular triples = %d, want 2 (the z values)", s.IrregularTriples)
	}
	if ret[0].Support != 42 {
		t.Errorf("support = %d, want 42 (subjects still members)", ret[0].Support)
	}
}

func TestTypedPropertySplit(t *testing.T) {
	// One property set {v}, but half the subjects have integer values
	// and half have strings: two CS variants expected.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "e:num%d e:v %d ; e:w 1 .\n", i, i)
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "e:str%d e:v \"text%d\" ; e:w 1 .\n", i, i)
	}
	s, _, _ := discover(t, b.String(), nil)
	if s.RawCSCount != 1 {
		t.Fatalf("raw CS = %d, want 1", s.RawCSCount)
	}
	ret := s.Retained()
	if len(ret) != 2 {
		t.Fatalf("retained = %d, want 2 type variants", len(ret))
	}
	kinds := map[dict.ValueKind]bool{}
	for _, c := range ret {
		if c.Support != 10 {
			t.Errorf("variant support = %d, want 10", c.Support)
		}
		for i := range c.Props {
			if c.Props[i].Name == "v" {
				kinds[c.Props[i].Kind] = true
			}
		}
	}
	if !kinds[dict.VInt] || !kinds[dict.VString] {
		t.Errorf("variant kinds = %v, want int and string", kinds)
	}
}

func TestTypeSplitDisabled(t *testing.T) {
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "e:num%d e:v %d .\n", i, i)
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "e:str%d e:v \"t%d\" .\n", i, i)
	}
	s, _, _ := discover(t, b.String(), func(o *Options) { o.TypeSplit = false })
	if len(s.Retained()) != 1 {
		t.Errorf("retained = %d, want 1 with TypeSplit off", len(s.Retained()))
	}
}

func TestMultiValuedSplitOff(t *testing.T) {
	// Each subject has 4 authors: avg multiplicity 4 > 2 -> split off.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "e:p%d e:title \"t%d\" ; e:author e:a1 , e:a2 , e:a3 , e:a4 .\n", i, i)
	}
	s, _, _ := discover(t, b.String(), nil)
	ret := s.Retained()
	if len(ret) != 1 {
		t.Fatalf("retained = %d, want 1", len(ret))
	}
	var author *PropStat
	for i := range ret[0].Props {
		if ret[0].Props[i].Name == "author" {
			author = &ret[0].Props[i]
		}
	}
	if author == nil {
		t.Fatal("author property missing")
	}
	if !author.SplitOff {
		t.Errorf("author avg multiplicity %.1f should be split off", author.AvgMultiplicity())
	}
	if s.Coverage < 0.99 {
		t.Errorf("coverage = %v; split-off values should all be covered", s.Coverage)
	}
}

func TestRescueReferencedSmallCS(t *testing.T) {
	// One country subject referenced by 30 persons: country has support
	// 1 < MinSupport but must be rescued by incoming links.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	b.WriteString("e:nl e:name \"NL\" ; e:capital \"Amsterdam\" .\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "e:person%d e:livesIn e:nl ; e:age %d .\n", i, 20+i)
	}
	s, _, _ := discover(t, b.String(), func(o *Options) { o.MinSupport = 3 })
	ret := s.Retained()
	if len(ret) != 2 {
		t.Fatalf("retained = %d, want 2 (persons + rescued country)", len(ret))
	}
	var country *CS
	for _, c := range ret {
		if c.Support == 1 {
			country = c
		}
	}
	if country == nil {
		t.Fatal("country CS not rescued")
	}
	if country.InRefs != 30 {
		t.Errorf("InRefs = %d, want 30", country.InRefs)
	}
	// and without rescue it is dropped
	s2, _, _ := discover(t, b.String(), func(o *Options) { o.MinSupport = 3; o.RescueReferenced = false })
	if len(s2.Retained()) != 1 {
		t.Errorf("without rescue retained = %d, want 1", len(s2.Retained()))
	}
}

func TestOneToOneBlankMerge(t *testing.T) {
	// Every person has a blank address node 1-1: address CS is absorbed.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "e:p%d e:name \"n%d\" ; e:addr _:a%d .\n", i, i, i)
		fmt.Fprintf(&b, "_:a%d e:street \"s%d\" ; e:city \"c%d\" .\n", i, i, i)
	}
	s, _, _ := discover(t, b.String(), nil)
	var persons, addrs *CS
	for _, c := range s.CSs {
		if !c.Retained {
			continue
		}
		if c.Prop1Name("name") {
			persons = c
		}
		if c.Prop1Name("street") {
			addrs = c
		}
	}
	if persons == nil || addrs == nil {
		t.Fatalf("missing CS: persons=%v addrs=%v", persons, addrs)
	}
	if addrs.AbsorbedInto != persons.ID {
		t.Errorf("address CS not absorbed into persons (AbsorbedInto=%d, want %d)", addrs.AbsorbedInto, persons.ID)
	}
	oneToOne := false
	for _, fk := range s.FKs {
		if fk.From == persons.ID && fk.To == addrs.ID && fk.OneToOne {
			oneToOne = true
		}
	}
	if !oneToOne {
		t.Error("FK persons->address should be marked OneToOne")
	}
	// absorbed CS's are not listed as tables
	for _, c := range s.Retained() {
		if c == addrs {
			t.Error("absorbed CS must not appear in Retained()")
		}
	}
}

// Prop1Name is a test helper: does the CS have a property named n?
func (c *CS) Prop1Name(n string) bool {
	for i := range c.Props {
		if c.Props[i].Name == n {
			return true
		}
	}
	return false
}

func TestFKRequiresDominantTarget(t *testing.T) {
	// Property "rel" points half to CS A subjects, half to CS B: no FK.
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "e:a%d e:x 1 .\n", i)
		fmt.Fprintf(&b, "e:b%d e:y 2 .\n", i)
	}
	for i := 0; i < 6; i++ {
		tgt := "a"
		if i%2 == 0 {
			tgt = "b"
		}
		fmt.Fprintf(&b, "e:c%d e:rel e:%s%d ; e:z 3 .\n", i, tgt, i)
	}
	s, _, _ := discover(t, b.String(), nil)
	for _, fk := range s.FKs {
		if fk.Name == "rel" {
			t.Errorf("rel must not be an FK (50/50 targets): %+v", fk)
		}
	}
}

func TestNamingFromTypeAndDedup(t *testing.T) {
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "e:x%d a e:Widget ; e:size %d .\n", i, i)
	}
	for i := 0; i < 4; i++ {
		// same type but disjoint prop set -> second CS, name deduped
		fmt.Fprintf(&b, "e:y%d a e:Widget ; e:color \"c%d\" ; e:weight %d .\n", i, i, i)
	}
	s, _, _ := discover(t, b.String(), func(o *Options) { o.SimilarityMerge = 0.99 })
	ret := s.Retained()
	if len(ret) != 2 {
		t.Fatalf("retained = %d, want 2", len(ret))
	}
	names := map[string]bool{}
	for _, c := range ret {
		if names[c.Name] {
			t.Errorf("duplicate table name %q", c.Name)
		}
		names[c.Name] = true
		if !strings.HasPrefix(c.Name, "widget") {
			t.Errorf("name %q should derive from rdf:type Widget", c.Name)
		}
	}
}

func TestSummarize(t *testing.T) {
	s, _, _ := discover(t, dblpSrc, func(o *Options) { o.MinSupport = 3 })
	// keyword "creator" selects the inproceedings CS; FK closure pulls
	// in the conference CS.
	sum := s.Summarize(SummaryOptions{Keywords: []string{"creator"}, FollowFKs: true})
	if len(sum.CSs) != 2 {
		t.Fatalf("summary CSs = %d, want 2 via FK closure", len(sum.CSs))
	}
	if len(sum.FKs) == 0 {
		t.Error("summary should keep the connecting FK")
	}
	// without closure only the matching CS remains
	sum2 := s.Summarize(SummaryOptions{Keywords: []string{"creator"}})
	if len(sum2.CSs) != 1 {
		t.Errorf("summary CSs = %d, want 1 without closure", len(sum2.CSs))
	}
	// support threshold
	sum3 := s.Summarize(SummaryOptions{MinSupport: 3})
	if len(sum3.CSs) != 1 {
		t.Errorf("summary CSs = %d, want 1 (support>=3)", len(sum3.CSs))
	}
}

func TestMatchSubjectAndCovering(t *testing.T) {
	s, _, d := discover(t, dblpSrc, func(o *Options) { o.MinSupport = 3 })
	title, _ := d.Lookup(dict.IRI("http://dblp.example.org/title"))
	partOf, _ := d.Lookup(dict.IRI("http://dblp.example.org/partOf"))
	issued, _ := d.Lookup(dict.IRI("http://dblp.example.org/issued"))

	// {title} is in both CS's
	if got := len(s.Covering([]dict.OID{title})); got != 2 {
		t.Errorf("Covering(title) = %d CS, want 2", got)
	}
	// {title, partOf} only in inproceedings
	cov := s.Covering([]dict.OID{title, partOf})
	if len(cov) != 1 || cov[0].Name != "inproceeding" {
		t.Errorf("Covering(title,partOf) = %v", cov)
	}
	// MatchSubject picks the tighter CS
	m := s.MatchSubject([]dict.OID{title, issued})
	if m == nil || m.Name == "inproceeding" {
		t.Errorf("MatchSubject(title,issued) = %v, want conference CS", m)
	}
	if s.MatchSubject([]dict.OID{dict.ResourceOID(99999)}) != nil {
		t.Error("MatchSubject of unknown pred must be nil")
	}
}

func TestDisjointMembership(t *testing.T) {
	// Property: every subject belongs to at most one CS; CS subject
	// lists are disjoint and sorted.
	s, tb, _ := discover(t, dblpSrc, nil)
	seen := map[dict.OID]int{}
	for _, c := range s.CSs {
		for i, subj := range c.Subjects {
			if i > 0 && c.Subjects[i-1] >= subj {
				t.Fatalf("CS %d subjects not sorted/unique", c.ID)
			}
			if prev, dup := seen[subj]; dup {
				t.Fatalf("subject %v in CS %d and %d", subj, prev, c.ID)
			}
			seen[subj] = c.ID
		}
	}
	// every triple subject is somewhere (as CS member or irregular)
	for i := 0; i < tb.Len(); i++ {
		if _, ok := seen[tb.S[i]]; !ok {
			t.Fatalf("subject %v missing from all CSs", tb.S[i])
		}
	}
}

func TestRandomizedInvariants(t *testing.T) {
	// Generate random structured data and check global invariants:
	// coverage in [0,1], retained supports >= tally threshold,
	// irregular + covered == total.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		b.WriteString("@prefix e: <http://e/> .\n")
		nClasses := 2 + rng.Intn(4)
		for s := 0; s < 150; s++ {
			cls := rng.Intn(nClasses)
			fmt.Fprintf(&b, "e:s%d e:k%d_a %d ", s, cls, rng.Intn(100))
			if rng.Intn(10) > 0 { // occasionally missing prop
				fmt.Fprintf(&b, "; e:k%d_b \"v%d\" ", cls, rng.Intn(50))
			}
			if rng.Intn(20) == 0 { // rare noise prop
				fmt.Fprintf(&b, "; e:noise%d %d ", rng.Intn(30), rng.Intn(5))
			}
			b.WriteString(".\n")
		}
		s, tb, _ := discover(t, b.String(), func(o *Options) { o.MinSupport = 5 })
		if s.Coverage < 0 || s.Coverage > 1 {
			t.Fatalf("seed %d: coverage %v out of range", seed, s.Coverage)
		}
		covered := 0
		for _, c := range s.CSs {
			if !c.Retained {
				continue
			}
			for i := range c.Props {
				if c.Props[i].SplitOff {
					covered += c.Props[i].ValueCount
				} else {
					covered += c.Props[i].NonNull
				}
			}
			if c.Support+c.InRefs < 5 {
				t.Fatalf("seed %d: retained CS below tally threshold", seed)
			}
		}
		if covered+s.IrregularTriples != tb.Len() {
			t.Fatalf("seed %d: covered %d + irregular %d != total %d",
				seed, covered, s.IrregularTriples, tb.Len())
		}
	}
}

func TestEmptyInput(t *testing.T) {
	tb := triples.NewTable(0)
	d := dict.New()
	s := Discover(tb, d, DefaultOptions())
	if len(s.CSs) != 0 || s.Coverage != 0 {
		t.Errorf("empty input: %v", s)
	}
}
