package cs

import (
	"fmt"
	"sort"
	"strings"

	"srdf/internal/dict"
)

// name assigns human-readable table and column names (research question
// ii: schema "with shapes and names that can be easily understood").
// Table names come from the dominant rdf:type object when one exists,
// otherwise from the most characteristic property names; column names
// are predicate local names. All names are lower-cased SQL identifiers,
// deduplicated with numeric suffixes.
func (b *builder) name(s *Schema) {
	used := make(map[string]bool)
	for _, c := range s.CSs {
		if !c.Retained {
			continue
		}
		base := b.tableBaseName(c)
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s%d", base, i)
		}
		used[name] = true
		c.Name = name

		colUsed := map[string]bool{"id": true}
		for i := range c.Props {
			ps := &c.Props[i]
			col := sqlIdent(b.predLocal(ps.Pred))
			cand := col
			for j := 2; colUsed[cand]; j++ {
				cand = fmt.Sprintf("%s%d", col, j)
			}
			colUsed[cand] = true
			ps.Name = cand
		}
	}
	for i := range s.FKs {
		fk := &s.FKs[i]
		if s.CSs[fk.From].Retained {
			if ps := s.CSs[fk.From].Prop(fk.Pred); ps != nil {
				fk.Name = ps.Name
			}
		}
		if fk.Name == "" {
			fk.Name = sqlIdent(b.predLocal(fk.Pred))
		}
	}
}

func (b *builder) predLocal(p dict.OID) string {
	t, ok := b.d.Term(p)
	if !ok {
		return fmt.Sprintf("p%d", p.Payload())
	}
	return dict.LocalName(t.Value)
}

func (b *builder) tableBaseName(c *CS) string {
	if c.TypeObj != dict.Nil {
		if t, ok := b.d.Term(c.TypeObj); ok {
			return sqlIdent(dict.LocalName(t.Value))
		}
	}
	// Most characteristic properties: highest non-null count, skipping
	// rdf:type itself; join the top two.
	type cand struct {
		name string
		n    int
	}
	var cands []cand
	for i := range c.Props {
		ps := &c.Props[i]
		if ps.Pred == b.typePred {
			continue
		}
		cands = append(cands, cand{sqlIdent(b.predLocal(ps.Pred)), ps.NonNull})
	}
	if len(cands) == 0 {
		return fmt.Sprintf("cs%d", c.ID)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) == 1 {
		return cands[0].name
	}
	return cands[0].name + "_" + cands[1].name
}

// sqlIdent lowercases and sanitizes a string into a SQL identifier.
func sqlIdent(s string) string {
	var bld strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_':
			bld.WriteRune(r)
		case r == '-' || r == ' ' || r == '.':
			bld.WriteByte('_')
		}
	}
	out := bld.String()
	if out == "" {
		return "x"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "c" + out
	}
	return out
}
