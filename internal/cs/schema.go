// Package cs implements characteristic-set (CS) discovery: the emergent
// relational schema of an RDF graph. A characteristic set is the set of
// properties that co-occur on a subject (Neumann & Moerkotte, ICDE 2011);
// the paper extends basic CS extraction with generalization (nullable
// attributes), typed properties, foreign-key relationship discovery, and
// schema fine-tuning (multi-valued split-off, 1-1 unification,
// incoming-link support rescue), plus human-readable naming and
// summarization (paper §II-A).
package cs

import (
	"fmt"
	"sort"

	"srdf/internal/dict"
)

// Options tunes the discovery pipeline. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// MinSupport is the minimum number of subjects (after the
	// incoming-link tally) for a CS to be retained as a table.
	MinSupport int
	// MinPropFrac is the "significant minority fraction": a property may
	// be added to a CS as a NULLABLE (0..1) attribute only if at least
	// this fraction of the merged subjects has an occurrence.
	MinPropFrac float64
	// SimilarityMerge is the Jaccard similarity of two property sets
	// above which they are unified even when neither subsumes the other.
	SimilarityMerge float64
	// TypeSplit enables per-object-type CS variants ("Typed Properties").
	TypeSplit bool
	// MaxTypeVariants caps the number of variants a CS may split into.
	MaxTypeVariants int
	// RefFrac is the fraction of a property's resource objects that must
	// fall in a single target CS for a foreign key to be declared.
	RefFrac float64
	// MultiValuedAvg: when a property averages more than this many values
	// per subject it is split off into a separate link table; at or below
	// it, the first value is kept in the column and overflow values stay
	// in the irregular triple store.
	MultiValuedAvg float64
	// Merge11 unifies 1-1 linked CS's whose target subjects are blank
	// nodes (the paper notes this "is often the case for blank nodes").
	Merge11 bool
	// RescueReferenced adds incoming foreign-key links to a CS's support
	// tally, so small dimension-like CS's referenced by large ones are
	// retained ("rather than looking at direct support, we add incoming
	// links to the CS to the tally").
	RescueReferenced bool
}

// DefaultOptions are sensible defaults for both clean and dirty data.
func DefaultOptions() Options {
	return Options{
		MinSupport:       3,
		MinPropFrac:      0.05,
		SimilarityMerge:  0.85,
		TypeSplit:        true,
		MaxTypeVariants:  4,
		RefFrac:          0.8,
		MultiValuedAvg:   2.0,
		Merge11:          true,
		RescueReferenced: true,
	}
}

// RefKind marks a property whose objects are resources.
const RefKind dict.ValueKind = 200

// PropStat describes one property of a CS.
type PropStat struct {
	Pred dict.OID
	// Name is the SQL column name chosen during naming.
	Name string
	// NonNull is the number of member subjects with at least one value.
	NonNull int
	// ValueCount is the total number of triples with this predicate over
	// member subjects.
	ValueCount int
	// MultiSubjects is the number of subjects with two or more values.
	MultiSubjects int
	// DistinctObj is the number of distinct object values the CS's
	// members hold for this predicate, counted once at discovery time.
	// It is the join-cardinality denominator of the cost-based planner;
	// live updates leave it as the build-time estimate.
	DistinctObj int
	// TypeHist counts literal objects per ValueKind; RefKind counts
	// resource objects.
	TypeHist map[dict.ValueKind]int
	// Kind is the dominant value kind of the column (RefKind for
	// reference columns).
	Kind dict.ValueKind
	// Nullable is true when NonNull < the CS support.
	Nullable bool
	// SplitOff is true when the property is multi-valued beyond
	// MultiValuedAvg and is carved out into a link table.
	SplitOff bool
	// FKTarget is the CS index the property references, or -1.
	FKTarget int
}

// AvgMultiplicity returns values per non-null subject.
func (p *PropStat) AvgMultiplicity() float64 {
	if p.NonNull == 0 {
		return 0
	}
	return float64(p.ValueCount) / float64(p.NonNull)
}

// CS is one discovered characteristic set.
type CS struct {
	// ID indexes the CS inside its Schema.
	ID int
	// Name is the emergent SQL table name.
	Name string
	// Props are the CS's properties sorted by predicate OID.
	Props []PropStat
	// Subjects are the member subject OIDs (load-order OIDs).
	Subjects []dict.OID
	// Support is len(Subjects).
	Support int
	// InRefs is the number of incoming FK references counted during the
	// rescue tally.
	InRefs int
	// Retained marks CS's that survive thresholds and become tables.
	Retained bool
	// AbsorbedInto is the CS index this 1-1 CS was unified into, or -1.
	AbsorbedInto int
	// TypeObj is the dominant rdf:type object if ≥80% of members share
	// one, else Nil; used for naming.
	TypeObj dict.OID
	// MergedFrom counts how many raw CS's were generalized into this one.
	MergedFrom int
}

// Prop returns the PropStat for pred, or nil.
func (c *CS) Prop(pred dict.OID) *PropStat {
	i := sort.Search(len(c.Props), func(i int) bool { return c.Props[i].Pred >= pred })
	if i < len(c.Props) && c.Props[i].Pred == pred {
		return &c.Props[i]
	}
	return nil
}

// HasProps reports whether the CS contains every predicate in preds.
func (c *CS) HasProps(preds []dict.OID) bool {
	for _, p := range preds {
		if c.Prop(p) == nil {
			return false
		}
	}
	return true
}

// FK is a discovered foreign-key relationship between two CS's.
type FK struct {
	From, To int // CS ids
	Pred     dict.OID
	Name     string
	// Count is the number of conforming references.
	Count int
	// OneToOne marks a 1-1 relationship (every source refers to a
	// distinct target and the populations coincide).
	OneToOne bool
}

// Schema is the discovery result.
type Schema struct {
	CSs []*CS
	FKs []FK
	// SubjectCS maps each subject OID to its retained CS id (absent =
	// irregular subject).
	SubjectCS map[dict.OID]int
	// Coverage is the fraction of all triples answered by retained CS
	// columns (split-off link tables included).
	Coverage float64
	// TotalTriples is the size of the input.
	TotalTriples int
	// IrregularTriples counts triples left in the basic triple store.
	IrregularTriples int
	// RawCSCount is the number of CS's before generalization — the
	// number the original algorithm of [1] would produce.
	RawCSCount int
	Opts       Options
}

// Retained returns the retained CS's in ID order.
func (s *Schema) Retained() []*CS {
	var out []*CS
	for _, c := range s.CSs {
		if c.Retained && c.AbsorbedInto < 0 {
			out = append(out, c)
		}
	}
	return out
}

// ByName finds a retained CS by its emergent table name.
func (s *Schema) ByName(name string) *CS {
	for _, c := range s.CSs {
		if c.Retained && c.Name == name {
			return c
		}
	}
	return nil
}

// CSOf returns the retained CS of a subject, or nil.
func (s *Schema) CSOf(subj dict.OID) *CS {
	id, ok := s.SubjectCS[subj]
	if !ok {
		return nil
	}
	return s.CSs[id]
}

// FKsFrom returns the FKs whose source is CS id.
func (s *Schema) FKsFrom(id int) []FK {
	var out []FK
	for _, fk := range s.FKs {
		if fk.From == id {
			out = append(out, fk)
		}
	}
	return out
}

func (s *Schema) String() string {
	ret := s.Retained()
	return fmt.Sprintf("schema: %d raw CS -> %d CS (%d retained), %d FKs, coverage %.1f%%",
		s.RawCSCount, len(s.CSs), len(ret), len(s.FKs), 100*s.Coverage)
}
