package cs

import "srdf/internal/dict"

// MatchDelta is the incremental characteristic-set match for the live
// update path: given the current predicate set of one (new or mutated)
// subject, it picks the retained CS the subject should join without
// re-running discovery. The rule mirrors generalization: the subject may
// carry noise properties (they spill to the irregular store) but at
// least half of its predicates must be properties of the CS, and the
// best match wins by (matched predicates, support, id). Returns the CS
// id, or -1 when no table fits — the subject then spills entirely to
// the leftover triple store.
func (s *Schema) MatchDelta(preds []dict.OID) int {
	best, bestScore, bestSupport := -1, 0, 0
	for _, c := range s.CSs {
		if !c.Retained || c.AbsorbedInto >= 0 {
			continue
		}
		score := 0
		for _, p := range preds {
			if c.Prop(p) != nil {
				score++
			}
		}
		if score == 0 || 2*score < len(preds) {
			continue
		}
		better := score > bestScore ||
			(score == bestScore && c.Support > bestSupport) ||
			(score == bestScore && c.Support == bestSupport && best >= 0 && c.ID < best)
		if better {
			best, bestScore, bestSupport = c.ID, score, c.Support
		}
	}
	return best
}

// RefreshTableStats is the per-table CS refinement run by Compact: it
// re-derives the support and per-property null statistics of one CS from
// its freshly compacted table, so nullability and schema summaries keep
// tracking the data without a full re-discovery. nonNull maps predicate
// to its non-NULL row count; liveRows is the table's live row count.
func RefreshTableStats(c *CS, nonNull map[dict.OID]int, liveRows int) {
	c.Support = liveRows
	for i := range c.Props {
		ps := &c.Props[i]
		n, ok := nonNull[ps.Pred]
		if !ok {
			continue
		}
		ps.NonNull = n
		ps.Nullable = n < liveRows
	}
}
