package exec

import (
	"srdf/internal/dict"
)

// sharedVars returns the variables common to both relations.
func sharedVars(l, r *Rel) []string {
	var out []string
	for _, v := range l.Vars {
		if r.ColIdx(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// HashJoin joins two relations on all their shared variables (natural
// join). If there are none, it returns the cross product.
func HashJoin(ctx *Ctx, l, r *Rel) *Rel {
	// Build on the smaller side.
	if r.Len() < l.Len() {
		l, r = r, l
	}
	shared := sharedVars(l, r)
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = l.ColIdx(v)
		rIdx[i] = r.ColIdx(v)
	}
	// Output schema: all of l, then r's non-shared.
	outVars := append([]string{}, l.Vars...)
	var rExtra []int
	for i, v := range r.Vars {
		if l.ColIdx(v) < 0 {
			outVars = append(outVars, v)
			rExtra = append(rExtra, i)
		}
	}
	out := NewRel(outVars...)

	type key string
	build := make(map[key][]int32, l.Len())
	var kb []byte
	mkKey := func(rel *Rel, idx []int, row int) key {
		kb = kb[:0]
		for _, ci := range idx {
			kb = appendOIDKey(kb, rel.Cols[ci][row])
		}
		return key(kb)
	}
	for i := 0; i < l.Len(); i++ {
		k := mkKey(l, lIdx, i)
		build[k] = append(build[k], int32(i))
	}
	buf := make([]dict.OID, 0, len(outVars))
	for j := 0; j < r.Len(); j++ {
		k := mkKey(r, rIdx, j)
		for _, i := range build[k] {
			buf = l.Row(int(i), buf)
			for _, ci := range rExtra {
				buf = append(buf, r.Cols[ci][j])
			}
			out.AppendRow(buf...)
		}
	}
	return out
}

// SemiJoinRange filters rel to rows whose keyVar column lies inside the
// OID range [lo,hi]. The planner uses it to apply a cross-table zone-map
// restriction (a date range on ORDERS becomes a subject-OID range that
// prunes LINEITEM's FK column) ahead of the actual join.
func SemiJoinRange(rel *Rel, keyVar string, lo, hi dict.OID) *Rel {
	ci := rel.ColIdx(keyVar)
	if ci < 0 {
		return rel
	}
	var keep []int32
	for i := 0; i < rel.Len(); i++ {
		v := rel.Cols[ci][i]
		if v >= lo && v <= hi {
			keep = append(keep, int32(i))
		}
	}
	return rel.Select(keep)
}

// Union concatenates relations with identical schemas (column order may
// differ; vars are matched by name).
func Union(rels ...*Rel) *Rel {
	var first *Rel
	for _, r := range rels {
		if r != nil {
			first = r
			break
		}
	}
	if first == nil {
		return NewRel()
	}
	out := NewRel(first.Vars...)
	for _, r := range rels {
		if r == nil || r.Len() == 0 {
			continue
		}
		perm := make([]int, len(out.Vars))
		for i, v := range out.Vars {
			perm[i] = r.ColIdx(v)
		}
		for i := 0; i < r.Len(); i++ {
			for ci, p := range perm {
				if p < 0 {
					out.Cols[ci] = append(out.Cols[ci], dict.Nil)
				} else {
					out.Cols[ci] = append(out.Cols[ci], r.Cols[p][i])
				}
			}
		}
	}
	return out
}
