package exec

import (
	"fmt"
	"log"
	"runtime/debug"
	"sync/atomic"
)

// PanicError is a panic captured inside a query pipeline and converted
// into a per-query error: the process survives, the one query fails with
// a diagnosable cause. The stack is captured at the recovery site and
// logged once there.
type PanicError struct {
	Where string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: panic in %s: %v", e.Where, e.Value)
}

// panicsTotal counts every panic the executor recovered, process-wide —
// the server exposes it as srdf_panics_total.
var panicsTotal atomic.Uint64

// PanicsTotal reports how many panics query pipelines have recovered
// since process start.
func PanicsTotal() uint64 { return panicsTotal.Load() }

// NewPanicError converts a recovered panic value into a PanicError,
// counting it and logging the stack once.
func NewPanicError(where string, v any) *PanicError {
	e := &PanicError{Where: where, Value: v, Stack: debug.Stack()}
	panicsTotal.Add(1)
	log.Printf("exec: recovered panic in %s: %v\n%s", where, v, e.Stack)
	return e
}
