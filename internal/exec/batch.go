package exec

import (
	"srdf/internal/dict"
)

// BatchRows is the vector size of the streaming executor: operators
// exchange fixed-capacity OID batches instead of fully materialized
// relations, MonetDB/X100-style. It matches colstore.BlockRows so one
// scanned block fills at most one batch.
const BatchRows = 1024

// Batch is one vector of bindings flowing between operators: a column of
// OIDs per variable, at most BatchRows rows. Batches are owned by the
// consumer and refilled on every Next call, so their backing arrays are
// reused across the whole pull.
//
// A producer fills a batch in one of two ways:
//
//   - appending rows (AppendRow / direct appends to Cols), the owned,
//     materialized form, or
//   - lending column views with SetViews — zero-copy slices of storage
//     (decoded segment blocks, another batch's columns) plus an optional
//     selection vector. Lent views stay valid until the consumer's next
//     Reset+Next cycle, exactly the lifetime of an owned fill.
//
// When Sel is non-nil, the batch's logical rows are Cols[c][Sel[r]] for
// r in [0,len(Sel)): filters and scan predicate kernels shrink Sel
// instead of copying survivors, and consumers gather through Sel only at
// true materialization points (Drain, hash build, aggregation).
type Batch struct {
	Vars []string
	Cols [][]dict.OID
	// Sel, when non-nil, is an ascending selection over the physical rows
	// of Cols; logical row r is Cols[c][Sel[r]].
	Sel []int32

	// own holds the batch's backing arrays so Reset can reclaim them
	// after a producer lent views.
	own      [][]dict.OID
	borrowed bool
}

// NewBatch allocates an empty batch with capacity BatchRows per column.
func NewBatch(vars []string) *Batch {
	b := &Batch{Vars: vars, Cols: make([][]dict.OID, len(vars)), own: make([][]dict.OID, len(vars))}
	for i := range b.Cols {
		b.Cols[i] = make([]dict.OID, 0, BatchRows)
		b.own[i] = b.Cols[i]
	}
	return b
}

// Len returns the logical row count.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// At returns logical row r of column c.
func (b *Batch) At(c, r int) dict.OID {
	if b.Sel != nil {
		return b.Cols[c][b.Sel[r]]
	}
	return b.Cols[c][r]
}

// Reset truncates the batch to zero rows, keeping capacity and
// reclaiming the owned arrays if a producer lent views.
func (b *Batch) Reset() {
	if b.borrowed {
		for i := range b.own {
			b.Cols[i] = b.own[i][:0]
		}
		b.borrowed = false
	} else {
		for i := range b.Cols {
			b.Cols[i] = b.Cols[i][:0]
			b.own[i] = b.Cols[i]
		}
	}
	b.Sel = nil
}

// SetViews lends column views (with an optional selection vector) to the
// batch in place of its owned arrays; they remain valid until the next
// Reset. cols must match Vars positionally.
func (b *Batch) SetViews(sel []int32, cols ...[]dict.OID) {
	copy(b.Cols, cols)
	b.Sel = sel
	b.borrowed = true
}

// Full reports that the batch reached its target capacity.
func (b *Batch) Full() bool { return b.Len() >= BatchRows }

// AppendRow adds one row; vals must match Vars. Only valid on owned
// (non-view) fills.
func (b *Batch) AppendRow(vals ...dict.OID) {
	for i, v := range vals {
		b.Cols[i] = append(b.Cols[i], v)
	}
}

// gatherSel appends the selected rows of col to dst — the one gather
// loop shared by every materialization point.
func gatherSel(dst, col []dict.OID, sel []int32) []dict.OID {
	for _, k := range sel {
		dst = append(dst, col[k])
	}
	return dst
}

// AppendToCols gathers the batch's logical rows onto dst column-wise —
// a bulk append per column when no selection is active. dst must have
// the batch's arity.
func (b *Batch) AppendToCols(dst [][]dict.OID) {
	for i, col := range b.Cols {
		if b.Sel == nil {
			dst[i] = append(dst[i], col...)
			continue
		}
		dst[i] = gatherSel(dst[i], col, b.Sel)
	}
}

// CopyRel materializes the batch's logical rows into a fresh relation.
func (b *Batch) CopyRel() *Rel {
	out := NewRel(b.Vars...)
	n := b.Len()
	for i := range out.Cols {
		out.Cols[i] = make([]dict.OID, 0, n)
	}
	b.AppendToCols(out.Cols)
	return out
}

// Materialize gathers any active selection into the batch's owned
// arrays, leaving it dense (Sel == nil).
func (b *Batch) Materialize() {
	if b.Sel == nil {
		return
	}
	for i := range b.own {
		out := gatherSel(b.own[i][:0], b.Cols[i], b.Sel)
		b.own[i] = out
		b.Cols[i] = out
	}
	b.Sel = nil
	b.borrowed = false
}

// asRel returns a Rel header over the batch's logical rows, gathering
// through Sel first when a selection is active (no copy otherwise).
// Valid until the next Reset/append cycle.
func (b *Batch) asRel() *Rel {
	b.Materialize()
	return &Rel{Vars: b.Vars, Cols: b.Cols}
}

// Operator is a pull-based vectorized plan operator. The contract:
// Open prepares state (and may start workers); Next fills the batch with
// the next rows and reports whether it produced any — false means the
// stream is exhausted; Close releases resources and may be called before
// exhaustion (early termination, e.g. LIMIT). Open/Close are called at
// most once.
type Operator interface {
	// Vars lists the output columns, available before Open.
	Vars() []string
	Open(ctx *Ctx) error
	Next(b *Batch) bool
	Close()
}

// Drain pulls an operator to completion into a materialized relation —
// the adapter that keeps the operator-at-a-time API (and everything built
// on it: Explain samples, tests, aggregation) working over the streaming
// engine.
func Drain(ctx *Ctx, op Operator) *Rel {
	out := NewRel(op.Vars()...)
	if err := op.Open(ctx); err != nil {
		return out
	}
	defer op.Close()
	b := NewBatch(op.Vars())
	for {
		if ctx.Cancelled() {
			return out
		}
		b.Reset()
		if !op.Next(b) {
			return out
		}
		// charge the materialized cells against the query's budget; on
		// exhaustion record the failure and stop draining (callers poll
		// ctx or StopErr to notice)
		if err := ctx.Mem.Grow(int64(b.Len()*len(out.Cols)) * 8); err != nil {
			ctx.Fail(err)
			return out
		}
		b.AppendToCols(out.Cols)
	}
}

// relCursor streams a materialized relation in batches.
type relCursor struct {
	rel *Rel
	off int
}

func (c *relCursor) fill(b *Batch) bool {
	n := c.rel.Len() - c.off
	if n <= 0 {
		return false
	}
	room := BatchRows - b.Len()
	if n > room {
		n = room
	}
	for i := range c.rel.Cols {
		b.Cols[i] = append(b.Cols[i], c.rel.Cols[i][c.off:c.off+n]...)
	}
	c.off += n
	return true
}

// RelSource streams an already materialized relation.
type RelSource struct {
	rel *Rel
	cur relCursor
}

// NewRelSource wraps rel as an operator.
func NewRelSource(rel *Rel) *RelSource { return &RelSource{rel: rel} }

func (s *RelSource) Vars() []string      { return s.rel.Vars }
func (s *RelSource) Open(ctx *Ctx) error { s.cur = relCursor{rel: s.rel}; return nil }
func (s *RelSource) Next(b *Batch) bool  { return s.cur.fill(b) }
func (s *RelSource) Close()              {}

// LazyOp defers a materializing evaluation until first pull — used for
// operators that are inherently whole-input (the irregular residual,
// generic triple scans) so they cost nothing when an upstream LIMIT stops
// before reaching them.
type LazyOp struct {
	vars []string
	f    func(*Ctx) *Rel
	ctx  *Ctx
	cur  *relCursor
}

// NewLazyOp builds a lazily materialized operator.
func NewLazyOp(vars []string, f func(*Ctx) *Rel) *LazyOp {
	return &LazyOp{vars: vars, f: f}
}

func (s *LazyOp) Vars() []string      { return s.vars }
func (s *LazyOp) Open(ctx *Ctx) error { s.ctx = ctx; return nil }
func (s *LazyOp) Next(b *Batch) bool {
	if s.cur == nil {
		s.cur = &relCursor{rel: s.f(s.ctx)}
	}
	return s.cur.fill(b)
}
func (s *LazyOp) Close() {}

// MapOp applies a chunkwise Rel transformation to every input batch: the
// vectorized form of the materialized operators (Filter, RDFJoin,
// EqSelect) that map one relation to another row-locally. One input batch
// may expand to more than one output batch (joins) or shrink to zero
// (filters); MapOp buffers the expansion and keeps pulling on shrink.
type MapOp struct {
	in   Operator
	vars []string
	f    func(ctx *Ctx, chunk *Rel) *Rel

	ctx     *Ctx
	inBatch *Batch
	pending relCursor
}

// NewMapOp builds a chunk-transforming operator with the given output
// schema.
func NewMapOp(in Operator, vars []string, f func(*Ctx, *Rel) *Rel) *MapOp {
	return &MapOp{in: in, vars: vars, f: f}
}

func (m *MapOp) Vars() []string { return m.vars }

func (m *MapOp) Open(ctx *Ctx) error {
	m.ctx = ctx
	m.inBatch = NewBatch(m.in.Vars())
	return m.in.Open(ctx)
}

func (m *MapOp) Next(b *Batch) bool {
	for {
		if m.pending.rel != nil && m.pending.fill(b) {
			return true
		}
		m.inBatch.Reset()
		if !m.in.Next(m.inBatch) {
			return false
		}
		m.pending = relCursor{rel: m.f(m.ctx, m.inBatch.asRel())}
	}
}

func (m *MapOp) Close() { m.in.Close() }

// UnionOp concatenates child streams, aligning each child's columns to
// the output schema by variable name (missing columns yield Nil).
type UnionOp struct {
	vars     []string
	children []Operator

	ctx      *Ctx
	i        int
	open     bool
	perm     []int
	identity bool
	child    *Batch
}

// NewUnionOp builds a concatenating union with the given output schema.
func NewUnionOp(vars []string, children ...Operator) *UnionOp {
	return &UnionOp{vars: vars, children: children}
}

func (u *UnionOp) Vars() []string      { return u.vars }
func (u *UnionOp) Open(ctx *Ctx) error { u.ctx = ctx; return nil }

func (u *UnionOp) Next(b *Batch) bool {
	for u.i < len(u.children) {
		c := u.children[u.i]
		if !u.open {
			if err := c.Open(u.ctx); err != nil {
				u.i++
				continue
			}
			u.open = true
			u.perm = make([]int, len(u.vars))
			cv := c.Vars()
			u.identity = len(cv) == len(u.vars)
			for k, v := range u.vars {
				u.perm[k] = -1
				for ci, w := range cv {
					if w == v {
						u.perm[k] = ci
						break
					}
				}
				if u.perm[k] != k {
					u.identity = false
				}
			}
			u.child = NewBatch(cv)
		}
		u.child.Reset()
		if !c.Next(u.child) {
			c.Close()
			u.open = false
			u.i++
			continue
		}
		if u.identity && b.Len() == 0 {
			// Schema-aligned child: forward its views (and selection)
			// without gathering — the common RDFscan-under-union shape.
			b.SetViews(u.child.Sel, u.child.Cols...)
			return true
		}
		n := u.child.Len()
		for k, p := range u.perm {
			if p < 0 {
				for r := 0; r < n; r++ {
					b.Cols[k] = append(b.Cols[k], dict.Nil)
				}
				continue
			}
			col := u.child.Cols[p]
			if u.child.Sel == nil {
				b.Cols[k] = append(b.Cols[k], col...)
				continue
			}
			b.Cols[k] = gatherSel(b.Cols[k], col, u.child.Sel)
		}
		return true
	}
	return false
}

func (u *UnionOp) Close() {
	if u.open && u.i < len(u.children) {
		u.children[u.i].Close()
		u.open = false
	}
	// children beyond i were never opened
}
