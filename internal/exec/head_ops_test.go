package exec

import (
	"fmt"
	"strings"
	"testing"

	"srdf/internal/sparql"
)

// headQueries are query heads exercising every streaming head operator;
// the WHERE clause is the two-property star of bigSrc.
var headQueries = []string{
	`PREFIX e: <http://b/> SELECT ?s ?va WHERE { ?s e:a ?va . ?s e:b ?vb . }`,
	`PREFIX e: <http://b/> SELECT DISTINCT ?vb WHERE { ?s e:a ?va . ?s e:b ?vb . }`,
	`PREFIX e: <http://b/> SELECT DISTINCT ?vb WHERE { ?s e:a ?va . ?s e:b ?vb . } ORDER BY ?vb`,
	`PREFIX e: <http://b/> SELECT ?vb (COUNT(*) AS ?n) (SUM(?va) AS ?sum) (MIN(?va) AS ?lo) (MAX(?va) AS ?hi) (AVG(?va) AS ?avg) WHERE { ?s e:a ?va . ?s e:b ?vb . } GROUP BY ?vb`,
	`PREFIX e: <http://b/> SELECT ?vb (COUNT(DISTINCT ?va) AS ?nd) WHERE { ?s e:a ?va . ?s e:b ?vb . } GROUP BY ?vb ORDER BY DESC(?nd) ?vb`,
	`PREFIX e: <http://b/> SELECT (SUM(?va) AS ?sum) (COUNT(*) AS ?n) WHERE { ?s e:a ?va . ?s e:b ?vb . }`,
	`PREFIX e: <http://b/> SELECT ?s ?va WHERE { ?s e:a ?va . ?s e:b ?vb . FILTER (?va > 500) } ORDER BY DESC(?va) ?s LIMIT 7`,
	`PREFIX e: <http://b/> SELECT ?vb (SUM(?va) AS ?sum) WHERE { ?s e:a ?va . ?s e:b ?vb . } GROUP BY ?vb ORDER BY DESC(?sum) LIMIT 5 OFFSET 3`,
	`PREFIX e: <http://b/> SELECT DISTINCT ?vb WHERE { ?s e:a ?va . ?s e:b ?vb . } ORDER BY ?vb LIMIT 4 OFFSET 2`,
}

func bigStar(f *fixture) Star {
	return Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://b/a"), ObjVar: "va"},
		{Pred: f.pred("http://b/b"), ObjVar: "vb"},
	}}
}

func resultText(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Fprintf(&b, "%d|%s\t", v.Kind, v.Lexical())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestStreamHeadMatchesMaterializedHead runs every head shape through
// the streaming operators and demands row-identical output to the PR-1
// materializing reference head over the same scan.
func TestStreamHeadMatchesMaterializedHead(t *testing.T) {
	f := newFixture(t, bigSrc(4000), 3)
	star := bigStar(f)
	tab := bigTable(t, f)
	for qi, src := range headQueries {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Head(f.ctx, Drain(f.ctx, NewScanOp(tab, star, false, 0, -1)), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q)
		if err != nil {
			t.Fatal(err)
		}
		if resultText(got) != resultText(want) {
			t.Errorf("q%d: streaming head diverged from materialized head\nquery: %s\ngot:\n%s\nwant:\n%s",
				qi, src, resultText(got), resultText(want))
		}
	}
}

// TestParallelAggregateMatchesSequential asserts the parallel
// partial-aggregation path is row-identical (values and group order) to
// the sequential fold.
func TestParallelAggregateMatchesSequential(t *testing.T) {
	f := newFixture(t, bigSrc(9000), 3)
	star := bigStar(f)
	tab := bigTable(t, f)
	pctx := *f.ctx
	pctx.Parallelism = 4
	for qi, src := range headQueries {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HeadStream(&pctx, NewScanOp(tab, star, false, 0, -1), q)
		if err != nil {
			t.Fatal(err)
		}
		if resultText(got) != resultText(want) {
			t.Errorf("q%d: parallel aggregation diverged from sequential\nquery: %s\ngot:\n%s\nwant:\n%s",
				qi, src, resultText(got), resultText(want))
		}
	}
}

// TestSortOpTopKBound proves ORDER BY + LIMIT holds at most
// LIMIT+OFFSET rows of sort state while returning exactly the stable
// full-sort prefix.
func TestSortOpTopKBound(t *testing.T) {
	f := newFixture(t, bigSrc(6000), 3)
	star := bigStar(f)
	tab := bigTable(t, f)
	src := `PREFIX e: <http://b/> SELECT ?s ?va WHERE { ?s e:a ?va . ?s e:b ?vb . } ORDER BY ?va DESC(?s)`
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}

	full, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q)
	if err != nil {
		t.Fatal(err)
	}
	const limit, offset = 10, 5
	proj := NewProjectOp(NewScanOp(tab, star, false, 0, -1), SelectItems(q, star.Vars()))
	topk := NewSortOp(proj, q.OrderBy, limit+offset)
	got := StreamVal(f.ctx, topk, limit, offset).Collect()

	if got.Len() != limit {
		t.Fatalf("top-k rows = %d, want %d", got.Len(), limit)
	}
	wantRows := full.Rows[offset : offset+limit]
	for i := range got.Rows {
		if resultText(&Result{Rows: got.Rows[i : i+1]}) != resultText(&Result{Rows: wantRows[i : i+1]}) {
			t.Fatalf("row %d: top-k diverged from full sort prefix", i)
		}
	}
	if topk.MaxHeld() > limit+offset {
		t.Fatalf("sort held %d rows, want <= %d", topk.MaxHeld(), limit+offset)
	}
	if topk.MaxHeld() == 0 {
		t.Fatal("sort held no rows")
	}

	// the unbounded sort really does hold everything (the contrast)
	proj2 := NewProjectOp(NewScanOp(tab, star, false, 0, -1), SelectItems(q, star.Vars()))
	fullSort := NewSortOp(proj2, q.OrderBy, -1)
	_ = StreamVal(f.ctx, fullSort, -1, -1).Collect()
	if fullSort.MaxHeld() != full.Len() {
		t.Fatalf("full sort held %d rows, want %d", fullSort.MaxHeld(), full.Len())
	}
}

// TestDistinctOpHoldsKeysNotRows checks the streaming DISTINCT dedups
// across batch boundaries.
func TestDistinctOpHoldsKeysNotRows(t *testing.T) {
	f := newFixture(t, bigSrc(5000), 3)
	star := bigStar(f)
	tab := bigTable(t, f)
	q, err := sparql.Parse(`PREFIX e: <http://b/> SELECT DISTINCT ?vb WHERE { ?s e:a ?va . ?s e:b ?vb . }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 89 { // i%89 values
		t.Fatalf("distinct rows = %d, want 89", res.Len())
	}
}

// TestAggregateEmptyInputStreaming mirrors the materialized head's
// empty-input aggregate edge case.
func TestAggregateEmptyInputStreaming(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	q, err := sparql.Parse(`PREFIX e: <http://s/> SELECT (SUM(?p) AS ?tot) (COUNT(*) AS ?n) WHERE { ?s e:price ?p . }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HeadStream(f.ctx, NewRelSource(NewRel("p")), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Int != 0 || res.Rows[0][1].Int != 0 {
		t.Fatalf("empty streaming aggregate: %v", res)
	}
}

// TestValidateOrderKeys covers the plan-time ORDER BY validation.
func TestValidateOrderKeys(t *testing.T) {
	vars := []string{"a", "b"}
	ok := []sparql.OrderKey{{Expr: &sparql.ExVar{Name: "a"}}, {Expr: &sparql.ExVar{Name: "b"}, Desc: true}}
	if err := ValidateOrderKeys(vars, ok); err != nil {
		t.Fatalf("valid keys rejected: %v", err)
	}
	bad := []sparql.OrderKey{{Expr: &sparql.ExVar{Name: "zzz"}}}
	if err := ValidateOrderKeys(vars, bad); err == nil {
		t.Fatal("unknown column accepted")
	}
	agg := []sparql.OrderKey{{Expr: &sparql.ExAgg{Func: sparql.AggCount}}}
	if err := ValidateOrderKeys(vars, agg); err == nil {
		t.Fatal("aggregate order key accepted")
	}
}
