package exec

import (
	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// VBatch is one vector of decoded result rows flowing through the query
// head: a column of typed values per output name, at most BatchRows rows.
// Where the BGP pipeline exchanges OID batches, the head operators
// (Project, Aggregate, Distinct, Sort) exchange value batches, so
// solution modifiers run inside the vectorized pipeline instead of over
// a materialized result.
type VBatch struct {
	Vars []string
	Cols [][]dict.Value
}

// NewVBatch allocates an empty value batch with capacity BatchRows.
func NewVBatch(vars []string) *VBatch {
	b := &VBatch{Vars: vars, Cols: make([][]dict.Value, len(vars))}
	for i := range b.Cols {
		b.Cols[i] = make([]dict.Value, 0, BatchRows)
	}
	return b
}

// Len returns the row count.
func (b *VBatch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// Reset truncates the batch to zero rows, keeping capacity.
func (b *VBatch) Reset() {
	for i := range b.Cols {
		b.Cols[i] = b.Cols[i][:0]
	}
}

// AppendRow adds one row; vals must match Vars.
func (b *VBatch) AppendRow(vals ...dict.Value) {
	for i, v := range vals {
		b.Cols[i] = append(b.Cols[i], v)
	}
}

// Row copies row i into dst.
func (b *VBatch) Row(i int, dst []dict.Value) []dict.Value {
	dst = dst[:0]
	for _, c := range b.Cols {
		dst = append(dst, c[i])
	}
	return dst
}

// ValOperator is a pull-based operator over decoded value batches — the
// head-side mirror of Operator. The contract is identical: Open prepares
// state, Next fills the batch and reports whether it produced rows, and
// Close releases resources and may arrive before exhaustion (LIMIT).
type ValOperator interface {
	// Vars lists the output columns, available before Open.
	Vars() []string
	Open(ctx *Ctx) error
	Next(b *VBatch) bool
	Close()
}

// vrowsCursor streams materialized value rows in batches.
type vrowsCursor struct {
	rows [][]dict.Value
	off  int
}

func (c *vrowsCursor) fill(b *VBatch) bool {
	n := len(c.rows) - c.off
	if n <= 0 {
		return false
	}
	room := BatchRows - b.Len()
	if n > room {
		n = room
	}
	for i := 0; i < n; i++ {
		row := c.rows[c.off+i]
		for ci := range b.Cols {
			b.Cols[ci] = append(b.Cols[ci], row[ci])
		}
	}
	c.off += n
	return n > 0
}

// ProjectOp evaluates the query's select expressions over each input
// batch, turning OID batches into decoded value batches — the streaming
// projection at the boundary between the BGP pipeline and the head.
type ProjectOp struct {
	in    Operator
	items []sparql.SelectItem
	vars  []string
	// budget caps the rows ever evaluated (-1 = unlimited). When the
	// head is a bare projection under a LIMIT, only LIMIT+OFFSET rows
	// are needed, so decoding the rest of a pulled batch is pure waste.
	budget int

	ctx     *Ctx
	inBatch *Batch
	env     *evalEnv
}

// NewProjectOp builds a streaming projection of items over in.
func NewProjectOp(in Operator, items []sparql.SelectItem) *ProjectOp {
	vars := make([]string, len(items))
	for i := range items {
		vars[i] = items[i].As
	}
	return &ProjectOp{in: in, items: items, vars: vars, budget: -1}
}

// SetRowBound caps the total rows the projection evaluates; only valid
// when no downstream modifier needs more input rows than the bound.
func (p *ProjectOp) SetRowBound(n int) { p.budget = n }

// SelectItems resolves a query's projection list against the pipeline's
// output variables, expanding SELECT *.
func SelectItems(q *sparql.Query, vars []string) []sparql.SelectItem {
	if !q.SelectAll {
		return q.Select
	}
	items := make([]sparql.SelectItem, 0, len(vars))
	for _, v := range vars {
		items = append(items, sparql.SelectItem{Expr: &sparql.ExVar{Name: v}, As: v})
	}
	return items
}

func (p *ProjectOp) Vars() []string { return p.vars }

func (p *ProjectOp) Open(ctx *Ctx) error {
	p.ctx = ctx
	p.inBatch = NewBatch(p.in.Vars())
	return p.in.Open(ctx)
}

func (p *ProjectOp) Next(b *VBatch) bool {
	if p.budget == 0 {
		return false
	}
	p.inBatch.Reset()
	if !p.in.Next(p.inBatch) {
		return false
	}
	// Evaluate over the batch's physical columns through its selection
	// vector — filtered-out rows are never decoded, and view batches are
	// never gathered.
	if p.env == nil {
		p.env = newEvalEnv(p.ctx, &Rel{Vars: p.inBatch.Vars})
	}
	p.env.rel.Cols = p.inBatch.Cols
	n := p.inBatch.Len()
	if p.budget >= 0 && n > p.budget {
		n = p.budget
	}
	if p.budget > 0 {
		p.budget -= n
	}
	for i := 0; i < n; i++ {
		if p.inBatch.Sel != nil {
			p.env.row = int(p.inBatch.Sel[i])
		} else {
			p.env.row = i
		}
		for c := range p.items {
			b.Cols[c] = append(b.Cols[c], p.env.evalValue(p.items[c].Expr))
		}
	}
	return true
}

func (p *ProjectOp) Close() { p.in.Close() }

// DistinctOp streams DISTINCT: a hash set of row keys filters each batch
// as it flows past. Only the key set is retained — never the rows — so
// memory is bounded by the number of distinct results, and a downstream
// LIMIT still terminates the pipeline early.
type DistinctOp struct {
	in ValOperator

	ctx  *Ctx
	seen map[string]bool
	inb  *VBatch
	row  []dict.Value
}

// NewDistinctOp builds a streaming duplicate filter over in.
func NewDistinctOp(in ValOperator) *DistinctOp { return &DistinctOp{in: in} }

func (d *DistinctOp) Vars() []string { return d.in.Vars() }

func (d *DistinctOp) Open(ctx *Ctx) error {
	d.ctx = ctx
	d.seen = make(map[string]bool)
	d.inb = NewVBatch(d.in.Vars())
	return d.in.Open(ctx)
}

func (d *DistinctOp) Next(b *VBatch) bool {
	for {
		d.inb.Reset()
		if !d.in.Next(d.inb) {
			return false
		}
		for i := 0; i < d.inb.Len(); i++ {
			d.row = d.inb.Row(i, d.row)
			k := distinctKey(d.row)
			if d.seen[k] {
				continue
			}
			// the key set is the operator's only retained state
			if err := d.ctx.Mem.Grow(int64(len(k)) + 48); err != nil {
				d.ctx.Fail(err)
				return false
			}
			d.seen[k] = true
			b.AppendRow(d.row...)
		}
		if b.Len() > 0 {
			return true
		}
	}
}

func (d *DistinctOp) Close() { d.in.Close() }
