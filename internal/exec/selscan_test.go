package exec

import (
	"math/rand"
	"testing"

	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/relational"
	"srdf/internal/sparql"
)

// synthTable builds a standalone CS table with sealed columns from raw
// value vectors (dict.Nil = NULL), bypassing the organize pipeline so
// scans can be tested against exact per-block layouts.
func synthTable(name string, base uint64, cols map[dict.OID][]dict.OID) *relational.Table {
	t := &relational.Table{Name: name, Base: base}
	for pred, vals := range cols {
		t.Count = len(vals)
		c := colstore.NewColumn(name, len(vals), nil)
		for i, v := range vals {
			if v != dict.Nil {
				c.Set(i, v)
			}
		}
		c.Seal()
		t.Cols = append(t.Cols, &relational.Col{
			Prop: &cs.PropStat{Pred: pred, Name: name},
			Data: c,
		})
	}
	return t
}

// refScan is the row-at-a-time reference the selection-vector scan must
// match exactly.
func refScan(t *relational.Table, star Star, rowLo, rowHi int) *Rel {
	if rowHi < 0 || rowHi > t.Count {
		rowHi = t.Count
	}
	if rowLo < 0 {
		rowLo = 0
	}
	cols := make([][]dict.OID, len(star.Props))
	for i := range star.Props {
		cols[i] = t.Col(star.Props[i].Pred).Data.Values()
	}
	rel := NewRel(star.Vars()...)
	row := make([]dict.OID, 0, len(rel.Vars))
	for r := rowLo; r < rowHi; r++ {
		ok := true
		for i := range cols {
			v := cols[i][r]
			if v == dict.Nil || !star.Props[i].matches(v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row = row[:0]
		row = append(row, t.SubjectOID(r))
		for i := range cols {
			if star.Props[i].ObjVar != "" {
				row = append(row, cols[i][r])
			}
		}
		rel.AppendRow(row...)
	}
	return rel
}

func relsEqual(a, b *Rel) bool {
	if a.Len() != b.Len() || len(a.Cols) != len(b.Cols) {
		return false
	}
	for c := range a.Cols {
		for i := range a.Cols[c] {
			if a.Cols[c][i] != b.Cols[c][i] {
				return false
			}
		}
	}
	return true
}

// TestScanSelectionParity drives the compressed-segment scan through
// equality, range, presence and windowed shapes — including predicates
// straddling block boundaries, all-NULL blocks and a single-row tail —
// and checks row-identical output against the reference scan, with and
// without zone maps and under parallelism.
func TestScanSelectionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 3*colstore.BlockRows + 1 // ragged single-row tail block
	pa, pb := dict.ResourceOID(900001), dict.ResourceOID(900002)
	va := make([]dict.OID, n) // RLE-ish: sorted runs; block 1 all NULL
	vb := make([]dict.OID, n) // dict/plain-ish: scattered low-cardinality with NULLs
	for i := range va {
		if i/colstore.BlockRows == 1 {
			continue // all-NULL block
		}
		va[i] = dict.LiteralOID(uint64(1 + i/97))
	}
	for i := range vb {
		if rng.Intn(10) == 0 {
			continue // NULL
		}
		vb[i] = dict.LiteralOID(uint64(1 + rng.Intn(30)))
	}
	tab := synthTable("synth", 1, map[dict.OID][]dict.OID{pa: va, pb: vb})

	straddle := dict.LiteralOID(uint64(1 + (colstore.BlockRows-1)/97)) // run crossing block 0→... boundary region
	stars := map[string]Star{
		"presence": {SubjVar: "s", Props: []StarProp{
			{Pred: pa, ObjVar: "a"}, {Pred: pb, ObjVar: "b"},
		}},
		"eq": {SubjVar: "s", Props: []StarProp{
			{Pred: pa, ObjConst: straddle},
			{Pred: pb, ObjVar: "b"},
		}},
		"range-straddling-blocks": {SubjVar: "s", Props: []StarProp{
			{Pred: pa, ObjVar: "a", HasRange: true,
				Lo: dict.LiteralOID(uint64(colstore.BlockRows/97 - 1)), Hi: dict.LiteralOID(uint64(2*colstore.BlockRows/97 + 2))},
		}},
		"selective-eq": {SubjVar: "s", Props: []StarProp{
			{Pred: pb, ObjVar: "b", ObjConst: dict.LiteralOID(7)},
		}},
		"empty-range": {SubjVar: "s", Props: []StarProp{
			{Pred: pa, ObjVar: "a", HasRange: true, Lo: 1, Hi: 0},
		}},
	}
	windows := [][2]int{{0, -1}, {13, 2*colstore.BlockRows + 5}, {colstore.BlockRows, colstore.BlockRows + 1}}
	for name, star := range stars {
		for _, w := range windows {
			want := refScan(tab, star, w[0], w[1])
			for _, zones := range []bool{false, true} {
				for _, par := range []int{1, 4} {
					ctx := &Ctx{Parallelism: par}
					got := Drain(ctx, NewScanOp(tab, star, zones, w[0], w[1]))
					if !relsEqual(got, want) {
						t.Errorf("%s window=%v zones=%v par=%d: got %d rows, want %d",
							name, w, zones, par, got.Len(), want.Len())
					}
				}
			}
		}
	}
}

// TestBatchSelViews exercises the selection-vector batch contract:
// lent views, logical accessors, gathers, and Reset reclaiming owned
// arrays.
func TestBatchSelViews(t *testing.T) {
	b := NewBatch([]string{"x", "y"})
	x := []dict.OID{10, 11, 12, 13}
	y := []dict.OID{20, 21, 22, 23}
	b.SetViews([]int32{1, 3}, x, y)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if b.At(0, 0) != 11 || b.At(1, 1) != 23 {
		t.Fatalf("At through Sel wrong: %v %v", b.At(0, 0), b.At(1, 1))
	}
	rel := b.CopyRel()
	if rel.Len() != 2 || rel.Cols[0][0] != 11 || rel.Cols[1][1] != 23 {
		t.Fatalf("CopyRel = %+v", rel.Cols)
	}
	b.Materialize()
	if b.Sel != nil || b.Len() != 2 || b.Cols[0][1] != 13 {
		t.Fatalf("Materialize wrong: sel=%v cols=%v", b.Sel, b.Cols)
	}
	if &b.Cols[0][0] == &x[1] {
		t.Fatal("Materialize left a borrowed view in place")
	}
	// dense views (no Sel) append bulk
	b.Reset()
	b.SetViews(nil, x, y)
	out := NewRel("x", "y")
	b.AppendToCols(out.Cols)
	if out.Len() != 4 || out.Cols[1][2] != 22 {
		t.Fatalf("dense AppendToCols = %+v", out.Cols)
	}
	// Reset must restore owned arrays: appends may not write into views
	b.Reset()
	b.AppendRow(1, 2)
	if x[0] != 10 || b.Cols[0][0] != 1 {
		t.Fatal("Reset did not reclaim owned arrays")
	}
}

// TestFilterOpSelection checks that the streaming selection-vector
// filter matches the materialized Filter, over both a dense source and
// a view-lending scan (selection composed on selection).
func TestFilterOpSelection(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	star := shopStar(f)
	q, err := sparql.Parse(`PREFIX e: <http://s/> SELECT ?s WHERE { ?s e:price ?p . FILTER (?p > 25 && ?p != 40) }`)
	if err != nil {
		t.Fatal(err)
	}
	var tab *relational.Table
	for _, tt := range f.cat.Visible() {
		if tt.Count == 5 {
			tab = tt
		}
	}
	if tab == nil {
		t.Fatal("product table not found")
	}
	want := Filter(f.ctx, Drain(f.ctx, NewScanOp(tab, star, false, 0, -1)), q.Filters[0])
	// dense source: filter over a materialized relation stream
	dense := Drain(f.ctx, NewFilterOp(NewRelSource(Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))), q.Filters[0]))
	if !relsEqual(dense, want) {
		t.Errorf("dense filter: got %d rows, want %d", dense.Len(), want.Len())
	}
	// view source: filter composes its selection onto the scan's views
	lazy := Drain(f.ctx, NewFilterOp(NewScanOp(tab, star, false, 0, -1), q.Filters[0]))
	if !relsEqual(lazy, want) {
		t.Errorf("scan filter: got %d rows, want %d", lazy.Len(), want.Len())
	}
	if want.Len() != 2 {
		t.Errorf("filter rows = %d, want 2", want.Len())
	}
}
