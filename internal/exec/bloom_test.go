package exec

import (
	"testing"

	"srdf/internal/dict"
)

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	f := NewBloomFilter(1000)
	for i := 0; i < 1000; i++ {
		f.Add(dict.ResourceOID(uint64(i * 3)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(dict.ResourceOID(uint64(i * 3))) {
			t.Fatalf("false negative for added key %d", i*3)
		}
	}
}

func TestBloomFilterRejectsMost(t *testing.T) {
	f := NewBloomFilter(1000)
	for i := 0; i < 1000; i++ {
		f.Add(dict.ResourceOID(uint64(i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(dict.ResourceOID(uint64(1_000_000 + i))) {
			fp++
		}
	}
	// 10 bits/key with 2 probes sits well under a 10% false-positive
	// rate; 20% here would mean the hash mixing is broken.
	if fp > probes/5 {
		t.Fatalf("%d/%d false positives", fp, probes)
	}
}

func TestBloomHandleUnpublished(t *testing.T) {
	h := &BloomHandle{Var: "x"}
	if h.Filter() != nil {
		t.Fatal("unpublished handle must return nil filter")
	}
	f := NewBloomFilter(10)
	f.Add(dict.ResourceOID(7))
	h.publish(f)
	if got := h.Filter(); got == nil || !got.MayContain(dict.ResourceOID(7)) {
		t.Fatal("published filter not visible through handle")
	}
}
