package exec

import (
	"sync/atomic"
	"time"
)

// Per-operator runtime statistics. Every plan node wraps its operator in
// a StatsOp/StatsValOp keyed by a small per-plan node id; the counters
// land in the query's QueryStats hung off the forked Ctx, so concurrent
// executions of one cached plan never share counters. The wrappers are
// cheap enough to stay on for every query: a few atomic adds per
// 1024-row batch, wall time sampled one batch in four, no allocation on
// the pull path.

// timeSampleMask selects which Next calls are timed: batches where
// seq&mask == 1, i.e. the first call and every fourth after it. The
// first call is always sampled so short queries still get a reading.
const timeSampleMask = 3

// OpStats accumulates one operator's runtime counters. All fields are
// atomics: morsel-parallel scans funnel through their consumer, but the
// parallel aggregate pulls its input from worker goroutines.
type OpStats struct {
	// Rows counts rows emitted (after selection vectors).
	Rows atomic.Int64
	// Batches counts Next calls, the final exhausted one included.
	Batches atomic.Int64
	// OpenNS is wall time spent in Open — where materializing
	// operators (hash build, sort) do their heavy lifting.
	OpenNS atomic.Int64
	// SampledNS/Sampled are the timed subset of Next calls; Time
	// extrapolates them over all batches.
	SampledNS atomic.Int64
	Sampled   atomic.Int64
}

// RowsOut returns the rows emitted so far.
func (s *OpStats) RowsOut() int64 { return s.Rows.Load() }

// Time estimates the operator's inclusive wall time (children counted):
// full Open time plus sampled Next time scaled to the batch count.
func (s *OpStats) Time() time.Duration {
	ns := s.OpenNS.Load()
	if n := s.Sampled.Load(); n > 0 {
		ns += s.SampledNS.Load() * s.Batches.Load() / n
	}
	return time.Duration(ns)
}

// QueryStats is the per-query stats tree: one OpStats per plan node,
// indexed by the node's 1-based stats id.
type QueryStats struct {
	nodes []OpStats
}

// NewQueryStats sizes a stats tree for nodes ids 1..n.
func NewQueryStats(n int) *QueryStats {
	return &QueryStats{nodes: make([]OpStats, n+1)}
}

// Node returns the slot for a stats id, or nil when the receiver is nil
// or the id was never assigned (reference executions outside a built
// plan pass id 0).
func (q *QueryStats) Node(id int) *OpStats {
	if q == nil || id <= 0 || id >= len(q.nodes) {
		return nil
	}
	return &q.nodes[id]
}

// Package-wide executor totals, exported to the metrics registry.
var (
	scanRowsTotal atomic.Int64
	pipelineNS    atomic.Int64
)

// ScanRowsTotal is the cumulative count of rows produced by leaf scans
// (RDFscan, star self-join, triple scan) across all queries.
func ScanRowsTotal() int64 { return scanRowsTotal.Load() }

// PipelineSecondsTotal is the cumulative wall time query pipelines spent
// executing, open to close.
func PipelineSecondsTotal() float64 { return float64(pipelineNS.Load()) / 1e9 }

// StatsOp wraps an OID-level operator with runtime accounting.
type StatsOp struct {
	in   Operator
	id   int
	scan bool // leaf scan: rows feed ScanRowsTotal

	st      *OpStats
	local   OpStats // fallback when the Ctx carries no QueryStats
	flushed bool
}

// NewStatsOp wraps in with accounting under stats id. scan marks leaf
// scans whose output rows feed the global scan-rows counter.
func NewStatsOp(id int, scan bool, in Operator) *StatsOp {
	return &StatsOp{in: in, id: id, scan: scan}
}

func (s *StatsOp) Vars() []string { return s.in.Vars() }

func (s *StatsOp) Open(ctx *Ctx) error {
	if st := ctx.Stats.Node(s.id); st != nil {
		s.st = st
	} else {
		s.local = OpStats{}
		s.st = &s.local
	}
	start := time.Now()
	err := s.in.Open(ctx)
	s.st.OpenNS.Add(time.Since(start).Nanoseconds())
	return err
}

func (s *StatsOp) Next(b *Batch) bool {
	st := s.st
	if st.Batches.Add(1)&timeSampleMask == 1 {
		start := time.Now()
		ok := s.in.Next(b)
		st.SampledNS.Add(time.Since(start).Nanoseconds())
		st.Sampled.Add(1)
		if ok {
			st.Rows.Add(int64(b.Len()))
		}
		return ok
	}
	ok := s.in.Next(b)
	if ok {
		st.Rows.Add(int64(b.Len()))
	}
	return ok
}

func (s *StatsOp) Close() {
	s.in.Close()
	if s.scan && !s.flushed && s.st != nil {
		s.flushed = true
		scanRowsTotal.Add(s.st.Rows.Load())
	}
}

// StatsValOp is StatsOp for the value-level head chain.
type StatsValOp struct {
	in ValOperator
	id int

	st    *OpStats
	local OpStats
}

// NewStatsValOp wraps a head operator with accounting under stats id.
func NewStatsValOp(id int, in ValOperator) *StatsValOp {
	return &StatsValOp{in: in, id: id}
}

func (s *StatsValOp) Vars() []string { return s.in.Vars() }

func (s *StatsValOp) Open(ctx *Ctx) error {
	if st := ctx.Stats.Node(s.id); st != nil {
		s.st = st
	} else {
		s.local = OpStats{}
		s.st = &s.local
	}
	start := time.Now()
	err := s.in.Open(ctx)
	s.st.OpenNS.Add(time.Since(start).Nanoseconds())
	return err
}

func (s *StatsValOp) Next(b *VBatch) bool {
	st := s.st
	if st.Batches.Add(1)&timeSampleMask == 1 {
		start := time.Now()
		ok := s.in.Next(b)
		st.SampledNS.Add(time.Since(start).Nanoseconds())
		st.Sampled.Add(1)
		if ok {
			st.Rows.Add(int64(b.Len()))
		}
		return ok
	}
	ok := s.in.Next(b)
	if ok {
		st.Rows.Add(int64(b.Len()))
	}
	return ok
}

func (s *StatsValOp) Close() { s.in.Close() }
