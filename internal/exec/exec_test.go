package exec

import (
	"strings"
	"testing"

	"srdf/internal/cluster"
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// fixture builds an organized store context from Turtle.
type fixture struct {
	d      *dict.Dictionary
	tb     *triples.Table
	idx    *triples.IndexSet
	schema *cs.Schema
	cat    *relational.Catalog
	ctx    *Ctx
	pool   *colstore.BufferPool
}

func newFixture(t testing.TB, src string, minSupport int) *fixture {
	t.Helper()
	ts, err := nt.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{d: dict.New(), tb: triples.NewTable(len(ts)), pool: colstore.NewPool(0)}
	for _, tr := range ts {
		f.tb.Append(f.d.Intern(tr.S), f.d.Intern(tr.P), f.d.Intern(tr.O))
	}
	opts := cs.DefaultOptions()
	opts.MinSupport = minSupport
	f.schema = cs.Discover(f.tb, f.d, opts)
	inf, err := cluster.Reorganize(f.tb, f.d, f.schema, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f.cat = relational.BuildCatalog(f.tb, f.d, f.schema, inf, f.pool)
	f.idx = triples.BuildAll(f.tb)
	f.ctx = &Ctx{Dict: f.d, Idx: f.idx, Cat: f.cat, Pool: f.pool}
	f.ctx.TrackProjections(f.idx)
	return f
}

func (f *fixture) pred(iri string) dict.OID {
	o, ok := f.d.Lookup(dict.IRI(iri))
	if !ok {
		panic("unknown pred " + iri)
	}
	return o
}

const shopSrc = `
@prefix e: <http://s/> .
e:p1 e:name "ant" ; e:price 10 ; e:cat e:c1 .
e:p2 e:name "bee" ; e:price 20 ; e:cat e:c1 .
e:p3 e:name "cow" ; e:price 30 ; e:cat e:c2 .
e:p4 e:name "dog" ; e:price 40 ; e:cat e:c2 .
e:p5 e:name "eel" ; e:price 50 ; e:cat e:c1 .
e:c1 e:label "tools" .
e:c2 e:label "toys" .
`

func shopStar(f *fixture) Star {
	return Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://s/name"), ObjVar: "n"},
		{Pred: f.pred("http://s/price"), ObjVar: "p"},
		{Pred: f.pred("http://s/cat"), ObjVar: "c"},
	}}
}

func TestDefaultStarMatchesRDFScan(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	star := shopStar(f)
	def := DefaultStar(f.ctx, star, f.idx)
	tab := f.cat.Visible()[0]
	if tab.Count != 5 {
		for _, tt := range f.cat.Visible() {
			if tt.Count == 5 {
				tab = tt
			}
		}
	}
	rdf := RDFScan(f.ctx, tab, star, false, 0, -1)
	if def.Len() != 5 || rdf.Len() != 5 {
		t.Fatalf("default=%d rdfscan=%d rows, want 5", def.Len(), rdf.Len())
	}
	// same subjects
	got := map[dict.OID]bool{}
	si := rdf.ColIdx("s")
	for i := 0; i < rdf.Len(); i++ {
		got[rdf.Cols[si][i]] = true
	}
	di := def.ColIdx("s")
	for i := 0; i < def.Len(); i++ {
		if !got[def.Cols[di][i]] {
			t.Fatalf("subject %v missing from RDFScan", def.Cols[di][i])
		}
	}
}

func TestDefaultStarWithConstSeed(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	c1, _ := f.d.Lookup(dict.IRI("http://s/c1"))
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://s/cat"), ObjConst: c1},
		{Pred: f.pred("http://s/name"), ObjVar: "n"},
	}}
	rel := DefaultStar(f.ctx, star, f.idx)
	if rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (c1 products)", rel.Len())
	}
	if rel.ColIdx("n") < 0 || rel.ColIdx("s") < 0 {
		t.Errorf("vars: %v", rel.Vars)
	}
}

func TestRDFScanRangePushdown(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	pricePred := f.pred("http://s/price")
	// literal OIDs are value ordered; find bounds for price in [20,40]
	lo, _ := f.d.LiteralCeil(dict.Value{Kind: dict.VInt, Int: 20}, false)
	hi, _ := f.d.LiteralFloor(dict.Value{Kind: dict.VInt, Int: 40}, false)
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: pricePred, ObjVar: "p", Lo: lo, Hi: hi, HasRange: true},
	}}
	var tab *relational.Table
	for _, tt := range f.cat.Visible() {
		if tt.Col(pricePred) != nil {
			tab = tt
		}
	}
	rel := RDFScan(f.ctx, tab, star, true, 0, -1)
	if rel.Len() != 3 {
		t.Fatalf("range scan rows = %d, want 3 (20,30,40)", rel.Len())
	}
}

func TestRDFScanNullsAreRejected(t *testing.T) {
	src := shopSrc + "e:p6 e:name \"fox\" ; e:cat e:c1 .\n" // no price
	f := newFixture(t, src, 3)
	star := shopStar(f)
	var tab *relational.Table
	for _, tt := range f.cat.Visible() {
		if tt.Col(f.pred("http://s/price")) != nil {
			tab = tt
		}
	}
	rel := RDFScan(f.ctx, tab, star, false, 0, -1)
	for i := 0; i < rel.Len(); i++ {
		if rel.Cols[rel.ColIdx("p")][i] == dict.Nil {
			t.Fatal("NULL price leaked through RDFScan")
		}
	}
}

func TestRDFJoinPositional(t *testing.T) {
	f := newFixture(t, shopSrc, 2)
	// seed: products with their category refs
	prodStar := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://s/cat"), ObjVar: "c"},
	}}
	var prodTab, catTab *relational.Table
	for _, tt := range f.cat.Visible() {
		if tt.Col(f.pred("http://s/cat")) != nil {
			prodTab = tt
		}
		if tt.Col(f.pred("http://s/label")) != nil {
			catTab = tt
		}
	}
	in := RDFScan(f.ctx, prodTab, prodStar, false, 0, -1)
	catStar := Star{SubjVar: "c", Props: []StarProp{
		{Pred: f.pred("http://s/label"), ObjVar: "l"},
	}}
	out := RDFJoin(f.ctx, in, "c", catTab, catStar, f.idx)
	if out.Len() != 5 {
		t.Fatalf("RDFJoin rows = %d, want 5", out.Len())
	}
	li := out.ColIdx("l")
	if li < 0 {
		t.Fatalf("label var missing: %v", out.Vars)
	}
	labels := map[string]int{}
	for i := 0; i < out.Len(); i++ {
		tm, _ := f.d.Term(out.Cols[li][i])
		labels[tm.Value]++
	}
	if labels["tools"] != 3 || labels["toys"] != 2 {
		t.Errorf("labels = %v", labels)
	}
}

func TestRDFJoinFallbackForForeignSubjects(t *testing.T) {
	// candidates pointing outside the table (the c2 category removed
	// from the catalog by pointing at an irregular subject)
	src := shopSrc + "e:p7 e:name \"gnu\" ; e:price 60 ; e:cat e:weird .\ne:weird e:label \"strange\" .\n"
	f := newFixture(t, src, 2)
	var prodTab, catTab *relational.Table
	for _, tt := range f.cat.Visible() {
		if tt.Col(f.pred("http://s/cat")) != nil {
			prodTab = tt
		}
		if tt.Col(f.pred("http://s/label")) != nil && tt != prodTab {
			catTab = tt
		}
	}
	prodStar := Star{SubjVar: "s", Props: []StarProp{{Pred: f.pred("http://s/cat"), ObjVar: "c"}}}
	in := RDFScan(f.ctx, prodTab, prodStar, false, 0, -1)
	in = Union(in, ResidualStar(f.ctx, prodStar, []*relational.Table{prodTab}))
	catStar := Star{SubjVar: "c", Props: []StarProp{{Pred: f.pred("http://s/label"), ObjVar: "l"}}}
	out := RDFJoin(f.ctx, in, "c", catTab, catStar, f.idx)
	// all 6 products must find a label, incl. the one pointing at the
	// subject that is not in catTab
	if out.Len() != 6 {
		t.Fatalf("rows = %d, want 6:\nvars %v", out.Len(), out.Vars)
	}
}

func TestResidualStarFindsIrregularMatches(t *testing.T) {
	src := shopSrc + "e:odd1 e:name \"zed\" ; e:weight 3 .\n" // {name,weight}: unsupported CS
	f := newFixture(t, src, 3)
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://s/name"), ObjVar: "n"},
	}}
	covering := f.cat.Visible()
	var rels []*Rel
	for _, tt := range covering {
		if tt.Col(star.Props[0].Pred) != nil {
			rels = append(rels, RDFScan(f.ctx, tt, star, false, 0, -1))
		}
	}
	var coverTabs []*relational.Table
	for _, tt := range covering {
		if tt.Col(star.Props[0].Pred) != nil {
			coverTabs = append(coverTabs, tt)
		}
	}
	rels = append(rels, ResidualStar(f.ctx, star, coverTabs))
	all := Union(rels...)
	if all.Len() != 6 {
		t.Fatalf("name matches = %d, want 6 (5 products + zed)", all.Len())
	}
}

func TestHashJoin(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	l := NewRel("a", "b")
	l.AppendRow(dict.ResourceOID(1), dict.ResourceOID(10))
	l.AppendRow(dict.ResourceOID(2), dict.ResourceOID(20))
	l.AppendRow(dict.ResourceOID(3), dict.ResourceOID(30))
	r := NewRel("b", "c")
	r.AppendRow(dict.ResourceOID(10), dict.ResourceOID(100))
	r.AppendRow(dict.ResourceOID(10), dict.ResourceOID(101))
	r.AppendRow(dict.ResourceOID(30), dict.ResourceOID(300))
	out := HashJoin(f.ctx, l, r)
	if out.Len() != 3 {
		t.Fatalf("join rows = %d, want 3", out.Len())
	}
	if out.ColIdx("a") < 0 || out.ColIdx("b") < 0 || out.ColIdx("c") < 0 {
		t.Errorf("vars = %v", out.Vars)
	}
	// cross product when no shared vars
	x := NewRel("z")
	x.AppendRow(dict.ResourceOID(7))
	x.AppendRow(dict.ResourceOID(8))
	cp := HashJoin(f.ctx, l, x)
	if cp.Len() != 6 {
		t.Errorf("cross product rows = %d, want 6", cp.Len())
	}
}

func TestFilterAndTruthSemantics(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	star := shopStar(f)
	rel := DefaultStar(f.ctx, star, f.idx)
	q, err := sparql.Parse(`PREFIX e: <http://s/> SELECT ?s WHERE { ?s e:price ?p . FILTER (?p > 25 && ?p != 40) }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Filter(f.ctx, rel, q.Filters[0])
	if out.Len() != 2 { // 30, 50
		t.Fatalf("filter rows = %d, want 2", out.Len())
	}
}

func TestHeadAggregates(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	star := shopStar(f)
	rel := DefaultStar(f.ctx, star, f.idx)
	q, err := sparql.Parse(`PREFIX e: <http://s/>
SELECT ?c (SUM(?p) AS ?tot) (COUNT(*) AS ?n) (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) (AVG(?p) AS ?avg)
WHERE { ?s e:cat ?c . ?s e:price ?p . ?s e:name ?n2 . } GROUP BY ?c ORDER BY DESC(?tot)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Head(f.ctx, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("groups = %d, want 2", res.Len())
	}
	// c1: 10+20+50=80, c2: 30+40=70
	if res.Rows[0][1].Int != 80 || res.Rows[1][1].Int != 70 {
		t.Errorf("sums: %v %v", res.Rows[0][1], res.Rows[1][1])
	}
	if res.Rows[0][2].Int != 3 || res.Rows[0][3].Int != 10 || res.Rows[0][4].Int != 50 {
		t.Errorf("count/min/max: %v", res.Rows[0])
	}
	if avg := res.Rows[0][5].Float; avg < 26.6 || avg > 26.7 {
		t.Errorf("avg = %v", avg)
	}
}

func TestHeadEmptyAggregate(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	rel := NewRel("p")
	q, err := sparql.Parse(`PREFIX e: <http://s/> SELECT (SUM(?p) AS ?tot) (COUNT(*) AS ?n) WHERE { ?s e:price ?p . }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Head(f.ctx, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][1].Int != 0 {
		t.Fatalf("empty aggregate: %v", res)
	}
}

func TestHeadDistinctOrderLimit(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	star := Star{SubjVar: "s", Props: []StarProp{{Pred: f.pred("http://s/cat"), ObjVar: "c"}}}
	rel := DefaultStar(f.ctx, star, f.idx)
	q, err := sparql.Parse(`PREFIX e: <http://s/> SELECT DISTINCT ?c WHERE { ?s e:cat ?c . } ORDER BY ?c LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Head(f.ctx, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("distinct+limit rows = %d, want 1", res.Len())
	}
}

func TestSemiJoinRange(t *testing.T) {
	rel := NewRel("k")
	for i := 1; i <= 10; i++ {
		rel.AppendRow(dict.ResourceOID(uint64(i)))
	}
	out := SemiJoinRange(rel, "k", dict.ResourceOID(3), dict.ResourceOID(6))
	if out.Len() != 4 {
		t.Fatalf("semijoin rows = %d, want 4", out.Len())
	}
}

func TestPageAccountingDiffersAcrossOperators(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	f.pool.ResetStats()
	f.pool.ResetCold()
	star := shopStar(f)
	_ = DefaultStar(f.ctx, star, f.idx)
	defStats := f.pool.Stats()
	if defStats.Misses == 0 {
		t.Fatal("DefaultStar should touch pages")
	}
	f.pool.ResetStats()
	f.pool.ResetCold()
	var tab *relational.Table
	for _, tt := range f.cat.Visible() {
		if tt.Col(f.pred("http://s/price")) != nil {
			tab = tt
		}
	}
	_ = RDFScan(f.ctx, tab, star, false, 0, -1)
	rdfStats := f.pool.Stats()
	if rdfStats.Misses == 0 {
		t.Fatal("RDFScan should touch pages")
	}
	// At this toy scale both plans fit in a handful of pages; the page
	// *reduction* of RDFscan is asserted at scale by the RDF-H benches.
}

func TestLookupStarSubject(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	s, _ := f.d.Lookup(dict.IRI("http://s/p3"))
	star := shopStar(f)
	rel := LookupStarSubject(f.ctx, f.idx, s, star)
	if rel.Len() != 1 {
		t.Fatalf("rows = %d, want 1", rel.Len())
	}
	ni := rel.ColIdx("n")
	tm, _ := f.d.Term(rel.Cols[ni][0])
	if tm.Value != "cow" {
		t.Errorf("name = %q", tm.Value)
	}
}

func TestUnionAlignsColumnsByName(t *testing.T) {
	a := NewRel("x", "y")
	a.AppendRow(dict.ResourceOID(1), dict.ResourceOID(2))
	b := NewRel("y", "x")
	b.AppendRow(dict.ResourceOID(20), dict.ResourceOID(10))
	u := Union(a, b)
	if u.Len() != 2 {
		t.Fatalf("union rows = %d", u.Len())
	}
	xi, yi := u.ColIdx("x"), u.ColIdx("y")
	if u.Cols[xi][1] != dict.ResourceOID(10) || u.Cols[yi][1] != dict.ResourceOID(20) {
		t.Errorf("column alignment: %v %v", u.Cols[xi][1], u.Cols[yi][1])
	}
}
