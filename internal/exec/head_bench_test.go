package exec

import (
	"testing"

	"srdf/internal/sparql"
)

// benchHeadFixture builds a multi-block star scan for head benchmarks.
func benchHeadFixture(b *testing.B, n int) (*fixture, Star) {
	f := newFixture(b, bigSrc(n), 3)
	return f, bigStar(f)
}

// BenchmarkStream_AggregateHead contrasts the PR-1 materializing head
// (drain the whole pipeline, then aggregate the relation) with the
// streaming batch aggregate over the same scan, and the parallel
// partial-aggregation path on top.
func BenchmarkStream_AggregateHead(b *testing.B) {
	f, star := benchHeadFixture(b, 40000)
	tab := bigTable(b, f)
	q, err := sparql.Parse(`PREFIX e: <http://b/>
SELECT ?vb (COUNT(*) AS ?n) (SUM(?va) AS ?sum) (AVG(?va) AS ?avg)
WHERE { ?s e:a ?va . ?s e:b ?vb . } GROUP BY ?vb`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel := Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))
			if _, err := MaterializedHead(f.ctx, rel, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel4", func(b *testing.B) {
		pctx := *f.ctx
		pctx.Parallelism = 4
		for i := 0; i < b.N; i++ {
			if _, err := HeadStream(&pctx, NewScanOp(tab, star, false, 0, -1), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStream_TopKOrderBy contrasts the materializing full sort with
// the bounded top-K heap the streaming head switches to under ORDER BY +
// LIMIT.
func BenchmarkStream_TopKOrderBy(b *testing.B) {
	f, star := benchHeadFixture(b, 40000)
	tab := bigTable(b, f)
	q, err := sparql.Parse(`PREFIX e: <http://b/>
SELECT ?s ?va WHERE { ?s e:a ?va . ?s e:b ?vb . } ORDER BY DESC(?va) ?s LIMIT 10`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel := Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))
			if _, err := MaterializedHead(f.ctx, rel, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStream_DistinctHead measures the streaming DISTINCT against
// the materializing one.
func BenchmarkStream_DistinctHead(b *testing.B) {
	f, star := benchHeadFixture(b, 40000)
	tab := bigTable(b, f)
	q, err := sparql.Parse(`PREFIX e: <http://b/>
SELECT DISTINCT ?vb WHERE { ?s e:a ?va . ?s e:b ?vb . }`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel := Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))
			if _, err := MaterializedHead(f.ctx, rel, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HeadStream(f.ctx, NewScanOp(tab, star, false, 0, -1), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
