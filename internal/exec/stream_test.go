package exec

import (
	"fmt"
	"strings"
	"testing"

	"srdf/internal/dict"
	"srdf/internal/relational"
)

// relRows renders a relation as sorted row strings for order-insensitive
// comparison.
func relRows(r *Rel) []string {
	rows := make([]string, r.Len())
	for i := 0; i < r.Len(); i++ {
		var b strings.Builder
		for _, c := range r.Cols {
			fmt.Fprintf(&b, "%d ", c[i])
		}
		rows[i] = b.String()
	}
	return rows
}

func relEqualOrdered(t *testing.T, got, want *Rel, label string) {
	t.Helper()
	if strings.Join(got.Vars, ",") != strings.Join(want.Vars, ",") {
		t.Fatalf("%s: vars %v != %v", label, got.Vars, want.Vars)
	}
	g, w := relRows(got), relRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d: %q != %q", label, i, g[i], w[i])
		}
	}
}

// bigSrc builds a multi-block CS: n subjects with three properties.
func bigSrc(n int) string {
	var b strings.Builder
	b.WriteString("@prefix e: <http://b/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e:s%05d e:a %d ; e:b %d ; e:c e:s%05d .\n", i, i%997, i%89, (i+1)%n)
	}
	return b.String()
}

func bigTable(t testing.TB, f *fixture) *relational.Table {
	t.Helper()
	for _, tt := range f.cat.Visible() {
		if tt.Col(f.pred("http://b/a")) != nil {
			return tt
		}
	}
	t.Fatal("no covering table")
	return nil
}

func TestScanOpMatchesRDFScan(t *testing.T) {
	f := newFixture(t, bigSrc(3000), 3)
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://b/a"), ObjVar: "va"},
		{Pred: f.pred("http://b/b"), ObjVar: "vb"},
	}}
	tab := bigTable(t, f)
	want := RDFScan(f.ctx, tab, star, false, 0, -1)
	got := Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))
	relEqualOrdered(t, got, want, "full scan")

	// row window + zones
	want = RDFScan(f.ctx, tab, star, true, 100, 2500)
	got = Drain(f.ctx, NewScanOp(tab, star, true, 100, 2500))
	relEqualOrdered(t, got, want, "windowed scan")
}

func TestScanOpMissingColumnIsEmpty(t *testing.T) {
	f := newFixture(t, bigSrc(2000), 3)
	tab := bigTable(t, f)
	// a predicate with no column in the table (a subject OID is never a
	// column predicate): must stream empty, like RDFScan, not panic
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://b/a"), ObjVar: "va"},
		{Pred: tab.SubjectOID(0), ObjVar: "vx"},
	}}
	want := RDFScan(f.ctx, tab, star, true, 0, -1)
	got := Drain(f.ctx, NewScanOp(tab, star, true, 0, -1))
	if want.Len() != 0 || got.Len() != 0 {
		t.Fatalf("rows = %d streamed, %d materialized; want 0", got.Len(), want.Len())
	}
}

func TestScanOpParallelMatchesSequential(t *testing.T) {
	f := newFixture(t, bigSrc(9000), 3)
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://b/a"), ObjVar: "va"},
		{Pred: f.pred("http://b/b"), ObjVar: "vb"},
	}}
	tab := bigTable(t, f)
	want := Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))

	pctx := *f.ctx
	pctx.Parallelism = 4
	got := Drain(&pctx, NewScanOp(tab, star, false, 0, -1))
	relEqualOrdered(t, got, want, "parallel scan")
}

func TestScanOpParallelEarlyClose(t *testing.T) {
	f := newFixture(t, bigSrc(9000), 3)
	star := Star{SubjVar: "s", Props: []StarProp{{Pred: f.pred("http://b/a"), ObjVar: "va"}}}
	tab := bigTable(t, f)
	pctx := *f.ctx
	pctx.Parallelism = 4
	op := NewScanOp(tab, star, false, 0, -1)
	if err := op.Open(&pctx); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(op.Vars())
	if !op.Next(b) || b.Len() == 0 {
		t.Fatal("no first batch")
	}
	op.Close() // must not deadlock or leak workers
}

func TestDefaultStarOpMatchesDefaultStar(t *testing.T) {
	f := newFixture(t, bigSrc(3000), 3)
	aPred := f.pred("http://b/a")
	c13, ok := f.d.Lookup(dict.IntLit(13))
	if !ok {
		t.Fatal("no literal 13")
	}
	for name, star := range map[string]Star{
		"plain": {SubjVar: "s", Props: []StarProp{
			{Pred: aPred, ObjVar: "va"},
			{Pred: f.pred("http://b/b"), ObjVar: "vb"},
		}},
		"const-seed": {SubjVar: "s", Props: []StarProp{
			{Pred: aPred, ObjConst: c13},
			{Pred: f.pred("http://b/b"), ObjVar: "vb"},
		}},
		"range": {SubjVar: "s", Props: []StarProp{
			{Pred: aPred, ObjVar: "va", HasRange: true, Lo: 1, Hi: dict.LiteralOID(uint64(f.d.NumLiterals()))},
			{Pred: f.pred("http://b/b"), ObjVar: "vb"},
		}},
	} {
		want := DefaultStar(f.ctx, star, f.idx)
		got := Drain(f.ctx, NewDefaultStarOp(star, f.idx))
		// DefaultStar's column order follows the seed choice; compare in
		// the op's declared order.
		aligned := NewRel(star.Vars()...)
		for i, v := range aligned.Vars {
			aligned.Cols[i] = want.Cols[want.ColIdx(v)]
		}
		relEqualOrdered(t, got, aligned, name)
	}
}

func TestHashJoinOpMatchesHashJoin(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	l := NewRel("a", "b")
	l.AppendRow(dict.ResourceOID(1), dict.ResourceOID(10))
	l.AppendRow(dict.ResourceOID(2), dict.ResourceOID(20))
	l.AppendRow(dict.ResourceOID(3), dict.ResourceOID(30))
	r := NewRel("b", "c")
	r.AppendRow(dict.ResourceOID(10), dict.ResourceOID(100))
	r.AppendRow(dict.ResourceOID(10), dict.ResourceOID(101))
	r.AppendRow(dict.ResourceOID(30), dict.ResourceOID(300))
	for _, buildLeft := range []bool{true, false} {
		op := NewHashJoinOp(NewRelSource(l), NewRelSource(r), buildLeft)
		got := Drain(f.ctx, op)
		if got.Len() != 3 {
			t.Fatalf("buildLeft=%v: rows = %d, want 3", buildLeft, got.Len())
		}
		if strings.Join(got.Vars, ",") != "a,b,c" {
			t.Fatalf("buildLeft=%v: vars %v", buildLeft, got.Vars)
		}
		// every output row must be a valid combination
		for i := 0; i < got.Len(); i++ {
			b, c := got.Cols[1][i], got.Cols[2][i]
			if (b == dict.ResourceOID(10)) != (c == dict.ResourceOID(100) || c == dict.ResourceOID(101)) {
				t.Fatalf("buildLeft=%v: bad row b=%v c=%v", buildLeft, b, c)
			}
		}
	}
	// cross product when no shared vars
	x := NewRel("z")
	x.AppendRow(dict.ResourceOID(7))
	x.AppendRow(dict.ResourceOID(8))
	cp := Drain(f.ctx, NewHashJoinOp(NewRelSource(l), NewRelSource(x), false))
	if cp.Len() != 6 {
		t.Errorf("cross product rows = %d, want 6", cp.Len())
	}
}

func TestUnionOpAlignsColumnsByName(t *testing.T) {
	f := newFixture(t, shopSrc, 3)
	a := NewRel("x", "y")
	a.AppendRow(dict.ResourceOID(1), dict.ResourceOID(2))
	b := NewRel("y", "x")
	b.AppendRow(dict.ResourceOID(20), dict.ResourceOID(10))
	u := Drain(f.ctx, NewUnionOp([]string{"x", "y"}, NewRelSource(a), NewRelSource(b)))
	if u.Len() != 2 {
		t.Fatalf("union rows = %d", u.Len())
	}
	if u.Cols[0][1] != dict.ResourceOID(10) || u.Cols[1][1] != dict.ResourceOID(20) {
		t.Errorf("column alignment: %v %v", u.Cols[0][1], u.Cols[1][1])
	}
}

func TestLazyOpIsNotEvaluatedWithoutPull(t *testing.T) {
	calls := 0
	op := NewLazyOp([]string{"x"}, func(*Ctx) *Rel {
		calls++
		return NewRel("x")
	})
	if err := op.Open(nil); err != nil {
		t.Fatal(err)
	}
	op.Close()
	if calls != 0 {
		t.Fatalf("lazy op evaluated %d times without a pull", calls)
	}
	b := NewBatch(op.Vars())
	if op.Next(b) {
		t.Fatal("empty lazy op produced rows")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestStreamLimitStopsScanEarly(t *testing.T) {
	f := newFixture(t, bigSrc(5000), 3)
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: f.pred("http://b/a"), ObjVar: "va"},
		{Pred: f.pred("http://b/b"), ObjVar: "vb"},
	}}
	tab := bigTable(t, f)

	full := func() uint64 {
		f.pool.ResetCold()
		f.pool.ResetStats()
		_ = Drain(f.ctx, NewScanOp(tab, star, false, 0, -1))
		return f.pool.Stats().Misses
	}()

	f.pool.ResetCold()
	f.pool.ResetStats()
	op := NewScanOp(tab, star, false, 0, -1)
	if err := op.Open(f.ctx); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(op.Vars())
	if !op.Next(b) {
		t.Fatal("no rows")
	}
	op.Close()
	limited := f.pool.Stats().Misses
	if limited >= full {
		t.Fatalf("early-terminated scan touched %d pages, full scan %d", limited, full)
	}
}
