package exec

import (
	"sort"

	"srdf/internal/dict"
	"srdf/internal/triples"
)

// StarProp is one property of a star pattern, with pushed-down object
// constraints.
type StarProp struct {
	Pred dict.OID
	// ObjVar names the object variable, or "" when the object is bound.
	ObjVar string
	// ObjConst is the bound object (Nil when the object is a variable).
	ObjConst dict.OID
	// Lo/Hi is an inclusive OID range pushed down from FILTERs. Valid
	// only when HasRange; requires value-ordered literal OIDs.
	Lo, Hi   dict.OID
	HasRange bool
}

// matches checks a concrete object value against the prop's constraints.
func (p *StarProp) matches(o dict.OID) bool {
	if p.ObjConst != dict.Nil && o != p.ObjConst {
		return false
	}
	if p.HasRange && (o < p.Lo || o > p.Hi) {
		return false
	}
	return true
}

// Star is a star pattern: several properties of one subject variable.
type Star struct {
	SubjVar string
	Props   []StarProp
}

// Vars lists the star's output variables: subject first, then object
// variables in property order.
func (s *Star) Vars() []string {
	out := []string{s.SubjVar}
	for i := range s.Props {
		if s.Props[i].ObjVar != "" {
			out = append(out, s.Props[i].ObjVar)
		}
	}
	return out
}

// DefaultStar evaluates a star with the Default plan family: a seed
// index scan on the most selective pattern, then one self-join per
// remaining property (index lookups into PSO, or a merge join when the
// candidate set is large). This reproduces the access pattern the paper
// critiques: without clustering, the lookups hit the PSO index "all over
// the place".
func DefaultStar(ctx *Ctx, star Star, idx *triples.IndexSet) *Rel {
	if len(star.Props) == 0 {
		return NewRel(star.SubjVar)
	}
	pso := idx.Get(triples.PSO)
	pos := idx.Get(triples.POS)
	seed, _ := chooseSeed(&star, pso, pos)
	rel := seedScan(ctx, &star.Props[seed], star.SubjVar, pso, pos)
	for i := range star.Props {
		if i == seed {
			continue
		}
		rel = extendStar(ctx, rel, star.SubjVar, &star.Props[i], pso)
		if rel.Len() == 0 {
			break
		}
	}
	return rel
}

// chooseSeed picks the star property to evaluate first — bound-object
// patterns, then range patterns, then the smallest property run — and
// returns its index and scan cost. Both the materialized and streaming
// Default-family operators use it, so they always agree on access paths.
func chooseSeed(star *Star, pso, pos *triples.Projection) (seed, cost int) {
	seed, cost = -1, -1
	for i := range star.Props {
		p := &star.Props[i]
		var c int
		switch {
		case p.ObjConst != dict.Nil:
			lo, hi := pos.Range2(p.Pred, p.ObjConst)
			c = hi - lo
		case p.HasRange:
			lo, hi := pos.Range2Between(p.Pred, p.Lo, p.Hi)
			c = hi - lo
		default:
			lo, hi := pso.Range1(p.Pred)
			c = hi - lo
		}
		if seed < 0 || c < cost {
			seed, cost = i, c
		}
	}
	return seed, cost
}

// seedScan produces the initial (subject[, object]) relation of a star,
// sorted by subject.
func seedScan(ctx *Ctx, p *StarProp, subjVar string, pso, pos *triples.Projection) *Rel {
	switch {
	case p.ObjConst != dict.Nil:
		lo, hi := pos.Range2(p.Pred, p.ObjConst)
		ctx.touchProj(pos, lo, hi, 4) // C = subjects
		rel := NewRel(subjVar)
		rel.Cols[0] = append(rel.Cols[0], pos.C[lo:hi]...) // sorted by S
		return rel
	case p.HasRange:
		lo, hi := pos.Range2Between(p.Pred, p.Lo, p.Hi)
		ctx.touchProj(pos, lo, hi, 2|4)
		type so struct{ s, o dict.OID }
		rows := make([]so, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, so{pos.C[i], pos.B[i]})
		}
		sort.Slice(rows, func(x, y int) bool {
			if rows[x].s != rows[y].s {
				return rows[x].s < rows[y].s
			}
			return rows[x].o < rows[y].o
		})
		if p.ObjVar != "" {
			rel := NewRel(subjVar, p.ObjVar)
			for _, r := range rows {
				rel.AppendRow(r.s, r.o)
			}
			return rel
		}
		rel := NewRel(subjVar)
		for _, r := range rows {
			rel.Cols[0] = append(rel.Cols[0], r.s)
		}
		return rel
	default:
		lo, hi := pso.Range1(p.Pred)
		ctx.touchProj(pso, lo, hi, 2|4)
		if p.ObjVar != "" {
			rel := NewRel(subjVar, p.ObjVar)
			rel.Cols[0] = append(rel.Cols[0], pso.B[lo:hi]...)
			rel.Cols[1] = append(rel.Cols[1], pso.C[lo:hi]...)
			return rel
		}
		rel := NewRel(subjVar)
		rel.Cols[0] = append(rel.Cols[0], pso.B[lo:hi]...)
		return rel
	}
}

// extendStar joins one more property onto the current binding relation:
// an index-lookup self-join when the relation is small relative to the
// property run, otherwise a merge self-join over the full run. The input
// relation must be sorted by the subject column (seedScan and extendStar
// maintain this).
func extendStar(ctx *Ctx, rel *Rel, subjVar string, p *StarProp, pso *triples.Projection) *Rel {
	si := rel.ColIdx(subjVar)
	runLo, runHi := pso.Range1(p.Pred)
	runLen := runHi - runLo

	outVars := rel.Vars
	if p.ObjVar != "" {
		outVars = append(append([]string{}, rel.Vars...), p.ObjVar)
	}
	out := NewRel(outVars...)
	buf := make([]dict.OID, 0, len(rel.Vars)+1)

	if rel.Len()*4 < runLen {
		// Index nested-loop: one lookup per candidate subject. Page
		// touches land wherever the subject's rows happen to be — dense
		// after clustering, scattered in parse order.
		for i := 0; i < rel.Len(); i++ {
			s := rel.Cols[si][i]
			lo, hi := pso.Range2(p.Pred, s)
			if hi == lo {
				continue
			}
			ctx.touchProj(pso, lo, hi, 4)
			for k := lo; k < hi; k++ {
				o := pso.C[k]
				if !p.matches(o) {
					continue
				}
				buf = rel.Row(i, buf)
				if p.ObjVar != "" {
					buf = append(buf, o)
				}
				out.AppendRow(buf...)
			}
		}
		return out
	}

	// Merge self-join over the whole property run.
	ctx.touchProj(pso, runLo, runHi, 2|4)
	k := runLo
	for i := 0; i < rel.Len(); i++ {
		s := rel.Cols[si][i]
		// rows are sorted by subject; catch k up
		for k < runHi && pso.B[k] < s {
			k++
		}
		for j := k; j < runHi && pso.B[j] == s; j++ {
			o := pso.C[j]
			if !p.matches(o) {
				continue
			}
			buf = rel.Row(i, buf)
			if p.ObjVar != "" {
				buf = append(buf, o)
			}
			out.AppendRow(buf...)
		}
	}
	return out
}

// LookupStarSubject evaluates a star for one concrete subject via SPO
// point lookups (used for constant-subject patterns and residual
// fallbacks). Returns the cross product of matching values.
func LookupStarSubject(ctx *Ctx, idx *triples.IndexSet, s dict.OID, star Star) *Rel {
	spo := idx.Get(triples.SPO)
	rel := NewRel(star.Vars()...)
	vals := make([][]dict.OID, 0, len(star.Props))
	for i := range star.Props {
		p := &star.Props[i]
		lo, hi := spo.Range2(s, p.Pred)
		ctx.touchProj(spo, lo, hi, 4)
		var vs []dict.OID
		for k := lo; k < hi; k++ {
			if p.matches(spo.C[k]) {
				vs = append(vs, spo.C[k])
			}
		}
		if len(vs) == 0 {
			return rel
		}
		vals = append(vals, vs)
	}
	emitCross(rel, s, star, vals)
	return rel
}

// emitCross appends the cross product of per-property value lists.
func emitCross(rel *Rel, s dict.OID, star Star, vals [][]dict.OID) {
	row := make([]dict.OID, 0, len(rel.Vars))
	var rec func(pi int)
	rec = func(pi int) {
		if pi == len(star.Props) {
			rel.AppendRow(row...)
			return
		}
		p := &star.Props[pi]
		for _, v := range vals[pi] {
			if p.ObjVar != "" {
				row = append(row, v)
			}
			rec(pi + 1)
			if p.ObjVar != "" {
				row = row[:len(row)-1]
			}
		}
	}
	row = append(row, s)
	rec(0)
}
