package exec

import (
	"testing"

	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/relational"
)

// benchScanRows sizes the scan benchmarks: 64 blocks of 1024 rows.
const benchScanRows = 64 * colstore.BlockRows

// benchScanTable builds a two-column CS table whose first column is
// run-heavy (RLE-compressible, 16 runs per block) and whose second is
// low-cardinality (dict-compressible). sealed=false keeps the flat
// uncompressed vectors.
func benchScanTable(sealed bool) (*relational.Table, Star) {
	pa, pb := dict.ResourceOID(900001), dict.ResourceOID(900002)
	t := &relational.Table{Name: "bench", Base: 1, Count: benchScanRows}
	mk := func(pred dict.OID, val func(i int) dict.OID) {
		c := colstore.NewColumn("bench", benchScanRows, nil)
		for i := 0; i < benchScanRows; i++ {
			c.Set(i, val(i))
		}
		if sealed {
			c.Seal()
		}
		t.Cols = append(t.Cols, &relational.Col{Prop: &cs.PropStat{Pred: pred}, Data: c})
	}
	mk(pa, func(i int) dict.OID { return dict.LiteralOID(uint64(1 + i/64)) })
	mk(pb, func(i int) dict.OID { return dict.LiteralOID(uint64(1 + i%23)) })
	star := Star{SubjVar: "s", Props: []StarProp{
		{Pred: pa, ObjVar: "a"},
		{Pred: pb, ObjVar: "b"},
	}}
	return t, star
}

// drainScan pulls a scan to exhaustion without materializing, counting
// rows — the pure streaming cost.
func drainScan(b *testing.B, tab *relational.Table, star Star) {
	ctx := &Ctx{}
	op := NewScanOp(tab, star, false, 0, -1)
	if err := op.Open(ctx); err != nil {
		b.Fatal(err)
	}
	defer op.Close()
	batch := NewBatch(op.Vars())
	rows := 0
	for {
		batch.Reset()
		if !op.Next(batch) {
			break
		}
		rows += batch.Len()
	}
	if rows != benchScanRows {
		b.Fatalf("rows = %d, want %d", rows, benchScanRows)
	}
}

// BenchmarkScan_Compressed streams a full scan over sealed (compressed)
// segments: block views decode into reused scratch, zero row copies.
func BenchmarkScan_Compressed(b *testing.B) {
	tab, star := benchScanTable(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainScan(b, tab, star)
	}
}

// BenchmarkScan_Plain streams the same scan over unsealed flat vectors —
// the uncompressed baseline (views are zero-copy slices of the vector).
func BenchmarkScan_Plain(b *testing.B) {
	tab, star := benchScanTable(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainScan(b, tab, star)
	}
}

// BenchmarkScan_SelectivePredicate contrasts the two ways to apply a
// low-selectivity equality predicate (64 of 65536 rows, one RLE run):
//
//   - selvec: the predicate runs in the scan's compressed-segment
//     kernels; only surviving rows are ever gathered.
//   - plain: the pre-selection-vector shape — materialize every row with
//     bulk copies, then filter the copy.
//
// B/op is the headline number: selvec moves only the matches.
func BenchmarkScan_SelectivePredicate(b *testing.B) {
	match := dict.LiteralOID(500) // one 64-row run of column a
	wantRows := 64

	b.Run("selvec", func(b *testing.B) {
		tab, star := benchScanTable(true)
		star.Props[0].ObjVar = ""
		star.Props[0].ObjConst = match
		ctx := &Ctx{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := Drain(ctx, NewScanOp(tab, star, true, 0, -1))
			if out.Len() != wantRows {
				b.Fatalf("rows = %d, want %d", out.Len(), wantRows)
			}
		}
	})
	b.Run("plain", func(b *testing.B) {
		tab, star := benchScanTable(false)
		ctx := &Ctx{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			all := Drain(ctx, NewScanOp(tab, star, false, 0, -1))
			out := SemiJoinRange(all, "a", match, match)
			if out.Len() != wantRows {
				b.Fatalf("rows = %d, want %d", out.Len(), wantRows)
			}
		}
	})
}
