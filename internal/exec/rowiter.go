package exec

import (
	"fmt"
	"time"

	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// RowIter is a pull-based, decoded query result: rows stream out of the
// operator pipeline as the consumer asks for them, and a satisfied LIMIT
// closes the pipeline without running it to exhaustion. Every solution
// modifier — projection, aggregation, DISTINCT, ORDER BY — runs as a
// batch operator inside the pipeline; the iterator itself only applies
// OFFSET/LIMIT row accounting.
type RowIter struct {
	vars []string

	ctx    *Ctx
	vop    ValOperator
	opened bool
	batch  *VBatch
	idx    int
	toSkip int // OFFSET
	remain int // LIMIT budget; -1 = unlimited
	row    []dict.Value
	err    error
	// started marks when the pipeline opened; Close folds the elapsed
	// time into the package-wide pipeline-seconds total.
	started time.Time
}

// StreamVal drives a value pipeline under OFFSET/LIMIT and returns a row
// iterator. The caller must Close it (exhaustion closes it
// automatically).
func StreamVal(ctx *Ctx, vop ValOperator, limit, offset int) *RowIter {
	it := &RowIter{ctx: ctx, vop: vop, vars: vop.Vars(), remain: -1}
	if offset > 0 {
		it.toSkip = offset
	}
	if limit >= 0 {
		it.remain = limit
	}
	it.row = make([]dict.Value, len(it.vars))
	return it
}

// HeadShape is the resolved head of a query: projection items (SELECT *
// expanded), modifier presence, and the top-K bound, with ORDER BY keys
// validated against the output columns. It is the single source of the
// head composition — exec.Stream builds value operators from it and the
// planner builds its head nodes from it, so the two paths cannot
// diverge on modifier order or bounds.
type HeadShape struct {
	Aggregate bool
	Items     []sparql.SelectItem
	GroupBy   []string
	Distinct  bool
	OrderBy   []sparql.OrderKey
	// Keep is the sort-state bound (LIMIT+OFFSET), -1 for unbounded.
	Keep int
}

// HeadShapeOf resolves a query's head against the BGP pipeline's output
// variables.
func HeadShapeOf(q *sparql.Query, vars []string) (HeadShape, error) {
	hs := HeadShape{
		Aggregate: q.Aggregating(),
		Items:     SelectItems(q, vars),
		GroupBy:   q.GroupBy,
		Distinct:  q.Distinct,
		OrderBy:   q.OrderBy,
		Keep:      SortKeep(q),
	}
	if len(hs.OrderBy) > 0 {
		outVars := make([]string, len(hs.Items))
		for i := range hs.Items {
			outVars[i] = hs.Items[i].As
		}
		if err := ValidateOrderKeys(outVars, hs.OrderBy); err != nil {
			return HeadShape{}, err
		}
	}
	return hs, nil
}

// Ops builds the head's value pipeline over an operator tree:
// aggregation or projection, then DISTINCT, then ORDER BY (top-K when
// bounded) — the modifier order of the materializing reference head.
func (hs HeadShape) Ops(op Operator) ValOperator {
	var vop ValOperator
	if hs.Aggregate {
		vop = NewAggregateOp(op, hs.Items, hs.GroupBy)
	} else {
		proj := NewProjectOp(op, hs.Items)
		if hs.Keep >= 0 && !hs.Distinct && len(hs.OrderBy) == 0 {
			// bare projection under LIMIT: only LIMIT+OFFSET rows are
			// ever consumed, so stop decoding there
			proj.SetRowBound(hs.Keep)
		}
		vop = proj
	}
	if hs.Distinct {
		vop = NewDistinctOp(vop)
	}
	if len(hs.OrderBy) > 0 {
		vop = NewSortOp(vop, hs.OrderBy, hs.Keep)
	}
	return vop
}

// Stream runs an operator tree under the query's solution modifiers and
// returns a row iterator: residual FILTERs batchwise on the OID side,
// then the HeadShape value pipeline.
func Stream(ctx *Ctx, op Operator, q *sparql.Query) (*RowIter, error) {
	for _, f := range q.Filters {
		op = NewFilterOp(op, f)
	}
	hs, err := HeadShapeOf(q, op.Vars())
	if err != nil {
		return nil, err
	}
	return StreamVal(ctx, hs.Ops(op), q.Limit, q.Offset), nil
}

// SortKeep returns the sort-state bound for a query: LIMIT+OFFSET rows
// when a LIMIT is present (the top-K case), else -1 (unbounded).
func SortKeep(q *sparql.Query) int {
	if q.Limit < 0 {
		return -1
	}
	keep := q.Limit
	if q.Offset > 0 {
		keep += q.Offset
	}
	return keep
}

// Vars lists the output column names.
func (it *RowIter) Vars() []string { return it.vars }

// Next advances to the next row, reporting false at the end of the
// stream. Once LIMIT rows have been produced the underlying pipeline is
// closed immediately.
//
// A panic anywhere in the caller-side pipeline is recovered here and
// converted into a per-query error: Next reports exhaustion and Err
// returns a PanicError — one query fails, the process survives.
func (it *RowIter) Next() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			where := "query pipeline"
			if it.ctx.ReqID != "" {
				where += " (req " + it.ctx.ReqID + ")"
			}
			err := NewPanicError(where, r)
			it.ctx.Fail(err)
			it.err = err
			func() {
				defer func() { recover() }() // a broken operator may panic again in Close
				it.Close()
			}()
			ok = false
		}
	}()
	return it.next()
}

func (it *RowIter) next() bool {
	if it.vop == nil {
		return false
	}
	if it.remain == 0 {
		it.Close()
		return false
	}
	if !it.opened {
		if err := it.vop.Open(it.ctx); err != nil {
			it.err = err
			it.Close()
			return false
		}
		it.opened = true
		it.started = time.Now()
		it.batch = NewVBatch(it.vop.Vars())
		it.idx = 0
	}
	for {
		if it.idx >= it.batch.Len() {
			if it.ctx.Cancelled() {
				it.err = it.ctx.StopErr()
				it.Close()
				return false
			}
			it.batch.Reset()
			if !it.vop.Next(it.batch) {
				// a false Next is exhaustion unless the query context
				// fired or an executor failure (worker panic, memory
				// budget) was recorded, in which case the pipeline
				// bailed early
				if serr := it.ctx.StopErr(); serr != nil {
					it.err = serr
				}
				it.Close()
				return false
			}
			it.idx = 0
		}
		for it.idx < it.batch.Len() {
			i := it.idx
			it.idx++
			if it.toSkip > 0 {
				it.toSkip--
				continue
			}
			for c := range it.row {
				it.row[c] = it.batch.Cols[c][i]
			}
			if it.remain > 0 {
				it.remain--
			}
			return true
		}
	}
}

// Row returns the current row. The slice is reused by the next call to
// Next; copy it to retain.
func (it *RowIter) Row() []dict.Value { return it.row }

// Err reports why the stream ended early: the query context's error
// after a cancellation or timeout, an operator Open failure, a recovered
// pipeline panic (PanicError), an exhausted memory budget
// (ErrMemBudget), or nil for plain exhaustion.
func (it *RowIter) Err() error { return it.err }

// Dict exposes the snapshot dictionary the rows decode against, for
// consumers that resolve Value.OID back to exact RDF terms.
func (it *RowIter) Dict() *dict.Dictionary { return it.ctx.Dict }

// Close shuts the pipeline down; it is idempotent and automatically
// invoked on exhaustion or when LIMIT is reached.
func (it *RowIter) Close() {
	if it.vop != nil {
		if it.opened {
			it.vop.Close()
			it.opened = false
		}
		it.vop = nil
	}
	if !it.started.IsZero() {
		pipelineNS.Add(time.Since(it.started).Nanoseconds())
		it.started = time.Time{}
	}
}

// Collect drains the iterator into a materialized Result (closing it).
func (it *RowIter) Collect() *Result {
	defer it.Close()
	res := &Result{Vars: it.vars}
	for it.Next() {
		res.Rows = append(res.Rows, append([]dict.Value{}, it.Row()...))
	}
	return res
}

// HeadStream evaluates a full query over a streaming pipeline: Head's
// semantics driven batch-at-a-time, with LIMIT terminating the pull
// early.
func HeadStream(ctx *Ctx, op Operator, q *sparql.Query) (*Result, error) {
	it, err := Stream(ctx, op, q)
	if err != nil {
		return nil, err
	}
	return it.Collect(), nil
}

func distinctKey(row []dict.Value) string {
	var b []byte
	for _, v := range row {
		b = append(b, fmt.Sprintf("%d|%s|", v.Kind, v.Lexical())...)
	}
	return string(b)
}
