package exec

import (
	"fmt"

	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// RowIter is a pull-based, decoded query result: rows stream out of the
// operator pipeline as the consumer asks for them, and a satisfied LIMIT
// closes the pipeline without running it to exhaustion. Aggregation and
// ORDER BY inherently need the whole input, so those queries are
// evaluated eagerly and the iterator replays the materialized result.
type RowIter struct {
	vars  []string
	items []sparql.SelectItem

	// streaming state
	ctx    *Ctx
	op     Operator
	opened bool
	batch  *Batch
	env    *evalEnv
	idx    int
	seen   map[string]bool // DISTINCT
	toSkip int             // OFFSET
	remain int             // LIMIT budget; -1 = unlimited
	row    []dict.Value

	// materialized fallback (aggregation / ORDER BY)
	res    *Result
	resIdx int
}

// Stream runs an operator tree under the query's solution modifiers and
// returns a row iterator. Residual FILTERs are applied batchwise;
// projection, DISTINCT, OFFSET and LIMIT are applied row by row as the
// consumer pulls. The caller must Close the iterator (exhaustion closes
// it automatically).
func Stream(ctx *Ctx, op Operator, q *sparql.Query) (*RowIter, error) {
	for _, f := range q.Filters {
		op = NewFilterOp(op, f)
	}
	if q.Aggregating() || len(q.OrderBy) > 0 {
		rel := Drain(ctx, op)
		res, err := headAfterFilters(ctx, rel, q)
		if err != nil {
			return nil, err
		}
		return &RowIter{vars: res.Vars, res: res}, nil
	}
	items := q.Select
	if q.SelectAll {
		items = nil
		for _, v := range op.Vars() {
			items = append(items, sparql.SelectItem{Expr: &sparql.ExVar{Name: v}, As: v})
		}
	}
	it := &RowIter{ctx: ctx, op: op, items: items, remain: -1}
	for _, item := range items {
		it.vars = append(it.vars, item.As)
	}
	if q.Distinct {
		it.seen = map[string]bool{}
	}
	if q.Offset > 0 {
		it.toSkip = q.Offset
	}
	if q.Limit >= 0 {
		it.remain = q.Limit
	}
	it.row = make([]dict.Value, len(items))
	return it, nil
}

// Vars lists the output column names.
func (it *RowIter) Vars() []string { return it.vars }

// Next advances to the next row, reporting false at the end of the
// stream. Once LIMIT rows have been produced the underlying pipeline is
// closed immediately.
func (it *RowIter) Next() bool {
	if it.res != nil {
		if it.resIdx >= len(it.res.Rows) {
			return false
		}
		it.resIdx++
		return true
	}
	if it.op == nil {
		return false
	}
	if it.remain == 0 {
		it.Close()
		return false
	}
	if !it.opened {
		if err := it.op.Open(it.ctx); err != nil {
			it.Close()
			return false
		}
		it.opened = true
		it.batch = NewBatch(it.op.Vars())
		it.idx = it.batch.Len() // 0, forces a pull
	}
	for {
		if it.batch.Len() == 0 || it.idx >= it.batch.Len() {
			it.batch.Reset()
			if !it.op.Next(it.batch) {
				it.Close()
				return false
			}
			it.env = newEvalEnv(it.ctx, it.batch.asRel())
			it.idx = 0
		}
		for it.idx < it.batch.Len() {
			i := it.idx
			it.idx++
			it.env.row = i
			for c, item := range it.items {
				it.row[c] = it.env.evalValue(item.Expr)
			}
			if it.seen != nil {
				k := distinctKey(it.row)
				if it.seen[k] {
					continue
				}
				it.seen[k] = true
			}
			if it.toSkip > 0 {
				it.toSkip--
				continue
			}
			if it.remain > 0 {
				it.remain--
			}
			return true
		}
	}
}

// Row returns the current row. The slice is reused by the next call to
// Next; copy it to retain.
func (it *RowIter) Row() []dict.Value {
	if it.res != nil {
		if it.resIdx >= 1 && it.resIdx <= len(it.res.Rows) {
			return it.res.Rows[it.resIdx-1]
		}
		return nil
	}
	return it.row
}

// Close shuts the pipeline down; it is idempotent and automatically
// invoked on exhaustion or when LIMIT is reached.
func (it *RowIter) Close() {
	if it.op != nil {
		if it.opened {
			it.op.Close()
			it.opened = false
		}
		it.op = nil
	}
}

// Collect drains the iterator into a materialized Result (closing it).
func (it *RowIter) Collect() *Result {
	defer it.Close()
	res := &Result{Vars: it.vars}
	for it.Next() {
		res.Rows = append(res.Rows, append([]dict.Value{}, it.Row()...))
	}
	return res
}

// HeadStream evaluates a full query over a streaming pipeline: Head's
// semantics (filters, projection or aggregation, DISTINCT, ORDER BY,
// OFFSET, LIMIT) driven batch-at-a-time, with LIMIT terminating the pull
// early.
func HeadStream(ctx *Ctx, op Operator, q *sparql.Query) (*Result, error) {
	it, err := Stream(ctx, op, q)
	if err != nil {
		return nil, err
	}
	if it.res != nil {
		it.Close()
		return it.res, nil
	}
	return it.Collect(), nil
}

func distinctKey(row []dict.Value) string {
	var b []byte
	for _, v := range row {
		b = append(b, fmt.Sprintf("%d|%s|", v.Kind, v.Lexical())...)
	}
	return string(b)
}
