package exec

import (
	"context"
	"errors"
	"testing"

	"srdf/internal/dict"
)

// panicVOp panics on first pull — a stand-in for any broken operator.
type panicVOp struct{ vars []string }

func (p *panicVOp) Vars() []string    { return p.vars }
func (p *panicVOp) Open(*Ctx) error   { return nil }
func (p *panicVOp) Next(*VBatch) bool { panic("boom: injected operator bug") }
func (p *panicVOp) Close()            {}

func TestRowIterRecoversPanic(t *testing.T) {
	before := PanicsTotal()
	ctx := (&Ctx{}).WithQueryContext(context.Background())
	it := StreamVal(ctx, &panicVOp{vars: []string{"x"}}, -1, 0)
	if it.Next() {
		t.Fatal("Next returned true from a panicking operator")
	}
	var pe *PanicError
	if !errors.As(it.Err(), &pe) {
		t.Fatalf("Err() = %v, want PanicError", it.Err())
	}
	if pe.Where == "" || len(pe.Stack) == 0 {
		t.Errorf("PanicError missing context: %+v", pe)
	}
	if PanicsTotal() == before {
		t.Error("panic counter not incremented")
	}
	// the failure is also parked on the Ctx for other pipeline stages
	if ctx.ExecErr() == nil || !ctx.Cancelled() {
		t.Error("recovered panic not recorded as query failure")
	}
}

func TestMemAccountant(t *testing.T) {
	var nilAcct *MemAccountant
	if err := nilAcct.Grow(1 << 40); err != nil {
		t.Fatalf("nil accountant must be unlimited: %v", err)
	}
	m := NewMemAccountant(100)
	if err := m.Grow(60); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Grow(60)
	if !errors.Is(err, ErrMemBudget) {
		t.Fatalf("over budget: got %v, want ErrMemBudget", err)
	}
	if m.Used() != 120 || m.Limit() != 100 {
		t.Errorf("used=%d limit=%d", m.Used(), m.Limit())
	}
}

func TestDrainRespectsBudget(t *testing.T) {
	rel := NewRel("x")
	for i := 0; i < 10000; i++ {
		rel.Cols[0] = append(rel.Cols[0], dict.OID(i+1))
	}
	ctx := (&Ctx{}).WithQueryContext(context.Background())
	ctx.Mem = NewMemAccountant(1024) // far less than 10000 rows * 8 bytes
	out := Drain(ctx, NewRelSource(rel))
	if out.Len() >= rel.Len() {
		t.Fatalf("drain materialized %d rows past a 1KiB budget", out.Len())
	}
	if !errors.Is(ctx.ExecErr(), ErrMemBudget) {
		t.Fatalf("ExecErr = %v, want ErrMemBudget", ctx.ExecErr())
	}
}
