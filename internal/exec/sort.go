package exec

import (
	"container/heap"
	"fmt"
	"sort"

	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// SortOp orders its input by the ORDER BY keys. Without a row bound it
// materializes and stable-sorts the whole input (inherent to sorting).
// With Keep = k >= 0 — ORDER BY paired with LIMIT/OFFSET — it maintains
// a bounded heap of the best k rows instead, so sort state never
// exceeds k rows no matter how large the input is and top-K queries
// stream in O(k) memory.
type SortOp struct {
	in   ValOperator
	keys []sparql.OrderKey
	// Keep bounds the retained rows (LIMIT+OFFSET); -1 keeps everything.
	Keep int

	ctx     *Ctx
	colOf   map[string]int
	maxHeld int
	ran     bool
	out     vrowsCursor
}

// NewSortOp builds a sort of in by keys, retaining at most keep rows
// (-1 = all). Keys must pass ValidateOrderKeys against in.Vars().
func NewSortOp(in ValOperator, keys []sparql.OrderKey, keep int) *SortOp {
	return &SortOp{in: in, keys: keys, Keep: keep}
}

// ValidateOrderKeys checks that ORDER BY keys are evaluable against the
// result columns: every referenced variable must be an output column
// (the common case is an aggregation alias) and aggregates cannot be
// ordered on directly.
func ValidateOrderKeys(vars []string, keys []sparql.OrderKey) error {
	cols := make(map[string]bool, len(vars))
	for _, v := range vars {
		cols[v] = true
	}
	for _, k := range keys {
		var err error
		sparql.WalkExpr(k.Expr, func(e sparql.Expr) bool {
			switch x := e.(type) {
			case *sparql.ExVar:
				if !cols[x.Name] {
					err = fmt.Errorf("exec: ORDER BY ?%s is not a result column", x.Name)
				}
			case *sparql.ExLit, *sparql.ExBin, *sparql.ExUn:
			default:
				err = fmt.Errorf("exec: unsupported ORDER BY expression")
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// MaxHeld reports the peak number of rows the sort retained — the
// quantity the top-K bound promises stays ≤ Keep.
func (s *SortOp) MaxHeld() int { return s.maxHeld }

func (s *SortOp) Vars() []string { return s.in.Vars() }

func (s *SortOp) Open(ctx *Ctx) error {
	s.ctx = ctx
	s.colOf = make(map[string]int, len(s.in.Vars()))
	for i, v := range s.in.Vars() {
		s.colOf[v] = i
	}
	return s.in.Open(ctx)
}

func (s *SortOp) Next(b *VBatch) bool {
	if !s.ran {
		s.ran = true
		s.run()
	}
	return s.out.fill(b)
}

func (s *SortOp) Close() { s.in.Close() }

// sortRow is one retained row with its precomputed key values and input
// sequence number (the stability tie-break).
type sortRow struct {
	vals []dict.Value
	keys []dict.Value
	seq  int
}

// less is the total order of the sort: ORDER BY keys first, input order
// on ties — exactly the order a stable sort of the full input produces,
// which is what makes the bounded heap row-identical to the full sort.
func (s *SortOp) less(a, b *sortRow) bool {
	for i, k := range s.keys {
		c := dict.Compare(a.keys[i], b.keys[i])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return a.seq < b.seq
}

func (s *SortOp) run() {
	var rows []*sortRow
	h := topKHeap{op: s}
	inb := NewVBatch(s.in.Vars())
	seq := 0
	for !s.ctx.Cancelled() && s.in.Next(inb) {
		for i := 0; i < inb.Len(); i++ {
			r := &sortRow{
				vals: inb.Row(i, nil),
				keys: make([]dict.Value, len(s.keys)),
				seq:  seq,
			}
			seq++
			for ki := range s.keys {
				r.keys[ki] = s.evalKey(r.vals, s.keys[ki].Expr)
			}
			switch {
			case s.Keep < 0:
				// only net growth is charged: the top-K replace case
				// swaps a row in place and stays within budget
				if err := s.ctx.Mem.Grow(sortRowCost(r)); err != nil {
					s.ctx.Fail(err)
					s.out = vrowsCursor{}
					return
				}
				rows = append(rows, r)
				s.held(len(rows))
			case len(h.rows) < s.Keep:
				if err := s.ctx.Mem.Grow(sortRowCost(r)); err != nil {
					s.ctx.Fail(err)
					s.out = vrowsCursor{}
					return
				}
				heap.Push(&h, r)
				s.held(len(h.rows))
			case s.Keep > 0 && s.less(r, h.rows[0]):
				// better than the current worst: replace it
				h.rows[0] = r
				heap.Fix(&h, 0)
			}
		}
		inb.Reset()
	}
	if s.Keep >= 0 {
		rows = h.rows
	}
	sort.Slice(rows, func(i, j int) bool { return s.less(rows[i], rows[j]) })
	out := make([][]dict.Value, len(rows))
	for i, r := range rows {
		out[i] = r.vals
	}
	s.out = vrowsCursor{rows: out}
}

// sortRowCost estimates the retained bytes of one sort row: slice
// headers plus per-value struct and string payload.
func sortRowCost(r *sortRow) int64 {
	n := int64(64)
	for _, v := range r.vals {
		n += 40 + int64(len(v.Str))
	}
	for _, v := range r.keys {
		n += 40 + int64(len(v.Str))
	}
	return n
}

func (s *SortOp) held(n int) {
	if n > s.maxHeld {
		s.maxHeld = n
	}
}

// evalKey evaluates one ORDER BY key against a result row. Keys are
// validated at plan time, so unknown variables cannot occur here.
func (s *SortOp) evalKey(row []dict.Value, e sparql.Expr) dict.Value {
	switch x := e.(type) {
	case *sparql.ExVar:
		ci, ok := s.colOf[x.Name]
		if !ok {
			return dict.Value{}
		}
		return row[ci]
	case *sparql.ExLit:
		return x.Val
	case *sparql.ExUn:
		return applyUnary(x.Op, s.evalKey(row, x.E))
	case *sparql.ExBin:
		return applyBinary(x.Op, s.evalKey(row, x.L), s.evalKey(row, x.R))
	default:
		return dict.Value{}
	}
}

// topKHeap keeps the k best rows with the worst at the root, so one
// comparison against the root rejects most rows of a large input.
type topKHeap struct {
	op   *SortOp
	rows []*sortRow
}

func (h *topKHeap) Len() int           { return len(h.rows) }
func (h *topKHeap) Less(i, j int) bool { return h.op.less(h.rows[j], h.rows[i]) }
func (h *topKHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topKHeap) Push(x interface{}) { h.rows = append(h.rows, x.(*sortRow)) }
func (h *topKHeap) Pop() interface{} {
	n := len(h.rows)
	r := h.rows[n-1]
	h.rows = h.rows[:n-1]
	return r
}
