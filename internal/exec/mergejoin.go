package exec

import (
	"sort"

	"srdf/internal/dict"
	"srdf/internal/relational"
)

// MergeJoinOp is the clustered-FK sort-merge join: the outer side is
// drained and its join keys sorted (a no-op when subject clustering
// already delivers them ascending), then the inner CS table streams
// once through a ScanOp restricted to the subject window the outer keys
// can reach. Because subject clustering assigns dense ascending OIDs
// (row i of the table is subject Base+i), the scan's row order IS key
// order on the inner side — the join needs no hash build at all.
//
// The planner only chooses this operator when the inner star is covered
// by exactly this table with no residual triples, no unsealed delta
// rows, and no compacted-in extra rows, so the table scan is the
// complete, subject-ascending answer set; tombstones and holes are
// filtered by the scan like any other.
type MergeJoinOp struct {
	Left     Operator
	KeyVar   string
	Table    *relational.Table
	Star     Star // inner star; Star.SubjVar joins against KeyVar
	UseZones bool

	ctx        *Ctx
	vars       []string
	left       *Rel
	ki         int
	order      []int32 // outer rows, key-ascending (stable)
	lp         int     // merge cursor into order
	inner      *ScanOp
	innerBatch *Batch
	fromLeft   []int
	fromInner  []int
	pending    relCursor
	done       bool
}

// NewMergeJoinOp joins left against the star over one CS table on
// left's KeyVar column = the table subject. The star's object variables
// must not otherwise occur in left (the planner renames duplicates to
// temporaries and re-checks equality afterwards, exactly as for
// RDFjoin).
func NewMergeJoinOp(left Operator, keyVar string, t *relational.Table, star Star, useZones bool) *MergeJoinOp {
	vars := append([]string{}, left.Vars()...)
	seen := map[string]bool{}
	for _, v := range vars {
		seen[v] = true
	}
	for i := range star.Props {
		if ov := star.Props[i].ObjVar; ov != "" && !seen[ov] {
			vars = append(vars, ov)
			seen[ov] = true
		}
	}
	return &MergeJoinOp{Left: left, KeyVar: keyVar, Table: t, Star: star, UseZones: useZones, vars: vars}
}

func (m *MergeJoinOp) Vars() []string { return m.vars }

func (m *MergeJoinOp) Open(ctx *Ctx) error {
	m.ctx = ctx
	m.done = false
	m.lp = 0
	m.pending = relCursor{}
	m.left = Drain(ctx, m.Left)
	if err := ctx.StopErr(); err != nil {
		return err
	}
	m.ki = m.left.ColIdx(m.KeyVar)
	n := m.left.Len()
	if m.ki < 0 || n == 0 || m.Table.Count == 0 {
		m.done = true
		return nil
	}
	keys := m.left.Cols[m.ki]
	m.order = make([]int32, n)
	for i := range m.order {
		m.order[i] = int32(i)
	}
	// Clustered outer sides (FK column of a table sub-ordered on that
	// FK) already arrive ascending; the check costs one pass and saves
	// the sort exactly when the paper's clustering did its job.
	if !sort.SliceIsSorted(m.order, func(i, j int) bool { return keys[m.order[i]] < keys[m.order[j]] }) {
		sort.SliceStable(m.order, func(i, j int) bool { return keys[m.order[i]] < keys[m.order[j]] })
	}
	// Restrict the inner scan to the dense subject window the outer keys
	// can reach — the AscendingWindow trick on the implicit subject
	// column. Literal keys and subjects of other tables fall outside the
	// window and can never match.
	base, count := m.Table.Base, m.Table.Count
	kAt := func(i int) dict.OID { return keys[m.order[i]] }
	loIdx := sort.Search(n, func(i int) bool { return kAt(i) >= dict.ResourceOID(base) })
	hiIdx := sort.Search(n, func(i int) bool { return kAt(i) >= dict.ResourceOID(base+uint64(count)) })
	if loIdx >= hiIdx {
		m.done = true
		return nil
	}
	m.lp = loIdx
	rowLo := int(kAt(loIdx).Payload() - base)
	rowHi := int(kAt(hiIdx-1).Payload()-base) + 1
	m.inner = NewScanOp(m.Table, m.Star, m.UseZones, rowLo, rowHi)
	if err := m.inner.Open(ctx); err != nil {
		return err
	}
	innerVars := m.inner.Vars()
	m.fromLeft = make([]int, len(m.vars))
	m.fromInner = make([]int, len(m.vars))
	for i, v := range m.vars {
		m.fromLeft[i] = m.left.ColIdx(v)
		m.fromInner[i] = -1
		for ci, w := range innerVars {
			if w == v {
				m.fromInner[i] = ci
				break
			}
		}
	}
	m.innerBatch = NewBatch(innerVars)
	return nil
}

func (m *MergeJoinOp) Next(b *Batch) bool {
	keysReady := !m.done
	var keys []dict.OID
	if keysReady {
		keys = m.left.Cols[m.ki]
	}
	for {
		if m.pending.rel != nil && m.pending.fill(b) {
			return true
		}
		if m.done {
			return false
		}
		m.innerBatch.Reset()
		if !m.inner.Next(m.innerBatch) {
			m.done = true
			return false
		}
		out := NewRel(m.vars...)
		nb := m.innerBatch.Len()
		for j := 0; j < nb; j++ {
			s := m.innerBatch.At(0, j) // inner vars lead with the subject
			for m.lp < len(m.order) && keys[m.order[m.lp]] < s {
				m.lp++
			}
			for k := m.lp; k < len(m.order) && keys[m.order[k]] == s; k++ {
				li := int(m.order[k])
				for c := range m.vars {
					var v dict.OID
					if ci := m.fromLeft[c]; ci >= 0 {
						v = m.left.Cols[ci][li]
					} else {
						v = m.innerBatch.At(m.fromInner[c], j)
					}
					out.Cols[c] = append(out.Cols[c], v)
				}
			}
			// inner subjects are unique and ascending: the next row can
			// only need keys at or past m.lp
		}
		if out.Len() > 0 {
			m.pending = relCursor{rel: out}
		}
	}
}

func (m *MergeJoinOp) Close() {
	if m.inner != nil {
		m.inner.Close()
	}
}
