package exec

import (
	"sort"
	"sync"

	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// AggregateOp is the vectorized hash GROUP BY/aggregate operator: it
// consumes OID batches from the BGP pipeline and folds them into
// columnar per-group aggregate states (COUNT/SUM/AVG/MIN/MAX, with
// DISTINCT arguments), never materializing the input — memory is
// bounded by the number of groups, not the number of input rows.
//
// With ctx.Parallelism > 1 input batches are dealt round-robin to a
// worker pool; each worker folds its share into a private partial table
// and the partials are merged at the head in worker order
// (order-insensitive states merge directly, AVG via sum+count, DISTINCT
// by replaying the value set). Group output order is the global
// first-appearance order of each group key, tracked per group, so the
// parallel merge emits groups in exactly the sequential order. Values
// are identical to sequential execution except float SUM/AVG, whose
// re-associated partial sums can differ in the last few bits (integer
// aggregates, COUNT, MIN, MAX and AVG over integers are exact).
type AggregateOp struct {
	in      Operator
	items   []sparql.SelectItem
	groupBy []string
	vars    []string
	leaves  []*sparql.ExAgg

	ctx *Ctx
	ran bool
	out vrowsCursor
}

// NewAggregateOp builds a streaming grouped-aggregation of items over in.
func NewAggregateOp(in Operator, items []sparql.SelectItem, groupBy []string) *AggregateOp {
	a := &AggregateOp{in: in, items: items, groupBy: groupBy}
	for i := range items {
		a.vars = append(a.vars, items[i].As)
		a.leaves = collectAggs(items[i].Expr, a.leaves)
	}
	return a
}

// NumAggs reports the number of aggregate leaves (for plan explain).
func (a *AggregateOp) NumAggs() int { return len(a.leaves) }

func (a *AggregateOp) Vars() []string { return a.vars }

func (a *AggregateOp) Open(ctx *Ctx) error {
	a.ctx = ctx
	return a.in.Open(ctx)
}

func (a *AggregateOp) Next(b *VBatch) bool {
	if !a.ran {
		a.ran = true
		a.run()
	}
	return a.out.fill(b)
}

func (a *AggregateOp) Close() { a.in.Close() }

// run drains the input into group states and materializes the (small)
// one-row-per-group output.
func (a *AggregateOp) run() {
	workers := a.ctx.Parallelism
	var tbl *aggTable
	if workers > 1 {
		tbl = a.runParallel(workers)
	} else {
		tbl = a.runSequential()
	}
	if a.ctx.ExecErr() != nil {
		// the aggregation failed (worker panic, memory budget): emit
		// nothing and let the iterator report the recorded cause
		a.out = vrowsCursor{}
		return
	}
	a.out = vrowsCursor{rows: tbl.finish(a.ctx, a.items, a.groupBy)}
}

func (a *AggregateOp) runSequential() *aggTable {
	tbl := newAggTable(a.ctx, a.in.Vars(), a.groupBy, a.leaves)
	b := NewBatch(a.in.Vars())
	for seq := 0; !a.ctx.Cancelled() && a.in.Next(b); seq++ {
		if err := tbl.addRel(b.asRel(), seq); err != nil {
			a.ctx.Fail(err)
			break
		}
		b.Reset()
	}
	return tbl
}

// runParallel deals batches round-robin to workers computing partial
// aggregates, then merges the partials in worker order. The round-robin
// deal (rather than a shared queue) keeps the merge deterministic
// across runs.
func (a *AggregateOp) runParallel(workers int) *aggTable {
	inVars := a.in.Vars()
	tables := make([]*aggTable, workers)
	chans := make([]chan batchJob, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tables[w] = newAggTable(a.ctx, inVars, a.groupBy, a.leaves)
		chans[w] = make(chan batchJob, 2)
		wg.Add(1)
		go func(tbl *aggTable, ch chan batchJob) {
			defer wg.Done()
			failed := false
			for j := range ch {
				if failed {
					continue // keep draining so the feeder never blocks
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = NewPanicError("aggregate worker", r)
						}
					}()
					return tbl.addRel(j.rel, j.seq)
				}()
				if err != nil {
					if !a.ctx.Fail(err) {
						panic(err) // no per-query failure slot: fail loud
					}
					failed = true
				}
			}
		}(tables[w], chans[w])
	}
	b := NewBatch(inVars)
	for seq := 0; !a.ctx.Cancelled() && a.in.Next(b); seq++ {
		// the batch's arrays are reused by the next pull; hand the worker
		// a gathered copy
		chans[seq%workers] <- batchJob{rel: b.CopyRel(), seq: seq}
		b.Reset()
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	tbl := tables[0]
	for _, other := range tables[1:] {
		tbl.merge(other)
	}
	tbl.sortByFirstSeen()
	return tbl
}

type batchJob struct {
	rel *Rel
	seq int
}

// aggGroup is the columnar aggregate state of one group.
type aggGroup struct {
	key string
	// first is the global position (batch sequence, row) of the group's
	// first input row; output order sorts by it so parallel partials
	// reproduce the sequential first-appearance order.
	first uint64
	// repr is the group's first input row, for resolving grouped
	// variables in the select list.
	repr   []dict.OID
	states []aggState
}

// aggTable is one hash aggregation table: complete for the sequential
// path, a mergeable partial for the morsel workers.
type aggTable struct {
	inVars   []string
	groupIdx []int
	leaves   []*sparql.ExAgg
	groups   map[string]*aggGroup
	order    []*aggGroup
	env      *evalEnv
	kb       []byte
	mem      *MemAccountant
}

func newAggTable(ctx *Ctx, inVars []string, groupBy []string, leaves []*sparql.ExAgg) *aggTable {
	t := &aggTable{
		inVars: inVars,
		leaves: leaves,
		groups: make(map[string]*aggGroup),
		env:    newEvalEnv(ctx, &Rel{Vars: inVars}),
		mem:    ctx.Mem,
	}
	for _, g := range groupBy {
		t.groupIdx = append(t.groupIdx, (&Rel{Vars: inVars}).ColIdx(g))
	}
	return t
}

// addRel folds one batch (as a Rel header) into the table. seq is the
// batch's global sequence number, used only to stamp first-appearance
// order. It fails with ErrMemBudget when a new group would exceed the
// query's memory budget (group state is what makes aggregation memory
// grow; per-row folds into existing groups are free).
func (t *aggTable) addRel(rel *Rel, seq int) error {
	t.env.rel = rel
	for i := 0; i < rel.Len(); i++ {
		t.kb = t.kb[:0]
		for _, gi := range t.groupIdx {
			var v dict.OID
			if gi >= 0 {
				v = rel.Cols[gi][i]
			}
			t.kb = appendOIDKey(t.kb, v)
		}
		g, ok := t.groups[string(t.kb)]
		if !ok {
			if err := t.mem.Grow(int64(len(t.kb)) + int64(len(rel.Cols))*8 + int64(len(t.leaves))*48 + 64); err != nil {
				return err
			}
			g = &aggGroup{
				key:    string(t.kb),
				first:  uint64(seq)<<32 | uint64(i),
				repr:   make([]dict.OID, 0, len(rel.Cols)),
				states: make([]aggState, len(t.leaves)),
			}
			for ci := range rel.Cols {
				g.repr = append(g.repr, rel.Cols[ci][i])
			}
			for j := range g.states {
				g.states[j].allInt = true
			}
			t.groups[g.key] = g
			t.order = append(t.order, g)
		}
		t.env.row = i
		for j, leaf := range t.leaves {
			if leaf.Arg == nil { // COUNT(*)
				g.states[j].count++
				continue
			}
			g.states[j].add(t.env.evalValue(leaf.Arg), leaf.Distinct)
		}
	}
	return nil
}

// merge folds another partial table into t.
func (t *aggTable) merge(o *aggTable) {
	for _, og := range o.order {
		g, ok := t.groups[og.key]
		if !ok {
			t.groups[og.key] = og
			t.order = append(t.order, og)
			continue
		}
		if og.first < g.first {
			g.first, g.repr = og.first, og.repr
		}
		for j := range g.states {
			if t.leaves[j].Arg != nil && t.leaves[j].Distinct {
				g.states[j].mergeDistinct(&og.states[j])
			} else {
				g.states[j].merge(&og.states[j])
			}
		}
	}
}

// sortByFirstSeen restores the global first-appearance group order after
// a merge of partials.
func (t *aggTable) sortByFirstSeen() {
	sort.Slice(t.order, func(i, j int) bool { return t.order[i].first < t.order[j].first })
}

// finish resolves the select items per group into output rows.
func (t *aggTable) finish(ctx *Ctx, items []sparql.SelectItem, groupBy []string) [][]dict.Value {
	order := t.order
	// An aggregate query with no GROUP BY over an empty input still
	// yields one row (SUM=0 via empty states).
	if len(order) == 0 && len(groupBy) == 0 {
		g := &aggGroup{states: make([]aggState, len(t.leaves))}
		for j := range g.states {
			g.states[j].allInt = true
		}
		order = []*aggGroup{g}
	}
	rows := make([][]dict.Value, 0, len(order))
	reprRel := &Rel{Vars: t.inVars, Cols: make([][]dict.OID, len(t.inVars))}
	for _, g := range order {
		leafVals := make(map[*sparql.ExAgg]dict.Value, len(t.leaves))
		for j, leaf := range t.leaves {
			leafVals[leaf] = g.states[j].result(leaf.Func)
		}
		row := make([]dict.Value, len(items))
		reprRow := -1
		if g.repr != nil {
			for ci := range reprRel.Cols {
				reprRel.Cols[ci] = g.repr[ci : ci+1]
			}
			reprRow = 0
		}
		for c := range items {
			row[c] = evalWithAggs(ctx, reprRel, reprRow, items[c].Expr, leafVals)
		}
		rows = append(rows, row)
	}
	return rows
}
