package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrMemBudget marks a query that exceeded its memory budget. Protocol
// front ends map it to a client-class error (the query was too heavy,
// the store is healthy); concurrent queries are unaffected.
var ErrMemBudget = errors.New("exec: query memory budget exceeded")

// MemAccountant tracks the bytes a query's materializing operators
// retain — hash-join build sides, aggregate group states, sort rows,
// DISTINCT key sets, Drain outputs — against a fixed budget. Estimates
// are coarse (shape-based, not allocator-exact): the point is a
// predictable ceiling, not profiling. A nil accountant (or zero limit)
// accounts nothing and never fails, so unbudgeted queries pay one nil
// check.
type MemAccountant struct {
	limit int64
	used  atomic.Int64
}

// NewMemAccountant builds an accountant enforcing limit bytes;
// limit <= 0 means unlimited (tracking only).
func NewMemAccountant(limit int64) *MemAccountant {
	return &MemAccountant{limit: limit}
}

// Grow charges n bytes, failing with ErrMemBudget once the budget is
// exceeded. Safe on a nil receiver (no-op).
func (m *MemAccountant) Grow(n int64) error {
	if m == nil {
		return nil
	}
	u := m.used.Add(n)
	if m.limit > 0 && u > m.limit {
		return fmt.Errorf("%w: needs %d bytes, limit %d", ErrMemBudget, u, m.limit)
	}
	return nil
}

// Used reports the bytes currently charged.
func (m *MemAccountant) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Limit reports the budget (0: unlimited).
func (m *MemAccountant) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}
