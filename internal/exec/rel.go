// Package exec is the vectorized query executor. It provides the
// operators of both plan families in the paper:
//
//   - the Default family — per-property index scans over the six ordered
//     projections, stitched together with merge and index-lookup
//     self-joins (the plan shape of Fig. 4's left-hand sides), and
//   - the RDFscan/RDFjoin family — multi-property scans over the
//     clustered CS columns that produce a whole star in one pass with no
//     self-join effort, with zone-map block skipping (right-hand sides).
//
// All operators account page touches against the store's buffer pool, so
// cold/hot and clustered/parse-order contrasts surface in both simulated
// I/O and wall time.
package exec

import (
	"context"
	"fmt"
	"sync/atomic"

	"srdf/internal/colstore"
	"srdf/internal/dict"
	"srdf/internal/relational"
	"srdf/internal/triples"
)

// Rel is a materialized binding relation: one OID column per variable.
// dict.Nil cells are unbound (possible only transiently inside residual
// evaluation; BGP results are fully bound).
type Rel struct {
	Vars []string
	Cols [][]dict.OID
}

// NewRel allocates an empty relation with the given variables.
func NewRel(vars ...string) *Rel {
	r := &Rel{Vars: vars, Cols: make([][]dict.OID, len(vars))}
	return r
}

// Len returns the row count.
func (r *Rel) Len() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return len(r.Cols[0])
}

// ColIdx returns the column index of a variable, or -1.
func (r *Rel) ColIdx(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// AppendRow adds one row; vals must match Vars.
func (r *Rel) AppendRow(vals ...dict.OID) {
	if len(vals) != len(r.Vars) {
		panic(fmt.Sprintf("exec: row arity %d != %d", len(vals), len(r.Vars)))
	}
	for i, v := range vals {
		r.Cols[i] = append(r.Cols[i], v)
	}
}

// Row copies row i into dst.
func (r *Rel) Row(i int, dst []dict.OID) []dict.OID {
	dst = dst[:0]
	for _, c := range r.Cols {
		dst = append(dst, c[i])
	}
	return dst
}

// Select returns a new relation with only the rows whose index is in
// keep (ascending).
func (r *Rel) Select(keep []int32) *Rel {
	out := &Rel{Vars: r.Vars, Cols: make([][]dict.OID, len(r.Cols))}
	for ci, col := range r.Cols {
		nc := make([]dict.OID, len(keep))
		for i, k := range keep {
			nc[i] = col[k]
		}
		out.Cols[ci] = nc
	}
	return out
}

// appendOIDKey appends v's fixed-width little-endian encoding to kb —
// the one key encoding shared by hash joins, grouping and the parallel
// aggregate merge (identical encodings are what make merged group keys
// line up across workers).
func appendOIDKey(kb []byte, v dict.OID) []byte {
	for sh := 0; sh < 64; sh += 8 {
		kb = append(kb, byte(v>>sh))
	}
	return kb
}

// Ctx carries the store state an executor needs.
type Ctx struct {
	Dict *dict.Dictionary
	// Parallelism is the morsel-scan worker count; <=1 scans
	// sequentially.
	Parallelism int
	// Idx are the six projections over the full triple table (the
	// exhaustive-indexing access paths of the Default plans).
	Idx *triples.IndexSet
	// Cat is the materialized relational catalog (nil before Organize).
	Cat *relational.Catalog
	// Pool is the buffer pool; operators account page touches here.
	Pool *colstore.BufferPool
	// ProjTracks maps each projection to trackers of its three columns,
	// so index scans charge I/O like any other access path.
	ProjTracks map[*triples.Projection][3]*colstore.TrackedSlice
	// Query is the cancellation signal of the running query (nil: never
	// cancelled). Operators poll it at batch/morsel boundaries: when it
	// fires, Next calls report exhaustion, workers stop claiming morsels,
	// and the drain loops of materializing operators (hash build,
	// aggregation, sort) bail mid-input — so a per-query timeout or a
	// disconnected client stops scans and joins promptly instead of
	// running the pipeline dry.
	Query context.Context
	// done caches Query.Done() so the per-batch poll is one channel read.
	done <-chan struct{}
	// Mem is the query's memory budget (nil: unlimited). Materializing
	// operators charge their retained bytes here and fail the query with
	// ErrMemBudget when it is exhausted.
	Mem *MemAccountant
	// Stats is the query's per-operator runtime stats tree (nil: the
	// StatsOp wrappers count into throwaway local slots). Allocated per
	// query — never on the shared snapshot Ctx — so concurrent
	// executions of one cached plan keep separate counters.
	Stats *QueryStats
	// ReqID is the server request id of the query ("" outside the
	// server), carried here so executor-side failures correlate with
	// the access log.
	ReqID string
	// fail is the query's failure slot: the first executor-side error —
	// a recovered worker panic, an exhausted memory budget — is parked
	// here and treated like a cancellation by every batch-boundary poll,
	// so the whole pipeline unwinds and the iterator reports the cause.
	// Allocated per query by WithQueryContext; nil on the shared
	// snapshot Ctx.
	fail *atomic.Pointer[failSlot]
}

// failSlot boxes the error so it fits an atomic pointer.
type failSlot struct{ err error }

// WithQueryContext returns a shallow copy of the Ctx bound to qctx (nil
// for a query that cannot be cancelled) with a fresh failure slot. The
// shared snapshot Ctx stays untouched, so concurrent queries on one
// snapshot each carry their own cancellation signal and failure state.
func (c *Ctx) WithQueryContext(qctx context.Context) *Ctx {
	cp := *c
	cp.Query = qctx
	cp.done = nil
	if qctx != nil {
		cp.done = qctx.Done()
	}
	cp.fail = new(atomic.Pointer[failSlot])
	cp.Stats = nil // per-query; the caller attaches a fresh tree
	return &cp
}

// Fail parks err as the query's failure (first error wins) and reports
// whether the Ctx had a failure slot to record it in. Worker goroutines
// without a slot (a Ctx never forked by WithQueryContext) get false back
// and should re-panic rather than swallow the error.
func (c *Ctx) Fail(err error) bool {
	if c.fail == nil {
		return false
	}
	if err != nil {
		c.fail.CompareAndSwap(nil, &failSlot{err: err})
	}
	return true
}

// ExecErr returns the query's recorded executor failure (recovered
// panic, memory budget), or nil.
func (c *Ctx) ExecErr() error {
	if c.fail == nil {
		return nil
	}
	if f := c.fail.Load(); f != nil {
		return f.err
	}
	return nil
}

// Cancelled reports whether the query should stop: its context fired or
// an executor failure was recorded. It is cheap enough to poll once per
// batch or morsel.
func (c *Ctx) Cancelled() bool {
	if c.fail != nil && c.fail.Load() != nil {
		return true
	}
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// CancelErr returns the cancellation cause (context.Canceled or
// context.DeadlineExceeded), or nil while the query is live.
func (c *Ctx) CancelErr() error {
	if c.Query == nil {
		return nil
	}
	return c.Query.Err()
}

// StopErr returns why the pipeline should stop — the recorded executor
// failure first (it is the more specific cause), then the cancellation
// error — or nil while the query is live.
func (c *Ctx) StopErr() error {
	if err := c.ExecErr(); err != nil {
		return err
	}
	return c.CancelErr()
}

// TrackProjections registers every projection of an index set with the
// pool. Call once after (re)building indexes.
func (c *Ctx) TrackProjections(sets ...*triples.IndexSet) {
	if c.ProjTracks == nil {
		c.ProjTracks = make(map[*triples.Projection][3]*colstore.TrackedSlice)
	}
	for _, set := range sets {
		if set == nil {
			continue
		}
		for _, p := range triples.AllPerms {
			pr := set.Get(p)
			if pr == nil {
				continue
			}
			c.ProjTracks[pr] = [3]*colstore.TrackedSlice{
				colstore.Track(pr.A, c.Pool),
				colstore.Track(pr.B, c.Pool),
				colstore.Track(pr.C, c.Pool),
			}
		}
	}
}

// touchProj accounts a read of rows [lo,hi) of cols (bitmask: 1=A 2=B
// 4=C) of a projection.
func (c *Ctx) touchProj(pr *triples.Projection, lo, hi int, cols uint8) {
	ts, ok := c.ProjTracks[pr]
	if !ok {
		return
	}
	if cols&1 != 0 {
		ts[0].Touch(lo, hi)
	}
	if cols&2 != 0 {
		ts[1].Touch(lo, hi)
	}
	if cols&4 != 0 {
		ts[2].Touch(lo, hi)
	}
}

// valueOf decodes an OID for expression evaluation: literals get their
// typed value; resources compare as their IRI/blank string; Nil is
// invalid (filters reject it).
func (c *Ctx) valueOf(o dict.OID) dict.Value {
	if o == dict.Nil {
		return dict.Value{}
	}
	if o.IsLiteral() {
		v := c.Dict.Value(o)
		v.OID = o
		return v
	}
	t, ok := c.Dict.Term(o)
	if !ok {
		return dict.Value{}
	}
	if t.Kind == dict.KindBlank {
		return dict.Value{Kind: dict.VString, Str: "_:" + t.Value, OID: o}
	}
	return dict.Value{Kind: dict.VString, Str: t.Value, OID: o}
}
