package exec

import (
	"sync/atomic"

	"srdf/internal/dict"
)

// BloomFilter is a split bloom filter over OIDs: two probe positions
// derived from one 64-bit mix of the OID, in a power-of-two bit array
// sized at ~10 bits per key (<1% false positives). It is filled once on
// a hash join's build side and then read concurrently by scan workers,
// so it must not be mutated after publication.
type BloomFilter struct {
	bits []uint64
	mask uint64 // bit-index mask; len(bits)*64 - 1
}

// NewBloomFilter sizes a filter for n keys.
func NewBloomFilter(n int) *BloomFilter {
	bits := uint64(64)
	for bits < uint64(10*n) {
		bits <<= 1
	}
	return &BloomFilter{bits: make([]uint64, bits/64), mask: bits - 1}
}

// mix64 is the splitmix64 finalizer — a cheap full-avalanche mix so the
// two probe positions are independent even for dense OID ranges.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts o.
func (f *BloomFilter) Add(o dict.OID) {
	h := mix64(uint64(o))
	i1 := h & f.mask
	i2 := (h >> 32) & f.mask
	f.bits[i1>>6] |= 1 << (i1 & 63)
	f.bits[i2>>6] |= 1 << (i2 & 63)
}

// MayContain reports whether o could have been added: false means o is
// provably absent (no false negatives), true is a maybe.
func (f *BloomFilter) MayContain(o dict.OID) bool {
	h := mix64(uint64(o))
	i1 := h & f.mask
	i2 := (h >> 32) & f.mask
	return f.bits[i1>>6]&(1<<(i1&63)) != 0 && f.bits[i2>>6]&(1<<(i2&63)) != 0
}

// BloomHandle carries a runtime join filter from a hash join's build
// side down into a probe-side scan. The planner allocates the handle and
// wires it to both ends; HashJoinOp publishes the filled filter in Open
// after draining the build side and before opening the probe side, so
// every probe-side scan observes it (or, if the probe opens without a
// publication — a plan shape the planner avoids — scans simply skip the
// filter and stay exact).
//
// The handle lives in the (cached, re-executable) plan, so publication
// is atomic: concurrent executions of one cached plan may race
// publish/Filter, and the filter contents are deterministic for a given
// epoch, so observing another execution's filter is harmless.
type BloomHandle struct {
	// Var is the shared join variable the filter keys on.
	Var    string
	filter atomic.Pointer[BloomFilter]
}

func (h *BloomHandle) publish(f *BloomFilter) { h.filter.Store(f) }

// Filter returns the published filter, or nil before publication.
func (h *BloomHandle) Filter() *BloomFilter { return h.filter.Load() }

// ScanBloom attaches a bloom handle to one scan column: Prop indexes the
// star property whose values are tested, or -1 for the subject. Filters
// only ever drop rows whose join key is provably absent from the build
// side, so the join result is row-identical with filtering disabled.
type ScanBloom struct {
	H    *BloomHandle
	Prop int // index into Star.Props; -1 = subject
}
