package exec

import (
	"srdf/internal/colstore"
	"srdf/internal/dict"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// ScanOp is the streaming RDFScan: it walks one CS table block by block
// (the zone-map granularity), pruning blocks and touching pages only as
// the consumer pulls — so a satisfied LIMIT stops the scan before the
// tail blocks are ever faulted in.
//
// Predicates are evaluated by the column predicate kernels directly on
// the compressed segments (RLE answers equality in O(runs), FOR blocks
// prune on min/max before touching packed words); the surviving rows
// are emitted as a selection vector over zero-copy decoded block views,
// so rejected rows are never copied — consumers gather through Batch.Sel
// only at materialization points. With ctx.Parallelism > 1 the block
// range is split into morsels and dispatched to a worker pool (see
// parallel.go); the ordered merge keeps row order identical to the
// sequential scan.
type ScanOp struct {
	Table    *relational.Table
	Star     Star
	UseZones bool
	// RowLo/RowHi restrict the scan to a row window (RowHi -1 = open),
	// the planner's sort-key range pushdown path.
	RowLo, RowHi int
	// Blooms are runtime join filters pushed down from hash joins above
	// this scan; unpublished handles are skipped at Open.
	Blooms []ScanBloom

	ctx    *Ctx
	cols   []*relational.Col
	colIdx []int // column index in Table.Cols, for delta-tail access
	blooms []scanBloom
	block  int // next block to scan
	last   int // last block (inclusive)
	lo     int // effective row window
	hi     int
	// pinned is the block whose columns the sequential path holds
	// buffer-pool pins on (-1 = none): the views lent by emitBlock stay
	// backed until the consumer's next pull, so eviction never races a
	// live selection-vector view.
	pinned int
	sc     scanScratch
	par    *morselScan
	// delta-tail cursor: after the sealed blocks the scan walks the
	// table's unsealed delta rows (dOn false when the star is
	// unanswerable and the whole scan is empty).
	dOn  bool
	dCur int
}

// scanScratch is the per-scanner (or per-morsel-worker) reusable state:
// selection buffers, the subject view, and one decode buffer per output
// column. Nothing here is shared between workers.
type scanScratch struct {
	sel, tmp []int32
	subj     []dict.OID
	objBufs  [][]dict.OID // one per output property
	views    [][]dict.OID
	touched  []bool
}

func (sc *scanScratch) init(star *Star) {
	outCols := 0
	for i := range star.Props {
		if star.Props[i].ObjVar != "" {
			outCols++
		}
	}
	sc.sel = make([]int32, 0, colstore.BlockRows)
	sc.tmp = make([]int32, 0, colstore.BlockRows)
	sc.subj = make([]dict.OID, colstore.BlockRows)
	sc.objBufs = make([][]dict.OID, outCols)
	for i := range sc.objBufs {
		sc.objBufs[i] = make([]dict.OID, colstore.BlockRows)
	}
	sc.views = make([][]dict.OID, 0, outCols+1)
	sc.touched = make([]bool, len(star.Props))
}

// NewScanOp builds a streaming scan of star over one CS table.
func NewScanOp(t *relational.Table, star Star, useZones bool, rowLo, rowHi int) *ScanOp {
	return &ScanOp{Table: t, Star: star, UseZones: useZones, RowLo: rowLo, RowHi: rowHi}
}

func (s *ScanOp) Vars() []string { return s.Star.Vars() }

func (s *ScanOp) Open(ctx *Ctx) error {
	s.ctx = ctx
	s.last = -1 // empty unless a valid block range is established below
	s.pinned = -1
	s.dOn = false
	s.dCur = 0
	s.lo, s.hi = s.RowLo, s.RowHi
	if s.hi < 0 || s.hi > s.Table.SealedRows() {
		s.hi = s.Table.SealedRows()
	}
	if s.lo < 0 {
		s.lo = 0
	}
	s.cols = make([]*relational.Col, len(s.Star.Props))
	s.colIdx = make([]int, len(s.Star.Props))
	for i := range s.Star.Props {
		s.colIdx[i] = s.Table.ColIndex(s.Star.Props[i].Pred)
		if s.colIdx[i] < 0 {
			s.hi = s.lo // planner error; empty result
			return nil
		}
		s.cols[i] = s.Table.Cols[s.colIdx[i]]
	}
	// Resolve published bloom handles once: the fill happened in the
	// upstream hash join's Open, strictly before this probe-side Open.
	s.blooms = s.blooms[:0]
	for _, sb := range s.Blooms {
		f := sb.H.Filter()
		if f == nil {
			continue
		}
		oc := -1
		if sb.Prop >= 0 {
			oc = 0
			for i := 0; i < sb.Prop; i++ {
				if s.Star.Props[i].ObjVar != "" {
					oc++
				}
			}
		}
		s.blooms = append(s.blooms, scanBloom{f: f, prop: sb.Prop, oc: oc})
	}
	// The row window restricts the sealed region only; the unsealed
	// delta tail is always scanned (its rows carry arbitrary subjects
	// and evaluate every predicate in full).
	s.dOn = s.Table.DeltaLen() > 0
	if s.hi <= s.lo {
		if s.dOn {
			s.sc.init(&s.Star)
		}
		return nil
	}
	s.block = s.lo / colstore.BlockRows
	s.last = (s.hi - 1) / colstore.BlockRows
	s.sc.init(&s.Star)
	if ctx.Parallelism > 1 && s.last-s.block+1 >= 2*morselBlocks {
		// pre-build zone maps (a no-op for sealed columns, which carry
		// them from Seal): lazily building them from concurrent workers
		// would race
		for _, c := range s.cols {
			c.Data.Zones()
		}
		s.par = startMorselScan(ctx, s, ctx.Parallelism)
	}
	return nil
}

// selectBlock evaluates the star's predicates over block blk with the
// column kernels and returns the surviving rows as a block-relative
// selection vector (owned by sc). all=true means every row of the
// [wlo,whi) window qualifies without any kernel having run; otherwise an
// empty sel means the block produced nothing.
func (s *ScanOp) selectBlock(blk int, sc *scanScratch) (sel []int32, all bool, wlo, whi int) {
	bs := blk * colstore.BlockRows
	wlo, whi = bs, bs+colstore.BlockRows
	if wlo < s.lo {
		wlo = s.lo
	}
	if whi > s.hi {
		whi = s.hi
	}
	if s.UseZones && !blockMayMatch(s.cols, s.Star.Props, blk) {
		return nil, false, wlo, whi // pruned: pages never touched
	}
	rlo, rhi := wlo-bs, whi-bs
	all = true
	for i := range s.cols {
		p := &s.Star.Props[i]
		col := s.cols[i].Data
		sc.touched[i] = false
		var tmp []int32
		switch {
		case p.ObjConst != dict.Nil:
			if p.HasRange && (p.ObjConst < p.Lo || p.ObjConst > p.Hi) {
				return nil, false, wlo, whi // contradictory constraints
			}
			tmp = col.SelectEqBlock(blk, rlo, rhi, p.ObjConst, 0, sc.tmp[:0])
		case p.HasRange:
			tmp = col.SelectRangeBlock(blk, rlo, rhi, p.Lo, p.Hi, 0, sc.tmp[:0])
		default:
			// presence-only property: the kernel is skippable when the
			// block provably has no NULLs
			zm := col.Zones()
			if blk < zm.NumBlocks() {
				if z := zm.Zones[blk]; !z.HasNull && !z.AllNull {
					continue
				}
			}
			tmp = col.SelectNotNilBlock(blk, rlo, rhi, 0, sc.tmp[:0])
		}
		col.Touch(wlo, whi)
		sc.touched[i] = true
		if all {
			sc.sel = append(sc.sel[:0], tmp...)
			all = false
		} else {
			sc.sel = intersectSel(sc.sel, tmp)
		}
		if len(sc.sel) == 0 {
			return nil, false, wlo, whi
		}
	}
	// Mask tombstoned rows (deleted or migrated to the delta tail): the
	// sealed segments are immutable, so deletion is a scan-time filter.
	if del := s.Table.Del; del.AnyInRange(wlo, whi) {
		if all {
			sc.sel = sc.sel[:0]
			for i := rlo; i < rhi; i++ {
				sc.sel = append(sc.sel, int32(i))
			}
			all = false
		}
		out := sc.sel[:0]
		for _, k := range sc.sel {
			if !del.Get(bs + int(k)) {
				out = append(out, k)
			}
		}
		sc.sel = out
		if len(sc.sel) == 0 {
			return nil, false, wlo, whi
		}
	}
	// Runtime bloom filters from hash joins above this scan: drop rows
	// whose join key is provably absent from the build side. Gathering
	// the key column here is paid back by never moving the row further.
	if len(s.blooms) > 0 {
		if all {
			sc.sel = sc.sel[:0]
			for i := rlo; i < rhi; i++ {
				sc.sel = append(sc.sel, int32(i))
			}
			all = false
		}
		for bi := range s.blooms {
			bl := &s.blooms[bi]
			out := sc.sel[:0]
			if bl.prop < 0 {
				for _, k := range sc.sel {
					if bl.f.MayContain(s.Table.SubjectOID(bs + int(k))) {
						out = append(out, k)
					}
				}
			} else {
				col := s.cols[bl.prop].Data
				if !sc.touched[bl.prop] {
					col.Touch(wlo, whi)
					sc.touched[bl.prop] = true
				}
				vals := col.GatherBlock(blk, sc.sel, sc.objBufs[bl.oc])
				for _, k := range sc.sel {
					if bl.f.MayContain(vals[k]) {
						out = append(out, k)
					}
				}
			}
			sc.sel = out
			if len(sc.sel) == 0 {
				return nil, false, wlo, whi
			}
		}
	}
	if all {
		return nil, true, wlo, whi
	}
	if len(sc.sel) == rhi-rlo {
		return nil, true, wlo, whi // every row survived: emit dense
	}
	return sc.sel, false, wlo, whi
}

// scanBloom is one resolved bloom probe: the published filter plus the
// star property it keys on (-1 = the subject column).
type scanBloom struct {
	f    *BloomFilter
	prop int
	oc   int // objBufs index when prop >= 0
}

// intersectSel intersects two ascending selections in place into a.
func intersectSel(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// blockView resolves output column oc (backed by prop pi) of block blk
// for the given selection, touching its pages if the kernel pass did
// not. Sparse selections gather single rows off the compressed form;
// dense ones decode the block (zero-copy for plain blocks).
func (s *ScanOp) blockView(sc *scanScratch, blk, pi, oc, wlo, whi int, sel []int32) []dict.OID {
	col := s.cols[pi].Data
	if !sc.touched[pi] {
		col.Touch(wlo, whi)
	}
	if sel != nil && len(sel)*4 < whi-wlo {
		return col.GatherBlock(blk, sel, sc.objBufs[oc])
	}
	return col.BlockValues(blk, sc.objBufs[oc])
}

// emitBlock lends block blk's surviving rows to the consumer batch as
// views plus a selection vector — no row copies.
func (s *ScanOp) emitBlock(b *Batch, blk int, sel []int32, wlo, whi int) {
	bs := blk * colstore.BlockRows
	sc := &s.sc
	views := sc.views[:0]
	if sel == nil {
		// dense window: slice the views, no selection needed
		n := whi - wlo
		subj := sc.subj[:n]
		for k := 0; k < n; k++ {
			subj[k] = s.Table.SubjectOID(wlo + k)
		}
		views = append(views, subj)
		oc := 0
		for i := range s.cols {
			if s.Star.Props[i].ObjVar == "" {
				continue
			}
			view := s.blockView(sc, blk, i, oc, wlo, whi, nil)
			views = append(views, view[wlo-bs:whi-bs])
			oc++
		}
		b.SetViews(nil, views...)
		return
	}
	subj := sc.subj[:colstore.BlockRows]
	for _, k := range sel {
		subj[k] = s.Table.SubjectOID(bs + int(k))
	}
	views = append(views, subj)
	oc := 0
	for i := range s.cols {
		if s.Star.Props[i].ObjVar == "" {
			continue
		}
		views = append(views, s.blockView(sc, blk, i, oc, wlo, whi, sel))
		oc++
	}
	b.SetViews(sel, views...)
}

// pinBlock / unpinBlock hold buffer-pool pins on block blk of every
// scanned column, so the pool cannot evict a decoded block out from
// under a kernel or a lent view.
func (s *ScanOp) pinBlock(blk int) {
	for _, c := range s.cols {
		c.Data.PinBlock(blk)
	}
}

func (s *ScanOp) unpinBlock(blk int) {
	for _, c := range s.cols {
		c.Data.UnpinBlock(blk)
	}
}

// appendBlock materializes block blk's surviving rows onto dst with bulk
// column copies — the morsel-worker path, where results cross a channel
// and cannot lend scratch-backed views. The pin is scoped to the call:
// the copies land in dst before it returns.
func (s *ScanOp) appendBlock(blk int, dst *Rel, sc *scanScratch) {
	s.pinBlock(blk)
	defer s.unpinBlock(blk)
	sel, all, wlo, whi := s.selectBlock(blk, sc)
	if !all && len(sel) == 0 {
		return
	}
	bs := blk * colstore.BlockRows
	subj := dst.Cols[0]
	if all {
		for r := wlo; r < whi; r++ {
			subj = append(subj, s.Table.SubjectOID(r))
		}
	} else {
		for _, k := range sel {
			subj = append(subj, s.Table.SubjectOID(bs+int(k)))
		}
	}
	dst.Cols[0] = subj
	oc, dc := 0, 1
	for i := range s.cols {
		if s.Star.Props[i].ObjVar == "" {
			continue
		}
		view := s.blockView(sc, blk, i, oc, wlo, whi, sel)
		if all {
			dst.Cols[dc] = append(dst.Cols[dc], view[wlo-bs:whi-bs]...)
		} else {
			dst.Cols[dc] = gatherSel(dst.Cols[dc], view, sel)
		}
		oc++
		dc++
	}
}

func (s *ScanOp) Next(b *Batch) bool {
	// the views lent by the previous emitBlock are dead once the
	// consumer pulls again; release their pins
	if s.pinned >= 0 {
		s.unpinBlock(s.pinned)
		s.pinned = -1
	}
	if s.ctx.Cancelled() {
		return false
	}
	if s.par != nil {
		if s.par.next(b) {
			return true
		}
		// sealed blocks exhausted (the workers covered the whole block
		// range); the delta tail streams sequentially
		s.par.stop()
		s.par = nil
		s.block = s.last + 1
	}
	for s.block <= s.last {
		// a selective scan can skip many blocks between emitted batches;
		// re-poll so cancellation latency stays bounded by one block
		if s.ctx.Cancelled() {
			return false
		}
		blk := s.block
		s.block++
		s.pinBlock(blk)
		sel, all, wlo, whi := s.selectBlock(blk, &s.sc)
		if !all && len(sel) == 0 {
			s.unpinBlock(blk)
			continue
		}
		if all {
			sel = nil
		}
		s.emitBlock(b, blk, sel, wlo, whi)
		s.pinned = blk // held until the consumer's next pull or Close
		return true
	}
	return s.nextDelta(b)
}

// nextDelta streams the table's unsealed delta tail after the sealed
// blocks: each chunk evaluates the star's predicates row-at-a-time over
// the delta columns (they are memory-resident flat vectors — no
// compressed kernels, no page accounting) and lends the delta column
// slices to the batch as zero-copy views under a selection vector.
func (s *ScanOp) nextDelta(b *Batch) bool {
	if !s.dOn {
		return false
	}
	d := s.Table.Delta
	n := d.Len()
	sc := &s.sc
	for s.dCur < n {
		if s.ctx.Cancelled() {
			return false
		}
		lo := s.dCur
		hi := lo + colstore.BlockRows
		if hi > n {
			hi = n
		}
		s.dCur = hi
		sel := sc.sel[:0]
		for r := lo; r < hi; r++ {
			ok := true
			for i := range s.colIdx {
				p := &s.Star.Props[i]
				v := d.Cols[s.colIdx[i]][r]
				if v == dict.Nil || !p.matches(v) {
					ok = false
					break
				}
			}
			for bi := 0; ok && bi < len(s.blooms); bi++ {
				bl := &s.blooms[bi]
				v := d.Subj[r]
				if bl.prop >= 0 {
					v = d.Cols[s.colIdx[bl.prop]][r]
				}
				ok = bl.f.MayContain(v)
			}
			if ok {
				sel = append(sel, int32(r-lo))
			}
		}
		sc.sel = sel
		if len(sel) == 0 {
			continue
		}
		views := sc.views[:0]
		views = append(views, d.Subj[lo:hi])
		for i := range s.colIdx {
			if s.Star.Props[i].ObjVar == "" {
				continue
			}
			views = append(views, d.Cols[s.colIdx[i]][lo:hi])
		}
		sc.views = views
		if len(sel) == hi-lo {
			b.SetViews(nil, views...)
		} else {
			b.SetViews(sel, views...)
		}
		return true
	}
	return false
}

func (s *ScanOp) Close() {
	if s.pinned >= 0 {
		s.unpinBlock(s.pinned)
		s.pinned = -1
	}
	if s.par != nil {
		s.par.stop()
		s.par = nil
	}
}

// DefaultStarOp is the streaming Default-family star: the seed index
// scan is pulled chunk by chunk and every remaining property is joined
// onto each chunk, with merge cursors persisting across chunks so the
// access pattern matches the materialized DefaultStar.
type DefaultStarOp struct {
	star Star
	idx  *triples.IndexSet

	ctx      *Ctx
	pso, pos *triples.Projection
	seed     int // index of the seed property
	seedLen  int

	// streaming seed cursor: either a projection window [cursor,hiRow)
	// or a pre-sorted materialized seed (range case, which must sort).
	kind    seedKind
	cursor  int
	hiRow   int
	seedRel relCursor

	ext     []extendState
	pending relCursor
	done    bool
}

type seedKind uint8

const (
	seedConst seedKind = iota // pos.C run of a bound object
	seedRange                 // materialized (sorted) range seed
	seedRun                   // full pso property run
)

// extendState is the persistent join state of one non-seed property.
type extendState struct {
	prop   *StarProp
	lookup bool // index nested-loop vs merge self-join
	k      int  // merge cursor into the pso run
	runLo  int
	runHi  int
}

// NewDefaultStarOp builds a streaming Default-family star operator.
func NewDefaultStarOp(star Star, idx *triples.IndexSet) *DefaultStarOp {
	return &DefaultStarOp{star: star, idx: idx}
}

func (d *DefaultStarOp) Vars() []string { return d.star.Vars() }

func (d *DefaultStarOp) Open(ctx *Ctx) error {
	d.ctx = ctx
	if len(d.star.Props) == 0 {
		d.done = true
		return nil
	}
	d.pso = d.idx.Get(triples.PSO)
	d.pos = d.idx.Get(triples.POS)
	d.seed, d.seedLen = chooseSeed(&d.star, d.pso, d.pos)
	sp := &d.star.Props[d.seed]
	switch {
	case sp.ObjConst != dict.Nil:
		d.kind = seedConst
		d.cursor, d.hiRow = d.pos.Range2(sp.Pred, sp.ObjConst)
	case sp.HasRange:
		// the range seed must sort by subject before streaming
		d.kind = seedRange
		d.seedRel = relCursor{rel: seedScan(ctx, sp, d.star.SubjVar, d.pso, d.pos)}
	default:
		d.kind = seedRun
		d.cursor, d.hiRow = d.pso.Range1(sp.Pred)
	}
	for i := range d.star.Props {
		if i == d.seed {
			continue
		}
		p := &d.star.Props[i]
		runLo, runHi := d.pso.Range1(p.Pred)
		st := extendState{prop: p, k: runLo, runLo: runLo, runHi: runHi}
		// The materialized executor decides per extension from the live
		// relation size; streaming fixes the choice from the seed
		// cardinality, which is known upfront.
		st.lookup = d.seedLen*4 < runHi-runLo
		if !st.lookup {
			// merge self-join reads the whole run, like extendStar
			ctx.touchProj(d.pso, runLo, runHi, 2|4)
		}
		d.ext = append(d.ext, st)
	}
	return nil
}

// nextSeedChunk produces the next <=BatchRows seed rows, sorted by
// subject, or nil at exhaustion.
func (d *DefaultStarOp) nextSeedChunk() *Rel {
	sp := &d.star.Props[d.seed]
	switch d.kind {
	case seedRange:
		chunk := NewRel(d.seedRel.rel.Vars...)
		n := d.seedRel.rel.Len() - d.seedRel.off
		if n <= 0 {
			return nil
		}
		if n > BatchRows {
			n = BatchRows
		}
		for i := range chunk.Cols {
			chunk.Cols[i] = d.seedRel.rel.Cols[i][d.seedRel.off : d.seedRel.off+n]
		}
		d.seedRel.off += n
		return chunk
	case seedConst:
		if d.cursor >= d.hiRow {
			return nil
		}
		n := d.hiRow - d.cursor
		if n > BatchRows {
			n = BatchRows
		}
		d.ctx.touchProj(d.pos, d.cursor, d.cursor+n, 4) // C = subjects
		chunk := NewRel(d.star.SubjVar)
		chunk.Cols[0] = d.pos.C[d.cursor : d.cursor+n]
		d.cursor += n
		return chunk
	default: // seedRun
		if d.cursor >= d.hiRow {
			return nil
		}
		n := d.hiRow - d.cursor
		if n > BatchRows {
			n = BatchRows
		}
		d.ctx.touchProj(d.pso, d.cursor, d.cursor+n, 2|4)
		var chunk *Rel
		if sp.ObjVar != "" {
			chunk = NewRel(d.star.SubjVar, sp.ObjVar)
			chunk.Cols[0] = d.pso.B[d.cursor : d.cursor+n]
			chunk.Cols[1] = d.pso.C[d.cursor : d.cursor+n]
		} else {
			chunk = NewRel(d.star.SubjVar)
			chunk.Cols[0] = d.pso.B[d.cursor : d.cursor+n]
		}
		d.cursor += n
		return chunk
	}
}

// extendChunk joins one more property onto a seed chunk, advancing the
// persistent merge cursor (chunks arrive subject-sorted, so the cursor
// never rewinds).
func (d *DefaultStarOp) extendChunk(rel *Rel, st *extendState) *Rel {
	si := rel.ColIdx(d.star.SubjVar)
	p := st.prop
	outVars := rel.Vars
	if p.ObjVar != "" {
		outVars = append(append([]string{}, rel.Vars...), p.ObjVar)
	}
	out := NewRel(outVars...)
	buf := make([]dict.OID, 0, len(rel.Vars)+1)

	if st.lookup {
		for i := 0; i < rel.Len(); i++ {
			s := rel.Cols[si][i]
			lo, hi := d.pso.Range2(p.Pred, s)
			if hi == lo {
				continue
			}
			d.ctx.touchProj(d.pso, lo, hi, 4)
			for k := lo; k < hi; k++ {
				o := d.pso.C[k]
				if !p.matches(o) {
					continue
				}
				buf = rel.Row(i, buf)
				if p.ObjVar != "" {
					buf = append(buf, o)
				}
				out.AppendRow(buf...)
			}
		}
		return out
	}

	for i := 0; i < rel.Len(); i++ {
		s := rel.Cols[si][i]
		for st.k < st.runHi && d.pso.B[st.k] < s {
			st.k++
		}
		for j := st.k; j < st.runHi && d.pso.B[j] == s; j++ {
			o := d.pso.C[j]
			if !p.matches(o) {
				continue
			}
			buf = rel.Row(i, buf)
			if p.ObjVar != "" {
				buf = append(buf, o)
			}
			out.AppendRow(buf...)
		}
	}
	return out
}

func (d *DefaultStarOp) Next(b *Batch) bool {
	for !d.done {
		if d.ctx.Cancelled() {
			d.done = true
			return false
		}
		if d.pending.rel != nil && d.pending.fill(b) {
			return true
		}
		chunk := d.nextSeedChunk()
		if chunk == nil {
			d.done = true
			return false
		}
		for i := range d.ext {
			if chunk.Len() == 0 {
				break
			}
			chunk = d.extendChunk(chunk, &d.ext[i])
		}
		if chunk.Len() > 0 {
			// the seed choice reordered columns; restore the star's
			// declared schema before emitting positionally
			ordered := NewRel(d.star.Vars()...)
			for i, v := range ordered.Vars {
				ordered.Cols[i] = chunk.Cols[chunk.ColIdx(v)]
			}
			chunk = ordered
		}
		d.pending = relCursor{rel: chunk}
	}
	return false
}

func (d *DefaultStarOp) Close() {}

// FilterOp streams FILTER evaluation as selection-vector refinement: it
// evaluates the expression over each input batch's logical rows and
// forwards the batch's column views with a shrunken selection instead of
// copying the survivors — rejected rows cost no data movement, and a
// filter over a scan composes two selections without materializing
// either.
type FilterOp struct {
	in   Operator
	expr sparql.Expr

	ctx     *Ctx
	inBatch *Batch
	sel     []int32
	physRel *Rel
	env     *evalEnv
}

// NewFilterOp streams Filter over each input batch.
func NewFilterOp(in Operator, expr sparql.Expr) Operator {
	return &FilterOp{in: in, expr: expr}
}

func (f *FilterOp) Vars() []string { return f.in.Vars() }

func (f *FilterOp) Open(ctx *Ctx) error {
	f.ctx = ctx
	f.inBatch = NewBatch(f.in.Vars())
	f.sel = make([]int32, 0, BatchRows)
	return f.in.Open(ctx)
}

func (f *FilterOp) Next(b *Batch) bool {
	for {
		f.inBatch.Reset()
		if !f.in.Next(f.inBatch) {
			return false
		}
		if f.physRel == nil {
			f.physRel = &Rel{Vars: f.inBatch.Vars}
			f.env = newEvalEnv(f.ctx, f.physRel)
		}
		f.physRel.Cols = f.inBatch.Cols // physical rows; Sel indexes them
		sel := f.sel[:0]
		n := f.inBatch.Len()
		for r := 0; r < n; r++ {
			phys := r
			if f.inBatch.Sel != nil {
				phys = int(f.inBatch.Sel[r])
			}
			f.env.row = phys
			if pass, ok := truth(f.env.evalValue(f.expr)); ok && pass {
				sel = append(sel, int32(phys))
			}
		}
		f.sel = sel
		if len(sel) == 0 {
			continue
		}
		if len(sel) == n && f.inBatch.Sel == nil {
			b.SetViews(nil, f.inBatch.Cols...) // nothing rejected: stay dense
		} else {
			b.SetViews(sel, f.inBatch.Cols...)
		}
		return true
	}
}

func (f *FilterOp) Close() { f.in.Close() }

// NewRDFJoinOp streams RDFJoin: candidate subjects arrive batch by
// batch and each batch is extended positionally from the CS table.
func NewRDFJoinOp(in Operator, keyVar string, t *relational.Table, star Star, fullIdx *triples.IndexSet) Operator {
	outVars := append([]string{}, in.Vars()...)
	for i := range star.Props {
		if star.Props[i].ObjVar != "" {
			outVars = append(outVars, star.Props[i].ObjVar)
		}
	}
	return NewMapOp(in, outVars, func(ctx *Ctx, chunk *Rel) *Rel {
		return RDFJoin(ctx, chunk, keyVar, t, star, fullIdx)
	})
}

// HashJoinOp is the streaming natural hash join: the build side is
// drained and hashed at Open, the probe side streams through. The output
// schema is the left child's variables followed by the right child's
// extras regardless of which side builds, so plan shapes keep their
// column order.
type HashJoinOp struct {
	left, right Operator
	buildLeft   bool
	vars        []string
	// Blooms are handles to publish after the build side drains: each is
	// filled with the build column of its variable, then probe-side scans
	// (opened strictly after) prune their selection vectors with it.
	Blooms []*BloomHandle

	ctx      *Ctx
	probe    Operator
	build    *Rel
	buildMap map[string][]int32
	buildKey []int
	probeKey []int
	// per output var: source column (build or probe)
	fromBuild []int
	fromProbe []int

	probeBatch *Batch
	pending    relCursor
}

// NewHashJoinOp joins left and right on their shared variables, hashing
// the side indicated by buildLeft.
func NewHashJoinOp(left, right Operator, buildLeft bool) *HashJoinOp {
	vars := append([]string{}, left.Vars()...)
	seen := map[string]bool{}
	for _, v := range vars {
		seen[v] = true
	}
	for _, v := range right.Vars() {
		if !seen[v] {
			vars = append(vars, v)
		}
	}
	return &HashJoinOp{left: left, right: right, buildLeft: buildLeft, vars: vars}
}

func (h *HashJoinOp) Vars() []string { return h.vars }

func (h *HashJoinOp) Open(ctx *Ctx) error {
	h.ctx = ctx
	buildSide := h.right
	h.probe = h.left
	if h.buildLeft {
		buildSide = h.left
		h.probe = h.right
	}
	h.build = Drain(ctx, buildSide)
	if err := ctx.StopErr(); err != nil {
		// the build-side drain bailed (cancel, budget, worker panic):
		// fail Open instead of probing against a partial build
		return err
	}
	// hash table overhead on top of the drained cells Drain charged
	if err := ctx.Mem.Grow(int64(h.build.Len()) * 32); err != nil {
		ctx.Fail(err)
		return err
	}
	colOf := func(vars []string, v string) int {
		for i, w := range vars {
			if w == v {
				return i
			}
		}
		return -1
	}
	// Publish bloom filters before the probe side opens, so its scans
	// observe them in their Open.
	for _, bh := range h.Blooms {
		ci := colOf(h.build.Vars, bh.Var)
		if ci < 0 {
			continue
		}
		f := NewBloomFilter(h.build.Len())
		for i := 0; i < h.build.Len(); i++ {
			f.Add(h.build.Cols[ci][i])
		}
		bh.publish(f)
	}
	if err := h.probe.Open(ctx); err != nil {
		return err
	}
	probeVars := h.probe.Vars()
	for _, v := range h.build.Vars {
		if pi := colOf(probeVars, v); pi >= 0 {
			h.buildKey = append(h.buildKey, colOf(h.build.Vars, v))
			h.probeKey = append(h.probeKey, pi)
		}
	}
	h.fromBuild = make([]int, len(h.vars))
	h.fromProbe = make([]int, len(h.vars))
	for i, v := range h.vars {
		h.fromBuild[i] = colOf(h.build.Vars, v)
		h.fromProbe[i] = colOf(probeVars, v)
	}
	h.buildMap = make(map[string][]int32, h.build.Len())
	var kb []byte
	for i := 0; i < h.build.Len(); i++ {
		kb = kb[:0]
		for _, ci := range h.buildKey {
			kb = appendOIDKey(kb, h.build.Cols[ci][i])
		}
		h.buildMap[string(kb)] = append(h.buildMap[string(kb)], int32(i))
	}
	h.probeBatch = NewBatch(probeVars)
	return nil
}

func (h *HashJoinOp) Next(b *Batch) bool {
	var kb []byte
	for {
		if h.pending.rel != nil && h.pending.fill(b) {
			return true
		}
		h.probeBatch.Reset()
		if !h.probe.Next(h.probeBatch) {
			return false
		}
		out := NewRel(h.vars...)
		for j := 0; j < h.probeBatch.Len(); j++ {
			kb = kb[:0]
			for _, ci := range h.probeKey {
				kb = appendOIDKey(kb, h.probeBatch.At(ci, j))
			}
			for _, i := range h.buildMap[string(kb)] {
				for c := range h.vars {
					var v dict.OID
					if bi := h.fromBuild[c]; bi >= 0 {
						v = h.build.Cols[bi][i]
					} else {
						v = h.probeBatch.At(h.fromProbe[c], j)
					}
					out.Cols[c] = append(out.Cols[c], v)
				}
			}
		}
		h.pending = relCursor{rel: out}
	}
}

func (h *HashJoinOp) Close() { h.probe.Close() }
