package exec

import (
	"srdf/internal/colstore"
	"srdf/internal/dict"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// ScanOp is the streaming RDFScan: it walks one CS table block by block
// (the zone-map granularity), pruning blocks and touching pages only as
// the consumer pulls — so a satisfied LIMIT stops the scan before the
// tail blocks are ever faulted in. With ctx.Parallelism > 1 the block
// range is split into morsels and dispatched to a worker pool (see
// parallel.go); the ordered merge keeps row order identical to the
// sequential scan.
type ScanOp struct {
	Table    *relational.Table
	Star     Star
	UseZones bool
	// RowLo/RowHi restrict the scan to a row window (RowHi -1 = open),
	// the planner's sort-key range pushdown path.
	RowLo, RowHi int

	ctx   *Ctx
	cols  []*relational.Col
	block int // next block to scan
	last  int // last block (inclusive)
	lo    int // effective row window
	hi    int
	row   []dict.OID
	par   *morselScan
}

// NewScanOp builds a streaming scan of star over one CS table.
func NewScanOp(t *relational.Table, star Star, useZones bool, rowLo, rowHi int) *ScanOp {
	return &ScanOp{Table: t, Star: star, UseZones: useZones, RowLo: rowLo, RowHi: rowHi}
}

func (s *ScanOp) Vars() []string { return s.Star.Vars() }

func (s *ScanOp) Open(ctx *Ctx) error {
	s.ctx = ctx
	s.last = -1 // empty unless a valid block range is established below
	s.lo, s.hi = s.RowLo, s.RowHi
	if s.hi < 0 || s.hi > s.Table.Count {
		s.hi = s.Table.Count
	}
	if s.lo < 0 {
		s.lo = 0
	}
	s.cols = make([]*relational.Col, len(s.Star.Props))
	for i := range s.Star.Props {
		s.cols[i] = s.Table.Col(s.Star.Props[i].Pred)
		if s.cols[i] == nil {
			s.hi = s.lo // planner error; empty result
			return nil
		}
	}
	if s.hi <= s.lo {
		return nil
	}
	s.block = s.lo / colstore.BlockRows
	s.last = (s.hi - 1) / colstore.BlockRows
	s.row = make([]dict.OID, 0, len(s.Star.Vars()))
	if ctx.Parallelism > 1 && s.last-s.block+1 >= 2*morselBlocks {
		if s.UseZones {
			// pre-build zone maps: lazily building them from concurrent
			// workers would race
			for _, c := range s.cols {
				c.Data.Zones()
			}
		}
		s.par = startMorselScan(ctx, s, ctx.Parallelism)
	}
	return nil
}

// scanBlock appends block b's matching rows to dst, honoring the row
// window. Shared by the sequential path and the morsel workers.
func (s *ScanOp) scanBlock(b int, row []dict.OID, dst *Rel) []dict.OID {
	blo := b * colstore.BlockRows
	bhi := blo + colstore.BlockRows
	if blo < s.lo {
		blo = s.lo
	}
	if bhi > s.hi {
		bhi = s.hi
	}
	if s.UseZones && !blockMayMatch(s.cols, s.Star.Props, b) {
		return row // pruned: pages never touched
	}
	for i := range s.cols {
		s.cols[i].Data.Touch(blo, bhi)
	}
	for r := blo; r < bhi; r++ {
		ok := true
		for i := range s.cols {
			v := s.cols[i].Data.Vals[r]
			if v == dict.Nil || !s.Star.Props[i].matches(v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row = row[:0]
		row = append(row, s.Table.SubjectOID(r))
		for i := range s.cols {
			if s.Star.Props[i].ObjVar != "" {
				row = append(row, s.cols[i].Data.Vals[r])
			}
		}
		dst.AppendRow(row...)
	}
	return row
}

func (s *ScanOp) Next(b *Batch) bool {
	if s.par != nil {
		return s.par.next(b)
	}
	scratch := b.asRel()
	for s.block <= s.last {
		blk := s.block
		s.block++
		s.row = s.scanBlock(blk, s.row, scratch)
		if b.Len() > 0 {
			return true
		}
	}
	return false
}

func (s *ScanOp) Close() {
	if s.par != nil {
		s.par.stop()
		s.par = nil
	}
}

// DefaultStarOp is the streaming Default-family star: the seed index
// scan is pulled chunk by chunk and every remaining property is joined
// onto each chunk, with merge cursors persisting across chunks so the
// access pattern matches the materialized DefaultStar.
type DefaultStarOp struct {
	star Star
	idx  *triples.IndexSet

	ctx      *Ctx
	pso, pos *triples.Projection
	seed     int // index of the seed property
	seedLen  int

	// streaming seed cursor: either a projection window [cursor,hiRow)
	// or a pre-sorted materialized seed (range case, which must sort).
	kind    seedKind
	cursor  int
	hiRow   int
	seedRel relCursor

	ext     []extendState
	pending relCursor
	done    bool
}

type seedKind uint8

const (
	seedConst seedKind = iota // pos.C run of a bound object
	seedRange                 // materialized (sorted) range seed
	seedRun                   // full pso property run
)

// extendState is the persistent join state of one non-seed property.
type extendState struct {
	prop   *StarProp
	lookup bool // index nested-loop vs merge self-join
	k      int  // merge cursor into the pso run
	runLo  int
	runHi  int
}

// NewDefaultStarOp builds a streaming Default-family star operator.
func NewDefaultStarOp(star Star, idx *triples.IndexSet) *DefaultStarOp {
	return &DefaultStarOp{star: star, idx: idx}
}

func (d *DefaultStarOp) Vars() []string { return d.star.Vars() }

func (d *DefaultStarOp) Open(ctx *Ctx) error {
	d.ctx = ctx
	if len(d.star.Props) == 0 {
		d.done = true
		return nil
	}
	d.pso = d.idx.Get(triples.PSO)
	d.pos = d.idx.Get(triples.POS)
	d.seed, d.seedLen = chooseSeed(&d.star, d.pso, d.pos)
	sp := &d.star.Props[d.seed]
	switch {
	case sp.ObjConst != dict.Nil:
		d.kind = seedConst
		d.cursor, d.hiRow = d.pos.Range2(sp.Pred, sp.ObjConst)
	case sp.HasRange:
		// the range seed must sort by subject before streaming
		d.kind = seedRange
		d.seedRel = relCursor{rel: seedScan(ctx, sp, d.star.SubjVar, d.pso, d.pos)}
	default:
		d.kind = seedRun
		d.cursor, d.hiRow = d.pso.Range1(sp.Pred)
	}
	for i := range d.star.Props {
		if i == d.seed {
			continue
		}
		p := &d.star.Props[i]
		runLo, runHi := d.pso.Range1(p.Pred)
		st := extendState{prop: p, k: runLo, runLo: runLo, runHi: runHi}
		// The materialized executor decides per extension from the live
		// relation size; streaming fixes the choice from the seed
		// cardinality, which is known upfront.
		st.lookup = d.seedLen*4 < runHi-runLo
		if !st.lookup {
			// merge self-join reads the whole run, like extendStar
			ctx.touchProj(d.pso, runLo, runHi, 2|4)
		}
		d.ext = append(d.ext, st)
	}
	return nil
}

// nextSeedChunk produces the next <=BatchRows seed rows, sorted by
// subject, or nil at exhaustion.
func (d *DefaultStarOp) nextSeedChunk() *Rel {
	sp := &d.star.Props[d.seed]
	switch d.kind {
	case seedRange:
		chunk := NewRel(d.seedRel.rel.Vars...)
		n := d.seedRel.rel.Len() - d.seedRel.off
		if n <= 0 {
			return nil
		}
		if n > BatchRows {
			n = BatchRows
		}
		for i := range chunk.Cols {
			chunk.Cols[i] = d.seedRel.rel.Cols[i][d.seedRel.off : d.seedRel.off+n]
		}
		d.seedRel.off += n
		return chunk
	case seedConst:
		if d.cursor >= d.hiRow {
			return nil
		}
		n := d.hiRow - d.cursor
		if n > BatchRows {
			n = BatchRows
		}
		d.ctx.touchProj(d.pos, d.cursor, d.cursor+n, 4) // C = subjects
		chunk := NewRel(d.star.SubjVar)
		chunk.Cols[0] = d.pos.C[d.cursor : d.cursor+n]
		d.cursor += n
		return chunk
	default: // seedRun
		if d.cursor >= d.hiRow {
			return nil
		}
		n := d.hiRow - d.cursor
		if n > BatchRows {
			n = BatchRows
		}
		d.ctx.touchProj(d.pso, d.cursor, d.cursor+n, 2|4)
		var chunk *Rel
		if sp.ObjVar != "" {
			chunk = NewRel(d.star.SubjVar, sp.ObjVar)
			chunk.Cols[0] = d.pso.B[d.cursor : d.cursor+n]
			chunk.Cols[1] = d.pso.C[d.cursor : d.cursor+n]
		} else {
			chunk = NewRel(d.star.SubjVar)
			chunk.Cols[0] = d.pso.B[d.cursor : d.cursor+n]
		}
		d.cursor += n
		return chunk
	}
}

// extendChunk joins one more property onto a seed chunk, advancing the
// persistent merge cursor (chunks arrive subject-sorted, so the cursor
// never rewinds).
func (d *DefaultStarOp) extendChunk(rel *Rel, st *extendState) *Rel {
	si := rel.ColIdx(d.star.SubjVar)
	p := st.prop
	outVars := rel.Vars
	if p.ObjVar != "" {
		outVars = append(append([]string{}, rel.Vars...), p.ObjVar)
	}
	out := NewRel(outVars...)
	buf := make([]dict.OID, 0, len(rel.Vars)+1)

	if st.lookup {
		for i := 0; i < rel.Len(); i++ {
			s := rel.Cols[si][i]
			lo, hi := d.pso.Range2(p.Pred, s)
			if hi == lo {
				continue
			}
			d.ctx.touchProj(d.pso, lo, hi, 4)
			for k := lo; k < hi; k++ {
				o := d.pso.C[k]
				if !p.matches(o) {
					continue
				}
				buf = rel.Row(i, buf)
				if p.ObjVar != "" {
					buf = append(buf, o)
				}
				out.AppendRow(buf...)
			}
		}
		return out
	}

	for i := 0; i < rel.Len(); i++ {
		s := rel.Cols[si][i]
		for st.k < st.runHi && d.pso.B[st.k] < s {
			st.k++
		}
		for j := st.k; j < st.runHi && d.pso.B[j] == s; j++ {
			o := d.pso.C[j]
			if !p.matches(o) {
				continue
			}
			buf = rel.Row(i, buf)
			if p.ObjVar != "" {
				buf = append(buf, o)
			}
			out.AppendRow(buf...)
		}
	}
	return out
}

func (d *DefaultStarOp) Next(b *Batch) bool {
	for !d.done {
		if d.pending.rel != nil && d.pending.fill(b) {
			return true
		}
		chunk := d.nextSeedChunk()
		if chunk == nil {
			d.done = true
			return false
		}
		for i := range d.ext {
			if chunk.Len() == 0 {
				break
			}
			chunk = d.extendChunk(chunk, &d.ext[i])
		}
		if chunk.Len() > 0 {
			// the seed choice reordered columns; restore the star's
			// declared schema before emitting positionally
			ordered := NewRel(d.star.Vars()...)
			for i, v := range ordered.Vars {
				ordered.Cols[i] = chunk.Cols[chunk.ColIdx(v)]
			}
			chunk = ordered
		}
		d.pending = relCursor{rel: chunk}
	}
	return false
}

func (d *DefaultStarOp) Close() {}

// NewFilterOp streams Filter over each input batch.
func NewFilterOp(in Operator, expr sparql.Expr) Operator {
	return NewMapOp(in, in.Vars(), func(ctx *Ctx, chunk *Rel) *Rel {
		return Filter(ctx, chunk, expr)
	})
}

// NewRDFJoinOp streams RDFJoin: candidate subjects arrive batch by
// batch and each batch is extended positionally from the CS table.
func NewRDFJoinOp(in Operator, keyVar string, t *relational.Table, star Star, fullIdx *triples.IndexSet) Operator {
	outVars := append([]string{}, in.Vars()...)
	for i := range star.Props {
		if star.Props[i].ObjVar != "" {
			outVars = append(outVars, star.Props[i].ObjVar)
		}
	}
	return NewMapOp(in, outVars, func(ctx *Ctx, chunk *Rel) *Rel {
		return RDFJoin(ctx, chunk, keyVar, t, star, fullIdx)
	})
}

// HashJoinOp is the streaming natural hash join: the build side is
// drained and hashed at Open, the probe side streams through. The output
// schema is the left child's variables followed by the right child's
// extras regardless of which side builds, so plan shapes keep their
// column order.
type HashJoinOp struct {
	left, right Operator
	buildLeft   bool
	vars        []string

	ctx      *Ctx
	probe    Operator
	build    *Rel
	buildMap map[string][]int32
	buildKey []int
	probeKey []int
	// per output var: source column (build or probe)
	fromBuild []int
	fromProbe []int

	probeBatch *Batch
	pending    relCursor
}

// NewHashJoinOp joins left and right on their shared variables, hashing
// the side indicated by buildLeft.
func NewHashJoinOp(left, right Operator, buildLeft bool) *HashJoinOp {
	vars := append([]string{}, left.Vars()...)
	seen := map[string]bool{}
	for _, v := range vars {
		seen[v] = true
	}
	for _, v := range right.Vars() {
		if !seen[v] {
			vars = append(vars, v)
		}
	}
	return &HashJoinOp{left: left, right: right, buildLeft: buildLeft, vars: vars}
}

func (h *HashJoinOp) Vars() []string { return h.vars }

func (h *HashJoinOp) Open(ctx *Ctx) error {
	h.ctx = ctx
	buildSide := h.right
	h.probe = h.left
	if h.buildLeft {
		buildSide = h.left
		h.probe = h.right
	}
	h.build = Drain(ctx, buildSide)
	if err := h.probe.Open(ctx); err != nil {
		return err
	}
	probeVars := h.probe.Vars()
	colOf := func(vars []string, v string) int {
		for i, w := range vars {
			if w == v {
				return i
			}
		}
		return -1
	}
	for _, v := range h.build.Vars {
		if pi := colOf(probeVars, v); pi >= 0 {
			h.buildKey = append(h.buildKey, colOf(h.build.Vars, v))
			h.probeKey = append(h.probeKey, pi)
		}
	}
	h.fromBuild = make([]int, len(h.vars))
	h.fromProbe = make([]int, len(h.vars))
	for i, v := range h.vars {
		h.fromBuild[i] = colOf(h.build.Vars, v)
		h.fromProbe[i] = colOf(probeVars, v)
	}
	h.buildMap = make(map[string][]int32, h.build.Len())
	var kb []byte
	for i := 0; i < h.build.Len(); i++ {
		kb = kb[:0]
		for _, ci := range h.buildKey {
			kb = appendOIDKey(kb, h.build.Cols[ci][i])
		}
		h.buildMap[string(kb)] = append(h.buildMap[string(kb)], int32(i))
	}
	h.probeBatch = NewBatch(probeVars)
	return nil
}

func (h *HashJoinOp) Next(b *Batch) bool {
	var kb []byte
	for {
		if h.pending.rel != nil && h.pending.fill(b) {
			return true
		}
		h.probeBatch.Reset()
		if !h.probe.Next(h.probeBatch) {
			return false
		}
		out := NewRel(h.vars...)
		for j := 0; j < h.probeBatch.Len(); j++ {
			kb = kb[:0]
			for _, ci := range h.probeKey {
				kb = appendOIDKey(kb, h.probeBatch.Cols[ci][j])
			}
			for _, i := range h.buildMap[string(kb)] {
				for c := range h.vars {
					var v dict.OID
					if bi := h.fromBuild[c]; bi >= 0 {
						v = h.build.Cols[bi][i]
					} else {
						v = h.probeBatch.Cols[h.fromProbe[c]][j]
					}
					out.Cols[c] = append(out.Cols[c], v)
				}
			}
		}
		h.pending = relCursor{rel: out}
	}
}

func (h *HashJoinOp) Close() { h.probe.Close() }
