package exec

import (
	"fmt"

	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// EvalError reports a typing problem during expression evaluation.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "exec: " + e.Msg }

// evalEnv resolves variables for one row.
type evalEnv struct {
	ctx  *Ctx
	rel  *Rel
	row  int
	cols map[string]int // var -> column
}

func newEvalEnv(ctx *Ctx, rel *Rel) *evalEnv {
	m := make(map[string]int, len(rel.Vars))
	for i, v := range rel.Vars {
		m[v] = i
	}
	return &evalEnv{ctx: ctx, rel: rel, cols: m}
}

// evalValue evaluates an expression to a typed value. Unbound variables
// and type errors yield VInvalid (SPARQL's error semantics: the filter
// rejects the row).
func (env *evalEnv) evalValue(e sparql.Expr) dict.Value {
	switch x := e.(type) {
	case *sparql.ExVar:
		ci, ok := env.cols[x.Name]
		if !ok {
			return dict.Value{}
		}
		return env.ctx.valueOf(env.rel.Cols[ci][env.row])
	case *sparql.ExLit:
		return x.Val
	case *sparql.ExUn:
		v := env.evalValue(x.E)
		switch x.Op {
		case sparql.OpNeg:
			switch v.Kind {
			case dict.VInt:
				return dict.Value{Kind: dict.VInt, Int: -v.Int}
			case dict.VFloat:
				return dict.Value{Kind: dict.VFloat, Float: -v.Float}
			}
			return dict.Value{}
		case sparql.OpNot:
			b, ok := truth(v)
			if !ok {
				return dict.Value{}
			}
			return boolVal(!b)
		}
		return dict.Value{}
	case *sparql.ExBin:
		return env.evalBin(x)
	case *sparql.ExAgg:
		// Aggregates are computed by the Aggregate operator; reaching
		// here is a planner bug surfaced as an eval error value.
		return dict.Value{}
	default:
		return dict.Value{}
	}
}

func (env *evalEnv) evalBin(x *sparql.ExBin) dict.Value {
	switch x.Op {
	case sparql.OpAnd, sparql.OpOr:
		lb, lok := truth(env.evalValue(x.L))
		rb, rok := truth(env.evalValue(x.R))
		if !lok || !rok {
			// SPARQL three-valued logic shortcut: false&&err=false,
			// true||err=true.
			if x.Op == sparql.OpAnd && ((lok && !lb) || (rok && !rb)) {
				return boolVal(false)
			}
			if x.Op == sparql.OpOr && ((lok && lb) || (rok && rb)) {
				return boolVal(true)
			}
			return dict.Value{}
		}
		if x.Op == sparql.OpAnd {
			return boolVal(lb && rb)
		}
		return boolVal(lb || rb)
	}
	l := env.evalValue(x.L)
	r := env.evalValue(x.R)
	if l.Kind == dict.VInvalid || r.Kind == dict.VInvalid {
		return dict.Value{}
	}
	switch x.Op {
	case sparql.OpEq, sparql.OpNe, sparql.OpLt, sparql.OpLe, sparql.OpGt, sparql.OpGe:
		c := dict.Compare(l, r)
		switch x.Op {
		case sparql.OpEq:
			return boolVal(c == 0)
		case sparql.OpNe:
			return boolVal(c != 0)
		case sparql.OpLt:
			return boolVal(c < 0)
		case sparql.OpLe:
			return boolVal(c <= 0)
		case sparql.OpGt:
			return boolVal(c > 0)
		default:
			return boolVal(c >= 0)
		}
	case sparql.OpAdd, sparql.OpSub, sparql.OpMul, sparql.OpDiv:
		return arith(x.Op, l, r)
	}
	return dict.Value{}
}

func arith(op sparql.Op, l, r dict.Value) dict.Value {
	if !l.Numeric() || !r.Numeric() {
		return dict.Value{}
	}
	if l.Kind == dict.VInt && r.Kind == dict.VInt && op != sparql.OpDiv {
		var n int64
		switch op {
		case sparql.OpAdd:
			n = l.Int + r.Int
		case sparql.OpSub:
			n = l.Int - r.Int
		default:
			n = l.Int * r.Int
		}
		return dict.Value{Kind: dict.VInt, Int: n}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	var f float64
	switch op {
	case sparql.OpAdd:
		f = lf + rf
	case sparql.OpSub:
		f = lf - rf
	case sparql.OpMul:
		f = lf * rf
	default:
		if rf == 0 {
			return dict.Value{}
		}
		f = lf / rf
	}
	return dict.Value{Kind: dict.VFloat, Float: f}
}

func boolVal(b bool) dict.Value {
	if b {
		return dict.Value{Kind: dict.VBool, Int: 1}
	}
	return dict.Value{Kind: dict.VBool, Int: 0}
}

// truth computes the effective boolean value.
func truth(v dict.Value) (bool, bool) {
	switch v.Kind {
	case dict.VBool:
		return v.Int != 0, true
	case dict.VInt:
		return v.Int != 0, true
	case dict.VFloat:
		return v.Float != 0, true
	case dict.VString:
		return v.Str != "", true
	case dict.VDate, dict.VDateTime:
		return true, true
	default:
		return false, false
	}
}

// Filter returns the rows of rel satisfying expr.
func Filter(ctx *Ctx, rel *Rel, expr sparql.Expr) *Rel {
	env := newEvalEnv(ctx, rel)
	var keep []int32
	for i := 0; i < rel.Len(); i++ {
		env.row = i
		if b, ok := truth(env.evalValue(expr)); ok && b {
			keep = append(keep, int32(i))
		}
	}
	return rel.Select(keep)
}

// EvalRow evaluates an expression over row i of rel (exported for the
// head operators in head.go and for tests).
func EvalRow(ctx *Ctx, rel *Rel, i int, expr sparql.Expr) dict.Value {
	env := newEvalEnv(ctx, rel)
	env.row = i
	return env.evalValue(expr)
}

func (r *Rel) String() string {
	return fmt.Sprintf("Rel(%v, %d rows)", r.Vars, r.Len())
}
