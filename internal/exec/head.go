package exec

import (
	"fmt"
	"sort"
	"strings"

	"srdf/internal/dict"
	"srdf/internal/sparql"
)

// Result is a fully decoded query result.
type Result struct {
	Vars []string
	Rows [][]dict.Value
}

// Len returns the row count.
func (r *Result) Len() int { return len(r.Rows) }

// String renders the result as a text table.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Vars, "\t"))
	b.WriteString("\n")
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.Lexical())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Head applies the query's solution modifiers to a fully materialized
// BGP relation: residual FILTERs, aggregation or projection, DISTINCT,
// ORDER BY, OFFSET and LIMIT.
//
// This is the PR-1 materializing head, kept as the reference
// implementation: the streaming head (Stream / the Aggregate, Distinct
// and Sort value operators) must stay row-identical to it, which the
// parity tests and the head benchmarks assert.
func Head(ctx *Ctx, rel *Rel, q *sparql.Query) (*Result, error) {
	for _, f := range q.Filters {
		rel = Filter(ctx, rel, f)
	}
	return MaterializedHead(ctx, rel, q)
}

// MaterializedHead is Head for an already-filtered relation (exported so
// benchmarks can contrast it with the streaming head over the same
// operator tree).
func MaterializedHead(ctx *Ctx, rel *Rel, q *sparql.Query) (*Result, error) {
	var res *Result
	if q.Aggregating() {
		res = aggregate(ctx, rel, q)
	} else {
		res = project(ctx, rel, q)
	}
	if q.Distinct {
		res = distinct(res)
	}
	if len(q.OrderBy) > 0 {
		if err := orderBy(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	off := 0
	if q.Offset > 0 {
		off = q.Offset
	}
	if off > len(res.Rows) {
		off = len(res.Rows)
	}
	res.Rows = res.Rows[off:]
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func project(ctx *Ctx, rel *Rel, q *sparql.Query) *Result {
	items := q.Select
	if q.SelectAll {
		items = nil
		for _, v := range rel.Vars {
			items = append(items, sparql.SelectItem{Expr: &sparql.ExVar{Name: v}, As: v})
		}
	}
	res := &Result{}
	for _, it := range items {
		res.Vars = append(res.Vars, it.As)
	}
	env := newEvalEnv(ctx, rel)
	for i := 0; i < rel.Len(); i++ {
		env.row = i
		row := make([]dict.Value, len(items))
		for c, it := range items {
			row[c] = env.evalValue(it.Expr)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// aggState accumulates one aggregate expression over a group. It is a
// mergeable partial: two states built over disjoint input slices combine
// with merge/mergeDistinct, which is what lets morsel workers aggregate
// independently and the head fold their partials together.
type aggState struct {
	count   int
	sum     float64
	sumInt  int64
	allInt  bool
	started bool
	min     dict.Value
	max     dict.Value
	// seen holds the DISTINCT values themselves (not just presence) so a
	// partial state can be replayed into another without double counting.
	seen map[string]dict.Value
}

func newAggState() *aggState { return &aggState{allInt: true} }

func (a *aggState) add(v dict.Value, distinct bool) {
	if v.Kind == dict.VInvalid {
		return
	}
	if distinct {
		if a.seen == nil {
			a.seen = map[string]dict.Value{}
		}
		k := fmt.Sprintf("%d|%s", v.Kind, v.Lexical())
		if _, dup := a.seen[k]; dup {
			return
		}
		a.seen[k] = v
	}
	a.count++
	if v.Numeric() {
		a.sum += v.AsFloat()
		if v.Kind == dict.VInt {
			a.sumInt += v.Int
		} else {
			a.allInt = false
		}
	} else {
		a.allInt = false
	}
	if !a.started {
		a.min, a.max, a.started = v, v, true
	} else {
		if dict.Compare(v, a.min) < 0 {
			a.min = v
		}
		if dict.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
}

// merge folds another partial state into a. COUNT, MIN, MAX and the
// integer sums are order-insensitive and merge exactly; AVG merges via
// sum+count. Float sums merge with the partials' rounding, which can
// differ from the sequential fold in the last ulp.
func (a *aggState) merge(o *aggState) {
	a.count += o.count
	a.sum += o.sum
	a.sumInt += o.sumInt
	if !o.allInt {
		a.allInt = false
	}
	if o.started {
		if !a.started {
			a.min, a.max, a.started = o.min, o.max, true
		} else {
			if dict.Compare(o.min, a.min) < 0 {
				a.min = o.min
			}
			if dict.Compare(o.max, a.max) > 0 {
				a.max = o.max
			}
		}
	}
}

// mergeDistinct folds a partial DISTINCT state by replaying its value
// set: values both partials saw count once, never twice. Replay order is
// the sorted key order, so the merge is deterministic.
func (a *aggState) mergeDistinct(o *aggState) {
	keys := make([]string, 0, len(o.seen))
	for k := range o.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a.add(o.seen[k], true)
	}
}

func (a *aggState) result(fn sparql.AggFunc) dict.Value {
	switch fn {
	case sparql.AggCount:
		return dict.Value{Kind: dict.VInt, Int: int64(a.count)}
	case sparql.AggSum:
		if a.allInt {
			return dict.Value{Kind: dict.VInt, Int: a.sumInt}
		}
		return dict.Value{Kind: dict.VFloat, Float: a.sum}
	case sparql.AggAvg:
		if a.count == 0 {
			return dict.Value{}
		}
		return dict.Value{Kind: dict.VFloat, Float: a.sum / float64(a.count)}
	case sparql.AggMin:
		if !a.started {
			return dict.Value{}
		}
		return a.min
	default:
		if !a.started {
			return dict.Value{}
		}
		return a.max
	}
}

// collectAggs gathers the aggregate leaves of a select expression.
func collectAggs(e sparql.Expr, dst []*sparql.ExAgg) []*sparql.ExAgg {
	switch x := e.(type) {
	case *sparql.ExAgg:
		return append(dst, x)
	case *sparql.ExBin:
		return collectAggs(x.R, collectAggs(x.L, dst))
	case *sparql.ExUn:
		return collectAggs(x.E, dst)
	default:
		return dst
	}
}

func aggregate(ctx *Ctx, rel *Rel, q *sparql.Query) *Result {
	res := &Result{}
	for _, it := range q.Select {
		res.Vars = append(res.Vars, it.As)
	}
	groupIdx := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		groupIdx[i] = rel.ColIdx(g)
	}
	// Collect the distinct aggregate leaves across all select items.
	var leaves []*sparql.ExAgg
	for _, it := range q.Select {
		leaves = collectAggs(it.Expr, leaves)
	}
	type group struct {
		keyRow int // a representative row for grouped vars
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string
	env := newEvalEnv(ctx, rel)
	var kb []byte
	for i := 0; i < rel.Len(); i++ {
		kb = kb[:0]
		for _, gi := range groupIdx {
			kb = appendOIDKey(kb, rel.Cols[gi][i])
		}
		k := string(kb)
		g, ok := groups[k]
		if !ok {
			g = &group{keyRow: i, states: make([]*aggState, len(leaves))}
			for j := range g.states {
				g.states[j] = newAggState()
			}
			groups[k] = g
			order = append(order, k)
		}
		env.row = i
		for j, leaf := range leaves {
			if leaf.Arg == nil { // COUNT(*)
				g.states[j].count++
				continue
			}
			g.states[j].add(env.evalValue(leaf.Arg), leaf.Distinct)
		}
	}
	// Edge case: aggregate query with no GROUP BY over an empty input
	// still yields one row (SUM=0 via empty state).
	if len(order) == 0 && len(q.GroupBy) == 0 {
		g := &group{keyRow: -1, states: make([]*aggState, len(leaves))}
		for j := range g.states {
			g.states[j] = newAggState()
		}
		groups[""] = g
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		// Resolve each select item with aggregate leaves substituted.
		leafVals := make(map[*sparql.ExAgg]dict.Value, len(leaves))
		for j, leaf := range leaves {
			leafVals[leaf] = g.states[j].result(leaf.Func)
		}
		row := make([]dict.Value, len(q.Select))
		for c, it := range q.Select {
			row[c] = evalWithAggs(ctx, rel, g.keyRow, it.Expr, leafVals)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// evalWithAggs evaluates an expression where aggregate sub-expressions
// are replaced by their computed group values; plain variables resolve
// against the group's representative row (valid because they are
// validated to be grouped).
func evalWithAggs(ctx *Ctx, rel *Rel, row int, e sparql.Expr, aggVals map[*sparql.ExAgg]dict.Value) dict.Value {
	switch x := e.(type) {
	case *sparql.ExAgg:
		return aggVals[x]
	case *sparql.ExVar:
		if row < 0 {
			return dict.Value{}
		}
		return EvalRow(ctx, rel, row, x)
	case *sparql.ExLit:
		return x.Val
	case *sparql.ExUn:
		inner := evalWithAggs(ctx, rel, row, x.E, aggVals)
		return applyUnary(x.Op, inner)
	case *sparql.ExBin:
		l := evalWithAggs(ctx, rel, row, x.L, aggVals)
		r := evalWithAggs(ctx, rel, row, x.R, aggVals)
		return applyBinary(x.Op, l, r)
	default:
		return dict.Value{}
	}
}

func applyUnary(op sparql.Op, v dict.Value) dict.Value {
	switch op {
	case sparql.OpNeg:
		switch v.Kind {
		case dict.VInt:
			return dict.Value{Kind: dict.VInt, Int: -v.Int}
		case dict.VFloat:
			return dict.Value{Kind: dict.VFloat, Float: -v.Float}
		}
	case sparql.OpNot:
		if b, ok := truth(v); ok {
			return boolVal(!b)
		}
	}
	return dict.Value{}
}

func applyBinary(op sparql.Op, l, r dict.Value) dict.Value {
	switch op {
	case sparql.OpAnd:
		lb, lok := truth(l)
		rb, rok := truth(r)
		if lok && rok {
			return boolVal(lb && rb)
		}
		return dict.Value{}
	case sparql.OpOr:
		lb, lok := truth(l)
		rb, rok := truth(r)
		if lok && rok {
			return boolVal(lb || rb)
		}
		return dict.Value{}
	case sparql.OpEq, sparql.OpNe, sparql.OpLt, sparql.OpLe, sparql.OpGt, sparql.OpGe:
		if l.Kind == dict.VInvalid || r.Kind == dict.VInvalid {
			return dict.Value{}
		}
		c := dict.Compare(l, r)
		switch op {
		case sparql.OpEq:
			return boolVal(c == 0)
		case sparql.OpNe:
			return boolVal(c != 0)
		case sparql.OpLt:
			return boolVal(c < 0)
		case sparql.OpLe:
			return boolVal(c <= 0)
		case sparql.OpGt:
			return boolVal(c > 0)
		default:
			return boolVal(c >= 0)
		}
	default:
		return arith(op, l, r)
	}
}

func distinct(res *Result) *Result {
	seen := map[string]bool{}
	out := &Result{Vars: res.Vars}
	for _, row := range res.Rows {
		k := distinctKey(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, row)
	}
	return out
}

// orderBy sorts result rows. Order keys may reference output aliases
// (the common case after aggregation) — they are evaluated against the
// result row itself.
func orderBy(res *Result, keys []sparql.OrderKey) error {
	colOf := map[string]int{}
	for i, v := range res.Vars {
		colOf[v] = i
	}
	eval := func(row []dict.Value, e sparql.Expr) (dict.Value, error) {
		switch x := e.(type) {
		case *sparql.ExVar:
			ci, ok := colOf[x.Name]
			if !ok {
				return dict.Value{}, fmt.Errorf("exec: ORDER BY ?%s is not a result column", x.Name)
			}
			return row[ci], nil
		case *sparql.ExLit:
			return x.Val, nil
		case *sparql.ExUn:
			v, err := evalOrderSub(row, colOf, x.E)
			if err != nil {
				return dict.Value{}, err
			}
			return applyUnary(x.Op, v), nil
		case *sparql.ExBin:
			l, err := evalOrderSub(row, colOf, x.L)
			if err != nil {
				return dict.Value{}, err
			}
			r, err := evalOrderSub(row, colOf, x.R)
			if err != nil {
				return dict.Value{}, err
			}
			return applyBinary(x.Op, l, r), nil
		default:
			return dict.Value{}, fmt.Errorf("exec: unsupported ORDER BY expression")
		}
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for _, k := range keys {
			vi, err := eval(res.Rows[i], k.Expr)
			if err != nil {
				sortErr = err
				return false
			}
			vj, _ := eval(res.Rows[j], k.Expr)
			c := dict.Compare(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func evalOrderSub(row []dict.Value, colOf map[string]int, e sparql.Expr) (dict.Value, error) {
	switch x := e.(type) {
	case *sparql.ExVar:
		ci, ok := colOf[x.Name]
		if !ok {
			return dict.Value{}, fmt.Errorf("exec: ORDER BY ?%s is not a result column", x.Name)
		}
		return row[ci], nil
	case *sparql.ExLit:
		return x.Val, nil
	case *sparql.ExUn:
		v, err := evalOrderSub(row, colOf, x.E)
		if err != nil {
			return dict.Value{}, err
		}
		return applyUnary(x.Op, v), nil
	case *sparql.ExBin:
		l, err := evalOrderSub(row, colOf, x.L)
		if err != nil {
			return dict.Value{}, err
		}
		r, err := evalOrderSub(row, colOf, x.R)
		if err != nil {
			return dict.Value{}, err
		}
		return applyBinary(x.Op, l, r), nil
	default:
		return dict.Value{}, fmt.Errorf("exec: unsupported ORDER BY expression")
	}
}
