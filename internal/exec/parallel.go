package exec

import (
	"sync"
	"sync/atomic"

	"srdf/internal/fault"
)

// morselBlocks is the morsel granularity of the parallel scan: workers
// claim runs of this many zone-map blocks at a time — large enough to
// amortize dispatch, small enough to balance skew from zone pruning.
const morselBlocks = 4

// morselResult is one completed morsel, keyed for the ordered merge.
type morselResult struct {
	idx int
	rel *Rel
}

// morselScan runs a ScanOp's block range on a worker pool,
// morsel-driven: workers claim morsel indexes from a shared atomic
// counter, scan their blocks into a private relation (reusing a
// per-worker row scratch across morsels), and hand results to a merger
// that re-emits them in morsel order — so the parallel scan is
// row-for-row identical to the sequential one. Close stops the pool
// early, which is what makes LIMIT early-termination compose with
// parallelism.
type morselScan struct {
	scan    *ScanOp
	morsels int
	claim   atomic.Int64
	results chan morselResult
	done    chan struct{}
	wg      sync.WaitGroup

	// merger state
	emit    int
	buffer  map[int]*Rel
	pending relCursor
	stopped bool
}

// startMorselScan launches workers over the scan's block range.
func startMorselScan(ctx *Ctx, s *ScanOp, workers int) *morselScan {
	blocks := s.last - s.block + 1
	m := &morselScan{
		scan:    s,
		morsels: (blocks + morselBlocks - 1) / morselBlocks,
		results: make(chan morselResult, workers),
		done:    make(chan struct{}),
		buffer:  make(map[int]*Rel),
	}
	if workers > m.morsels {
		workers = m.morsels
	}
	first := s.block
	vars := s.Star.Vars()
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer m.wg.Done()
			var sc scanScratch // per-worker selection + decode scratch
			sc.init(&s.Star)
			for {
				idx := int(m.claim.Add(1)) - 1
				if idx >= m.morsels {
					return
				}
				select {
				case <-m.done:
					return
				default:
				}
				if ctx.Cancelled() {
					// The claim already happened: deliver the slot empty,
					// or the ordered merge blocks forever on a bailing
					// worker. The remaining morsels drain as fast empties
					// and the per-batch polls surface the cancellation.
					select {
					case m.results <- morselResult{idx: idx, rel: NewRel(vars...)}:
					case <-m.done:
						return
					}
					continue
				}
				lo := first + idx*morselBlocks
				hi := lo + morselBlocks - 1
				if hi > s.last {
					hi = s.last
				}
				rel := NewRel(vars...)
				if err := func() (err error) {
					// A panic while scanning fails the one query, not the
					// process: record it, deliver the morsel slot empty so
					// the ordered merge never waits on a dead worker, and
					// let the per-batch polls unwind the pipeline.
					defer func() {
						if r := recover(); r != nil {
							err = NewPanicError("morsel worker", r)
						}
					}()
					if ferr := fault.Point("exec.morsel"); ferr != nil {
						panic(ferr)
					}
					for b := lo; b <= hi; b++ {
						s.appendBlock(b, rel, &sc)
					}
					return nil
				}(); err != nil {
					if !ctx.Fail(err) {
						panic(err) // no per-query failure slot: fail loud
					}
					rel = NewRel(vars...)
				}
				select {
				case m.results <- morselResult{idx: idx, rel: rel}:
				case <-m.done:
					return
				}
			}
		}()
	}
	return m
}

// next fills b with the next in-order rows, pulling worker results as
// needed.
func (m *morselScan) next(b *Batch) bool {
	for {
		if m.pending.rel != nil && m.pending.fill(b) {
			return true
		}
		if m.emit >= m.morsels {
			return false
		}
		// in-order merge: wait for the next morsel index
		for m.buffer[m.emit] == nil {
			r, ok := <-m.results
			if !ok {
				return false
			}
			m.buffer[r.idx] = r.rel
		}
		rel := m.buffer[m.emit]
		delete(m.buffer, m.emit)
		m.emit++
		if rel.Len() > 0 {
			m.pending = relCursor{rel: rel}
		}
	}
}

// stop terminates the pool; safe to call whether or not the scan was
// drained.
func (m *morselScan) stop() {
	if m.stopped {
		return
	}
	m.stopped = true
	close(m.done)
	// drain so workers blocked on send can exit
	go func() {
		for range m.results {
		}
	}()
	m.wg.Wait()
	close(m.results)
}
