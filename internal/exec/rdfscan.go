package exec

import (
	"sort"

	"srdf/internal/dict"
	"srdf/internal/relational"
	"srdf/internal/triples"
)

// RDFScan is the paper's new scan operator (§II-C): it "delivers a tuple
// stream for multiple properties in one go" by walking the aligned
// columns of one CS table. All star self-joins disappear — row i of
// every column belongs to the same subject. Zone maps prune blocks when
// useZones is set; rowLo/rowHi (rowHi -1 = open) restrict the scan to a
// row window, which the planner derives from range predicates on the
// table's sort key.
//
// This is the materializing adapter over the streaming ScanOp: the same
// compressed-segment predicate kernels and selection vectors run
// underneath, and the result is gathered with bulk column copies.
func RDFScan(ctx *Ctx, t *relational.Table, star Star, useZones bool, rowLo, rowHi int) *Rel {
	return Drain(ctx, NewScanOp(t, star, useZones, rowLo, rowHi))
}

func blockMayMatch(cols []*relational.Col, props []StarProp, b int) bool {
	for i := range cols {
		p := &props[i]
		zm := cols[i].Data.Zones()
		if b >= zm.NumBlocks() {
			continue
		}
		switch {
		case p.ObjConst != dict.Nil:
			if !zm.MayMatch(b, p.ObjConst, p.ObjConst) {
				return false
			}
		case p.HasRange:
			if !zm.MayMatch(b, p.Lo, p.Hi) {
				return false
			}
		}
	}
	return true
}

// RDFJoin is the RDFscan variant that "does the same, but receiving a
// stream of candidate subjects" (§II-C; cf. the Pivot Index Scan of
// Brodt et al.). For every input row it fetches the star's columns
// positionally from the CS table; candidates outside the table fall back
// to SPO point lookups over the full index, so subjects living in other
// CSs or in the irregular store are still answered exactly.
func RDFJoin(ctx *Ctx, in *Rel, keyVar string, t *relational.Table, star Star, fullIdx *triples.IndexSet) *Rel {
	ki := in.ColIdx(keyVar)
	outVars := append([]string{}, in.Vars...)
	for i := range star.Props {
		if star.Props[i].ObjVar != "" {
			outVars = append(outVars, star.Props[i].ObjVar)
		}
	}
	out := NewRel(outVars...)
	if ki < 0 {
		return out
	}
	colIdx := make([]int, len(star.Props))
	for i := range star.Props {
		colIdx[i] = t.ColIndex(star.Props[i].Pred)
	}
	var irrSPO *triples.Projection
	if ctx.Cat != nil && ctx.Cat.Irregular.Len() > 0 {
		irrSPO = ctx.Cat.IrregularIdx.Get(triples.SPO)
	}

	buf := make([]dict.OID, 0, len(outVars))
	vals := make([]dict.OID, 0, len(colIdx))
	for i := 0; i < in.Len(); i++ {
		s := in.Cols[ki][i]
		// RowOf resolves delta rows and compacted-in extras too, and
		// rejects tombstoned sealed rows (their subject moved or died).
		row := t.RowOf(s)
		if row < 0 || anyNegIdx(colIdx) {
			// Fallback: point star lookup over the full index.
			sub := LookupStarSubject(ctx, fullIdx, s, star)
			for r := 0; r < sub.Len(); r++ {
				buf = in.Row(i, buf)
				for c := 1; c < len(sub.Cols); c++ { // col 0 is the subject
					buf = append(buf, sub.Cols[c][r])
				}
				out.AppendRow(buf...)
			}
			continue
		}
		if irrSPO != nil {
			// The table holds first values only; overflow values of
			// multi-valued properties live in the irregular store, so
			// exact semantics require the full-index path for this
			// subject when it has residual triples.
			if lo, hi := irrSPO.Range1(s); hi > lo {
				sub := LookupStarSubject(ctx, fullIdx, s, star)
				for r := 0; r < sub.Len(); r++ {
					buf = in.Row(i, buf)
					for c := 1; c < len(sub.Cols); c++ {
						buf = append(buf, sub.Cols[c][r])
					}
					out.AppendRow(buf...)
				}
				continue
			}
		}
		ok := true
		vals = vals[:0]
		for ci := range colIdx {
			v := t.Value(colIdx[ci], row)
			vals = append(vals, v)
			if v == dict.Nil || !star.Props[ci].matches(v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		buf = in.Row(i, buf)
		for ci := range colIdx {
			if star.Props[ci].ObjVar != "" {
				buf = append(buf, vals[ci])
			}
		}
		out.AppendRow(buf...)
	}
	return out
}

func anyNegIdx(idx []int) bool {
	for _, i := range idx {
		if i < 0 {
			return true
		}
	}
	return false
}

// ResidualStar answers the part of a star pattern the covering tables
// cannot: subjects with matching triples in the irregular store (noise
// properties, overflow values, subjects of dropped CSs) or in link
// tables (split-off multi-valued properties of other CSs, which no
// RDFscan reads). Rows entirely answerable by a covering table are
// suppressed to avoid duplicating RDFScan output.
func ResidualStar(ctx *Ctx, star Star, covering []*relational.Table) *Rel {
	rel := NewRel(star.Vars()...)
	cat := ctx.Cat
	if cat == nil {
		return rel
	}
	// Link tables carrying one of the star's predicates contribute both
	// candidates and values.
	links := make([][]*relational.LinkTable, len(star.Props))
	anyLink := false
	for i := range star.Props {
		for _, lt := range cat.Links {
			if lt.Pred == star.Props[i].Pred && len(lt.Subj) > 0 {
				links[i] = append(links[i], lt)
				anyLink = true
			}
		}
	}
	if cat.Irregular.Len() == 0 && !anyLink {
		return rel
	}
	irrPSO := cat.IrregularIdx.Get(triples.PSO)
	irrSPO := cat.IrregularIdx.Get(triples.SPO)

	// Candidate subjects: any subject with an irregular or link-table
	// triple for one of the star's predicates.
	cand := map[dict.OID]bool{}
	for i := range star.Props {
		lo, hi := irrPSO.Range1(star.Props[i].Pred)
		ctx.touchProj(irrPSO, lo, hi, 2)
		for k := lo; k < hi; k++ {
			cand[irrPSO.B[k]] = true
		}
		for _, lt := range links[i] {
			// Subj is subject-sorted: check each distinct subject once.
			// Link entries speak for a subject only while its build-time
			// dense row is live; vacated subjects' link values were
			// re-routed through the delta layer.
			for k := 0; k < len(lt.Subj); {
				s := lt.Subj[k]
				if lt.Parent.DenseLiveRow(s) >= 0 {
					cand[s] = true
				}
				for k < len(lt.Subj) && lt.Subj[k] == s {
					k++
				}
			}
		}
	}
	if len(cand) == 0 {
		return rel
	}
	// Deterministic emission order: map iteration order would otherwise
	// differ between two executions of the very same plan.
	subjects := make([]dict.OID, 0, len(cand))
	for s := range cand {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	inCovering := func(s dict.OID) bool {
		for _, t := range covering {
			if t.RowOf(s) >= 0 {
				return true
			}
		}
		return false
	}
	type sourced struct {
		v     dict.OID
		fromT bool // value came from a table column
	}
	for _, s := range subjects {
		covered := inCovering(s)
		// collect values per prop from the irregular store and, when the
		// subject sits in some table, from its columns.
		vals := make([][]sourced, 0, len(star.Props))
		ok := true
		for i := range star.Props {
			p := &star.Props[i]
			var vs []sourced
			lo, hi := irrSPO.Range2(s, p.Pred)
			ctx.touchProj(irrSPO, lo, hi, 4)
			for k := lo; k < hi; k++ {
				if p.matches(irrSPO.C[k]) {
					vs = append(vs, sourced{irrSPO.C[k], false})
				}
			}
			for _, lt := range links[i] {
				if lt.Parent.DenseLiveRow(s) < 0 {
					continue // stale entries of a vacated subject
				}
				llo := sort.Search(len(lt.Subj), func(k int) bool { return lt.Subj[k] >= s })
				for k := llo; k < len(lt.Subj) && lt.Subj[k] == s; k++ {
					if p.matches(lt.Val[k]) {
						vs = append(vs, sourced{lt.Val[k], false})
					}
				}
			}
			if tab := cat.TableOf(s); tab != nil {
				if ci := tab.ColIndex(p.Pred); ci >= 0 {
					if row := tab.RowOf(s); row >= 0 {
						v := tab.Value(ci, row)
						if v != dict.Nil && p.matches(v) {
							vs = append(vs, sourced{v, true})
						}
					}
				}
			}
			if len(vs) == 0 {
				ok = false
				break
			}
			vals = append(vals, vs)
		}
		if !ok {
			continue
		}
		// cross product; skip the all-table combination when a covering
		// table already emits it via RDFScan.
		row := make([]dict.OID, 0, len(rel.Vars))
		row = append(row, s)
		var rec func(pi int, allTable bool)
		rec = func(pi int, allTable bool) {
			if pi == len(star.Props) {
				if allTable && covered {
					return
				}
				rel.AppendRow(row...)
				return
			}
			p := &star.Props[pi]
			for _, sv := range vals[pi] {
				if p.ObjVar != "" {
					row = append(row, sv.v)
				}
				rec(pi+1, allTable && sv.fromT)
				if p.ObjVar != "" {
					row = row[:len(row)-1]
				}
			}
		}
		rec(0, true)
	}
	return rel
}
