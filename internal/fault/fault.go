// Package fault is the failure-injection seam for the whole module.
//
// It has two halves:
//
//   - A failpoint registry: named trigger points that tests and the
//     chaos harness arm at runtime to inject an error, a panic, or a
//     delay — on every hit, on the Nth hit, or with probability p.
//     When nothing is armed the fast path is a single atomic load.
//
//   - An injectable filesystem (FS/File) that internal/storage routes
//     every durability syscall through. The OS() implementation is a
//     passthrough; WrapFS(inner) consults the registry before each
//     operation so disk faults (EIO on fsync, ENOSPC on write, a
//     failed rename) can be staged by name without touching the real
//     disk.
//
// The registry is always compiled — it costs one atomic load when
// idle. The Point() hooks sprinkled through hot execution paths are
// additionally gated behind the `faultinject` build tag (see
// point_on.go / point_off.go) so release builds carry no call at all.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Spec describes what an armed failpoint does when it triggers.
type Spec struct {
	// Err is returned from Hit when the point triggers. Ignored if
	// Panic is set.
	Err error
	// Panic, when non-empty, makes the point panic with this message
	// instead of returning an error.
	Panic string
	// Delay is slept before the error/panic (or alone, for a
	// slow-disk fault with Err == nil and Panic == "").
	Delay time.Duration

	// OnHit fires the point only on the Nth hit (1-based) and every
	// hit after, unless Count limits it. Zero means from the first hit.
	OnHit int
	// Prob fires the point with probability p in (0,1] per hit.
	// Zero means always (subject to OnHit/Count).
	Prob float64
	// Count caps how many times the point fires; 0 means no cap.
	Count int
}

// point is one armed failpoint plus its bookkeeping.
type point struct {
	spec  Spec
	hits  int // times Hit was called
	fired int // times it actually triggered
	rng   *rand.Rand
}

var (
	mu     sync.Mutex
	points map[string]*point
	// armed is the fast-path gate: number of enabled failpoints.
	armed atomic.Int32
	// hitCounts survives Disable so tests can assert a point was
	// exercised after the fact.
	hitCounts sync.Map // name -> *atomic.Int64
)

// Enable arms the named failpoint. Re-enabling an armed point resets
// its hit counters and replaces its spec.
func Enable(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{spec: spec, rng: rand.New(rand.NewSource(int64(len(name)) + 0x5eed))}
}

// Disable disarms the named failpoint. Idempotent.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint and clears the lifetime hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(int32(-len(points)))
	points = nil
	hitCounts.Range(func(k, _ any) bool { hitCounts.Delete(k); return true })
}

// Hits reports how many times the named point has been hit (whether
// or not it triggered) since the last Reset. It survives Disable.
func Hits(name string) int64 {
	if c, ok := hitCounts.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

func countHit(name string) {
	c, ok := hitCounts.Load(name)
	if !ok {
		c, _ = hitCounts.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// Hit consults the registry. It returns nil immediately when nothing
// is armed. When the named point is armed and its trigger condition
// holds, Hit sleeps Spec.Delay, then panics (Spec.Panic) or returns
// Spec.Err.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	countHit(name)
	p.hits++
	if p.spec.OnHit > 0 && p.hits < p.spec.OnHit {
		mu.Unlock()
		return nil
	}
	if p.spec.Count > 0 && p.fired >= p.spec.Count {
		mu.Unlock()
		return nil
	}
	if p.spec.Prob > 0 && p.rng.Float64() >= p.spec.Prob {
		mu.Unlock()
		return nil
	}
	p.fired++
	spec := p.spec
	mu.Unlock()

	if spec.Delay > 0 {
		time.Sleep(spec.Delay)
	}
	if spec.Panic != "" {
		panic(fmt.Sprintf("fault: injected panic at %q: %s", name, spec.Panic))
	}
	if spec.Err != nil {
		return fmt.Errorf("fault %q: %w", name, spec.Err)
	}
	return nil
}

// Fired reports how many times the named point has actually triggered
// (error, panic, or delay) since it was last enabled.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// ErrInjected is a convenient generic cause for tests that do not
// care which errno a fault models.
var ErrInjected = errors.New("injected fault")
