//go:build faultinject

package fault

// Active reports whether the in-code Point hooks are compiled in.
const Active = true

// Point is the hook embedded in hot execution paths (morsel workers,
// operator loops, the serializer). Under the faultinject build tag it
// consults the registry; in release builds it compiles to nothing.
func Point(name string) error { return Hit(name) }
