package fault

import (
	"io"
	"os"
	"strings"
)

// FS is the filesystem surface internal/storage performs durability
// I/O through. The production implementation (OS) is a passthrough to
// the os package; WrapFS layers failpoint consultation on top so
// tests and the chaos harness can stage disk faults by name.
type FS interface {
	// OpenFile opens the named file (WAL open/create path).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file in dir (atomic snapshot writes).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// SyncDir fsyncs the directory itself so a rename inside it is
	// durable. Implementations may skip platforms that cannot open
	// directories, but a real fsync failure must be returned.
	SyncDir(dir string) error
}

// File is the per-handle surface the WAL and snapshot writer need.
type File interface {
	io.Writer
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Seek(offset int64, whence int) (int64, error)
	Close() error
	Name() string
}

// osFS is the passthrough production filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		// Not every platform allows opening a directory; that is a
		// capability gap, not a durability failure.
		return nil
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// injectFS consults the failpoint registry before delegating. Point
// names follow "fs.<op>:<class>" where class is "wal", "snapshot", or
// "dir" — e.g. fs.sync:wal models EIO on a WAL fsync, fs.write:snapshot
// models disk-full mid-checkpoint, fs.rename:snapshot a failed atomic
// replace, fs.sync:dir a directory fsync failure.
type injectFS struct {
	inner FS
}

// WrapFS layers failpoint consultation over inner. Unlike the Point
// hooks it is always compiled: callers opt in per store by passing the
// wrapped FS, so release binaries that never construct one pay nothing.
func WrapFS(inner FS) FS { return injectFS{inner: inner} }

// classOf buckets a path for failpoint naming.
func classOf(name string) string {
	base := name[strings.LastIndexByte(name, '/')+1:]
	if strings.Contains(base, ".wal") {
		return "wal"
	}
	return "snapshot"
}

func (w injectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := Hit("fs.open:" + classOf(name)); err != nil {
		return nil, err
	}
	f, err := w.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return injectFile{f: f, class: classOf(name)}, nil
}

func (w injectFS) CreateTemp(dir, pattern string) (File, error) {
	if err := Hit("fs.create:" + classOf(pattern)); err != nil {
		return nil, err
	}
	f, err := w.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return injectFile{f: f, class: classOf(pattern)}, nil
}

// MapHit consults the fs.map failpoint for the named file: the
// snapshot layer asks before mmap'ing and falls back to ReadFile when
// the point fires. Only the failpoint-wrapped FS has this method, so
// un-wrapped stores never consult the registry for maps.
func (w injectFS) MapHit(name string) error {
	return Hit("fs.map:" + classOf(name))
}

func (w injectFS) ReadFile(name string) ([]byte, error) {
	if err := Hit("fs.read:" + classOf(name)); err != nil {
		return nil, err
	}
	return w.inner.ReadFile(name)
}

func (w injectFS) Rename(oldpath, newpath string) error {
	if err := Hit("fs.rename:" + classOf(newpath)); err != nil {
		return err
	}
	return w.inner.Rename(oldpath, newpath)
}

func (w injectFS) Remove(name string) error {
	if err := Hit("fs.remove:" + classOf(name)); err != nil {
		return err
	}
	return w.inner.Remove(name)
}

func (w injectFS) SyncDir(dir string) error {
	if err := Hit("fs.sync:dir"); err != nil {
		return err
	}
	return w.inner.SyncDir(dir)
}

type injectFile struct {
	f     File
	class string
}

func (w injectFile) Write(p []byte) (int, error) {
	if err := Hit("fs.write:" + w.class); err != nil {
		return 0, err
	}
	return w.f.Write(p)
}

func (w injectFile) WriteAt(p []byte, off int64) (int, error) {
	if err := Hit("fs.writeat:" + w.class); err != nil {
		return 0, err
	}
	return w.f.WriteAt(p, off)
}

func (w injectFile) Truncate(size int64) error {
	if err := Hit("fs.truncate:" + w.class); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w injectFile) Sync() error {
	if err := Hit("fs.sync:" + w.class); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w injectFile) Seek(offset int64, whence int) (int64, error) {
	if err := Hit("fs.seek:" + w.class); err != nil {
		return 0, err
	}
	return w.f.Seek(offset, whence)
}

func (w injectFile) Close() error {
	if err := Hit("fs.close:" + w.class); err != nil {
		return err
	}
	return w.f.Close()
}

func (w injectFile) Name() string { return w.f.Name() }
