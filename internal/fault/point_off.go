//go:build !faultinject

package fault

// Active reports whether the in-code Point hooks are compiled in.
const Active = false

// Point compiles to nothing in release builds: it is inlined, the
// constant nil return folds away, and no registry lookup remains on
// the hot path. Build with -tags=faultinject to arm it.
func Point(name string) error { return nil }
