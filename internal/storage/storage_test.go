package storage_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"srdf/internal/colstore"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/storage"
	"srdf/internal/triples"
)

func op(del bool, s, p, o string) storage.Op {
	return storage.Op{Del: del, T: nt.Triple{S: dict.IRI(s), P: dict.IRI(p), O: dict.StringLit(o)}}
}

func mustOps(t *testing.T, path string) (*storage.WAL, []storage.Op) {
	t.Helper()
	w, ops, err := storage.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, ops
}

func TestWALAppendSyncReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, ops := mustOps(t, path)
	if len(ops) != 0 {
		t.Fatalf("fresh wal returned %d ops", len(ops))
	}
	want := []storage.Op{
		op(false, "http://x/s1", "http://x/p", "a"),
		op(true, "http://x/s1", "http://x/p", "a"),
		{Del: false, T: nt.Triple{S: dict.Blank("b0"), P: dict.IRI("http://x/p"),
			O: dict.Term{Kind: dict.KindLiteral, Value: "v", Datatype: "http://x/dt", Lang: ""}}},
		{Del: false, T: nt.Triple{S: dict.IRI("http://x/s2"), P: dict.IRI("http://x/p"),
			O: dict.LangLit("hi", "en")}},
	}
	for _, o := range want {
		w.Append(o)
	}
	if !w.Dirty() {
		t.Fatal("appended ops not pending")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Dirty() {
		t.Fatal("dirty after sync")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got := mustOps(t, path)
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Del != want[i].Del || got[i].T != want[i].T {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if w2.Records() != len(want) {
		t.Fatalf("Records() = %d, want %d", w2.Records(), len(want))
	}
}

func TestWALUnsyncedBatchIsLost(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := mustOps(t, path)
	w.Append(op(false, "http://x/s", "http://x/p", "a"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Append(op(false, "http://x/s", "http://x/p", "b"))
	// no Sync; simulate a crash by just reopening the file
	w2, ops := mustOps(t, path)
	defer w2.Close()
	if len(ops) != 1 {
		t.Fatalf("recovered %d ops, want the 1 synced one", len(ops))
	}
}

func TestWALTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := mustOps(t, path)
	for i := 0; i < 5; i++ {
		w.Append(op(false, "http://x/s", "http://x/p", string(rune('a'+i))))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the process at every byte offset: the recovered prefix must
	// be a clean op prefix and the file must be repaired in place.
	prev := -1
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, ops, err := storage.OpenWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(ops) < prev {
			t.Fatalf("cut=%d: recovered %d ops after %d at a shorter cut", cut, len(ops), prev)
		}
		prev = len(ops)
		// appending after repair must work
		w2.Append(op(false, "http://x/s", "http://x/p", "z"))
		if err := w2.Sync(); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		w3, ops3, err := storage.OpenWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if len(ops3) != len(ops)+1 {
			t.Fatalf("cut=%d: %d ops after repair+append, want %d", cut, len(ops3), len(ops)+1)
		}
		w3.Close()
	}
	if prev != 5 {
		t.Fatalf("full file recovered %d ops, want 5", prev)
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := mustOps(t, path)
	w.Append(op(false, "http://x/s", "http://x/p", "a"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("Records() = %d after truncate", w.Records())
	}
	// pending records are discarded by a checkpoint truncate too
	w.Append(op(false, "http://x/s", "http://x/p", "b"))
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, ops := mustOps(t, path)
	defer w2.Close()
	if len(ops) != 0 {
		t.Fatalf("%d ops after truncate", len(ops))
	}
}

func TestWALForeignFile(t *testing.T) {
	for name, content := range map[string][]byte{
		"long":  []byte("definitely not a wal file"),
		"short": []byte("abc"), // shorter than the header: must not be destroyed
	} {
		path := filepath.Join(t.TempDir(), name+".wal")
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := storage.OpenWAL(path)
		var ce *storage.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s foreign file: got %v, want CorruptError", name, err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != string(content) {
			t.Fatalf("%s foreign file was modified: %q", name, got)
		}
	}
	// a torn header (prefix of a real one) re-initializes cleanly
	path := filepath.Join(t.TempDir(), "torn.wal")
	if err := os.WriteFile(path, []byte(storage.WALMagic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	w, ops, err := storage.OpenWAL(path)
	if err != nil || len(ops) != 0 {
		t.Fatalf("torn header: ops=%d err=%v", len(ops), err)
	}
	w.Close()
}

func TestWALAppendOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := mustOps(t, path)
	defer w.Close()
	if err := w.Append(op(false, "http://x/s", "http://x/p", "small")); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 1<<24)
	if err := w.Append(op(false, "http://x/s", "http://x/p", string(huge))); err == nil {
		t.Fatal("oversized record accepted; recovery would treat it as a torn tail and drop later records")
	}
	if err := w.Append(op(false, "http://x/s", "http://x/p", "after")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w2, ops := mustOps(t, path)
	defer w2.Close()
	if len(ops) != 2 {
		t.Fatalf("recovered %d ops, want the 2 in-limit ones", len(ops))
	}
}

func TestWALVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	b := append([]byte(storage.WALMagic), 0xFF, 0x7F, 0, 0)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := storage.OpenWAL(path)
	var ve *storage.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("version skew: got %v, want VersionError", err)
	}
}

// TestSnapshotUnorganizedRoundtrip covers the pre-Organize snapshot
// shape: dictionary and base triples only.
func TestSnapshotUnorganizedRoundtrip(t *testing.T) {
	d := dict.New()
	tb := triples.NewTable(0)
	add := func(s, p, o dict.Term) {
		tb.Append(d.Intern(s), d.Intern(p), d.Intern(o))
	}
	add(dict.IRI("http://x/s"), dict.IRI("http://x/p"), dict.IntLit(7))
	add(dict.Blank("b1"), dict.IRI("http://x/p"), dict.LangLit("hej", "sv"))
	add(dict.IRI("http://x/s"), dict.IRI("http://x/q"), dict.IRI("http://x/o"))

	var buf []byte
	w := &sliceWriter{&buf}
	if err := storage.Write(w, &storage.Snapshot{Dict: d, Triples: tb}); err != nil {
		t.Fatal(err)
	}
	got, err := storage.Read(buf, colstore.NewPool(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Organized {
		t.Fatal("unorganized snapshot read back organized")
	}
	if got.Triples.Len() != tb.Len() {
		t.Fatalf("triples %d != %d", got.Triples.Len(), tb.Len())
	}
	for i := 0; i < tb.Len(); i++ {
		if got.Triples.At(i) != tb.At(i) {
			t.Fatalf("triple %d differs", i)
		}
	}
	for _, o := range []dict.OID{tb.S[0], tb.P[0], tb.O[0], tb.S[1], tb.O[1]} {
		a, ok1 := d.Term(o)
		b, ok2 := got.Dict.Term(o)
		if !ok1 || !ok2 || a != b {
			t.Fatalf("term %v: %v/%v vs %v/%v", o, a, ok1, b, ok2)
		}
	}
	// the restored dictionary must also intern identically
	if got.Dict.Intern(dict.IRI("http://x/s")) != d.Intern(dict.IRI("http://x/s")) {
		t.Fatal("restored dictionary assigns different OIDs")
	}
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}
