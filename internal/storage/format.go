// Package storage is the durability layer of the self-organizing store:
// a versioned, checksummed binary snapshot format for the whole organized
// state (dictionary, base triples, CS schema, catalog with sealed
// compressed segments, tombstones, delta rows, irregular residue) plus a
// write-ahead log that records post-Organize Add/Delete batches so the
// delta layer survives crashes.
//
// File layout of a snapshot (all integers little-endian; "uvarint" is
// Go's binary.Uvarint; OIDs use the rotated form of colstore.AppendOID):
//
//	magic "SRDFSNP1" (8 bytes)
//	version u16 · flags u16 (bit0 organized, bit1 literalsOrdered) · reserved u32
//	sections, each:  id u8 · length u64 · crc32(payload) u32 · payload
//
// Sections appear in id order: dict(1), triples(2), schema(3, organized
// only), catalog(4, organized only), segments(5, organized only). The
// segments section is the concatenation of every sealed block's payload
// in catalog traversal order; the catalog section carries the per-block
// metadata (encoding, rows, zone, length), so a reader checksums the
// payload bytes once at open but decodes nothing until a scan touches a
// block. Every section is CRC-checked at open; corrupt, truncated or
// version-skewed input yields typed errors, never panics.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"srdf/internal/colstore"
	"srdf/internal/dict"
)

// Magic identifies a snapshot file.
const Magic = "SRDFSNP1"

// Version is the current snapshot format version. v2 added the
// per-property DistinctObj statistic to serialized PropStats.
const Version = 2

const headerLen = 8 + 2 + 2 + 4

// Section ids.
const (
	secDict     = 1
	secTriples  = 2
	secSchema   = 3
	secCatalog  = 4
	secSegments = 5
)

func secName(id uint8) string {
	switch id {
	case secDict:
		return "dict"
	case secTriples:
		return "triples"
	case secSchema:
		return "schema"
	case secCatalog:
		return "catalog"
	case secSegments:
		return "segments"
	default:
		return fmt.Sprintf("section-%d", id)
	}
}

// Header flags.
const (
	flagOrganized       = 1 << 0
	flagLiteralsOrdered = 1 << 1
)

// ErrNotSnapshot reports that the input does not start with the snapshot
// magic — it is some other file, not a corrupted snapshot.
var ErrNotSnapshot = errors.New("storage: not an srdf snapshot")

// VersionError reports a snapshot written by an incompatible format
// version.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("storage: snapshot format version %d (this build reads %d)", e.Got, e.Want)
}

// CorruptError reports structurally invalid snapshot or WAL content:
// truncation, checksum mismatch, or malformed section data.
type CorruptError struct {
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: corrupt %s: %s", e.Section, e.Reason)
}

func corrupt(section, format string, args ...any) *CorruptError {
	return &CorruptError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// --- writer helpers ---------------------------------------------------

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendInt zigzag-encodes a possibly negative integer.
func appendInt(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, uint64(uint64(v)<<1)^uint64(int64(v)>>63))
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendOID(dst []byte, o dict.OID) []byte { return colstore.AppendOID(dst, o) }

func appendSection(dst []byte, id uint8, payload []byte) []byte {
	dst = append(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// --- reader helpers ---------------------------------------------------

// rd is a bounds-checked cursor with a sticky failure flag: any
// out-of-bounds or malformed read marks it bad and yields zero values, so
// parsing code stays linear and checks once per section.
type rd struct {
	b    []byte
	off  int
	sect string
	err  error
}

func (r *rd) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corrupt(r.sect, format, args...)
	}
}

func (r *rd) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a length prefix and validates it against both an absolute
// cap and the remaining input (each counted element needs at least one
// byte), so corrupt counts cannot trigger huge allocations.
func (r *rd) count(max int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) || v > uint64(len(r.b)-r.off) {
		r.fail("implausible count %d at offset %d", v, r.off)
		return 0
	}
	return int(v)
}

// idx reads an index that must lie in [0,n). Unlike a plain
// int(uvarint) conversion it cannot go negative on 2^63-class inputs,
// so the caller's slice access is always in bounds.
func (r *rd) idx(n int) int {
	v := r.uvarint()
	if r.err == nil && v >= uint64(n) {
		r.fail("index %d out of range (limit %d)", v, n)
		return 0
	}
	return int(v)
}

func (r *rd) intv() int {
	u := r.uvarint()
	return int(int64(u>>1) ^ -int64(u&1))
}

func (r *rd) boolv() bool { return r.byte() != 0 }

func (r *rd) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("unexpected end of section")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rd) str() string {
	n := r.count(len(r.b))
	if r.err != nil || r.off+n > len(r.b) {
		r.fail("string overruns section")
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rd) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("unexpected end of section")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *rd) oid() dict.OID {
	if r.err != nil {
		return dict.Nil
	}
	v, n := colstore.DecodeOID(r.b[r.off:])
	if n <= 0 {
		r.fail("bad OID at offset %d", r.off)
		return dict.Nil
	}
	r.off += n
	return v
}

func (r *rd) oids(n int) []dict.OID {
	out := make([]dict.OID, n)
	for i := range out {
		out[i] = r.oid()
	}
	return out
}

func (r *rd) words(n int) []uint64 {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+8*n > len(r.b) {
		r.fail("word array overruns section")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return out
}

func (r *rd) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return corrupt(r.sect, "%d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
