//go:build linux || darwin

package storage

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform build can map snapshots.
const mmapSupported = true

// mmapFile maps the named file read-only. The mapping pins the inode:
// a later rename-over (checkpoint) does not disturb readers of the old
// bytes.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		// empty or absurd: let the caller fall back to a plain read,
		// which produces the right typed error
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(data []byte) error {
	return syscall.Munmap(data)
}

// dropPages tells the kernel the pages backing data need not stay
// resident; the next access faults them back from the page cache or
// disk. For a read-only file mapping this is purely an RSS release,
// never data loss. data must be page-aligned at its start (callers
// align inward).
func dropPages(data []byte) {
	if len(data) == 0 {
		return
	}
	// best-effort: an madvise failure only costs memory, not correctness
	_ = syscall.Madvise(data, syscall.MADV_DONTNEED)
}
