package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"srdf/internal/fault"
)

func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: 10 * time.Microsecond}

	calls := 0
	err := Retry(p, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient failure: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = Retry(p, func() error { calls++; return errors.New("permanent") })
	if !errors.Is(err, ErrDegraded) || calls != 3 {
		t.Fatalf("exhausted retries: err=%v calls=%d, want ErrDegraded after 3", err, calls)
	}
}

// TestWriteFileBytesDirSyncFailureSurfaces is the regression test for
// the silently-ignored directory fsync: a rename whose directory entry
// never becomes durable can vanish on power loss, so SyncDir failure
// must fail the checkpoint, not be swallowed.
func TestWriteFileBytesDirSyncFailureSurfaces(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	path := filepath.Join(t.TempDir(), "snap.srdf")

	fault.Enable("fs.sync:dir", fault.Spec{Err: fault.ErrInjected})
	err := WriteFileBytesFS(fault.WrapFS(fault.OS()), path, []byte("payload"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("dir fsync failure was swallowed: %v", err)
	}

	fault.Disable("fs.sync:dir")
	if err := WriteFileBytesFS(fault.WrapFS(fault.OS()), path, []byte("payload")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("snapshot content after write: %q, %v", got, err)
	}
}
