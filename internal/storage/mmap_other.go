//go:build !(linux || darwin)

package storage

import "errors"

const mmapSupported = false

var errNoMmap = errors.New("storage: mmap not supported on this platform")

func mmapFile(path string) ([]byte, error) { return nil, errNoMmap }

func munmapBytes(data []byte) error { return nil }

func dropPages(data []byte) {}
