package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"

	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/fault"
	"srdf/internal/relational"
	"srdf/internal/triples"
)

const maxCount = 1<<31 - 1

// Snapshot is the serializable state of a store: everything Organize
// built plus the live-update delta layer. Schema and Catalog are nil for
// un-organized stores (dictionary and base triples only).
type Snapshot struct {
	Organized       bool
	LiteralsOrdered bool
	Dict            *dict.Dictionary
	Triples         *triples.Table
	Schema          *cs.Schema
	Catalog         *relational.Catalog
}

// Marshal serializes the snapshot into a byte buffer. The encoding is
// fully deterministic: identical state yields identical bytes (maps are
// emitted in sorted order), so re-saving an opened snapshot is
// byte-stable. Separated from the file write so a checkpoint can
// serialize under the store lock but fsync outside it.
func Marshal(s *Snapshot) ([]byte, error) {
	out := make([]byte, 0, 1<<16)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	var flags uint16
	if s.Organized {
		flags |= flagOrganized
	}
	if s.LiteralsOrdered {
		flags |= flagLiteralsOrdered
	}
	out = binary.LittleEndian.AppendUint16(out, flags)
	out = binary.LittleEndian.AppendUint32(out, 0)

	out = appendSection(out, secDict, writeDict(s.Dict))
	out = appendSection(out, secTriples, writeTriples(s.Triples))
	if s.Organized {
		if s.Schema == nil || s.Catalog == nil {
			return nil, fmt.Errorf("storage: organized snapshot without schema or catalog")
		}
		out = appendSection(out, secSchema, writeSchema(s.Schema))
		catPayload, segPayload, err := writeCatalog(s.Catalog, s.Schema)
		if err != nil {
			return nil, err
		}
		out = appendSection(out, secCatalog, catPayload)
		out = appendSection(out, secSegments, segPayload)
	}
	return out, nil
}

// Write serializes the snapshot to w.
func Write(w io.Writer, s *Snapshot) error {
	out, err := Marshal(s)
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// WriteFileBytes atomically writes pre-marshaled snapshot bytes to path:
// a temp file in the same directory is fsynced and renamed over the
// target, so a crash mid-checkpoint leaves the previous snapshot intact.
func WriteFileBytes(path string, data []byte) error {
	return WriteFileBytesFS(fault.OS(), path, data)
}

// WriteFileBytesFS is WriteFileBytes with an injectable filesystem.
// The directory fsync after the rename is a durability write like any
// other: its failure is returned, not swallowed — a checkpoint whose
// rename could vanish on power loss must not report success. (A
// platform that cannot open directories at all is handled inside
// FS.SyncDir and is not an error.)
func WriteFileBytesFS(fsys fault.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// WriteFile marshals and atomically writes the snapshot to path.
func WriteFile(path string, s *Snapshot) error {
	data, err := Marshal(s)
	if err != nil {
		return err
	}
	return WriteFileBytes(path, data)
}

// Read deserializes a snapshot. Restored sealed columns keep references
// into data (segment payloads decode lazily on first touch), so the
// caller must not reuse or mutate the buffer. pool receives the restored
// columns' accounting; it may be nil.
func Read(data []byte, pool *colstore.BufferPool) (*Snapshot, error) {
	return readSnap(data, pool, nil)
}

// checksumReleasing computes the payload checksum; with a release hook
// (mapped snapshots) it works in chunks and releases each one's pages
// after hashing, so checksumming a file much larger than memory never
// makes the whole file resident at once.
func checksumReleasing(payload []byte, release func([]byte)) uint32 {
	const chunk = 1 << 20
	if release == nil || len(payload) <= chunk {
		return crc32.Checksum(payload, crcTable)
	}
	var sum uint32
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		sum = crc32.Update(sum, crcTable, payload[off:end])
		release(payload[off:end])
	}
	return sum
}

// readSnap is Read with an optional page-release hook for mapped input.
func readSnap(data []byte, pool *colstore.BufferPool, release func([]byte)) (*Snapshot, error) {
	if len(data) < 8 || string(data[:8]) != Magic {
		return nil, ErrNotSnapshot
	}
	if len(data) < headerLen {
		return nil, corrupt("header", "truncated")
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	flags := binary.LittleEndian.Uint16(data[10:])
	s := &Snapshot{
		Organized:       flags&flagOrganized != 0,
		LiteralsOrdered: flags&flagLiteralsOrdered != 0,
	}

	// Walk the section table, checksumming every payload.
	secs := make(map[uint8][]byte)
	off := headerLen
	for off < len(data) {
		if off+13 > len(data) {
			return nil, corrupt("section table", "truncated section header at offset %d", off)
		}
		id := data[off]
		length := binary.LittleEndian.Uint64(data[off+1:])
		sum := binary.LittleEndian.Uint32(data[off+9:])
		off += 13
		if length > uint64(len(data)-off) {
			return nil, corrupt(secName(id), "payload length %d overruns file", length)
		}
		payload := data[off : off+int(length) : off+int(length)]
		off += int(length)
		if checksumReleasing(payload, release) != sum {
			return nil, corrupt(secName(id), "checksum mismatch")
		}
		if _, dup := secs[id]; dup {
			return nil, corrupt(secName(id), "duplicate section")
		}
		secs[id] = payload
	}

	need := []uint8{secDict, secTriples}
	if s.Organized {
		need = append(need, secSchema, secCatalog, secSegments)
	}
	for _, id := range need {
		if _, ok := secs[id]; !ok {
			return nil, corrupt(secName(id), "section missing")
		}
	}

	var err error
	if s.Dict, err = readDict(secs[secDict]); err != nil {
		return nil, err
	}
	if s.Triples, err = readTriples(secs[secTriples]); err != nil {
		return nil, err
	}
	if s.Organized {
		if s.Schema, err = readSchema(secs[secSchema]); err != nil {
			return nil, err
		}
		if s.Catalog, err = readCatalog(secs[secCatalog], secs[secSegments], s.Schema, pool); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ReadFile reads a snapshot file.
func ReadFile(path string, pool *colstore.BufferPool) (*Snapshot, error) {
	return ReadFileFS(fault.OS(), path, pool)
}

// ReadFileFS is ReadFile with an injectable filesystem.
func ReadFileFS(fsys fault.FS, path string, pool *colstore.BufferPool) (*Snapshot, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data, pool)
}

// --- dict -------------------------------------------------------------

func writeDict(d *dict.Dictionary) []byte {
	res := d.ExportResources()
	lits := d.ExportLiterals()
	b := make([]byte, 0, 16*(len(res)+len(lits)))
	b = binary.AppendUvarint(b, uint64(len(res)))
	for _, k := range res {
		b = appendStr(b, k)
	}
	b = binary.AppendUvarint(b, uint64(len(lits)))
	for _, l := range lits {
		b = appendStr(b, l.Lex)
		b = appendStr(b, l.Datatype)
		b = appendStr(b, l.Lang)
	}
	return b
}

func readDict(payload []byte) (*dict.Dictionary, error) {
	r := &rd{b: payload, sect: "dict"}
	res := make([]string, r.count(maxCount))
	for i := range res {
		res[i] = r.str()
	}
	lits := make([]dict.LiteralRec, r.count(maxCount))
	for i := range lits {
		lits[i] = dict.LiteralRec{Lex: r.str(), Datatype: r.str(), Lang: r.str()}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return dict.RestoreDictionary(res, lits), nil
}

// --- triples ----------------------------------------------------------

func writeTriplesInto(b []byte, t *triples.Table) []byte {
	b = binary.AppendUvarint(b, uint64(t.Len()))
	for _, o := range t.S {
		b = appendOID(b, o)
	}
	for _, o := range t.P {
		b = appendOID(b, o)
	}
	for _, o := range t.O {
		b = appendOID(b, o)
	}
	return b
}

func writeTriples(t *triples.Table) []byte {
	return writeTriplesInto(make([]byte, 0, 6*t.Len()), t)
}

func readTriplesFrom(r *rd) *triples.Table {
	n := r.count(maxCount)
	t := triples.NewTable(n)
	t.S = append(t.S, r.oids(n)...)
	t.P = append(t.P, r.oids(n)...)
	t.O = append(t.O, r.oids(n)...)
	return t
}

func readTriples(payload []byte) (*triples.Table, error) {
	r := &rd{b: payload, sect: "triples"}
	t := readTriplesFrom(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return t, nil
}

// --- schema -----------------------------------------------------------

func writePropStat(b []byte, p *cs.PropStat) []byte {
	b = appendOID(b, p.Pred)
	b = appendStr(b, p.Name)
	b = binary.AppendUvarint(b, uint64(p.NonNull))
	b = binary.AppendUvarint(b, uint64(p.ValueCount))
	b = binary.AppendUvarint(b, uint64(p.MultiSubjects))
	b = binary.AppendUvarint(b, uint64(p.DistinctObj))
	kinds := make([]int, 0, len(p.TypeHist))
	for k := range p.TypeHist {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	b = binary.AppendUvarint(b, uint64(len(kinds)))
	for _, k := range kinds {
		b = append(b, byte(k))
		b = binary.AppendUvarint(b, uint64(p.TypeHist[dict.ValueKind(k)]))
	}
	b = append(b, byte(p.Kind))
	b = appendBool(b, p.Nullable)
	b = appendBool(b, p.SplitOff)
	b = appendInt(b, p.FKTarget)
	return b
}

func readPropStat(r *rd) cs.PropStat {
	p := cs.PropStat{
		Pred:          r.oid(),
		Name:          r.str(),
		NonNull:       int(r.uvarint()),
		ValueCount:    int(r.uvarint()),
		MultiSubjects: int(r.uvarint()),
		DistinctObj:   int(r.uvarint()),
	}
	nh := r.count(maxCount)
	if nh > 0 {
		p.TypeHist = make(map[dict.ValueKind]int, nh)
		for i := 0; i < nh; i++ {
			k := dict.ValueKind(r.byte())
			p.TypeHist[k] = int(r.uvarint())
		}
	}
	p.Kind = dict.ValueKind(r.byte())
	p.Nullable = r.boolv()
	p.SplitOff = r.boolv()
	p.FKTarget = r.intv()
	return p
}

func writeCS(b []byte, c *cs.CS) []byte {
	b = binary.AppendUvarint(b, uint64(c.ID))
	b = appendStr(b, c.Name)
	b = binary.AppendUvarint(b, uint64(len(c.Props)))
	for i := range c.Props {
		b = writePropStat(b, &c.Props[i])
	}
	b = binary.AppendUvarint(b, uint64(len(c.Subjects)))
	for _, s := range c.Subjects {
		b = appendOID(b, s)
	}
	b = binary.AppendUvarint(b, uint64(c.Support))
	b = binary.AppendUvarint(b, uint64(c.InRefs))
	b = appendBool(b, c.Retained)
	b = appendInt(b, c.AbsorbedInto)
	b = appendOID(b, c.TypeObj)
	b = binary.AppendUvarint(b, uint64(c.MergedFrom))
	return b
}

func readCS(r *rd) *cs.CS {
	c := &cs.CS{
		ID:    int(r.uvarint()),
		Name:  r.str(),
		Props: make([]cs.PropStat, r.count(maxCount)),
	}
	for i := range c.Props {
		c.Props[i] = readPropStat(r)
	}
	c.Subjects = r.oids(r.count(maxCount))
	c.Support = int(r.uvarint())
	c.InRefs = int(r.uvarint())
	c.Retained = r.boolv()
	c.AbsorbedInto = r.intv()
	c.TypeObj = r.oid()
	c.MergedFrom = int(r.uvarint())
	return c
}

func writeSchema(s *cs.Schema) []byte {
	b := make([]byte, 0, 1<<12)
	o := s.Opts
	b = binary.AppendUvarint(b, uint64(o.MinSupport))
	b = appendFloat(b, o.MinPropFrac)
	b = appendFloat(b, o.SimilarityMerge)
	b = appendBool(b, o.TypeSplit)
	b = binary.AppendUvarint(b, uint64(o.MaxTypeVariants))
	b = appendFloat(b, o.RefFrac)
	b = appendFloat(b, o.MultiValuedAvg)
	b = appendBool(b, o.Merge11)
	b = appendBool(b, o.RescueReferenced)

	b = appendFloat(b, s.Coverage)
	b = binary.AppendUvarint(b, uint64(s.TotalTriples))
	b = binary.AppendUvarint(b, uint64(s.IrregularTriples))
	b = binary.AppendUvarint(b, uint64(s.RawCSCount))

	b = binary.AppendUvarint(b, uint64(len(s.CSs)))
	for _, c := range s.CSs {
		b = writeCS(b, c)
	}
	b = binary.AppendUvarint(b, uint64(len(s.FKs)))
	for _, fk := range s.FKs {
		b = appendInt(b, fk.From)
		b = appendInt(b, fk.To)
		b = appendOID(b, fk.Pred)
		b = appendStr(b, fk.Name)
		b = binary.AppendUvarint(b, uint64(fk.Count))
		b = appendBool(b, fk.OneToOne)
	}
	subs := make([]dict.OID, 0, len(s.SubjectCS))
	for o := range s.SubjectCS {
		subs = append(subs, o)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
	b = binary.AppendUvarint(b, uint64(len(subs)))
	for _, o := range subs {
		b = appendOID(b, o)
		b = binary.AppendUvarint(b, uint64(s.SubjectCS[o]))
	}
	return b
}

func readSchema(payload []byte) (*cs.Schema, error) {
	r := &rd{b: payload, sect: "schema"}
	s := &cs.Schema{}
	s.Opts.MinSupport = int(r.uvarint())
	s.Opts.MinPropFrac = r.float()
	s.Opts.SimilarityMerge = r.float()
	s.Opts.TypeSplit = r.boolv()
	s.Opts.MaxTypeVariants = int(r.uvarint())
	s.Opts.RefFrac = r.float()
	s.Opts.MultiValuedAvg = r.float()
	s.Opts.Merge11 = r.boolv()
	s.Opts.RescueReferenced = r.boolv()

	s.Coverage = r.float()
	s.TotalTriples = int(r.uvarint())
	s.IrregularTriples = int(r.uvarint())
	s.RawCSCount = int(r.uvarint())

	s.CSs = make([]*cs.CS, r.count(maxCount))
	for i := range s.CSs {
		s.CSs[i] = readCS(r)
		if r.err == nil && s.CSs[i].ID != i {
			r.fail("CS %d has id %d", i, s.CSs[i].ID)
		}
	}
	s.FKs = make([]cs.FK, r.count(maxCount))
	for i := range s.FKs {
		s.FKs[i] = cs.FK{
			From:     r.intv(),
			To:       r.intv(),
			Pred:     r.oid(),
			Name:     r.str(),
			Count:    int(r.uvarint()),
			OneToOne: r.boolv(),
		}
	}
	ns := r.count(maxCount)
	s.SubjectCS = make(map[dict.OID]int, ns)
	for i := 0; i < ns; i++ {
		o := r.oid()
		s.SubjectCS[o] = r.idx(len(s.CSs))
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- catalog ----------------------------------------------------------

func writeBitmap(b []byte, bm *relational.Bitmap) []byte {
	words := bm.Words()
	b = binary.AppendUvarint(b, uint64(len(words)))
	for _, w := range words {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

func readBitmap(r *rd) *relational.Bitmap {
	return relational.BitmapFromWords(r.words(r.count(maxCount)))
}

// writeTableCS serializes a table's CS as a schema reference plus the
// only fields Compact's per-table refinement can diverge from the
// schema's frozen copy (Props stats and Support) — the subject lists,
// the dominant payload, live once in the schema section.
func writeTableCS(b []byte, c *cs.CS) []byte {
	b = binary.AppendUvarint(b, uint64(c.ID))
	b = binary.AppendUvarint(b, uint64(c.Support))
	b = binary.AppendUvarint(b, uint64(len(c.Props)))
	for i := range c.Props {
		b = writePropStat(b, &c.Props[i])
	}
	return b
}

func readTableCS(r *rd, schema *cs.Schema) *cs.CS {
	id := r.idx(len(schema.CSs))
	support := int(r.uvarint())
	props := make([]cs.PropStat, r.count(maxCount))
	for i := range props {
		props[i] = readPropStat(r)
	}
	if r.err != nil {
		return &cs.CS{}
	}
	c := *schema.CSs[id] // shares Subjects; Props/Support are table-local
	c.Support = support
	c.Props = props
	return &c
}

func writeCatalog(cat *relational.Catalog, schema *cs.Schema) (catPayload, segPayload []byte, err error) {
	b := make([]byte, 0, 1<<14)
	var segs []byte
	tblIdx := make(map[*relational.Table]int, len(cat.Tables))
	// FK columns are resolved by CS id, not table pointer: Col structs
	// are shared across catalog clones while tables are cloned, so the
	// FKTable pointer may refer to a previous clone of the same table.
	csIdx := make(map[int]int, len(cat.Tables))
	for i, t := range cat.Tables {
		tblIdx[t] = i
		csIdx[t.CS.ID] = i
	}

	b = binary.AppendUvarint(b, uint64(len(cat.Tables)))
	for _, t := range cat.Tables {
		b = appendStr(b, t.Name)
		b = binary.AppendUvarint(b, t.Base)
		b = binary.AppendUvarint(b, uint64(t.Count))
		b = appendOID(b, t.SortPred)
		b = appendBool(b, t.Hidden)
		b = appendBool(b, t.SortDisturbed)
		b = writeTableCS(b, t.CS)

		b = binary.AppendUvarint(b, uint64(len(t.Cols)))
		for _, c := range t.Cols {
			b = writePropStat(b, c.Prop)
			fk := -1
			if c.FKTable != nil {
				var ok bool
				if fk, ok = csIdx[c.FKTable.CS.ID]; !ok {
					return nil, nil, fmt.Errorf("storage: column %s references a table outside the catalog", c.Data.Name)
				}
			}
			b = appendInt(b, fk)
			b = appendBool(b, c.Folded)
			b = appendStr(b, c.Data.Name)
			b = binary.AppendUvarint(b, uint64(c.Data.NullCount()))
			var metas []colstore.BlockMeta
			segs, metas, err = c.Data.MarshalBlocks(segs)
			if err != nil {
				return nil, nil, err
			}
			b = binary.AppendUvarint(b, uint64(len(metas)))
			for _, m := range metas {
				b = append(b, byte(m.Enc))
				b = binary.AppendUvarint(b, uint64(m.Rows))
				var zf byte
				if m.Zone.HasNull {
					zf |= 1
				}
				if m.Zone.AllNull {
					zf |= 2
				}
				b = append(b, zf)
				b = appendOID(b, m.Zone.Min)
				b = appendOID(b, m.Zone.Max)
				b = binary.AppendUvarint(b, uint64(m.Len))
			}
		}

		b = binary.AppendUvarint(b, uint64(len(t.Extra)))
		for _, s := range t.Extra {
			b = appendOID(b, s)
		}
		b = writeBitmap(b, t.Del)
		b = writeBitmap(b, t.Holes())
		if t.Delta.Len() == 0 {
			b = appendBool(b, false)
		} else {
			b = appendBool(b, true)
			b = binary.AppendUvarint(b, uint64(t.Delta.Len()))
			for _, s := range t.Delta.Subj {
				b = appendOID(b, s)
			}
			for _, col := range t.Delta.Cols {
				for _, v := range col {
					b = appendOID(b, v)
				}
			}
		}
	}

	b = binary.AppendUvarint(b, uint64(len(cat.Links)))
	for _, lt := range cat.Links {
		pi, ok := tblIdx[lt.Parent]
		if !ok {
			return nil, nil, fmt.Errorf("storage: link table %s has a parent outside the catalog", lt.Name)
		}
		b = appendStr(b, lt.Name)
		b = binary.AppendUvarint(b, uint64(pi))
		b = appendOID(b, lt.Pred)
		b = binary.AppendUvarint(b, uint64(len(lt.Subj)))
		for i := range lt.Subj {
			b = appendOID(b, lt.Subj[i])
			b = appendOID(b, lt.Val[i])
		}
	}

	b = writeTriplesInto(b, cat.Irregular)
	return b, segs, nil
}

func readCatalog(payload, segData []byte, schema *cs.Schema, pool *colstore.BufferPool) (*relational.Catalog, error) {
	r := &rd{b: payload, sect: "catalog"}
	segOff := 0

	nt := r.count(maxCount)
	tables := make([]*relational.Table, 0, nt)
	type fkRef struct {
		col *relational.Col
		idx int
	}
	var fkRefs []fkRef
	for ti := 0; ti < nt; ti++ {
		t := &relational.Table{
			Name:  r.str(),
			Base:  r.uvarint(),
			Count: int(r.uvarint()),
		}
		t.SortPred = r.oid()
		t.Hidden = r.boolv()
		t.SortDisturbed = r.boolv()
		t.CS = readTableCS(r, schema)

		nc := r.count(maxCount)
		for ci := 0; ci < nc; ci++ {
			ps := readPropStat(r)
			fk := r.intv()
			folded := r.boolv()
			colName := r.str()
			nullCount := int(r.uvarint())
			nb := r.count(maxCount)
			metas := make([]colstore.BlockMeta, nb)
			total := 0
			for bi := 0; bi < nb; bi++ {
				m := colstore.BlockMeta{Enc: colstore.Encoding(r.byte())}
				m.Rows = int(r.uvarint())
				zf := r.byte()
				m.Zone.HasNull = zf&1 != 0
				m.Zone.AllNull = zf&2 != 0
				m.Zone.Min = r.oid()
				m.Zone.Max = r.oid()
				m.Len = int(r.uvarint())
				if r.err == nil && (m.Len < 0 || m.Len > len(segData)-segOff-total) {
					r.fail("column %s block %d overruns segment section", colName, bi)
				}
				total += m.Len
				metas[bi] = m
			}
			if r.err != nil {
				return nil, r.err
			}
			data, err := colstore.RestoreSealed(colName, nullCount, metas, segData[segOff:segOff+total], pool)
			if err != nil {
				return nil, corrupt("catalog", "%v", err)
			}
			segOff += total

			// CS-owned columns point into the table CS's PropStats (so a
			// later Compact refresh re-finds them); folded copies keep the
			// private stats they were written with.
			prop := &ps
			if own := t.CS.Prop(ps.Pred); own != nil && own.Name == ps.Name {
				prop = own
			}
			col := &relational.Col{Prop: prop, Data: data, Folded: folded}
			if fk >= 0 {
				fkRefs = append(fkRefs, fkRef{col: col, idx: fk})
			} else if fk != -1 {
				return nil, corrupt("catalog", "column %s has FK index %d", colName, fk)
			}
			t.Cols = append(t.Cols, col)
		}

		t.SetExtra(r.oids(r.count(maxCount)))
		t.Del = readBitmap(r)
		t.SetHoles(readBitmap(r))
		if r.boolv() {
			nd := r.count(maxCount)
			subj := r.oids(nd)
			cols := make([][]dict.OID, len(t.Cols))
			for ci := range cols {
				cols[ci] = r.oids(nd)
			}
			if r.err == nil {
				delta, err := relational.RestoreDeltaRows(subj, cols)
				if err != nil {
					return nil, corrupt("catalog", "table %s: %v", t.Name, err)
				}
				t.Delta = delta
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		for _, c := range t.Cols {
			if c.Data.Len() != t.SealedRows() {
				return nil, corrupt("catalog", "table %s column %s has %d rows, want %d",
					t.Name, c.Data.Name, c.Data.Len(), t.SealedRows())
			}
		}
		tables = append(tables, t)
	}
	for _, ref := range fkRefs {
		if ref.idx >= len(tables) {
			return nil, corrupt("catalog", "FK reference to table %d of %d", ref.idx, len(tables))
		}
		ref.col.FKTable = tables[ref.idx]
	}

	nl := r.count(maxCount)
	links := make([]*relational.LinkTable, 0, nl)
	for li := 0; li < nl; li++ {
		lt := &relational.LinkTable{Name: r.str()}
		pi := r.idx(len(tables))
		lt.Pred = r.oid()
		n := r.count(maxCount)
		lt.Subj = make([]dict.OID, n)
		lt.Val = make([]dict.OID, n)
		for i := 0; i < n; i++ {
			lt.Subj[i] = r.oid()
			lt.Val[i] = r.oid()
		}
		if r.err != nil {
			return nil, r.err
		}
		lt.Parent = tables[pi]
		links = append(links, lt)
	}

	irregular := readTriplesFrom(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	if segOff != len(segData) {
		return nil, corrupt("segments", "%d trailing bytes", len(segData)-segOff)
	}
	return relational.AssembleCatalog(tables, links, irregular), nil
}
