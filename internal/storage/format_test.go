package storage

import (
	"encoding/binary"
	"testing"
)

// TestIdxRejectsHugeVarints: index reads must fail on 2^63-class values
// instead of wrapping negative and bypassing slice bounds checks (the
// classic int(uvarint) trap).
func TestIdxRejectsHugeVarints(t *testing.T) {
	for _, v := range []uint64{1 << 63, ^uint64(0), 4, 1 << 32} {
		b := binary.AppendUvarint(nil, v)
		r := &rd{b: b, sect: "test"}
		got := r.idx(4)
		if v < 4 {
			if r.err != nil || got != int(v) {
				t.Fatalf("idx(%d) in range: got %d, err %v", v, got, r.err)
			}
			continue
		}
		if r.err == nil {
			t.Fatalf("idx accepted out-of-range value %d as %d", v, got)
		}
		if got < 0 || got >= 4 {
			// the sentinel must itself be a safe index
			if got != 0 {
				t.Fatalf("idx failure sentinel %d is not safe", got)
			}
		}
	}
}
