package storage

import (
	"errors"
	"fmt"
	"time"
)

// ErrDegraded marks a durability operation that kept failing past its
// retry budget. Callers (the store) latch into read-only mode on it;
// errors.Is(err, ErrDegraded) identifies the condition through wraps.
var ErrDegraded = errors.New("storage: durability degraded")

// RetryPolicy bounds how hard a durability write is retried before the
// failure is declared degraded. Transient fsync errors (a saturated
// device, a hiccuping network mount) often clear within milliseconds;
// real faults (disk full, a dead device) do not, and burning seconds
// under the store lock would stall every reader — so the defaults are
// a handful of quick attempts, with the longer-horizon recovery left
// to the store's background probe.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included).
	// Values below 1 mean one attempt, no retry.
	Attempts int
	// Base is the sleep before the second attempt; it doubles per
	// retry up to Max.
	Base time.Duration
	// Max caps the per-retry sleep.
	Max time.Duration
}

// DefaultRetry is the policy stores use unless configured otherwise.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}

// Backoff returns the sleep before attempt n (0-based; attempt 0 has
// no sleep).
func (p RetryPolicy) Backoff(n int) time.Duration {
	if n <= 0 || p.Base <= 0 {
		return 0
	}
	d := p.Base << (n - 1)
	if p.Max > 0 && (d > p.Max || d <= 0) {
		d = p.Max
	}
	return d
}

// Retry runs op up to p.Attempts times with exponential backoff. On
// exhaustion it returns the last error wrapped in ErrDegraded so the
// caller can latch; a nil from op returns immediately.
func Retry(p RetryPolicy, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if d := p.Backoff(i); d > 0 {
			time.Sleep(d)
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("%w: %v (after %d attempts)", ErrDegraded, err, attempts)
}
