package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"srdf/internal/dict"
	"srdf/internal/fault"
	"srdf/internal/nt"
)

// WAL file layout:
//
//	magic "SRDFWAL1" (8 bytes) · version u16 · reserved u16
//	records, each:  length u32 · crc32(payload) u32 · payload
//
// A record's payload is one logical operation in *lexical* term form
// (op byte, then three terms as kind + value/datatype/lang strings), so
// replay goes through the ordinary Add/Delete path and is independent of
// OID numbering — Organize may renumber the dictionary between the
// snapshot and the log without invalidating a single record. Replay of a
// fully-applied log against its own checkpoint is idempotent because the
// store treats the graph as a set.
//
// Recovery semantics: OpenWAL scans the log, returns every complete
// record, and truncates a torn tail (a crash mid-append) in place. A
// record with a valid frame but an undecodable payload is corruption, not
// a torn write, and yields a typed error.

// WALMagic identifies a write-ahead log file.
const WALMagic = "SRDFWAL1"

// WALVersion is the current log format version.
const WALVersion = 1

const walHeaderLen = 8 + 2 + 2

// maxWALRecord bounds one record's payload; larger length prefixes are
// treated as garbage (torn or corrupt tail).
const maxWALRecord = 1 << 24

// Op is one logged live-update operation.
type Op struct {
	Del bool
	T   nt.Triple
}

// WAL is an append-only operation log. It is not safe for concurrent
// use; the owning store serializes access under its own lock. Appends
// buffer in memory until Sync, which writes and fsyncs — the store syncs
// at batch boundaries (before publishing a snapshot, at checkpoints, and
// on Close), so a crash loses at most the current unsynced batch.
type WAL struct {
	f    fault.File
	path string
	pend []byte
	size int64 // durable file size
	recs int   // records in the log (durable + pending)
	// broken marks a half-finished Truncate (file truncated, header not
	// durably rewritten): Sync refuses until a Truncate retry completes,
	// so a "successful" sync can never write records into a headerless
	// file that recovery would reject wholesale.
	broken bool
}

// OpenWAL opens or creates the log at path, returning every complete
// record for replay. A torn tail — the result of a crash mid-append — is
// truncated away; a file that is not a WAL at all yields a typed error.
func OpenWAL(path string) (*WAL, []Op, error) {
	return OpenWALFS(fault.OS(), path)
}

// OpenWALFS is OpenWAL with an injectable filesystem — every
// durability syscall the log makes goes through fsys.
func OpenWALFS(fsys fault.FS, path string) (*WAL, []Op, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path}
	if len(data) < walHeaderLen {
		// A header prefix means creation was torn mid-write (no record
		// was ever durable): start the log fresh. Anything else is some
		// other file — refuse rather than destroy it.
		fullHeader := make([]byte, 0, walHeaderLen)
		fullHeader = append(fullHeader, WALMagic...)
		fullHeader = binary.LittleEndian.AppendUint16(fullHeader, WALVersion)
		fullHeader = binary.LittleEndian.AppendUint16(fullHeader, 0)
		if string(data) != string(fullHeader[:len(data)]) {
			f.Close()
			return nil, nil, corrupt("wal", "short file is not an srdf wal")
		}
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	if string(data[:8]) != WALMagic {
		f.Close()
		return nil, nil, corrupt("wal", "bad magic (not an srdf wal)")
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != WALVersion {
		f.Close()
		return nil, nil, &VersionError{Got: v, Want: WALVersion}
	}

	var ops []Op
	off := walHeaderLen
	for off < len(data) {
		if off+8 > len(data) {
			break // torn frame header
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxWALRecord || off+8+int(length) > len(data) {
			break // torn or garbage length
		}
		payload := data[off+8 : off+8+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload
		}
		op, err := decodeOp(payload)
		if err != nil {
			// a checksummed frame with an undecodable payload is not a
			// torn write — refuse rather than silently drop operations
			f.Close()
			return nil, nil, err
		}
		ops = append(ops, op)
		off += 8 + int(length)
	}
	if off < len(data) {
		// Repair the torn tail so appends continue from a clean record
		// boundary.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = int64(off)
	w.recs = len(ops)
	return w, ops, nil
}

func (w *WAL) writeHeader() error {
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, WALMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, WALVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, 0)
	// The log is inconsistent from the truncate until the header is
	// durably back; only full success clears the flag (Truncate retries
	// re-enter here).
	w.broken = true
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(walHeaderLen), 0); err != nil {
		return err
	}
	w.size = walHeaderLen
	w.recs = 0
	w.pend = w.pend[:0]
	w.broken = false
	return nil
}

func appendTerm(b []byte, t dict.Term) []byte {
	b = append(b, byte(t.Kind))
	b = appendStr(b, t.Value)
	b = appendStr(b, t.Datatype)
	return appendStr(b, t.Lang)
}

func readTerm(r *rd) dict.Term {
	return dict.Term{
		Kind:     dict.TermKind(r.byte()),
		Value:    r.str(),
		Datatype: r.str(),
		Lang:     r.str(),
	}
}

func encodeOp(op Op) []byte {
	b := make([]byte, 0, 64)
	if op.Del {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendTerm(b, op.T.S)
	b = appendTerm(b, op.T.P)
	return appendTerm(b, op.T.O)
}

func decodeOp(payload []byte) (Op, error) {
	r := &rd{b: payload, sect: "wal record"}
	var op Op
	op.Del = r.boolv()
	op.T.S = readTerm(r)
	op.T.P = readTerm(r)
	op.T.O = readTerm(r)
	if err := r.finish(); err != nil {
		return Op{}, err
	}
	return op, nil
}

// CanLog reports whether op fits one WAL record, so a caller can
// reject an over-limit write cleanly before applying it instead of
// latching durability loss afterwards. The common case pays no
// encoding: only ops whose lexical forms approach the limit are
// measured exactly.
func (w *WAL) CanLog(op Op) error {
	n := len(op.T.S.Value) + len(op.T.S.Datatype) + len(op.T.S.Lang) +
		len(op.T.P.Value) + len(op.T.P.Datatype) + len(op.T.P.Lang) +
		len(op.T.O.Value) + len(op.T.O.Datatype) + len(op.T.O.Lang)
	// frame overhead: op byte + 3 kind bytes + 9 uvarint lengths (≤5 each)
	if n+64 <= maxWALRecord {
		return nil
	}
	if len(encodeOp(op)) > maxWALRecord {
		return fmt.Errorf("storage: wal record would exceed the %d byte limit", maxWALRecord)
	}
	return nil
}

// Broken reports a half-finished Truncate: the file was truncated but
// the header is not durably back, so Sync refuses until a Truncate
// retry completes.
func (w *WAL) Broken() bool { return w.broken }

// Append buffers one operation; it becomes durable at the next Sync.
// Records larger than maxWALRecord are rejected: recovery treats an
// over-limit length prefix as a torn tail, so letting one through would
// make the log self-truncate on the next open.
func (w *WAL) Append(op Op) error {
	payload := encodeOp(op)
	if len(payload) > maxWALRecord {
		return fmt.Errorf("storage: wal record of %d bytes exceeds the %d limit", len(payload), maxWALRecord)
	}
	w.pend = binary.LittleEndian.AppendUint32(w.pend, uint32(len(payload)))
	w.pend = binary.LittleEndian.AppendUint32(w.pend, crc32.Checksum(payload, crcTable))
	w.pend = append(w.pend, payload...)
	w.recs++
	return nil
}

// Dirty reports whether unsynced operations are pending.
func (w *WAL) Dirty() bool { return len(w.pend) > 0 }

// Records returns the number of operations in the log, pending included.
func (w *WAL) Records() int { return w.recs }

// Sync writes the pending batch and fsyncs the log — the fsync-on-batch
// boundary.
func (w *WAL) Sync() error {
	if w.broken {
		return fmt.Errorf("storage: wal %s: interrupted truncate must be retried before syncing", w.path)
	}
	if len(w.pend) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.pend, w.size); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(w.pend))
	w.pend = w.pend[:0]
	return nil
}

// Truncate discards every record — pending ones included — after a
// checkpoint has folded them into a snapshot.
func (w *WAL) Truncate() error { return w.writeHeader() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs pending records and closes the file.
func (w *WAL) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
