package storage

import (
	"sync"
	"unsafe"

	"srdf/internal/colstore"
	"srdf/internal/fault"
)

// pageSize is the madvise alignment unit. 4096 is correct on every
// platform we map on; a larger real page size only makes the inward
// alignment more conservative, never wrong.
const pageSize = 4096

// Blob is the backing memory of an opened snapshot: a read-only mmap of
// the .srdf file when the platform allows it, or a heap buffer from the
// whole-file-read fallback. The snapshot's lazy segments slice into it,
// so it must stay open for the life of the store; Close (idempotent)
// unmaps it, after which those segments must not be touched.
type Blob struct {
	mu     sync.Mutex
	data   []byte
	mapped bool
	closed bool
}

// Bytes returns the snapshot bytes. Callers must not mutate them.
func (b *Blob) Bytes() []byte { return b.data }

// Mapped reports whether the bytes are an mmap view rather than heap.
func (b *Blob) Mapped() bool { return b.mapped }

// Close releases the mapping (a no-op for heap-backed blobs). After
// Close, segments restored from this blob must no longer be read.
func (b *Blob) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || !b.mapped {
		b.closed = true
		return nil
	}
	b.closed = true
	data := b.data
	b.data = nil
	return munmapBytes(data)
}

// ReleaseRange drops the resident pages fully covered by p, a slice
// into the blob (aligned inward, so boundary pages shared with
// neighbours survive). Heap-backed blobs ignore it — MADV_DONTNEED on
// anonymous memory would zero live data.
func (b *Blob) ReleaseRange(p []byte) {
	if !b.mapped || len(p) == 0 {
		return
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(b.data)))
	off := uintptr(unsafe.Pointer(unsafe.SliceData(p))) - base
	lo := (off + pageSize - 1) &^ uintptr(pageSize-1)
	hi := (off + uintptr(len(p))) &^ uintptr(pageSize-1)
	if hi <= lo || hi > uintptr(len(b.data)) {
		return
	}
	dropPages(b.data[lo:hi])
}

// Drop releases every resident page of the mapping; subsequent reads
// fault pages back in on demand. No-op for heap-backed blobs.
func (b *Blob) Drop() {
	if !b.mapped {
		return
	}
	dropPages(b.data)
}

// mapHitter is the optional failpoint hook the fault-wrapped FS
// implements: it lets the chaos harness veto the mmap path
// (fs.map:snapshot) so the pread fallback gets exercised, without
// widening the FS interface for every implementation.
type mapHitter interface{ MapHit(name string) error }

// openBlob maps path read-only, falling back to a whole-file read
// through fsys when mapping is unavailable (platform, failpoint, empty
// file, exotic filesystem). Read errors keep their identity (a missing
// file still satisfies os.IsNotExist through the fallback).
func openBlob(fsys fault.FS, path string) (*Blob, error) {
	tryMap := mmapSupported
	if mh, ok := fsys.(mapHitter); ok && tryMap {
		if err := mh.MapHit(path); err != nil {
			tryMap = false
		}
	}
	if tryMap {
		if data, err := mmapFile(path); err == nil {
			return &Blob{data: data, mapped: true}, nil
		}
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Blob{data: data}, nil
}

// OpenFileFS opens the snapshot at path out-of-core: the file is mapped
// read-only (pread fallback behind the fault.FS seam) and the restored
// lazy segments reference the mapping directly — no heap copy of the
// encoded payloads. The pool, when non-nil, is wired to the mapping so
// evictions release the pages of encoded bytes they re-cover, and the
// open itself releases everything it touched (checksums and validation
// walk the whole file, but none of it needs to stay resident).
//
// The returned Blob must outlive every reader of the snapshot; the
// store closes it on Store.Close.
func OpenFileFS(fsys fault.FS, path string, pool *colstore.BufferPool) (*Snapshot, *Blob, error) {
	blob, err := openBlob(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	var release func([]byte)
	if blob.mapped {
		release = blob.ReleaseRange
		if pool != nil {
			pool.SetReleasers(blob.ReleaseRange, blob.Drop)
		}
	}
	snap, err := readSnap(blob.data, pool, release)
	if err != nil {
		blob.Close()
		return nil, nil, err
	}
	blob.Drop()
	return snap, blob, nil
}
