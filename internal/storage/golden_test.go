package storage_test

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srdf/internal/colstore"
	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/storage"
)

var update = flag.Bool("update", false, "regenerate the golden snapshot fixture")

const goldenPath = "testdata/golden_v2.srdf"

// goldenSource is a fixed graph exercising most of the format surface:
// two characteristic sets, a foreign key, a multi-valued property (link
// table), NULLs, and an irregular subject.
const goldenSource = `@prefix g: <http://golden/> .
g:p1 g:name "alice" ; g:age 30 ; g:works g:c1 .
g:p2 g:name "bob" ; g:age 25 ; g:works g:c1 .
g:p3 g:name "carol" ; g:age 41 ; g:works g:c2 .
g:p4 g:name "dave" ; g:age 19 ; g:works g:c2 .
g:c1 g:label "acme" ; g:tag "a" , "b" , "c" .
g:c2 g:label "globex" ; g:tag "x" , "y" , "z" .
g:c3 g:label "umbrella" ; g:tag "u" , "v" , "w" .
g:odd g:whatever "irregular" .
`

var goldenQueries = []string{
	`SELECT ?s ?n WHERE { ?s <http://golden/name> ?n }`,
	`SELECT ?s ?n ?a WHERE { ?s <http://golden/name> ?n . ?s <http://golden/age> ?a . FILTER (?a >= 25) }`,
	`SELECT ?s ?l WHERE { ?s <http://golden/works> ?c . ?c <http://golden/label> ?l }`,
	`SELECT ?c ?t WHERE { ?c <http://golden/tag> ?t }`,
	`SELECT ?s ?v WHERE { ?s <http://golden/whatever> ?v }`,
	`SELECT ?s ?n WHERE { ?s <http://golden/name> ?n . ?s <http://golden/nick> ?k }`,
}

// buildGoldenStore reproduces the fixture's state: the fixed graph,
// organized, plus delta traffic (a new matching subject, a delete, an
// irregular add) folded into the catalog's delta layer but not
// compacted.
func buildGoldenStore(t *testing.T) *core.Store {
	t.Helper()
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.CompactThreshold = -1
	st := core.NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(goldenSource)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	g := func(s string) dict.Term { return dict.IRI("http://golden/" + s) }
	st.Add(nt.Triple{S: g("p5"), P: g("name"), O: dict.StringLit("erin")})
	st.Add(nt.Triple{S: g("p5"), P: g("age"), O: dict.IntLit(33)})
	st.Add(nt.Triple{S: g("p5"), P: g("works"), O: g("c2")})
	st.Delete(nt.Triple{S: g("p2"), P: g("age"), O: dict.IntLit(25)})
	st.Add(nt.Triple{S: g("odd"), P: g("whatever"), O: dict.StringLit("more")})
	st.Add(nt.Triple{S: g("p1"), P: g("nick"), O: dict.StringLit("al")})
	st.Stats() // fold the writes into the published delta layer
	return st
}

func queryRows(t *testing.T, st *core.Store, q string) []string {
	t.Helper()
	res, err := st.Query(q, core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	rows := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b strings.Builder
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.Lexical())
		}
		rows = append(rows, b.String())
	}
	return rows
}

func sortedEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sortStrings(as)
	sortStrings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestGoldenFixture asserts long-term format compatibility: the
// committed fixture still opens, answers queries identically to a store
// rebuilt from source, and re-saves byte-exactly (so the serializer
// cannot silently drift while claiming the same version).
func TestGoldenFixture(t *testing.T) {
	if *update {
		st := buildGoldenStore(t)
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to regenerate): %v", err)
	}

	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.CompactThreshold = -1
	opened, err := core.OpenStore(goldenPath, opts)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	rebuilt := buildGoldenStore(t)
	for _, q := range goldenQueries {
		got := queryRows(t, opened, q)
		ref := queryRows(t, rebuilt, q)
		if !sortedEq(got, ref) {
			t.Errorf("query %s:\nfixture: %v\nrebuilt: %v", q, got, ref)
		}
	}

	// Byte-exact round-trip: open → save must reproduce the fixture.
	out := filepath.Join(t.TempDir(), "resave.srdf")
	if err := opened.Save(out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("re-saved fixture differs: %d bytes vs %d (format drift without a version bump?)",
			len(got), len(want))
	}

	// And a freshly built store must still serialize to the same bytes.
	out2 := filepath.Join(t.TempDir(), "rebuild.srdf")
	if err := rebuilt.Save(out2); err != nil {
		t.Fatal(err)
	}
	got2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("rebuilt store serializes differently: %d bytes vs %d", len(got2), len(want))
	}
}

func isTypedSnapshotError(err error) bool {
	var ve *storage.VersionError
	var ce *storage.CorruptError
	return errors.Is(err, storage.ErrNotSnapshot) || errors.As(err, &ve) || errors.As(err, &ce)
}

// TestGoldenCorruption flips bytes across the fixture and truncates it
// at every prefix length: Read must never panic, and every error must be
// one of the typed snapshot errors.
func TestGoldenCorruption(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	pool := func() *colstore.BufferPool { return colstore.NewPool(0) }

	if _, err := storage.Read(nil, pool()); !errors.Is(err, storage.ErrNotSnapshot) {
		t.Fatalf("nil input: %v", err)
	}

	// Magic → ErrNotSnapshot; version → VersionError; any payload byte →
	// checksum CorruptError.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := storage.Read(bad, pool()); !errors.Is(err, storage.ErrNotSnapshot) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[8] ^= 0xFF
	var ve *storage.VersionError
	if _, err := storage.Read(bad, pool()); !errors.As(err, &ve) {
		t.Fatalf("bad version: %v", err)
	}

	for off := 0; off < len(data); off++ {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x55
		_, err := storage.Read(bad, pool())
		if err != nil && !isTypedSnapshotError(err) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}

	for cut := 0; cut < len(data); cut++ {
		_, err := storage.Read(data[:cut], pool())
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !isTypedSnapshotError(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

// FuzzSnapshotRead hammers the reader with mutated snapshots: it must
// never panic, and any error must be typed.
func FuzzSnapshotRead(f *testing.F) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte(storage.Magic))
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := storage.Read(b, colstore.NewPool(0))
		if err != nil {
			if !isTypedSnapshotError(err) {
				t.Fatalf("untyped error %v", err)
			}
			return
		}
		// An accepted snapshot must be fully decodable: force every lazy
		// segment through its decoder.
		if snap.Catalog != nil {
			for _, tb := range snap.Catalog.Tables {
				for _, c := range tb.Cols {
					c.Data.Values()
				}
			}
		}
	})
}
