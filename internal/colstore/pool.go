// Package colstore is the columnar storage substrate: typed columns with
// NULL support, per-block zone maps (the Netezza-style min/max index the
// paper adds to push selections across correlated foreign keys), and the
// buffer pool.
//
// The buffer pool has two halves. The page simulation replaces the
// paper's physical cold/hot runs for the Table I experiments: CI
// machines cannot reproduce disk behaviour, so every page access is
// routed through the pool, a miss charges a deterministic virtual fetch
// cost, and "cold" means the pool was flushed. The real half manages
// memory: decoded lazy blocks of snapshot-opened stores are owned by the
// pool, evicted LRU back to their disk-resident encoded bytes when a
// byte budget (Options.PoolBytes) is exceeded, and re-decoded on the
// next touch — so a store much larger than RAM stays queryable with
// bounded resident memory.
package colstore

import (
	"container/list"
	"sync"
	"time"
)

// ValuesPerPage is the number of 8-byte values on one 8 KiB page. Zone
// map blocks are aligned to pages so a skipped block is a page never
// fetched.
const ValuesPerPage = 1024

// DefaultFetchCost is the simulated cost of one page miss. It models a
// disk read (seek amortized over sequential runs is deliberately ignored:
// the paper's point is locality, i.e. number of pages touched).
const DefaultFetchCost = 100 * time.Microsecond

// PageID identifies one page of one registered object.
type PageID struct {
	Obj  uint32
	Page uint32
}

// PoolStats is a snapshot of buffer pool counters.
type PoolStats struct {
	Hits   uint64
	Misses uint64
	// Evictions counts blocks the pool actually dropped: decoded lazy
	// segments pushed back to their encoded on-disk bytes by the byte
	// budget (or ResetCold), plus simulated page-table evictions when a
	// page capacity is configured.
	Evictions uint64
	Resident  int
	// SimIO is the accumulated virtual I/O time (Misses × FetchCost).
	SimIO time.Duration
	// Faults counts real block decodes: a lazy segment's payload being
	// materialized because a scan touched it, including re-decodes after
	// an eviction. Unlike Misses (the page simulation) this is actual
	// work actually done.
	Faults uint64
	// ResidentBytes is the decoded size of the lazy blocks currently
	// held in memory by the pool — the quantity the byte budget bounds.
	// Eagerly sealed columns (built in memory, no disk backing) are not
	// evictable and are excluded; see SegmentBytes for the total.
	ResidentBytes int64
	// BudgetBytes echoes the configured byte budget (0 = unlimited).
	BudgetBytes int64
	// SegmentBytes is the resident size of all sealed column segments
	// accounted against this pool; LogicalBytes is what the same data
	// would occupy as flat 8-byte OID vectors.
	SegmentBytes int64
	LogicalBytes int64
	// CompressionRatio is LogicalBytes/SegmentBytes (0 when nothing is
	// sealed): 4.0 means sealed columns resident at a quarter of their
	// flat size.
	CompressionRatio float64
	// SegmentsLazy counts sealed blocks restored from a snapshot whose
	// payload is not decoded right now (evicted blocks return here);
	// SegmentsDecoded counts blocks currently decoded. Opening a
	// snapshot must leave SegmentsDecoded (and SegmentBytes) at zero —
	// payloads decode on first touch.
	SegmentsLazy    int64
	SegmentsDecoded int64
}

// BufferPool tracks simulated page residency and owns the decoded form
// of lazy snapshot blocks, with LRU eviction on both.
// The zero value is not usable; create with NewPool.
type BufferPool struct {
	mu          sync.Mutex
	capacity    int // max resident pages; <=0 means unlimited
	budget      int64
	fetchCost   time.Duration
	lru         *list.List // of PageID, front = most recent
	pages       map[PageID]*list.Element
	blocks      *list.List // of *lazySegment, front = most recent
	stats       PoolStats
	segBytes    int64
	logBytes    int64
	resBytes    int64
	lazySegs    int64
	decodedSegs int64
	nextObj     uint32

	// releaser, when set, is told about encoded byte ranges the pool no
	// longer needs hot (evicted blocks' payloads). The snapshot layer
	// points it at madvise on the mapped region; heap-backed stores
	// leave it nil.
	releaser func(b []byte)
	// dropAll, when set, releases the entire mapped snapshot region.
	// Called when the encoded bytes faulted back in since the last drop
	// exceed the budget, so the mapped working set stays bounded too.
	dropAll    func()
	encodedHot int64
}

// NewPool returns a pool holding at most capacity pages (<=0: unlimited)
// with the default fetch cost and no byte budget.
func NewPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity:  capacity,
		fetchCost: DefaultFetchCost,
		lru:       list.New(),
		pages:     make(map[PageID]*list.Element),
		blocks:    list.New(),
	}
}

// SetBudget bounds the decoded bytes of lazy blocks the pool keeps
// resident (<=0: unlimited). Exceeding the budget evicts the least
// recently used unpinned blocks back to their encoded form.
func (bp *BufferPool) SetBudget(bytes int64) {
	bp.mu.Lock()
	bp.budget = bytes
	bp.stats.BudgetBytes = bytes
	bp.mu.Unlock()
	bp.enforceBudget()
}

// SetReleasers wires the pool to a mapped snapshot region: release is
// called with the encoded payload of each evicted block, dropAll
// releases the whole region. Either may be nil.
func (bp *BufferPool) SetReleasers(release func(b []byte), dropAll func()) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.releaser = release
	bp.dropAll = dropAll
}

// SetFetchCost overrides the per-miss virtual cost.
func (bp *BufferPool) SetFetchCost(d time.Duration) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.fetchCost = d
}

// NewObject allocates an object id for a column or projection that will
// account its pages against this pool.
func (bp *BufferPool) NewObject() uint32 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.nextObj++
	return bp.nextObj
}

// Access touches one page, faulting it in on a miss.
func (bp *BufferPool) Access(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.pages[id]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(el)
		return
	}
	bp.stats.Misses++
	bp.stats.SimIO += bp.fetchCost
	if bp.capacity > 0 {
		for len(bp.pages) >= bp.capacity {
			back := bp.lru.Back()
			if back == nil {
				break
			}
			delete(bp.pages, back.Value.(PageID))
			bp.lru.Remove(back)
			bp.stats.Evictions++
		}
	}
	bp.pages[id] = bp.lru.PushFront(id)
}

// AccessRange touches the pages covering value rows [lo,hi) of obj.
func (bp *BufferPool) AccessRange(obj uint32, lo, hi int) {
	if hi <= lo {
		return
	}
	first := uint32(lo / ValuesPerPage)
	last := uint32((hi - 1) / ValuesPerPage)
	for p := first; p <= last; p++ {
		bp.Access(PageID{Obj: obj, Page: p})
	}
}

// AddSegmentBytes accounts one sealed column's resident segment size
// (compressed) against the pool, alongside the flat size the same rows
// would occupy (logical). Column.Seal calls this once per column.
func (bp *BufferPool) AddSegmentBytes(compressed, logical int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.segBytes += int64(compressed)
	bp.logBytes += int64(logical)
}

// addLazySegments accounts blocks restored from a snapshot in undecoded
// form; each later decode moves one to the decoded tally.
func (bp *BufferPool) addLazySegments(n int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lazySegs += int64(n)
}

// dropLazySegments removes a released column's never-decoded blocks from
// the pending tally.
func (bp *BufferPool) dropLazySegments(n int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lazySegs -= int64(n)
}

// blockDecoded takes ownership of a freshly decoded lazy block: the
// bytes join the pool account and the block enters the eviction LRU.
// The caller follows up with enforceBudget (outside the segment lock).
func (bp *BufferPool) blockDecoded(s *lazySegment, comp, log int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.segBytes += int64(comp)
	bp.logBytes += int64(log)
	bp.resBytes += int64(comp)
	bp.lazySegs--
	bp.decodedSegs++
	bp.stats.Faults++
	s.resBytes = comp
	s.elem = bp.blocks.PushFront(s)
	if bp.dropAll != nil {
		bp.encodedHot += int64(len(s.blob))
	}
}

// blockEvicted settles the account of a block whose decoded form was
// just dropped (the segment lock is held by the caller; pins were zero).
func (bp *BufferPool) blockEvicted(s *lazySegment, log int, cold bool) {
	bp.mu.Lock()
	comp := s.resBytes
	s.resBytes = 0
	if s.elem != nil {
		bp.blocks.Remove(s.elem)
		s.elem = nil
	}
	bp.segBytes -= int64(comp)
	bp.logBytes -= int64(log)
	bp.resBytes -= int64(comp)
	bp.lazySegs++
	bp.decodedSegs--
	bp.stats.Evictions++
	release, blob := bp.releaser, s.blob
	var drop func()
	// On a mapped snapshot the encoded pages faulted back in since the
	// last region drop are tracked too; once they exceed the budget the
	// whole region is released so the mapped working set cannot grow
	// unboundedly during a cold sweep. Skip on ResetCold: benchmarks
	// flush the pool between runs and must not pay a full-region fault
	// storm per repetition.
	if !cold && bp.dropAll != nil && bp.budget > 0 && bp.encodedHot > bp.budget {
		drop = bp.dropAll
		bp.encodedHot = 0
	}
	bp.mu.Unlock()
	if release != nil {
		release(blob)
	}
	if drop != nil {
		drop()
	}
}

// releaseEncoded hands encoded bytes that need not stay hot (validated
// payloads at open time) to the mapped-region releaser, if any.
func (bp *BufferPool) releaseEncoded(b []byte) {
	bp.mu.Lock()
	release := bp.releaser
	bp.mu.Unlock()
	if release != nil {
		release(b)
	}
}

// touchBlock refreshes a decoded block's LRU position.
func (bp *BufferPool) touchBlock(s *lazySegment) {
	bp.mu.Lock()
	if s.elem != nil {
		bp.blocks.MoveToFront(s.elem)
	}
	bp.mu.Unlock()
}

// forgetBlock removes a released column's decoded block from the pool
// without counting an eviction; Release already settled the byte
// account wholesale.
func (bp *BufferPool) forgetBlock(s *lazySegment) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if s.elem != nil {
		bp.blocks.Remove(s.elem)
		s.elem = nil
	}
	bp.resBytes -= int64(s.resBytes)
	s.resBytes = 0
}

// enforceBudget evicts least-recently-used unpinned decoded blocks until
// the resident decoded bytes fit the budget (or only pinned blocks
// remain). Victims are dropped outside the pool lock: the segment lock
// ordering is segment → pool, never the reverse.
func (bp *BufferPool) enforceBudget() {
	for {
		bp.mu.Lock()
		if bp.budget <= 0 || bp.resBytes <= bp.budget {
			bp.mu.Unlock()
			return
		}
		var victim *lazySegment
		for el := bp.blocks.Back(); el != nil; el = el.Prev() {
			s := el.Value.(*lazySegment)
			if s.pins.Load() == 0 {
				victim = s
				break
			}
		}
		bp.mu.Unlock()
		if victim == nil {
			return // everything resident is pinned; over-budget transiently
		}
		if !victim.evict(false) {
			// lost a race (pinned or already evicted); try again — the
			// LRU walk will pick someone else or give up
			bp.mu.Lock()
			if victim.elem != nil && victim.pins.Load() != 0 {
				// move the pinned victim off the tail so the next walk
				// does not spin on it
				bp.blocks.MoveToFront(victim.elem)
			}
			bp.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of the counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := bp.stats
	s.Resident = len(bp.pages)
	s.BudgetBytes = bp.budget
	s.ResidentBytes = bp.resBytes
	s.SegmentBytes = bp.segBytes
	s.LogicalBytes = bp.logBytes
	if bp.segBytes > 0 {
		s.CompressionRatio = float64(bp.logBytes) / float64(bp.segBytes)
	}
	s.SegmentsLazy = bp.lazySegs
	s.SegmentsDecoded = bp.decodedSegs
	return s
}

// ResetCold evicts every page and every unpinned decoded block, as if
// the server had restarted with a cold cache: the next scan re-decodes
// from the snapshot bytes. Counters keep accumulating; pair with
// ResetStats to take isolated measurements.
func (bp *BufferPool) ResetCold() {
	bp.mu.Lock()
	bp.lru.Init()
	bp.pages = make(map[PageID]*list.Element)
	victims := make([]*lazySegment, 0, bp.blocks.Len())
	for el := bp.blocks.Front(); el != nil; el = el.Next() {
		victims = append(victims, el.Value.(*lazySegment))
	}
	bp.mu.Unlock()
	for _, s := range victims {
		s.evict(true)
	}
}

// ResetStats zeroes the counters without evicting pages.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	budget := bp.stats.BudgetBytes
	bp.stats = PoolStats{BudgetBytes: budget}
}
