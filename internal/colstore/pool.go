// Package colstore is the columnar storage substrate: typed columns with
// NULL support, per-block zone maps (the Netezza-style min/max index the
// paper adds to push selections across correlated foreign keys), and a
// simulated buffer pool.
//
// The buffer pool replaces the paper's physical cold/hot runs: CI
// machines cannot reproduce disk behaviour, so every page access is
// routed through the pool, a miss charges a deterministic virtual fetch
// cost, and "cold" simply means the pool was flushed. Table I's
// cold-vs-hot and clustered-vs-parse-order contrasts come out of page
// counts, which the clustered layout genuinely reduces.
package colstore

import (
	"container/list"
	"sync"
	"time"
)

// ValuesPerPage is the number of 8-byte values on one 8 KiB page. Zone
// map blocks are aligned to pages so a skipped block is a page never
// fetched.
const ValuesPerPage = 1024

// DefaultFetchCost is the simulated cost of one page miss. It models a
// disk read (seek amortized over sequential runs is deliberately ignored:
// the paper's point is locality, i.e. number of pages touched).
const DefaultFetchCost = 100 * time.Microsecond

// PageID identifies one page of one registered object.
type PageID struct {
	Obj  uint32
	Page uint32
}

// PoolStats is a snapshot of buffer pool counters.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Resident  int
	// SimIO is the accumulated virtual I/O time (Misses × FetchCost).
	SimIO time.Duration
	// SegmentBytes is the resident size of all sealed column segments
	// accounted against this pool; LogicalBytes is what the same data
	// would occupy as flat 8-byte OID vectors.
	SegmentBytes int64
	LogicalBytes int64
	// CompressionRatio is LogicalBytes/SegmentBytes (0 when nothing is
	// sealed): 4.0 means sealed columns resident at a quarter of their
	// flat size.
	CompressionRatio float64
	// SegmentsLazy counts sealed blocks restored from a snapshot whose
	// payload has not been decoded yet; SegmentsDecoded counts blocks
	// faulted in so far. Opening a snapshot must leave SegmentsDecoded
	// (and SegmentBytes) at zero — payloads decode on first touch.
	SegmentsLazy    int64
	SegmentsDecoded int64
}

// BufferPool tracks which pages are resident, with LRU eviction.
// The zero value is not usable; create with NewPool.
type BufferPool struct {
	mu          sync.Mutex
	capacity    int // max resident pages; <=0 means unlimited
	fetchCost   time.Duration
	lru         *list.List // of PageID, front = most recent
	pages       map[PageID]*list.Element
	stats       PoolStats
	segBytes    int64
	logBytes    int64
	lazySegs    int64
	decodedSegs int64
	nextObj     uint32
}

// NewPool returns a pool holding at most capacity pages (<=0: unlimited)
// with the default fetch cost.
func NewPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity:  capacity,
		fetchCost: DefaultFetchCost,
		lru:       list.New(),
		pages:     make(map[PageID]*list.Element),
	}
}

// SetFetchCost overrides the per-miss virtual cost.
func (bp *BufferPool) SetFetchCost(d time.Duration) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.fetchCost = d
}

// NewObject allocates an object id for a column or projection that will
// account its pages against this pool.
func (bp *BufferPool) NewObject() uint32 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.nextObj++
	return bp.nextObj
}

// Access touches one page, faulting it in on a miss.
func (bp *BufferPool) Access(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.pages[id]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(el)
		return
	}
	bp.stats.Misses++
	bp.stats.SimIO += bp.fetchCost
	if bp.capacity > 0 {
		for len(bp.pages) >= bp.capacity {
			back := bp.lru.Back()
			if back == nil {
				break
			}
			delete(bp.pages, back.Value.(PageID))
			bp.lru.Remove(back)
			bp.stats.Evictions++
		}
	}
	bp.pages[id] = bp.lru.PushFront(id)
}

// AccessRange touches the pages covering value rows [lo,hi) of obj.
func (bp *BufferPool) AccessRange(obj uint32, lo, hi int) {
	if hi <= lo {
		return
	}
	first := uint32(lo / ValuesPerPage)
	last := uint32((hi - 1) / ValuesPerPage)
	for p := first; p <= last; p++ {
		bp.Access(PageID{Obj: obj, Page: p})
	}
}

// AddSegmentBytes accounts one sealed column's resident segment size
// (compressed) against the pool, alongside the flat size the same rows
// would occupy (logical). Column.Seal calls this once per column.
func (bp *BufferPool) AddSegmentBytes(compressed, logical int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.segBytes += int64(compressed)
	bp.logBytes += int64(logical)
}

// addLazySegments accounts blocks restored from a snapshot in undecoded
// form; each later decode moves one to the decoded tally.
func (bp *BufferPool) addLazySegments(n int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lazySegs += int64(n)
}

// segmentDecoded records one lazy block faulting in. The byte accounting
// goes through AddSegmentBytes separately.
func (bp *BufferPool) segmentDecoded() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lazySegs--
	bp.decodedSegs++
}

// dropLazySegments removes a released column's never-decoded blocks from
// the pending tally.
func (bp *BufferPool) dropLazySegments(n int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lazySegs -= int64(n)
}

// Stats returns a snapshot of the counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := bp.stats
	s.Resident = len(bp.pages)
	s.SegmentBytes = bp.segBytes
	s.LogicalBytes = bp.logBytes
	if bp.segBytes > 0 {
		s.CompressionRatio = float64(bp.logBytes) / float64(bp.segBytes)
	}
	s.SegmentsLazy = bp.lazySegs
	s.SegmentsDecoded = bp.decodedSegs
	return s
}

// ResetCold evicts every page, as if the server had restarted with a
// cold cache. Counters keep accumulating; pair with ResetStats to take
// isolated measurements.
func (bp *BufferPool) ResetCold() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.pages = make(map[PageID]*list.Element)
}

// ResetStats zeroes the counters without evicting pages.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}
