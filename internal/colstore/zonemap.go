package colstore

import "srdf/internal/dict"

// BlockRows is the zone-map granularity, aligned to buffer pool pages.
const BlockRows = ValuesPerPage

// Zone summarizes one block of a column: min/max of its non-NULL OIDs.
// Because literal OIDs are assigned in value order during reorganization,
// OID min/max bounds are value bounds, and FK columns' min/max bound the
// referenced subject-OID range — which is what lets a date selection on
// ORDERS prune LINEITEM blocks and vice versa (paper §II-D, the
// "Netezza-style Zone-Maps").
type Zone struct {
	Min, Max dict.OID
	HasNull  bool
	AllNull  bool
}

// ZoneMap is the per-block summary of a column.
type ZoneMap struct {
	Zones []Zone
	Rows  int
}

// BuildZoneMap scans vals and produces its zone map. dict.Nil entries are
// NULLs and excluded from min/max.
func BuildZoneMap(vals []dict.OID) *ZoneMap {
	n := len(vals)
	nz := (n + BlockRows - 1) / BlockRows
	zm := &ZoneMap{Zones: make([]Zone, nz), Rows: n}
	for b := 0; b < nz; b++ {
		lo := b * BlockRows
		hi := lo + BlockRows
		if hi > n {
			hi = n
		}
		z := Zone{AllNull: true}
		for i := lo; i < hi; i++ {
			v := vals[i]
			if v == dict.Nil {
				z.HasNull = true
				continue
			}
			if z.AllNull {
				z.Min, z.Max = v, v
				z.AllNull = false
				continue
			}
			if v < z.Min {
				z.Min = v
			}
			if v > z.Max {
				z.Max = v
			}
		}
		zm.Zones[b] = z
	}
	return zm
}

// NumBlocks returns the number of zones.
func (zm *ZoneMap) NumBlocks() int { return len(zm.Zones) }

// BlockRange returns the row range [lo,hi) of block b.
func (zm *ZoneMap) BlockRange(b int) (int, int) {
	lo := b * BlockRows
	hi := lo + BlockRows
	if hi > zm.Rows {
		hi = zm.Rows
	}
	return lo, hi
}

// MayMatch reports whether block b can contain a value in [lo,hi].
func (zm *ZoneMap) MayMatch(b int, lo, hi dict.OID) bool {
	z := zm.Zones[b]
	if z.AllNull {
		return false
	}
	return z.Max >= lo && z.Min <= hi
}

// SelectBlocks returns the indexes of blocks that may contain a value in
// [lo,hi]. The complement is I/O the executor never performs.
func (zm *ZoneMap) SelectBlocks(lo, hi dict.OID) []int {
	var out []int
	for b := range zm.Zones {
		if zm.MayMatch(b, lo, hi) {
			out = append(out, b)
		}
	}
	return out
}

// Bounds returns the global min/max over all non-NULL values, with ok
// false when the column is entirely NULL.
func (zm *ZoneMap) Bounds() (min, max dict.OID, ok bool) {
	for _, z := range zm.Zones {
		if z.AllNull {
			continue
		}
		if !ok {
			min, max, ok = z.Min, z.Max, true
			continue
		}
		if z.Min < min {
			min = z.Min
		}
		if z.Max > max {
			max = z.Max
		}
	}
	return min, max, ok
}

// Selectivity estimates the fraction of blocks surviving a [lo,hi]
// restriction; the planner's zone-map-aware cost model uses it.
func (zm *ZoneMap) Selectivity(lo, hi dict.OID) float64 {
	if len(zm.Zones) == 0 {
		return 0
	}
	match := 0
	for b := range zm.Zones {
		if zm.MayMatch(b, lo, hi) {
			match++
		}
	}
	return float64(match) / float64(len(zm.Zones))
}
