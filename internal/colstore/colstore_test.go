package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"srdf/internal/dict"
)

func TestPoolMissThenHit(t *testing.T) {
	bp := NewPool(0)
	id := PageID{Obj: 1, Page: 0}
	bp.Access(id)
	bp.Access(id)
	s := bp.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss 1 hit", s)
	}
	if s.SimIO != DefaultFetchCost {
		t.Errorf("SimIO = %v, want %v", s.SimIO, DefaultFetchCost)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	bp := NewPool(2)
	a, b, c := PageID{1, 0}, PageID{1, 1}, PageID{1, 2}
	bp.Access(a)
	bp.Access(b)
	bp.Access(a) // a is now MRU
	bp.Access(c) // evicts b
	bp.Access(b) // miss again
	s := bp.Stats()
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4 (a,b,c,b)", s.Misses)
	}
	if s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
	if s.Resident != 2 {
		t.Errorf("resident = %d, want 2", s.Resident)
	}
}

func TestPoolResetCold(t *testing.T) {
	bp := NewPool(0)
	bp.Access(PageID{1, 0})
	bp.ResetCold()
	bp.Access(PageID{1, 0})
	if s := bp.Stats(); s.Misses != 2 {
		t.Errorf("misses after cold reset = %d, want 2", s.Misses)
	}
	bp.ResetStats()
	if s := bp.Stats(); s.Misses != 0 || s.SimIO != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestAccessRangePages(t *testing.T) {
	bp := NewPool(0)
	obj := bp.NewObject()
	bp.AccessRange(obj, 0, ValuesPerPage*3+1) // pages 0,1,2,3
	if s := bp.Stats(); s.Misses != 4 {
		t.Errorf("misses = %d, want 4", s.Misses)
	}
	bp.AccessRange(obj, 5, 10) // within page 0, already resident
	if s := bp.Stats(); s.Misses != 4 {
		t.Errorf("misses grew to %d on warm access", s.Misses)
	}
	bp.AccessRange(obj, 10, 10) // empty range
	if s := bp.Stats(); s.Hits+s.Misses != 5 {
		t.Errorf("empty range should not touch pages")
	}
}

func TestSetFetchCost(t *testing.T) {
	bp := NewPool(0)
	bp.SetFetchCost(time.Millisecond)
	bp.Access(PageID{9, 9})
	if s := bp.Stats(); s.SimIO != time.Millisecond {
		t.Errorf("SimIO = %v", s.SimIO)
	}
}

func TestColumnNullAccounting(t *testing.T) {
	c := NewColumn("x", 4, nil)
	if c.NullCount() != 4 {
		t.Fatalf("fresh column nulls = %d", c.NullCount())
	}
	c.Set(0, dict.LiteralOID(5))
	c.Set(1, dict.LiteralOID(6))
	if c.NullCount() != 2 {
		t.Errorf("nulls = %d, want 2", c.NullCount())
	}
	c.Set(0, dict.Nil)
	if c.NullCount() != 3 || !c.IsNull(0) {
		t.Errorf("nulls = %d after re-null", c.NullCount())
	}
	c.Set(1, dict.LiteralOID(7)) // overwrite non-null with non-null
	if c.NullCount() != 3 {
		t.Errorf("nulls changed on non-null overwrite: %d", c.NullCount())
	}
}

func TestColumnTouchAccountsPages(t *testing.T) {
	bp := NewPool(0)
	c := NewColumn("x", ValuesPerPage*2, bp)
	c.Touch(0, c.Len())
	if s := bp.Stats(); s.Misses != 2 {
		t.Errorf("misses = %d, want 2", s.Misses)
	}
	_ = c.Get(0)
	if s := bp.Stats(); s.Misses != 2 || s.Hits != 1 {
		t.Errorf("Get should hit: %+v", bp.Stats())
	}
}

func TestDistinctObjectsDoNotCollide(t *testing.T) {
	bp := NewPool(0)
	c1 := NewColumn("a", 10, bp)
	c2 := NewColumn("b", 10, bp)
	c1.Touch(0, 10)
	c2.Touch(0, 10)
	if s := bp.Stats(); s.Misses != 2 {
		t.Errorf("two columns sharing pages: %+v", s)
	}
}

func lit(p uint64) dict.OID { return dict.LiteralOID(p) }

func TestZoneMapBasics(t *testing.T) {
	vals := make([]dict.OID, BlockRows*2+10)
	for i := range vals {
		vals[i] = lit(uint64(i + 1))
	}
	zm := BuildZoneMap(vals)
	if zm.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", zm.NumBlocks())
	}
	z0 := zm.Zones[0]
	if z0.Min != lit(1) || z0.Max != lit(BlockRows) {
		t.Errorf("block0 bounds: %v..%v", z0.Min, z0.Max)
	}
	lo, hi := zm.BlockRange(2)
	if lo != BlockRows*2 || hi != len(vals) {
		t.Errorf("BlockRange(2) = %d,%d", lo, hi)
	}
	sel := zm.SelectBlocks(lit(5), lit(10))
	if len(sel) != 1 || sel[0] != 0 {
		t.Errorf("SelectBlocks = %v, want [0]", sel)
	}
	if got := zm.SelectBlocks(lit(uint64(len(vals)+100)), lit(uint64(len(vals)+200))); got != nil {
		t.Errorf("out-of-range selection = %v, want nil", got)
	}
}

func TestZoneMapNulls(t *testing.T) {
	vals := make([]dict.OID, BlockRows*2)
	for i := 0; i < BlockRows; i++ {
		vals[i] = dict.Nil // block 0 all null
	}
	vals[BlockRows] = lit(7)
	for i := BlockRows + 1; i < len(vals); i++ {
		vals[i] = dict.Nil
	}
	zm := BuildZoneMap(vals)
	if !zm.Zones[0].AllNull {
		t.Error("block 0 should be AllNull")
	}
	if zm.Zones[1].AllNull || !zm.Zones[1].HasNull {
		t.Error("block 1 flags wrong")
	}
	if zm.MayMatch(0, lit(0), lit(^uint64(0)>>1)) {
		t.Error("AllNull block may never match")
	}
	min, max, ok := zm.Bounds()
	if !ok || min != lit(7) || max != lit(7) {
		t.Errorf("Bounds = %v %v %v", min, max, ok)
	}
}

func TestZoneMapEmpty(t *testing.T) {
	zm := BuildZoneMap(nil)
	if zm.NumBlocks() != 0 {
		t.Errorf("empty zone map has %d blocks", zm.NumBlocks())
	}
	if _, _, ok := zm.Bounds(); ok {
		t.Error("empty Bounds ok=true")
	}
	if zm.Selectivity(lit(1), lit(2)) != 0 {
		t.Error("empty selectivity != 0")
	}
}

func TestZoneMapContainmentQuick(t *testing.T) {
	// Property: a value present in the column is always inside its
	// block's [Min,Max], so SelectBlocks never prunes a matching block.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3*BlockRows)
		vals := make([]dict.OID, n)
		for i := range vals {
			if rng.Intn(10) == 0 {
				vals[i] = dict.Nil
			} else {
				vals[i] = lit(uint64(1 + rng.Intn(10000)))
			}
		}
		zm := BuildZoneMap(vals)
		for trial := 0; trial < 20; trial++ {
			lo := lit(uint64(1 + rng.Intn(10000)))
			hi := lo + dict.OID(rng.Intn(2000))
			selected := map[int]bool{}
			for _, b := range zm.SelectBlocks(lo, hi) {
				selected[b] = true
			}
			for i, v := range vals {
				if v == dict.Nil || v < lo || v > hi {
					continue
				}
				if !selected[i/BlockRows] {
					return false // pruned a block containing a match
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestZoneMapSelectivity(t *testing.T) {
	vals := make([]dict.OID, BlockRows*4)
	for i := range vals {
		vals[i] = lit(uint64(i + 1)) // strictly increasing: perfect clustering
	}
	zm := BuildZoneMap(vals)
	// a range covering one block's worth of values should select ~1 block
	s := zm.Selectivity(lit(1), lit(BlockRows/2))
	if s != 0.25 {
		t.Errorf("selectivity = %v, want 0.25", s)
	}
}

func TestTrackedSlice(t *testing.T) {
	bp := NewPool(0)
	vals := make([]dict.OID, ValuesPerPage+1)
	ts := Track(vals, bp)
	ts.Touch(0, len(vals))
	if s := bp.Stats(); s.Misses != 2 {
		t.Errorf("tracked slice misses = %d, want 2", s.Misses)
	}
	// nil pool must be safe
	Track(vals, nil).Touch(0, len(vals))
}

func TestColumnZonesCacheInvalidation(t *testing.T) {
	c := NewColumn("x", BlockRows, nil)
	c.Set(0, lit(10))
	z1 := c.Zones()
	if min, _, ok := z1.Bounds(); !ok || min != lit(10) {
		t.Fatalf("bounds before update wrong")
	}
	c.Set(1, lit(5))
	z2 := c.Zones()
	if min, _, ok := z2.Bounds(); !ok || min != lit(5) {
		t.Errorf("zone map not rebuilt after Set: min=%v ok=%v", min, ok)
	}
}
