package colstore

import (
	"srdf/internal/dict"
)

// Column is a fixed-length vector of OIDs with NULLs, the physical
// representation of one property of one characteristic set after subject
// clustering: row i holds the property value of the CS's i-th subject
// (paper §II-C — "for a whole stretch of subjects we get aligned
// stretches of Objects"). dict.Nil encodes SQL NULL.
type Column struct {
	Name string
	Vals []dict.OID

	nullCount int
	zm        *ZoneMap

	pool *BufferPool
	obj  uint32
}

// NewColumn allocates an n-row column of NULLs registered with pool
// (pool may be nil for untracked columns).
func NewColumn(name string, n int, pool *BufferPool) *Column {
	c := &Column{Name: name, Vals: make([]dict.OID, n), nullCount: n, pool: pool}
	if pool != nil {
		c.obj = pool.NewObject()
	}
	return c
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.Vals) }

// Set assigns row i.
func (c *Column) Set(i int, v dict.OID) {
	old := c.Vals[i]
	if old == dict.Nil && v != dict.Nil {
		c.nullCount--
	} else if old != dict.Nil && v == dict.Nil {
		c.nullCount++
	}
	c.Vals[i] = v
	c.zm = nil
}

// Get returns row i, accounting the page touch.
func (c *Column) Get(i int) dict.OID {
	c.Touch(i, i+1)
	return c.Vals[i]
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.Vals[i] == dict.Nil }

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int { return c.nullCount }

// Touch accounts a read of rows [lo,hi) against the buffer pool without
// copying data. Operators call it once per scanned block.
func (c *Column) Touch(lo, hi int) {
	if c.pool != nil {
		c.pool.AccessRange(c.obj, lo, hi)
	}
}

// Zones returns the column's zone map, building it on first use.
func (c *Column) Zones() *ZoneMap {
	if c.zm == nil {
		c.zm = BuildZoneMap(c.Vals)
	}
	return c.zm
}

// Pool returns the buffer pool the column accounts against (may be nil).
func (c *Column) Pool() *BufferPool { return c.pool }

// TrackedSlice registers an existing OID slice (such as one component of
// a sorted projection) with a pool, so index scans over it can account
// page touches too. It does not copy the data.
type TrackedSlice struct {
	Vals []dict.OID
	pool *BufferPool
	obj  uint32
}

// Track registers vals against pool.
func Track(vals []dict.OID, pool *BufferPool) *TrackedSlice {
	ts := &TrackedSlice{Vals: vals, pool: pool}
	if pool != nil {
		ts.obj = pool.NewObject()
	}
	return ts
}

// Touch accounts a read of rows [lo,hi).
func (ts *TrackedSlice) Touch(lo, hi int) {
	if ts.pool != nil {
		ts.pool.AccessRange(ts.obj, lo, hi)
	}
}
