package colstore

import (
	"sort"
	"sync"

	"srdf/internal/dict"
)

// Column is a fixed-length vector of OIDs with NULLs, the physical
// representation of one property of one characteristic set after subject
// clustering: row i holds the property value of the CS's i-th subject
// (paper §II-C — "for a whole stretch of subjects we get aligned
// stretches of Objects"). dict.Nil encodes SQL NULL.
//
// A column has two lives. During build it is a mutable flat vector
// (Vals) filled with Set. Seal freezes it into per-block compressed
// segments (see segment.go): Vals is dropped, reads go through the
// segment layer, and the scan-side predicate kernels (SelectEqBlock,
// SelectRangeBlock, SelectNotNilBlock) evaluate on the compressed form.
// Every accessor works on both representations, so untracked or
// never-sealed columns (tests, scratch data) behave exactly as before.
type Column struct {
	Name string
	Vals []dict.OID

	segs []Segment // non-nil once sealed; one per BlockRows block
	n    int       // row count after sealing (Vals is gone)

	nullCount int
	zm        *ZoneMap

	pool *BufferPool
	obj  uint32

	// accMu guards the pool account. Eager Seal accounts the whole
	// column at once; snapshot-restored columns account block by block
	// as lazy segments fault in, so Release must subtract exactly what
	// was added — these counters, not the theoretical total. released
	// marks the account closed: blocks faulting in afterwards (in-flight
	// snapshot readers racing a Compact) decode but no longer account,
	// so neither the pool's resident bytes nor its lazy/decoded tallies
	// drift. lazyLeft counts this column's not-yet-decoded lazy blocks;
	// Release hands the remainder back to the pool's SegmentsLazy.
	accMu    sync.Mutex
	accComp  int64
	accLog   int64
	lazyLeft int
	released bool
}

// accountSegment adds one decoded block (or, for Seal, the whole
// column) to the pool account, unless the account was already closed by
// Release. It reports whether the bytes were accepted (and must
// therefore reach the pool). lazy marks a lazy-block fault, which also
// consumes one pending-decode slot.
func (c *Column) accountSegment(comp, log int, lazy bool) bool {
	c.accMu.Lock()
	defer c.accMu.Unlock()
	if c.released {
		return false
	}
	c.accComp += int64(comp)
	c.accLog += int64(log)
	if lazy {
		c.lazyLeft--
	}
	return true
}

// unaccountSegment reverses accountSegment for one evicted lazy block:
// the block reverts to undecoded, so its decode slot reopens. Reports
// whether the account was still open (a released column already settled
// everything wholesale).
func (c *Column) unaccountSegment(comp, log int) bool {
	c.accMu.Lock()
	defer c.accMu.Unlock()
	if c.released {
		return false
	}
	c.accComp -= int64(comp)
	c.accLog -= int64(log)
	c.lazyLeft++
	return true
}

// PinBlock keeps block b's decoded form resident until UnpinBlock: the
// pool's eviction skips pinned blocks, so zero-copy views handed out by
// a scan stay backed. No-op for unsealed columns and eager segments.
func (c *Column) PinBlock(b int) {
	if c.segs == nil {
		return
	}
	if lz, ok := c.segs[b].(*lazySegment); ok {
		lz.pin()
	}
}

// UnpinBlock releases a PinBlock pin.
func (c *Column) UnpinBlock(b int) {
	if c.segs == nil {
		return
	}
	if lz, ok := c.segs[b].(*lazySegment); ok {
		lz.unpin()
	}
}

// NewColumn allocates an n-row column of NULLs registered with pool
// (pool may be nil for untracked columns).
func NewColumn(name string, n int, pool *BufferPool) *Column {
	c := &Column{Name: name, Vals: make([]dict.OID, n), nullCount: n, pool: pool}
	if pool != nil {
		c.obj = pool.NewObject()
	}
	return c
}

// Len returns the number of rows.
func (c *Column) Len() int {
	if c.segs != nil {
		return c.n
	}
	return len(c.Vals)
}

// Sealed reports whether the column has been frozen into compressed
// segments.
func (c *Column) Sealed() bool { return c.segs != nil }

// Seal freezes the column into per-block compressed segments, builds its
// zone map from the per-segment summaries, accounts the compressed size
// against the buffer pool, and releases the flat vector. Set panics
// after Seal; sealing an already-sealed column is a no-op.
func (c *Column) Seal() {
	if c.segs != nil {
		return
	}
	n := len(c.Vals)
	nb := (n + BlockRows - 1) / BlockRows
	c.segs = make([]Segment, nb)
	zm := &ZoneMap{Zones: make([]Zone, nb), Rows: n}
	compressed := 0
	for b := 0; b < nb; b++ {
		lo := b * BlockRows
		hi := lo + BlockRows
		if hi > n {
			hi = n
		}
		seg := EncodeBlock(c.Vals[lo:hi])
		c.segs[b] = seg
		zm.Zones[b] = seg.Zone()
		compressed += seg.Bytes()
	}
	c.n = n
	c.zm = zm
	c.Vals = nil
	if c.accountSegment(compressed, 8*n, false) && c.pool != nil {
		c.pool.AddSegmentBytes(compressed, 8*n)
	}
}

// Release un-accounts a sealed column's resident segment size from its
// pool — the bookkeeping counterpart of Seal, used when a compaction
// replaces the column with a freshly sealed successor. The data itself
// stays readable (snapshots may still scan it).
func (c *Column) Release() {
	if c.segs == nil {
		return
	}
	c.accMu.Lock()
	comp, log, left := c.accComp, c.accLog, c.lazyLeft
	c.accComp, c.accLog, c.lazyLeft = 0, 0, 0
	c.released = true
	c.accMu.Unlock()
	if c.pool != nil {
		c.pool.AddSegmentBytes(int(-comp), int(-log))
		// never-decoded blocks of a released column are no longer
		// pending anything
		c.pool.dropLazySegments(left)
		// decoded blocks leave the eviction LRU without counting as
		// evictions; the byte subtraction above already covered them
		for _, seg := range c.segs {
			if lz, ok := seg.(*lazySegment); ok {
				c.pool.forgetBlock(lz)
			}
		}
	}
}

// seg returns the segment holding row i and i's block-relative index.
func (c *Column) seg(i int) (Segment, int) {
	return c.segs[i/BlockRows], i % BlockRows
}

// peek returns row i without accounting a page touch.
func (c *Column) peek(i int) dict.OID {
	if c.segs != nil {
		s, k := c.seg(i)
		return s.Get(k)
	}
	return c.Vals[i]
}

// Set assigns row i. Only valid before Seal.
func (c *Column) Set(i int, v dict.OID) {
	if c.segs != nil {
		panic("colstore: Set on sealed column " + c.Name)
	}
	old := c.Vals[i]
	if old == dict.Nil && v != dict.Nil {
		c.nullCount--
	} else if old != dict.Nil && v == dict.Nil {
		c.nullCount++
	}
	c.Vals[i] = v
	c.zm = nil
}

// Get returns row i, accounting the page touch.
func (c *Column) Get(i int) dict.OID {
	c.Touch(i, i+1)
	return c.peek(i)
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.peek(i) == dict.Nil }

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int { return c.nullCount }

// Touch accounts a read of rows [lo,hi) against the buffer pool without
// copying data. Operators call it once per scanned block.
func (c *Column) Touch(lo, hi int) {
	if c.pool != nil {
		c.pool.AccessRange(c.obj, lo, hi)
	}
}

// Zones returns the column's zone map, building it on first use. Sealed
// columns carry the zone map assembled from segment summaries at Seal
// time, so this never races even under concurrent scans.
func (c *Column) Zones() *ZoneMap {
	if c.zm == nil {
		c.zm = BuildZoneMap(c.Vals)
	}
	return c.zm
}

// Pool returns the buffer pool the column accounts against (may be nil).
func (c *Column) Pool() *BufferPool { return c.pool }

// NumBlocks returns the number of BlockRows-sized blocks.
func (c *Column) NumBlocks() int {
	return (c.Len() + BlockRows - 1) / BlockRows
}

// BlockEncoding returns the encoding of block b (EncPlain for unsealed
// columns, which are raw vectors).
func (c *Column) BlockEncoding(b int) Encoding {
	if c.segs == nil {
		return EncPlain
	}
	return c.segs[b].Encoding()
}

// Encodings tallies the column's segments per encoding.
func (c *Column) Encodings() EncodingCounts {
	var ec EncodingCounts
	if c.segs == nil {
		ec[EncPlain] = c.NumBlocks()
		return ec
	}
	for _, s := range c.segs {
		ec[s.Encoding()]++
	}
	return ec
}

// CompressedBytes returns the resident size of the sealed representation
// (or the flat vector size when unsealed).
func (c *Column) CompressedBytes() int {
	if c.segs == nil {
		return 8 * len(c.Vals)
	}
	n := 0
	for _, s := range c.segs {
		n += s.Bytes()
	}
	return n
}

// BlockValues returns the decoded values of block b, indexed
// block-relatively. For plain blocks (sealed or not) the returned slice
// aliases column storage — callers must treat it as read-only; other
// encodings decode into buf. The caller is responsible for Touch.
func (c *Column) BlockValues(b int, buf []dict.OID) []dict.OID {
	lo := b * BlockRows
	if c.segs == nil {
		hi := lo + BlockRows
		if hi > len(c.Vals) {
			hi = len(c.Vals)
		}
		return c.Vals[lo:hi]
	}
	seg := c.segs[b]
	if p, ok := asPlain(seg); ok {
		return p.view()
	}
	return seg.Decode(buf[:0])
}

// GatherBlock fills buf (a full-block scratch, indexed block-relatively)
// with the values of block b at the selected positions only — the
// sparse-selection alternative to a full BlockValues decode. Plain
// blocks return their zero-copy view instead. The caller is responsible
// for Touch.
func (c *Column) GatherBlock(b int, sel []int32, buf []dict.OID) []dict.OID {
	if c.segs == nil {
		lo := b * BlockRows
		hi := lo + BlockRows
		if hi > len(c.Vals) {
			hi = len(c.Vals)
		}
		return c.Vals[lo:hi]
	}
	seg := c.segs[b]
	if p, ok := asPlain(seg); ok {
		return p.view()
	}
	for _, k := range sel {
		buf[k] = seg.Get(int(k))
	}
	return buf
}

// SelectEqBlock appends base+i for the rows i (block-relative, within
// [lo,hi)) of block b equal to v, evaluating on the compressed form.
func (c *Column) SelectEqBlock(b, lo, hi int, v dict.OID, base int32, sel []int32) []int32 {
	if c.segs != nil {
		return c.segs[b].SelectEq(lo, hi, v, base, sel)
	}
	if v == dict.Nil {
		return sel
	}
	off := b * BlockRows
	for i := lo; i < hi; i++ {
		if c.Vals[off+i] == v {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// SelectRangeBlock appends base+i for the rows i of block b whose
// non-NULL value lies in [vlo,vhi].
func (c *Column) SelectRangeBlock(b, lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32 {
	if c.segs != nil {
		return c.segs[b].SelectRange(lo, hi, vlo, vhi, base, sel)
	}
	off := b * BlockRows
	for i := lo; i < hi; i++ {
		if v := c.Vals[off+i]; v != dict.Nil && v >= vlo && v <= vhi {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// SelectNotNilBlock appends base+i for the non-NULL rows i of block b.
func (c *Column) SelectNotNilBlock(b, lo, hi int, base int32, sel []int32) []int32 {
	if c.segs != nil {
		return c.segs[b].SelectNotNil(lo, hi, base, sel)
	}
	off := b * BlockRows
	for i := lo; i < hi; i++ {
		if c.Vals[off+i] != dict.Nil {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// AscendingWindow returns the [lo,hi) row window whose values lie in
// [vlo,vhi], for columns that are physically ascending with NULLs at the
// tail (the sub-ordering layout of sort-key columns). It binary-searches
// without accounting page touches — this is planner work, not a scan.
func (c *Column) AscendingWindow(vlo, vhi dict.OID) (int, int) {
	n := c.Len() - c.NullCount()
	lo := sort.Search(n, func(i int) bool { return c.peek(i) >= vlo })
	hi := sort.Search(n, func(i int) bool { return c.peek(i) > vhi })
	return lo, hi
}

// Values decodes the whole column into a fresh slice, without touching
// the buffer pool — a convenience for dumps, debugging and tests.
func (c *Column) Values() []dict.OID {
	if c.segs == nil {
		return append([]dict.OID(nil), c.Vals...)
	}
	out := make([]dict.OID, 0, c.n)
	for _, s := range c.segs {
		out = s.Decode(out)
	}
	return out
}

// TrackedSlice registers an existing OID slice (such as one component of
// a sorted projection) with a pool, so index scans over it can account
// page touches too. It does not copy the data.
type TrackedSlice struct {
	Vals []dict.OID
	pool *BufferPool
	obj  uint32
}

// Track registers vals against pool.
func Track(vals []dict.OID, pool *BufferPool) *TrackedSlice {
	ts := &TrackedSlice{Vals: vals, pool: pool}
	if pool != nil {
		ts.obj = pool.NewObject()
	}
	return ts
}

// Touch accounts a read of rows [lo,hi).
func (ts *TrackedSlice) Touch(lo, hi int) {
	if ts.pool != nil {
		ts.pool.AccessRange(ts.obj, lo, hi)
	}
}
