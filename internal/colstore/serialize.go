// Segment serialization: the on-disk representation of a sealed column
// is exactly its in-memory compressed form — the RLE / frame-of-reference
// / block-dictionary / plain encodings of segment.go, framed per block.
// A restored column holds lazy segments: the encoded payload stays where
// the snapshot layer put it (a slice into the mmap'd file, or the heap
// buffer of the pread fallback) and is not decoded until a scan first
// touches the block. The decode is accounted against the buffer pool,
// which owns it from then on: under byte-budget pressure the pool evicts
// the decoded form and the block reverts to its encoded bytes, to be
// re-decoded on the next touch — so opening a large store does no
// per-value work and a store larger than the budget stays queryable.
package colstore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"srdf/internal/dict"
)

// AppendOID appends o in the snapshot varint form: the literal tag bit is
// rotated down so literal OIDs stay as short as resource OIDs.
func AppendOID(dst []byte, o dict.OID) []byte {
	return binary.AppendUvarint(dst, bits.RotateLeft64(uint64(o), 1))
}

// DecodeOID reads one AppendOID-encoded OID, returning the bytes
// consumed (<= 0 on malformed input, like binary.Uvarint).
func DecodeOID(b []byte) (dict.OID, int) {
	u, n := binary.Uvarint(b)
	return dict.OID(bits.RotateLeft64(u, 63)), n
}

// BlockMeta describes one sealed block of a serialized column: everything
// a reader needs for zone maps and planning without touching the payload.
type BlockMeta struct {
	Enc  Encoding
	Rows int
	Zone Zone
	Len  int // encoded payload length in bytes
}

// MarshalBlocks appends the sealed column's per-block payloads to dst and
// returns the matching metadata. Lazy blocks that were never decoded are
// copied verbatim, so re-saving a snapshot-opened store neither decodes
// nor re-encodes anything and is byte-stable.
func (c *Column) MarshalBlocks(dst []byte) ([]byte, []BlockMeta, error) {
	if c.segs == nil {
		return nil, nil, fmt.Errorf("colstore: column %s is not sealed", c.Name)
	}
	metas := make([]BlockMeta, len(c.segs))
	for i, seg := range c.segs {
		start := len(dst)
		if lz, ok := seg.(*lazySegment); ok {
			dst = append(dst, lz.blob...)
			metas[i] = BlockMeta{Enc: lz.enc, Rows: lz.rows, Zone: lz.zone, Len: len(dst) - start}
			continue
		}
		var err error
		dst, err = appendSegmentPayload(dst, seg)
		if err != nil {
			return nil, nil, fmt.Errorf("colstore: column %s block %d: %w", c.Name, i, err)
		}
		metas[i] = BlockMeta{Enc: seg.Encoding(), Rows: seg.Len(), Zone: seg.Zone(), Len: len(dst) - start}
	}
	return dst, metas, nil
}

// RestoreSealed rebuilds a sealed column from serialized block metadata
// and the concatenated payload bytes (which it slices, not copies).
// Payloads are structurally validated now — lengths, widths, run bounds —
// but decoded only on first touch; the pool tracks the pending blocks via
// SegmentsLazy/SegmentsDecoded.
func RestoreSealed(name string, nullCount int, metas []BlockMeta, blob []byte, pool *BufferPool) (*Column, error) {
	c := &Column{Name: name, nullCount: nullCount, pool: pool}
	if pool != nil {
		c.obj = pool.NewObject()
	}
	c.segs = make([]Segment, len(metas))
	zm := &ZoneMap{Zones: make([]Zone, len(metas))}
	off, n := 0, 0
	for i, m := range metas {
		if m.Rows <= 0 || m.Rows > BlockRows {
			return nil, fmt.Errorf("colstore: column %s block %d: bad row count %d", name, i, m.Rows)
		}
		if i < len(metas)-1 && m.Rows != BlockRows {
			return nil, fmt.Errorf("colstore: column %s block %d: interior block has %d rows", name, i, m.Rows)
		}
		if m.Len < 0 || off+m.Len > len(blob) {
			return nil, fmt.Errorf("colstore: column %s block %d: payload overruns segment data", name, i)
		}
		payload := blob[off : off+m.Len : off+m.Len]
		if err := validateSegmentPayload(m.Enc, m.Rows, payload); err != nil {
			return nil, fmt.Errorf("colstore: column %s block %d: %w", name, i, err)
		}
		c.segs[i] = &lazySegment{blob: payload, enc: m.Enc, rows: m.Rows, zone: m.Zone, col: c}
		zm.Zones[i] = m.Zone
		off += m.Len
		n += m.Rows
	}
	if off != len(blob) {
		return nil, fmt.Errorf("colstore: column %s: %d trailing segment bytes", name, len(blob)-off)
	}
	c.n = n
	zm.Rows = n
	c.zm = zm
	c.lazyLeft = len(metas)
	if pool != nil {
		pool.addLazySegments(len(metas))
		// Validation touched every payload byte; on a mapped snapshot
		// those pages need not stay resident until a scan wants them.
		pool.releaseEncoded(blob)
	}
	return c, nil
}

// lazySegment defers decoding of one snapshot block. The encoded
// payload (blob) references the snapshot layer's buffer — a slice into
// the mmap'd file for mapped opens — so MarshalBlocks can always copy
// it verbatim and an undecoded block costs no heap at all. The decoded
// form is published through an atomic for lock-free reads; the mutex
// serializes the decode/evict transitions, and pins (held by scans at
// block granularity) keep the pool from evicting a block whose views
// are live.
type lazySegment struct {
	blob []byte
	enc  Encoding
	rows int
	zone Zone
	col  *Column

	mu  sync.Mutex              // decode/evict transitions
	seg atomic.Pointer[Segment] // nil while encoded-only
	// pins (>0 blocks eviction) is mutated under mu so evict's check is
	// exact; the atomic lets the pool's LRU walk skim it lock-free.
	pins atomic.Int32

	// pool-lock-guarded eviction bookkeeping (see BufferPool)
	elem     *list.Element
	resBytes int
}

// pin prevents eviction of the decoded form until the matching unpin.
// Pinning does not itself decode; the first kernel touch does.
func (s *lazySegment) pin() {
	s.mu.Lock()
	s.pins.Add(1)
	s.mu.Unlock()
	if s.col.pool != nil && s.seg.Load() != nil {
		s.col.pool.touchBlock(s)
	}
}

func (s *lazySegment) unpin() {
	s.mu.Lock()
	s.pins.Add(-1)
	s.mu.Unlock()
}

// load returns the decoded segment, faulting it in if needed. Callers
// that hold no pin get a snapshot that stays valid (the GC keeps it
// alive) but may be evicted from the pool behind their back; scans pin
// first.
func (s *lazySegment) load() Segment {
	if p := s.seg.Load(); p != nil {
		return *p
	}
	return s.fault()
}

// fault decodes the payload and hands the decoded bytes to the pool.
// Payloads are validated at restore time, so a decode failure here
// means the bytes changed underneath us — an invariant violation, not
// an input error.
func (s *lazySegment) fault() Segment {
	s.mu.Lock()
	if p := s.seg.Load(); p != nil {
		s.mu.Unlock()
		return *p
	}
	seg, err := decodeSegmentPayload(s.enc, s.rows, s.zone, s.blob)
	if err != nil {
		s.mu.Unlock()
		panic(fmt.Sprintf("colstore: segment of %s corrupted after open: %v", s.col.Name, err))
	}
	// A fault counts only while the column's account is open: a block
	// faulting in after Release (an in-flight snapshot reader outliving
	// a Compact) must inflate neither the pool's resident bytes nor its
	// lazy/decoded tallies — Release already settled both for this
	// column.
	accounted := s.col.accountSegment(seg.Bytes(), 8*s.rows, true)
	s.seg.Store(&seg)
	s.mu.Unlock()
	if accounted && s.col.pool != nil {
		s.col.pool.blockDecoded(s, seg.Bytes(), 8*s.rows)
		s.col.pool.enforceBudget()
	}
	return seg
}

// evict drops the decoded form, reverting the block to its encoded
// bytes. It refuses pinned or already-encoded blocks. cold marks a
// ResetCold flush rather than budget pressure.
func (s *lazySegment) evict(cold bool) bool {
	s.mu.Lock()
	if s.pins.Load() != 0 || s.seg.Load() == nil {
		s.mu.Unlock()
		return false
	}
	bytes := (*s.seg.Load()).Bytes()
	s.seg.Store(nil)
	// Reopen the column account for this block: it is lazy again, and
	// the next fault must re-account. A released column settled its
	// account wholesale — a straggler block that registered with the
	// pool after Release just leaves quietly.
	if accounted := s.col.unaccountSegment(bytes, 8*s.rows); s.col.pool != nil {
		if accounted {
			s.col.pool.blockEvicted(s, 8*s.rows, cold)
		} else {
			s.col.pool.forgetBlock(s)
		}
	}
	s.mu.Unlock()
	return true
}

func (s *lazySegment) Len() int           { return s.rows }
func (s *lazySegment) Encoding() Encoding { return s.enc }
func (s *lazySegment) Zone() Zone         { return s.zone }

// Bytes reports the resident size: the undecoded payload while the
// block is encoded-only, the decoded segment while faulted in.
func (s *lazySegment) Bytes() int {
	if p := s.seg.Load(); p != nil {
		return (*p).Bytes()
	}
	return len(s.blob)
}

func (s *lazySegment) Get(i int) dict.OID { return s.load().Get(i) }

func (s *lazySegment) Decode(dst []dict.OID) []dict.OID { return s.load().Decode(dst) }

func (s *lazySegment) SelectEq(lo, hi int, v dict.OID, base int32, sel []int32) []int32 {
	return s.load().SelectEq(lo, hi, v, base, sel)
}

func (s *lazySegment) SelectRange(lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32 {
	return s.load().SelectRange(lo, hi, vlo, vhi, base, sel)
}

func (s *lazySegment) SelectNotNil(lo, hi int, base int32, sel []int32) []int32 {
	return s.load().SelectNotNil(lo, hi, base, sel)
}

// asPlain unwraps a (possibly lazy) segment to its plain form for
// zero-copy block views, faulting lazy blocks in.
func asPlain(seg Segment) (*plainSegment, bool) {
	if lz, ok := seg.(*lazySegment); ok {
		seg = lz.load()
	}
	p, ok := seg.(*plainSegment)
	return p, ok
}

// appendWords writes packed bit words as fixed 8-byte little-endian.
func appendWords(dst []byte, words []uint64) []byte {
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// appendSegmentPayload serializes one decoded segment. The frame (enc,
// rows, zone, length) lives in BlockMeta; the payload is just the body.
func appendSegmentPayload(dst []byte, seg Segment) ([]byte, error) {
	switch s := seg.(type) {
	case *plainSegment:
		for _, v := range s.vals {
			dst = AppendOID(dst, v)
		}
	case *rleSegment:
		dst = binary.AppendUvarint(dst, uint64(len(s.vals)))
		prev := int32(0)
		for i, v := range s.vals {
			dst = AppendOID(dst, v)
			dst = binary.AppendUvarint(dst, uint64(s.ends[i]-prev))
			prev = s.ends[i]
		}
	case *forSegment:
		dst = AppendOID(dst, s.base)
		dst = append(dst, byte(s.width))
		dst = appendWords(dst, s.packed)
	case *dictSegment:
		dst = binary.AppendUvarint(dst, uint64(len(s.dictVals)))
		var prev dict.OID
		for i, v := range s.dictVals {
			if i == 0 {
				dst = AppendOID(dst, v)
			} else {
				// sorted ascending: delta-encode
				dst = binary.AppendUvarint(dst, uint64(v-prev))
			}
			prev = v
		}
		dst = append(dst, byte(s.width))
		dst = appendWords(dst, s.packed)
	default:
		return nil, fmt.Errorf("unknown segment type %T", seg)
	}
	return dst, nil
}

// segReader is a bounds-checked cursor over one payload.
type segReader struct {
	b   []byte
	off int
	bad bool
}

func (r *segReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) oid() dict.OID {
	v, n := DecodeOID(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return dict.Nil
	}
	r.off += n
	return v
}

func (r *segReader) byte() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *segReader) words(n int) []uint64 {
	if n < 0 || r.off+8*n > len(r.b) {
		r.bad = true
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return out
}

func (r *segReader) done() bool { return !r.bad && r.off == len(r.b) }

// decodeSegmentPayload rebuilds one segment; rows and zone come from the
// block metadata. It never panics on malformed input.
func decodeSegmentPayload(enc Encoding, rows int, zone Zone, b []byte) (Segment, error) {
	r := &segReader{b: b}
	switch enc {
	case EncPlain:
		vals := make([]dict.OID, rows)
		for i := range vals {
			vals[i] = r.oid()
		}
		if !r.done() {
			return nil, fmt.Errorf("malformed plain payload")
		}
		return &plainSegment{vals: vals, zone: zone}, nil
	case EncRLE:
		runs := r.uvarint()
		if r.bad || runs == 0 || runs > uint64(rows) {
			return nil, fmt.Errorf("malformed rle payload: %d runs over %d rows", runs, rows)
		}
		s := &rleSegment{
			vals: make([]dict.OID, runs),
			ends: make([]int32, runs),
			zone: zone,
		}
		end := int32(0)
		for i := range s.vals {
			s.vals[i] = r.oid()
			d := r.uvarint()
			if r.bad || d == 0 || uint64(end)+d > uint64(rows) {
				return nil, fmt.Errorf("malformed rle payload: bad run length")
			}
			end += int32(d)
			s.ends[i] = end
		}
		if !r.done() || int(end) != rows {
			return nil, fmt.Errorf("malformed rle payload: runs cover %d of %d rows", end, rows)
		}
		return s, nil
	case EncFOR:
		base := r.oid()
		width := int(r.byte())
		if r.bad || width > 64 {
			return nil, fmt.Errorf("malformed for payload: width %d", width)
		}
		packed := r.words((rows*width + 63) / 64)
		if !r.done() {
			return nil, fmt.Errorf("malformed for payload")
		}
		return &forSegment{base: base, width: width, n: rows, packed: packed, zone: zone}, nil
	case EncDict:
		card := r.uvarint()
		if r.bad || card == 0 || card > uint64(rows) || card > maxDictCard+1 {
			return nil, fmt.Errorf("malformed dict payload: cardinality %d", card)
		}
		dv := make([]dict.OID, card)
		dv[0] = r.oid()
		for i := 1; i < int(card); i++ {
			d := r.uvarint()
			if r.bad || d == 0 {
				return nil, fmt.Errorf("malformed dict payload: values not ascending")
			}
			dv[i] = dv[i-1] + dict.OID(d)
		}
		width := int(r.byte())
		if r.bad || width != bits.Len64(card-1) {
			return nil, fmt.Errorf("malformed dict payload: width %d for cardinality %d", width, card)
		}
		packed := r.words((rows*width + 63) / 64)
		if !r.done() {
			return nil, fmt.Errorf("malformed dict payload")
		}
		// every code must index the dictionary
		for i := 0; i < rows; i++ {
			if unpackBit(packed, width, i) >= card {
				return nil, fmt.Errorf("malformed dict payload: code out of range at row %d", i)
			}
		}
		return &dictSegment{dictVals: dv, width: width, n: rows, packed: packed, zone: zone}, nil
	default:
		return nil, fmt.Errorf("unknown encoding %d", enc)
	}
}

// validateSegmentPayload structurally checks a payload — frame lengths,
// bit widths, run and code bounds — without materializing any values, so
// lazy faults after a validated open cannot fail. This is the cheap half
// of decodeSegmentPayload: no allocation, no per-value reconstruction.
func validateSegmentPayload(enc Encoding, rows int, b []byte) error {
	r := &segReader{b: b}
	switch enc {
	case EncPlain:
		for i := 0; i < rows; i++ {
			r.oid()
		}
		if !r.done() {
			return fmt.Errorf("malformed plain payload")
		}
	case EncRLE:
		runs := r.uvarint()
		if r.bad || runs == 0 || runs > uint64(rows) {
			return fmt.Errorf("malformed rle payload: %d runs over %d rows", runs, rows)
		}
		covered := uint64(0)
		for i := uint64(0); i < runs; i++ {
			r.oid()
			d := r.uvarint()
			if r.bad || d == 0 || covered+d > uint64(rows) {
				return fmt.Errorf("malformed rle payload: bad run length")
			}
			covered += d
		}
		if !r.done() || covered != uint64(rows) {
			return fmt.Errorf("malformed rle payload: runs cover %d of %d rows", covered, rows)
		}
	case EncFOR:
		r.oid()
		width := int(r.byte())
		if r.bad || width > 64 {
			return fmt.Errorf("malformed for payload: width %d", width)
		}
		if r.off+8*((rows*width+63)/64) != len(b) {
			return fmt.Errorf("malformed for payload")
		}
	case EncDict:
		card := r.uvarint()
		if r.bad || card == 0 || card > uint64(rows) || card > maxDictCard+1 {
			return fmt.Errorf("malformed dict payload: cardinality %d", card)
		}
		r.oid()
		for i := uint64(1); i < card; i++ {
			if d := r.uvarint(); r.bad || d == 0 {
				return fmt.Errorf("malformed dict payload: values not ascending")
			}
		}
		width := int(r.byte())
		if r.bad || width != bits.Len64(card-1) {
			return fmt.Errorf("malformed dict payload: width %d for cardinality %d", width, card)
		}
		nWords := (rows*width + 63) / 64
		if r.off+8*nWords != len(b) {
			return fmt.Errorf("malformed dict payload")
		}
		packed := b[r.off:]
		for i := 0; i < rows; i++ {
			if unpackBitBytes(packed, width, i) >= card {
				return fmt.Errorf("malformed dict payload: code out of range at row %d", i)
			}
		}
	default:
		return fmt.Errorf("unknown encoding %d", enc)
	}
	return nil
}

// unpackBitBytes is unpackBit over raw little-endian word bytes, for
// validation before any []uint64 is materialized.
func unpackBitBytes(packed []byte, width, i int) uint64 {
	if width == 0 {
		return 0
	}
	bit := i * width
	w, off := bit>>6, uint(bit&63)
	v := binary.LittleEndian.Uint64(packed[8*w:]) >> off
	if off+uint(width) > 64 {
		v |= binary.LittleEndian.Uint64(packed[8*w+8:]) << (64 - off)
	}
	return v & widthMask(width)
}
