package colstore

import (
	"math/rand"
	"sync"
	"testing"

	"srdf/internal/dict"
)

// buildSealed seals vals into a column registered against pool.
func buildSealed(t *testing.T, name string, vals []dict.OID, pool *BufferPool) *Column {
	t.Helper()
	c := NewColumn(name, len(vals), pool)
	for i, v := range vals {
		if v != dict.Nil {
			c.Set(i, v)
		}
	}
	c.Seal()
	return c
}

// restoreCopy marshals c and restores it lazily against pool.
func restoreCopy(t *testing.T, c *Column, pool *BufferPool) *Column {
	t.Helper()
	blob, metas, err := c.MarshalBlocks(nil)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RestoreSealed(c.Name, c.NullCount(), metas, blob, pool)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// TestSerializeRoundtripAllShapes drives every encoding through
// marshal → restore and compares values, kernels, and metadata against
// the eagerly sealed original.
func TestSerializeRoundtripAllShapes(t *testing.T) {
	for name, gen := range blockShapes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for _, n := range []int{1, 7, BlockRows, BlockRows + 1, 3*BlockRows - 5} {
				vals := gen(rng, n)
				orig := buildSealed(t, "t.c", vals, nil)
				rc := restoreCopy(t, orig, nil)

				if rc.Len() != orig.Len() || rc.NullCount() != orig.NullCount() {
					t.Fatalf("n=%d: len/null mismatch: %d/%d vs %d/%d",
						n, rc.Len(), rc.NullCount(), orig.Len(), orig.NullCount())
				}
				ov, rv := orig.Values(), rc.Values()
				for i := range ov {
					if ov[i] != rv[i] {
						t.Fatalf("n=%d row %d: %v != %v", n, i, rv[i], ov[i])
					}
				}
				for b := 0; b < orig.NumBlocks(); b++ {
					if rc.BlockEncoding(b) != orig.BlockEncoding(b) {
						t.Fatalf("n=%d block %d: encoding %v != %v", n, b, rc.BlockEncoding(b), orig.BlockEncoding(b))
					}
					lo, hi := orig.Zones().BlockRange(b)
					blen := hi - lo
					probe := vals[lo+rng.Intn(blen)]
					var s1, s2 []int32
					s1 = orig.SelectEqBlock(b, 0, blen, probe, int32(lo), s1)
					s2 = rc.SelectEqBlock(b, 0, blen, probe, int32(lo), s2)
					if len(s1) != len(s2) {
						t.Fatalf("n=%d block %d: eq kernel %d vs %d rows", n, b, len(s2), len(s1))
					}
					for i := range s1 {
						if s1[i] != s2[i] {
							t.Fatalf("n=%d block %d: eq kernel diverges at %d", n, b, i)
						}
					}
					s1 = orig.SelectNotNilBlock(b, 0, blen, 0, s1[:0])
					s2 = rc.SelectNotNilBlock(b, 0, blen, 0, s2[:0])
					if len(s1) != len(s2) {
						t.Fatalf("n=%d block %d: notnil kernel %d vs %d rows", n, b, len(s2), len(s1))
					}
				}
				if rz, oz := rc.Zones(), orig.Zones(); len(rz.Zones) != len(oz.Zones) {
					t.Fatalf("zone map size %d != %d", len(rz.Zones), len(oz.Zones))
				} else {
					for i := range oz.Zones {
						if rz.Zones[i] != oz.Zones[i] {
							t.Fatalf("zone %d: %+v != %+v", i, rz.Zones[i], oz.Zones[i])
						}
					}
				}
			}
		})
	}
}

// TestLazyDecodeAccounting asserts the restore→fault lifecycle against
// the pool: restore registers lazy blocks without bytes, the first touch
// of a block decodes it and accounts it, untouched blocks stay encoded.
func TestLazyDecodeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := blockShapes["runs"](rng, 4*BlockRows)
	orig := buildSealed(t, "t.c", vals, nil)

	pool := NewPool(0)
	rc := restoreCopy(t, orig, pool)
	st := pool.Stats()
	if st.SegmentsLazy != 4 || st.SegmentsDecoded != 0 {
		t.Fatalf("after restore: lazy=%d decoded=%d, want 4/0", st.SegmentsLazy, st.SegmentsDecoded)
	}
	if st.SegmentBytes != 0 || st.LogicalBytes != 0 {
		t.Fatalf("after restore: %d segment bytes accounted before any touch", st.SegmentBytes)
	}

	// Touch one row: only that block decodes.
	if got, want := rc.Get(0), orig.Get(0); got != want {
		t.Fatalf("Get(0) = %v, want %v", got, want)
	}
	st = pool.Stats()
	if st.SegmentsLazy != 3 || st.SegmentsDecoded != 1 {
		t.Fatalf("after one touch: lazy=%d decoded=%d, want 3/1", st.SegmentsLazy, st.SegmentsDecoded)
	}
	if st.SegmentBytes <= 0 || st.LogicalBytes != 8*BlockRows {
		t.Fatalf("after one touch: segBytes=%d logBytes=%d", st.SegmentBytes, st.LogicalBytes)
	}

	// Full decode; Release must subtract exactly what was accounted.
	rc.Values()
	st = pool.Stats()
	if st.SegmentsLazy != 0 || st.SegmentsDecoded != 4 {
		t.Fatalf("after full decode: lazy=%d decoded=%d", st.SegmentsLazy, st.SegmentsDecoded)
	}
	rc.Release()
	st = pool.Stats()
	if st.SegmentBytes != 0 || st.LogicalBytes != 0 {
		t.Fatalf("after release: segBytes=%d logBytes=%d, want 0/0", st.SegmentBytes, st.LogicalBytes)
	}
}

// TestFaultAfterReleaseDoesNotAccount: a block faulting in after its
// column was Released (an in-flight snapshot reader outliving a
// Compact) must decode correctly but leave the pool's resident bytes
// untouched — otherwise every compact-under-read cycle inflates stats.
func TestFaultAfterReleaseDoesNotAccount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := blockShapes["runs"](rng, 3*BlockRows)
	orig := buildSealed(t, "t.c", vals, nil)
	pool := NewPool(0)
	rc := restoreCopy(t, orig, pool)

	rc.Get(0) // decode block 0: accounted
	if st := pool.Stats(); st.SegmentBytes <= 0 || st.SegmentsDecoded != 1 || st.SegmentsLazy != 2 {
		t.Fatalf("first fault accounting off: %+v", st)
	}
	rc.Release()
	if st := pool.Stats(); st.SegmentBytes != 0 || st.LogicalBytes != 0 || st.SegmentsLazy != 0 {
		t.Fatalf("release left bytes=%d/%d lazy=%d accounted", st.SegmentBytes, st.LogicalBytes, st.SegmentsLazy)
	}
	// late faults still read correctly but account nothing
	for i := BlockRows; i < 3*BlockRows; i += BlockRows {
		if got := rc.Get(i); got != vals[i] {
			t.Fatalf("row %d after release: %v != %v", i, got, vals[i])
		}
	}
	st := pool.Stats()
	if st.SegmentBytes != 0 || st.LogicalBytes != 0 {
		t.Fatalf("post-release faults accounted %d/%d bytes", st.SegmentBytes, st.LogicalBytes)
	}
	if st.SegmentsDecoded != 1 || st.SegmentsLazy != 0 {
		t.Fatalf("decode counters drifted: decoded=%d lazy=%d", st.SegmentsDecoded, st.SegmentsLazy)
	}
}

// TestConcurrentLazyFault races many readers over a freshly restored
// column: first-touch decodes must be exactly-once and race-free (run
// under -race in CI).
func TestConcurrentLazyFault(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := blockShapes["lowcard"](rng, 6*BlockRows)
	orig := buildSealed(t, "t.c", vals, nil)
	pool := NewPool(0)
	rc := restoreCopy(t, orig, pool)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := r.Intn(len(vals))
				if got := rc.peek(k); got != vals[k] {
					t.Errorf("row %d: %v != %v", k, got, vals[k])
					return
				}
				if i%100 == 0 {
					rc.CompressedBytes() // exercises Bytes on undecoded blocks
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := pool.Stats()
	if st.SegmentsDecoded != 6 || st.SegmentsLazy != 0 {
		t.Fatalf("decoded=%d lazy=%d after concurrent faulting", st.SegmentsDecoded, st.SegmentsLazy)
	}
	if want := orig.CompressedBytes(); rc.CompressedBytes() != want {
		t.Fatalf("compressed bytes %d != %d", rc.CompressedBytes(), want)
	}
}

// TestRestoreRejectsCorruptPayloads flips bytes and truncates payloads;
// RestoreSealed must return an error, never panic, and never accept a
// structurally broken block.
func TestRestoreRejectsCorruptPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, gen := range blockShapes {
		t.Run(name, func(t *testing.T) {
			vals := gen(rng, BlockRows+17)
			orig := buildSealed(t, "t.c", vals, nil)
			blob, metas, err := orig.MarshalBlocks(nil)
			if err != nil {
				t.Fatal(err)
			}
			// Truncations must fail (either at restore or by trailing-byte
			// mismatch).
			for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
				if cut >= len(blob) {
					continue
				}
				if _, err := RestoreSealed("t.c", orig.NullCount(), metas, blob[:cut], nil); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
			// Bad metadata: meta rows beyond BlockRows, oversized interior
			// block, overrunning length.
			bad := append([]BlockMeta(nil), metas...)
			bad[0].Rows = BlockRows + 1
			if _, err := RestoreSealed("t.c", 0, bad, blob, nil); err == nil {
				t.Fatal("oversized block accepted")
			}
			bad = append([]BlockMeta(nil), metas...)
			bad[len(bad)-1].Len += 4
			if _, err := RestoreSealed("t.c", 0, bad, blob, nil); err == nil {
				t.Fatal("overrunning block length accepted")
			}
		})
	}
}

// TestMarshalUndecodedIsVerbatim checks byte stability: marshalling a
// restored (never decoded) column reproduces the original bytes, and
// marshalling after a full decode does too.
func TestMarshalUndecodedIsVerbatim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, gen := range blockShapes {
		vals := gen(rng, 2*BlockRows+100)
		orig := buildSealed(t, "t.c", vals, nil)
		blob, metas, err := orig.MarshalBlocks(nil)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := RestoreSealed("t.c", orig.NullCount(), metas, blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		again, metas2, err := rc.MarshalBlocks(nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(blob) {
			t.Fatalf("%s: undecoded re-marshal differs", name)
		}
		if len(metas2) != len(metas) {
			t.Fatalf("%s: meta count differs", name)
		}
		rc.Values() // decode everything
		again, _, err = rc.MarshalBlocks(nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(blob) {
			t.Fatalf("%s: decoded re-marshal differs", name)
		}
	}
}
