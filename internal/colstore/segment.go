// Compressed columnar segments: each BlockRows-sized block of a sealed
// column is stored under the lightest of four MonetDB/X100-style
// encodings, chosen per block at build time. Predicate kernels evaluate
// equality and range selections directly on the compressed form and emit
// selection vectors, so a scan never decodes (or copies) rows that a
// predicate rejects: RLE answers equality in O(runs), frame-of-reference
// blocks prune via min/max before touching packed words, and block
// dictionaries compare small codes instead of 8-byte OIDs.
package colstore

import (
	"fmt"
	"math/bits"
	"sort"

	"srdf/internal/dict"
)

// Encoding names a segment's physical representation.
type Encoding uint8

const (
	// EncPlain stores the raw OID vector.
	EncPlain Encoding = iota
	// EncRLE stores (value, run-end) pairs; ideal for sorted or
	// low-cardinality clustered columns.
	EncRLE
	// EncFOR stores bit-packed deltas from the block minimum
	// (frame-of-reference); ideal for narrow value ranges without NULLs.
	EncFOR
	// EncDict stores a per-block value dictionary plus bit-packed codes;
	// ideal for low-cardinality blocks that do not run.
	EncDict
)

func (e Encoding) String() string {
	switch e {
	case EncRLE:
		return "rle"
	case EncFOR:
		return "for"
	case EncDict:
		return "dict"
	default:
		return "plain"
	}
}

// Segment is one immutable compressed block of a sealed column. Row
// indexes are block-relative ([0,Len)). The Select* kernels append the
// block-relative indexes (plus base) of matching rows to sel without
// decompressing the block; dict.Nil cells never match any kernel.
type Segment interface {
	// Len returns the row count of the block.
	Len() int
	// Encoding identifies the physical representation.
	Encoding() Encoding
	// Bytes returns the resident size of the compressed form.
	Bytes() int
	// Zone returns the block's min/max/NULL summary.
	Zone() Zone
	// Get returns row i.
	Get(i int) dict.OID
	// Decode appends all rows to dst and returns it.
	Decode(dst []dict.OID) []dict.OID
	// SelectEq appends base+i for rows i in [lo,hi) equal to v.
	SelectEq(lo, hi int, v dict.OID, base int32, sel []int32) []int32
	// SelectRange appends base+i for rows i in [lo,hi) with a non-NULL
	// value in [vlo,vhi].
	SelectRange(lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32
	// SelectNotNil appends base+i for rows i in [lo,hi) that are not NULL.
	SelectNotNil(lo, hi int, base int32, sel []int32) []int32
}

// maxDictCard caps the per-block dictionary size; beyond it the chooser
// falls back to FOR or plain.
const maxDictCard = 256

// EncodeBlock analyzes one block and returns it under the smallest
// feasible encoding (ties prefer RLE, then FOR, then dict: cheaper
// kernels win at equal size).
func EncodeBlock(vals []dict.OID) Segment {
	n := len(vals)
	zone := Zone{AllNull: true}
	runs := 0
	distinct := make(map[dict.OID]struct{}, 17)
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			runs++
		}
		if len(distinct) <= maxDictCard {
			distinct[v] = struct{}{}
		}
		if v == dict.Nil {
			zone.HasNull = true
			continue
		}
		if zone.AllNull {
			zone.Min, zone.Max, zone.AllNull = v, v, false
			continue
		}
		if v < zone.Min {
			zone.Min = v
		}
		if v > zone.Max {
			zone.Max = v
		}
	}

	plainBytes := 8 * n
	best := Encoding(EncPlain)
	// A compressed form must save at least 1/8 of the plain size to be
	// worth its decode cost; marginal wins stay plain (and zero-copy).
	bestBytes := plainBytes - plainBytes/8

	rleBytes := 12 * runs
	if rleBytes < bestBytes {
		best, bestBytes = EncRLE, rleBytes
	}
	forWidth := 0
	if !zone.HasNull && !zone.AllNull {
		forWidth = bits.Len64(uint64(zone.Max - zone.Min))
		if forBytes := 16 + packedBytes(n, forWidth); forBytes < bestBytes {
			best, bestBytes = EncFOR, forBytes
		}
	}
	dictWidth := 0
	if d := len(distinct); d <= maxDictCard {
		dictWidth = bits.Len64(uint64(d - 1))
		if dictBytes := 8*d + packedBytes(n, dictWidth); dictBytes < bestBytes {
			best = EncDict
		}
	}

	switch best {
	case EncRLE:
		return encodeRLE(vals, runs, zone)
	case EncFOR:
		return encodeFOR(vals, forWidth, zone)
	case EncDict:
		return encodeDict(vals, distinct, zone)
	default:
		seg := &plainSegment{vals: append([]dict.OID(nil), vals...), zone: zone}
		return seg
	}
}

func packedBytes(n, width int) int { return 8 * ((n*width + 63) / 64) }

// --- bit packing -----------------------------------------------------

// packBits stores n width-bit values (width in [0,64]) little-endian in
// a []uint64.
func packBits(deltas []uint64, width int) []uint64 {
	if width == 0 {
		return nil
	}
	out := make([]uint64, (len(deltas)*width+63)/64)
	for i, d := range deltas {
		bit := i * width
		w, off := bit>>6, uint(bit&63)
		out[w] |= d << off
		if off+uint(width) > 64 {
			out[w+1] |= d >> (64 - off)
		}
	}
	return out
}

func unpackBit(packed []uint64, width int, i int) uint64 {
	if width == 0 {
		return 0
	}
	bit := i * width
	w, off := bit>>6, uint(bit&63)
	v := packed[w] >> off
	if off+uint(width) > 64 {
		v |= packed[w+1] << (64 - off)
	}
	return v & widthMask(width)
}

func widthMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}

// --- plain -----------------------------------------------------------

type plainSegment struct {
	vals []dict.OID
	zone Zone
}

func (s *plainSegment) Len() int           { return len(s.vals) }
func (s *plainSegment) Encoding() Encoding { return EncPlain }
func (s *plainSegment) Bytes() int         { return 8 * len(s.vals) }
func (s *plainSegment) Zone() Zone         { return s.zone }
func (s *plainSegment) Get(i int) dict.OID { return s.vals[i] }

// view exposes the raw vector for zero-copy block reads.
func (s *plainSegment) view() []dict.OID { return s.vals }

func (s *plainSegment) Decode(dst []dict.OID) []dict.OID { return append(dst, s.vals...) }

func (s *plainSegment) SelectEq(lo, hi int, v dict.OID, base int32, sel []int32) []int32 {
	if v == dict.Nil {
		return sel
	}
	for i := lo; i < hi; i++ {
		if s.vals[i] == v {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

func (s *plainSegment) SelectRange(lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32 {
	for i := lo; i < hi; i++ {
		if v := s.vals[i]; v != dict.Nil && v >= vlo && v <= vhi {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

func (s *plainSegment) SelectNotNil(lo, hi int, base int32, sel []int32) []int32 {
	for i := lo; i < hi; i++ {
		if s.vals[i] != dict.Nil {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// --- run-length ------------------------------------------------------

type rleSegment struct {
	vals []dict.OID // one per run
	ends []int32    // cumulative exclusive end of each run
	zone Zone
}

func encodeRLE(vals []dict.OID, runs int, zone Zone) *rleSegment {
	s := &rleSegment{
		vals: make([]dict.OID, 0, runs),
		ends: make([]int32, 0, runs),
		zone: zone,
	}
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			s.vals = append(s.vals, v)
			s.ends = append(s.ends, int32(i))
		}
		s.ends[len(s.ends)-1] = int32(i + 1)
	}
	return s
}

func (s *rleSegment) Len() int {
	if len(s.ends) == 0 {
		return 0
	}
	return int(s.ends[len(s.ends)-1])
}
func (s *rleSegment) Encoding() Encoding { return EncRLE }
func (s *rleSegment) Bytes() int         { return 8*len(s.vals) + 4*len(s.ends) }
func (s *rleSegment) Zone() Zone         { return s.zone }

func (s *rleSegment) Get(i int) dict.OID {
	r := sort.Search(len(s.ends), func(k int) bool { return s.ends[k] > int32(i) })
	return s.vals[r]
}

func (s *rleSegment) Decode(dst []dict.OID) []dict.OID {
	start := int32(0)
	for r, v := range s.vals {
		for ; start < s.ends[r]; start++ {
			dst = append(dst, v)
		}
	}
	return dst
}

// runWindow appends the rows of run r clipped to [lo,hi).
func (s *rleSegment) runWindow(r, lo, hi int, base int32, sel []int32) []int32 {
	rlo := 0
	if r > 0 {
		rlo = int(s.ends[r-1])
	}
	rhi := int(s.ends[r])
	if rlo < lo {
		rlo = lo
	}
	if rhi > hi {
		rhi = hi
	}
	for i := rlo; i < rhi; i++ {
		sel = append(sel, base+int32(i))
	}
	return sel
}

func (s *rleSegment) SelectEq(lo, hi int, v dict.OID, base int32, sel []int32) []int32 {
	if v == dict.Nil {
		return sel
	}
	for r, rv := range s.vals {
		if rv == v {
			sel = s.runWindow(r, lo, hi, base, sel)
		}
	}
	return sel
}

func (s *rleSegment) SelectRange(lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32 {
	for r, rv := range s.vals {
		if rv != dict.Nil && rv >= vlo && rv <= vhi {
			sel = s.runWindow(r, lo, hi, base, sel)
		}
	}
	return sel
}

func (s *rleSegment) SelectNotNil(lo, hi int, base int32, sel []int32) []int32 {
	for r, rv := range s.vals {
		if rv != dict.Nil {
			sel = s.runWindow(r, lo, hi, base, sel)
		}
	}
	return sel
}

// --- frame of reference ----------------------------------------------

// forSegment stores v[i] = base + delta[i] with deltas bit-packed. Only
// chosen for blocks without NULLs, so every row is a valid value.
type forSegment struct {
	base   dict.OID
	width  int
	n      int
	packed []uint64
	zone   Zone
}

func encodeFOR(vals []dict.OID, width int, zone Zone) *forSegment {
	deltas := make([]uint64, len(vals))
	for i, v := range vals {
		deltas[i] = uint64(v - zone.Min)
	}
	return &forSegment{
		base:   zone.Min,
		width:  width,
		n:      len(vals),
		packed: packBits(deltas, width),
		zone:   zone,
	}
}

func (s *forSegment) Len() int           { return s.n }
func (s *forSegment) Encoding() Encoding { return EncFOR }
func (s *forSegment) Bytes() int         { return 16 + 8*len(s.packed) }
func (s *forSegment) Zone() Zone         { return s.zone }
func (s *forSegment) Get(i int) dict.OID {
	return s.base + dict.OID(unpackBit(s.packed, s.width, i))
}

func (s *forSegment) Decode(dst []dict.OID) []dict.OID {
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.base+dict.OID(unpackBit(s.packed, s.width, i)))
	}
	return dst
}

func (s *forSegment) SelectEq(lo, hi int, v dict.OID, base int32, sel []int32) []int32 {
	if v < s.zone.Min || v > s.zone.Max {
		return sel // min/max prune: packed words never touched
	}
	want := uint64(v - s.base)
	for i := lo; i < hi; i++ {
		if unpackBit(s.packed, s.width, i) == want {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

func (s *forSegment) SelectRange(lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32 {
	if vhi < s.zone.Min || vlo > s.zone.Max {
		return sel // min/max prune
	}
	if vlo <= s.zone.Min && vhi >= s.zone.Max {
		return s.SelectNotNil(lo, hi, base, sel) // whole block qualifies
	}
	dlo := uint64(0)
	if vlo > s.base {
		dlo = uint64(vlo - s.base)
	}
	dhi := uint64(vhi - s.base)
	for i := lo; i < hi; i++ {
		if d := unpackBit(s.packed, s.width, i); d >= dlo && d <= dhi {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

func (s *forSegment) SelectNotNil(lo, hi int, base int32, sel []int32) []int32 {
	for i := lo; i < hi; i++ {
		sel = append(sel, base+int32(i)) // FOR blocks are NULL-free
	}
	return sel
}

// --- block dictionary ------------------------------------------------

// dictSegment stores the block's distinct values sorted ascending plus a
// bit-packed code per row. dict.Nil, when present, is always code 0
// (it is the smallest OID).
type dictSegment struct {
	dictVals []dict.OID
	width    int
	n        int
	packed   []uint64
	zone     Zone
}

func encodeDict(vals []dict.OID, distinct map[dict.OID]struct{}, zone Zone) *dictSegment {
	dv := make([]dict.OID, 0, len(distinct))
	for v := range distinct {
		dv = append(dv, v)
	}
	sort.Slice(dv, func(i, j int) bool { return dv[i] < dv[j] })
	code := make(map[dict.OID]uint64, len(dv))
	for i, v := range dv {
		code[v] = uint64(i)
	}
	width := bits.Len64(uint64(len(dv) - 1))
	deltas := make([]uint64, len(vals))
	for i, v := range vals {
		deltas[i] = code[v]
	}
	return &dictSegment{
		dictVals: dv,
		width:    width,
		n:        len(vals),
		packed:   packBits(deltas, width),
		zone:     zone,
	}
}

func (s *dictSegment) Len() int           { return s.n }
func (s *dictSegment) Encoding() Encoding { return EncDict }
func (s *dictSegment) Bytes() int         { return 8*len(s.dictVals) + 8*len(s.packed) }
func (s *dictSegment) Zone() Zone         { return s.zone }
func (s *dictSegment) Get(i int) dict.OID {
	return s.dictVals[unpackBit(s.packed, s.width, i)]
}

func (s *dictSegment) Decode(dst []dict.OID) []dict.OID {
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.dictVals[unpackBit(s.packed, s.width, i)])
	}
	return dst
}

// codeOf returns the code of v, or -1 when v is not in the block.
func (s *dictSegment) codeOf(v dict.OID) int {
	k := sort.Search(len(s.dictVals), func(i int) bool { return s.dictVals[i] >= v })
	if k < len(s.dictVals) && s.dictVals[k] == v {
		return k
	}
	return -1
}

func (s *dictSegment) SelectEq(lo, hi int, v dict.OID, base int32, sel []int32) []int32 {
	if v == dict.Nil {
		return sel
	}
	c := s.codeOf(v)
	if c < 0 {
		return sel // value absent: codes never touched
	}
	want := uint64(c)
	for i := lo; i < hi; i++ {
		if unpackBit(s.packed, s.width, i) == want {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

func (s *dictSegment) SelectRange(lo, hi int, vlo, vhi dict.OID, base int32, sel []int32) []int32 {
	// the dictionary is sorted, so a value range is a code range
	cLo := sort.Search(len(s.dictVals), func(i int) bool { return s.dictVals[i] >= vlo })
	cHi := sort.Search(len(s.dictVals), func(i int) bool { return s.dictVals[i] > vhi })
	if s.zone.HasNull && cLo == 0 && vlo == dict.Nil {
		cLo = 1 // never select NULL cells
	}
	if cLo >= cHi {
		return sel
	}
	lo64, hi64 := uint64(cLo), uint64(cHi-1)
	for i := lo; i < hi; i++ {
		if c := unpackBit(s.packed, s.width, i); c >= lo64 && c <= hi64 {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

func (s *dictSegment) SelectNotNil(lo, hi int, base int32, sel []int32) []int32 {
	if !s.zone.HasNull {
		for i := lo; i < hi; i++ {
			sel = append(sel, base+int32(i))
		}
		return sel
	}
	// Nil is the smallest OID, so when present its code is 0.
	for i := lo; i < hi; i++ {
		if unpackBit(s.packed, s.width, i) != 0 {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// EncodingCounts tallies segments per encoding, for Explain and stats.
type EncodingCounts [4]int

func (ec EncodingCounts) String() string {
	s := ""
	for e, n := range ec {
		if n == 0 {
			continue
		}
		if s != "" {
			s += "+"
		}
		s += fmt.Sprintf("%s×%d", Encoding(e), n)
	}
	if s == "" {
		return "none"
	}
	return s
}
