package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"srdf/internal/dict"
)

// blockShapes generates value distributions that steer the encoder to
// each of the four encodings.
var blockShapes = map[string]func(rng *rand.Rand, n int) []dict.OID{
	"runs": func(rng *rand.Rand, n int) []dict.OID { // → RLE
		vals := make([]dict.OID, n)
		v := lit(uint64(1 + rng.Intn(100)))
		for i := range vals {
			if rng.Intn(64) == 0 {
				v = lit(uint64(1 + rng.Intn(100)))
			}
			vals[i] = v
		}
		return vals
	},
	"narrow": func(rng *rand.Rand, n int) []dict.OID { // → FOR
		base := uint64(1 + rng.Intn(1_000_000))
		vals := make([]dict.OID, n)
		for i := range vals {
			vals[i] = lit(base + uint64(rng.Intn(250)))
		}
		return vals
	},
	"lowcard": func(rng *rand.Rand, n int) []dict.OID { // → dict
		domain := make([]dict.OID, 20)
		for i := range domain {
			domain[i] = lit(uint64(1 + rng.Intn(1<<40)))
		}
		vals := make([]dict.OID, n)
		for i := range vals {
			vals[i] = domain[rng.Intn(len(domain))]
		}
		return vals
	},
	"random": func(rng *rand.Rand, n int) []dict.OID { // → plain
		vals := make([]dict.OID, n)
		for i := range vals {
			vals[i] = lit(1 + rng.Uint64()>>1)
		}
		return vals
	},
	"nullish": func(rng *rand.Rand, n int) []dict.OID { // NULL-heavy
		vals := make([]dict.OID, n)
		for i := range vals {
			if rng.Intn(3) > 0 {
				vals[i] = dict.Nil
			} else {
				vals[i] = lit(uint64(1 + rng.Intn(1000)))
			}
		}
		return vals
	},
}

func bruteSelect(vals []dict.OID, lo, hi int, pred func(dict.OID) bool) []int32 {
	var out []int32
	for i := lo; i < hi; i++ {
		if v := vals[i]; v != dict.Nil && pred(v) {
			out = append(out, int32(i))
		}
	}
	return out
}

func eqSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSegmentRoundtripAndKernels checks, for every block shape, that the
// chosen encoding decodes to the source values and that the predicate
// kernels agree with a brute-force scan over the decoded form.
func TestSegmentRoundtripAndKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, gen := range blockShapes {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(BlockRows)
			vals := gen(rng, n)
			seg := EncodeBlock(vals)
			if seg.Len() != n {
				t.Fatalf("%s: Len = %d, want %d", name, seg.Len(), n)
			}
			dec := seg.Decode(nil)
			for i, v := range vals {
				if dec[i] != v {
					t.Fatalf("%s/%s: Decode[%d] = %v, want %v", name, seg.Encoding(), i, dec[i], v)
				}
				if g := seg.Get(i); g != v {
					t.Fatalf("%s/%s: Get(%d) = %v, want %v", name, seg.Encoding(), i, g, v)
				}
			}
			// window-restricted kernels vs brute force
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo) + 1
			probe := vals[rng.Intn(n)]
			if probe == dict.Nil {
				probe = lit(5)
			}
			got := seg.SelectEq(lo, hi, probe, 0, nil)
			want := bruteSelect(vals, lo, hi, func(v dict.OID) bool { return v == probe })
			if !eqSel(got, want) {
				t.Fatalf("%s/%s: SelectEq mismatch: got %v want %v", name, seg.Encoding(), got, want)
			}
			vlo := probe - dict.OID(rng.Intn(50))
			vhi := probe + dict.OID(rng.Intn(50))
			got = seg.SelectRange(lo, hi, vlo, vhi, 0, nil)
			want = bruteSelect(vals, lo, hi, func(v dict.OID) bool { return v >= vlo && v <= vhi })
			if !eqSel(got, want) {
				t.Fatalf("%s/%s: SelectRange[%v,%v] mismatch", name, seg.Encoding(), vlo, vhi)
			}
			got = seg.SelectNotNil(lo, hi, 0, nil)
			want = bruteSelect(vals, lo, hi, func(dict.OID) bool { return true })
			if !eqSel(got, want) {
				t.Fatalf("%s/%s: SelectNotNil mismatch", name, seg.Encoding())
			}
			// zone summary matches a fresh zone-map build
			zm := BuildZoneMap(vals[:min(n, BlockRows)])
			if z, w := seg.Zone(), zm.Zones[0]; z != w {
				t.Fatalf("%s/%s: Zone = %+v, want %+v", name, seg.Encoding(), z, w)
			}
		}
	}
}

// TestEncodingChoice pins the encoder's choice on archetypal blocks.
func TestEncodingChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sorted := make([]dict.OID, BlockRows)
	for i := range sorted {
		sorted[i] = lit(uint64(1 + i/128)) // long runs
	}
	if e := EncodeBlock(sorted).Encoding(); e != EncRLE {
		t.Errorf("runs block encoded as %v, want rle", e)
	}
	if e := EncodeBlock(blockShapes["narrow"](rng, BlockRows)).Encoding(); e != EncFOR {
		t.Errorf("narrow block encoded as %v, want for", e)
	}
	if e := EncodeBlock(blockShapes["lowcard"](rng, BlockRows)).Encoding(); e != EncDict {
		t.Errorf("low-cardinality block encoded as %v, want dict", e)
	}
	if e := EncodeBlock(blockShapes["random"](rng, BlockRows)).Encoding(); e != EncPlain {
		t.Errorf("random block encoded as %v, want plain", e)
	}
	for _, shape := range []string{"runs", "narrow", "lowcard"} {
		vals := blockShapes[shape](rng, BlockRows)
		if seg := EncodeBlock(vals); seg.Bytes() >= 8*len(vals) {
			t.Errorf("%s block not smaller than plain: %d >= %d", shape, seg.Bytes(), 8*len(vals))
		}
	}
}

// sealColumn builds a sealed column from vals.
func sealColumn(t *testing.T, vals []dict.OID, pool *BufferPool) *Column {
	t.Helper()
	c := NewColumn("t", len(vals), pool)
	for i, v := range vals {
		if v != dict.Nil {
			c.Set(i, v)
		}
	}
	c.Seal()
	return c
}

// TestSealedColumnParity checks that every Column accessor agrees before
// and after Seal.
func TestSealedColumnParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, gen := range blockShapes {
		vals := gen(rng, 2*BlockRows+17) // straddles blocks, ragged tail
		un := NewColumn("u", len(vals), nil)
		for i, v := range vals {
			if v != dict.Nil {
				un.Set(i, v)
			}
		}
		sealed := sealColumn(t, vals, nil)
		if sealed.Len() != un.Len() || sealed.NullCount() != un.NullCount() {
			t.Fatalf("%s: Len/NullCount diverge after seal", name)
		}
		if !sealed.Sealed() || un.Sealed() {
			t.Fatalf("%s: Sealed flags wrong", name)
		}
		for i := range vals {
			if sealed.Get(i) != un.Get(i) || sealed.IsNull(i) != un.IsNull(i) {
				t.Fatalf("%s: row %d diverges after seal", name, i)
			}
		}
		sv, uv := sealed.Values(), un.Values()
		for i := range sv {
			if sv[i] != uv[i] {
				t.Fatalf("%s: Values()[%d] diverges", name, i)
			}
		}
		// zone maps identical
		szm, uzm := sealed.Zones(), un.Zones()
		if len(szm.Zones) != len(uzm.Zones) {
			t.Fatalf("%s: zone counts diverge", name)
		}
		for b := range szm.Zones {
			if szm.Zones[b] != uzm.Zones[b] {
				t.Fatalf("%s: zone %d diverges: %+v vs %+v", name, b, szm.Zones[b], uzm.Zones[b])
			}
		}
	}
}

func TestSetOnSealedPanics(t *testing.T) {
	c := sealColumn(t, []dict.OID{lit(1), lit(2)}, nil)
	defer func() {
		if recover() == nil {
			t.Error("Set on sealed column did not panic")
		}
	}()
	c.Set(0, lit(3))
}

// TestColumnKernelsAcrossBlocks runs predicates straddling block
// boundaries and compares the per-block kernels against brute force over
// the whole column.
func TestColumnKernelsAcrossBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, gen := range blockShapes {
		vals := gen(rng, 3*BlockRows+1) // single-row tail block
		c := sealColumn(t, vals, nil)
		if c.NumBlocks() != 4 {
			t.Fatalf("%s: blocks = %d, want 4", name, c.NumBlocks())
		}
		probe := vals[BlockRows-1] // value sitting at a block boundary
		if probe == dict.Nil {
			probe = vals[0]
		}
		vlo, vhi := probe-64, probe+64
		var gotEq, gotRg, gotNN []int32
		for b := 0; b < c.NumBlocks(); b++ {
			lo := b * BlockRows
			hi := min(lo+BlockRows, len(vals))
			gotEq = c.SelectEqBlock(b, 0, hi-lo, probe, int32(lo), gotEq)
			gotRg = c.SelectRangeBlock(b, 0, hi-lo, vlo, vhi, int32(lo), gotRg)
			gotNN = c.SelectNotNilBlock(b, 0, hi-lo, int32(lo), gotNN)
		}
		if want := bruteSelect(vals, 0, len(vals), func(v dict.OID) bool { return v == probe }); !eqSel(gotEq, want) {
			t.Fatalf("%s: cross-block SelectEq mismatch", name)
		}
		if want := bruteSelect(vals, 0, len(vals), func(v dict.OID) bool { return v >= vlo && v <= vhi }); !eqSel(gotRg, want) {
			t.Fatalf("%s: cross-block SelectRange mismatch", name)
		}
		if want := bruteSelect(vals, 0, len(vals), func(dict.OID) bool { return true }); !eqSel(gotNN, want) {
			t.Fatalf("%s: cross-block SelectNotNil mismatch", name)
		}
	}
}

// TestAllNilBlocks covers columns with entirely-NULL blocks: the zones
// are AllNull, every kernel selects nothing, and Seal handles them.
func TestAllNilBlocks(t *testing.T) {
	vals := make([]dict.OID, 2*BlockRows+5)
	vals[BlockRows+3] = lit(42) // single value in block 1; blocks 0 and 2 all NULL
	c := sealColumn(t, vals, nil)
	zm := c.Zones()
	if !zm.Zones[0].AllNull || zm.Zones[1].AllNull || !zm.Zones[2].AllNull {
		t.Fatalf("AllNull flags wrong: %+v", zm.Zones)
	}
	for b := 0; b < c.NumBlocks(); b++ {
		lo := b * BlockRows
		hi := min(lo+BlockRows, len(vals))
		if sel := c.SelectNotNilBlock(b, 0, hi-lo, 0, nil); b != 1 && len(sel) != 0 {
			t.Errorf("block %d: all-NULL block selected %d rows", b, len(sel))
		}
	}
	if got := c.SelectEqBlock(1, 0, BlockRows, lit(42), 0, nil); len(got) != 1 || got[0] != 3 {
		t.Errorf("SelectEq in sparse block = %v, want [3]", got)
	}
	if c.NullCount() != len(vals)-1 {
		t.Errorf("NullCount = %d", c.NullCount())
	}
}

// TestSingleRowTailBlock covers the 1-row tail block edge case.
func TestSingleRowTailBlock(t *testing.T) {
	vals := make([]dict.OID, BlockRows+1)
	for i := range vals {
		vals[i] = lit(uint64(i + 1))
	}
	c := sealColumn(t, vals, nil)
	if c.NumBlocks() != 2 {
		t.Fatalf("blocks = %d", c.NumBlocks())
	}
	if got := c.SelectEqBlock(1, 0, 1, lit(uint64(BlockRows+1)), int32(BlockRows), nil); len(got) != 1 || got[0] != int32(BlockRows) {
		t.Errorf("tail block SelectEq = %v", got)
	}
	if v := c.Get(BlockRows); v != lit(uint64(BlockRows+1)) {
		t.Errorf("tail Get = %v", v)
	}
	if bv := c.BlockValues(1, make([]dict.OID, BlockRows)); len(bv) != 1 || bv[0] != lit(uint64(BlockRows+1)) {
		t.Errorf("tail BlockValues = %v", bv)
	}
}

// TestAscendingWindow compares the segment-aware binary search against a
// brute-force window over an ascending column with NULLs at the tail.
func TestAscendingWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 2*BlockRows + 100
	vals := make([]dict.OID, n)
	v := uint64(10)
	keyed := n - 50 // NULLs at the tail
	for i := 0; i < keyed; i++ {
		v += uint64(rng.Intn(3))
		vals[i] = lit(v)
	}
	c := sealColumn(t, vals, nil)
	for trial := 0; trial < 50; trial++ {
		vlo := lit(uint64(rng.Intn(int(v) + 20)))
		vhi := vlo + dict.OID(rng.Intn(100))
		lo, hi := c.AscendingWindow(vlo, vhi)
		for i := 0; i < keyed; i++ {
			in := vals[i] >= vlo && vals[i] <= vhi
			if in != (i >= lo && i < hi) {
				t.Fatalf("window [%d,%d) wrong at row %d (v=%v, range [%v,%v])", lo, hi, i, vals[i], vlo, vhi)
			}
		}
	}
}

// TestGatherBlock checks the sparse gather path against Get.
func TestGatherBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, gen := range blockShapes {
		vals := gen(rng, BlockRows)
		c := sealColumn(t, vals, nil)
		sel := []int32{0, 17, 500, int32(BlockRows - 1)}
		buf := make([]dict.OID, BlockRows)
		view := c.GatherBlock(0, sel, buf)
		for _, k := range sel {
			if view[k] != vals[k] {
				t.Fatalf("%s: GatherBlock[%d] = %v, want %v", name, k, view[k], vals[k])
			}
		}
	}
}

// TestSealPoolAccounting checks segment-byte accounting and the
// compression ratio in pool stats.
func TestSealPoolAccounting(t *testing.T) {
	pool := NewPool(0)
	vals := make([]dict.OID, 4*BlockRows)
	for i := range vals {
		vals[i] = lit(uint64(1 + i/128)) // 8 runs per block
	}
	c := sealColumn(t, vals, pool)
	st := pool.Stats()
	if st.LogicalBytes != int64(8*len(vals)) {
		t.Errorf("LogicalBytes = %d, want %d", st.LogicalBytes, 8*len(vals))
	}
	if st.SegmentBytes <= 0 || st.SegmentBytes >= st.LogicalBytes {
		t.Errorf("SegmentBytes = %d not in (0,%d)", st.SegmentBytes, st.LogicalBytes)
	}
	if st.CompressionRatio < 2 {
		t.Errorf("CompressionRatio = %.2f, want >= 2 for run blocks", st.CompressionRatio)
	}
	if got := c.CompressedBytes(); int64(got) != st.SegmentBytes {
		t.Errorf("CompressedBytes = %d, pool says %d", got, st.SegmentBytes)
	}
	ec := c.Encodings()
	if ec[EncRLE] != 4 {
		t.Errorf("encodings = %v, want 4 rle blocks", ec)
	}
	if ec.String() != "rle×4" {
		t.Errorf("EncodingCounts.String() = %q", ec.String())
	}
}

// TestSegmentKernelQuick is the property check: on arbitrary value
// blocks, kernels always agree with brute force.
func TestSegmentKernelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(BlockRows)
		vals := make([]dict.OID, n)
		for i := range vals {
			switch rng.Intn(4) {
			case 0:
				vals[i] = dict.Nil
			case 1:
				vals[i] = lit(uint64(1 + rng.Intn(10)))
			default:
				vals[i] = lit(uint64(1 + rng.Intn(100000)))
			}
		}
		seg := EncodeBlock(vals)
		probe := lit(uint64(1 + rng.Intn(100000)))
		if !eqSel(seg.SelectEq(0, n, probe, 0, nil),
			bruteSelect(vals, 0, n, func(v dict.OID) bool { return v == probe })) {
			return false
		}
		vlo, vhi := probe-dict.OID(rng.Intn(1000)), probe+dict.OID(rng.Intn(1000))
		if !eqSel(seg.SelectRange(0, n, vlo, vhi, 0, nil),
			bruteSelect(vals, 0, n, func(v dict.OID) bool { return v >= vlo && v <= vhi })) {
			return false
		}
		return eqSel(seg.SelectNotNil(0, n, 0, nil),
			bruteSelect(vals, 0, n, func(dict.OID) bool { return true }))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
