package colstore

import (
	"math/rand"
	"testing"
)

// restoreLazy seals vals, marshals them, and restores the column lazily
// against pool, returning both copies.
func restoreLazy(t *testing.T, pool *BufferPool, blocks int) (orig, rc *Column) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	vals := blockShapes["runs"](rng, blocks*BlockRows)
	orig = buildSealed(t, "t.c", vals, nil)
	rc = restoreCopy(t, orig, pool)
	return orig, rc
}

// TestResidentBytesTracksDecodedBlocks: the pool's ResidentBytes must
// equal the encoded bytes of exactly the decoded lazy blocks — the
// regression here is load() keeping decoded segments forever invisible
// to any budget. One touch accounts one block; a full decode accounts
// all; eviction returns the bytes.
func TestResidentBytesTracksDecodedBlocks(t *testing.T) {
	pool := NewPool(0)
	orig, rc := restoreLazy(t, pool, 4)

	if st := pool.Stats(); st.ResidentBytes != 0 || st.Faults != 0 {
		t.Fatalf("after restore: resident=%d faults=%d, want 0/0", st.ResidentBytes, st.Faults)
	}

	if got, want := rc.Get(0), orig.Get(0); got != want {
		t.Fatalf("Get(0) = %v, want %v", got, want)
	}
	st := pool.Stats()
	if st.Faults != 1 {
		t.Fatalf("after one touch: faults=%d, want 1", st.Faults)
	}
	if st.ResidentBytes <= 0 || st.ResidentBytes != st.SegmentBytes {
		t.Fatalf("after one touch: resident=%d segBytes=%d, want equal and positive",
			st.ResidentBytes, st.SegmentBytes)
	}

	rc.Values()
	st = pool.Stats()
	if st.SegmentsDecoded != 4 || st.ResidentBytes != st.SegmentBytes {
		t.Fatalf("after full decode: decoded=%d resident=%d segBytes=%d",
			st.SegmentsDecoded, st.ResidentBytes, st.SegmentBytes)
	}

	// Shrinking the budget to less than one block evicts everything
	// unpinned and the accounting returns to the post-restore state.
	pool.SetBudget(1)
	st = pool.Stats()
	if st.ResidentBytes != 0 || st.SegmentBytes != 0 {
		t.Fatalf("after evict-all: resident=%d segBytes=%d, want 0/0", st.ResidentBytes, st.SegmentBytes)
	}
	if st.SegmentsLazy != 4 || st.SegmentsDecoded != 0 {
		t.Fatalf("after evict-all: lazy=%d decoded=%d, want 4/0", st.SegmentsLazy, st.SegmentsDecoded)
	}
	if st.Evictions == 0 {
		t.Fatalf("eviction not counted")
	}
}

// TestBudgetEvictsAndRefaults: decoding past the byte budget must evict
// cold blocks back to their encoded form, and a later touch of an
// evicted block must re-decode it correctly (another fault, not stale
// data).
func TestBudgetEvictsAndRefaults(t *testing.T) {
	const blocks = 6
	pool := NewPool(0)
	orig, rc := restoreLazy(t, pool, blocks)

	// Budget for roughly two decoded blocks.
	one := func() int64 {
		rc.Get(0)
		b := pool.Stats().ResidentBytes
		pool.SetBudget(1) // flush the probe block again
		pool.SetBudget(0)
		return b
	}()
	if one <= 0 {
		t.Fatalf("probe block accounted %d bytes", one)
	}
	pool.SetBudget(2*one + one/2)

	rc.Values() // decode every block under the budget
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Fatalf("full scan under budget: no evictions")
	}
	if st.ResidentBytes > pool.Stats().BudgetBytes {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	if st.SegmentsLazy == 0 {
		t.Fatalf("no block returned to encoded form")
	}

	// Every value must still be readable — evicted blocks refault.
	faultsBefore := st.Faults
	for i := 0; i < blocks*BlockRows; i += BlockRows / 2 {
		if got, want := rc.Get(i), orig.Get(i); got != want {
			t.Fatalf("row %d after eviction: %v, want %v", i, got, want)
		}
	}
	if pool.Stats().Faults <= faultsBefore {
		t.Fatalf("re-reading evicted blocks caused no refaults")
	}
}

// TestResetColdEvictsDecodedSegments: ResetCold's contract is "as if
// the server restarted", which for an opened store means the decoded
// lazy segments are gone too — the regression is flushing only the
// simulated page table and leaving every decoded block hot.
func TestResetColdEvictsDecodedSegments(t *testing.T) {
	pool := NewPool(0)
	orig, rc := restoreLazy(t, pool, 3)
	rc.Values()
	if st := pool.Stats(); st.SegmentsDecoded != 3 {
		t.Fatalf("decoded=%d, want 3", st.SegmentsDecoded)
	}

	pool.ResetCold()
	st := pool.Stats()
	if st.SegmentsDecoded != 0 || st.SegmentsLazy != 3 {
		t.Fatalf("after ResetCold: decoded=%d lazy=%d, want 0/3", st.SegmentsDecoded, st.SegmentsLazy)
	}
	if st.ResidentBytes != 0 || st.SegmentBytes != 0 {
		t.Fatalf("after ResetCold: resident=%d segBytes=%d, want 0/0", st.ResidentBytes, st.SegmentBytes)
	}

	faults := st.Faults
	if got, want := rc.Get(0), orig.Get(0); got != want {
		t.Fatalf("Get(0) after ResetCold = %v, want %v", got, want)
	}
	if pool.Stats().Faults != faults+1 {
		t.Fatalf("cold read did not refault")
	}
}

// TestPinBlocksEviction: a pinned block survives budget pressure (its
// views may be lent to a selection vector) and becomes evictable once
// unpinned.
func TestPinBlocksEviction(t *testing.T) {
	pool := NewPool(0)
	_, rc := restoreLazy(t, pool, 3)

	rc.PinBlock(0)
	rc.Get(0) // decode the pinned block
	pinned := pool.Stats().ResidentBytes
	if pinned <= 0 {
		t.Fatalf("pinned block not accounted")
	}

	pool.SetBudget(1)
	if st := pool.Stats(); st.ResidentBytes != pinned || st.SegmentsDecoded != 1 {
		t.Fatalf("pinned block evicted: resident=%d decoded=%d", st.ResidentBytes, st.SegmentsDecoded)
	}

	rc.UnpinBlock(0)
	pool.SetBudget(1)
	if st := pool.Stats(); st.ResidentBytes != 0 || st.SegmentsDecoded != 0 {
		t.Fatalf("unpinned block survived budget: resident=%d decoded=%d", st.ResidentBytes, st.SegmentsDecoded)
	}
}
