package triples

import "srdf/internal/dict"

// MergeJoinS intersects two sorted OID lists (ascending, possibly with
// duplicates collapsed by the caller) and returns the common values.
// This is the primitive behind the Default plan's subject-subject merge
// joins between per-property index scans.
func MergeJoinS(a, b []dict.OID) []dict.OID {
	out := make([]dict.OID, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
			// skip duplicates on both sides
			for i < len(a) && a[i] == a[i-1] {
				i++
			}
			for j < len(b) && b[j] == b[j-1] {
				j++
			}
		}
	}
	return out
}

// MergeJoinPairs joins two sorted (key, payload) column pairs on key,
// emitting one output row per matching key combination (full cross
// product per duplicate group). Keys must be ascending.
func MergeJoinPairs(ka []dict.OID, va []dict.OID, kb []dict.OID, vb []dict.OID,
	emit func(key, a, b dict.OID)) {
	i, j := 0, 0
	for i < len(ka) && j < len(kb) {
		switch {
		case ka[i] < kb[j]:
			i++
		case ka[i] > kb[j]:
			j++
		default:
			k := ka[i]
			iEnd := i
			for iEnd < len(ka) && ka[iEnd] == k {
				iEnd++
			}
			jEnd := j
			for jEnd < len(kb) && kb[jEnd] == k {
				jEnd++
			}
			for x := i; x < iEnd; x++ {
				for y := j; y < jEnd; y++ {
					emit(k, va[x], vb[y])
				}
			}
			i, j = iEnd, jEnd
		}
	}
}

// Uniq collapses consecutive duplicates of a sorted slice in place and
// returns the shortened slice.
func Uniq(a []dict.OID) []dict.OID {
	if len(a) == 0 {
		return a
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return a[:w]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
