package triples

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"srdf/internal/dict"
)

func r(p uint64) dict.OID { return dict.ResourceOID(p) }
func l(p uint64) dict.OID { return dict.LiteralOID(p) }

func randomTable(seed int64, n int) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := NewTable(n)
	for i := 0; i < n; i++ {
		s := r(uint64(1 + rng.Intn(20)))
		p := r(uint64(100 + rng.Intn(5)))
		var o dict.OID
		if rng.Intn(2) == 0 {
			o = r(uint64(1 + rng.Intn(20)))
		} else {
			o = l(uint64(1 + rng.Intn(30)))
		}
		t.Append(s, p, o)
	}
	return t
}

func TestTableAppendAt(t *testing.T) {
	tb := NewTable(0)
	tb.Append(r(1), r(2), l(3))
	tb.AppendTriple(Triple{r(4), r(5), r(6)})
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.At(0) != (Triple{r(1), r(2), l(3)}) || tb.At(1) != (Triple{r(4), r(5), r(6)}) {
		t.Errorf("At mismatch: %v %v", tb.At(0), tb.At(1))
	}
}

func TestProjectionSortedInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		tb := randomTable(seed, 200)
		for _, perm := range AllPerms {
			pr := Build(tb, perm)
			if pr.Len() != tb.Len() {
				return false
			}
			for i := 1; i < pr.Len(); i++ {
				a0, b0, c0 := pr.At(i - 1)
				a1, b1, c1 := pr.At(i)
				if a0 > a1 || (a0 == a1 && b0 > b1) || (a0 == a1 && b0 == b1 && c0 > c1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProjectionTripleReconstruction(t *testing.T) {
	tb := randomTable(42, 300)
	want := make(map[Triple]int)
	for i := 0; i < tb.Len(); i++ {
		want[tb.At(i)]++
	}
	for _, perm := range AllPerms {
		pr := Build(tb, perm)
		got := make(map[Triple]int)
		for i := 0; i < pr.Len(); i++ {
			got[pr.Triple(i)]++
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d distinct triples, want %d", perm, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%v: triple %v count %d, want %d", perm, k, got[k], v)
			}
		}
	}
}

func TestRangeLookups(t *testing.T) {
	tb := NewTable(0)
	// p=100: s1->o1, s1->o2, s2->o1 ; p=101: s1->o5
	tb.Append(r(1), r(100), l(1))
	tb.Append(r(1), r(100), l(2))
	tb.Append(r(2), r(100), l(1))
	tb.Append(r(1), r(101), l(5))
	pso := Build(tb, PSO)

	lo, hi := pso.Range1(r(100))
	if hi-lo != 3 {
		t.Errorf("Range1(p100) = %d rows, want 3", hi-lo)
	}
	lo, hi = pso.Range2(r(100), r(1))
	if hi-lo != 2 {
		t.Errorf("Range2(p100,s1) = %d rows, want 2", hi-lo)
	}
	lo, hi = pso.Range3(r(100), r(1), l(2))
	if hi-lo != 1 {
		t.Errorf("Range3 = %d rows, want 1", hi-lo)
	}
	lo, hi = pso.Range1(r(999))
	if hi != lo {
		t.Errorf("Range1(missing) non-empty")
	}
	if !pso.Contains(Triple{r(1), r(100), l(2)}) {
		t.Error("Contains failed for present triple")
	}
	if pso.Contains(Triple{r(2), r(101), l(5)}) {
		t.Error("Contains true for absent triple")
	}
}

func TestRange2Between(t *testing.T) {
	tb := NewTable(0)
	for i := 1; i <= 10; i++ {
		tb.Append(r(uint64(i)), r(100), l(uint64(i)))
	}
	pos := Build(tb, POS)
	lo, hi := pos.Range2Between(r(100), l(3), l(7))
	if hi-lo != 5 {
		t.Errorf("Range2Between = %d rows, want 5", hi-lo)
	}
	for i := lo; i < hi; i++ {
		_, b, _ := pos.At(i)
		if b < l(3) || b > l(7) {
			t.Errorf("row %d object %v outside range", i, b)
		}
	}
}

func TestRangeAgainstNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		tb := randomTable(seed, 150)
		pso := Build(tb, PSO)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for k := 0; k < 20; k++ {
			p := r(uint64(100 + rng.Intn(5)))
			s := r(uint64(1 + rng.Intn(20)))
			lo, hi := pso.Range2(p, s)
			naive := 0
			for i := 0; i < tb.Len(); i++ {
				tr := tb.At(i)
				if tr.P == p && tr.S == s {
					naive++
				}
			}
			if hi-lo != naive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDedup(t *testing.T) {
	tb := NewTable(0)
	tb.Append(r(1), r(2), r(3))
	tb.Append(r(1), r(2), r(3))
	tb.Append(r(1), r(2), r(4))
	tb.Append(r(1), r(2), r(3))
	removed := tb.Dedup()
	if removed != 2 {
		t.Errorf("Dedup removed %d, want 2", removed)
	}
	if tb.Len() != 2 {
		t.Errorf("Len after dedup = %d, want 2", tb.Len())
	}
}

func TestRemap(t *testing.T) {
	tb := NewTable(0)
	tb.Append(r(1), r(2), l(1))
	tb.Remap(func(o dict.OID) dict.OID {
		if o.IsLiteral() {
			return l(o.Payload() + 10)
		}
		return r(o.Payload() + 100)
	})
	if tb.At(0) != (Triple{r(101), r(102), l(11)}) {
		t.Errorf("Remap gave %v", tb.At(0))
	}
}

func TestDistinct1(t *testing.T) {
	tb := randomTable(7, 100)
	pso := Build(tb, PSO)
	seen := map[dict.OID]int{}
	total := 0
	pso.Distinct1(func(v dict.OID, lo, hi int) {
		seen[v] += hi - lo
		total += hi - lo
		for i := lo; i < hi; i++ {
			if pso.A[i] != v {
				t.Errorf("Distinct1 range contains foreign value")
			}
		}
	})
	if total != tb.Len() {
		t.Errorf("Distinct1 covered %d rows, want %d", total, tb.Len())
	}
	// every run must be maximal: consecutive calls have different v — implied
	// by map accumulation matching naive counts
	naive := map[dict.OID]int{}
	for i := 0; i < tb.Len(); i++ {
		naive[tb.P[i]]++
	}
	for k, v := range naive {
		if seen[k] != v {
			t.Errorf("value %v count %d, want %d", k, seen[k], v)
		}
	}
}

func TestDistinct2(t *testing.T) {
	tb := randomTable(9, 80)
	spo := Build(tb, SPO)
	spo.Distinct1(func(s dict.OID, lo, hi int) {
		prev := dict.Nil
		spo.Distinct2(lo, hi, func(p dict.OID, l2, h2 int) {
			if p == prev {
				t.Errorf("Distinct2 emitted duplicate run for %v", p)
			}
			prev = p
			for i := l2; i < h2; i++ {
				if spo.B[i] != p {
					t.Errorf("Distinct2 range impurity")
				}
			}
		})
	})
}

func TestMergeJoinS(t *testing.T) {
	a := []dict.OID{r(1), r(2), r(2), r(4), r(7)}
	b := []dict.OID{r(2), r(3), r(4), r(4), r(8)}
	got := MergeJoinS(a, b)
	want := []dict.OID{r(2), r(4)}
	if len(got) != len(want) {
		t.Fatalf("MergeJoinS = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeJoinS = %v, want %v", got, want)
		}
	}
}

func TestMergeJoinSQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []dict.OID {
			n := rng.Intn(50)
			out := make([]dict.OID, n)
			for i := range out {
				out[i] = r(uint64(rng.Intn(30)))
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mk(), mk()
		got := MergeJoinS(a, b)
		inA := map[dict.OID]bool{}
		for _, x := range a {
			inA[x] = true
		}
		want := map[dict.OID]bool{}
		for _, x := range b {
			if inA[x] {
				want[x] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, x := range got {
			if !want[x] {
				return false
			}
		}
		// sorted & unique
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeJoinPairs(t *testing.T) {
	ka := []dict.OID{r(1), r(2), r(2)}
	va := []dict.OID{l(10), l(20), l(21)}
	kb := []dict.OID{r(2), r(2), r(3)}
	vb := []dict.OID{l(90), l(91), l(99)}
	var rows [][3]dict.OID
	MergeJoinPairs(ka, va, kb, vb, func(k, a, b dict.OID) {
		rows = append(rows, [3]dict.OID{k, a, b})
	})
	if len(rows) != 4 { // 2x2 cross product on key r(2)
		t.Fatalf("got %d rows, want 4: %v", len(rows), rows)
	}
	for _, row := range rows {
		if row[0] != r(2) {
			t.Errorf("unexpected key %v", row[0])
		}
	}
}

func TestUniq(t *testing.T) {
	in := []dict.OID{r(1), r(1), r(2), r(3), r(3), r(3)}
	got := Uniq(in)
	if len(got) != 3 || got[0] != r(1) || got[1] != r(2) || got[2] != r(3) {
		t.Errorf("Uniq = %v", got)
	}
	if len(Uniq(nil)) != 0 {
		t.Error("Uniq(nil) should be empty")
	}
}

func TestBuildAll(t *testing.T) {
	tb := randomTable(3, 50)
	s := BuildAll(tb)
	for _, p := range AllPerms {
		if s.Get(p) == nil || s.Get(p).Order != p {
			t.Errorf("projection %v missing or mislabeled", p)
		}
		if s.Get(p).Len() != tb.Len() {
			t.Errorf("projection %v has %d rows, want %d", p, s.Get(p).Len(), tb.Len())
		}
	}
}
