// Package triples implements the dictionary-encoded triple table and the
// six ordered projections (SPO, SOP, PSO, POS, OSP, OPS) that the
// MonetDB+HSP prototype — the paper's baseline — keeps for exhaustive
// indexing. All downstream machinery (CS detection, subject clustering,
// both query-plan families) operates on these structures.
package triples

import (
	"fmt"
	"sort"

	"srdf/internal/dict"
)

// Triple is a dictionary-encoded statement.
type Triple struct {
	S, P, O dict.OID
}

// Table is the base triple table in parse (insertion) order, stored
// column-wise like MonetDB BATs.
type Table struct {
	S, P, O []dict.OID
}

// NewTable returns an empty table with the given capacity hint.
func NewTable(capHint int) *Table {
	return &Table{
		S: make([]dict.OID, 0, capHint),
		P: make([]dict.OID, 0, capHint),
		O: make([]dict.OID, 0, capHint),
	}
}

// Len returns the number of triples.
func (t *Table) Len() int { return len(t.S) }

// Append adds one triple.
func (t *Table) Append(s, p, o dict.OID) {
	t.S = append(t.S, s)
	t.P = append(t.P, p)
	t.O = append(t.O, o)
}

// AppendTriple adds one triple.
func (t *Table) AppendTriple(tr Triple) { t.Append(tr.S, tr.P, tr.O) }

// At returns the i-th triple in parse order.
func (t *Table) At(i int) Triple { return Triple{t.S[i], t.P[i], t.O[i]} }

// Remap rewrites every OID through the supplied function. Used by the
// subject-clustering reorganizer after dictionary renumbering.
func (t *Table) Remap(f func(dict.OID) dict.OID) {
	for i := range t.S {
		t.S[i] = f(t.S[i])
		t.P[i] = f(t.P[i])
		t.O[i] = f(t.O[i])
	}
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := NewTable(t.Len())
	c.S = append(c.S, t.S...)
	c.P = append(c.P, t.P...)
	c.O = append(c.O, t.O...)
	return c
}

// Dedup sorts the table in SPO order and removes exact duplicate triples,
// returning the number removed. RDF graphs are sets; bulk loads of dirty
// data commonly carry duplicates.
func (t *Table) Dedup() int {
	n := t.Len()
	if n == 0 {
		return 0
	}
	idx := sortedIndex(t, SPO)
	outS := make([]dict.OID, 0, n)
	outP := make([]dict.OID, 0, n)
	outO := make([]dict.OID, 0, n)
	var last Triple
	for k, i := range idx {
		tr := t.At(int(i))
		if k > 0 && tr == last {
			continue
		}
		last = tr
		outS = append(outS, tr.S)
		outP = append(outP, tr.P)
		outO = append(outO, tr.O)
	}
	removed := n - len(outS)
	t.S, t.P, t.O = outS, outP, outO
	return removed
}

// Perm names one of the six sort orders of a projection.
type Perm uint8

// The six permutations of (subject, predicate, object).
const (
	SPO Perm = iota
	SOP
	PSO
	POS
	OSP
	OPS
)

// AllPerms lists every projection order.
var AllPerms = [6]Perm{SPO, SOP, PSO, POS, OSP, OPS}

func (p Perm) String() string {
	switch p {
	case SPO:
		return "SPO"
	case SOP:
		return "SOP"
	case PSO:
		return "PSO"
	case POS:
		return "POS"
	case OSP:
		return "OSP"
	case OPS:
		return "OPS"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// cols maps a permutation to the (first, second, third) component
// extractor of a triple.
func (p Perm) key(t Triple) (dict.OID, dict.OID, dict.OID) {
	switch p {
	case SPO:
		return t.S, t.P, t.O
	case SOP:
		return t.S, t.O, t.P
	case PSO:
		return t.P, t.S, t.O
	case POS:
		return t.P, t.O, t.S
	case OSP:
		return t.O, t.S, t.P
	default: // OPS
		return t.O, t.P, t.S
	}
}

// Projection is a copy of the triple table sorted in one permutation
// order, with binary-search range access on its (1st), (1st,2nd) and
// (1st,2nd,3rd) prefixes. A/B/C hold the permuted components.
type Projection struct {
	Order   Perm
	A, B, C []dict.OID
}

func sortedIndex(t *Table, p Perm) []int32 {
	n := t.Len()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(x, y int) bool {
		ax, bx, cx := p.key(t.At(int(idx[x])))
		ay, by, cy := p.key(t.At(int(idx[y])))
		if ax != ay {
			return ax < ay
		}
		if bx != by {
			return bx < by
		}
		return cx < cy
	})
	return idx
}

// Build sorts the table into the given permutation order.
func Build(t *Table, p Perm) *Projection {
	idx := sortedIndex(t, p)
	pr := &Projection{
		Order: p,
		A:     make([]dict.OID, len(idx)),
		B:     make([]dict.OID, len(idx)),
		C:     make([]dict.OID, len(idx)),
	}
	for k, i := range idx {
		a, b, c := p.key(t.At(int(i)))
		pr.A[k], pr.B[k], pr.C[k] = a, b, c
	}
	return pr
}

// Len returns the number of rows.
func (pr *Projection) Len() int { return len(pr.A) }

// At returns row i in permuted component order.
func (pr *Projection) At(i int) (a, b, c dict.OID) { return pr.A[i], pr.B[i], pr.C[i] }

// Triple reconstructs the original (S,P,O) triple at row i.
func (pr *Projection) Triple(i int) Triple {
	a, b, c := pr.A[i], pr.B[i], pr.C[i]
	switch pr.Order {
	case SPO:
		return Triple{a, b, c}
	case SOP:
		return Triple{a, c, b}
	case PSO:
		return Triple{b, a, c}
	case POS:
		return Triple{c, a, b}
	case OSP:
		return Triple{b, c, a}
	default: // OPS
		return Triple{c, b, a}
	}
}

// Range1 returns [lo,hi) of rows whose first component equals a.
func (pr *Projection) Range1(a dict.OID) (int, int) {
	lo := sort.Search(len(pr.A), func(i int) bool { return pr.A[i] >= a })
	hi := sort.Search(len(pr.A), func(i int) bool { return pr.A[i] > a })
	return lo, hi
}

// Range2 returns [lo,hi) of rows with first component a and second b.
func (pr *Projection) Range2(a, b dict.OID) (int, int) {
	lo1, hi1 := pr.Range1(a)
	lo := lo1 + sort.Search(hi1-lo1, func(i int) bool { return pr.B[lo1+i] >= b })
	hi := lo1 + sort.Search(hi1-lo1, func(i int) bool { return pr.B[lo1+i] > b })
	return lo, hi
}

// Range2Between returns [lo,hi) of rows with first component a and second
// component in [bLo,bHi]. Because literal OIDs are value-ordered after
// reorganization, this implements value range predicates on O directly
// over the POS projection (paper §II-B).
func (pr *Projection) Range2Between(a, bLo, bHi dict.OID) (int, int) {
	lo1, hi1 := pr.Range1(a)
	lo := lo1 + sort.Search(hi1-lo1, func(i int) bool { return pr.B[lo1+i] >= bLo })
	hi := lo1 + sort.Search(hi1-lo1, func(i int) bool { return pr.B[lo1+i] > bHi })
	return lo, hi
}

// Range3 returns [lo,hi) of rows exactly matching (a,b,c).
func (pr *Projection) Range3(a, b, c dict.OID) (int, int) {
	lo2, hi2 := pr.Range2(a, b)
	lo := lo2 + sort.Search(hi2-lo2, func(i int) bool { return pr.C[lo2+i] >= c })
	hi := lo2 + sort.Search(hi2-lo2, func(i int) bool { return pr.C[lo2+i] > c })
	return lo, hi
}

// Contains reports whether the exact triple is present.
func (pr *Projection) Contains(t Triple) bool {
	a, b, c := pr.Order.key(t)
	lo, hi := pr.Range3(a, b, c)
	return hi > lo
}

// IndexSet bundles all six projections, the "exhaustive indexing"
// approach of RDF-3X and MonetDB+HSP that the paper critiques for its
// lack of locality — and that the reorganized store still needs for the
// irregular residue and for non-star access paths.
type IndexSet struct {
	ByPerm [6]*Projection
}

// BuildAll sorts the table into all six permutations.
func BuildAll(t *Table) *IndexSet {
	var s IndexSet
	for _, p := range AllPerms {
		s.ByPerm[p] = Build(t, p)
	}
	return &s
}

// Get returns the projection for a permutation.
func (s *IndexSet) Get(p Perm) *Projection { return s.ByPerm[p] }

// Distinct1 iterates the distinct values of the first component of pr,
// calling fn with each value and its row range.
func (pr *Projection) Distinct1(fn func(v dict.OID, lo, hi int)) {
	n := pr.Len()
	for lo := 0; lo < n; {
		v := pr.A[lo]
		hi := lo + 1
		for hi < n && pr.A[hi] == v {
			hi++
		}
		fn(v, lo, hi)
		lo = hi
	}
}

// Distinct2 iterates distinct (first,second) pairs within [lo,hi),
// calling fn with the pair's row range.
func (pr *Projection) Distinct2(lo, hi int, fn func(b dict.OID, l, h int)) {
	for l := lo; l < hi; {
		v := pr.B[l]
		h := l + 1
		for h < hi && pr.B[h] == v {
			h++
		}
		fn(v, l, h)
		l = h
	}
}
