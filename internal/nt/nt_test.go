package nt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"srdf/internal/dict"
)

func mustReadAll(t *testing.T, src string) []Triple {
	t.Helper()
	ts, err := NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return ts
}

func TestParseBasicTriple(t *testing.T) {
	ts := mustReadAll(t, `<http://e.org/s> <http://e.org/p> <http://e.org/o> .`)
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
	want := Triple{S: dict.IRI("http://e.org/s"), P: dict.IRI("http://e.org/p"), O: dict.IRI("http://e.org/o")}
	if ts[0] != want {
		t.Errorf("got %+v, want %+v", ts[0], want)
	}
}

func TestParseLiteralForms(t *testing.T) {
	src := `<s:a> <p:b> "plain" .
<s:a> <p:b> "typed"^^<http://www.w3.org/2001/XMLSchema#integer> .
<s:a> <p:b> "tagged"@en-US .
<s:a> <p:b> "esc\t\"x\"\nok" .
<s:a> <p:b> "uniA\U00000042" .`
	ts := mustReadAll(t, src)
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5", len(ts))
	}
	if ts[0].O != dict.StringLit("plain") {
		t.Errorf("plain literal: %+v", ts[0].O)
	}
	if ts[1].O.Datatype != dict.XSDInt {
		t.Errorf("typed literal datatype: %+v", ts[1].O)
	}
	if ts[2].O.Lang != "en-US" {
		t.Errorf("lang tag: %+v", ts[2].O)
	}
	if ts[3].O.Value != "esc\t\"x\"\nok" {
		t.Errorf("escapes: %q", ts[3].O.Value)
	}
	if ts[4].O.Value != "uniAB" {
		t.Errorf("unicode escapes: %q", ts[4].O.Value)
	}
}

func TestParseBlankNodes(t *testing.T) {
	ts := mustReadAll(t, `_:b0 <p:x> _:b1 .`)
	if ts[0].S != dict.Blank("b0") || ts[0].O != dict.Blank("b1") {
		t.Errorf("blank nodes: %+v", ts[0])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# header\n\n<s:a> <p:b> <o:c> . # trailing\n   \n# done"
	ts := mustReadAll(t, src)
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
}

func TestStrictErrors(t *testing.T) {
	bad := []string{
		`<s:a> <p:b> <o:c>`,           // missing dot
		`"lit" <p:b> <o:c> .`,         // literal subject
		`<s:a> _:b <o:c> .`,           // blank predicate
		`<s:a> <p:b> "unterminated .`, // unterminated literal
		`<s:a> <p:b> <o:c> . extra`,   // trailing garbage
		`<s:a> <p:b> "x"^^bad .`,      // datatype not IRI
		`<s:a> <p:b> "x\q" .`,         // bad escape
		`<s:a> <p:b> "x"@ .`,          // empty lang
		`<unterminated <p:b> <o:c> .`, // IRI containing < is fine but unterminated at eol is not — here '>' closes "unterminated <p:b> <o:c" wait
		`<s:a>`,                       // short line
		`<s:a> <p:b> "u\u12" .`,       // truncated \u
		`_: <p:b> <o:c> .`,            // empty blank label
		`<> <p:b> <o:c> .`,            // empty IRI
	}
	for _, src := range bad {
		if _, err := NewReader(strings.NewReader(src)).ReadAll(); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLenientSkipsBadLines(t *testing.T) {
	src := `<s:a> <p:b> <o:c> .
garbage line here
<s:d> <p:e> "v" .`
	r := NewLenientReader(strings.NewReader(src))
	ts, err := r.ReadAll()
	if err != nil {
		t.Fatalf("lenient ReadAll: %v", err)
	}
	if len(ts) != 2 {
		t.Errorf("got %d triples, want 2", len(ts))
	}
	if len(r.Errs()) != 1 {
		t.Errorf("got %d errors, want 1", len(r.Errs()))
	}
	var pe *ParseError
	if e := r.Errs()[0]; !asParseError(e, &pe) || pe.Line != 2 {
		t.Errorf("error line = %v, want line 2", r.Errs()[0])
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

func TestWriterRoundTrip(t *testing.T) {
	in := []Triple{
		{S: dict.IRI("http://e/s"), P: dict.IRI("http://e/p"), O: dict.StringLit(`tricky "quote" \ back`)},
		{S: dict.Blank("n1"), P: dict.IRI("http://e/p"), O: dict.TypedLit("1996-12-01", dict.XSDDate)},
		{S: dict.IRI("http://e/s"), P: dict.IRI("http://e/p"), O: dict.LangLit("hola", "es")},
		{S: dict.IRI("http://e/s"), P: dict.IRI("http://e/p"), O: dict.StringLit("line1\nline2\ttab")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tr := range in {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := mustReadAll(t, buf.String())
	if len(out) != len(in) {
		t.Fatalf("round trip %d -> %d triples", len(in), len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("triple %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var in []Triple
		for i := 0; i < 1+r.Intn(10); i++ {
			s := dict.IRI("http://x/" + randWord(r))
			if r.Intn(4) == 0 {
				s = dict.Blank("b" + randWord(r))
			}
			p := dict.IRI("http://p/" + randWord(r))
			var o dict.Term
			switch r.Intn(4) {
			case 0:
				o = dict.IRI("http://o/" + randWord(r))
			case 1:
				o = dict.StringLit(randText(r))
			case 2:
				o = dict.IntLit(r.Int63n(1000))
			default:
				o = dict.LangLit(randText(r), "en")
			}
			in = append(in, Triple{S: s, P: p, O: o})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, tr := range in {
			if w.Write(tr) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		out, err := NewReader(&buf).ReadAll()
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randWord(r *rand.Rand) string {
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randText(r *rand.Rand) string {
	chars := []rune("abc \"\\\n\tü日")
	n := r.Intn(12)
	b := make([]rune, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

func TestReadStreaming(t *testing.T) {
	src := strings.Repeat("<s:a> <p:b> <o:c> .\n", 100)
	r := NewReader(strings.NewReader(src))
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 100 {
		t.Errorf("streamed %d triples, want 100", n)
	}
}

func TestParseTurtleBasics(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
# a comment
ex:inproc1 a ex:InProceedings ;
    ex:creator ex:author3 , ex:author4 ;
    ex:title "AAA" ;
    ex:year 2010 ;
    ex:score 4.5 ;
    ex:accepted true ;
    ex:issued "2010-05-01"^^xsd:date .
_:b1 ex:knows ex:inproc1 .
`
	ts, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if len(ts) != 9 {
		t.Fatalf("got %d triples, want 9: %v", len(ts), ts)
	}
	if ts[0].P.Value != dict.RDFType {
		t.Errorf("`a` did not expand to rdf:type: %v", ts[0].P)
	}
	if ts[1].O.Value != "http://example.org/author3" || ts[2].O.Value != "http://example.org/author4" {
		t.Errorf("object list mis-parsed: %v %v", ts[1].O, ts[2].O)
	}
	if ts[4].O.Datatype != dict.XSDInt {
		t.Errorf("integer literal: %+v", ts[4].O)
	}
	if ts[5].O.Datatype != dict.XSDDec {
		t.Errorf("decimal literal: %+v", ts[5].O)
	}
	if ts[6].O.Datatype != dict.XSDBool {
		t.Errorf("boolean literal: %+v", ts[6].O)
	}
	if ts[7].O.Datatype != dict.XSDDate {
		t.Errorf("dated literal: %+v", ts[7].O)
	}
	if ts[8].S.Kind != dict.KindBlank {
		t.Errorf("blank subject: %+v", ts[8].S)
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:a ex:b ex:c .`,                                         // undefined prefix
		`@prefix ex: <http://e/> . ex:a ex:b`,                      // missing object & dot
		`@prefix ex: <http://e/> . ex:a ex:b [ex:c [ex:d ex:e]] .`, // two-level bnode list
		`@prefix ex: <http://e/> . ex:a ex:b [ex:c ex:d .`,         // unterminated bnode list
	}
	for _, src := range bad {
		if _, err := ParseTurtle(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseTurtleBnodePropertyLists(t *testing.T) {
	src := `
@prefix ex: <http://e.org/> .
ex:s ex:p [ ex:q ex:o ; ex:r "v" ] .
[ ex:name "n" ] ex:knows ex:s .
[ ex:lone 1 ] .
`
	ts, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if len(ts) != 6 {
		t.Fatalf("got %d triples, want 6: %v", len(ts), ts)
	}
	// Object-position list: inner triples first, then the referencing one.
	bn := ts[0].S
	if bn.Kind != dict.KindBlank || ts[1].S != bn {
		t.Errorf("inner triples share no blank subject: %v / %v", ts[0], ts[1])
	}
	if ts[0].O.Value != "http://e.org/o" || ts[1].O.Value != "v" {
		t.Errorf("inner objects mis-parsed: %v %v", ts[0].O, ts[1].O)
	}
	if ts[2].O != bn || ts[2].S.Value != "http://e.org/s" {
		t.Errorf("outer triple does not reference the minted bnode: %v", ts[2])
	}
	// Subject-position list.
	if ts[3].S.Kind != dict.KindBlank || ts[3].S == bn {
		t.Errorf("subject list bnode: %v", ts[3])
	}
	if ts[4].S != ts[3].S || ts[4].O.Value != "http://e.org/s" {
		t.Errorf("subject list statement: %v", ts[4])
	}
	// `[ p o ] .` standing alone.
	if ts[5].S.Kind != dict.KindBlank || ts[5].O.Value != "1" {
		t.Errorf("standalone property list: %v", ts[5])
	}
}

func TestParseTurtleErrorPosition(t *testing.T) {
	src := "@prefix ex: <http://e/> .\nex:a ex:b zz:c ."
	_, err := ParseTurtle(strings.NewReader(src))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is no *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
	if pe.Col == 0 {
		t.Errorf("column not reported: %v", pe)
	}
	if !strings.Contains(err.Error(), "line 2:") {
		t.Errorf("message lacks position: %v", err)
	}
}

func TestParseTurtleMatchesNTriples(t *testing.T) {
	ttl := `@prefix ex: <http://e.org/> .
ex:s ex:p ex:o .
ex:s ex:q "v" .`
	ntSrc := `<http://e.org/s> <http://e.org/p> <http://e.org/o> .
<http://e.org/s> <http://e.org/q> "v" .`
	a, err := ParseTurtle(strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	b := mustReadAll(t, ntSrc)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d triples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("triple %d: %v != %v", i, a[i], b[i])
		}
	}
}
