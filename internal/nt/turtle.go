package nt

import (
	"fmt"
	"io"
	"strings"
	"unicode"

	"srdf/internal/dict"
)

// ParseTurtle reads a pragmatic subset of Turtle: @prefix / PREFIX
// declarations, prefixed names, `a` for rdf:type, object lists with `,`,
// predicate-object lists with `;`, numeric / boolean / string literals
// (with ^^ datatypes and @lang), blank nodes, one-level blank-node
// property lists `[ p o ; ... ]` (in subject or object position, minting
// a fresh blank node), and comments. It does not support collections
// `( )` or property lists nested inside property lists. Parse errors
// carry line and column.
//
// It exists so that examples and tests can state small graphs readably;
// bulk loading uses the line-oriented N-Triples Reader.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &turtleParser{src: string(data), line: 1, prefixes: map[string]string{}}
	return p.parse()
}

type turtleParser struct {
	src      string
	pos      int
	line     int
	prefixes map[string]string
	base     string
	bnodeSeq int
	// bnodeDepth guards the one-level limit on non-empty blank-node
	// property lists.
	bnodeDepth int
	out        []Triple
}

func (p *turtleParser) errf(format string, args ...interface{}) error {
	// 1-based column, derived from the position rather than tracked:
	// every byte before pos has been consumed, so the last newline
	// before it starts the current line.
	col := p.pos - strings.LastIndexByte(p.src[:p.pos], '\n')
	return &ParseError{Line: p.line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.src) }

func (p *turtleParser) peek() byte { return p.src[p.pos] }

func (p *turtleParser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.peek()
		if c == '#' {
			for !p.eof() && p.peek() != '\n' {
				p.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			p.advance()
			continue
		}
		return
	}
}

func (p *turtleParser) parse() ([]Triple, error) {
	for {
		p.skipWS()
		if p.eof() {
			return p.out, nil
		}
		if err := p.statement(); err != nil {
			return p.out, err
		}
	}
}

func (p *turtleParser) statement() error {
	if p.matchKeyword("@prefix") || p.matchKeyword("PREFIX") {
		return p.prefixDecl()
	}
	if p.matchKeyword("@base") || p.matchKeyword("BASE") {
		return p.baseDecl()
	}
	subj, propList, err := p.subject()
	if err != nil {
		return err
	}
	p.skipWS()
	// `[ p o ] .` is a complete statement: the property list already
	// produced its triples and no outer predicate is required.
	if !(propList && !p.eof() && p.peek() == '.') {
		if err := p.predicateObjectList(subj); err != nil {
			return err
		}
		p.skipWS()
	}
	if p.eof() || p.peek() != '.' {
		return p.errf("expected '.' after statement")
	}
	p.advance()
	return nil
}

func (p *turtleParser) matchKeyword(kw string) bool {
	if strings.HasPrefix(p.src[p.pos:], kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *turtleParser) prefixDecl() error {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		p.advance()
	}
	if p.eof() {
		return p.errf("malformed @prefix")
	}
	name := strings.TrimSpace(p.src[start:p.pos])
	p.advance() // ':'
	p.skipWS()
	if p.eof() || p.peek() != '<' {
		return p.errf("@prefix expects an IRI")
	}
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	p.skipWS()
	if !p.eof() && p.peek() == '.' {
		p.advance()
	}
	return nil
}

func (p *turtleParser) baseDecl() error {
	p.skipWS()
	if p.eof() || p.peek() != '<' {
		return p.errf("@base expects an IRI")
	}
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipWS()
	if !p.eof() && p.peek() == '.' {
		p.advance()
	}
	return nil
}

// subject parses the statement subject. The second result reports a
// non-empty blank-node property list `[ p o ]`, whose triples are
// already emitted — such a subject may end the statement on its own.
func (p *turtleParser) subject() (dict.Term, bool, error) {
	p.skipWS()
	if p.eof() {
		return dict.Term{}, false, p.errf("expected subject")
	}
	switch p.peek() {
	case '<':
		iri, err := p.iriRef()
		if err != nil {
			return dict.Term{}, false, err
		}
		return dict.IRI(p.resolve(iri)), false, nil
	case '_':
		term, err := p.blankNode()
		return term, false, err
	case '[':
		term, anon, err := p.bnodePropertyList()
		return term, err == nil && !anon, err
	default:
		iri, err := p.prefixedName()
		if err != nil {
			return dict.Term{}, false, err
		}
		return dict.IRI(iri), false, nil
	}
}

// bnodePropertyList parses `[]` or a one-level `[ p o ; ... ]` at the
// current '[', minting a fresh blank node; for the non-empty form the
// inner triples are appended to the output. anon reports the bare `[]`.
func (p *turtleParser) bnodePropertyList() (term dict.Term, anon bool, err error) {
	p.advance() // '['
	p.skipWS()
	p.bnodeSeq++
	bn := dict.Blank(fmt.Sprintf("anon%d", p.bnodeSeq))
	if !p.eof() && p.peek() == ']' {
		p.advance()
		return bn, true, nil
	}
	if p.bnodeDepth >= 1 {
		return dict.Term{}, false, p.errf("blank node property lists nest at most one level")
	}
	p.bnodeDepth++
	err = p.predicateObjectList(bn)
	p.bnodeDepth--
	if err != nil {
		return dict.Term{}, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != ']' {
		return dict.Term{}, false, p.errf("expected ']' closing blank node property list")
	}
	p.advance()
	return bn, false, nil
}

func (p *turtleParser) predicateObjectList(subj dict.Term) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.out = append(p.out, Triple{S: subj, P: pred, O: obj})
			p.skipWS()
			if !p.eof() && p.peek() == ',' {
				p.advance()
				continue
			}
			break
		}
		p.skipWS()
		if !p.eof() && p.peek() == ';' {
			// ';' separates predicate-object pairs; runs of them are
			// tolerated and a trailing one before '.' or ']' ends the
			// list instead of demanding another predicate.
			for !p.eof() && p.peek() == ';' {
				p.advance()
				p.skipWS()
			}
			if p.eof() || p.peek() == '.' || p.peek() == ']' {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) predicate() (dict.Term, error) {
	if p.eof() {
		return dict.Term{}, p.errf("expected predicate")
	}
	if p.peek() == 'a' {
		// `a` only if followed by whitespace
		if p.pos+1 < len(p.src) {
			nxt := p.src[p.pos+1]
			if nxt == ' ' || nxt == '\t' || nxt == '\n' || nxt == '\r' {
				p.advance()
				return dict.IRI(dict.RDFType), nil
			}
		}
	}
	if p.peek() == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return dict.Term{}, err
		}
		return dict.IRI(p.resolve(iri)), nil
	}
	iri, err := p.prefixedName()
	if err != nil {
		return dict.Term{}, err
	}
	return dict.IRI(iri), nil
}

func (p *turtleParser) object() (dict.Term, error) {
	if p.eof() {
		return dict.Term{}, p.errf("expected object")
	}
	c := p.peek()
	switch {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return dict.Term{}, err
		}
		return dict.IRI(p.resolve(iri)), nil
	case c == '_':
		return p.blankNode()
	case c == '"' || c == '\'':
		return p.turtleLiteral()
	case c == '[':
		term, _, err := p.bnodePropertyList()
		return term, err
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case strings.HasPrefix(p.src[p.pos:], "true") && p.boundaryAt(p.pos+4):
		p.pos += 4
		return dict.TypedLit("true", dict.XSDBool), nil
	case strings.HasPrefix(p.src[p.pos:], "false") && p.boundaryAt(p.pos+5):
		p.pos += 5
		return dict.TypedLit("false", dict.XSDBool), nil
	default:
		iri, err := p.prefixedName()
		if err != nil {
			return dict.Term{}, err
		}
		return dict.IRI(iri), nil
	}
}

func (p *turtleParser) boundaryAt(i int) bool {
	if i >= len(p.src) {
		return true
	}
	c := p.src[i]
	return !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_')
}

func (p *turtleParser) iriRef() (string, error) {
	p.advance() // '<'
	start := p.pos
	for !p.eof() && p.peek() != '>' {
		p.advance()
	}
	if p.eof() {
		return "", p.errf("unterminated IRI")
	}
	raw := p.src[start:p.pos]
	p.advance() // '>'
	return unescape(raw, p.line)
}

func (p *turtleParser) resolve(iri string) string {
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		return p.base + iri
	}
	return iri
}

func (p *turtleParser) blankNode() (dict.Term, error) {
	if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
		return dict.Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for !p.eof() && isLabelChar(p.peek()) {
		p.advance()
	}
	if p.pos == start {
		return dict.Term{}, p.errf("empty blank node label")
	}
	return dict.Blank(p.src[start:p.pos]), nil
}

func (p *turtleParser) prefixedName() (string, error) {
	start := p.pos
	for !p.eof() && (isPNChar(rune(p.peek())) || p.peek() == ':') {
		if p.peek() == ':' {
			prefix := p.src[start:p.pos]
			ns, ok := p.prefixes[prefix]
			if !ok {
				return "", p.errf("undefined prefix %q", prefix)
			}
			p.advance()
			lstart := p.pos
			for !p.eof() && isPNChar(rune(p.peek())) {
				p.advance()
			}
			return ns + p.src[lstart:p.pos], nil
		}
		p.advance()
	}
	return "", p.errf("expected term, got %q", p.src[start:min(p.pos+8, len(p.src))])
}

func isPNChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func (p *turtleParser) turtleLiteral() (dict.Term, error) {
	quote := p.advance()
	var b strings.Builder
	for {
		if p.eof() {
			return dict.Term{}, p.errf("unterminated literal")
		}
		c := p.advance()
		if c == quote {
			break
		}
		if c == '\\' {
			if p.eof() {
				return dict.Term{}, p.errf("dangling escape")
			}
			switch e := p.advance(); e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(e)
			default:
				return dict.Term{}, p.errf("unknown escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	lit := dict.Term{Kind: dict.KindLiteral, Value: b.String()}
	if !p.eof() && p.peek() == '@' {
		p.advance()
		start := p.pos
		for !p.eof() && (isLabelChar(p.peek()) || p.peek() == '-') {
			p.advance()
		}
		lit.Lang = p.src[start:p.pos]
		return lit, nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		if !p.eof() && p.peek() == '<' {
			dt, err := p.iriRef()
			if err != nil {
				return dict.Term{}, err
			}
			lit.Datatype = dt
		} else {
			dt, err := p.prefixedName()
			if err != nil {
				return dict.Term{}, err
			}
			lit.Datatype = dt
		}
	}
	return lit, nil
}

func (p *turtleParser) numericLiteral() (dict.Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.advance()
	}
	dot := false
	for !p.eof() {
		c := p.peek()
		if c >= '0' && c <= '9' {
			p.advance()
			continue
		}
		if c == '.' && !dot {
			// '.' terminates the statement unless followed by a digit
			if p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
				dot = true
				p.advance()
				continue
			}
		}
		break
	}
	lex := p.src[start:p.pos]
	if lex == "" || lex == "+" || lex == "-" {
		return dict.Term{}, p.errf("malformed number")
	}
	if dot {
		return dict.TypedLit(lex, dict.XSDDec), nil
	}
	return dict.TypedLit(lex, dict.XSDInt), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
