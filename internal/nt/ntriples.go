// Package nt parses and serializes RDF triples in the N-Triples format,
// plus a pragmatic subset of Turtle (prefixes, `a`, `;`/`,` lists).
// It is the ingestion front door of the self-organizing store.
package nt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"srdf/internal/dict"
)

// Triple is one parsed statement.
type Triple struct {
	S, P, O dict.Term
}

func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// ParseError describes a malformed statement. Col is the 1-based
// column when the parser knows it (the Turtle parser does; the
// line-oriented N-Triples reader reports whole lines) and 0 otherwise.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("nt: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("nt: line %d: %s", e.Line, e.Msg)
}

// Reader streams triples from N-Triples input. Malformed lines are
// reported but, when the reader is configured as lenient, skipped —
// web-crawled RDF is dirty and a single bad line must not abort a bulk
// load.
type Reader struct {
	sc      *bufio.Scanner
	line    int
	lenient bool
	errs    []error
}

// NewReader returns a strict N-Triples reader: the first malformed line
// stops the stream with an error.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// NewLenientReader returns a reader that skips malformed lines, recording
// them for later inspection via Errs.
func NewLenientReader(r io.Reader) *Reader {
	nr := NewReader(r)
	nr.lenient = true
	return nr
}

// Errs returns the parse errors skipped so far (lenient mode only).
func (r *Reader) Errs() []error { return r.errs }

// Line returns the current line number.
func (r *Reader) Line() int { return r.line }

// Read returns the next triple. It returns io.EOF at end of input.
func (r *Reader) Read() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line, r.line)
		if err != nil {
			if r.lenient {
				r.errs = append(r.errs, err)
				continue
			}
			return Triple{}, err
		}
		return t, nil
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the remaining stream.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

func parseLine(line string, lineNo int) (Triple, error) {
	p := &lineParser{s: line, line: lineNo}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if s.Kind == dict.KindLiteral {
		return Triple{}, p.errf("subject must not be a literal")
	}
	p.skipWS()
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if pr.Kind != dict.KindIRI {
		return Triple{}, p.errf("predicate must be an IRI")
	}
	p.skipWS()
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if !p.consume('.') {
		return Triple{}, p.errf("expected terminating '.'")
	}
	p.skipWS()
	if !p.eof() && !strings.HasPrefix(p.rest(), "#") {
		return Triple{}, p.errf("trailing garbage %q", p.rest())
	}
	return Triple{S: s, P: pr, O: o}, nil
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) eof() bool     { return p.pos >= len(p.s) }
func (p *lineParser) rest() string  { return p.s[p.pos:] }
func (p *lineParser) peek() byte    { return p.s[p.pos] }
func (p *lineParser) advance() byte { c := p.s[p.pos]; p.pos++; return c }

func (p *lineParser) consume(c byte) bool {
	if !p.eof() && p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *lineParser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *lineParser) term() (dict.Term, error) {
	if p.eof() {
		return dict.Term{}, p.errf("unexpected end of statement")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return dict.Term{}, p.errf("unexpected character %q", p.peek())
	}
}

func (p *lineParser) iri() (dict.Term, error) {
	p.pos++ // '<'
	start := p.pos
	for !p.eof() && p.peek() != '>' {
		p.pos++
	}
	if p.eof() {
		return dict.Term{}, p.errf("unterminated IRI")
	}
	raw := p.s[start:p.pos]
	p.pos++ // '>'
	iri, err := unescape(raw, p.line)
	if err != nil {
		return dict.Term{}, err
	}
	if iri == "" {
		return dict.Term{}, p.errf("empty IRI")
	}
	return dict.IRI(iri), nil
}

func (p *lineParser) blank() (dict.Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return dict.Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for !p.eof() && isLabelChar(p.peek()) {
		p.pos++
	}
	if p.pos == start {
		return dict.Term{}, p.errf("empty blank node label")
	}
	return dict.Blank(p.s[start:p.pos]), nil
}

func isLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func (p *lineParser) literal() (dict.Term, error) {
	p.pos++ // '"'
	var b strings.Builder
	for {
		if p.eof() {
			return dict.Term{}, p.errf("unterminated literal")
		}
		c := p.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if p.eof() {
				return dict.Term{}, p.errf("dangling escape")
			}
			e := p.advance()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"', '\\', '\'':
				b.WriteByte(e)
			case 'u', 'U':
				n := 4
				if e == 'U' {
					n = 8
				}
				if p.pos+n > len(p.s) {
					return dict.Term{}, p.errf("truncated \\%c escape", e)
				}
				code, err := strconv.ParseUint(p.s[p.pos:p.pos+n], 16, 32)
				if err != nil {
					return dict.Term{}, p.errf("bad \\%c escape", e)
				}
				p.pos += n
				b.WriteRune(rune(code))
			default:
				return dict.Term{}, p.errf("unknown escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	lit := dict.Term{Kind: dict.KindLiteral, Value: b.String()}
	if !p.eof() && p.peek() == '@' {
		p.pos++
		start := p.pos
		for !p.eof() && (isLabelChar(p.peek()) && p.peek() != '.' || p.peek() == '-') {
			p.pos++
		}
		if p.pos == start {
			return dict.Term{}, p.errf("empty language tag")
		}
		lit.Lang = p.s[start:p.pos]
		return lit, nil
	}
	if strings.HasPrefix(p.rest(), "^^") {
		p.pos += 2
		if p.eof() || p.peek() != '<' {
			return dict.Term{}, p.errf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return dict.Term{}, err
		}
		lit.Datatype = dt.Value
	}
	return lit, nil
}

func unescape(s string, line int) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", &ParseError{Line: line, Msg: "dangling escape in IRI"}
		}
		e := s[i+1]
		n := 0
		switch e {
		case 'u':
			n = 4
		case 'U':
			n = 8
		default:
			return "", &ParseError{Line: line, Msg: "invalid IRI escape"}
		}
		if i+2+n > len(s) {
			return "", &ParseError{Line: line, Msg: "truncated IRI escape"}
		}
		code, err := strconv.ParseUint(s[i+2:i+2+n], 16, 32)
		if err != nil {
			return "", &ParseError{Line: line, Msg: "bad IRI escape"}
		}
		b.WriteRune(rune(code))
		i += 2 + n
	}
	return b.String(), nil
}

// Writer serializes triples as N-Triples.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one triple.
func (w *Writer) Write(t Triple) error {
	if w.err != nil {
		return w.err
	}
	_, w.err = w.w.WriteString(t.String() + "\n")
	return w.err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
