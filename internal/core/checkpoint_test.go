package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// TestConcurrentCheckpoint drives Save concurrently with live writes
// and queries. Snapshot serialization happens under the store mutex
// but the file write/rename/fsync happens off it, so neither side may
// deadlock or observe a torn state, and the final checkpoint must
// round-trip to exactly the live rows.
func TestConcurrentCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.srdf")
	st := persistStore(t, persistOpts(), 200)
	const q = `SELECT ?s ?v WHERE { ?s <http://persist/x> ?v . FILTER (?v >= 10) }`

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // checkpointer
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 20; i++ {
			if err := st.Save(path); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr := nt.Triple{
				S: dict.IRI(fmt.Sprintf("http://persist/live%d", i)),
				P: dict.IRI("http://persist/x"),
				O: dict.IntLit(int64(1000 + i)),
			}
			st.Add(tr)
			if i%3 == 0 {
				st.Delete(tr)
			}
		}
	}()
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Query(q, QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(path, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := rowsOf(t, st, q, plan.ModeRDFScan)
	got := rowsOf(t, re, q, plan.ModeRDFScan)
	sort.Strings(want)
	sort.Strings(got)
	if len(want) != len(got) {
		t.Fatalf("reopened store has %d rows, live store %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d: reopened %q != live %q", i, got[i], want[i])
		}
	}
}
