package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srdf/internal/dict"
	"srdf/internal/fault"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/storage"
)

// latchOpts is persistOpts routed through the failpoint filesystem with
// fast retries and probes, so latch tests run in milliseconds.
func latchOpts(walPath string) Options {
	opts := persistOpts()
	opts.FS = fault.WrapFS(fault.OS())
	opts.WALPath = walPath
	opts.Retry = storage.RetryPolicy{Attempts: 3, Base: 100 * time.Microsecond, Max: time.Millisecond}
	opts.ProbeInterval = time.Millisecond
	return opts
}

func latchStore(t *testing.T, n int) (*Store, string) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
	walPath := filepath.Join(t.TempDir(), "latch.wal")
	st := persistStore(t, latchOpts(walPath), n)
	t.Cleanup(func() { st.Close() })
	return st, walPath
}

func waitHealthy(t *testing.T, st *Store) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.Health().State != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("store never recovered: %+v", st.Health())
		}
		time.Sleep(time.Millisecond)
	}
}

// xQuery scans the one predicate latchTriple writes, so added triples
// show up as one row each.
const xQuery = `SELECT ?s ?x WHERE { ?s <http://persist/x> ?x }`

func latchTriple(i int) nt.Triple {
	return nt.Triple{
		S: dict.IRI(fmt.Sprintf("http://persist/new%d", i)),
		P: dict.IRI("http://persist/x"),
		O: dict.IntLit(int64(1000 + i)),
	}
}

// TestWALSyncTransientFailureRetries: a sync failure that clears within
// the bounded retry budget is invisible — no latch, writes durable.
func TestWALSyncTransientFailureRetries(t *testing.T) {
	st, _ := latchStore(t, 20)

	// Fail the first two fsync attempts; the third (last of the retry
	// budget) succeeds.
	fault.Enable("fs.sync:wal", fault.Spec{Err: fault.ErrInjected, Count: 2})
	if err := st.Add(latchTriple(0)); err != nil {
		t.Fatalf("add: %v", err)
	}
	// the query's refresh syncs the batch through the retry loop
	rows := rowsOf(t, st, xQuery, plan.ModeRDFScan)
	if len(rows) != 21 {
		t.Fatalf("rows after transient fault = %d, want 21", len(rows))
	}
	if st.Health().State != StateHealthy {
		t.Fatalf("transient failure latched the store: %+v", st.Health())
	}
	if got := fault.Fired("fs.sync:wal"); got != 2 {
		t.Fatalf("failpoint fired %d times, want 2", got)
	}
}

// TestWALSyncExhaustedLatchesAndRecovers: a persistent sync failure
// latches read-only past the retry budget — writes rejected with
// ErrReadOnly, reads still serving — and the background probe un-latches
// once the disk heals, making the buffered batch durable after all.
func TestWALSyncExhaustedLatchesAndRecovers(t *testing.T) {
	st, walPath := latchStore(t, 20)
	snapPath := filepath.Join(filepath.Dir(walPath), "latch.srdf")
	if err := st.Save(snapPath); err != nil {
		t.Fatalf("save: %v", err)
	}

	fault.Enable("fs.sync:wal", fault.Spec{Err: fault.ErrInjected})
	if err := st.Add(latchTriple(0)); err != nil {
		t.Fatalf("add buffers in memory, sync is deferred: %v", err)
	}
	// refresh exhausts the retry budget and latches
	rows := rowsOf(t, st, xQuery, plan.ModeRDFScan)
	if len(rows) != 20 {
		t.Fatalf("degraded read must serve the last durable epoch: %d rows, want 20", len(rows))
	}
	h := st.Health()
	if h.State != StateReadOnly || !strings.Contains(h.Err, "wal sync") {
		t.Fatalf("health after exhausted retries: %+v", h)
	}
	if err := st.Add(latchTriple(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write while latched: %v, want ErrReadOnly", err)
	}
	if err := st.Delete(latchTriple(0)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete while latched: %v, want ErrReadOnly", err)
	}

	fault.Disable("fs.sync:wal")
	waitHealthy(t, st)

	// The batch the failed sync owed is durable now, the rejected write
	// never happened, and the store takes writes again.
	if err := st.Add(latchTriple(1)); err != nil {
		t.Fatalf("add after recovery: %v", err)
	}
	want := rowsOf(t, st, xQuery, plan.ModeRDFScan)
	if len(want) != 22 {
		t.Fatalf("rows after recovery = %d, want 22", len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Crash-recovery equivalence: snapshot plus replayed log tail
	// reconstructs the same rows.
	st2, err := OpenStore(snapPath, latchOpts(walPath))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st2.Close()
	if got := rowsOf(t, st2, xQuery, plan.ModeRDFScan); !eqRows(got, want) {
		t.Fatalf("replayed store disagrees:\n got %v\nwant %v", got, want)
	}
}

// TestWALTruncateInterruptedLatchesAndRecovers: a checkpoint whose WAL
// truncate dies half-way leaves the log headerless; the store latches
// (Sync would otherwise write records into a file recovery rejects
// wholesale) and the probe finishes the truncate once the disk heals.
func TestWALTruncateInterruptedLatchesAndRecovers(t *testing.T) {
	st, walPath := latchStore(t, 20)
	snapPath := filepath.Join(filepath.Dir(walPath), "latch.srdf")
	if err := st.Save(snapPath); err != nil {
		t.Fatalf("save: %v", err)
	}

	fault.Enable("fs.truncate:wal", fault.Spec{Err: fault.ErrInjected})
	if err := st.Add(latchTriple(0)); err != nil {
		t.Fatalf("add: %v", err)
	}
	// The checkpoint writes the snapshot (triple included), then fails
	// truncating the log it just folded in.
	err := st.Save(snapPath)
	if err == nil || !strings.Contains(err.Error(), "wal truncate") {
		t.Fatalf("save with broken truncate: %v", err)
	}
	if st.Health().State != StateReadOnly {
		t.Fatalf("interrupted truncate did not latch: %+v", st.Health())
	}

	fault.Disable("fs.truncate:wal")
	waitHealthy(t, st)

	if err := st.Add(latchTriple(1)); err != nil {
		t.Fatalf("add after recovery: %v", err)
	}
	want := rowsOf(t, st, xQuery, plan.ModeRDFScan)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// snapshot + replayed tail reconstruct the same rows
	opts := latchOpts(walPath)
	st2, err := OpenStore(snapPath, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st2.Close()
	if got := rowsOf(t, st2, xQuery, plan.ModeRDFScan); !eqRows(got, want) {
		t.Fatalf("recovered store disagrees:\n got %v\nwant %v", got, want)
	}
}

// TestCheckpointFailureLatchesAndProbeRecovers: a failed snapshot write
// (disk full mid-checkpoint) leaves the previous snapshot intact,
// latches, and is re-run by the background probe — which is the only
// recovery path allowed to do checkpoint I/O.
func TestCheckpointFailureLatchesAndProbeRecovers(t *testing.T) {
	st, walPath := latchStore(t, 20)
	snapPath := filepath.Join(filepath.Dir(walPath), "latch.srdf")
	if err := st.Save(snapPath); err != nil {
		t.Fatalf("save: %v", err)
	}

	fault.Enable("fs.write:snapshot", fault.Spec{Err: fault.ErrInjected})
	if err := st.Add(latchTriple(0)); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := st.Save(snapPath); err == nil {
		t.Fatal("save must fail while snapshot writes are broken")
	}
	if st.Health().State != StateReadOnly {
		t.Fatalf("failed checkpoint did not latch: %+v", st.Health())
	}

	fault.Disable("fs.write:snapshot")
	waitHealthy(t, st)

	want := rowsOf(t, st, xQuery, plan.ModeRDFScan)
	if len(want) != 21 {
		t.Fatalf("rows after recovery = %d, want 21", len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, err := OpenStore(snapPath, latchOpts(walPath))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st2.Close()
	if got := rowsOf(t, st2, xQuery, plan.ModeRDFScan); !eqRows(got, want) {
		t.Fatalf("recovered checkpoint disagrees:\n got %v\nwant %v", got, want)
	}
}

// TestOversizedRecordRejectedWithoutLatching: an operation the log
// cannot hold is screened up front and rejected cleanly — the store
// stays healthy and writable instead of latching durability loss after
// applying the write.
func TestOversizedRecordRejectedWithoutLatching(t *testing.T) {
	st, _ := latchStore(t, 5)

	huge := nt.Triple{
		S: dict.IRI("http://persist/huge"),
		P: dict.IRI("http://persist/x"),
		O: dict.StringLit(strings.Repeat("v", 1<<24)),
	}
	if err := st.Add(huge); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("oversized add: %v, want record-size rejection", err)
	}
	if st.Health().State != StateHealthy {
		t.Fatalf("oversized record latched the store: %+v", st.Health())
	}
	if err := st.Add(latchTriple(0)); err != nil {
		t.Fatalf("small add after rejection: %v", err)
	}
	if rows := rowsOf(t, st, xQuery, plan.ModeRDFScan); len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
}

func eqRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
