package core

import (
	"context"
	"sync"
	"testing"

	"srdf/internal/plan"
)

func organizedLogStore(t *testing.T) *Store {
	t.Helper()
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatalf("organize: %v", err)
	}
	return s
}

// TestQueryLogRecords checks that completed queries — sync, streamed,
// and failed — land in the structured log with the plan-time
// fingerprint and the runtime outcome populated.
func TestQueryLogRecords(t *testing.T) {
	s := organizedLogStore(t)
	qo := QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
	res, err := s.Query(introQuery, qo)
	if err != nil {
		t.Fatal(err)
	}

	recs := s.QueryLog()
	if len(recs) != 1 {
		t.Fatalf("query log has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Outcome != "ok" {
		t.Errorf("outcome = %q, want ok", rec.Outcome)
	}
	if rec.Rows != int64(res.Len()) {
		t.Errorf("rows = %d, want %d", rec.Rows, res.Len())
	}
	if len(rec.TextHash) != 16 {
		t.Errorf("text hash %q is not 16 hex chars", rec.TextHash)
	}
	if rec.CacheHit {
		t.Error("first execution marked as a cache hit")
	}
	if rec.Stars != 1 {
		t.Errorf("stars = %d, want 1", rec.Stars)
	}
	wantPreds := []string{
		"http://lib.example.org/author",
		"http://lib.example.org/isbn",
		"http://lib.example.org/year",
	}
	if len(rec.Predicates) != len(wantPreds) {
		t.Fatalf("predicates = %v, want %v", rec.Predicates, wantPreds)
	}
	for i, p := range wantPreds {
		if rec.Predicates[i] != p {
			t.Errorf("predicates[%d] = %q, want %q", i, rec.Predicates[i], p)
		}
	}
	// ex:year 1996 is a constant-equality column.
	if len(rec.FilterColumns) != 1 || rec.FilterColumns[0] != "http://lib.example.org/year" {
		t.Errorf("filter columns = %v, want [year]", rec.FilterColumns)
	}
	if rec.DurationNS <= 0 {
		t.Errorf("duration = %d, want > 0", rec.DurationNS)
	}

	// Second run resolves through the plan cache and says so.
	if _, err := s.Query(introQuery, qo); err != nil {
		t.Fatal(err)
	}
	recs = s.QueryLog()
	if len(recs) != 2 || !recs[0].CacheHit {
		t.Fatalf("second run not recorded as cache hit: %+v", recs[0])
	}
	// Newest first: both hash to the same text.
	if recs[0].TextHash != recs[1].TextHash {
		t.Error("identical queries got different text hashes")
	}

	// A streamed query records on Close.
	rows, err := s.QueryStream(introQuery, qo)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	recs = s.QueryLog()
	if len(recs) != 3 {
		t.Fatalf("streamed query not recorded: %d records", len(recs))
	}
	if recs[0].Rows != int64(n) || recs[0].Outcome != "ok" {
		t.Errorf("streamed record rows=%d outcome=%q, want rows=%d ok", recs[0].Rows, recs[0].Outcome, n)
	}

	// A bad query never plans, so it is not recorded.
	if _, err := s.Query("SELECT garbage {{{", qo); err == nil {
		t.Fatal("bad query did not fail")
	}
	if got := len(s.QueryLog()); got != 3 {
		t.Fatalf("unplannable query was recorded: %d records", got)
	}
}

// TestQueryLogOutcomes checks the failure classifications.
func TestQueryLogOutcomes(t *testing.T) {
	s := organizedLogStore(t)
	qo := QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := s.QueryStreamCtx(ctx, introQuery, qo)
	if err == nil {
		for rows.Next() {
		}
		rows.Close()
	}
	recs := s.QueryLog()
	if len(recs) == 0 || recs[0].Outcome != "canceled" {
		t.Fatalf("canceled query outcome = %v", recs)
	}

	qo.MemLimit = 1
	memq := `SELECT DISTINCT ?a ?n WHERE {
  ?b <http://lib.example.org/author> ?a . ?b <http://lib.example.org/isbn> ?n }`
	if _, err := s.Query(memq, qo); err == nil {
		t.Fatal("1-byte budget did not fail")
	}
	recs = s.QueryLog()
	if recs[0].Outcome != "mem_budget" {
		t.Fatalf("mem-budget outcome = %q", recs[0].Outcome)
	}
}

// TestQueryLogRingWraps checks the ring keeps only the newest records
// while the cumulative profile keeps counting.
func TestQueryLogRingWraps(t *testing.T) {
	l := newQueryLog(4)
	for i := 0; i < 10; i++ {
		l.record(QueryRecord{Rows: int64(i), Predicates: []string{"p"}})
	}
	recs := l.recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	for i, want := range []int64{9, 8, 7, 6} {
		if recs[i].Rows != want {
			t.Errorf("recent[%d].Rows = %d, want %d (newest first)", i, recs[i].Rows, want)
		}
	}
	wp := l.profile()
	if wp.Queries != 10 || wp.PredicateTouches["p"] != 10 {
		t.Errorf("profile = %+v, want 10 queries / 10 touches", wp)
	}
}

// TestWorkloadProfileConcurrent hammers the log from many goroutines
// and checks the aggregation is exact — the run matters under -race.
func TestWorkloadProfileConcurrent(t *testing.T) {
	s := organizedLogStore(t)
	qo := QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
	const workers, perWorker = 16, 20

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Query(introQuery, qo); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	wp := s.WorkloadProfile()
	if wp.Queries != workers*perWorker {
		t.Fatalf("profile queries = %d, want %d", wp.Queries, workers*perWorker)
	}
	for _, p := range []string{"author", "isbn", "year"} {
		iri := "http://lib.example.org/" + p
		if wp.PredicateTouches[iri] != workers*perWorker {
			t.Errorf("touches[%s] = %d, want %d", p, wp.PredicateTouches[iri], workers*perWorker)
		}
	}
	if wp.FilterColumns["http://lib.example.org/year"] != workers*perWorker {
		t.Errorf("filter counts = %v", wp.FilterColumns)
	}
	q, rows := s.QueryLogCounts()
	if q != workers*perWorker || rows == 0 {
		t.Errorf("counts = (%d, %d)", q, rows)
	}
	if got := len(s.QueryLog()); got != DefaultQueryLogSize {
		t.Errorf("ring holds %d records, want full %d", got, DefaultQueryLogSize)
	}
}
