package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"srdf/internal/exec"
	"srdf/internal/plan"
)

// DefaultQueryLogSize is the ring-buffer capacity of the structured
// query log.
const DefaultQueryLogSize = 256

// QueryRecord is one completed query in the structured query log: the
// plan-time workload fingerprint (what the query touched) plus the
// runtime outcome. The query text itself is recorded only as a hash —
// the log is a workload sensor, not an audit trail.
type QueryRecord struct {
	Time time.Time `json:"time"`
	// TextHash is the FNV-64a hash of the query text, hex-encoded;
	// identical queries share it.
	TextHash string `json:"text_hash"`
	// CacheHit reports that planning resolved through the prepared-plan
	// cache.
	CacheHit bool `json:"cache_hit"`
	// Predicates/Tables/FilterColumns/Stars are the plan's workload
	// fingerprint: predicate IRIs touched, CS tables scanned, columns
	// carrying a range or equality constraint, and the star count.
	Predicates    []string `json:"predicates,omitempty"`
	Tables        []string `json:"tables,omitempty"`
	FilterColumns []string `json:"filter_columns,omitempty"`
	Stars         int      `json:"stars"`
	// DurationNS is the wall time from execution start to completion.
	DurationNS int64 `json:"duration_ns"`
	// Rows is the result row count delivered to the consumer.
	Rows int64 `json:"rows"`
	// Outcome is ok, timeout, canceled, mem_budget, panic, or error.
	Outcome string `json:"outcome"`
}

// WorkloadProfile aggregates the query log into the per-predicate
// signals a self-organization policy reads: how often each predicate is
// touched and how often each column is filtered. Counts are cumulative
// over the store's lifetime, not windowed to the ring buffer.
type WorkloadProfile struct {
	Queries          uint64            `json:"queries"`
	Rows             uint64            `json:"rows"`
	PredicateTouches map[string]uint64 `json:"predicate_touches"`
	FilterColumns    map[string]uint64 `json:"filter_columns"`
}

// queryLog is a fixed-size ring of QueryRecords plus the cumulative
// workload counters. One short mutex hold per completed query — never
// per row — keeps it off the hot path.
type queryLog struct {
	mu      sync.Mutex
	buf     []QueryRecord
	next    int
	filled  bool
	queries uint64
	rows    uint64
	preds   map[string]uint64
	filters map[string]uint64
}

func newQueryLog(size int) *queryLog {
	if size <= 0 {
		size = DefaultQueryLogSize
	}
	return &queryLog{
		buf:     make([]QueryRecord, size),
		preds:   make(map[string]uint64),
		filters: make(map[string]uint64),
	}
}

func (l *queryLog) record(rec QueryRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = rec
	l.next++
	if l.next == len(l.buf) {
		l.next, l.filled = 0, true
	}
	l.queries++
	l.rows += uint64(max64(rec.Rows, 0))
	for _, p := range rec.Predicates {
		l.preds[p]++
	}
	for _, c := range rec.FilterColumns {
		l.filters[c]++
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// recent returns the buffered records, newest first.
func (l *queryLog) recent() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.buf)
	}
	out := make([]QueryRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

func (l *queryLog) profile() WorkloadProfile {
	l.mu.Lock()
	defer l.mu.Unlock()
	wp := WorkloadProfile{
		Queries:          l.queries,
		Rows:             l.rows,
		PredicateTouches: make(map[string]uint64, len(l.preds)),
		FilterColumns:    make(map[string]uint64, len(l.filters)),
	}
	for k, v := range l.preds {
		wp.PredicateTouches[k] = v
	}
	for k, v := range l.filters {
		wp.FilterColumns[k] = v
	}
	return wp
}

// counts returns the cumulative (queries, result rows) totals, for the
// metrics registry.
func (l *queryLog) counts() (queries, rows uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queries, l.rows
}

// newQueryRecord fills the plan-time half of a record; the runtime half
// (duration, rows, outcome) lands at completion.
func newQueryRecord(src string, p *plan.Plan, cached bool) QueryRecord {
	h := fnv.New64a()
	h.Write([]byte(src))
	return QueryRecord{
		Time:          time.Now(),
		TextHash:      fmt.Sprintf("%016x", h.Sum64()),
		CacheHit:      cached,
		Predicates:    p.Prof.Predicates,
		Tables:        p.Prof.Tables,
		FilterColumns: p.Prof.FilterColumns,
		Stars:         p.Prof.Stars,
	}
}

// outcomeOf classifies why a query ended for the log.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, exec.ErrMemBudget):
		return "mem_budget"
	}
	var pe *exec.PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	return "error"
}

// QueryLog returns the last completed queries, newest first — the
// structured log behind /debug/queries.
func (s *Store) QueryLog() []QueryRecord { return s.qlog.recent() }

// WorkloadProfile aggregates the query log into cumulative
// per-predicate touch and per-column filter counts — the sensor the
// self-organization policy reads. This PR ships the sensor, not the
// policy.
func (s *Store) WorkloadProfile() WorkloadProfile { return s.qlog.profile() }

// QueryLogCounts returns the cumulative (queries, result rows) the log
// has recorded, for metrics exposition.
func (s *Store) QueryLogCounts() (queries, rows uint64) { return s.qlog.counts() }

// reqIDKey carries the server's request id through a context into the
// executor Ctx, so executor-side failures correlate with the access
// log.
type reqIDKey struct{}

// WithRequestID tags ctx with a request id for query-log correlation.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom extracts the request id, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
