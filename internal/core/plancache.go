package core

import (
	"container/list"
	"strings"

	"srdf/internal/plan"
)

// planCache memoizes built plans keyed on (query source, query options)
// for a single epoch. Planning is pure given a snapshot — Build reads
// only the immutable StoreView — so a cached plan is exactly the plan a
// fresh Build would produce until the epoch advances. Any published
// change (trickle refresh, Organize, Compact) bumps the epoch, and the
// first lookup on the new epoch drops every stale entry: invalidation
// needs no hooks in the writers.
//
// The cache is guarded by Store.mu (lookups happen inside planLocked,
// which already holds it), so it carries no lock of its own. Cached
// plans are shared by concurrent executions; the only mutable plan
// state, bloom handles, publishes atomically.
type planCache struct {
	cap   int
	epoch uint64
	byKey map[string]*list.Element
	lru   *list.List // front = most recent; values are *planCacheEntry

	hits      uint64
	misses    uint64
	evictions uint64
}

type planCacheEntry struct {
	key string
	p   *plan.Plan
}

// PlanCacheStats is a point-in-time view of the prepared-plan cache.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Cap       int
	Epoch     uint64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		cap:   capacity,
		byKey: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// planCacheKey folds the query source and every plan-affecting option
// into one string. QueryOptions is not comparable (ForceOrder is a
// slice), hence the encoding rather than a struct key.
func planCacheKey(src string, qopts QueryOptions) string {
	var b strings.Builder
	b.Grow(len(src) + 32)
	b.WriteString(src)
	b.WriteByte(0)
	b.WriteByte(byte(qopts.Mode))
	if qopts.ZoneMaps {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	if qopts.NoBloom {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	b.WriteByte(0)
	b.WriteString(qopts.ForceAlgo)
	for _, v := range qopts.ForceOrder {
		b.WriteByte(0)
		b.WriteString(v)
	}
	return b.String()
}

// get returns the cached plan for key at epoch, dropping the whole
// cache first if the epoch has advanced.
func (c *planCache) get(epoch uint64, key string) (*plan.Plan, bool) {
	if c == nil {
		return nil, false
	}
	if epoch != c.epoch {
		c.byKey = make(map[string]*list.Element)
		c.lru.Init()
		c.epoch = epoch
	}
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*planCacheEntry).p, true
}

// put inserts a freshly built plan, evicting the least-recently-used
// entry past capacity. get for the same epoch must precede it (get owns
// the epoch rollover).
func (c *planCache) put(epoch uint64, key string, p *plan.Plan) {
	if c == nil || epoch != c.epoch {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planCacheEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&planCacheEntry{key: key, p: p})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.byKey, el.Value.(*planCacheEntry).key)
		c.evictions++
	}
}

func (c *planCache) stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.lru.Len(),
		Cap:       c.cap,
		Epoch:     c.epoch,
	}
}
