package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

func newTestStore(t *testing.T, turtle string, minSupport int) *Store {
	t.Helper()
	opts := DefaultOptions()
	opts.CS.MinSupport = minSupport
	s := NewStore(opts)
	if _, err := s.LoadTurtle(strings.NewReader(turtle)); err != nil {
		t.Fatalf("load: %v", err)
	}
	return s
}

const libSrc = `
@prefix ex: <http://lib.example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:b1 a ex:Book ; ex:author ex:a1 ; ex:year 1996 ; ex:isbn "111" .
ex:b2 a ex:Book ; ex:author ex:a2 ; ex:year 1996 ; ex:isbn "222" .
ex:b3 a ex:Book ; ex:author ex:a1 ; ex:year 1998 ; ex:isbn "333" .
ex:b4 a ex:Book ; ex:author ex:a3 ; ex:year 2001 ; ex:isbn "444" .
ex:a1 ex:name "Alice" ; ex:born 1960 .
ex:a2 ex:name "Bob" ; ex:born 1971 .
ex:a3 ex:name "Carol" ; ex:born 1980 .
ex:stray ex:oddity "noise" .
`

// the introduction's motivating query: author + isbn of books from 1996
const introQuery = `
PREFIX ex: <http://lib.example.org/>
SELECT ?a ?n WHERE {
  ?b ex:author ?a .
  ?b ex:year 1996 .
  ?b ex:isbn ?n .
}`

func sortedRows(res fmt.Stringer) []string {
	lines := strings.Split(strings.TrimSpace(res.String()), "\n")
	if len(lines) <= 1 {
		return nil
	}
	rows := lines[1:]
	sort.Strings(rows)
	return rows
}

func TestIntroQueryBothModes(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []plan.Mode{plan.ModeDefault, plan.ModeRDFScan} {
		res, err := s.Query(introQuery, QueryOptions{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Len() != 2 {
			t.Fatalf("mode %v: %d rows, want 2 (b1,b2):\n%s", mode, res.Len(), res)
		}
	}
}

func TestQueryBeforeOrganize(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	res, err := s.Query(introQuery, QueryOptions{Mode: plan.ModeDefault})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("unorganized store: %d rows, want 2", res.Len())
	}
	// RDFscan mode transparently falls back to Default before Organize
	res2, err := s.Query(introQuery, QueryOptions{Mode: plan.ModeRDFScan})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 2 {
		t.Fatalf("RDFscan fallback: %d rows", res2.Len())
	}
}

func TestOrganizeReport(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	rep, err := s.Organize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 2 {
		t.Errorf("tables = %d, want 2 (books, authors): %s", rep.Tables, rep)
	}
	if rep.Coverage < 0.8 {
		t.Errorf("coverage = %v", rep.Coverage)
	}
	if rep.IrregularTriples == 0 {
		t.Error("stray triples should be irregular")
	}
	if !strings.Contains(s.SQLSchema(), "CREATE TABLE") {
		t.Error("SQLSchema should render DDL")
	}
}

func TestFKJoinAcrossTables(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	q := `
PREFIX ex: <http://lib.example.org/>
SELECT ?n ?isbn WHERE {
  ?b ex:author ?a .
  ?b ex:isbn ?isbn .
  ?a ex:name ?n .
  FILTER (?n = "Alice")
}`
	for _, mode := range []plan.Mode{plan.ModeDefault, plan.ModeRDFScan} {
		res, err := s.Query(q, QueryOptions{Mode: mode, ZoneMaps: true})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Len() != 2 {
			t.Fatalf("mode %v: %d rows, want 2 (111, 333):\n%s", mode, res.Len(), res)
		}
	}
}

func TestAggregationQuery(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	q := `
PREFIX ex: <http://lib.example.org/>
SELECT ?y (COUNT(*) AS ?n) WHERE {
  ?b ex:year ?y .
  ?b ex:isbn ?i .
} GROUP BY ?y ORDER BY DESC(?n) ?y`
	res, err := s.Query(q, QueryOptions{Mode: plan.ModeRDFScan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d, want 3:\n%s", res.Len(), res)
	}
	// 1996 has 2 books and sorts first
	if res.Rows[0][0].Lexical() != "1996" || res.Rows[0][1].Int != 2 {
		t.Errorf("top group: %v %v", res.Rows[0][0], res.Rows[0][1])
	}
}

func TestExplainJoinCounts(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	expDefault, err := s.Explain(introQuery, QueryOptions{Mode: plan.ModeDefault})
	if err != nil {
		t.Fatal(err)
	}
	expRDF, err := s.Explain(introQuery, QueryOptions{Mode: plan.ModeRDFScan})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 4a: the default plan needs k-1 = 2 self-joins; RDFscan none.
	if !strings.Contains(expDefault, "joins=2") {
		t.Errorf("default plan:\n%s", expDefault)
	}
	if !strings.Contains(expRDF, "joins=0") || !strings.Contains(expRDF, "RDFscan") {
		t.Errorf("rdfscan plan:\n%s", expRDF)
	}
}

func TestTrickleInsertAfterOrganize(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	// add a new book via trickle
	s.Add(nt.Triple{S: dict.IRI("http://lib.example.org/b9"), P: dict.IRI("http://lib.example.org/author"), O: dict.IRI("http://lib.example.org/a1")})
	s.Add(nt.Triple{S: dict.IRI("http://lib.example.org/b9"), P: dict.IRI("http://lib.example.org/year"), O: dict.IntLit(1996)})
	s.Add(nt.Triple{S: dict.IRI("http://lib.example.org/b9"), P: dict.IRI("http://lib.example.org/isbn"), O: dict.StringLit("999")})
	for _, mode := range []plan.Mode{plan.ModeDefault, plan.ModeRDFScan} {
		res, err := s.Query(introQuery, QueryOptions{Mode: mode, ZoneMaps: true})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Len() != 3 {
			t.Fatalf("mode %v after trickle: %d rows, want 3:\n%s", mode, res.Len(), res)
		}
	}
	// re-organize folds the delta in
	rep, err := s.Organize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IrregularTriples > 2 { // stray noise only
		t.Errorf("after reorganize, irregular = %d", rep.IrregularTriples)
	}
	res, _ := s.Query(introQuery, QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
	if res.Len() != 3 {
		t.Errorf("after reorganize: %d rows", res.Len())
	}
}

func TestDuplicateTriplesDropped(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	tr := nt.Triple{S: dict.IRI("http://lib.example.org/b1"), P: dict.IRI("http://lib.example.org/isbn"), O: dict.StringLit("111")}
	s.Add(tr)
	s.Add(tr)
	rep, err := s.Organize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicatesDropped < 2 {
		t.Errorf("duplicates dropped = %d, want >= 2", rep.DuplicatesDropped)
	}
}

func TestStats(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	st := s.Stats()
	if st.Organized || st.Triples == 0 {
		t.Errorf("pre-organize stats: %+v", st)
	}
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if !st.Organized || st.Tables != 2 {
		t.Errorf("post-organize stats: %+v", st)
	}
}

func TestSelectAllGeneric(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT * WHERE { ?s ?p ?o }`, QueryOptions{Mode: plan.ModeRDFScan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != s.NumTriples() {
		t.Errorf("select * rows = %d, want %d", res.Len(), s.NumTriples())
	}
}

func TestConstantSubjectPattern(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	q := `PREFIX ex: <http://lib.example.org/>
SELECT ?o WHERE { ex:b1 ex:isbn ?o }`
	res, err := s.Query(q, QueryOptions{Mode: plan.ModeRDFScan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Lexical() != "111" {
		t.Errorf("constant subject: %v", res)
	}
}

func TestUnknownTermYieldsEmpty(t *testing.T) {
	s := newTestStore(t, libSrc, 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT ?s WHERE { ?s <http://nowhere/p> ?o }`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("unknown predicate should match nothing")
	}
}

// --- the master correctness property ---

// genGraph produces a random structured graph: several "classes" with
// typed properties, FK links, missing values, multi-valued props, and
// noise triples.
func genGraph(seed int64, nSubj int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("@prefix e: <http://g/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n")
	nDims := 3 + rng.Intn(3)
	for d := 0; d < nDims; d++ {
		fmt.Fprintf(&b, "e:dim%d e:dname \"d%d\" ; e:dcode %d .\n", d, d, d*7)
	}
	for i := 0; i < nSubj; i++ {
		cls := rng.Intn(2)
		switch cls {
		case 0:
			fmt.Fprintf(&b, "e:fact%d e:val %d ; e:ref e:dim%d", i, rng.Intn(50), rng.Intn(nDims))
			if rng.Intn(4) > 0 {
				fmt.Fprintf(&b, " ; e:score %d.5", rng.Intn(20))
			}
			if rng.Intn(6) == 0 {
				fmt.Fprintf(&b, " ; e:tag \"t%d\" , \"t%d\"", rng.Intn(5), 5+rng.Intn(5))
			}
			b.WriteString(" .\n")
		default:
			fmt.Fprintf(&b, "e:ev%d e:when \"19%02d-%02d-%02d\"^^xsd:date ; e:val %d .\n",
				i, 90+rng.Intn(9), 1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(50))
		}
		if rng.Intn(15) == 0 {
			fmt.Fprintf(&b, "e:noise%d e:odd%d \"x\" .\n", i, rng.Intn(8))
		}
	}
	return b.String()
}

var equivQueries = []string{
	`PREFIX e: <http://g/> SELECT ?s ?v WHERE { ?s e:val ?v . ?s e:ref ?r . }`,
	`PREFIX e: <http://g/> SELECT ?s ?v ?sc WHERE { ?s e:val ?v . ?s e:score ?sc . FILTER (?v < 25) }`,
	`PREFIX e: <http://g/> SELECT ?s ?t WHERE { ?s e:tag ?t . ?s e:val ?v . }`,
	`PREFIX e: <http://g/> SELECT ?s ?dn WHERE { ?s e:ref ?d . ?d e:dname ?dn . }`,
	`PREFIX e: <http://g/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s ?w WHERE { ?s e:when ?w . ?s e:val ?v . FILTER (?w >= "1993-01-01"^^xsd:date && ?w < "1996-06-15"^^xsd:date) }`,
	`PREFIX e: <http://g/> SELECT (SUM(?v) AS ?tot) (COUNT(*) AS ?n) WHERE { ?s e:val ?v . FILTER (?v >= 10) }`,
	`PREFIX e: <http://g/> SELECT ?d (COUNT(*) AS ?n) WHERE { ?s e:ref ?d . ?s e:val ?v . } GROUP BY ?d ORDER BY DESC(?n)`,
	`PREFIX e: <http://g/> SELECT ?s WHERE { ?s e:odd0 ?x . }`,
	`PREFIX e: <http://g/> SELECT DISTINCT ?v WHERE { ?s e:val ?v . } ORDER BY ?v LIMIT 5`,
}

// TestPlanEquivalence is the correctness keystone: on randomized
// structured+dirty data, all four configurations (Default/RDFscan ×
// zonemaps on/off) must return identical result multisets, before and
// after trickle updates.
func TestPlanEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		src := genGraph(seed, 120)
		opts := DefaultOptions()
		opts.CS.MinSupport = 4
		s := NewStore(opts)
		if _, err := s.LoadTurtle(strings.NewReader(src)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Organize(); err != nil {
			t.Fatal(err)
		}
		configs := []QueryOptions{
			{Mode: plan.ModeDefault},
			{Mode: plan.ModeDefault, ZoneMaps: true},
			{Mode: plan.ModeRDFScan},
			{Mode: plan.ModeRDFScan, ZoneMaps: true},
		}
		for qi, q := range equivQueries {
			var ref []string
			for ci, cfg := range configs {
				res, err := s.Query(q, cfg)
				if err != nil {
					t.Fatalf("seed %d q%d cfg%d: %v", seed, qi, ci, err)
				}
				rows := sortedRows(res)
				if ci == 0 {
					ref = rows
					continue
				}
				if !equalStrings(ref, rows) {
					t.Fatalf("seed %d q%d: cfg%d disagrees with Default\nquery: %s\ndefault (%d rows): %v\ncfg (%d rows): %v",
						seed, qi, ci, q, len(ref), sample(ref), len(rows), sample(rows))
				}
			}
		}
	}
}

func TestPlanEquivalenceAfterTrickle(t *testing.T) {
	src := genGraph(99, 100)
	opts := DefaultOptions()
	opts.CS.MinSupport = 4
	s := NewStore(opts)
	if _, err := s.LoadTurtle(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	// trickle in new facts, including a brand-new literal (which breaks
	// literal ordering and must disable range pushdown, not correctness)
	for i := 0; i < 10; i++ {
		s.Add(nt.Triple{
			S: dict.IRI(fmt.Sprintf("http://g/fact9%d", i)),
			P: dict.IRI("http://g/val"),
			O: dict.IntLit(int64(1000 + i)),
		})
		s.Add(nt.Triple{
			S: dict.IRI(fmt.Sprintf("http://g/fact9%d", i)),
			P: dict.IRI("http://g/ref"),
			O: dict.IRI("http://g/dim0"),
		})
	}
	configs := []QueryOptions{
		{Mode: plan.ModeDefault},
		{Mode: plan.ModeRDFScan},
		{Mode: plan.ModeRDFScan, ZoneMaps: true},
	}
	for qi, q := range equivQueries {
		var ref []string
		for ci, cfg := range configs {
			res, err := s.Query(q, cfg)
			if err != nil {
				t.Fatalf("q%d cfg%d: %v", qi, ci, err)
			}
			rows := sortedRows(res)
			if ci == 0 {
				ref = rows
				continue
			}
			if !equalStrings(ref, rows) {
				t.Fatalf("q%d cfg%d disagrees after trickle\nquery: %s\nwant %d rows, got %d",
					qi, ci, q, len(ref), len(rows))
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sample(rows []string) []string {
	if len(rows) > 6 {
		return rows[:6]
	}
	return rows
}

func TestWorkloadDrivenSortKey(t *testing.T) {
	// A table whose auto sort key would be the date column; the observed
	// workload filters on the integer "size" column instead, so after
	// re-Organize the store should sub-order by size.
	var b strings.Builder
	b.WriteString("@prefix e: <http://w/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "e:x%d e:made \"19%02d-01-01\"^^xsd:date ; e:size %d .\n", i, 90+(i%9), (i*37)%100)
	}
	s := newTestStore(t, b.String(), 3)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	// run the size-filtered query a few times (the workload)
	q := `PREFIX e: <http://w/> SELECT ?s WHERE { ?s e:size ?z . ?s e:made ?m . FILTER (?z >= 40 && ?z < 60) }`
	for i := 0; i < 5; i++ {
		if _, err := s.Query(q, QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	// the table's size column must now be physically ascending
	var sizeAscending bool
	for _, tab := range s.Catalog().Visible() {
		col := tab.ColByName("size")
		if col == nil {
			continue
		}
		asc := true
		sizeVals := col.Data.Values()
		for i := 1; i < tab.Count; i++ {
			if sizeVals[i] < sizeVals[i-1] {
				asc = false
				break
			}
		}
		sizeAscending = asc
	}
	if !sizeAscending {
		t.Error("workload-driven sort key not applied: size column not ascending")
	}
	// and the query still returns the right rows
	res, err := s.Query(q, QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
	if err != nil {
		t.Fatal(err)
	}
	resDef, err := s.Query(q, QueryOptions{Mode: plan.ModeDefault})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != resDef.Len() || res.Len() == 0 {
		t.Errorf("rows: rdfscan=%d default=%d", res.Len(), resDef.Len())
	}
}
