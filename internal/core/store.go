// Package core is the self-organizing RDF store: it ties ingestion,
// characteristic-set discovery, subject clustering, the relational
// catalog, and the two query-plan families into one engine — the system
// Figure 1 of the paper sketches inside the MonetDB kernel.
//
// Lifecycle: load triples (bulk or trickle), call Organize to let the
// store discover and materialize its emergent schema, then query in
// either plan mode. After Organize the store stays live: Add and Delete
// land in a mutable delta layer (per-table delta rows behind the sealed
// segments, tombstone bitmaps, and the irregular leftover store), each
// changed subject is re-assigned to an existing CS table by incremental
// characteristic-set matching, and Compact merges the delta back into
// freshly sealed segments — so the schema keeps fitting the data without
// a full rebuild.
//
// Concurrency: queries execute against an immutable epoch snapshot
// (catalog version + index set) taken under the store mutex at plan
// time, so readers never block writers and a stream started before an
// Add/Delete/Compact keeps a consistent view. Only Organize — which
// renumbers the dictionary — excludes readers, via a reader gate.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"srdf/internal/cluster"
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/fault"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/storage"
	"srdf/internal/triples"
)

// DefaultCompactThreshold is the delta size (delta rows + tombstones)
// past which a refresh triggers an automatic Compact.
const DefaultCompactThreshold = 4096

// Options configures a Store.
type Options struct {
	// CS tunes schema discovery.
	CS cs.Options
	// Cluster tunes subject clustering.
	Cluster cluster.Options
	// PoolPages caps the simulated buffer pool (<=0: unlimited).
	PoolPages int
	// PoolBytes caps the real memory the buffer pool lets decoded
	// sealed segments occupy (<=0: unlimited). Past the budget, the
	// least-recently-used unpinned segments are evicted back to their
	// on-disk encoded form and fault in again on the next touch.
	PoolBytes int64
	// Dedup removes duplicate triples on Organize (RDF graphs are sets).
	Dedup bool
	// Parallelism is the morsel-scan worker count for RDFscan; <=1
	// scans sequentially.
	Parallelism int
	// CompactThreshold is the delta size (delta rows + tombstones) that
	// auto-triggers Compact during a refresh; 0 means
	// DefaultCompactThreshold, negative disables auto-compaction.
	CompactThreshold int
	// WALPath attaches a write-ahead log: every trickle Add/Delete is
	// recorded lexically and fsynced at batch boundaries (before a
	// refresh publishes, at checkpoints, and on Close), so the delta
	// layer survives crashes. Existing records are replayed through the
	// ordinary update path when the store is created or opened. Bulk
	// loads are not logged — checkpoint them with Save.
	WALPath string
	// PlanCache sizes the prepared-plan cache (entries). 0 uses
	// DefaultPlanCacheSize; negative disables caching.
	PlanCache int
	// FS routes every durability syscall (WAL, snapshot) through an
	// injectable filesystem — the fault-injection seam. Nil uses the
	// real one.
	FS fault.FS
	// Retry bounds immediate retries of failed durability writes
	// before the store latches read-only. Zero uses
	// storage.DefaultRetry.
	Retry storage.RetryPolicy
	// ProbeInterval is the base backoff between recovery probes while
	// read-only (doubles per failure, capped at 32×). 0 uses
	// DefaultProbeInterval.
	ProbeInterval time.Duration
}

// DefaultPlanCacheSize is the prepared-plan cache capacity when
// Options.PlanCache is 0.
const DefaultPlanCacheSize = 256

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{
		CS:      cs.DefaultOptions(),
		Cluster: cluster.DefaultOptions(),
		Dedup:   true,
	}
}

// QueryOptions selects the plan family per query, mirroring Table I's
// configuration axes.
type QueryOptions struct {
	Mode     plan.Mode
	ZoneMaps bool
	// ForceAlgo pins the physical join algorithm ("hash", "merge",
	// "rdfjoin") wherever applicable — for testing and plan-quality
	// comparison, not production use.
	ForceAlgo string
	// NoBloom disables runtime bloom filters on hash joins.
	NoBloom bool
	// ForceOrder fixes the left-deep star join order by subject
	// variable.
	ForceOrder []string
	// MemLimit bounds the bytes the query's materializing operators
	// (hash-join builds, aggregation state, sort rows, DISTINCT keys)
	// may retain; 0 is unlimited. An exceeded budget fails the one query
	// with exec.ErrMemBudget — concurrent queries and the store itself
	// are unaffected. Not part of the plan-cache key: it changes
	// admission, not the plan.
	MemLimit int64
}

// snapshot is the immutable state one query executes against: once
// published it is never mutated — writers build replacements (indexes
// are rebuilt wholesale, the catalog is cloned copy-on-write), so
// concurrent readers keep a consistent epoch.
type snapshot struct {
	epoch           uint64
	dict            *dict.Dictionary
	idx             *triples.IndexSet
	schema          *cs.Schema
	cat             *relational.Catalog
	organized       bool
	literalsOrdered bool
	ctx             *exec.Ctx
}

func (sn *snapshot) view() *plan.StoreView {
	return &plan.StoreView{
		Dict:            sn.dict,
		Idx:             sn.idx,
		Schema:          sn.schema,
		Cat:             sn.cat,
		Organized:       sn.organized,
		LiteralsOrdered: sn.literalsOrdered,
	}
}

// Store is the self-organizing RDF store.
type Store struct {
	// mu guards all organizational state. Writers hold it briefly;
	// queries hold it only through refresh + planning, then execute
	// against the published snapshot without any store lock.
	mu sync.Mutex
	// gate holds queries (read side, for their full lifetime) apart from
	// Organize (write side): Organize renumbers the shared dictionary in
	// place, the one mutation snapshots cannot hide.
	gate sync.RWMutex

	opts Options

	dict  *dict.Dictionary
	table *triples.Table
	idx   *triples.IndexSet
	pool  *colstore.BufferPool
	// blob is the mapped (or heap-fallback) snapshot backing the lazy
	// segments of an opened store; nil for stores built in memory. It
	// must stay open while any reader can still fault a segment in, so
	// it is released only on Close.
	blob *storage.Blob

	schema    *cs.Schema
	clusterIn *cluster.Info
	cat       *relational.Catalog
	organized bool
	// literalsOrdered goes false when trickle inserts mint new literals
	// after Organize.
	literalsOrdered bool

	idxDirty bool
	// touched collects subjects whose residence must be re-resolved by
	// the next refresh (post-Organize adds and deletes).
	touched map[dict.OID]struct{}
	// deltaSet tracks post-Organize adds not yet folded into the
	// indexes, for duplicate suppression (RDF graphs are sets).
	deltaSet map[triples.Triple]struct{}
	// delPending holds requested deletions, applied in one batch pass.
	delPending map[triples.Triple]struct{}
	// deadSet tracks deletions already applied to the table but not yet
	// reflected in the indexes (NumTriples applies deletes without the
	// full refresh), so presence checks do not trust the stale index.
	deadSet map[triples.Triple]struct{}

	epoch uint64
	snap  *snapshot

	// snapshotPath is the checkpoint target: once set (by Save or
	// OpenStore), Organize and Compact write a fresh snapshot there and
	// truncate the WAL. wal is nil when no log is attached. walErr
	// records the last sync/truncate failure (the pending batch stays
	// buffered for the retry); walLost records an operation that could
	// not be logged at all, which only a successful snapshot checkpoint
	// — capturing the in-memory state the log missed — repairs. Either
	// one past the retry budget latches the explicit read-only mode
	// below instead of fail-stopping queries.
	snapshotPath string
	wal          *storage.WAL
	walErr       error
	walLost      error
	// fs is the injectable filesystem all durability I/O goes through.
	fs fault.FS

	// Read-only latch (graceful degradation): when durability writes
	// fail past the retry budget the store rejects writes with
	// ErrReadOnly and keeps serving reads from the last published
	// epoch; a background prober (probeC non-nil while running)
	// re-attempts the failed operation with exponential backoff and
	// un-latches when the disk recovers. ckptPending marks a failed
	// checkpoint that recovery must re-run.
	ro          bool
	roCause     error
	roSince     time.Time
	roProbes    int
	roNext      time.Time
	probeC      chan struct{}
	ckptPending bool

	// ckptMu serializes checkpoint file I/O, which happens with mu
	// RELEASED so a multi-second snapshot write never stalls concurrent
	// queries or trickle writes. Lock order is strictly mu → unlock mu →
	// ckptMu (never ckptMu while holding mu). ckptSeq numbers checkpoint
	// attempts (under mu); ckptWritten (under ckptMu) is the highest
	// attempt whose bytes reached disk, so an attempt overtaken while
	// waiting for ckptMu skips its stale write instead of clobbering a
	// newer snapshot.
	ckptMu      sync.Mutex
	ckptSeq     uint64
	ckptWritten uint64

	// workload counts, per predicate IRI, how often queries put a range
	// or equality filter on that predicate's object — the signal the
	// next Organize uses to choose subject-clustering sort keys
	// (research question iii / the §II-D acknowledgment that sort-key
	// choice needs workload analysis).
	workload map[string]int

	// plans is the prepared-plan cache (nil when disabled), guarded by
	// mu like the rest of the planning state.
	plans *planCache

	// qlog is the structured query log: a ring of completed
	// QueryRecords plus cumulative workload counters, self-locked (one
	// short hold per completed query).
	qlog *queryLog

	// born marks store creation, for uptime reporting.
	born time.Time
}

// NewStore creates an empty store. With Options.WALPath set, an existing
// log is replayed into the new store and subsequent trickle writes are
// recorded; a log that cannot be opened latches an error surfaced by the
// first Save, Close, or checkpoint.
func NewStore(opts Options) *Store {
	s := newBareStore(opts)
	if opts.WALPath != "" {
		s.attachWALLocked(opts.WALPath)
	}
	return s
}

func newBareStore(opts Options) *Store {
	cacheCap := opts.PlanCache
	if cacheCap == 0 {
		cacheCap = DefaultPlanCacheSize
	}
	fs := opts.FS
	if fs == nil {
		fs = fault.OS()
	}
	return &Store{
		opts:       opts,
		fs:         fs,
		dict:       dict.New(),
		table:      triples.NewTable(0),
		pool:       newPool(opts),
		touched:    make(map[dict.OID]struct{}),
		deltaSet:   make(map[triples.Triple]struct{}),
		delPending: make(map[triples.Triple]struct{}),
		deadSet:    make(map[triples.Triple]struct{}),
		workload:   make(map[string]int),
		plans:      newPlanCache(cacheCap),
		qlog:       newQueryLog(DefaultQueryLogSize),
		born:       time.Now(),
	}
}

// newPool builds the store's buffer pool from the options: the page
// simulation sized by PoolPages, the real decoded-byte budget by
// PoolBytes.
func newPool(opts Options) *colstore.BufferPool {
	p := colstore.NewPool(opts.PoolPages)
	p.SetBudget(opts.PoolBytes)
	return p
}

// OpenStore loads a snapshot written by Save and attaches it as the
// store's checkpoint target. Opening is cheap and out-of-core: the
// file is mapped read-only where the platform allows (whole-file read
// fallback otherwise), sealed segment payloads are checksummed but not
// decoded (they fault in on first scan, visible in
// PoolStats.SegmentsLazy/SegmentsDecoded, and under Options.PoolBytes
// pressure are evicted back to the mapping), and the six projections
// are not rebuilt until the first query or update needs the store's
// indexes — Open itself never pays the sort. With
// Options.WALPath set, the log's surviving records are replayed through
// the ordinary delta path before the store is returned — crash recovery
// is exactly "load latest snapshot, re-apply the logged tail".
func OpenStore(path string, opts Options) (*Store, error) {
	s := newBareStore(opts)
	snap, blob, err := storage.OpenFileFS(s.fs, path, s.pool)
	if err != nil {
		return nil, err
	}
	s.blob = blob
	s.dict = snap.Dict
	s.table = snap.Triples
	s.schema = snap.Schema
	s.cat = snap.Catalog
	s.organized = snap.Organized
	s.literalsOrdered = snap.LiteralsOrdered
	s.snapshotPath = path
	if opts.WALPath != "" {
		s.attachWALLocked(opts.WALPath)
		if s.walErr != nil {
			s.stopProbeLocked()
			return nil, s.walErr
		}
	}
	return s, nil
}

// attachWALLocked opens (or creates) the log, replays its records
// through the ordinary update path, and starts recording. A log that
// cannot be opened latches the store read-only — writes without a
// durable record are rejected, not silently accepted — and the
// background probe keeps re-trying the attach.
func (s *Store) attachWALLocked(path string) {
	w, ops, err := storage.OpenWALFS(s.fs, path)
	if err != nil {
		s.walErr = fmt.Errorf("core: wal: %w", err)
		s.latchLocked(s.walErr)
		return
	}
	// s.wal is still nil during replay, so the replayed operations are
	// not re-appended to the log they came from.
	for _, op := range ops {
		if op.Del {
			s.deleteLocked(op.T)
		} else {
			s.addLocked(op.T)
		}
	}
	s.wal = w
}

// logLocked records one applied trickle operation. An operation the
// log cannot hold (the write path screens sizes up front, so this is a
// should-not-happen guard) latches walLost and read-only mode: the
// write is live in memory but has no durable copy until a snapshot
// checkpoint captures it.
func (s *Store) logLocked(del bool, t nt.Triple) {
	if s.wal == nil {
		return
	}
	if err := s.wal.Append(storage.Op{Del: del, T: t}); err != nil {
		if s.walLost == nil {
			s.walLost = fmt.Errorf("core: wal append: %w", err)
		}
		s.latchLocked(s.walLost)
	}
}

// syncWALLocked flushes the pending batch with the bounded immediate
// retry budget. Exhausting it latches the store read-only: the pending
// records stay buffered, recovery probes keep retrying them, and a
// successful sync un-latches.
func (s *Store) syncWALLocked() {
	if s.wal == nil {
		return
	}
	if err := storage.Retry(s.retryPolicy(), s.wal.Sync); err != nil {
		s.walErr = fmt.Errorf("core: wal sync: %w", err)
		s.latchLocked(s.walErr)
		return
	}
	s.walErr = nil
}

// checkpointLocked makes the current state durable: with a snapshot path
// attached it serializes a fresh snapshot under the store mutex, then
// RELEASES the mutex for the slow part — file write, fsync, atomic
// rename — so checkpoint I/O never stalls concurrent queries or trickle
// writes. The logged operations are folded into the snapshot, and
// replaying any tail that survives a badly timed crash is idempotent
// because the graph is a set. The WAL is truncated only if no records
// were appended while the mutex was released (appended records are not
// in the written snapshot; they stay logged and replay idempotently over
// it). With only a WAL attached it syncs the pending batch. A successful
// checkpoint clears a latched sync failure (the records the failed sync
// owed are in the snapshot now), so transient disk trouble never wedges
// the store permanently.
//
// Called with s.mu held; returns with s.mu held.
func (s *Store) checkpointLocked() error {
	if s.wal == nil && s.walErr != nil {
		// the WAL never attached; Close clears this to proceed without one
		return s.walErr
	}
	if s.snapshotPath == "" {
		if s.wal != nil {
			s.syncWALLocked()
			return s.walErr
		}
		return nil
	}
	// Serialize under mu: the byte slice is an immutable copy of this
	// instant's state, so the file write needs no lock at all.
	data, err := storage.Marshal(&storage.Snapshot{
		Organized:       s.organized,
		LiteralsOrdered: s.literalsOrdered,
		Dict:            s.dict,
		Triples:         s.table,
		Schema:          s.schema,
		Catalog:         s.cat,
	})
	if err != nil {
		return err
	}
	path := s.snapshotPath
	recs0 := -1
	if s.wal != nil {
		recs0 = s.wal.Records()
	}
	lost0 := s.walLost
	s.ckptSeq++
	seq := s.ckptSeq

	retry := s.retryPolicy()
	s.mu.Unlock()
	s.ckptMu.Lock()
	var werr error
	if s.ckptWritten < seq {
		werr = storage.Retry(retry, func() error {
			return storage.WriteFileBytesFS(s.fs, path, data)
		})
		if werr == nil {
			s.ckptWritten = seq
		}
	}
	// else: a later checkpoint already wrote a newer snapshot to this
	// path while we waited; ours is stale, and skipping it is success.
	s.ckptMu.Unlock()
	s.mu.Lock()

	if werr != nil {
		// Disk full (or worse) mid-checkpoint: the previous snapshot is
		// intact (the write is temp+rename atomic), the WAL still holds
		// its records, but durability maintenance has failed past the
		// retry budget — latch, and let recovery re-run the checkpoint.
		s.ckptPending = true
		s.latchLocked(fmt.Errorf("core: checkpoint: %w", werr))
		return werr
	}
	if s.wal != nil {
		if s.wal.Records() == recs0 {
			if err := storage.Retry(retry, s.wal.Truncate); err != nil {
				// A half-finished truncate leaves the log headerless;
				// Sync refuses until the Truncate retry completes, so
				// latch and let recovery finish the job.
				s.walErr = fmt.Errorf("core: wal truncate: %w", err)
				s.latchLocked(s.walErr)
				return s.walErr
			}
			s.walErr = nil
		} else {
			// Records landed after the snapshot was serialized: keep the
			// whole log (its pre-snapshot prefix replays as no-ops) and
			// make the new tail durable.
			s.syncWALLocked()
			if s.walErr != nil {
				return s.walErr
			}
		}
	}
	// The snapshot holds everything the log failed to before it was
	// serialized, un-logged records included; a loss latched during the
	// unlocked write is NOT covered and must stay latched.
	if s.walLost == lost0 {
		s.walLost = nil
	}
	s.ckptPending = false
	walOK := s.wal != nil && !s.wal.Dirty() || s.wal == nil && s.opts.WALPath == ""
	if s.ro && s.walErr == nil && s.walLost == nil && walOK {
		// a full checkpoint restored durability end to end
		s.unlatchLocked()
	}
	return nil
}

// Save checkpoints the store to path: pending writes are folded in, the
// whole state is written as an atomic snapshot, and the WAL (if any) is
// truncated. path becomes the target for future Organize/Compact
// checkpoints.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	s.snapshotPath = path
	return s.checkpointLocked()
}

// Close flushes and closes the WAL, stops the background recovery
// prober, and unmaps the snapshot an opened store was reading from.
// A store built in memory remains usable afterwards (just unlogged);
// an opened store must not be queried after Close — its sealed
// segments referenced the now-released mapping.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.walLost
	if err == nil {
		err = s.walErr
	}
	if err == nil && s.ro {
		err = s.roCause
	}
	if s.wal != nil {
		if e := s.wal.Close(); e != nil && err == nil {
			err = e
		}
		s.wal = nil
	}
	// the latched durability failures have been reported; the store
	// continues as a purely in-memory one
	s.walErr = nil
	s.walLost = nil
	s.ckptPending = false
	s.stopProbeLocked()
	s.unlatchLocked()
	if s.blob != nil {
		if e := s.blob.Close(); e != nil && err == nil {
			err = e
		}
		s.blob = nil
	}
	return err
}

// Dict exposes the dictionary (internally synchronized; shared with
// results).
func (s *Store) Dict() *dict.Dictionary { return s.dict }

// Pool exposes the simulated buffer pool for cold/hot control.
func (s *Store) Pool() *colstore.BufferPool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

// Schema returns the discovered schema (nil before Organize).
func (s *Store) Schema() *cs.Schema {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schema
}

// Catalog returns the materialized catalog (nil before Organize). The
// catalog is copy-on-write: the returned value is a consistent snapshot.
func (s *Store) Catalog() *relational.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat
}

// Organized reports whether the store has a materialized schema —
// either from Organize or from an opened snapshot. Unlike Stats it does
// not refresh, so it is safe on the snapshot fast path before the
// deferred index build.
func (s *Store) Organized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.organized
}

// Epoch returns the snapshot version: it advances whenever a refresh
// publishes new state (applied writes, Compact, Organize).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// NumTriples returns the store size including trickle inserts and
// pending deletions.
func (s *Store) NumTriples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyPendingDeletesLocked()
	return s.table.Len()
}

// Add appends one triple (trickle load). Before Organize it is ordinary
// bulk data; after, it lands in the delta layer — assigned to an
// existing CS table when its subject's property set matches one, or to
// the irregular leftover store — and is answered exactly by the next
// query without any rebuild. It returns ErrReadOnly while the store is
// latched after durability failures, and rejects (without applying) a
// triple whose lexical form cannot fit one WAL record — degrading the
// one write instead of the store.
func (s *Store) Add(t nt.Triple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.CanLog(storage.Op{T: t}); err != nil {
			return fmt.Errorf("core: add: %w", err)
		}
	}
	if s.addLocked(t) {
		s.logLocked(false, t)
	}
	return nil
}

// addLocked applies one insertion and reports whether it changed state
// (false for set-semantics no-ops) — the signal for WAL logging.
func (s *Store) addLocked(t nt.Triple) bool {
	nl := s.dict.NumLiterals()
	so := s.dict.Intern(t.S)
	po := s.dict.Intern(t.P)
	oo := s.dict.Intern(t.O)
	tr := triples.Triple{S: so, P: po, O: oo}
	if s.organized {
		if _, pending := s.delPending[tr]; pending {
			// re-adding a pending-deleted triple cancels the deletion
			delete(s.delPending, tr)
			s.touched[so] = struct{}{}
			return true
		}
		if _, dup := s.deltaSet[tr]; dup {
			return false // RDF graphs are sets; the live path enforces it
		}
		if _, dead := s.deadSet[tr]; !dead && s.idxContainsLocked(tr) {
			return false // present in the (non-stale part of the) index
		}
		delete(s.deadSet, tr)
		s.deltaSet[tr] = struct{}{}
		s.touched[so] = struct{}{}
		if s.dict.NumLiterals() != nl {
			s.literalsOrdered = false
		}
	} else if _, pending := s.delPending[tr]; pending {
		// pre-Organize delete-then-re-add: flush the committed deletions
		// now (removing the earlier copies of tr), then fall through to
		// append the fresh one — otherwise the batch delete applied later
		// would erase this add too
		s.applyPendingDeletesLocked()
	}
	s.table.Append(so, po, oo)
	s.idxDirty = true
	return true
}

// Delete removes one triple. The deletion is queued and applied in a
// batch at the next refresh: the subject's sealed row (if any) is
// tombstoned and its surviving triples are re-routed through the delta
// layer. Deleting an absent triple is a no-op. Returns ErrReadOnly
// while the store is latched after durability failures.
func (s *Store) Delete(t nt.Triple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.CanLog(storage.Op{Del: true, T: t}); err != nil {
			return fmt.Errorf("core: delete: %w", err)
		}
	}
	if s.deleteLocked(t) {
		s.logLocked(true, t)
	}
	return nil
}

// deleteLocked queues one deletion and reports whether it changed state
// (false when the triple is absent) — the signal for WAL logging.
func (s *Store) deleteLocked(t nt.Triple) bool {
	so, ok := s.dict.Lookup(t.S)
	if !ok {
		return false
	}
	po, ok := s.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oo, ok := s.dict.Lookup(t.O)
	if !ok {
		return false
	}
	tr := triples.Triple{S: so, P: po, O: oo}
	if _, pending := s.delPending[tr]; pending {
		return false // already queued: a repeat delete is a no-op
	}
	if s.organized {
		_, added := s.deltaSet[tr]
		_, dead := s.deadSet[tr]
		if !added && (dead || !s.idxContainsLocked(tr)) {
			return false // absent: nothing to delete
		}
		s.delPending[tr] = struct{}{}
		s.touched[so] = struct{}{}
		return true
	}
	// Pre-Organize there is no current index to consult, so a delete of
	// an absent (but interned) triple still reports applied — and may be
	// WAL-logged; replaying it stays a no-op.
	s.delPending[tr] = struct{}{}
	return true
}

// idxContainsLocked reports whether the triple is present in the base
// indexes (which reflect the table as of the last refresh; callers
// additionally consult deltaSet/delPending for in-flight writes). A
// snapshot-opened store defers the six-projection build to the first
// operation that needs it — that is what keeps Open at millisecond cost —
// so a clean missing index is built here on demand.
func (s *Store) idxContainsLocked(tr triples.Triple) bool {
	if s.idx == nil {
		if s.idxDirty || s.table.Len() == 0 {
			return false
		}
		s.idx = triples.BuildAll(s.table)
	}
	return s.idx.Get(triples.SPO).Contains(tr)
}

// applyPendingDeletesLocked filters the queued deletions out of the base
// table in one pass. Returns the number of triples removed.
func (s *Store) applyPendingDeletesLocked() int {
	if len(s.delPending) == 0 {
		return 0
	}
	w, n := 0, s.table.Len()
	for i := 0; i < n; i++ {
		tr := s.table.At(i)
		if _, dead := s.delPending[tr]; dead {
			continue
		}
		s.table.S[w], s.table.P[w], s.table.O[w] = tr.S, tr.P, tr.O
		w++
	}
	removed := n - w
	s.table.S = s.table.S[:w]
	s.table.P = s.table.P[:w]
	s.table.O = s.table.O[:w]
	// The deleted triples are gone from the table but may linger in the
	// stale index (rebuilt lazily) and in the pending-add set; record
	// them dead so a re-Add is not mistaken for a duplicate.
	for tr := range s.delPending {
		delete(s.deltaSet, tr)
		if s.organized {
			s.deadSet[tr] = struct{}{}
		}
	}
	s.delPending = make(map[triples.Triple]struct{})
	if removed > 0 {
		s.idxDirty = true
	}
	return removed
}

// LoadNTriples bulk-loads N-Triples. When lenient, malformed lines are
// skipped and reported in the returned error slice.
func (s *Store) LoadNTriples(r io.Reader, lenient bool) (int, []error, error) {
	var rd *nt.Reader
	if lenient {
		rd = nt.NewLenientReader(r)
	} else {
		rd = nt.NewReader(r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return 0, nil, err
	}
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, rd.Errs(), nil
		}
		if err != nil {
			return n, rd.Errs(), err
		}
		s.addLocked(t)
		n++
	}
}

// LoadTurtle bulk-loads the Turtle subset.
func (s *Store) LoadTurtle(r io.Reader) (int, error) {
	ts, err := nt.ParseTurtle(r)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return 0, err
	}
	for _, t := range ts {
		s.addLocked(t)
	}
	return len(ts), nil
}

// OrganizeReport summarizes what Organize did.
type OrganizeReport struct {
	Triples           int
	DuplicatesDropped int
	RawCSs            int
	CSs               int
	Tables            int
	LinkTables        int
	FKs               int
	Coverage          float64
	IrregularTriples  int
}

func (r OrganizeReport) String() string {
	return fmt.Sprintf("organized %d triples: %d raw CS -> %d tables (+%d link), %d FKs, coverage %.1f%%, %d irregular",
		r.Triples, r.RawCSs, r.Tables, r.LinkTables, r.FKs, 100*r.Coverage, r.IrregularTriples)
}

// Organize runs the self-organization pipeline: discover characteristic
// sets, cluster subjects (renumbering the whole OID space), materialize
// the relational catalog with zone maps, and rebuild the six
// projections. It can be called again after live updates to fold the
// delta layer into a fresh clustering; because it renumbers the shared
// dictionary it waits for all in-flight queries to finish (close every
// Rows iterator first — calling Organize with a stream open on the same
// goroutine deadlocks).
func (s *Store) Organize() (OrganizeReport, error) {
	s.gate.Lock()
	defer s.gate.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep OrganizeReport
	s.applyPendingDeletesLocked()
	if s.opts.Dedup {
		rep.DuplicatesDropped = s.table.Dedup()
	}
	rep.Triples = s.table.Len()

	s.schema = cs.Discover(s.table, s.dict, s.opts.CS)
	clOpts := s.opts.Cluster
	clOpts.SortKeys = s.workloadSortKeysLocked(clOpts.SortKeys)
	inf, err := cluster.Reorganize(s.table, s.dict, s.schema, clOpts)
	if err != nil {
		return rep, fmt.Errorf("core: organize: %w", err)
	}
	s.clusterIn = inf
	// The rebuilt segments live on the heap (the clustering just
	// rewrote them), so the fresh pool carries the byte budget but no
	// mapping releasers; the old blob stays open for the base table but
	// its resident pages are dropped below.
	s.pool = newPool(s.opts)
	s.cat = relational.BuildCatalog(s.table, s.dict, s.schema, inf, s.pool)
	s.idx = triples.BuildAll(s.table)
	s.organized = true
	s.literalsOrdered = !s.opts.Cluster.KeepLiteralOrder
	s.idxDirty = false
	s.touched = make(map[dict.OID]struct{})
	s.deltaSet = make(map[triples.Triple]struct{})
	s.deadSet = make(map[triples.Triple]struct{})
	s.epoch++
	s.publishSnapshotLocked()
	if s.blob != nil {
		// nothing references the mapped encoded segments any more;
		// release their resident pages (they fault back if ever touched)
		s.blob.Drop()
	}

	rep.RawCSs = s.schema.RawCSCount
	rep.CSs = len(s.schema.CSs)
	st := s.cat.Stats()
	rep.Tables = st.Tables
	rep.LinkTables = st.LinkTables
	rep.FKs = len(s.schema.FKs)
	rep.Coverage = s.schema.Coverage
	rep.IrregularTriples = st.IrregularTriples
	// With persistence attached, an Organize is a checkpoint: the freshly
	// clustered state is snapshotted and the log truncated. The in-memory
	// reorganization above is complete either way; a checkpoint failure
	// only means durability lagged, and Save can retry it.
	if err := s.checkpointLocked(); err != nil {
		return rep, fmt.Errorf("core: organize checkpoint: %w", err)
	}
	return rep, nil
}

// CompactReport summarizes a Compact run.
type CompactReport struct {
	// Tables is the number of CS tables whose segments were rebuilt.
	Tables int
	// MergedRows is the number of delta rows merged into sealed
	// segments.
	MergedRows int
	// DroppedTombstones counts delete-bitmap entries folded into the new
	// segments.
	DroppedTombstones int
	// Epoch is the snapshot version after the compaction.
	Epoch uint64
}

func (r CompactReport) String() string {
	return fmt.Sprintf("compacted %d tables: %d delta rows merged, %d tombstones dropped (epoch %d)",
		r.Tables, r.MergedRows, r.DroppedTombstones, r.Epoch)
}

// Compact merges the delta layer into freshly sealed segments:
// tombstoned rows become permanent holes, delta rows are re-sealed
// behind their table's clustered region, and CS statistics are refreshed
// for the affected tables only — equivalent to, but much cheaper than, a
// full re-Organize (which it does not replace: only Organize re-clusters
// subject OIDs and restores sort-key pushdown). It is also triggered
// automatically when the delta grows past Options.CompactThreshold.
// Readers are unaffected: compaction happens on a catalog clone and
// in-flight snapshots keep scanning the old segments.
func (s *Store) Compact() (CompactReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	st := s.compactLocked()
	if st.Tables > 0 {
		s.epoch++
		s.publishSnapshotLocked()
	}
	rep := CompactReport{
		Tables:            st.Tables,
		MergedRows:        st.MergedRows,
		DroppedTombstones: st.DroppedTombstones,
		Epoch:             s.epoch,
	}
	// Like Organize, an explicit Compact checkpoints when persistence is
	// attached (query-path auto-compaction does not — checkpoint I/O
	// never rides a read). The compaction itself is already published.
	if st.Tables > 0 {
		if err := s.checkpointLocked(); err != nil {
			return rep, fmt.Errorf("core: compact checkpoint: %w", err)
		}
	}
	return rep, nil
}

// compactLocked compacts on a catalog clone; the caller publishes.
func (s *Store) compactLocked() relational.CompactStats {
	if s.cat == nil || !s.cat.HasDeltas() {
		return relational.CompactStats{}
	}
	cat := s.cat.CloneForWrite()
	st := cat.Compact(s.pool)
	s.cat = cat
	return st
}

// workloadSortKeysLocked derives per-table sort keys from the observed
// workload: for each retained CS, the most-filtered predicate among its
// properties wins. Explicit user keys take precedence; tables without a
// workload signal fall back to AutoSortKey.
func (s *Store) workloadSortKeysLocked(explicit map[string]string) map[string]string {
	if len(s.workload) == 0 {
		return explicit
	}
	out := make(map[string]string, len(explicit))
	for k, v := range explicit {
		out[k] = v
	}
	for _, c := range s.schema.CSs {
		if !c.Retained {
			continue
		}
		if _, ok := out[c.Name]; ok {
			continue
		}
		best, bestN := "", 0
		for i := range c.Props {
			tm, ok := s.dict.Term(c.Props[i].Pred)
			if !ok {
				continue
			}
			if n := s.workload[tm.Value]; n > bestN {
				best, bestN = tm.Value, n
			}
		}
		if best != "" {
			out[c.Name] = best
		}
	}
	return out
}

// recordWorkloadLocked folds one parsed query into the workload stats.
func (s *Store) recordWorkloadLocked(q *sparql.Query) {
	for _, iri := range plan.WorkloadRangePreds(q) {
		s.workload[iri]++
	}
}

// publishSnapshotLocked builds and publishes the immutable epoch
// snapshot queries execute against.
func (s *Store) publishSnapshotLocked() {
	ctx := &exec.Ctx{
		Dict:        s.dict,
		Idx:         s.idx,
		Cat:         s.cat,
		Pool:        s.pool,
		Parallelism: s.opts.Parallelism,
	}
	ctx.TrackProjections(s.idx)
	if s.cat != nil {
		ctx.TrackProjections(s.cat.IrregularIdx)
	}
	s.snap = &snapshot{
		epoch:           s.epoch,
		dict:            s.dict,
		idx:             s.idx,
		schema:          s.schema,
		cat:             s.cat,
		organized:       s.organized,
		literalsOrdered: s.literalsOrdered,
		ctx:             ctx,
	}
}

// refreshLocked folds pending writes into a fresh snapshot: batch-apply
// deletions, rebuild the six projections, incrementally re-assign every
// touched subject through the delta layer, auto-compact past the
// threshold, and publish the next epoch.
func (s *Store) refreshLocked() {
	// Durability precedes visibility: the batch of trickle writes this
	// refresh folds in is fsynced before any query can observe it.
	// While latched read-only the refresh is skipped entirely — reads
	// keep serving the last published (fully durable) epoch, and the
	// in-memory writes that failed to sync stay invisible until a
	// recovery probe restores durability. The only in-refresh recovery
	// attempt is cheap (re-attach/truncate/sync, never checkpoint I/O)
	// and time-gated, so degraded queries never stall on a dead disk.
	if s.ro {
		if time.Now().Before(s.roNext) || !s.recoverLocked(false) {
			if s.snap == nil && (s.wal == nil || !s.wal.Dirty()) && s.walLost == nil {
				// nothing was ever published and nothing undurable is
				// in memory (writes while latched were rejected):
				// publish what the store holds so reads can serve
				s.epoch++
				s.publishSnapshotLocked()
			}
			return
		}
	}
	s.syncWALLocked()
	if s.ro {
		// the sync just latched: keep the previous epoch visible
		return
	}
	changed := false
	if s.applyPendingDeletesLocked() > 0 {
		changed = true
	}
	if s.idx == nil || s.idxDirty {
		s.idx = triples.BuildAll(s.table)
		s.idxDirty = false
		s.deadSet = make(map[triples.Triple]struct{}) // index is current again
		changed = true
	}
	if s.organized && len(s.touched) > 0 {
		subs := make([]dict.OID, 0, len(s.touched))
		for o := range s.touched {
			subs = append(subs, o)
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
		cat := s.cat.CloneForWrite()
		cat.ReassignSubjects(subs, s.idx.Get(triples.SPO), s.schema)
		s.cat = cat
		s.touched = make(map[dict.OID]struct{})
		s.deltaSet = make(map[triples.Triple]struct{})
		changed = true
		thr := s.opts.CompactThreshold
		if thr == 0 {
			thr = DefaultCompactThreshold
		}
		if thr > 0 && cat.DeltaRowCount()+cat.TombstoneCount() >= thr {
			// cat is this refresh's private clone (unpublished until
			// below), so compact it in place — no second deep copy
			cat.Compact(s.pool)
		}
	}
	if changed || s.snap == nil {
		s.epoch++
		s.publishSnapshotLocked()
	}
}

// planLocked refreshes, plans q against the current snapshot, and
// returns both. Callers execute against the snapshot without any lock.
func (s *Store) planLocked(q *sparql.Query, qopts QueryOptions, record bool) (*plan.Plan, *snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if record {
		s.recordWorkloadLocked(q)
	}
	s.refreshLocked()
	if s.snap == nil {
		// Read-only latched before anything could be published (the
		// very first refresh hit the durability failure): there is no
		// durable epoch to serve, so the query reports the latch.
		return nil, nil, s.roErrLocked()
	}
	snap := s.snap
	p, err := plan.Build(q, snap.view(), plan.Options{
		Mode:       qopts.Mode,
		ZoneMaps:   qopts.ZoneMaps,
		ForceAlgo:  qopts.ForceAlgo,
		NoBloom:    qopts.NoBloom,
		ForceOrder: qopts.ForceOrder,
	})
	if err != nil {
		return nil, nil, err
	}
	return p, snap, nil
}

// BadQueryError marks a query the client got wrong — a parse failure or
// an unplannable shape — as opposed to a store-side failure (WAL sync
// loss). Protocol front ends map it to 400.
type BadQueryError struct{ Err error }

func (e *BadQueryError) Error() string { return e.Err.Error() }
func (e *BadQueryError) Unwrap() error { return e.Err }

// planSourceLocked is the cached planning path: refresh, then resolve
// (src, qopts) through the prepared-plan cache at the published epoch,
// parsing and building only on a miss. Parse and build failures come
// back wrapped in BadQueryError; WAL failures do not (they are the
// store's fault, not the query's).
func (s *Store) planSourceLocked(src string, qopts QueryOptions, record bool) (_ *plan.Plan, _ *snapshot, cached bool, _ error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	if s.snap == nil {
		// see planLocked: latched before any epoch was published
		return nil, nil, false, s.roErrLocked()
	}
	snap := s.snap
	key := planCacheKey(src, qopts)
	if p, ok := s.plans.get(snap.epoch, key); ok {
		if record {
			s.recordWorkloadLocked(p.Query)
		}
		return p, snap, true, nil
	}
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, nil, false, &BadQueryError{Err: err}
	}
	if record {
		s.recordWorkloadLocked(q)
	}
	p, err := plan.Build(q, snap.view(), plan.Options{
		Mode:       qopts.Mode,
		ZoneMaps:   qopts.ZoneMaps,
		ForceAlgo:  qopts.ForceAlgo,
		NoBloom:    qopts.NoBloom,
		ForceOrder: qopts.ForceOrder,
	})
	if err != nil {
		return nil, nil, false, &BadQueryError{Err: err}
	}
	s.plans.put(snap.epoch, key, p)
	return p, snap, false, nil
}

// PlanCacheStats reports the prepared-plan cache counters (zero values
// when the cache is disabled).
func (s *Store) PlanCacheStats() PlanCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans.stats()
}

// Query parses, plans and executes a SPARQL query against the current
// epoch snapshot. Concurrent Add/Delete/Compact calls do not affect a
// query once planned.
func (s *Store) Query(src string, qopts QueryOptions) (*exec.Result, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	p, snap, cached, err := s.planSourceLocked(src, qopts, true)
	if err != nil {
		return nil, err
	}
	rec := newQueryRecord(src, p, cached)
	start := time.Now()
	res, err := p.Execute(queryCtx(snap, nil, qopts))
	rec.DurationNS = time.Since(start).Nanoseconds()
	if res != nil {
		rec.Rows = int64(len(res.Rows))
	}
	rec.Outcome = outcomeOf(err)
	s.qlog.record(rec)
	return res, err
}

// queryCtx forks the snapshot's shared Ctx for one query: its own
// cancellation signal (nil: uncancellable), failure slot, and memory
// budget. Every execution path forks — the failure slot is what lets a
// worker panic or budget overrun fail one query instead of the process.
func queryCtx(snap *snapshot, ctx context.Context, qopts QueryOptions) *exec.Ctx {
	ectx := snap.ctx.WithQueryContext(ctx)
	if qopts.MemLimit > 0 {
		ectx.Mem = exec.NewMemAccountant(qopts.MemLimit)
	}
	if ctx != nil {
		ectx.ReqID = RequestIDFrom(ctx)
	}
	return ectx
}

// QueryReference executes a query through the materializing reference
// path: the BGP tree is drained operator-at-a-time and topped with the
// PR-1 materializing head. It exists for differential testing — the
// streaming pipeline must stay row-identical to it.
func (s *Store) QueryReference(src string, qopts QueryOptions) (res *exec.Result, err error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	p, snap, err := s.planLocked(q, qopts, false)
	if err != nil {
		return nil, err
	}
	ectx := queryCtx(snap, nil, qopts)
	// The reference path materializes on the caller's goroutine, outside
	// the streaming iterator's recovery — catch panics here so a broken
	// operator fails the query, not the process.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, exec.NewPanicError("reference evaluation", r)
		}
	}()
	rel := plan.Exec(p.Root, ectx)
	res, err = exec.Head(ectx, rel, q)
	if err == nil {
		if eerr := ectx.ExecErr(); eerr != nil {
			return nil, eerr
		}
	}
	return res, err
}

// Rows is a streaming query result: rows are produced by the vectorized
// pipeline as the consumer pulls, so LIMIT queries stop scanning early
// and large results never materialize. The iterator reads an immutable
// epoch snapshot: concurrent Add/Delete/Compact (and other queries) are
// safe while it is open and never affect its rows. Only Organize waits
// for open iterators — close (or drain) them before calling it.
type Rows struct {
	s    *Store
	it   *exec.RowIter
	done bool
	// rec is the query-log record prototype; Close fills the runtime
	// half (duration, rows, outcome) and records it.
	rec   QueryRecord
	start time.Time
	n     int64
}

// Vars lists the output column names.
func (r *Rows) Vars() []string { return r.it.Vars() }

// Next advances to the next row, closing the iterator at the end of the
// stream.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	if r.it.Next() {
		r.n++
		return true
	}
	r.Close()
	return false
}

// Row returns the current row. The slice is reused by the next call to
// Next; copy values to retain them.
func (r *Rows) Row() []dict.Value { return r.it.Row() }

// Err reports why the stream ended early: the query context's error
// after a cancellation or timeout, or nil for plain exhaustion. Valid
// after Next returns false (and after Close).
func (r *Rows) Err() error { return r.it.Err() }

// Term resolves a result value back to its exact RDF term — IRI vs
// literal, datatype, language tag — via the OID it was decoded from.
// It reports false for computed values (arithmetic, aggregates), which
// carry no OID; serializers synthesize a typed literal from the value's
// kind instead.
func (r *Rows) Term(v dict.Value) (dict.Term, bool) {
	if v.OID == dict.Nil {
		return dict.Term{}, false
	}
	return r.it.Dict().Term(v.OID)
}

// Close stops the pipeline and releases the reader gate; idempotent.
func (r *Rows) Close() {
	if r.done {
		return
	}
	r.done = true
	r.it.Close()
	r.rec.DurationNS = time.Since(r.start).Nanoseconds()
	r.rec.Rows = r.n
	r.rec.Outcome = outcomeOf(r.it.Err())
	r.s.qlog.record(r.rec)
	r.s.gate.RUnlock()
}

// QueryStream parses, plans and starts a SPARQL query, returning a
// streaming row iterator over the current epoch snapshot instead of a
// materialized result.
func (s *Store) QueryStream(src string, qopts QueryOptions) (*Rows, error) {
	return s.QueryStreamCtx(context.Background(), src, qopts)
}

// QueryStreamCtx is QueryStream bound to a context: when ctx fires —
// per-query timeout, client disconnect — the pipeline's scans, joins
// and morsel workers stop at the next batch boundary, Next returns
// false, and Rows.Err reports the cause. Planning resolves through the
// prepared-plan cache; parse/plan failures are BadQueryError.
func (s *Store) QueryStreamCtx(ctx context.Context, src string, qopts QueryOptions) (*Rows, error) {
	s.gate.RLock()
	p, snap, cached, err := s.planSourceLocked(src, qopts, true)
	if err != nil {
		s.gate.RUnlock()
		return nil, err
	}
	it, err := p.Stream(queryCtx(snap, ctx, qopts))
	if err != nil {
		s.gate.RUnlock()
		return nil, err
	}
	return &Rows{s: s, it: it, rec: newQueryRecord(src, p, cached), start: time.Now()}, nil
}

// Explain returns the plan tree for a query without executing it.
func (s *Store) Explain(src string, qopts QueryOptions) (string, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	p, _, err := s.planLocked(q, qopts, false)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// ExplainAnalyze executes the query to exhaustion with a per-operator
// stats tree attached and renders the plan with actual row counts,
// per-node time, and the worst est/act mis-estimation beside the
// estimates — the runtime truth the cost model is validated against.
// The execution is a real query: it goes through the plan cache, counts
// in the query log, and honors ctx cancellation and the memory budget.
func (s *Store) ExplainAnalyze(ctx context.Context, src string, qopts QueryOptions) (string, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	p, snap, cached, err := s.planSourceLocked(src, qopts, true)
	if err != nil {
		return "", err
	}
	ectx := queryCtx(snap, ctx, qopts)
	stats := exec.NewQueryStats(p.NumStatNodes())
	ectx.Stats = stats
	rec := newQueryRecord(src, p, cached)
	start := time.Now()
	it, err := p.Stream(ectx)
	if err != nil {
		return "", err
	}
	var rows int64
	for it.Next() {
		rows++
	}
	dur := time.Since(start)
	rec.DurationNS = dur.Nanoseconds()
	rec.Rows = rows
	rec.Outcome = outcomeOf(it.Err())
	s.qlog.record(rec)
	if err := it.Err(); err != nil {
		return "", err
	}
	return p.ExplainAnalyze(stats, rows, dur), nil
}

// Uptime reports the time since the store was created or opened.
func (s *Store) Uptime() time.Duration { return time.Since(s.born) }

// SQLSchema renders the emergent relational schema as DDL — the SQL view
// of the regular part of the data.
func (s *Store) SQLSchema() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat == nil {
		return "-- store not organized yet; call Organize()\n"
	}
	s.refreshLocked()
	return s.cat.DDL(s.dict)
}

// Stats summarizes the store.
type Stats struct {
	Triples   int
	Resources int
	Literals  int
	Organized bool
	Tables    int
	Irregular int
	Coverage  float64
	Pool      colstore.PoolStats
	// Epoch is the published snapshot version; DeltaRows and Tombstones
	// size the live-update delta layer awaiting Compact.
	Epoch      uint64
	DeltaRows  int
	Tombstones int
	// WALRecords counts operations in the attached write-ahead log since
	// the last checkpoint (0 when no WAL is attached).
	WALRecords int
}

// Stats returns store-level counters, folding pending writes in first.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	st := Stats{
		Triples:   s.table.Len(),
		Resources: s.dict.NumResources(),
		Literals:  s.dict.NumLiterals(),
		Organized: s.organized,
		Pool:      s.pool.Stats(),
		Epoch:     s.epoch,
	}
	if s.wal != nil {
		st.WALRecords = s.wal.Records()
	}
	if s.cat != nil {
		cst := s.cat.Stats()
		st.Tables = cst.Tables
		st.Irregular = cst.IrregularTriples
		st.DeltaRows = cst.DeltaRows
		st.Tombstones = cst.Tombstones
	}
	if s.schema != nil {
		st.Coverage = s.schema.Coverage
	}
	return st
}
