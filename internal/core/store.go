// Package core is the self-organizing RDF store: it ties ingestion,
// characteristic-set discovery, subject clustering, the relational
// catalog, and the two query-plan families into one engine — the system
// Figure 1 of the paper sketches inside the MonetDB kernel.
//
// Lifecycle: load triples (bulk or trickle), call Organize to let the
// store discover and materialize its emergent schema, then query in
// either plan mode. Trickle inserts after Organize land in the irregular
// delta and are answered exactly; the next Organize folds them in.
package core

import (
	"fmt"
	"io"
	"sync"

	"srdf/internal/cluster"
	"srdf/internal/colstore"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/relational"
	"srdf/internal/sparql"
	"srdf/internal/triples"
)

// Options configures a Store.
type Options struct {
	// CS tunes schema discovery.
	CS cs.Options
	// Cluster tunes subject clustering.
	Cluster cluster.Options
	// PoolPages caps the simulated buffer pool (<=0: unlimited).
	PoolPages int
	// Dedup removes duplicate triples on Organize (RDF graphs are sets).
	Dedup bool
	// Parallelism is the morsel-scan worker count for RDFscan; <=1
	// scans sequentially.
	Parallelism int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{
		CS:      cs.DefaultOptions(),
		Cluster: cluster.DefaultOptions(),
		Dedup:   true,
	}
}

// QueryOptions selects the plan family per query, mirroring Table I's
// configuration axes.
type QueryOptions struct {
	Mode     plan.Mode
	ZoneMaps bool
}

// Store is the self-organizing RDF store.
type Store struct {
	mu   sync.Mutex
	opts Options

	dict  *dict.Dictionary
	table *triples.Table
	idx   *triples.IndexSet
	pool  *colstore.BufferPool

	schema    *cs.Schema
	clusterIn *cluster.Info
	cat       *relational.Catalog
	organized bool
	// literalsOrdered goes false when trickle inserts mint new literals
	// after Organize.
	literalsOrdered bool

	idxDirty bool
	irrDirty bool
	ctx      *exec.Ctx

	// workload counts, per predicate IRI, how often queries put a range
	// or equality filter on that predicate's object — the signal the
	// next Organize uses to choose subject-clustering sort keys
	// (research question iii / the §II-D acknowledgment that sort-key
	// choice needs workload analysis).
	workload map[string]int
}

// NewStore creates an empty store.
func NewStore(opts Options) *Store {
	return &Store{
		opts:     opts,
		dict:     dict.New(),
		table:    triples.NewTable(0),
		pool:     colstore.NewPool(opts.PoolPages),
		workload: make(map[string]int),
	}
}

// Dict exposes the dictionary (read-mostly; shared with results).
func (s *Store) Dict() *dict.Dictionary { return s.dict }

// Pool exposes the simulated buffer pool for cold/hot control.
func (s *Store) Pool() *colstore.BufferPool { return s.pool }

// Schema returns the discovered schema (nil before Organize).
func (s *Store) Schema() *cs.Schema { return s.schema }

// Catalog returns the materialized catalog (nil before Organize).
func (s *Store) Catalog() *relational.Catalog { return s.cat }

// NumTriples returns the store size including trickle inserts.
func (s *Store) NumTriples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Len()
}

// Add appends one triple (trickle load). Before Organize it is ordinary
// bulk data; after, it lands in the irregular delta and remains exactly
// queryable until the next Organize re-clusters it.
func (s *Store) Add(t nt.Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(t)
}

func (s *Store) addLocked(t nt.Triple) {
	nl := s.dict.NumLiterals()
	so := s.dict.Intern(t.S)
	po := s.dict.Intern(t.P)
	oo := s.dict.Intern(t.O)
	s.table.Append(so, po, oo)
	s.idxDirty = true
	if s.organized {
		s.cat.Irregular.Append(so, po, oo)
		s.irrDirty = true
		if s.dict.NumLiterals() != nl {
			s.literalsOrdered = false
		}
	}
}

// LoadNTriples bulk-loads N-Triples. When lenient, malformed lines are
// skipped and reported in the returned error slice.
func (s *Store) LoadNTriples(r io.Reader, lenient bool) (int, []error, error) {
	var rd *nt.Reader
	if lenient {
		rd = nt.NewLenientReader(r)
	} else {
		rd = nt.NewReader(r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, rd.Errs(), nil
		}
		if err != nil {
			return n, rd.Errs(), err
		}
		s.addLocked(t)
		n++
	}
}

// LoadTurtle bulk-loads the Turtle subset.
func (s *Store) LoadTurtle(r io.Reader) (int, error) {
	ts, err := nt.ParseTurtle(r)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range ts {
		s.addLocked(t)
	}
	return len(ts), nil
}

// OrganizeReport summarizes what Organize did.
type OrganizeReport struct {
	Triples           int
	DuplicatesDropped int
	RawCSs            int
	CSs               int
	Tables            int
	LinkTables        int
	FKs               int
	Coverage          float64
	IrregularTriples  int
}

func (r OrganizeReport) String() string {
	return fmt.Sprintf("organized %d triples: %d raw CS -> %d tables (+%d link), %d FKs, coverage %.1f%%, %d irregular",
		r.Triples, r.RawCSs, r.Tables, r.LinkTables, r.FKs, 100*r.Coverage, r.IrregularTriples)
}

// Organize runs the self-organization pipeline: discover characteristic
// sets, cluster subjects (renumbering the whole OID space), materialize
// the relational catalog with zone maps, and rebuild the six
// projections. It can be called again after trickle inserts to fold the
// delta into the schema.
func (s *Store) Organize() (OrganizeReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep OrganizeReport
	if s.opts.Dedup {
		rep.DuplicatesDropped = s.table.Dedup()
	}
	rep.Triples = s.table.Len()

	s.schema = cs.Discover(s.table, s.dict, s.opts.CS)
	clOpts := s.opts.Cluster
	clOpts.SortKeys = s.workloadSortKeysLocked(clOpts.SortKeys)
	inf, err := cluster.Reorganize(s.table, s.dict, s.schema, clOpts)
	if err != nil {
		return rep, fmt.Errorf("core: organize: %w", err)
	}
	s.clusterIn = inf
	s.pool = colstore.NewPool(s.opts.PoolPages)
	s.cat = relational.BuildCatalog(s.table, s.dict, s.schema, inf, s.pool)
	s.idx = triples.BuildAll(s.table)
	s.organized = true
	s.literalsOrdered = !s.opts.Cluster.KeepLiteralOrder
	s.idxDirty = false
	s.irrDirty = false
	s.rebuildCtxLocked()

	rep.RawCSs = s.schema.RawCSCount
	rep.CSs = len(s.schema.CSs)
	st := s.cat.Stats()
	rep.Tables = st.Tables
	rep.LinkTables = st.LinkTables
	rep.FKs = len(s.schema.FKs)
	rep.Coverage = s.schema.Coverage
	rep.IrregularTriples = st.IrregularTriples
	return rep, nil
}

// workloadSortKeysLocked derives per-table sort keys from the observed
// workload: for each retained CS, the most-filtered predicate among its
// properties wins. Explicit user keys take precedence; tables without a
// workload signal fall back to AutoSortKey.
func (s *Store) workloadSortKeysLocked(explicit map[string]string) map[string]string {
	if len(s.workload) == 0 {
		return explicit
	}
	out := make(map[string]string, len(explicit))
	for k, v := range explicit {
		out[k] = v
	}
	for _, c := range s.schema.CSs {
		if !c.Retained {
			continue
		}
		if _, ok := out[c.Name]; ok {
			continue
		}
		best, bestN := "", 0
		for i := range c.Props {
			tm, ok := s.dict.Term(c.Props[i].Pred)
			if !ok {
				continue
			}
			if n := s.workload[tm.Value]; n > bestN {
				best, bestN = tm.Value, n
			}
		}
		if best != "" {
			out[c.Name] = best
		}
	}
	return out
}

// recordWorkloadLocked folds one parsed query into the workload stats.
func (s *Store) recordWorkloadLocked(q *sparql.Query) {
	for _, iri := range plan.WorkloadRangePreds(q) {
		s.workload[iri]++
	}
}

func (s *Store) rebuildCtxLocked() {
	s.ctx = &exec.Ctx{
		Dict:        s.dict,
		Idx:         s.idx,
		Cat:         s.cat,
		Pool:        s.pool,
		Parallelism: s.opts.Parallelism,
	}
	s.ctx.TrackProjections(s.idx)
	if s.cat != nil {
		s.ctx.TrackProjections(s.cat.IrregularIdx)
	}
}

// refreshLocked rebuilds dirty indexes before a query.
func (s *Store) refreshLocked() {
	if s.idx == nil || s.idxDirty {
		s.idx = triples.BuildAll(s.table)
		s.idxDirty = false
		s.rebuildCtxLocked()
	}
	if s.irrDirty && s.cat != nil {
		s.cat.IrregularIdx = triples.BuildAll(s.cat.Irregular)
		s.irrDirty = false
		s.rebuildCtxLocked()
	}
}

func (s *Store) view() *plan.StoreView {
	return &plan.StoreView{
		Dict:            s.dict,
		Idx:             s.idx,
		Schema:          s.schema,
		Cat:             s.cat,
		Organized:       s.organized,
		LiteralsOrdered: s.literalsOrdered,
	}
}

// Query parses, plans and executes a SPARQL query.
func (s *Store) Query(src string, qopts QueryOptions) (*exec.Result, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recordWorkloadLocked(q)
	s.refreshLocked()
	p, err := plan.Build(q, s.view(), plan.Options{Mode: qopts.Mode, ZoneMaps: qopts.ZoneMaps})
	if err != nil {
		return nil, err
	}
	return p.Execute(s.ctx)
}

// Rows is a streaming query result: rows are produced by the vectorized
// pipeline as the consumer pulls, so LIMIT queries stop scanning early
// and large results never materialize. The store's (exclusive) mutex is
// held for the lifetime of the iterator — call Close (or drain it)
// promptly; calling any other store method before then blocks, and
// doing so from the same goroutine deadlocks.
type Rows struct {
	s    *Store
	it   *exec.RowIter
	done bool
}

// Vars lists the output column names.
func (r *Rows) Vars() []string { return r.it.Vars() }

// Next advances to the next row, closing the iterator (and releasing
// the store) at the end of the stream.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	if r.it.Next() {
		return true
	}
	r.Close()
	return false
}

// Row returns the current row. The slice is reused by the next call to
// Next; copy values to retain them.
func (r *Rows) Row() []dict.Value { return r.it.Row() }

// Close stops the pipeline and releases the store; idempotent.
func (r *Rows) Close() {
	if r.done {
		return
	}
	r.done = true
	r.it.Close()
	r.s.mu.Unlock()
}

// QueryStream parses, plans and starts a SPARQL query, returning a
// streaming row iterator instead of a materialized result.
func (s *Store) QueryStream(src string, qopts QueryOptions) (*Rows, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.recordWorkloadLocked(q)
	s.refreshLocked()
	p, err := plan.Build(q, s.view(), plan.Options{Mode: qopts.Mode, ZoneMaps: qopts.ZoneMaps})
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	it, err := p.Stream(s.ctx)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	return &Rows{s: s, it: it}, nil
}

// Explain returns the plan tree for a query without executing it.
func (s *Store) Explain(src string, qopts QueryOptions) (string, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	p, err := plan.Build(q, s.view(), plan.Options{Mode: qopts.Mode, ZoneMaps: qopts.ZoneMaps})
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// SQLSchema renders the emergent relational schema as DDL — the SQL view
// of the regular part of the data.
func (s *Store) SQLSchema() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat == nil {
		return "-- store not organized yet; call Organize()\n"
	}
	return s.cat.DDL(s.dict)
}

// Stats summarizes the store.
type Stats struct {
	Triples   int
	Resources int
	Literals  int
	Organized bool
	Tables    int
	Irregular int
	Coverage  float64
	Pool      colstore.PoolStats
}

// Stats returns store-level counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Triples:   s.table.Len(),
		Resources: s.dict.NumResources(),
		Literals:  s.dict.NumLiterals(),
		Organized: s.organized,
		Pool:      s.pool.Stats(),
	}
	if s.cat != nil {
		cst := s.cat.Stats()
		st.Tables = cst.Tables
		st.Irregular = cst.IrregularTriples
	}
	if s.schema != nil {
		st.Coverage = s.schema.Coverage
	}
	return st
}
