package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/storage"
)

// persistSource grows two clearly separated tables plus irregular
// residue, big enough to span several segment blocks.
func persistSource(n int) string {
	var b strings.Builder
	b.WriteString("@prefix p: <http://persist/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p:a%04d p:x %d ; p:y %d .\n", i, i, i%7)
		fmt.Fprintf(&b, "p:b%04d p:u \"v%d\" ; p:w %d .\n", i, i%13, i)
	}
	b.WriteString("p:odd p:z \"irregular\" .\n")
	return b.String()
}

func persistStore(t *testing.T, opts Options, n int) *Store {
	t.Helper()
	st := NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(persistSource(n))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	return st
}

func persistOpts() Options {
	opts := DefaultOptions()
	opts.CS.MinSupport = 3
	opts.CompactThreshold = -1
	return opts
}

func rowsOf(t *testing.T, st *Store, q string, mode plan.Mode) []string {
	t.Helper()
	res, err := st.Query(q, QueryOptions{Mode: mode, ZoneMaps: true})
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b strings.Builder
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%d:%s", v.Kind, v.Lexical())
		}
		out = append(out, b.String())
	}
	return out
}

var persistQueries = []string{
	`SELECT ?s ?x ?y WHERE { ?s <http://persist/x> ?x . ?s <http://persist/y> ?y }`,
	`SELECT ?s ?x WHERE { ?s <http://persist/x> ?x . FILTER (?x >= 10 && ?x <= 40) }`,
	`SELECT ?s ?u WHERE { ?s <http://persist/u> ?u }`,
	`SELECT ?s ?z WHERE { ?s <http://persist/z> ?z }`,
	`SELECT ?y (COUNT(*) AS ?n) WHERE { ?s <http://persist/y> ?y } GROUP BY ?y ORDER BY ?y`,
}

// TestSaveOpenRowIdentical is the core round-trip property: an opened
// snapshot answers every query with row-identical results in both plan
// families — including a store carrying un-compacted delta rows and
// tombstones.
func TestSaveOpenRowIdentical(t *testing.T) {
	st := persistStore(t, persistOpts(), 300)
	// delta traffic: new matching subject, deletions, irregular spill
	st.Add(nt.Triple{S: dict.IRI("http://persist/a9999"), P: dict.IRI("http://persist/x"), O: dict.IntLit(12345)})
	st.Add(nt.Triple{S: dict.IRI("http://persist/a9999"), P: dict.IRI("http://persist/y"), O: dict.IntLit(3)})
	st.Delete(nt.Triple{S: dict.IRI("http://persist/a0007"), P: dict.IRI("http://persist/x"), O: dict.IntLit(7)})
	st.Add(nt.Triple{S: dict.IRI("http://persist/odd"), P: dict.IRI("http://persist/z"), O: dict.StringLit("two")})

	path := filepath.Join(t.TempDir(), "s.srdf")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	if stt := st.Stats(); stt.DeltaRows == 0 || stt.Tombstones == 0 {
		t.Fatalf("want un-compacted deltas in the saved store, got %+v", stt)
	}

	got, err := OpenStore(path, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range persistQueries {
		for _, mode := range []plan.Mode{plan.ModeDefault, plan.ModeRDFScan} {
			want := rowsOf(t, st, q, mode)
			have := rowsOf(t, got, q, mode)
			if len(want) != len(have) {
				t.Fatalf("%v %s: %d rows vs %d", mode, q, len(have), len(want))
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("%v %s: row %d differs:\n%s\nvs\n%s", mode, q, i, have[i], want[i])
				}
			}
		}
	}
	// The opened store must stay fully live: updates, compaction, and
	// re-organization all work on restored state.
	got.Add(nt.Triple{S: dict.IRI("http://persist/a9998"), P: dict.IRI("http://persist/x"), O: dict.IntLit(777)})
	if _, err := got.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Organize(); err != nil {
		t.Fatal(err)
	}
	after := rowsOf(t, got, persistQueries[0], plan.ModeRDFScan)
	// 300 dense - a0007 (its x was deleted) + a9999; a9998 has no y and
	// cannot match the two-property star
	if len(after) != 300 {
		t.Fatalf("post-recovery lifecycle: %d rows", len(after))
	}
}

// TestOpenIsLazy is the acceptance criterion for lazy loading: opening a
// multi-table snapshot decodes no segment payloads (SegmentsDecoded = 0,
// SegmentBytes = 0); the first scan faults in only what it reads.
func TestOpenIsLazy(t *testing.T) {
	st := persistStore(t, persistOpts(), 2200) // > 2 blocks per table
	path := filepath.Join(t.TempDir(), "s.srdf")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenStore(path, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tb := got.Catalog().Visible(); len(tb) < 2 {
		t.Fatalf("want a multi-table store, got %d tables", len(tb))
	}
	ps := got.Pool().Stats()
	if ps.SegmentsDecoded != 0 || ps.SegmentBytes != 0 {
		t.Fatalf("open decoded %d segments (%d bytes); open must be lazy", ps.SegmentsDecoded, ps.SegmentBytes)
	}
	if ps.SegmentsLazy == 0 {
		t.Fatal("no lazy segments registered at open")
	}
	total := ps.SegmentsLazy

	// One single-column scan: only that column's blocks may decode.
	if rows := rowsOf(t, got, `SELECT ?s ?u WHERE { ?s <http://persist/u> ?u }`, plan.ModeRDFScan); len(rows) != 2200 {
		t.Fatalf("scan returned %d rows", len(rows))
	}
	ps = got.Pool().Stats()
	if ps.SegmentsDecoded == 0 {
		t.Fatal("scan decoded nothing")
	}
	if ps.SegmentsDecoded >= total {
		t.Fatalf("scan decoded every segment (%d of %d); faulting is not selective", ps.SegmentsDecoded, total)
	}
	if ps.SegmentBytes <= 0 {
		t.Fatal("decoded segments not accounted")
	}
}

// TestWALRecovery covers the crash path: logged trickle writes survive a
// dropped store (no Save after the writes) and replay into the delta
// layer at open.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	snap, wal := filepath.Join(dir, "s.srdf"), filepath.Join(dir, "s.wal")

	opts := persistOpts()
	st := persistStore(t, opts, 60)
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	// reopen with a WAL attached; trickle writes are logged
	opts.WALPath = wal
	st, err := OpenStore(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	st.Add(nt.Triple{S: dict.IRI("http://persist/a7777"), P: dict.IRI("http://persist/x"), O: dict.IntLit(42)})
	st.Add(nt.Triple{S: dict.IRI("http://persist/a7777"), P: dict.IRI("http://persist/y"), O: dict.IntLit(2)})
	st.Delete(nt.Triple{S: dict.IRI("http://persist/a0001"), P: dict.IRI("http://persist/y"), O: dict.IntLit(1)})
	// set-semantics no-ops must not be logged: a duplicate add, a repeat
	// delete of an already-queued triple, a delete of an absent one
	st.Add(nt.Triple{S: dict.IRI("http://persist/a0002"), P: dict.IRI("http://persist/x"), O: dict.IntLit(2)})
	st.Delete(nt.Triple{S: dict.IRI("http://persist/a0001"), P: dict.IRI("http://persist/y"), O: dict.IntLit(1)})
	st.Delete(nt.Triple{S: dict.IRI("http://persist/a0001"), P: dict.IRI("http://persist/x"), O: dict.IntLit(999)})
	want := rowsOf(t, st, persistQueries[0], plan.ModeRDFScan) // also syncs the batch
	if n := st.Stats().WALRecords; n != 3 {
		t.Fatalf("logged %d records, want 3 (no-ops must not log)", n)
	}
	// crash: the store is dropped without Save or Close

	rec, err := OpenStore(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	have := rowsOf(t, rec, persistQueries[0], plan.ModeRDFScan)
	if len(have) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(have), len(want))
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("row %d differs after recovery:\n%s\nvs\n%s", i, have[i], want[i])
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTruncatesWAL: Save, explicit Compact and Organize fold
// the log into a fresh snapshot and truncate it; replaying the truncated
// log is a no-op.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	snap, wal := filepath.Join(dir, "s.srdf"), filepath.Join(dir, "s.wal")
	opts := persistOpts()
	opts.WALPath = wal
	st := persistStore(t, opts, 40)
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	walRecords := func() int {
		w, ops, err := storage.OpenWAL(wal)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		return len(ops)
	}

	add := func(n int) {
		st.Add(nt.Triple{S: dict.IRI(fmt.Sprintf("http://persist/a9%03d", n)), P: dict.IRI("http://persist/x"), O: dict.IntLit(int64(n))})
	}
	add(1)
	st.Stats() // sync the batch
	if got := st.Stats().WALRecords; got != 1 {
		t.Fatalf("WALRecords = %d, want 1", got)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := walRecords(); got != 0 {
		t.Fatalf("%d records after Compact checkpoint", got)
	}
	add(2)
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	if got := walRecords(); got != 0 {
		t.Fatalf("%d records after Organize checkpoint", got)
	}
	add(3)
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	if got := walRecords(); got != 0 {
		t.Fatalf("%d records after Save checkpoint", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// everything is in the snapshot: reopening with the truncated WAL
	// reproduces the state
	rec, err := OpenStore(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT ?s ?x WHERE { ?s <http://persist/x> ?x . FILTER (?x >= 0) }`
	if a, b := rowsOf(t, st, q, plan.ModeRDFScan), rowsOf(t, rec, q, plan.ModeRDFScan); len(a) != len(b) {
		t.Fatalf("reopened store has %d rows, want %d", len(b), len(a))
	}
	rec.Close()
}

// TestOpenErrors: typed failures surface through OpenStore.
func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenStore(filepath.Join(dir, "missing.srdf"), persistOpts()); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
	bogus := filepath.Join(dir, "bogus.srdf")
	if err := os.WriteFile(bogus, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(bogus, persistOpts()); err != storage.ErrNotSnapshot {
		t.Fatalf("bogus file: %v", err)
	}
}

// TestUnorganizedSaveOpen round-trips a store that was never organized:
// the snapshot carries dictionary and triples only, and Organize works
// after open.
func TestUnorganizedSaveOpen(t *testing.T) {
	opts := persistOpts()
	st := NewStore(opts)
	if _, err := st.LoadTurtle(strings.NewReader(persistSource(50))); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "raw.srdf")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenStore(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats().Organized {
		t.Fatal("unorganized snapshot opened organized")
	}
	if got.NumTriples() != st.NumTriples() {
		t.Fatalf("triples %d vs %d", got.NumTriples(), st.NumTriples())
	}
	if _, err := got.Organize(); err != nil {
		t.Fatal(err)
	}
	if n := len(rowsOf(t, got, persistQueries[0], plan.ModeRDFScan)); n != 50 {
		t.Fatalf("%d rows after organize-on-open", n)
	}
}
