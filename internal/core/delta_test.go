package core

import (
	"fmt"
	"strings"
	"testing"

	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// deltaGraph builds n subjects of one characteristic set.
func deltaGraph(n int) string {
	var b strings.Builder
	b.WriteString("@prefix g: <http://g/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "g:s%d g:name \"n%d\" ; g:val %d .\n", i, i, i)
	}
	return b.String()
}

func newDeltaStore(t *testing.T, n, threshold int) *Store {
	t.Helper()
	opts := DefaultOptions()
	opts.CS.MinSupport = 3
	opts.CompactThreshold = threshold
	s := NewStore(opts)
	if _, err := s.LoadTurtle(strings.NewReader(deltaGraph(n))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func deltaTriple(i int) (nt.Triple, nt.Triple) {
	return nt.Triple{S: dict.IRI(fmt.Sprintf("http://g/s%d", i)), P: dict.IRI("http://g/name"), O: dict.StringLit(fmt.Sprintf("n%d", i))},
		nt.Triple{S: dict.IRI(fmt.Sprintf("http://g/s%d", i)), P: dict.IRI("http://g/val"), O: dict.IntLit(int64(i))}
}

const deltaQuery = `SELECT ?s ?n ?v WHERE { ?s <http://g/name> ?n . ?s <http://g/val> ?v }`

func mustRows(t *testing.T, s *Store, mode plan.Mode) int {
	t.Helper()
	res, err := s.Query(deltaQuery, QueryOptions{Mode: mode, ZoneMaps: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Len()
}

// TestEpochAdvancesOnWrites checks that the snapshot version moves only
// when writes are folded in.
func TestEpochAdvancesOnWrites(t *testing.T) {
	s := newDeltaStore(t, 10, -1)
	e0 := s.Epoch()
	if got := mustRows(t, s, plan.ModeRDFScan); got != 10 {
		t.Fatalf("rows = %d", got)
	}
	if s.Epoch() != e0 {
		t.Fatalf("read-only query advanced the epoch: %d -> %d", e0, s.Epoch())
	}
	a, b := deltaTriple(99)
	s.Add(a)
	s.Add(b)
	if got := mustRows(t, s, plan.ModeRDFScan); got != 11 {
		t.Fatalf("rows after add = %d", got)
	}
	if s.Epoch() <= e0 {
		t.Fatalf("write did not advance the epoch")
	}
}

// TestDeleteBeforeOrganize checks that the pending-delete path works on
// an unorganized store too.
func TestDeleteBeforeOrganize(t *testing.T) {
	opts := DefaultOptions()
	s := NewStore(opts)
	a, b := deltaTriple(1)
	s.Add(a)
	s.Add(b)
	s.Delete(b)
	if n := s.NumTriples(); n != 1 {
		t.Fatalf("NumTriples = %d, want 1", n)
	}
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT ?s ?n WHERE { ?s <http://g/name> ?n }`, QueryOptions{Mode: plan.ModeDefault})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
}

// TestAutoCompactTriggers checks that the delta layer is folded into
// sealed segments once it outgrows the configured threshold.
func TestAutoCompactTriggers(t *testing.T) {
	s := newDeltaStore(t, 12, 4)
	for i := 100; i < 110; i++ {
		a, b := deltaTriple(i)
		s.Add(a)
		s.Add(b)
	}
	if got := mustRows(t, s, plan.ModeRDFScan); got != 22 {
		t.Fatalf("rows = %d, want 22", got)
	}
	st := s.Stats()
	if st.DeltaRows >= 10 {
		t.Fatalf("auto-compaction never fired: %d delta rows", st.DeltaRows)
	}
	// and results survive in both plan families
	if got := mustRows(t, s, plan.ModeDefault); got != 22 {
		t.Fatalf("default-mode rows = %d, want 22", got)
	}
}

// TestDeleteWholeSubject removes every triple of a sealed subject and
// checks it disappears from both plan families without a rebuild.
func TestDeleteWholeSubject(t *testing.T) {
	s := newDeltaStore(t, 10, -1)
	a, b := deltaTriple(3)
	s.Delete(a)
	s.Delete(b)
	for _, mode := range []plan.Mode{plan.ModeDefault, plan.ModeRDFScan} {
		if got := mustRows(t, s, mode); got != 9 {
			t.Fatalf("mode %v: rows = %d, want 9", mode, got)
		}
	}
	st := s.Stats()
	if st.Tombstones != 1 {
		t.Fatalf("tombstones = %d, want 1", st.Tombstones)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []plan.Mode{plan.ModeDefault, plan.ModeRDFScan} {
		if got := mustRows(t, s, mode); got != 9 {
			t.Fatalf("mode %v after compact: rows = %d, want 9", mode, got)
		}
	}
	// the subject can come back, post-compact, as a fresh delta row
	s.Add(a)
	s.Add(b)
	if got := mustRows(t, s, plan.ModeRDFScan); got != 10 {
		t.Fatalf("after re-add: rows = %d, want 10", got)
	}
}

// TestReAddAfterAppliedDelete covers the write-loss regression where
// NumTriples applied a pending delete (leaving the index stale) and a
// subsequent re-Add of the same triple was mistaken for a duplicate.
func TestReAddAfterAppliedDelete(t *testing.T) {
	s := newDeltaStore(t, 10, -1)
	a, _ := deltaTriple(3)
	s.Delete(a)
	n := s.NumTriples() // applies the delete without rebuilding indexes
	s.Add(a)            // must not be treated as a duplicate
	if got := s.NumTriples(); got != n+1 {
		t.Fatalf("re-add after applied delete: NumTriples %d, want %d", got, n+1)
	}
	if got := mustRows(t, s, plan.ModeRDFScan); got != 10 {
		t.Fatalf("rows = %d, want 10", got)
	}
}

// TestPreOrganizeDeleteThenReAdd covers the pre-Organize regression
// where a re-Add after a pending Delete appended a second copy and the
// batch delete then erased both.
func TestPreOrganizeDeleteThenReAdd(t *testing.T) {
	s := NewStore(DefaultOptions())
	a, b := deltaTriple(1)
	s.Add(a)
	s.Add(b)
	s.Delete(a)
	s.Add(a) // net effect: both triples present
	if n := s.NumTriples(); n != 2 {
		t.Fatalf("NumTriples = %d, want 2", n)
	}
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT ?s ?n WHERE { ?s <http://g/name> ?n }`, QueryOptions{Mode: plan.ModeDefault})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
}

// TestOrganizeAfterDeltas folds the whole delta layer into a fresh
// clustering and restores a clean catalog.
func TestOrganizeAfterDeltas(t *testing.T) {
	s := newDeltaStore(t, 10, -1)
	for i := 50; i < 55; i++ {
		a, b := deltaTriple(i)
		s.Add(a)
		s.Add(b)
	}
	a, _ := deltaTriple(0)
	s.Delete(a)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DeltaRows != 0 || st.Tombstones != 0 {
		t.Fatalf("organize left delta state: %+v", st)
	}
	// s0 lost its name, so the two-prop star excludes it: 14 rows
	if got := mustRows(t, s, plan.ModeRDFScan); got != 14 {
		t.Fatalf("rows = %d, want 14", got)
	}
}
