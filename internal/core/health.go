package core

import (
	"errors"
	"fmt"
	"time"

	"srdf/internal/storage"
)

// ErrReadOnly reports a write rejected because the store latched into
// read-only mode after durability writes (WAL sync, WAL truncate,
// snapshot checkpoint) failed past their retry budget. Reads keep
// serving the last published epoch; the background probe — and every
// subsequent write attempt past the backoff window — retries the
// failed operation and un-latches when the disk recovers.
var ErrReadOnly = errors.New("core: store is read-only (durability degraded)")

// DefaultProbeInterval is the base delay between recovery probes after
// the store latches read-only; it doubles per failed probe up to 32×.
const DefaultProbeInterval = 100 * time.Millisecond

// HealthState classifies the store's durability condition.
type HealthState int

const (
	// StateHealthy: writes durable, everything serving.
	StateHealthy HealthState = iota
	// StateReadOnly: durability failed past the retry budget; writes
	// are rejected with ErrReadOnly, reads serve the last published
	// epoch, and recovery probes run in the background.
	StateReadOnly
)

func (st HealthState) String() string {
	if st == StateReadOnly {
		return "read-only"
	}
	return "ok"
}

// Health is a point-in-time view of the store's durability state.
type Health struct {
	State HealthState
	// Err is the latched failure ("" when healthy).
	Err string
	// Since is when the current state was entered.
	Since time.Time
	// Probes counts failed recovery attempts since latching.
	Probes int
	// RetryIn is the time until the next automatic recovery probe
	// (0 when healthy or a probe is due now).
	RetryIn time.Duration
}

// Health reports the store's durability state: read-only stores name
// the latched error, the number of failed recovery probes, and the
// countdown to the next one.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ro {
		return Health{State: StateHealthy}
	}
	h := Health{
		State:  StateReadOnly,
		Since:  s.roSince,
		Probes: s.roProbes,
	}
	if s.roCause != nil {
		h.Err = s.roCause.Error()
	}
	if d := time.Until(s.roNext); d > 0 {
		h.RetryIn = d
	}
	return h
}

// retryPolicy is the bounded immediate-retry budget for durability
// writes; exhausting it latches read-only and hands the longer horizon
// to the background probe.
func (s *Store) retryPolicy() storage.RetryPolicy {
	if s.opts.Retry != (storage.RetryPolicy{}) {
		return s.opts.Retry
	}
	return storage.DefaultRetry
}

func (s *Store) probeInterval() time.Duration {
	if s.opts.ProbeInterval > 0 {
		return s.opts.ProbeInterval
	}
	return DefaultProbeInterval
}

// latchLocked enters (or re-arms) read-only mode and schedules the
// next recovery probe with exponential backoff.
func (s *Store) latchLocked(cause error) {
	if !s.ro {
		s.ro = true
		s.roSince = time.Now()
		s.roProbes = 0
	}
	s.roCause = cause
	base := s.probeInterval()
	d := base << min(s.roProbes, 5)
	s.roNext = time.Now().Add(d)
	s.startProbeLocked()
}

// unlatchLocked leaves read-only mode after durability is restored.
func (s *Store) unlatchLocked() {
	s.ro = false
	s.roCause = nil
	s.roProbes = 0
	s.roNext = time.Time{}
}

// roErrLocked is the error writes (and un-publishable reads) get while
// latched.
func (s *Store) roErrLocked() error {
	if s.roCause != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, s.roCause)
	}
	return ErrReadOnly
}

// writableLocked gates the write path. While latched it first tries a
// cheap recovery (re-attach, truncate retry, sync) once the backoff
// window has passed, so a retried write can succeed the moment the
// disk does — without waiting on the background probe.
func (s *Store) writableLocked() error {
	if !s.ro {
		return nil
	}
	if !time.Now().Before(s.roNext) && s.recoverLocked(false) {
		return nil
	}
	return s.roErrLocked()
}

// recoverLocked re-attempts whatever durability operation latched the
// store, in dependency order: re-open a log that never attached, retry
// a half-finished truncate, sync the pending batch, and — only when
// allowCkpt (the background probe; checkpoint I/O never rides a query
// or a trickle write) — re-run a failed checkpoint. Returns true when
// the store un-latched. May briefly release s.mu when checkpointing.
func (s *Store) recoverLocked(allowCkpt bool) bool {
	if !s.ro {
		return true
	}
	s.roProbes++
	ok := true
	if s.wal == nil && s.opts.WALPath != "" {
		// The log never attached (or was lost); writes were rejected
		// while latched, so replaying whatever the re-opened log holds
		// is the same recovery OpenStore performs.
		w, ops, err := storage.OpenWALFS(s.fs, s.opts.WALPath)
		if err != nil {
			s.roCause = fmt.Errorf("core: wal: %w", err)
			ok = false
		} else {
			for _, op := range ops {
				if op.Del {
					s.deleteLocked(op.T)
				} else {
					s.addLocked(op.T)
				}
			}
			s.wal = w
			s.walErr = nil
		}
	}
	if ok && s.wal != nil && s.wal.Broken() {
		if err := s.wal.Truncate(); err != nil {
			s.roCause = fmt.Errorf("core: wal truncate: %w", err)
			ok = false
		} else {
			s.walErr = nil
		}
	}
	if ok && s.wal != nil && s.wal.Dirty() {
		if err := s.wal.Sync(); err != nil {
			s.roCause = fmt.Errorf("core: wal sync: %w", err)
			ok = false
		} else {
			s.walErr = nil
		}
	}
	if ok && s.walErr != nil {
		// nothing above failed now; the old cause is stale
		s.walErr = nil
	}
	if ok && (s.walLost != nil || s.ckptPending) {
		if allowCkpt && s.snapshotPath != "" {
			if err := s.checkpointLocked(); err != nil {
				s.roCause = err
				ok = false
			}
		} else {
			ok = false // needs a checkpoint this probe may not run
		}
	}
	if ok {
		s.unlatchLocked()
		return true
	}
	base := s.probeInterval()
	s.roNext = time.Now().Add(base << min(s.roProbes, 5))
	return false
}

// startProbeLocked launches the background recovery prober (one per
// latch episode). The prober exits when the store un-latches, when
// Close stops it, or when recovery needs an operation it cannot run.
func (s *Store) startProbeLocked() {
	if s.probeC != nil {
		return
	}
	stop := make(chan struct{})
	s.probeC = stop
	go s.probeLoop(stop)
}

func (s *Store) probeLoop(stop chan struct{}) {
	for {
		s.mu.Lock()
		if s.probeC != stop || !s.ro {
			if s.probeC == stop {
				s.probeC = nil
			}
			s.mu.Unlock()
			return
		}
		if !time.Now().Before(s.roNext) {
			if s.recoverLocked(true) {
				if s.probeC == stop {
					s.probeC = nil
				}
				s.mu.Unlock()
				return
			}
		}
		wait := time.Until(s.roNext)
		s.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
	}
}

// stopProbeLocked detaches and stops the background prober.
func (s *Store) stopProbeLocked() {
	if s.probeC != nil {
		close(s.probeC)
		s.probeC = nil
	}
}
