// Package rdfh implements the RDF-H benchmark the paper evaluates on: a
// straight 1-1 mapping of TPC-H to SPARQL (the paper used the bibm
// project's generator; this is a self-contained deterministic
// re-implementation). It generates the relational rows, emits them as
// RDF triples in a realistic interleaved parse order, provides the
// SPARQL text of queries Q1, Q3, Q5 and Q6, and reference evaluators
// that compute the expected answers directly from the rows so the
// engine's results can be validated.
package rdfh

import (
	"fmt"
	"math/rand"
)

// startDate is 1992-01-01 in days since 1970-01-01.
const startDate = 8036

// dateRangeDays is the orderdate span: 1992-01-01 .. 1998-08-02.
const dateRangeDays = 2406

// Region is one row of REGION.
type Region struct {
	Key  int
	Name string
}

// Nation is one row of NATION.
type Nation struct {
	Key       int
	Name      string
	RegionKey int
}

// Supplier is one row of SUPPLIER.
type Supplier struct {
	Key       int
	Name      string
	NationKey int
	AcctBal   float64
}

// Customer is one row of CUSTOMER.
type Customer struct {
	Key        int
	Name       string
	NationKey  int
	AcctBal    float64
	MktSegment string
}

// Part is one row of PART.
type Part struct {
	Key         int
	Name        string
	Brand       string
	Type        string
	Size        int
	RetailPrice float64
}

// PartSupp is one row of PARTSUPP.
type PartSupp struct {
	PartKey    int
	SuppKey    int
	AvailQty   int
	SupplyCost float64
}

// Order is one row of ORDERS.
type Order struct {
	Key          int
	CustKey      int
	Status       string
	TotalPrice   float64
	OrderDate    int64 // epoch days
	Priority     string
	ShipPriority int
}

// Lineitem is one row of LINEITEM.
type Lineitem struct {
	OrderKey      int
	PartKey       int
	SuppKey       int
	LineNumber    int
	Quantity      int
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    string
	LineStatus    string
	ShipDate      int64
	CommitDate    int64
	ReceiptDate   int64
	ShipMode      string
}

// Data is one generated RDF-H database.
type Data struct {
	SF        float64
	Regions   []Region
	Nations   []Nation
	Suppliers []Supplier
	Customers []Customer
	Parts     []Part
	PartSupps []PartSupp
	Orders    []Order
	Lineitems []Lineitem
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
	"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
	"UNITED STATES",
}

// nationRegion maps each nation to its region per the TPC-H spec.
var nationRegion = []int{
	0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var brands = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#23", "Brand#34", "Brand#45"}
var typeWords = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeMat = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

func scaled(n int, sf float64) int {
	v := int(float64(n) * sf)
	if v < 1 {
		v = 1
	}
	return v
}

// Generate builds a deterministic RDF-H database at scale factor sf.
// sf=1 is the canonical TPC-H size (6M lineitems); the paper ran SF=10,
// the benches here default much smaller. The same sf and seed always
// produce identical data.
func Generate(sf float64, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	d := &Data{SF: sf}

	for i, n := range regionNames {
		d.Regions = append(d.Regions, Region{Key: i, Name: n})
	}
	for i, n := range nationNames {
		d.Nations = append(d.Nations, Nation{Key: i, Name: n, RegionKey: nationRegion[i]})
	}
	nSupp := scaled(10000, sf)
	for i := 0; i < nSupp; i++ {
		d.Suppliers = append(d.Suppliers, Supplier{
			Key:       i + 1,
			Name:      fmt.Sprintf("Supplier#%09d", i+1),
			NationKey: rng.Intn(len(d.Nations)),
			AcctBal:   round2(rng.Float64()*11000 - 1000),
		})
	}
	nCust := scaled(150000, sf)
	for i := 0; i < nCust; i++ {
		d.Customers = append(d.Customers, Customer{
			Key:        i + 1,
			Name:       fmt.Sprintf("Customer#%09d", i+1),
			NationKey:  rng.Intn(len(d.Nations)),
			AcctBal:    round2(rng.Float64()*11000 - 1000),
			MktSegment: segments[rng.Intn(len(segments))],
		})
	}
	nPart := scaled(200000, sf)
	for i := 0; i < nPart; i++ {
		d.Parts = append(d.Parts, Part{
			Key:         i + 1,
			Name:        fmt.Sprintf("part %d", i+1),
			Brand:       brands[rng.Intn(len(brands))],
			Type:        typeWords[rng.Intn(len(typeWords))] + " " + typeMat[rng.Intn(len(typeMat))],
			Size:        1 + rng.Intn(50),
			RetailPrice: round2(900 + float64(i%1000)),
		})
	}
	for i := 0; i < nPart; i++ {
		for j := 0; j < 2; j++ { // 2 suppliers per part (spec: 4)
			d.PartSupps = append(d.PartSupps, PartSupp{
				PartKey:    i + 1,
				SuppKey:    1 + (i*2+j)%nSupp,
				AvailQty:   1 + rng.Intn(9999),
				SupplyCost: round2(1 + rng.Float64()*999),
			})
		}
	}
	nOrd := scaled(1500000, sf)
	lineNo := 0
	for i := 0; i < nOrd; i++ {
		odate := int64(startDate + rng.Intn(dateRangeDays-121))
		o := Order{
			Key:          i + 1,
			CustKey:      1 + rng.Intn(nCust),
			Priority:     priorities[rng.Intn(len(priorities))],
			OrderDate:    odate,
			ShipPriority: 0,
		}
		nl := 1 + rng.Intn(7)
		var total float64
		allF := true
		for l := 0; l < nl; l++ {
			qty := 1 + rng.Intn(50)
			pk := 1 + rng.Intn(nPart)
			price := round2(float64(qty) * (900 + float64(pk%1000)) / 10)
			ship := odate + 1 + int64(rng.Intn(121))
			li := Lineitem{
				OrderKey:      o.Key,
				PartKey:       pk,
				SuppKey:       1 + (pk*2)%nSupp,
				LineNumber:    l + 1,
				Quantity:      qty,
				ExtendedPrice: price,
				Discount:      round2(float64(rng.Intn(11)) / 100),
				Tax:           round2(float64(rng.Intn(9)) / 100),
				ShipDate:      ship,
				CommitDate:    odate + 30 + int64(rng.Intn(61)),
				ReceiptDate:   ship + 1 + int64(rng.Intn(30)),
				ShipMode:      shipModes[rng.Intn(len(shipModes))],
			}
			// returnflag/linestatus per spec shape
			if li.ReceiptDate <= startDate+2466-90 && rng.Intn(2) == 0 {
				li.ReturnFlag = "R"
			} else if rng.Intn(2) == 0 {
				li.ReturnFlag = "A"
			} else {
				li.ReturnFlag = "N"
			}
			if li.ShipDate > 9300 { // ~1995-06
				li.LineStatus = "O"
				allF = false
			} else {
				li.LineStatus = "F"
			}
			total += price * (1 + li.Tax) * (1 - li.Discount)
			d.Lineitems = append(d.Lineitems, li)
			lineNo++
		}
		if allF {
			o.Status = "F"
		} else {
			o.Status = "O"
		}
		o.TotalPrice = round2(total)
		d.Orders = append(d.Orders, o)
	}
	return d
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// Counts summarizes a database's size.
type Counts struct {
	Regions, Nations, Suppliers, Customers, Parts, PartSupps, Orders, Lineitems, Triples int
}

// Counts returns row counts (Triples is filled by EmitTriples).
func (d *Data) Counts() Counts {
	return Counts{
		Regions:   len(d.Regions),
		Nations:   len(d.Nations),
		Suppliers: len(d.Suppliers),
		Customers: len(d.Customers),
		Parts:     len(d.Parts),
		PartSupps: len(d.PartSupps),
		Orders:    len(d.Orders),
		Lineitems: len(d.Lineitems),
	}
}
