package rdfh

import "testing"

func TestHarnessTableI(t *testing.T) {
	h, err := NewHarness(0.002, 42)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := h.RunTableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 24 {
		t.Fatalf("measurements = %d, want 24", len(ms))
	}
	for _, m := range ms {
		if !m.Checked {
			t.Errorf("unvalidated cell: %s %s cold=%v rows=%d", m.Config.Name, m.Query, m.Cold, m.Rows)
		}
	}
	out := FormatTableI(ms, 0.002)
	t.Logf("\n%s", out)
}
