package rdfh

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

const testSF = 0.002

func testData() *Data { return Generate(testSF, 42) }

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	if len(a.Lineitems) != len(b.Lineitems) || len(a.Orders) != len(b.Orders) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs", i)
		}
	}
	c := Generate(0.001, 8)
	same := true
	for i := range a.Lineitems {
		if i < len(c.Lineitems) && a.Lineitems[i] != c.Lineitems[i] {
			same = false
			break
		}
	}
	if same && len(a.Lineitems) == len(c.Lineitems) {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateShape(t *testing.T) {
	d := testData()
	c := d.Counts()
	if c.Regions != 5 || c.Nations != 25 {
		t.Errorf("regions/nations: %v", c)
	}
	if c.Orders == 0 || c.Lineitems < c.Orders {
		t.Errorf("orders/lineitems: %v", c)
	}
	// average lineitems per order ~4
	avg := float64(c.Lineitems) / float64(c.Orders)
	if avg < 2.5 || avg > 5.5 {
		t.Errorf("avg lineitems per order = %.2f", avg)
	}
	// date correlation: shipdate in (orderdate, orderdate+121]
	ord := map[int]int64{}
	for i := range d.Orders {
		ord[d.Orders[i].Key] = d.Orders[i].OrderDate
	}
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		od := ord[l.OrderKey]
		if l.ShipDate <= od || l.ShipDate > od+121 {
			t.Fatalf("lineitem %d shipdate %d outside (%d, %d]", i, l.ShipDate, od, od+121)
		}
	}
}

func TestEmitAndParseBack(t *testing.T) {
	d := Generate(0.0005, 1)
	var buf bytes.Buffer
	n, err := d.WriteNT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := nt.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted N-Triples do not re-parse: %v", err)
	}
	if len(ts) != n {
		t.Errorf("wrote %d, parsed %d", n, len(ts))
	}
}

// loadStore loads a generated database into an organized store.
func loadStore(t testing.TB, d *Data) *core.Store {
	t.Helper()
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 5
	st := core.NewStore(opts)
	d.Emit(func(tr nt.Triple) { st.Add(tr) })
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSchemaDiscoveryOnRDFH(t *testing.T) {
	d := testData()
	st := loadStore(t, d)
	rep := st.Stats()
	if rep.Coverage < 0.999 {
		t.Errorf("RDF-H is fully regular; coverage = %v", rep.Coverage)
	}
	// 8 entity classes
	if rep.Tables != 8 {
		t.Errorf("tables = %d, want 8:\n%s", rep.Tables, st.SQLSchema())
	}
	ddl := st.SQLSchema()
	for _, want := range []string{"shipdate DATE", "orderdate DATE", "REFERENCES"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff < 1e-6*math.Max(math.Abs(a), math.Abs(b))+1e-9
}

func TestQ6AllConfigs(t *testing.T) {
	d := testData()
	st := loadStore(t, d)
	want := RefQ6(d)
	for _, cfg := range []core.QueryOptions{
		{Mode: plan.ModeDefault},
		{Mode: plan.ModeRDFScan},
		{Mode: plan.ModeRDFScan, ZoneMaps: true},
	} {
		res, err := st.Query(Q6(), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Len() != 1 {
			t.Fatalf("%+v: rows = %d", cfg, res.Len())
		}
		got := res.Rows[0][0].AsFloat()
		if !approxEq(got, want) {
			t.Errorf("%+v: revenue = %v, want %v", cfg, got, want)
		}
	}
	if want == 0 {
		t.Error("degenerate test: reference revenue is 0")
	}
}

func TestQ3AllConfigs(t *testing.T) {
	d := testData()
	st := loadStore(t, d)
	want := RefQ3(d)
	if len(want) == 0 {
		t.Skip("no qualifying orders at this SF/seed")
	}
	for _, cfg := range []core.QueryOptions{
		{Mode: plan.ModeDefault},
		{Mode: plan.ModeRDFScan},
		{Mode: plan.ModeRDFScan, ZoneMaps: true},
	} {
		res, err := st.Query(Q3(), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Len() != len(want) {
			t.Fatalf("%+v: rows = %d, want %d", cfg, res.Len(), len(want))
		}
		for i, w := range want {
			if !approxEq(res.Rows[i][1].AsFloat(), w.Revenue) {
				t.Errorf("%+v row %d: revenue %v, want %v", cfg, i, res.Rows[i][1], w.Revenue)
			}
		}
	}
}

func TestQ1AllConfigs(t *testing.T) {
	d := testData()
	st := loadStore(t, d)
	want := RefQ1(d)
	for _, cfg := range []core.QueryOptions{
		{Mode: plan.ModeDefault},
		{Mode: plan.ModeRDFScan, ZoneMaps: true},
	} {
		res, err := st.Query(Q1(), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Len() != len(want) {
			t.Fatalf("%+v: groups = %d, want %d", cfg, res.Len(), len(want))
		}
		for i, w := range want {
			if res.Rows[i][0].Lexical() != w.ReturnFlag || res.Rows[i][1].Lexical() != w.LineStatus {
				t.Errorf("group %d: %s/%s want %s/%s", i,
					res.Rows[i][0].Lexical(), res.Rows[i][1].Lexical(), w.ReturnFlag, w.LineStatus)
			}
			if res.Rows[i][2].Int != w.SumQty {
				t.Errorf("group %d sum_qty: %v want %d", i, res.Rows[i][2], w.SumQty)
			}
			if !approxEq(res.Rows[i][3].AsFloat(), w.SumBase) {
				t.Errorf("group %d sum_base: %v want %v", i, res.Rows[i][3], w.SumBase)
			}
			if int(res.Rows[i][9].Int) != w.Count {
				t.Errorf("group %d count: %v want %d", i, res.Rows[i][9], w.Count)
			}
		}
	}
}

func TestQ5AllConfigs(t *testing.T) {
	d := Generate(0.004, 11) // a bit bigger so ASIA matches exist
	st := loadStore(t, d)
	want := RefQ5(d)
	if len(want) == 0 {
		t.Skip("no qualifying ASIA volume at this SF/seed")
	}
	for _, cfg := range []core.QueryOptions{
		{Mode: plan.ModeDefault},
		{Mode: plan.ModeRDFScan, ZoneMaps: true},
	} {
		res, err := st.Query(Q5(), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Len() != len(want) {
			t.Fatalf("%+v: rows = %d, want %d", cfg, res.Len(), len(want))
		}
		for i, w := range want {
			if res.Rows[i][0].Lexical() != w.Nation || !approxEq(res.Rows[i][1].AsFloat(), w.Revenue) {
				t.Errorf("%+v row %d: %s %v, want %s %v", cfg, i,
					res.Rows[i][0].Lexical(), res.Rows[i][1], w.Nation, w.Revenue)
			}
		}
	}
}

func TestLineitemSubOrderedByShipdate(t *testing.T) {
	d := testData()
	st := loadStore(t, d)
	// find the lineitem table: the one with a shipdate column
	var found bool
	for _, tab := range st.Catalog().Visible() {
		col := tab.ColByName("lineitem_shipdate")
		if col == nil {
			continue
		}
		found = true
		vals := col.Data.Values()
		for i := 1; i < len(vals); i++ {
			if vals[i] != dict.Nil && vals[i-1] != dict.Nil && vals[i] < vals[i-1] {
				t.Fatalf("shipdate column not ascending at %d", i)
			}
		}
	}
	if !found {
		t.Fatal("lineitem table not found")
	}
}

func TestZoneMapsReducePageTouches(t *testing.T) {
	d := Generate(0.01, 3)
	st := loadStore(t, d)
	run := func(cfg core.QueryOptions) uint64 {
		st.Pool().ResetCold()
		st.Pool().ResetStats()
		if _, err := st.Query(Q6(), cfg); err != nil {
			t.Fatal(err)
		}
		return st.Pool().Stats().Misses
	}
	noZones := run(core.QueryOptions{Mode: plan.ModeRDFScan})
	zones := run(core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
	defPages := run(core.QueryOptions{Mode: plan.ModeDefault})
	if zones >= noZones {
		t.Errorf("zone maps did not reduce pages: %d vs %d", zones, noZones)
	}
	if zones >= defPages {
		t.Errorf("RDFscan+zones (%d pages) should beat Default (%d pages)", zones, defPages)
	}
}
