package rdfh

import (
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"srdf/internal/core"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// The out-of-core pair: TestOutOfCoreBuild writes an RDF-H store to
// SRDF_OOC_STORE in one process, TestOutOfCoreSweep opens it in another
// with a pool budget a tenth of the file size and asserts the query
// sweep completes with bounded RSS growth and real evictions. Two
// processes on purpose — generating the data in the sweep process would
// poison its memory baseline. CI's bounded-memory job drives both (see
// .github/workflows/ci.yml); locally:
//
//	export SRDF_OOC_STORE=/tmp/ooc.srdf
//	SRDF_OOC_BUILD=1 go test -run TestOutOfCoreBuild -count=1 ./internal/rdfh
//	go test -run TestOutOfCoreSweep -count=1 ./internal/rdfh

// oocSF is the build scale factor. The default (SRDF_OOC_SF overrides)
// yields a snapshot around 75 MB — ~5M triples, built in well under a
// minute — so the tenth-size pool budget is large against allocator
// noise but the sweep still hurts without eviction.
func oocSF(t *testing.T) float64 {
	sf := 0.05
	if s := os.Getenv("SRDF_OOC_SF"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("SRDF_OOC_SF: %v", err)
		}
		sf = v
	}
	return sf
}

func TestOutOfCoreBuild(t *testing.T) {
	path := os.Getenv("SRDF_OOC_STORE")
	if path == "" || os.Getenv("SRDF_OOC_BUILD") == "" {
		t.Skip("set SRDF_OOC_STORE and SRDF_OOC_BUILD=1 to build the out-of-core store")
	}
	d := Generate(oocSF(t), 42)
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 5
	st := core.NewStore(opts)
	d.Emit(func(tr nt.Triple) { st.Add(tr) })
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Sidecar with the reference row counts, so the sweep process can
	// validate results without regenerating the data.
	counts := fmt.Sprintf("Q1 %d\nQ3 %d\nQ5 %d\nQ6 1\n",
		len(RefQ1(d)), len(RefQ3(d)), len(RefQ5(d)))
	if err := os.WriteFile(path+".counts", []byte(counts), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	t.Logf("built %s: %d triples, %d bytes", path, st.NumTriples(), fi.Size())
}

// rssBytes reads the process resident set from /proc (Linux-only; the
// sweep skips elsewhere).
func rssBytes(t *testing.T) int64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if f, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(f), " kB"), 10, 64)
			if err != nil {
				t.Fatalf("parse VmRSS %q: %v", line, err)
			}
			return kb << 10
		}
	}
	t.Fatal("VmRSS not found")
	return 0
}

func TestOutOfCoreSweep(t *testing.T) {
	path := os.Getenv("SRDF_OOC_STORE")
	if path == "" || os.Getenv("SRDF_OOC_BUILD") != "" {
		t.Skip("set SRDF_OOC_STORE (and run TestOutOfCoreBuild first) for the out-of-core sweep")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("store missing (run TestOutOfCoreBuild first): %v", err)
	}
	budget := fi.Size() / 10
	if budget <= 0 {
		t.Fatalf("store too small (%d bytes) for a tenth-size budget", fi.Size())
	}

	wantRows := map[string]int{}
	if data, err := os.ReadFile(path + ".counts"); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			var id string
			var n int
			if _, err := fmt.Sscanf(line, "%s %d", &id, &n); err == nil {
				wantRows[id] = n
			}
		}
	}

	opts := core.DefaultOptions()
	opts.PoolBytes = budget
	st, err := core.OpenStore(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}

	run := func(id, qtext string) int {
		res, err := st.Query(qtext, qo)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if want, ok := wantRows[id]; ok && res.Len() != want {
			t.Fatalf("%s returned %d rows, want %d", id, res.Len(), want)
		}
		return res.Len()
	}

	// Warmup round: the first queries pay the one-time costs (catalog
	// refresh, projections) that belong to the RSS baseline, not to the
	// decoded-segment working set under test.
	for id, qtext := range Queries() {
		run(id, qtext)
	}
	debug.FreeOSMemory()
	baseline := rssBytes(t)

	var maxDelta int64
	for round := 0; round < 3; round++ {
		if round == 1 {
			// a cold round forces the refault path on top of the
			// budget-driven evictions
			st.Pool().ResetCold()
		}
		for id, qtext := range Queries() {
			run(id, qtext)
			debug.FreeOSMemory()
			if d := rssBytes(t) - baseline; d > maxDelta {
				maxDelta = d
			}
		}
	}

	ps := st.Pool().Stats()
	t.Logf("store=%d budget=%d baseline=%d maxDelta=%d faults=%d evictions=%d resident=%d",
		fi.Size(), budget, baseline, maxDelta, ps.Faults, ps.Evictions, ps.ResidentBytes)
	if ps.Evictions == 0 {
		t.Errorf("pool never evicted: budget %d too generous for store %d", budget, fi.Size())
	}
	if ps.ResidentBytes > budget {
		t.Errorf("resident decoded bytes %d exceed budget %d", ps.ResidentBytes, budget)
	}
	if maxDelta > 2*budget {
		t.Errorf("RSS grew %d past the warm baseline, budget %d allows 2x", maxDelta, budget)
	}
}
