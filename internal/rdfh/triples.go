package rdfh

import (
	"fmt"
	"io"

	"srdf/internal/dict"
	"srdf/internal/nt"
)

// NS is the RDF-H vocabulary namespace.
const NS = "http://example.com/rdfh/"

// Predicate IRIs of the 1-1 TPC-H mapping. Every column becomes one
// predicate; every row becomes one subject.
var (
	PRegionName = NS + "region_name"

	PNationName   = NS + "nation_name"
	PNationRegion = NS + "nation_region"

	PSuppName    = NS + "supplier_name"
	PSuppNation  = NS + "supplier_nation"
	PSuppAcctBal = NS + "supplier_acctbal"

	PCustName    = NS + "customer_name"
	PCustNation  = NS + "customer_nation"
	PCustAcctBal = NS + "customer_acctbal"
	PCustSegment = NS + "customer_mktsegment"

	PPartName   = NS + "part_name"
	PPartBrand  = NS + "part_brand"
	PPartType   = NS + "part_type"
	PPartSize   = NS + "part_size"
	PPartRetail = NS + "part_retailprice"

	PPsPart = NS + "partsupp_part"
	PPsSupp = NS + "partsupp_supplier"
	PPsQty  = NS + "partsupp_availqty"
	PPsCost = NS + "partsupp_supplycost"

	POrdCust     = NS + "order_customer"
	POrdStatus   = NS + "order_status"
	POrdTotal    = NS + "order_totalprice"
	POrdDate     = NS + "order_orderdate"
	POrdPriority = NS + "order_orderpriority"
	POrdShipPri  = NS + "order_shippriority"

	PLiOrder    = NS + "lineitem_order"
	PLiPart     = NS + "lineitem_part"
	PLiSupp     = NS + "lineitem_supplier"
	PLiLineNo   = NS + "lineitem_linenumber"
	PLiQty      = NS + "lineitem_quantity"
	PLiPrice    = NS + "lineitem_extendedprice"
	PLiDiscount = NS + "lineitem_discount"
	PLiTax      = NS + "lineitem_tax"
	PLiRetFlag  = NS + "lineitem_returnflag"
	PLiStatus   = NS + "lineitem_linestatus"
	PLiShipDate = NS + "lineitem_shipdate"
	PLiCommit   = NS + "lineitem_commitdate"
	PLiReceipt  = NS + "lineitem_receiptdate"
	PLiShipMode = NS + "lineitem_shipmode"
)

// Subject IRI builders.
func RegionIRI(k int) string   { return fmt.Sprintf("%sregion/%d", NS, k) }
func NationIRI(k int) string   { return fmt.Sprintf("%snation/%d", NS, k) }
func SupplierIRI(k int) string { return fmt.Sprintf("%ssupplier/%d", NS, k) }
func CustomerIRI(k int) string { return fmt.Sprintf("%scustomer/%d", NS, k) }
func PartIRI(k int) string     { return fmt.Sprintf("%spart/%d", NS, k) }
func PartSuppIRI(p, s int) string {
	return fmt.Sprintf("%spartsupp/%d_%d", NS, p, s)
}
func OrderIRI(k int) string { return fmt.Sprintf("%sorder/%d", NS, k) }
func LineitemIRI(o, l int) string {
	return fmt.Sprintf("%slineitem/%d_%d", NS, o, l)
}

// Emit streams the database as triples. The emission order interleaves
// each order with its lineitems — the realistic "parse order" whose poor
// locality subject clustering repairs (Table I's ParseOrder rows).
func (d *Data) Emit(fn func(t nt.Triple)) int {
	n := 0
	emit := func(s string, p string, o dict.Term) {
		fn(nt.Triple{S: dict.IRI(s), P: dict.IRI(p), O: o})
		n++
	}
	iri := func(s string) dict.Term { return dict.IRI(s) }
	str := dict.StringLit
	num := dict.IntLit
	flt := dict.FloatLit
	date := func(days int64) dict.Term { return dict.DateLit(dict.FormatDate(days)) }

	for _, r := range d.Regions {
		emit(RegionIRI(r.Key), PRegionName, str(r.Name))
	}
	for _, na := range d.Nations {
		emit(NationIRI(na.Key), PNationName, str(na.Name))
		emit(NationIRI(na.Key), PNationRegion, iri(RegionIRI(na.RegionKey)))
	}
	for _, s := range d.Suppliers {
		si := SupplierIRI(s.Key)
		emit(si, PSuppName, str(s.Name))
		emit(si, PSuppNation, iri(NationIRI(s.NationKey)))
		emit(si, PSuppAcctBal, flt(s.AcctBal))
	}
	for _, c := range d.Customers {
		ci := CustomerIRI(c.Key)
		emit(ci, PCustName, str(c.Name))
		emit(ci, PCustNation, iri(NationIRI(c.NationKey)))
		emit(ci, PCustAcctBal, flt(c.AcctBal))
		emit(ci, PCustSegment, str(c.MktSegment))
	}
	for _, p := range d.Parts {
		pi := PartIRI(p.Key)
		emit(pi, PPartName, str(p.Name))
		emit(pi, PPartBrand, str(p.Brand))
		emit(pi, PPartType, str(p.Type))
		emit(pi, PPartSize, num(int64(p.Size)))
		emit(pi, PPartRetail, flt(p.RetailPrice))
	}
	for _, ps := range d.PartSupps {
		pi := PartSuppIRI(ps.PartKey, ps.SuppKey)
		emit(pi, PPsPart, iri(PartIRI(ps.PartKey)))
		emit(pi, PPsSupp, iri(SupplierIRI(ps.SuppKey)))
		emit(pi, PPsQty, num(int64(ps.AvailQty)))
		emit(pi, PPsCost, flt(ps.SupplyCost))
	}
	// orders interleaved with their lineitems
	li := 0
	for _, o := range d.Orders {
		oi := OrderIRI(o.Key)
		emit(oi, POrdCust, iri(CustomerIRI(o.CustKey)))
		emit(oi, POrdStatus, str(o.Status))
		emit(oi, POrdTotal, flt(o.TotalPrice))
		emit(oi, POrdDate, date(o.OrderDate))
		emit(oi, POrdPriority, str(o.Priority))
		emit(oi, POrdShipPri, num(int64(o.ShipPriority)))
		for li < len(d.Lineitems) && d.Lineitems[li].OrderKey == o.Key {
			l := &d.Lineitems[li]
			lii := LineitemIRI(l.OrderKey, l.LineNumber)
			emit(lii, PLiOrder, iri(oi))
			emit(lii, PLiPart, iri(PartIRI(l.PartKey)))
			emit(lii, PLiSupp, iri(SupplierIRI(l.SuppKey)))
			emit(lii, PLiLineNo, num(int64(l.LineNumber)))
			emit(lii, PLiQty, num(int64(l.Quantity)))
			emit(lii, PLiPrice, flt(l.ExtendedPrice))
			emit(lii, PLiDiscount, flt(l.Discount))
			emit(lii, PLiTax, flt(l.Tax))
			emit(lii, PLiRetFlag, str(l.ReturnFlag))
			emit(lii, PLiStatus, str(l.LineStatus))
			emit(lii, PLiShipDate, date(l.ShipDate))
			emit(lii, PLiCommit, date(l.CommitDate))
			emit(lii, PLiReceipt, date(l.ReceiptDate))
			emit(lii, PLiShipMode, str(l.ShipMode))
			li++
		}
	}
	return n
}

// WriteNT serializes the database as N-Triples.
func (d *Data) WriteNT(w io.Writer) (int, error) {
	nw := nt.NewWriter(w)
	var werr error
	n := d.Emit(func(t nt.Triple) {
		if werr == nil {
			werr = nw.Write(t)
		}
	})
	if werr != nil {
		return n, werr
	}
	return n, nw.Flush()
}

// The paper sub-orders LINEITEM on shipdate and ORDERS on orderdate
// (§II-D). No explicit cluster.Options.SortKeys are needed here: the
// automatic selection picks exactly those columns (the first date-typed,
// non-null, single-valued property of each CS), which the test
// TestLineitemSubOrderedByShipdate asserts.
