package rdfh

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"srdf/internal/core"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// Config is one row of the paper's Table I: a plan scheme × physical
// order × zone-map setting.
type Config struct {
	Name string
	// Clustered selects the fully reorganized store (subject clustering
	// with date sub-ordering, value-ordered literals); otherwise the
	// "ParseOrder" store is used (CS tables exist but without
	// sub-ordering or literal value order — see EXPERIMENTS.md for how
	// this maps onto the paper's hand-modified prototype).
	Clustered bool
	Mode      plan.Mode
	ZoneMaps  bool
}

// TableIConfigs returns the six configurations of Table I in paper
// order.
func TableIConfigs() []Config {
	return []Config{
		{Name: "Default    ParseOrder  No ", Clustered: false, Mode: plan.ModeDefault, ZoneMaps: false},
		{Name: "Default    Clustered   No ", Clustered: true, Mode: plan.ModeDefault, ZoneMaps: false},
		{Name: "Default    Clustered   Yes", Clustered: true, Mode: plan.ModeDefault, ZoneMaps: true},
		{Name: "RDFscan    ParseOrder  No ", Clustered: false, Mode: plan.ModeRDFScan, ZoneMaps: false},
		{Name: "RDFscan    Clustered   No ", Clustered: true, Mode: plan.ModeRDFScan, ZoneMaps: false},
		{Name: "RDFscan    Clustered   Yes", Clustered: true, Mode: plan.ModeRDFScan, ZoneMaps: true},
	}
}

// Measurement is one (config, query, temperature) cell.
type Measurement struct {
	Config  Config
	Query   string
	Cold    bool
	Wall    time.Duration
	SimIO   time.Duration
	Pages   uint64
	Rows    int
	Checked bool // result validated against the reference evaluator
}

// Total is wall time plus simulated I/O — the quantity comparable to the
// paper's seconds.
func (m Measurement) Total() time.Duration { return m.Wall + m.SimIO }

// Harness owns the two stores (parse-order and clustered) of one
// benchmark run.
type Harness struct {
	Data      *Data
	Parse     *core.Store
	Clustered *core.Store
}

// NewHarness generates RDF-H data at sf and loads both stores.
func NewHarness(sf float64, seed int64) (*Harness, error) {
	h := &Harness{Data: Generate(sf, seed)}

	mk := func(keepOrder bool) (*core.Store, error) {
		opts := core.DefaultOptions()
		opts.CS.MinSupport = 5
		if keepOrder {
			opts.Cluster.AutoSortKey = false
			opts.Cluster.KeepLiteralOrder = true
		}
		st := core.NewStore(opts)
		h.Data.Emit(func(t nt.Triple) { st.Add(t) })
		if _, err := st.Organize(); err != nil {
			return nil, err
		}
		return st, nil
	}
	var err error
	if h.Parse, err = mk(true); err != nil {
		return nil, err
	}
	if h.Clustered, err = mk(false); err != nil {
		return nil, err
	}
	return h, nil
}

// storeFor picks the store of a config.
func (h *Harness) storeFor(c Config) *core.Store {
	if c.Clustered {
		return h.Clustered
	}
	return h.Parse
}

// Run measures one cell: a cold run (pool flushed) and a hot run.
func (h *Harness) Run(c Config, queryID string) ([2]Measurement, error) {
	st := h.storeFor(c)
	qtext, ok := Queries()[queryID]
	if !ok {
		return [2]Measurement{}, fmt.Errorf("rdfh: unknown query %q", queryID)
	}
	qo := core.QueryOptions{Mode: c.Mode, ZoneMaps: c.ZoneMaps}
	var out [2]Measurement
	// Wall time on small scale factors is noisy (GC, allocator); take
	// the best of a few repetitions per temperature. Page counts are
	// deterministic, so the simulated I/O component never varies.
	const reps = 3
	for i, cold := range []bool{true, false} {
		var best Measurement
		for r := 0; r < reps; r++ {
			if cold {
				st.Pool().ResetCold()
			} else if r == 0 {
				// ensure warm pages before the first hot reading
				if _, err := st.Query(qtext, qo); err != nil {
					return out, fmt.Errorf("rdfh: %s %s: %w", c.Name, queryID, err)
				}
			}
			st.Pool().ResetStats()
			runtime.GC() // isolate reps from each other's garbage
			start := time.Now()
			res, err := st.Query(qtext, qo)
			if err != nil {
				return out, fmt.Errorf("rdfh: %s %s: %w", c.Name, queryID, err)
			}
			wall := time.Since(start)
			ps := st.Pool().Stats()
			m := Measurement{
				Config: c, Query: queryID, Cold: cold,
				Wall: wall, SimIO: ps.SimIO, Pages: ps.Misses, Rows: res.Len(),
			}
			m.Checked = h.check(queryID, res.Len())
			if r == 0 || m.Total() < best.Total() {
				best = m
			}
		}
		out[i] = best
	}
	return out, nil
}

// check validates row counts against the reference evaluators (exact
// value validation lives in the unit tests).
func (h *Harness) check(queryID string, rows int) bool {
	switch queryID {
	case "Q6":
		return rows == 1
	case "Q3":
		want := len(RefQ3(h.Data))
		return rows == want
	case "Q1":
		return rows == len(RefQ1(h.Data))
	case "Q5":
		return rows == len(RefQ5(h.Data))
	default:
		return false
	}
}

// RunTableI runs the full matrix for the given queries (default Q3, Q6 —
// the paper's pair).
func (h *Harness) RunTableI(queries ...string) ([]Measurement, error) {
	if len(queries) == 0 {
		queries = []string{"Q3", "Q6"}
	}
	var out []Measurement
	for _, c := range TableIConfigs() {
		for _, q := range queries {
			ms, err := h.Run(c, q)
			if err != nil {
				return out, err
			}
			out = append(out, ms[0], ms[1])
		}
	}
	return out, nil
}

// FormatTableI renders measurements in the paper's Table I layout, one
// row per configuration with Cold/Hot columns per query.
func FormatTableI(ms []Measurement, sf float64) string {
	queries := uniqueQueries(ms)
	var b strings.Builder
	fmt.Fprintf(&b, "RDF-H (SF=%g) — total time = wall + simulated I/O (pages x 100us)\n\n", sf)
	fmt.Fprintf(&b, "%-28s", "Plan     Scheme      ZoneMaps")
	for _, q := range queries {
		fmt.Fprintf(&b, " | %7s-Cold %7s-Hot (pages)", q, q)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 28+len(queries)*38) + "\n")
	type key struct{ cfg string }
	rows := map[string][]Measurement{}
	var order []string
	for _, m := range ms {
		if _, ok := rows[m.Config.Name]; !ok {
			order = append(order, m.Config.Name)
		}
		rows[m.Config.Name] = append(rows[m.Config.Name], m)
	}
	for _, name := range order {
		fmt.Fprintf(&b, "%-28s", name)
		for _, q := range queries {
			var cold, hot *Measurement
			for i := range rows[name] {
				m := &rows[name][i]
				if m.Query != q {
					continue
				}
				if m.Cold {
					cold = m
				} else {
					hot = m
				}
			}
			if cold == nil || hot == nil {
				fmt.Fprintf(&b, " | %30s", "n.a.")
				continue
			}
			flag := ""
			if !cold.Checked || !hot.Checked {
				flag = "!"
			}
			fmt.Fprintf(&b, " | %9.1fms %9.1fms (%d)%s",
				float64(cold.Total().Microseconds())/1000,
				float64(hot.Total().Microseconds())/1000,
				cold.Pages, flag)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func uniqueQueries(ms []Measurement) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		if !seen[m.Query] {
			seen[m.Query] = true
			out = append(out, m.Query)
		}
	}
	sort.Strings(out)
	return out
}
